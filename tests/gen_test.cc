#include "gen/fractal.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/monotonic.h"
#include "gen/noise_tin.h"
#include "gen/workload.h"

namespace fielddb {
namespace {

TEST(DiamondSquareTest, DeterministicInSeed) {
  FractalOptions a, b;
  a.seed = b.seed = 99;
  a.size_exp = b.size_exp = 5;
  EXPECT_EQ(DiamondSquare(a), DiamondSquare(b));
  b.seed = 100;
  EXPECT_NE(DiamondSquare(a), DiamondSquare(b));
}

TEST(DiamondSquareTest, OutputSize) {
  FractalOptions options;
  options.size_exp = 4;
  EXPECT_EQ(DiamondSquare(options).size(), 17u * 17u);
}

TEST(DiamondSquareTest, SmoothnessIncreasesWithH) {
  // Mean absolute neighbor difference must shrink as H grows (the
  // paper's Fig. 10 contrast between H=0.2 and H=0.8).
  const auto roughness = [](double h_param) {
    FractalOptions options;
    options.size_exp = 6;
    options.roughness_h = h_param;
    options.seed = 7;
    const std::vector<double> h = DiamondSquare(options);
    const int side = 65;
    double sum = 0;
    int count = 0;
    for (int j = 0; j < side; ++j) {
      for (int i = 0; i + 1 < side; ++i) {
        sum += std::abs(h[j * side + i + 1] - h[j * side + i]);
        ++count;
      }
    }
    return sum / count;
  };
  const double rough = roughness(0.1);
  const double smooth = roughness(0.9);
  EXPECT_GT(rough, 2.0 * smooth);
}

TEST(MakeFractalFieldTest, ValidatesOptions) {
  FractalOptions options;
  options.size_exp = 0;
  EXPECT_FALSE(MakeFractalField(options).ok());
  options.size_exp = 5;
  options.roughness_h = 1.5;
  EXPECT_FALSE(MakeFractalField(options).ok());
}

TEST(MakeFractalFieldTest, FieldShape) {
  FractalOptions options;
  options.size_exp = 5;
  auto field = MakeFractalField(options);
  ASSERT_TRUE(field.ok());
  EXPECT_EQ(field->NumCells(), 32u * 32u);
  EXPECT_EQ(field->Domain(), (Rect2{{0, 0}, {1, 1}}));
  EXPECT_FALSE(field->ValueRange().IsEmpty());
}

TEST(MakeRoseburgLikeTerrainTest, MatchesPaperResolution) {
  auto field = MakeRoseburgLikeTerrain();
  ASSERT_TRUE(field.ok());
  // 512x512 cells = 262,144, the paper's "266,144 rectangular cells"
  // (sic; 512*512 with four vertices each).
  EXPECT_EQ(field->NumCells(), 262144u);
}

TEST(MonotonicTest, ValuesAreXPlusY) {
  auto field = MakeMonotonicField(8, 8);
  ASSERT_TRUE(field.ok());
  EXPECT_NEAR(*field->ValueAt({0.25, 0.5}), 0.75, 1e-12);
  EXPECT_NEAR(*field->ValueAt({1.0, 1.0}), 2.0, 1e-12);
  EXPECT_EQ(field->ValueRange(), (ValueInterval{0, 2}));
}

TEST(MonotonicTest, RejectsEmptyGrid) {
  EXPECT_FALSE(MakeMonotonicField(0, 8).ok());
}

TEST(NoiseTinTest, ProducesRoughly2xSitesTriangles) {
  NoiseTinOptions options;
  options.num_sites = 500;
  auto tin = MakeUrbanNoiseTin(options);
  ASSERT_TRUE(tin.ok());
  EXPECT_GT(tin->NumCells(), 900u);
  EXPECT_LT(tin->NumCells(), 1000u);
}

TEST(NoiseTinTest, DefaultMatchesPaperScale) {
  auto tin = MakeUrbanNoiseTin();
  ASSERT_TRUE(tin.ok());
  // "about 9000 triangles".
  EXPECT_GT(tin->NumCells(), 8500u);
  EXPECT_LT(tin->NumCells(), 9500u);
}

TEST(NoiseTinTest, ValuesInPlausibleDbRange) {
  NoiseTinOptions options;
  options.num_sites = 400;
  auto tin = MakeUrbanNoiseTin(options);
  ASSERT_TRUE(tin.ok());
  const ValueInterval range = tin->ValueRange();
  EXPECT_GE(range.min, options.base_min_db - 1.0);
  EXPECT_LE(range.max,
            options.base_max_db +
                options.num_corridors * options.corridor_gain_db);
  // Corridors must actually create loud spots for the ">80 dB" query.
  EXPECT_GT(range.max, 80.0);
}

TEST(NoiseTinTest, DeterministicInSeed) {
  NoiseTinOptions options;
  options.num_sites = 300;
  auto a = MakeUrbanNoiseTin(options);
  auto b = MakeUrbanNoiseTin(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->NumCells(), b->NumCells());
  for (CellId id = 0; id < a->NumCells(); ++id) {
    EXPECT_EQ(a->GetCell(id).Interval(), b->GetCell(id).Interval());
  }
}

TEST(WorkloadTest, QueriesRespectRangeAndLength) {
  const ValueInterval range{10, 30};
  WorkloadOptions options;
  options.qinterval_fraction = 0.1;
  options.num_queries = 500;
  const auto queries = GenerateValueQueries(range, options);
  ASSERT_EQ(queries.size(), 500u);
  for (const ValueInterval& q : queries) {
    EXPECT_GE(q.min, 10.0);
    EXPECT_LE(q.max, 30.0 + 1e-9);
    EXPECT_NEAR(q.Length(), 2.0, 1e-9);  // 0.1 * 20
  }
}

TEST(WorkloadTest, ZeroFractionGivesExactQueries) {
  const auto queries =
      GenerateValueQueries(ValueInterval{0, 1},
                           WorkloadOptions{0.0, 100, 3});
  for (const ValueInterval& q : queries) {
    EXPECT_DOUBLE_EQ(q.min, q.max);
  }
}

TEST(WorkloadTest, DeterministicInSeed) {
  const WorkloadOptions options{0.05, 50, 42};
  EXPECT_EQ(GenerateValueQueries(ValueInterval{0, 1}, options),
            GenerateValueQueries(ValueInterval{0, 1}, options));
}

TEST(WorkloadTest, EmptyRangeYieldsNothing) {
  EXPECT_TRUE(
      GenerateValueQueries(ValueInterval::Empty(), WorkloadOptions{})
          .empty());
}

}  // namespace
}  // namespace fielddb

// EventLog tests: JSONL schema and field rendering, rotation
// durability, and the obs-I/O isolation invariant — event-log writes
// must never route through the page file, so they can neither inflate
// query IoStats nor recurse into the fault-injection decorator.

#include "obs/event_log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/field_database.h"
#include "gen/fractal.h"
#include "gen/workload.h"
#include "storage/fault_injection.h"
#include "storage/page_file.h"

namespace fielddb {
namespace {

std::vector<std::string> ReadLines(const std::string& path) {
  std::vector<std::string> lines;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return lines;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    std::string line(buf);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    lines.push_back(std::move(line));
  }
  std::fclose(f);
  return lines;
}

void RemoveLog(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
}

TEST(EventLogTest, AppendedLinesCarrySchemaAndSequence) {
  const std::string path = "event_log_test_basic.jsonl";
  RemoveLog(path);
  auto log = EventLog::Open(path);
  ASSERT_TRUE(log.ok()) << log.status().ToString();

  ASSERT_TRUE((*log)->Append(EventLog::Event("alpha")
                                 .Add("text", "hi \"there\"")
                                 .Add("ratio", 0.5)
                                 .Add("count", uint64_t{42})
                                 .Add("delta", int64_t{-3})
                                 .Add("flag", true))
                  .ok());
  ASSERT_TRUE((*log)->Append(EventLog::Event("beta").Add("n", 1)).ok());
  ASSERT_TRUE((*log)->Sync().ok());
  EXPECT_EQ((*log)->events_appended(), 2u);
  EXPECT_GT((*log)->bytes_written(), 0u);
  EXPECT_EQ((*log)->rotations(), 0u);

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);
  // Fixed header: schema version, per-log sequence, wall clock, type.
  EXPECT_EQ(lines[0].rfind("{\"v\": 1, \"seq\": 0, \"ts_ms\": ", 0), 0u);
  EXPECT_EQ(lines[1].rfind("{\"v\": 1, \"seq\": 1, \"ts_ms\": ", 0), 0u);
  EXPECT_NE(lines[0].find("\"type\": \"alpha\""), std::string::npos);
  // Values render as native JSON types; strings are escaped.
  EXPECT_NE(lines[0].find("\"text\": \"hi \\\"there\\\"\""),
            std::string::npos);
  EXPECT_NE(lines[0].find("\"ratio\": 0.5"), std::string::npos);
  EXPECT_NE(lines[0].find("\"count\": 42"), std::string::npos);
  EXPECT_NE(lines[0].find("\"delta\": -3"), std::string::npos);
  EXPECT_NE(lines[0].find("\"flag\": true"), std::string::npos);
  // Field order is insertion order.
  EXPECT_LT(lines[0].find("\"text\""), lines[0].find("\"ratio\""));
  EXPECT_LT(lines[0].find("\"ratio\""), lines[0].find("\"count\""));
  EXPECT_EQ(lines[0].back(), '}');
  RemoveLog(path);
}

TEST(EventLogTest, RawJsonFieldIsVerbatim) {
  const std::string path = "event_log_test_raw.jsonl";
  RemoveLog(path);
  auto log = EventLog::Open(path);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE((*log)
                  ->Append(EventLog::Event("raw").AddRawJson(
                      "pages", "[1, 2, 3]"))
                  .ok());
  ASSERT_TRUE((*log)->Sync().ok());
  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"pages\": [1, 2, 3]"), std::string::npos);
  RemoveLog(path);
}

TEST(EventLogTest, RotationPreservesEveryLine) {
  const std::string path = "event_log_test_rotate.jsonl";
  RemoveLog(path);
  EventLog::Options options;
  options.rotate_bytes = 256;  // tiny, so a handful of appends rotate
  auto log = EventLog::Open(path, options);
  ASSERT_TRUE(log.ok());

  constexpr int kEvents = 40;
  for (int i = 0; i < kEvents; ++i) {
    ASSERT_TRUE((*log)
                    ->Append(EventLog::Event("tick").Add(
                        "i", static_cast<int64_t>(i)))
                    .ok());
  }
  EXPECT_EQ((*log)->events_appended(), static_cast<uint64_t>(kEvents));
  EXPECT_GE((*log)->rotations(), 1u);
  ASSERT_TRUE((*log)->Sync().ok());

  // Only one rotated generation is kept, so with tiny rotate_bytes the
  // union of live + ".1" holds a contiguous tail of the sequence and
  // nothing torn: every retained line is complete and parses.
  // (live may legitimately be empty when the very last append was the
  // one that tripped the rotation.)
  const std::vector<std::string> live = ReadLines(path);
  const std::vector<std::string> rotated = ReadLines(path + ".1");
  EXPECT_FALSE(rotated.empty());
  std::vector<std::string> all = rotated;
  all.insert(all.end(), live.begin(), live.end());
  for (const std::string& line : all) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"type\": \"tick\""), std::string::npos);
  }
  RemoveLog(path);
}

TEST(EventLogTest, ReopenAppendsToExistingFile) {
  const std::string path = "event_log_test_reopen.jsonl";
  RemoveLog(path);
  {
    auto log = EventLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(EventLog::Event("first")).ok());
  }  // destructor fsyncs + closes
  {
    auto log = EventLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(EventLog::Event("second")).ok());
    ASSERT_TRUE((*log)->Sync().ok());
  }
  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);  // O_APPEND: history survives reopen
  EXPECT_NE(lines[0].find("\"type\": \"first\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"type\": \"second\""), std::string::npos);
  RemoveLog(path);
}

// --- obs-I/O isolation invariant -----------------------------------

/// Counts every PageFile operation that reaches the storage layer.
/// Placed *under* the fault-injection decorator, so anything the
/// database reads or writes — for queries or otherwise — is visible.
class CountingPageFile final : public PageFile {
 public:
  explicit CountingPageFile(std::unique_ptr<PageFile> base)
      : PageFile(base->page_size()), base_(std::move(base)) {}

  uint64_t NumPages() const override { return base_->NumPages(); }
  StatusOr<PageId> Allocate() override {
    ops_.fetch_add(1, std::memory_order_relaxed);
    return base_->Allocate();
  }
  Status Read(PageId id, Page* out) const override {
    reads_.fetch_add(1, std::memory_order_relaxed);
    ops_.fetch_add(1, std::memory_order_relaxed);
    return base_->Read(id, out);
  }
  Status Write(PageId id, const Page& page) override {
    writes_.fetch_add(1, std::memory_order_relaxed);
    ops_.fetch_add(1, std::memory_order_relaxed);
    return base_->Write(id, page);
  }
  Status VerifyPage(PageId id) const override {
    ops_.fetch_add(1, std::memory_order_relaxed);
    return base_->VerifyPage(id);
  }
  Status Sync() override {
    ops_.fetch_add(1, std::memory_order_relaxed);
    return base_->Sync();
  }

  uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  uint64_t writes() const { return writes_.load(std::memory_order_relaxed); }
  uint64_t ops() const { return ops_.load(std::memory_order_relaxed); }

 private:
  std::unique_ptr<PageFile> base_;
  mutable std::atomic<uint64_t> reads_{0};
  mutable std::atomic<uint64_t> writes_{0};
  mutable std::atomic<uint64_t> ops_{0};
};

struct InstrumentedDb {
  std::unique_ptr<FieldDatabase> db;
  CountingPageFile* counting = nullptr;       // borrowed, owned by db
  FaultInjectingPageFile* faulty = nullptr;   // borrowed, owned by db
};

InstrumentedDb BuildInstrumented(const GridField& field,
                                 const std::string& event_log_path) {
  InstrumentedDb out;
  FieldDatabaseOptions options;
  options.build_spatial_index = false;
  options.event_log_path = event_log_path;  // empty = no event log
  options.slow_query_threshold_ms = 0.0;    // log every query
  options.page_file_factory = [&out](uint32_t page_size) {
    auto counting = std::make_unique<CountingPageFile>(
        std::make_unique<MemPageFile>(page_size));
    out.counting = counting.get();
    auto faulty = std::make_unique<FaultInjectingPageFile>(
        std::move(counting), FaultInjectionOptions{});
    out.faulty = faulty.get();
    return faulty;
  };
  auto db = FieldDatabase::Build(field, options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  if (db.ok()) out.db = std::move(*db);
  return out;
}

TEST(EventLogTest, ObsIoNeverTouchesThePageFile) {
  // Two identical databases over instrumented storage stacks
  // (fault-injection decorator over a counting page file): one logs
  // every query to an event log, the other has no log at all. If obs
  // I/O leaked into the storage path — inflating IoStats or recursing
  // into the fault-injection decorator — the two runs would diverge in
  // page-file traffic. They must be identical to the last counter.
  FractalOptions fo;
  fo.size_exp = 5;
  fo.seed = 11;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());

  const std::string log_path = "event_log_test_invariant.jsonl";
  RemoveLog(log_path);
  InstrumentedDb with_log = BuildInstrumented(*field, log_path);
  InstrumentedDb without_log = BuildInstrumented(*field, "");
  ASSERT_NE(with_log.db, nullptr);
  ASSERT_NE(without_log.db, nullptr);
  ASSERT_NE(with_log.counting, nullptr);
  ASSERT_NE(without_log.counting, nullptr);
  EXPECT_NE(with_log.db->event_log(), nullptr);
  EXPECT_EQ(without_log.db->event_log(), nullptr);

  WorkloadOptions wo;
  wo.qinterval_fraction = 0.05;
  wo.num_queries = 24;
  wo.seed = 77;
  const std::vector<ValueInterval> queries =
      GenerateValueQueries(with_log.db->value_range(), wo);

  for (const ValueInterval& q : queries) {
    QueryStats a, b;
    ASSERT_TRUE(with_log.db->ValueQueryStats(q, &a).ok());
    ASSERT_TRUE(without_log.db->ValueQueryStats(q, &b).ok());
    // Per-query page traffic is identical: the slow-query event
    // appended after `a`'s query contributes nothing to IoStats.
    EXPECT_EQ(a.io.logical_reads, b.io.logical_reads);
    EXPECT_EQ(a.io.physical_reads, b.io.physical_reads);
    EXPECT_EQ(a.io.sequential_reads, b.io.sequential_reads);
    EXPECT_EQ(a.io.writes, b.io.writes);
    EXPECT_EQ(a.io.evictions, b.io.evictions);
    EXPECT_EQ(a.candidate_cells, b.candidate_cells);
    EXPECT_EQ(a.answer_cells, b.answer_cells);
  }

  // Every query crossed the 0ms threshold, so the log really was being
  // written the whole time — this test is not vacuous.
  EXPECT_GE(with_log.db->event_log()->events_appended(),
            static_cast<uint64_t>(queries.size()));

  // Storage-layer totals: same reads, same writes, same total ops, and
  // the fault-injection decorators saw no injected activity.
  EXPECT_EQ(with_log.counting->reads(), without_log.counting->reads());
  EXPECT_EQ(with_log.counting->writes(), without_log.counting->writes());
  EXPECT_EQ(with_log.counting->ops(), without_log.counting->ops());
  EXPECT_EQ(with_log.faulty->counters().read_errors, 0u);
  EXPECT_EQ(without_log.faulty->counters().read_errors, 0u);
  RemoveLog(log_path);
}

}  // namespace
}  // namespace fielddb

// Persistence round-trips for the extension engines (vector, volume,
// temporal): Save/Open must preserve query answers bit-identically,
// reject corrupt catalogs, and the bounded-memory external-sort build
// must produce byte-identical snapshot files to the unlimited build.
// Also asserts planner parity: every engine's cost-based planner picks
// scan vs index per band and honors the forced modes.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "temporal/temporal_index.h"
#include "vector/vector_index.h"
#include "volume/volume_index.h"

namespace fielddb {
namespace {

std::string TestPrefix(const std::string& tag) {
  return ::testing::TempDir() + "/fielddb_ext_persist_" + tag;
}

void Cleanup(const std::string& prefix) {
  for (const char* suffix :
       {".pages", ".meta", ".pages.tmp", ".meta.tmp", ".wal"}) {
    std::remove((prefix + suffix).c_str());
  }
}

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void ExpectFilesIdentical(const std::string& a, const std::string& b) {
  const std::vector<char> ca = ReadAll(a);
  const std::vector<char> cb = ReadAll(b);
  ASSERT_FALSE(ca.empty());
  EXPECT_EQ(ca, cb) << a << " differs from " << b;
}

// u = x + y, v = x - y over the unit square (affine, analytic answers).
VectorGridField MakeAffineVectorField(uint32_t n) {
  std::vector<double> su, sv;
  for (uint32_t j = 0; j <= n; ++j) {
    for (uint32_t i = 0; i <= n; ++i) {
      const double x = static_cast<double>(i) / n;
      const double y = static_cast<double>(j) / n;
      su.push_back(x + y);
      sv.push_back(x - y);
    }
  }
  auto field = VectorGridField::Create(n, n, Rect2{{0, 0}, {1, 1}}, su, sv);
  EXPECT_TRUE(field.ok());
  return std::move(field).value();
}

VolumeGridField MakeVolume(uint32_t n = 8) {
  VolumeFractalOptions fo;
  fo.nx = fo.ny = fo.nz = n;
  auto field = MakeFractalVolume(fo);
  EXPECT_TRUE(field.ok());
  return std::move(field).value();
}

// T snapshots of a planar ramp drifting upward: vertex (i, j) at
// snapshot k holds i + j + 10k.
TemporalGridField MakeDriftingRamp(uint32_t n, uint32_t num_snapshots) {
  std::vector<std::vector<double>> snapshots(num_snapshots);
  for (uint32_t k = 0; k < num_snapshots; ++k) {
    for (uint32_t j = 0; j <= n; ++j) {
      for (uint32_t i = 0; i <= n; ++i) {
        snapshots[k].push_back(static_cast<double>(i + j) + 10.0 * k);
      }
    }
  }
  auto field = TemporalGridField::Create(n, n, Rect2{{0, 0}, {1, 1}},
                                         std::move(snapshots));
  EXPECT_TRUE(field.ok());
  return std::move(field).value();
}

// --- Volume ----------------------------------------------------------

class VolumePersistTest : public ::testing::TestWithParam<VolumeIndexMethod> {
};

TEST_P(VolumePersistTest, RoundTripPreservesAnswers) {
  const std::string prefix =
      TestPrefix("vol_" + std::to_string(static_cast<int>(GetParam())));
  Cleanup(prefix);
  const VolumeGridField field = MakeVolume();
  VolumeFieldDatabase::Options options;
  options.method = GetParam();
  auto built = VolumeFieldDatabase::Build(field, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ASSERT_TRUE((*built)->Save(prefix).ok());

  auto opened = VolumeFieldDatabase::Open(prefix);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ((*opened)->epoch(), 1u);
  EXPECT_EQ((*opened)->method(), GetParam());
  EXPECT_EQ((*opened)->num_cells(), field.NumCells());
  EXPECT_EQ((*opened)->subfields().size(), (*built)->subfields().size());
  EXPECT_EQ((*opened)->zone_map().size(), field.NumCells());

  const ValueInterval range = field.ValueRange();
  const std::vector<ValueInterval> bands = {
      {-1e9, 1e9},
      {range.min, range.min + 0.1 * (range.max - range.min)},
      {range.min + 0.45 * (range.max - range.min),
       range.min + 0.55 * (range.max - range.min)},
  };
  for (const ValueInterval& band : bands) {
    SCOPED_TRACE(band.min);
    VolumeQueryResult expected, actual;
    ASSERT_TRUE((*built)->BandQuery(band, &expected).ok());
    ASSERT_TRUE((*opened)->BandQuery(band, &actual).ok());
    EXPECT_DOUBLE_EQ(actual.volume, expected.volume);
    EXPECT_EQ(actual.stats.answer_cells, expected.stats.answer_cells);
    EXPECT_EQ(actual.plan.kind, expected.plan.kind);
  }
  Cleanup(prefix);
}

TEST(VolumePersistTest2, BudgetedBuildIsByteIdentical) {
  const std::string unlimited_prefix = TestPrefix("vol_unlimited");
  const std::string budgeted_prefix = TestPrefix("vol_budgeted");
  Cleanup(unlimited_prefix);
  Cleanup(budgeted_prefix);
  const VolumeGridField field = MakeVolume();

  VolumeFieldDatabase::Options options;
  auto unlimited = VolumeFieldDatabase::Build(field, options);
  ASSERT_TRUE(unlimited.ok());
  EXPECT_EQ((*unlimited)->ext_spill_runs(), 0u);

  options.build_memory_budget_bytes = 1024;  // forces many spilled runs
  auto budgeted = VolumeFieldDatabase::Build(field, options);
  ASSERT_TRUE(budgeted.ok());
  EXPECT_GT((*budgeted)->ext_spill_runs(), 0u);
  EXPECT_LE((*budgeted)->ext_peak_buffered_bytes(), 1024u);

  ASSERT_TRUE((*unlimited)->Save(unlimited_prefix).ok());
  ASSERT_TRUE((*budgeted)->Save(budgeted_prefix).ok());
  ExpectFilesIdentical(unlimited_prefix + ".pages",
                       budgeted_prefix + ".pages");
  ExpectFilesIdentical(unlimited_prefix + ".meta",
                       budgeted_prefix + ".meta");
  Cleanup(unlimited_prefix);
  Cleanup(budgeted_prefix);
}

TEST(VolumePersistTest2, PlannerSelectsPerBand) {
  const VolumeGridField field = MakeVolume();
  auto db = VolumeFieldDatabase::Build(field, {});
  ASSERT_TRUE(db.ok());
  // Whole value space: every zone matches, the scan must win.
  const PhysicalPlan wide = (*db)->PlanBandQuery({-1e9, 1e9});
  EXPECT_EQ(wide.kind, PlanKind::kFusedScan);
  // Far outside the value range: zero candidates, the index must win.
  const PhysicalPlan empty = (*db)->PlanBandQuery({1e8, 2e8});
  EXPECT_EQ(empty.kind, PlanKind::kIndexedFilter);
  EXPECT_EQ(empty.predicted_candidates, 0u);
  // Forced modes are honored regardless of cost.
  (*db)->set_planner_mode(PlannerMode::kForceIndex);
  EXPECT_EQ((*db)->PlanBandQuery({-1e9, 1e9}).kind,
            PlanKind::kIndexedFilter);
  (*db)->set_planner_mode(PlannerMode::kForceScan);
  EXPECT_EQ((*db)->PlanBandQuery({1e8, 2e8}).kind, PlanKind::kFusedScan);
}

TEST(VolumePersistTest2, CorruptCatalogRejected) {
  const std::string prefix = TestPrefix("vol_corrupt");
  Cleanup(prefix);
  const VolumeGridField field = MakeVolume(4);
  auto db = VolumeFieldDatabase::Build(field, {});
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Save(prefix).ok());

  std::ofstream out(prefix + ".meta", std::ios::trunc);
  out << "fielddb-volume-meta-v1\npage_size 0\n";
  out.close();
  EXPECT_FALSE(VolumeFieldDatabase::Open(prefix).ok());

  std::ofstream bad(prefix + ".meta", std::ios::trunc);
  bad << "not-a-catalog\n";
  bad.close();
  EXPECT_FALSE(VolumeFieldDatabase::Open(prefix).ok());
  Cleanup(prefix);
}

INSTANTIATE_TEST_SUITE_P(BothMethods, VolumePersistTest,
                         ::testing::Values(VolumeIndexMethod::kLinearScan,
                                           VolumeIndexMethod::kIHilbert),
                         [](const auto& info) {
                           return info.param ==
                                          VolumeIndexMethod::kLinearScan
                                      ? "LinearScan"
                                      : "IHilbert";
                         });

// --- Vector ----------------------------------------------------------

class VectorPersistTest : public ::testing::TestWithParam<VectorIndexMethod> {
};

TEST_P(VectorPersistTest, RoundTripPreservesAnswers) {
  const std::string prefix =
      TestPrefix("vec_" + std::to_string(static_cast<int>(GetParam())));
  Cleanup(prefix);
  const VectorGridField field = MakeAffineVectorField(12);
  VectorFieldDatabase::Options options;
  options.method = GetParam();
  auto built = VectorFieldDatabase::Build(field, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ASSERT_TRUE((*built)->Save(prefix).ok());

  auto opened = VectorFieldDatabase::Open(prefix);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ((*opened)->epoch(), 1u);
  EXPECT_EQ((*opened)->num_cells(), field.NumCells());
  EXPECT_EQ((*opened)->subfields().size(), (*built)->subfields().size());

  const std::vector<VectorBandQuery> queries = {
      {{-1000, 1000}, {-1000, 1000}},
      {{0.4, 0.6}, {-0.1, 0.1}},
      {{1.2, 1.6}, {0.2, 0.5}},
  };
  for (const VectorBandQuery& q : queries) {
    SCOPED_TRACE(q.u.min);
    VectorQueryResult expected, actual;
    ASSERT_TRUE((*built)->BandQuery(q, &expected).ok());
    ASSERT_TRUE((*opened)->BandQuery(q, &actual).ok());
    EXPECT_EQ(actual.stats.answer_cells, expected.stats.answer_cells);
    EXPECT_DOUBLE_EQ(actual.region.TotalArea(),
                     expected.region.TotalArea());
    EXPECT_EQ(actual.plan.kind, expected.plan.kind);
  }
  Cleanup(prefix);
}

TEST_P(VectorPersistTest, UpdateSurvivesRoundTrip) {
  const std::string prefix = TestPrefix(
      "vec_upd_" + std::to_string(static_cast<int>(GetParam())));
  Cleanup(prefix);
  const VectorGridField field = MakeAffineVectorField(8);
  VectorFieldDatabase::Options options;
  options.method = GetParam();
  auto db = VectorFieldDatabase::Build(field, options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)
                  ->UpdateCellValues(5, std::vector<double>(4, 300.0),
                                     std::vector<double>(4, -300.0))
                  .ok());
  ASSERT_TRUE((*db)->Save(prefix).ok());

  auto opened = VectorFieldDatabase::Open(prefix);
  ASSERT_TRUE(opened.ok());
  VectorBandQuery marker;
  marker.u = ValueInterval{299, 301};
  marker.v = ValueInterval{-301, -299};
  VectorQueryResult result;
  ASSERT_TRUE((*opened)->BandQuery(marker, &result).ok());
  EXPECT_EQ(result.stats.answer_cells, 1u);
  Cleanup(prefix);
}

TEST(VectorPersistTest2, BudgetedBuildIsByteIdentical) {
  const std::string unlimited_prefix = TestPrefix("vec_unlimited");
  const std::string budgeted_prefix = TestPrefix("vec_budgeted");
  Cleanup(unlimited_prefix);
  Cleanup(budgeted_prefix);
  const VectorGridField field = MakeAffineVectorField(16);

  VectorFieldDatabase::Options options;
  auto unlimited = VectorFieldDatabase::Build(field, options);
  ASSERT_TRUE(unlimited.ok());
  EXPECT_EQ((*unlimited)->ext_spill_runs(), 0u);

  options.build_memory_budget_bytes = 512;
  auto budgeted = VectorFieldDatabase::Build(field, options);
  ASSERT_TRUE(budgeted.ok());
  EXPECT_GT((*budgeted)->ext_spill_runs(), 0u);

  ASSERT_TRUE((*unlimited)->Save(unlimited_prefix).ok());
  ASSERT_TRUE((*budgeted)->Save(budgeted_prefix).ok());
  ExpectFilesIdentical(unlimited_prefix + ".pages",
                       budgeted_prefix + ".pages");
  ExpectFilesIdentical(unlimited_prefix + ".meta",
                       budgeted_prefix + ".meta");
  Cleanup(unlimited_prefix);
  Cleanup(budgeted_prefix);
}

TEST(VectorPersistTest2, PlannerSelectsPerBand) {
  const VectorGridField field = MakeAffineVectorField(16);
  auto db = VectorFieldDatabase::Build(field, {});
  ASSERT_TRUE(db.ok());
  const PhysicalPlan wide =
      (*db)->PlanBandQuery({{-1000, 1000}, {-1000, 1000}});
  EXPECT_EQ(wide.kind, PlanKind::kFusedScan);
  const PhysicalPlan empty = (*db)->PlanBandQuery({{900, 950}, {900, 950}});
  EXPECT_EQ(empty.kind, PlanKind::kIndexedFilter);
  EXPECT_EQ(empty.predicted_candidates, 0u);
}

INSTANTIATE_TEST_SUITE_P(BothMethods, VectorPersistTest,
                         ::testing::Values(VectorIndexMethod::kLinearScan,
                                           VectorIndexMethod::kIHilbert),
                         [](const auto& info) {
                           return info.param ==
                                          VectorIndexMethod::kLinearScan
                                      ? "LinearScan"
                                      : "IHilbert";
                         });

// --- Temporal --------------------------------------------------------

TEST(TemporalPersistTest, RoundTripPreservesAnswers) {
  const std::string prefix = TestPrefix("temp");
  Cleanup(prefix);
  const TemporalGridField field = MakeDriftingRamp(8, 4);
  auto built = TemporalFieldDatabase::Build(field, {});
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ASSERT_TRUE((*built)->Save(prefix).ok());

  auto opened = TemporalFieldDatabase::Open(prefix);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ((*opened)->epoch(), 1u);
  EXPECT_EQ((*opened)->num_slabs(), (*built)->num_slabs());
  EXPECT_EQ((*opened)->num_subfields(), (*built)->num_subfields());
  EXPECT_EQ((*opened)->num_cells(), field.NumCells());

  for (const double t : {0.0, 0.5, 1.0, 1.75, 3.0}) {
    for (const ValueInterval band :
         {ValueInterval{-1e6, 1e6}, ValueInterval{4.0, 9.0}}) {
      SCOPED_TRACE(t);
      ValueQueryResult expected, actual;
      ASSERT_TRUE((*built)->SnapshotValueQuery(t, band, &expected).ok());
      ASSERT_TRUE((*opened)->SnapshotValueQuery(t, band, &actual).ok());
      EXPECT_EQ(actual.stats.answer_cells, expected.stats.answer_cells);
      EXPECT_DOUBLE_EQ(actual.region.TotalArea(),
                       expected.region.TotalArea());
      EXPECT_EQ(actual.plan.kind, expected.plan.kind);
    }
  }
  std::vector<CellId> expected_ids, actual_ids;
  ASSERT_TRUE(
      (*built)->TimeRangeCandidates({5, 12}, 0.5, 2.5, &expected_ids).ok());
  ASSERT_TRUE(
      (*opened)->TimeRangeCandidates({5, 12}, 0.5, 2.5, &actual_ids).ok());
  EXPECT_EQ(actual_ids, expected_ids);
  Cleanup(prefix);
}

TEST(TemporalPersistTest, BudgetedBuildIsByteIdentical) {
  const std::string unlimited_prefix = TestPrefix("temp_unlimited");
  const std::string budgeted_prefix = TestPrefix("temp_budgeted");
  Cleanup(unlimited_prefix);
  Cleanup(budgeted_prefix);
  const TemporalGridField field = MakeDriftingRamp(16, 3);

  TemporalFieldDatabase::Options options;
  auto unlimited = TemporalFieldDatabase::Build(field, options);
  ASSERT_TRUE(unlimited.ok());
  EXPECT_EQ((*unlimited)->ext_spill_runs(), 0u);

  options.build_memory_budget_bytes = 512;
  auto budgeted = TemporalFieldDatabase::Build(field, options);
  ASSERT_TRUE(budgeted.ok());
  EXPECT_GT((*budgeted)->ext_spill_runs(), 0u);

  ASSERT_TRUE((*unlimited)->Save(unlimited_prefix).ok());
  ASSERT_TRUE((*budgeted)->Save(budgeted_prefix).ok());
  ExpectFilesIdentical(unlimited_prefix + ".pages",
                       budgeted_prefix + ".pages");
  ExpectFilesIdentical(unlimited_prefix + ".meta",
                       budgeted_prefix + ".meta");
  Cleanup(unlimited_prefix);
  Cleanup(budgeted_prefix);
}

TEST(TemporalPersistTest, PlannerSelectsPerBand) {
  const TemporalGridField field = MakeDriftingRamp(16, 3);
  auto db = TemporalFieldDatabase::Build(field, {});
  ASSERT_TRUE(db.ok());
  const PhysicalPlan wide = (*db)->PlanSnapshotQuery(0.5, {-1e6, 1e6});
  EXPECT_EQ(wide.kind, PlanKind::kFusedScan);
  const PhysicalPlan empty = (*db)->PlanSnapshotQuery(0.5, {1e5, 2e5});
  EXPECT_EQ(empty.kind, PlanKind::kIndexedFilter);
  EXPECT_EQ(empty.predicted_candidates, 0u);
}

TEST(TemporalPersistTest, CorruptCatalogRejected) {
  const std::string prefix = TestPrefix("temp_corrupt");
  Cleanup(prefix);
  const TemporalGridField field = MakeDriftingRamp(4, 3);
  auto db = TemporalFieldDatabase::Build(field, {});
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Save(prefix).ok());

  std::ofstream out(prefix + ".meta", std::ios::trunc);
  out << "fielddb-temporal-meta-v1\npage_size 4096\nnum_slabs 2\n";
  out.close();
  EXPECT_FALSE(TemporalFieldDatabase::Open(prefix).ok());
  Cleanup(prefix);
}

}  // namespace
}  // namespace fielddb

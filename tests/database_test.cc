#include "core/field_database.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gen/fractal.h"
#include "gen/monotonic.h"
#include "gen/noise_tin.h"
#include "gen/workload.h"

namespace fielddb {
namespace {

class DatabaseMethodTest : public ::testing::TestWithParam<IndexMethod> {
 protected:
  FieldDatabaseOptions OptionsFor(IndexMethod method) {
    FieldDatabaseOptions options;
    options.method = method;
    return options;
  }
};

TEST_P(DatabaseMethodTest, MonotonicFieldAnalyticArea) {
  // On w = x + y over the unit square, the region where a <= w <= b (for
  // 0 <= a <= b <= 1) is the strip between two anti-diagonals with area
  // (b^2 - a^2) / 2.
  auto field = MakeMonotonicField(32, 32);
  ASSERT_TRUE(field.ok());
  auto db = FieldDatabase::Build(*field, OptionsFor(GetParam()));
  ASSERT_TRUE(db.ok());

  for (const auto& [a, b] : std::vector<std::pair<double, double>>{
           {0.2, 0.5}, {0.0, 1.0}, {0.7, 0.9}, {0.45, 0.45}}) {
    ValueQueryResult result;
    ASSERT_TRUE((*db)->ValueQuery(ValueInterval{a, b}, &result).ok());
    const double expected = (b * b - a * a) / 2.0;
    EXPECT_NEAR(result.region.TotalArea(), expected, 1e-9)
        << "[" << a << ", " << b << "] with "
        << IndexMethodName(GetParam());
  }
}

TEST_P(DatabaseMethodTest, UpperHalfBandArea) {
  // 1 <= w <= 2 covers the complementary half: area 1/2 plus strip terms.
  auto field = MakeMonotonicField(16, 16);
  ASSERT_TRUE(field.ok());
  auto db = FieldDatabase::Build(*field, OptionsFor(GetParam()));
  ASSERT_TRUE(db.ok());
  ValueQueryResult result;
  ASSERT_TRUE((*db)->ValueQuery(ValueInterval{1.0, 2.0}, &result).ok());
  EXPECT_NEAR(result.region.TotalArea(), 0.5, 1e-9);
}

TEST_P(DatabaseMethodTest, AllMethodsAgreeOnFractal) {
  FractalOptions fo;
  fo.size_exp = 5;
  fo.roughness_h = 0.4;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());

  FieldDatabaseOptions ref_options;
  ref_options.method = IndexMethod::kLinearScan;
  auto reference = FieldDatabase::Build(*field, ref_options);
  ASSERT_TRUE(reference.ok());
  auto db = FieldDatabase::Build(*field, OptionsFor(GetParam()));
  ASSERT_TRUE(db.ok());

  const auto queries = GenerateValueQueries(field->ValueRange(),
                                            WorkloadOptions{0.04, 20, 17});
  for (const ValueInterval& q : queries) {
    ValueQueryResult expected, actual;
    ASSERT_TRUE((*reference)->ValueQuery(q, &expected).ok());
    ASSERT_TRUE((*db)->ValueQuery(q, &actual).ok());
    EXPECT_NEAR(actual.region.TotalArea(), expected.region.TotalArea(),
                1e-9)
        << q.ToString();
    EXPECT_EQ(actual.stats.answer_cells, expected.stats.answer_cells);
  }
}

TEST_P(DatabaseMethodTest, PointQueriesMatchFieldOnGrid) {
  FractalOptions fo;
  fo.size_exp = 4;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  auto db = FieldDatabase::Build(*field, OptionsFor(GetParam()));
  ASSERT_TRUE(db.ok());
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    const Point2 p{rng.NextDouble(), rng.NextDouble()};
    const StatusOr<double> expected = field->ValueAt(p);
    const StatusOr<double> actual = (*db)->PointQuery(p);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(actual.ok());
    EXPECT_NEAR(*actual, *expected, 1e-12);
  }
  EXPECT_EQ((*db)->PointQuery({3, 3}).status().code(),
            StatusCode::kNotFound);
}

TEST_P(DatabaseMethodTest, PointQueriesMatchFieldOnTin) {
  NoiseTinOptions no;
  no.num_sites = 300;
  auto field = MakeUrbanNoiseTin(no);
  ASSERT_TRUE(field.ok());
  auto db = FieldDatabase::Build(*field, OptionsFor(GetParam()));
  ASSERT_TRUE(db.ok());
  Rng rng(29);
  int tested = 0;
  while (tested < 50) {
    const Point2 p{rng.NextDouble(), rng.NextDouble()};
    const StatusOr<double> expected = field->ValueAt(p);
    if (!expected.ok()) continue;  // between hull and square edge
    const StatusOr<double> actual = (*db)->PointQuery(p);
    ASSERT_TRUE(actual.ok());
    EXPECT_NEAR(*actual, *expected, 1e-9);
    ++tested;
  }
}

TEST_P(DatabaseMethodTest, StatsModeMatchesFullQuery) {
  FractalOptions fo;
  fo.size_exp = 5;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  auto db = FieldDatabase::Build(*field, OptionsFor(GetParam()));
  ASSERT_TRUE(db.ok());
  const auto queries = GenerateValueQueries(field->ValueRange(),
                                            WorkloadOptions{0.03, 10, 31});
  for (const ValueInterval& q : queries) {
    ValueQueryResult full;
    QueryStats stats_only;
    ASSERT_TRUE((*db)->ValueQuery(q, &full).ok());
    ASSERT_TRUE((*db)->ValueQueryStats(q, &stats_only).ok());
    EXPECT_EQ(full.stats.candidate_cells, stats_only.candidate_cells);
    // Full mode counts cells yielding pieces; stats mode counts interval
    // intersections. Identical because a non-degenerate cell whose
    // interval intersects the band always contributes a piece.
    EXPECT_EQ(full.stats.answer_cells, stats_only.answer_cells);
  }
}

TEST_P(DatabaseMethodTest, EmptyQueryRejected) {
  auto field = MakeMonotonicField(4, 4);
  ASSERT_TRUE(field.ok());
  auto db = FieldDatabase::Build(*field, OptionsFor(GetParam()));
  ASSERT_TRUE(db.ok());
  ValueQueryResult result;
  EXPECT_FALSE(
      (*db)->ValueQuery(ValueInterval::Empty(), &result).ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, DatabaseMethodTest,
    ::testing::Values(IndexMethod::kLinearScan, IndexMethod::kIAll,
                      IndexMethod::kIHilbert,
                      IndexMethod::kIntervalQuadtree),
    [](const ::testing::TestParamInfo<IndexMethod>& info) {
      std::string name = IndexMethodName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(FieldDatabaseTest, RunWorkloadAggregates) {
  FractalOptions fo;
  fo.size_exp = 5;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  FieldDatabaseOptions options;
  options.method = IndexMethod::kIHilbert;
  auto db = FieldDatabase::Build(*field, options);
  ASSERT_TRUE(db.ok());
  const auto queries = GenerateValueQueries(field->ValueRange(),
                                            WorkloadOptions{0.02, 20, 41});
  auto ws = (*db)->RunWorkload(queries);
  ASSERT_TRUE(ws.ok());
  EXPECT_EQ(ws->num_queries, 20u);
  EXPECT_GT(ws->avg_candidates, 0.0);
  EXPECT_GT(ws->avg_logical_reads, 0.0);
  EXPECT_GE(ws->avg_candidates, ws->avg_answer_cells);
}

TEST(FieldDatabaseTest, IHilbertTouchesFewerPagesThanLinearScan) {
  // The headline claim, at unit-test scale: on a smooth field with a
  // narrow query, I-Hilbert must read far fewer pages than LinearScan.
  FractalOptions fo;
  fo.size_exp = 7;  // 16384 cells
  fo.roughness_h = 0.8;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());

  const auto queries = GenerateValueQueries(field->ValueRange(),
                                            WorkloadOptions{0.01, 30, 53});
  const auto avg_reads = [&](IndexMethod method) {
    FieldDatabaseOptions options;
    options.method = method;
    // Pin the indexed plan: this test compares the *methods'* page
    // counts, and auto mode would let I-Hilbert fall back to a fused
    // scan on queries where seeks outweigh the page savings.
    options.planner_mode = PlannerMode::kForceIndex;
    auto db = FieldDatabase::Build(*field, options);
    EXPECT_TRUE(db.ok());
    auto ws = (*db)->RunWorkload(queries);
    EXPECT_TRUE(ws.ok());
    return ws->avg_logical_reads;
  };
  const double scan = avg_reads(IndexMethod::kLinearScan);
  const double hilbert = avg_reads(IndexMethod::kIHilbert);
  EXPECT_LT(hilbert * 2.0, scan);
}

TEST(FieldDatabaseTest, SubfieldsAccessor) {
  auto field = MakeMonotonicField(16, 16);
  ASSERT_TRUE(field.ok());
  for (const IndexMethod method :
       {IndexMethod::kIHilbert, IndexMethod::kIntervalQuadtree}) {
    FieldDatabaseOptions options;
    options.method = method;
    auto db = FieldDatabase::Build(*field, options);
    ASSERT_TRUE(db.ok());
    ASSERT_NE((*db)->subfields(), nullptr);
    EXPECT_FALSE((*db)->subfields()->empty());
  }
  FieldDatabaseOptions options;
  options.method = IndexMethod::kLinearScan;
  auto db = FieldDatabase::Build(*field, options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->subfields(), nullptr);
}

TEST(FieldDatabaseTest, PointQueryWithoutSpatialIndexFallsBackToScan) {
  auto field = MakeMonotonicField(8, 8);
  ASSERT_TRUE(field.ok());
  FieldDatabaseOptions options;
  options.build_spatial_index = false;
  auto db = FieldDatabase::Build(*field, options);
  ASSERT_TRUE(db.ok());
  EXPECT_NEAR(*(*db)->PointQuery({0.3, 0.4}), 0.7, 1e-12);
  EXPECT_EQ((*db)->PointQuery({2, 2}).status().code(),
            StatusCode::kNotFound);
}

TEST(FieldDatabaseTest, WarmCacheWorkloadReadsFewerPhysicalPages) {
  FractalOptions fo;
  fo.size_exp = 6;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  FieldDatabaseOptions options;
  options.method = IndexMethod::kIHilbert;
  auto db = FieldDatabase::Build(*field, options);
  ASSERT_TRUE(db.ok());
  const auto queries = GenerateValueQueries(field->ValueRange(),
                                            WorkloadOptions{0.02, 20, 43});
  auto cold = (*db)->RunWorkload(queries, /*cold_cache=*/true);
  auto warm = (*db)->RunWorkload(queries, /*cold_cache=*/false);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  // Logical work is identical; a warm cache serves it with fewer misses.
  EXPECT_DOUBLE_EQ(warm->avg_logical_reads, cold->avg_logical_reads);
  EXPECT_LT(warm->avg_physical_reads, cold->avg_physical_reads);
}

TEST(FieldDatabaseTest, CustomPageSize) {
  auto field = MakeMonotonicField(16, 16);
  ASSERT_TRUE(field.ok());
  FieldDatabaseOptions options;
  options.page_size = 1024;
  auto db = FieldDatabase::Build(*field, options);
  ASSERT_TRUE(db.ok());
  ValueQueryResult result;
  ASSERT_TRUE((*db)->ValueQuery(ValueInterval{0.5, 0.6}, &result).ok());
  EXPECT_GT(result.region.TotalArea(), 0.0);
}

TEST(FieldDatabaseTest, OceanScenarioConjunctiveQuery) {
  // The paper's motivating example: temperature in [20, 25] AND salinity
  // in [12, 13], evaluated as two single-field value queries whose answer
  // regions are intersected by area sampling.
  auto temperature = MakeMonotonicField(16, 16);  // w = x + y in [0, 2]
  ASSERT_TRUE(temperature.ok());
  FractalOptions fo;
  fo.size_exp = 4;
  auto salinity = MakeFractalField(fo);
  ASSERT_TRUE(salinity.ok());

  FieldDatabaseOptions options;
  auto temp_db = FieldDatabase::Build(*temperature, options);
  auto sal_db = FieldDatabase::Build(*salinity, options);
  ASSERT_TRUE(temp_db.ok());
  ASSERT_TRUE(sal_db.ok());

  ValueQueryResult rt, rs;
  ASSERT_TRUE(
      (*temp_db)->ValueQuery(ValueInterval{0.5, 1.5}, &rt).ok());
  const ValueInterval sal_range = salinity->ValueRange();
  ASSERT_TRUE((*sal_db)
                  ->ValueQuery(ValueInterval{sal_range.min,
                                             sal_range.Center()},
                               &rs)
                  .ok());
  EXPECT_FALSE(rt.region.IsEmpty());
  EXPECT_FALSE(rs.region.IsEmpty());
}

}  // namespace
}  // namespace fielddb

// Cross-cutting randomized properties: query answers must be invariant
// under every *representation* choice — page size, buffer-pool size,
// curve order, bulk-vs-insert builds — and the estimation step must
// agree with Monte-Carlo measure on random cells.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/field_database.h"
#include "field/isoband.h"
#include "field/interpolation.h"
#include "gen/fractal.h"
#include "gen/noise_tin.h"
#include "gen/workload.h"

namespace fielddb {
namespace {

TEST(IsobandMonteCarloTest, RandomQuadsMatchSampledMeasure) {
  Rng rng(2026);
  for (int trial = 0; trial < 20; ++trial) {
    const CellRecord quad = CellRecord::Quad(
        0, Rect2{{0, 0}, {1, 1}}, rng.NextDouble(-2, 2),
        rng.NextDouble(-2, 2), rng.NextDouble(-2, 2),
        rng.NextDouble(-2, 2));
    const double lo = rng.NextDouble(-2, 2);
    const ValueInterval band{lo, lo + rng.NextDouble(0, 2)};

    Region region;
    ASSERT_TRUE(CellIsoband(quad, band, &region).ok());

    // Monte Carlo against the *fan* interpolant (4 triangles around the
    // center) that the estimation step defines.
    const Point2 center{0.5, 0.5};
    const double wc =
        (quad.w[0] + quad.w[1] + quad.w[2] + quad.w[3]) / 4.0;
    int inside = 0;
    const int samples = 40000;
    for (int s = 0; s < samples; ++s) {
      const Point2 p{rng.NextDouble(), rng.NextDouble()};
      // Locate the fan triangle containing p and interpolate linearly.
      double w = wc;
      for (int i = 0; i < 4; ++i) {
        const int j = (i + 1) % 4;
        const Triangle2 tri{{quad.Vertex(i), quad.Vertex(j), center}};
        if (!tri.Contains(p)) continue;
        auto plane = FitTrianglePlane(quad.Vertex(i), quad.w[i],
                                      quad.Vertex(j), quad.w[j], center,
                                      wc);
        ASSERT_TRUE(plane.ok());
        w = plane->Eval(p);
        break;
      }
      if (band.Contains(w)) ++inside;
    }
    EXPECT_NEAR(region.TotalArea(), static_cast<double>(inside) / samples,
                0.012)
        << "trial " << trial;
  }
}

TEST(RepresentationInvarianceTest, PageSizeDoesNotChangeAnswers) {
  FractalOptions fo;
  fo.size_exp = 5;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  const auto queries = GenerateValueQueries(field->ValueRange(),
                                            WorkloadOptions{0.03, 10, 77});

  std::vector<double> reference_areas;
  for (const uint32_t page_size : {1024u, 4096u, 16384u}) {
    FieldDatabaseOptions options;
    options.page_size = page_size;
    auto db = FieldDatabase::Build(*field, options);
    ASSERT_TRUE(db.ok());
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      ValueQueryResult result;
      ASSERT_TRUE((*db)->ValueQuery(queries[qi], &result).ok());
      if (page_size == 1024u) {
        reference_areas.push_back(result.region.TotalArea());
      } else {
        EXPECT_NEAR(result.region.TotalArea(), reference_areas[qi], 1e-9)
            << "page_size " << page_size;
      }
    }
  }
}

TEST(RepresentationInvarianceTest, PoolSizeDoesNotChangeAnswers) {
  FractalOptions fo;
  fo.size_exp = 5;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  const ValueInterval band{field->ValueRange().min,
                           field->ValueRange().Center()};
  double reference = -1;
  for (const size_t pool_pages : {4u, 64u, 4096u}) {
    FieldDatabaseOptions options;
    options.pool_pages = pool_pages;
    options.build_spatial_index = false;
    auto db = FieldDatabase::Build(*field, options);
    ASSERT_TRUE(db.ok());
    ValueQueryResult result;
    ASSERT_TRUE((*db)->ValueQuery(band, &result).ok());
    if (reference < 0) {
      reference = result.region.TotalArea();
    } else {
      EXPECT_NEAR(result.region.TotalArea(), reference, 1e-9)
          << "pool " << pool_pages;
    }
  }
}

TEST(RepresentationInvarianceTest, CurveOrderDoesNotChangeAnswers) {
  NoiseTinOptions no;
  no.num_sites = 300;
  auto field = MakeUrbanNoiseTin(no);
  ASSERT_TRUE(field.ok());
  const ValueInterval band{75.0, 85.0};
  double reference = -1;
  for (const int order : {4, 8, 16}) {
    FieldDatabaseOptions options;
    options.ihilbert.curve_order = order;
    auto db = FieldDatabase::Build(*field, options);
    ASSERT_TRUE(db.ok());
    ValueQueryResult result;
    ASSERT_TRUE((*db)->ValueQuery(band, &result).ok());
    if (reference < 0) {
      reference = result.region.TotalArea();
    } else {
      EXPECT_NEAR(result.region.TotalArea(), reference, 1e-9)
          << "order " << order;
    }
  }
}

TEST(RepresentationInvarianceTest, BulkAndInsertBuildsAgree) {
  FractalOptions fo;
  fo.size_exp = 5;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  const auto queries = GenerateValueQueries(field->ValueRange(),
                                            WorkloadOptions{0.02, 10, 83});
  for (const IndexMethod method :
       {IndexMethod::kIAll, IndexMethod::kIHilbert}) {
    FieldDatabaseOptions bulk, insert;
    bulk.method = insert.method = method;
    insert.iall.bulk_load = false;
    insert.ihilbert.bulk_load = false;
    auto db_bulk = FieldDatabase::Build(*field, bulk);
    auto db_insert = FieldDatabase::Build(*field, insert);
    ASSERT_TRUE(db_bulk.ok());
    ASSERT_TRUE(db_insert.ok());
    for (const ValueInterval& q : queries) {
      ValueQueryResult a, b;
      ASSERT_TRUE((*db_bulk)->ValueQuery(q, &a).ok());
      ASSERT_TRUE((*db_insert)->ValueQuery(q, &b).ok());
      EXPECT_NEAR(a.region.TotalArea(), b.region.TotalArea(), 1e-9);
      EXPECT_EQ(a.stats.answer_cells, b.stats.answer_cells);
    }
  }
}

TEST(RepresentationInvarianceTest, QueryAnswersAreDeterministic) {
  FractalOptions fo;
  fo.size_exp = 4;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  FieldDatabaseOptions options;
  auto db = FieldDatabase::Build(*field, options);
  ASSERT_TRUE(db.ok());
  const ValueInterval band{0.0, 0.2};
  ValueQueryResult first;
  ASSERT_TRUE((*db)->ValueQuery(band, &first).ok());
  for (int repeat = 0; repeat < 5; ++repeat) {
    ValueQueryResult again;
    ASSERT_TRUE((*db)->ValueQuery(band, &again).ok());
    EXPECT_EQ(again.region.NumPieces(), first.region.NumPieces());
    EXPECT_DOUBLE_EQ(again.region.TotalArea(), first.region.TotalArea());
  }
}

TEST(MonotonicityPropertyTest, WiderBandsNeverShrinkAnswers) {
  FractalOptions fo;
  fo.size_exp = 5;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  FieldDatabaseOptions options;
  auto db = FieldDatabase::Build(*field, options);
  ASSERT_TRUE(db.ok());
  const double center = field->ValueRange().Center();
  double prev_area = -1;
  uint64_t prev_cells = 0;
  for (const double half : {0.01, 0.05, 0.1, 0.3, 0.8}) {
    ValueQueryResult result;
    ASSERT_TRUE(
        (*db)->ValueQuery(ValueInterval{center - half, center + half},
                          &result)
            .ok());
    EXPECT_GE(result.region.TotalArea(), prev_area - 1e-12);
    EXPECT_GE(result.stats.answer_cells, prev_cells);
    prev_area = result.region.TotalArea();
    prev_cells = result.stats.answer_cells;
  }
  // The all-covering band yields the whole domain.
  ValueQueryResult all;
  ASSERT_TRUE((*db)->ValueQuery(ValueInterval{field->ValueRange().min,
                                              field->ValueRange().max},
                                &all)
                  .ok());
  EXPECT_NEAR(all.region.TotalArea(), 1.0, 1e-9);
}

}  // namespace
}  // namespace fielddb

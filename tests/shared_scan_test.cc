// Differential tests for shared-scan multi-query execution (DESIGN.md
// §17): a batch run as one fused sweep must answer bit-identically to
// the same queries run in isolation, across every index method; the
// members' leader-charged IoStats must sum to no more than the isolated
// totals; the executor's head-dequeue grouping must fuse overlapping
// queued queries; and a corrupt index must degrade the whole group to
// the store sweep exactly like the single-query path.

#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

#include "core/field_database.h"
#include "core/query_executor.h"
#include "gen/fractal.h"
#include "gen/workload.h"
#include "index/i_hilbert.h"
#include "obs/metrics.h"
#include "storage/fault_injection.h"

namespace fielddb {
namespace {

constexpr IndexMethod kAllMethods[] = {
    IndexMethod::kLinearScan, IndexMethod::kIAll, IndexMethod::kIHilbert,
    IndexMethod::kIntervalQuadtree, IndexMethod::kRowIp};

class SharedScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FractalOptions fo;
    fo.size_exp = 5;
    fo.roughness_h = 0.6;
    fo.seed = 11;
    field_ = MakeFractalField(fo);
    ASSERT_TRUE(field_.ok());
  }

  StatusOr<std::unique_ptr<FieldDatabase>> BuildDb(IndexMethod method) {
    FieldDatabaseOptions options;
    options.method = method;
    return FieldDatabase::Build(*field_, options);
  }

  std::vector<ValueInterval> OverlappingQueries(uint32_t n) const {
    // Wide intervals from one seed over the same range overlap heavily —
    // the workload shared scans exist for.
    WorkloadOptions wo;
    wo.qinterval_fraction = 0.2;
    wo.num_queries = n;
    wo.seed = 42;
    return GenerateValueQueries(field_->ValueRange(), wo);
  }

  StatusOr<GridField> field_ = Status::NotFound("not built");
};

TEST_F(SharedScanTest, MatchesIsolatedAcrossAllMethods) {
  const std::vector<ValueInterval> queries = OverlappingQueries(12);
  for (const IndexMethod method : kAllMethods) {
    SCOPED_TRACE(IndexMethodName(method));
    auto db = BuildDb(method);
    ASSERT_TRUE(db.ok());

    std::vector<ValueQueryResult> isolated(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_TRUE((*db)->ValueQuery(queries[i], &isolated[i]).ok());
    }

    std::vector<ValueQueryResult> shared;
    ASSERT_TRUE((*db)->SharedValueQuery(queries, &shared).ok());
    ASSERT_EQ(shared.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      SCOPED_TRACE("query " + std::to_string(i));
      EXPECT_EQ(shared[i].stats.answer_cells, isolated[i].stats.answer_cells);
      EXPECT_EQ(shared[i].stats.region_pieces,
                isolated[i].stats.region_pieces);
      EXPECT_EQ(shared[i].stats.index_fallbacks, 0u);
      ASSERT_EQ(shared[i].region.NumPieces(), isolated[i].region.NumPieces());
      // Same cells visited in the same storage order: the areas are
      // bit-identical, not merely close.
      EXPECT_EQ(shared[i].region.TotalArea(), isolated[i].region.TotalArea());
    }
  }
}

TEST_F(SharedScanTest, ForcedPlansAgreeWithAuto) {
  // The sweep must be plan-invariant: fused scan and indexed
  // filter+fetch over the envelope visit the same matching cells.
  const std::vector<ValueInterval> queries = OverlappingQueries(6);
  auto db = BuildDb(IndexMethod::kIHilbert);
  ASSERT_TRUE(db.ok());

  std::vector<std::vector<QueryStats>> per_mode;
  for (const PlannerMode mode : {PlannerMode::kAuto, PlannerMode::kForceScan,
                                 PlannerMode::kForceIndex}) {
    (*db)->set_planner_mode(mode);
    std::vector<QueryStats> stats;
    ASSERT_TRUE((*db)->SharedValueQueryStats(queries, &stats).ok());
    per_mode.push_back(std::move(stats));
  }
  for (size_t m = 1; m < per_mode.size(); ++m) {
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(per_mode[m][i].answer_cells, per_mode[0][i].answer_cells);
    }
  }
}

TEST_F(SharedScanTest, LeaderChargedIoSumsToOneSweep) {
  const std::vector<ValueInterval> queries = OverlappingQueries(8);
  auto db = BuildDb(IndexMethod::kIHilbert);
  ASSERT_TRUE(db.ok());

  // Isolated baseline: per-query attributed I/O, summed.
  IoStats isolated_sum;
  QueryContext ctx;
  for (const ValueInterval& q : queries) {
    QueryStats stats;
    ASSERT_TRUE((*db)->ValueQueryStats(q, &stats, &ctx).ok());
    isolated_sum += stats.io;
  }

  std::vector<QueryStats> shared;
  ASSERT_TRUE((*db)->SharedValueQueryStats(queries, &shared, &ctx).ok());
  ASSERT_EQ(shared.size(), queries.size());

  // Member 0 carries the whole sweep; every rider reports zero.
  EXPECT_GT(shared[0].io.logical_reads, 0u);
  IoStats shared_sum;
  for (size_t i = 0; i < shared.size(); ++i) {
    shared_sum += shared[i].io;
    if (i > 0) {
      EXPECT_EQ(shared[i].io.logical_reads, 0u);
      EXPECT_EQ(shared[i].io.physical_reads, 0u);
    }
    // Every member waited for the one sweep.
    EXPECT_EQ(shared[i].wall_seconds, shared[0].wall_seconds);
  }
  EXPECT_LE(shared_sum.logical_reads, isolated_sum.logical_reads);
  EXPECT_LE(shared_sum.physical_reads, isolated_sum.physical_reads);
}

TEST_F(SharedScanTest, DegenerateBatches) {
  auto db = BuildDb(IndexMethod::kIHilbert);
  ASSERT_TRUE(db.ok());

  std::vector<QueryStats> stats;
  ASSERT_TRUE((*db)->SharedValueQueryStats({}, &stats).ok());
  EXPECT_TRUE(stats.empty());

  // One member: exactly the single-query path.
  const ValueInterval q = OverlappingQueries(1)[0];
  ASSERT_TRUE((*db)->SharedValueQueryStats({q}, &stats).ok());
  ASSERT_EQ(stats.size(), 1u);
  QueryStats solo;
  ASSERT_TRUE((*db)->ValueQueryStats(q, &solo).ok());
  EXPECT_EQ(stats[0].answer_cells, solo.answer_cells);

  // An empty member interval rejects the whole batch.
  const Status s =
      (*db)->SharedValueQueryStats({q, ValueInterval{1.0, 0.0}}, &stats);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(SharedScanTest, CostSharedScanIsConsistentAndSharesIdentical) {
  auto db = BuildDb(IndexMethod::kIHilbert);
  ASSERT_TRUE(db.ok());
  const std::vector<ValueInterval> queries = OverlappingQueries(8);
  for (const ValueInterval& a : queries) {
    for (const ValueInterval& b : queries) {
      const SharedScanDecision d = (*db)->planner().CostSharedScan(a, b);
      EXPECT_EQ(d.share, d.shared_cost_ms <= d.isolated_cost_ms) << d.reason;
      EXPECT_FALSE(d.reason.empty());
    }
    // An identical candidate never widens the sweep: always shared.
    EXPECT_TRUE((*db)->planner().CostSharedScan(a, a).share);
  }
}

TEST_F(SharedScanTest, ExecutorGroupsQueuedOverlappingQueries) {
  auto db = BuildDb(IndexMethod::kIHilbert);
  ASSERT_TRUE(db.ok());
  // The sentinel plus 11 copies of one interval: an identical candidate
  // never widens the envelope, so the greedy admission must accept all
  // of them — the group composition is fully deterministic. (Distinct
  // overlapping intervals may legitimately split into several groups
  // once the hull grows past what the cost model will share;
  // RunBatchSharedMatchesIsolatedBatch covers that workload.)
  const std::vector<ValueInterval> seed_queries = OverlappingQueries(2);
  std::vector<ValueInterval> queries(12, seed_queries[1]);
  queries[0] = seed_queries[0];

  // Isolated reference answers.
  std::vector<uint64_t> expected;
  for (const ValueInterval& q : queries) {
    QueryStats stats;
    ASSERT_TRUE((*db)->ValueQueryStats(q, &stats).ok());
    expected.push_back(stats.answer_cells);
  }

  Counter* groups =
      MetricsRegistry::Default().GetCounter("executor.shared_scan_groups");
  const uint64_t groups_before = groups->value();

  QueryExecutor::Options eo;
  eo.threads = 1;  // one worker: the queue backlog is deterministic
  eo.shared_scan = true;
  eo.max_scan_group = 16;
  QueryExecutor executor(db->get(), eo);

  // Gate the single worker inside a sentinel query's callback: wait for
  // the worker to reach it (queue empty at that point), queue the whole
  // overlapping workload behind it, then release — the next dequeue
  // sees the full backlog and must fuse it into exactly one group.
  std::mutex mu;
  std::condition_variable cv;
  bool started = false;
  bool release = false;
  std::vector<QueryStats> got(queries.size());
  std::vector<Status> statuses(queries.size(), Status::OK());
  executor.Submit(queries[0], [&](const Status& s, const QueryStats& stats) {
    statuses[0] = s;
    got[0] = stats;
    std::unique_lock<std::mutex> lock(mu);
    started = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return started; });
  }
  for (size_t i = 1; i < queries.size(); ++i) {
    executor.Submit(queries[i], [&, i](const Status& s,
                                       const QueryStats& stats) {
      statuses[i] = s;
      got[i] = stats;
    });
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  executor.Drain();

  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(statuses[i].ok()) << statuses[i].ToString();
    EXPECT_EQ(got[i].answer_cells, expected[i]) << "query " << i;
  }
  // The 11 queued queries (all overlapping, all priced shareable) formed
  // one fused group behind the sentinel.
  EXPECT_EQ(groups->value() - groups_before, 1u);
  // The group's head (queries[1]) is its leader and carries the sweep;
  // every rider reports zero I/O.
  EXPECT_GT(got[1].io.logical_reads, 0u);
  for (size_t i = 2; i < queries.size(); ++i) {
    EXPECT_EQ(got[i].io.logical_reads, 0u) << "query " << i;
  }
}

TEST_F(SharedScanTest, RunBatchSharedMatchesIsolatedBatch) {
  auto db = BuildDb(IndexMethod::kIHilbert);
  ASSERT_TRUE(db.ok());
  const std::vector<ValueInterval> queries = OverlappingQueries(32);

  QueryExecutor::Options iso_opts;
  iso_opts.threads = 2;
  QueryExecutor isolated(db->get(), iso_opts);
  QueryExecutor::BatchResult iso;
  ASSERT_TRUE(isolated.RunBatch(queries, &iso).ok());

  QueryExecutor::Options sh_opts;
  sh_opts.threads = 2;
  sh_opts.shared_scan = true;
  QueryExecutor shared(db->get(), sh_opts);
  QueryExecutor::BatchResult sh;
  ASSERT_TRUE(shared.RunBatch(queries, &sh).ok());

  EXPECT_EQ(iso.failed, 0u);
  EXPECT_EQ(sh.failed, 0u);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(sh.per_query[i].answer_cells, iso.per_query[i].answer_cells)
        << "query " << i;
  }
  EXPECT_LE(sh.total.io.logical_reads, iso.total.io.logical_reads);
  EXPECT_LE(sh.total.io.physical_reads, iso.total.io.physical_reads);
}

TEST_F(SharedScanTest, CorruptIndexDegradesTheWholeGroupOnce) {
  // Intact reference.
  auto intact = BuildDb(IndexMethod::kIHilbert);
  ASSERT_TRUE(intact.ok());

  FaultInjectingPageFile* injector = nullptr;
  FieldDatabaseOptions options;
  options.method = IndexMethod::kIHilbert;
  options.page_file_factory = [&injector](uint32_t page_size) {
    auto mem = std::make_unique<MemPageFile>(page_size);
    auto faulty = std::make_unique<FaultInjectingPageFile>(std::move(mem));
    injector = faulty.get();
    return faulty;
  };
  auto db = FieldDatabase::Build(*field_, options);
  ASSERT_TRUE(db.ok());
  // Pin the indexed plan so the shared sweep's filter really descends
  // the (corrupt) tree instead of planning the fused scan around it.
  (*db)->set_planner_mode(PlannerMode::kForceIndex);
  const auto* idx = static_cast<const IHilbertIndex*>(&(*db)->index());
  injector->CorruptPage(idx->tree().meta().root);
  ASSERT_TRUE((*db)->pool().Clear().ok());

  const std::vector<ValueInterval> queries = OverlappingQueries(3);
  std::vector<ValueQueryResult> shared;
  ASSERT_TRUE((*db)->SharedValueQuery(queries, &shared).ok());
  ASSERT_EQ(shared.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ValueQueryResult expected;
    ASSERT_TRUE((*intact)->ValueQuery(queries[i], &expected).ok());
    EXPECT_EQ(shared[i].stats.index_fallbacks, 1u);
    EXPECT_EQ(shared[i].stats.answer_cells, expected.stats.answer_cells);
    EXPECT_EQ(shared[i].region.NumPieces(), expected.region.NumPieces());
    EXPECT_EQ(shared[i].region.TotalArea(), expected.region.TotalArea());
  }
  // One sweep fell back — counted once, not once per member.
  EXPECT_EQ((*db)->index_fallbacks(), 1u);
}

}  // namespace
}  // namespace fielddb

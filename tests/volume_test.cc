#include "volume/volume_index.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gen/workload.h"
#include "volume/tet_band.h"

namespace fielddb {
namespace {

TEST(TetFractionTest, BoundaryCases) {
  const std::array<double, 4> v = {0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(TetFractionBelow(v, -1), 0.0);
  EXPECT_DOUBLE_EQ(TetFractionBelow(v, 0), 0.0);
  EXPECT_DOUBLE_EQ(TetFractionBelow(v, 3), 1.0);
  EXPECT_DOUBLE_EQ(TetFractionBelow(v, 99), 1.0);
}

TEST(TetFractionTest, FirstCornerCubic) {
  // For a < t <= b: F = (t-a)^3 / ((b-a)(c-a)(d-a)).
  const std::array<double, 4> v = {0, 1, 2, 4};
  EXPECT_NEAR(TetFractionBelow(v, 0.5), 0.125 / (1 * 2 * 4), 1e-12);
  EXPECT_NEAR(TetFractionBelow(v, 1.0), 1.0 / 8.0, 1e-9);
}

TEST(TetFractionTest, SymmetricMidpoint) {
  // Symmetric values: exactly half the volume below the midpoint.
  const std::array<double, 4> v = {0, 1, 3, 4};
  EXPECT_NEAR(TetFractionBelow(v, 2.0), 0.5, 1e-9);
}

TEST(TetFractionTest, MonotoneNondecreasing) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::array<double, 4> v;
    for (double& x : v) x = rng.NextDouble(-5, 5);
    double prev = 0;
    for (double t = -6; t <= 6; t += 0.1) {
      const double f = TetFractionBelow(v, t);
      EXPECT_GE(f, prev - 1e-12);
      EXPECT_GE(f, 0.0);
      EXPECT_LE(f, 1.0);
      prev = f;
    }
  }
}

TEST(TetFractionTest, MatchesMonteCarlo) {
  // Reference: sample barycentric points uniformly in a tetrahedron.
  Rng rng(7);
  const std::array<double, 4> v = {0.2, 0.9, 1.4, 2.7};
  for (const double t : {0.5, 1.0, 1.5, 2.0, 2.5}) {
    int below = 0;
    const int samples = 100000;
    for (int s = 0; s < samples; ++s) {
      // Uniform barycentric via sorted uniforms (spacings method).
      double u[3] = {rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
      std::sort(u, u + 3);
      const double l0 = u[0], l1 = u[1] - u[0], l2 = u[2] - u[1],
                   l3 = 1 - u[2];
      const double w = l0 * v[0] + l1 * v[1] + l2 * v[2] + l3 * v[3];
      if (w <= t) ++below;
    }
    EXPECT_NEAR(TetFractionBelow(v, t),
                static_cast<double>(below) / samples, 6e-3)
        << "t=" << t;
  }
}

TEST(TetFractionTest, CoincidentValuesContinuous) {
  // Repeated knots must not blow up and must sit between neighbors.
  const std::array<double, 4> dup = {1, 1, 2, 3};
  const double f = TetFractionBelow(dup, 1.5);
  EXPECT_GT(f, 0.0);
  EXPECT_LT(f, 1.0);
  // All equal: step function.
  const std::array<double, 4> all = {2, 2, 2, 2};
  EXPECT_DOUBLE_EQ(TetFractionBelow(all, 1.9), 0.0);
  EXPECT_DOUBLE_EQ(TetFractionBelow(all, 2.1), 1.0);
}

TEST(TetBandTest, ConstantCellExactQuery) {
  const std::array<double, 4> all = {5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(TetBandFraction(all, ValueInterval{5, 5}), 1.0);
  EXPECT_DOUBLE_EQ(TetBandFraction(all, ValueInterval{4, 6}), 1.0);
  EXPECT_DOUBLE_EQ(TetBandFraction(all, ValueInterval{6, 7}), 0.0);
}

TEST(VoxelBandTest, AffineFieldExact) {
  // w = x: corners bit0=+x. Band [0.25, 0.75] is a slab of volume 0.5.
  double corners[8];
  for (int c = 0; c < 8; ++c) corners[c] = (c & 1) ? 1.0 : 0.0;
  EXPECT_NEAR(VoxelBandFraction(corners, ValueInterval{0.25, 0.75}), 0.5,
              1e-9);
  EXPECT_NEAR(VoxelBandFraction(corners, ValueInterval{0, 1}), 1.0, 1e-9);
}

TEST(VoxelBandTest, DiagonalFieldMatchesMonteCarlo) {
  // w = x + y + z via corner values; Kuhn tets are exact for this
  // (tri-)linear function.
  double corners[8];
  for (int c = 0; c < 8; ++c) {
    corners[c] = (c & 1) + ((c >> 1) & 1) + ((c >> 2) & 1);
  }
  Rng rng(11);
  const ValueInterval band{0.8, 1.7};
  int inside = 0;
  const int samples = 200000;
  for (int s = 0; s < samples; ++s) {
    const double w =
        rng.NextDouble() + rng.NextDouble() + rng.NextDouble();
    if (band.Contains(w)) ++inside;
  }
  EXPECT_NEAR(VoxelBandFraction(corners, band),
              static_cast<double>(inside) / samples, 5e-3);
}

TEST(VolumeFieldTest, CreateValidates) {
  EXPECT_FALSE(VolumeGridField::Create(0, 2, 2, {}).ok());
  EXPECT_FALSE(VolumeGridField::Create(2, 2, 2, {1.0, 2.0}).ok());
}

TEST(VolumeFieldTest, VoxelCoordsRoundTrip) {
  auto field = MakeFractalVolume({4, 3, 2, 0.5, 3, 1});
  ASSERT_TRUE(field.ok());
  EXPECT_EQ(field->NumCells(), 24u);
  for (VoxelId id = 0; id < field->NumCells(); ++id) {
    const auto c = field->VoxelCoords(id);
    EXPECT_EQ(c[0] + c[1] * 4u + c[2] * 12u, id);
  }
}

TEST(VolumeFieldTest, TrilinearValueAt) {
  // Affine samples w = x: trilinear reproduces them exactly.
  const uint32_t n = 4;
  std::vector<double> samples;
  for (uint32_t k = 0; k <= n; ++k) {
    for (uint32_t j = 0; j <= n; ++j) {
      for (uint32_t i = 0; i <= n; ++i) {
        samples.push_back(static_cast<double>(i) / n);
      }
    }
  }
  auto field = VolumeGridField::Create(n, n, n, samples);
  ASSERT_TRUE(field.ok());
  Rng rng(13);
  for (int s = 0; s < 100; ++s) {
    const double x = rng.NextDouble();
    EXPECT_NEAR(*field->ValueAt(x, rng.NextDouble(), rng.NextDouble()), x,
                1e-12);
  }
  EXPECT_FALSE(field->ValueAt(1.5, 0, 0).ok());
}

TEST(VolumeFieldTest, FractalDeterministicAndBounded) {
  VolumeFractalOptions options;
  options.nx = options.ny = options.nz = 8;
  auto a = MakeFractalVolume(options);
  auto b = MakeFractalVolume(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->ValueRange(), b->ValueRange());
  EXPECT_FALSE(a->ValueRange().IsEmpty());
}

class VolumeDbTest : public ::testing::TestWithParam<VolumeIndexMethod> {};

TEST_P(VolumeDbTest, AffineVolumeAnalytic) {
  // w = x: band [a, b] has volume b - a.
  const uint32_t n = 8;
  std::vector<double> samples;
  for (uint32_t k = 0; k <= n; ++k) {
    for (uint32_t j = 0; j <= n; ++j) {
      for (uint32_t i = 0; i <= n; ++i) {
        samples.push_back(static_cast<double>(i) / n);
      }
    }
  }
  auto field = VolumeGridField::Create(n, n, n, samples);
  ASSERT_TRUE(field.ok());
  VolumeFieldDatabase::Options options;
  options.method = GetParam();
  auto db = VolumeFieldDatabase::Build(*field, options);
  ASSERT_TRUE(db.ok());
  VolumeQueryResult result;
  ASSERT_TRUE((*db)->BandQuery(ValueInterval{0.25, 0.7}, &result).ok());
  EXPECT_NEAR(result.volume, 0.45, 1e-9);
  ASSERT_TRUE((*db)->BandQuery(ValueInterval{-5, 5}, &result).ok());
  EXPECT_NEAR(result.volume, 1.0, 1e-9);
}

TEST_P(VolumeDbTest, MatchesLinearScanOnFractal) {
  VolumeFractalOptions vo;
  vo.nx = vo.ny = vo.nz = 16;
  auto field = MakeFractalVolume(vo);
  ASSERT_TRUE(field.ok());

  VolumeFieldDatabase::Options scan_options;
  scan_options.method = VolumeIndexMethod::kLinearScan;
  auto reference = VolumeFieldDatabase::Build(*field, scan_options);
  ASSERT_TRUE(reference.ok());
  VolumeFieldDatabase::Options options;
  options.method = GetParam();
  auto db = VolumeFieldDatabase::Build(*field, options);
  ASSERT_TRUE(db.ok());

  const auto queries = GenerateValueQueries(field->ValueRange(),
                                            WorkloadOptions{0.05, 20, 17});
  for (const ValueInterval& q : queries) {
    VolumeQueryResult expected, actual;
    ASSERT_TRUE((*reference)->BandQuery(q, &expected).ok());
    ASSERT_TRUE((*db)->BandQuery(q, &actual).ok());
    EXPECT_NEAR(actual.volume, expected.volume, 1e-9);
    EXPECT_EQ(actual.stats.answer_cells, expected.stats.answer_cells);
  }
}

TEST_P(VolumeDbTest, RejectsEmptyBand) {
  VolumeFractalOptions vo;
  vo.nx = vo.ny = vo.nz = 4;
  auto field = MakeFractalVolume(vo);
  ASSERT_TRUE(field.ok());
  VolumeFieldDatabase::Options options;
  options.method = GetParam();
  auto db = VolumeFieldDatabase::Build(*field, options);
  ASSERT_TRUE(db.ok());
  VolumeQueryResult result;
  EXPECT_FALSE((*db)->BandQuery(ValueInterval::Empty(), &result).ok());
}

INSTANTIATE_TEST_SUITE_P(Methods, VolumeDbTest,
                         ::testing::Values(VolumeIndexMethod::kLinearScan,
                                           VolumeIndexMethod::kIHilbert),
                         [](const auto& info) {
                           return info.param ==
                                          VolumeIndexMethod::kLinearScan
                                      ? "LinearScan"
                                      : "IHilbert";
                         });

TEST(VolumeDbTest, SubfieldsPartitionVoxelStore) {
  VolumeFractalOptions vo;
  vo.nx = vo.ny = vo.nz = 12;
  auto field = MakeFractalVolume(vo);
  ASSERT_TRUE(field.ok());
  VolumeFieldDatabase::Options options;
  auto db = VolumeFieldDatabase::Build(*field, options);
  ASSERT_TRUE(db.ok());
  const auto& sfs = (*db)->subfields();
  ASSERT_FALSE(sfs.empty());
  EXPECT_EQ(sfs.front().start, 0u);
  EXPECT_EQ(sfs.back().end, (*db)->num_cells());
  for (size_t i = 0; i + 1 < sfs.size(); ++i) {
    EXPECT_EQ(sfs[i].end, sfs[i + 1].start);
    EXPECT_LT(sfs[i].start, sfs[i].end);
  }
}

TEST(VolumeDbTest, FullBandCoversUnitCube) {
  VolumeFractalOptions vo;
  vo.nx = vo.ny = vo.nz = 8;
  auto field = MakeFractalVolume(vo);
  ASSERT_TRUE(field.ok());
  VolumeFieldDatabase::Options options;
  auto db = VolumeFieldDatabase::Build(*field, options);
  ASSERT_TRUE(db.ok());
  VolumeQueryResult result;
  ASSERT_TRUE((*db)->BandQuery(field->ValueRange(), &result).ok());
  EXPECT_NEAR(result.volume, 1.0, 1e-9);
  EXPECT_EQ(result.stats.answer_cells, (*db)->num_cells());
}

TEST(VolumeDbTest, IHilbertGroupsAndWins) {
  VolumeFractalOptions vo;
  vo.nx = vo.ny = vo.nz = 32;  // 32768 voxels
  vo.roughness_h = 0.8;
  auto field = MakeFractalVolume(vo);
  ASSERT_TRUE(field.ok());

  const auto queries = GenerateValueQueries(field->ValueRange(),
                                            WorkloadOptions{0.02, 15, 21});
  const auto avg_reads = [&](VolumeIndexMethod method) {
    VolumeFieldDatabase::Options options;
    options.method = method;
    // This test isolates the index's I/O advantage, so pin the physical
    // plan: under kAuto the cost-based planner is free to (correctly)
    // prefer the fused scan for the wide bands in this workload.
    options.planner_mode = PlannerMode::kForceIndex;
    auto db = VolumeFieldDatabase::Build(*field, options);
    EXPECT_TRUE(db.ok());
    if (method == VolumeIndexMethod::kIHilbert) {
      EXPECT_GT((*db)->subfields().size(), 0u);
      EXPECT_LT((*db)->subfields().size(), (*db)->num_cells() / 4);
    }
    auto ws = (*db)->RunWorkload(queries);
    EXPECT_TRUE(ws.ok());
    return ws->avg_logical_reads;
  };
  EXPECT_LT(2 * avg_reads(VolumeIndexMethod::kIHilbert),
            avg_reads(VolumeIndexMethod::kLinearScan));
}

}  // namespace
}  // namespace fielddb

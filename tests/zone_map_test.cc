#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "common/rng.h"
#include "gen/fractal.h"
#include "index/i_all.h"
#include "index/i_hilbert.h"
#include "index/interval_quadtree.h"
#include "index/linear_scan.h"
#include "index/row_ip_index.h"
#include "storage/page_file.h"

namespace fielddb {
namespace {

struct IndexFixture {
  std::unique_ptr<MemPageFile> file;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<ValueIndex> index;
};

IndexFixture BuildIndex(IndexMethod method, const Field& field) {
  IndexFixture fx;
  fx.file = std::make_unique<MemPageFile>();
  fx.pool = std::make_unique<BufferPool>(fx.file.get(), 4096);
  switch (method) {
    case IndexMethod::kLinearScan: {
      auto idx = LinearScanIndex::Build(fx.pool.get(), field);
      EXPECT_TRUE(idx.ok());
      fx.index = std::move(idx).value();
      break;
    }
    case IndexMethod::kIAll: {
      auto idx = IAllIndex::Build(fx.pool.get(), field);
      EXPECT_TRUE(idx.ok());
      fx.index = std::move(idx).value();
      break;
    }
    case IndexMethod::kIHilbert: {
      auto idx = IHilbertIndex::Build(fx.pool.get(), field);
      EXPECT_TRUE(idx.ok());
      fx.index = std::move(idx).value();
      break;
    }
    case IndexMethod::kIntervalQuadtree: {
      auto idx = IntervalQuadtreeIndex::Build(fx.pool.get(), field);
      EXPECT_TRUE(idx.ok());
      fx.index = std::move(idx).value();
      break;
    }
    case IndexMethod::kRowIp: {
      auto idx = RowIpIndex::Build(fx.pool.get(), field);
      EXPECT_TRUE(idx.ok());
      fx.index = std::move(idx).value();
      break;
    }
  }
  return fx;
}

// The invariant the whole vectorized pipeline rests on: every zone entry
// equals the interval recomputed from the slot's record bytes.
void ExpectZoneMapMatchesRecords(const CellStore& store) {
  ASSERT_EQ(store.zone_min().size(), store.size());
  ASSERT_EQ(store.zone_max().size(), store.size());
  ASSERT_TRUE(store
                  .Scan(0, store.size(),
                        [&](uint64_t pos, const CellRecord& cell) {
                          EXPECT_EQ(store.ZoneIntervalOf(pos),
                                    cell.Interval())
                              << "slot " << pos;
                          return true;
                        })
                  .ok());
}

class ZoneMapTest : public ::testing::TestWithParam<IndexMethod> {};

TEST_P(ZoneMapTest, BuildFillsZoneMapFromRecords) {
  FractalOptions fo;
  fo.size_exp = 5;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  IndexFixture fx = BuildIndex(GetParam(), *field);
  ExpectZoneMapMatchesRecords(fx.index->cell_store());
}

TEST_P(ZoneMapTest, UpdateStormKeepsZoneMapConsistent) {
  FractalOptions fo;
  fo.size_exp = 4;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  IndexFixture fx = BuildIndex(GetParam(), *field);

  Rng rng(41);
  for (int round = 0; round < 150; ++round) {
    const CellId id =
        static_cast<CellId>(rng.NextBounded(field->NumCells()));
    const double base = rng.NextDouble(-5, 5);
    ASSERT_TRUE(fx.index
                    ->UpdateCellValues(
                        id, {base, base + rng.NextDouble(),
                             base + rng.NextDouble(),
                             base + rng.NextDouble()})
                    .ok());
    // The updated slot must be exact immediately...
    const uint64_t pos = fx.index->cell_store().PositionOf(id);
    CellRecord rec;
    ASSERT_TRUE(fx.index->cell_store().Get(pos, &rec).ok());
    ASSERT_EQ(fx.index->cell_store().ZoneIntervalOf(pos), rec.Interval());
  }
  // ...and the whole map exact at the end.
  ExpectZoneMapMatchesRecords(fx.index->cell_store());
}

TEST_P(ZoneMapTest, FilterZoneMapMatchesBruteForce) {
  FractalOptions fo;
  fo.size_exp = 5;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  IndexFixture fx = BuildIndex(GetParam(), *field);
  const CellStore& store = fx.index->cell_store();

  Rng rng(43);
  for (int i = 0; i < 20; ++i) {
    const ValueInterval q =
        ValueInterval::Of(rng.NextDouble(-2, 3), rng.NextDouble(-2, 3));
    std::vector<PosRange> ranges;
    store.FilterZoneMap(q, &ranges);
    std::vector<PosRange> expect;
    ASSERT_TRUE(store
                    .Scan(0, store.size(),
                          [&](uint64_t pos, const CellRecord& cell) {
                            if (cell.Interval().Intersects(q)) {
                              AppendPosition(&expect, pos);
                            }
                            return true;
                          })
                    .ok());
    ASSERT_EQ(ranges, expect) << "query " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, ZoneMapTest,
    ::testing::Values(IndexMethod::kLinearScan, IndexMethod::kIAll,
                      IndexMethod::kIHilbert,
                      IndexMethod::kIntervalQuadtree, IndexMethod::kRowIp),
    [](const ::testing::TestParamInfo<IndexMethod>& info) {
      std::string name = IndexMethodName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ZoneMapAttachTest, AttachRebuildsZoneMap) {
  FractalOptions fo;
  fo.size_exp = 4;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  MemPageFile file;
  BufferPool pool(&file, 256);
  auto built = CellStore::Build(&pool, *field, {});
  ASSERT_TRUE(built.ok());
  const PageId first = built->first_page();
  const uint64_t n = built->size();

  auto attached = CellStore::Attach(&pool, first, n);
  ASSERT_TRUE(attached.ok());
  EXPECT_EQ(attached->zone_min(), built->zone_min());
  EXPECT_EQ(attached->zone_max(), built->zone_max());
  ExpectZoneMapMatchesRecords(*attached);
}

TEST(ScanRangesFilteredTest, VisitsExactlyMatchingSlotsAndCountsSkips) {
  FractalOptions fo;
  fo.size_exp = 5;  // 1024 cells
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  MemPageFile file;
  BufferPool pool(&file, 256);
  auto store = CellStore::Build(&pool, *field, {});
  ASSERT_TRUE(store.ok());

  Rng rng(47);
  for (int iter = 0; iter < 10; ++iter) {
    // Disjoint ascending runs over the store, random query band.
    std::vector<PosRange> ranges;
    uint64_t cursor = 0;
    while (cursor + 8 < store->size()) {
      const uint64_t begin = cursor + rng.NextBounded(40);
      const uint64_t end =
          std::min<uint64_t>(begin + 1 + rng.NextBounded(120),
                             store->size());
      if (begin >= end) break;
      ranges.push_back(PosRange{begin, end});
      cursor = end + 1 + rng.NextBounded(30);
    }
    const ValueInterval q =
        ValueInterval::Of(rng.NextDouble(-2, 3), rng.NextDouble(-2, 3));

    // Ground truth from an unfiltered walk of the same runs.
    std::set<uint64_t> expect_visited;
    uint64_t total_slots = 0;
    uint64_t expect_pages = 0;
    for (const PosRange& r : ranges) {
      total_slots += r.length();
      expect_pages += (r.end - 1) / store->cells_per_page() -
                      r.begin / store->cells_per_page() + 1;
      ASSERT_TRUE(store
                      ->Scan(r.begin, r.end,
                             [&](uint64_t pos, const CellRecord& cell) {
                               if (cell.Interval().Intersects(q)) {
                                 expect_visited.insert(pos);
                               }
                               return true;
                             })
                      .ok());
    }

    std::set<uint64_t> visited;
    uint64_t skipped = 0;
    const IoStats before = pool.stats();
    ASSERT_TRUE(store
                    ->ScanRangesFiltered(
                        ranges.data(), ranges.size(), q, &skipped,
                        [&](uint64_t pos, const CellRecord& cell) {
                          EXPECT_TRUE(cell.Interval().Intersects(q));
                          EXPECT_TRUE(visited.insert(pos).second);
                          return true;
                        })
                    .ok());
    const IoStats delta = pool.stats() - before;

    EXPECT_EQ(visited, expect_visited) << "iter " << iter;
    EXPECT_EQ(skipped, total_slots - expect_visited.size())
        << "iter " << iter;
    // Every page of every run is fetched exactly once — the zone map
    // skips record deserialization, never page reads.
    EXPECT_EQ(delta.logical_reads, expect_pages) << "iter " << iter;
  }
}

TEST(ScanRangesTest, ReadaheadPreservesIoTotals) {
  FractalOptions fo;
  fo.size_exp = 5;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());

  // Two pools over the same file contents: one walks runs with the
  // readahead path, the other with the plain per-page scan. Their
  // logical and physical totals must agree exactly.
  MemPageFile file;
  BufferPool pool(&file, 256);
  auto store = CellStore::Build(&pool, *field, {});
  ASSERT_TRUE(store.ok());

  const std::vector<PosRange> runs = {{3, 200}, {450, 700}, {900, 1024}};

  ASSERT_TRUE(pool.Clear().ok());
  pool.ResetStats();
  uint64_t seen_ranges = 0;
  ASSERT_TRUE(store
                  ->ScanRanges(runs.data(), runs.size(),
                               [&](uint64_t, const CellRecord&) {
                                 ++seen_ranges;
                                 return true;
                               })
                  .ok());
  const IoStats with_readahead = pool.stats();

  ASSERT_TRUE(pool.Clear().ok());
  pool.ResetStats();
  uint64_t seen_scan = 0;
  for (const PosRange& r : runs) {
    ASSERT_TRUE(store
                    ->Scan(r.begin, r.end,
                           [&](uint64_t, const CellRecord&) {
                             ++seen_scan;
                             return true;
                           })
                    .ok());
  }
  const IoStats plain = pool.stats();

  EXPECT_EQ(seen_ranges, seen_scan);
  EXPECT_EQ(with_readahead.logical_reads, plain.logical_reads);
  EXPECT_EQ(with_readahead.physical_reads, plain.physical_reads);
  // Readahead turns the run's reads into sequential ones; it must never
  // read a page the plain scan would not have.
  EXPECT_GE(with_readahead.sequential_reads, plain.sequential_reads);
}

}  // namespace
}  // namespace fielddb

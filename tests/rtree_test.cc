#include "rtree/rstar_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "storage/page_file.h"

namespace fielddb {
namespace {

template <int Dim>
Box<Dim> RandomBox(Rng& rng, double max_extent) {
  Box<Dim> b;
  for (int d = 0; d < Dim; ++d) {
    const double lo = rng.NextDouble();
    b.lo[d] = lo;
    b.hi[d] = lo + rng.NextDouble() * max_extent;
  }
  return b;
}

template <int Dim>
std::vector<uint64_t> BruteForceSearch(
    const std::vector<RTreeEntry<Dim>>& entries, const Box<Dim>& query) {
  std::vector<uint64_t> hits;
  for (const auto& e : entries) {
    if (e.box.Intersects(query)) hits.push_back(e.a);
  }
  std::sort(hits.begin(), hits.end());
  return hits;
}

template <int Dim>
std::vector<uint64_t> TreeSearch(const RStarTree<Dim>& tree,
                                 const Box<Dim>& query) {
  std::vector<uint64_t> hits;
  EXPECT_TRUE(tree.Search(query, [&](const RTreeEntry<Dim>& e) {
                    hits.push_back(e.a);
                    return true;
                  }).ok());
  std::sort(hits.begin(), hits.end());
  return hits;
}

TEST(RStarTreeTest, EmptyTreeSearchFindsNothing) {
  MemPageFile file;
  BufferPool pool(&file, 64);
  auto tree = RStarTree<2>::Create(&pool);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 0u);
  EXPECT_EQ(tree->height(), 1u);
  Box<2> q;
  q.lo = {0, 0};
  q.hi = {1, 1};
  EXPECT_TRUE(TreeSearch(*tree, q).empty());
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

TEST(RStarTreeTest, SingleInsertAndHit) {
  MemPageFile file;
  BufferPool pool(&file, 64);
  auto tree = RStarTree<2>::Create(&pool);
  ASSERT_TRUE(tree.ok());
  Box<2> b;
  b.lo = {0.2, 0.2};
  b.hi = {0.4, 0.4};
  ASSERT_TRUE(tree->Insert(b, 42).ok());
  EXPECT_EQ(tree->size(), 1u);

  Box<2> hit_q;
  hit_q.lo = {0.3, 0.3};
  hit_q.hi = {0.3, 0.3};
  EXPECT_EQ(TreeSearch(*tree, hit_q), std::vector<uint64_t>{42});

  Box<2> miss_q;
  miss_q.lo = {0.5, 0.5};
  miss_q.hi = {0.9, 0.9};
  EXPECT_TRUE(TreeSearch(*tree, miss_q).empty());
}

TEST(RStarTreeTest, RejectsEmptyBox) {
  MemPageFile file;
  BufferPool pool(&file, 64);
  auto tree = RStarTree<1>::Create(&pool);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->Insert(Box<1>::Empty(), 0).code(),
            StatusCode::kInvalidArgument);
}

TEST(RStarTreeTest, PayloadWordsRoundTrip) {
  MemPageFile file;
  BufferPool pool(&file, 64);
  auto tree = RStarTree<1>::Create(&pool);
  ASSERT_TRUE(tree.ok());
  Box<1> b;
  b.lo = {1};
  b.hi = {2};
  ASSERT_TRUE(tree->Insert(b, 7, 13).ok());
  bool seen = false;
  ASSERT_TRUE(tree->Search(b, [&](const RTreeEntry<1>& e) {
                    EXPECT_EQ(e.a, 7u);
                    EXPECT_EQ(e.b, 13u);
                    seen = true;
                    return true;
                  }).ok());
  EXPECT_TRUE(seen);
}

// Cross-checks tree search against brute force over many random queries,
// for 1-D and 2-D and for both insertion and bulk-loading.
struct RandomizedCase {
  int num_entries;
  bool bulk;
  uint64_t seed;
};

class RandomizedRTree1DTest
    : public ::testing::TestWithParam<RandomizedCase> {};

TEST_P(RandomizedRTree1DTest, MatchesBruteForce) {
  const auto [n, bulk, seed] = GetParam();
  Rng rng(seed);
  MemPageFile file;
  BufferPool pool(&file, 256);

  std::vector<RTreeEntry<1>> entries(n);
  for (int i = 0; i < n; ++i) {
    entries[i].box = RandomBox<1>(rng, 0.05);
    entries[i].a = i;
  }

  StatusOr<RStarTree<1>> tree = [&] {
    if (bulk) {
      auto sorted = entries;
      std::sort(sorted.begin(), sorted.end(),
                [](const auto& x, const auto& y) {
                  return x.box.lo[0] < y.box.lo[0];
                });
      return RStarTree<1>::BulkLoad(&pool, sorted);
    }
    auto t = RStarTree<1>::Create(&pool);
    EXPECT_TRUE(t.ok());
    for (const auto& e : entries) {
      EXPECT_TRUE(t->Insert(e.box, e.a).ok());
    }
    return t;
  }();
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), static_cast<uint64_t>(n));
  ASSERT_TRUE(tree->CheckInvariants().ok());

  for (int qi = 0; qi < 50; ++qi) {
    const Box<1> q = RandomBox<1>(rng, 0.2);
    EXPECT_EQ(TreeSearch(*tree, q), BruteForceSearch(entries, q))
        << "query " << qi;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomizedRTree1DTest,
    ::testing::Values(RandomizedCase{10, false, 1},
                      RandomizedCase{300, false, 2},
                      RandomizedCase{2000, false, 3},
                      RandomizedCase{300, true, 4},
                      RandomizedCase{5000, true, 5}),
    [](const ::testing::TestParamInfo<RandomizedCase>& info) {
      return std::string(info.param.bulk ? "bulk" : "insert") +
             std::to_string(info.param.num_entries);
    });

class RandomizedRTree2DTest
    : public ::testing::TestWithParam<RandomizedCase> {};

TEST_P(RandomizedRTree2DTest, MatchesBruteForce) {
  const auto [n, bulk, seed] = GetParam();
  Rng rng(seed);
  MemPageFile file;
  BufferPool pool(&file, 256);

  std::vector<RTreeEntry<2>> entries(n);
  for (int i = 0; i < n; ++i) {
    entries[i].box = RandomBox<2>(rng, 0.1);
    entries[i].a = i;
  }

  StatusOr<RStarTree<2>> tree = [&] {
    if (bulk) {
      return RStarTree<2>::BulkLoad(&pool, entries);
    }
    auto t = RStarTree<2>::Create(&pool);
    EXPECT_TRUE(t.ok());
    for (const auto& e : entries) {
      EXPECT_TRUE(t->Insert(e.box, e.a).ok());
    }
    return t;
  }();
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->CheckInvariants().ok());

  for (int qi = 0; qi < 50; ++qi) {
    const Box<2> q = RandomBox<2>(rng, 0.3);
    EXPECT_EQ(TreeSearch(*tree, q), BruteForceSearch(entries, q))
        << "query " << qi;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomizedRTree2DTest,
    ::testing::Values(RandomizedCase{10, false, 11},
                      RandomizedCase{500, false, 12},
                      RandomizedCase{3000, false, 13},
                      RandomizedCase{3000, true, 14}),
    [](const ::testing::TestParamInfo<RandomizedCase>& info) {
      return std::string(info.param.bulk ? "bulk" : "insert") +
             std::to_string(info.param.num_entries);
    });

TEST(RStarTreeTest, GrowsBeyondOneLevel) {
  MemPageFile file(512);  // small pages force low fan-out
  BufferPool pool(&file, 256);
  auto tree = RStarTree<2>::Create(&pool);
  ASSERT_TRUE(tree.ok());
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree->Insert(RandomBox<2>(rng, 0.02), i).ok());
  }
  EXPECT_GT(tree->height(), 2u);
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

TEST(RStarTreeTest, DeleteRemovesExactEntry) {
  MemPageFile file;
  BufferPool pool(&file, 256);
  auto tree = RStarTree<1>::Create(&pool);
  ASSERT_TRUE(tree.ok());
  Box<1> b;
  b.lo = {0.5};
  b.hi = {0.6};
  ASSERT_TRUE(tree->Insert(b, 1).ok());
  ASSERT_TRUE(tree->Insert(b, 2).ok());  // same box, different payload
  ASSERT_TRUE(tree->Delete(b, 1).ok());
  EXPECT_EQ(tree->size(), 1u);
  EXPECT_EQ(TreeSearch(*tree, b), std::vector<uint64_t>{2});
  EXPECT_EQ(tree->Delete(b, 99).code(), StatusCode::kNotFound);
}

TEST(RStarTreeTest, DeleteManyCondensesTree) {
  MemPageFile file(512);
  BufferPool pool(&file, 256);
  auto tree = RStarTree<2>::Create(&pool);
  ASSERT_TRUE(tree.ok());
  Rng rng(21);
  std::vector<RTreeEntry<2>> entries(400);
  for (int i = 0; i < 400; ++i) {
    entries[i].box = RandomBox<2>(rng, 0.05);
    entries[i].a = i;
    ASSERT_TRUE(tree->Insert(entries[i].box, i).ok());
  }
  const uint32_t height_full = tree->height();
  EXPECT_GT(height_full, 1u);

  // Delete 90% and verify correctness against brute force on the rest.
  for (int i = 0; i < 360; ++i) {
    ASSERT_TRUE(tree->Delete(entries[i].box, entries[i].a).ok()) << i;
    if (i % 60 == 0) {
      ASSERT_TRUE(tree->CheckInvariants().ok()) << "after delete " << i;
    }
  }
  EXPECT_EQ(tree->size(), 40u);
  ASSERT_TRUE(tree->CheckInvariants().ok());
  EXPECT_LE(tree->height(), height_full);

  const std::vector<RTreeEntry<2>> rest(entries.begin() + 360,
                                        entries.end());
  for (int qi = 0; qi < 30; ++qi) {
    const Box<2> q = RandomBox<2>(rng, 0.3);
    EXPECT_EQ(TreeSearch(*tree, q), BruteForceSearch(rest, q));
  }
}

TEST(RStarTreeTest, DeleteEverythingLeavesEmptyWorkingTree) {
  MemPageFile file(512);
  BufferPool pool(&file, 256);
  auto tree = RStarTree<1>::Create(&pool);
  ASSERT_TRUE(tree.ok());
  Rng rng(33);
  std::vector<Box<1>> boxes(100);
  for (int i = 0; i < 100; ++i) {
    boxes[i] = RandomBox<1>(rng, 0.1);
    ASSERT_TRUE(tree->Insert(boxes[i], i).ok());
  }
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree->Delete(boxes[i], i).ok());
  }
  EXPECT_EQ(tree->size(), 0u);
  ASSERT_TRUE(tree->CheckInvariants().ok());
  // And it is reusable.
  ASSERT_TRUE(tree->Insert(boxes[0], 7).ok());
  EXPECT_EQ(TreeSearch(*tree, boxes[0]), std::vector<uint64_t>{7});
}

TEST(RStarTreeTest, SearchEarlyTermination) {
  MemPageFile file;
  BufferPool pool(&file, 256);
  auto tree = RStarTree<1>::Create(&pool);
  ASSERT_TRUE(tree.ok());
  Box<1> b;
  b.lo = {0};
  b.hi = {1};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree->Insert(b, i).ok());
  }
  int visited = 0;
  ASSERT_TRUE(tree->Search(b, [&](const RTreeEntry<1>&) {
                    return ++visited < 5;
                  }).ok());
  EXPECT_EQ(visited, 5);
}

TEST(RStarTreeTest, AttachReopensTree) {
  MemPageFile file;
  BufferPool pool(&file, 256);
  RStarMeta meta;
  Rng rng(55);
  std::vector<RTreeEntry<1>> entries(200);
  {
    auto tree = RStarTree<1>::Create(&pool);
    ASSERT_TRUE(tree.ok());
    for (int i = 0; i < 200; ++i) {
      entries[i].box = RandomBox<1>(rng, 0.05);
      entries[i].a = i;
      ASSERT_TRUE(tree->Insert(entries[i].box, i).ok());
    }
    meta = tree->meta();
  }
  // A fresh pool over the same file, attached via persisted meta.
  ASSERT_TRUE(pool.Flush().ok());
  BufferPool pool2(&file, 256);
  RStarTree<1> reopened = RStarTree<1>::Attach(&pool2, meta);
  ASSERT_TRUE(reopened.CheckInvariants().ok());
  for (int qi = 0; qi < 20; ++qi) {
    const Box<1> q = RandomBox<1>(rng, 0.2);
    EXPECT_EQ(TreeSearch(reopened, q), BruteForceSearch(entries, q));
  }
}

TEST(RStarTreeTest, BulkLoadEmptyAndTiny) {
  MemPageFile file;
  BufferPool pool(&file, 64);
  auto empty = RStarTree<1>::BulkLoad(&pool, {});
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->size(), 0u);
  EXPECT_TRUE(empty->CheckInvariants().ok());

  std::vector<RTreeEntry<1>> one(1);
  one[0].box.lo = {0.1};
  one[0].box.hi = {0.2};
  one[0].a = 5;
  auto tiny = RStarTree<1>::BulkLoad(&pool, one);
  ASSERT_TRUE(tiny.ok());
  EXPECT_EQ(tiny->size(), 1u);
  EXPECT_EQ(tiny->height(), 1u);
  EXPECT_TRUE(tiny->CheckInvariants().ok());
}

TEST(RStarTreeTest, BulkLoadPagesAreDenser) {
  // Packing should use fewer nodes than one-at-a-time insertion.
  Rng rng(77);
  std::vector<RTreeEntry<1>> entries(5000);
  for (int i = 0; i < 5000; ++i) {
    entries[i].box = RandomBox<1>(rng, 0.01);
    entries[i].a = i;
  }
  auto sorted = entries;
  std::sort(sorted.begin(), sorted.end(), [](const auto& x, const auto& y) {
    return x.box.lo[0] < y.box.lo[0];
  });

  MemPageFile f1;
  BufferPool p1(&f1, 256);
  auto bulk = RStarTree<1>::BulkLoad(&p1, sorted);
  ASSERT_TRUE(bulk.ok());

  MemPageFile f2;
  BufferPool p2(&f2, 256);
  auto inserted = RStarTree<1>::Create(&p2);
  ASSERT_TRUE(inserted.ok());
  for (const auto& e : entries) {
    ASSERT_TRUE(inserted->Insert(e.box, e.a).ok());
  }
  EXPECT_LT(bulk->num_nodes(), inserted->num_nodes());
}

TEST(RStarTreeTest, FanOutMatchesPageSize) {
  MemPageFile file(4096);
  BufferPool pool(&file, 16);
  auto tree1 = RStarTree<1>::Create(&pool);
  ASSERT_TRUE(tree1.ok());
  // Entry<1> = 2 doubles + 2 u64 = 32 bytes; (4096-16)/32 = 127.
  EXPECT_EQ(tree1->max_entries(), 127u);
  auto tree2 = RStarTree<2>::Create(&pool);
  ASSERT_TRUE(tree2.ok());
  // Entry<2> = 4 doubles + 2 u64 = 48 bytes; (4096-16)/48 = 85.
  EXPECT_EQ(tree2->max_entries(), 85u);
}

TEST(RStarTreeTest, RandomInsertDeleteFuzz) {
  // Interleaved random inserts and deletes, cross-checked against a
  // brute-force shadow set at every step batch.
  MemPageFile file(512);
  BufferPool pool(&file, 256);
  auto tree = RStarTree<2>::Create(&pool);
  ASSERT_TRUE(tree.ok());
  Rng rng(101);
  std::vector<RTreeEntry<2>> shadow;
  uint64_t next_payload = 0;

  for (int step = 0; step < 1500; ++step) {
    const bool insert = shadow.empty() || rng.NextDouble() < 0.6;
    if (insert) {
      RTreeEntry<2> e;
      e.box = RandomBox<2>(rng, 0.05);
      e.a = next_payload++;
      ASSERT_TRUE(tree->Insert(e.box, e.a).ok());
      shadow.push_back(e);
    } else {
      const size_t victim = rng.NextBounded(shadow.size());
      ASSERT_TRUE(
          tree->Delete(shadow[victim].box, shadow[victim].a).ok());
      shadow.erase(shadow.begin() + victim);
    }
    if (step % 250 == 249) {
      ASSERT_TRUE(tree->CheckInvariants().ok()) << "step " << step;
      for (int qi = 0; qi < 5; ++qi) {
        const Box<2> q = RandomBox<2>(rng, 0.4);
        ASSERT_EQ(TreeSearch(*tree, q), BruteForceSearch(shadow, q))
            << "step " << step;
      }
    }
  }
  EXPECT_EQ(tree->size(), shadow.size());
}

TEST(RStarTreeTest, HeightGrowsLogarithmically) {
  MemPageFile file;  // 4 KB pages: 1-D fan-out 127
  BufferPool pool(&file, 1 << 14);
  Rng rng(55);
  std::vector<RTreeEntry<1>> entries(20000);
  for (size_t i = 0; i < entries.size(); ++i) {
    entries[i].box = RandomBox<1>(rng, 0.001);
    entries[i].a = i;
  }
  std::sort(entries.begin(), entries.end(), [](const auto& x, const auto& y) {
    return x.box.lo[0] < y.box.lo[0];
  });
  auto tree = RStarTree<1>::BulkLoad(&pool, entries);
  ASSERT_TRUE(tree.ok());
  // 20000 entries / 127 per leaf = 158 leaves; height must be 3.
  EXPECT_EQ(tree->height(), 3u);
}

TEST(RStarTreeTest, DuplicateBoxesAllRetrievable) {
  MemPageFile file(512);
  BufferPool pool(&file, 64);
  auto tree = RStarTree<1>::Create(&pool);
  ASSERT_TRUE(tree.ok());
  Box<1> b;
  b.lo = {0.5};
  b.hi = {0.5};
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(tree->Insert(b, i).ok());
  }
  const auto hits = TreeSearch(*tree, b);
  EXPECT_EQ(hits.size(), 200u);
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

}  // namespace
}  // namespace fielddb

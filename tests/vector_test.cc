#include "vector/vector_index.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gen/fractal.h"

namespace fielddb {
namespace {

// u = x + y, v = x - y over the unit square: both affine, so queries have
// analytic answers.
VectorGridField MakeAffineVectorField(uint32_t n) {
  std::vector<double> su, sv;
  for (uint32_t j = 0; j <= n; ++j) {
    for (uint32_t i = 0; i <= n; ++i) {
      const double x = static_cast<double>(i) / n;
      const double y = static_cast<double>(j) / n;
      su.push_back(x + y);
      sv.push_back(x - y);
    }
  }
  auto field = VectorGridField::Create(n, n, Rect2{{0, 0}, {1, 1}}, su, sv);
  EXPECT_TRUE(field.ok());
  return std::move(field).value();
}

VectorGridField MakeFractalVectorField(uint32_t size_exp, uint64_t seed) {
  FractalOptions fo;
  fo.size_exp = static_cast<int>(size_exp);
  fo.roughness_h = 0.7;
  fo.seed = seed;
  const std::vector<double> su = DiamondSquare(fo);
  fo.seed = seed + 1;
  const std::vector<double> sv = DiamondSquare(fo);
  const uint32_t n = uint32_t{1} << size_exp;
  auto field = VectorGridField::Create(n, n, Rect2{{0, 0}, {1, 1}}, su, sv);
  EXPECT_TRUE(field.ok());
  return std::move(field).value();
}

TEST(VectorFieldTest, ComponentsShareGeometry) {
  const VectorGridField field = MakeAffineVectorField(4);
  EXPECT_EQ(field.NumCells(), 16u);
  const CellRecord cu = field.ComponentCell(0, 5);
  const CellRecord cv = field.ComponentCell(1, 5);
  EXPECT_EQ(cu.Bounds(), cv.Bounds());
}

TEST(VectorFieldTest, ValueAtInterpolatesBoth) {
  const VectorGridField field = MakeAffineVectorField(8);
  auto uv = field.ValueAt({0.25, 0.5});
  ASSERT_TRUE(uv.ok());
  EXPECT_NEAR(uv->first, 0.75, 1e-12);
  EXPECT_NEAR(uv->second, -0.25, 1e-12);
}

TEST(VectorFieldTest, CellValueBoxIsPerComponentHull) {
  const VectorGridField field = MakeAffineVectorField(2);
  const Box<2> box = field.CellValueBox(0);  // cell [0,.5]^2
  EXPECT_DOUBLE_EQ(box.lo[0], 0.0);   // u = x + y in [0, 1]
  EXPECT_DOUBLE_EQ(box.hi[0], 1.0);
  EXPECT_DOUBLE_EQ(box.lo[1], -0.5);  // v = x - y in [-0.5, 0.5]
  EXPECT_DOUBLE_EQ(box.hi[1], 0.5);
}

TEST(VectorRecordTest, RoundTripComponents) {
  const VectorGridField field = MakeAffineVectorField(4);
  const VectorCellRecord rec = VectorCellRecord::FromField(field, 7);
  const CellRecord cu = rec.Component(0);
  const CellRecord expected = field.ComponentCell(0, 7);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(cu.w[i], expected.w[i]);
  }
  EXPECT_EQ(rec.ValueBox(), field.CellValueBox(7));
}

TEST(VectorIsobandTest, AffineBandsHaveAnalyticArea) {
  // On u = x + y, v = x - y: u in [0.5, 1.5] and v in [-0.25, 0.25] is a
  // rotated square; area = intersection of two diagonal strips. Over the
  // whole unit square with a single cell, the strips u in [0.5, 1.5]
  // (area 3/4... computed piecewise) — use Monte Carlo as reference.
  const VectorGridField field = MakeAffineVectorField(1);
  const VectorCellRecord rec = VectorCellRecord::FromField(field, 0);
  const VectorBandQuery q{{0.5, 1.5}, {-0.25, 0.25}};
  Region region;
  ASSERT_TRUE(VectorCellIsoband(rec, q, &region).ok());

  Rng rng(5);
  int inside = 0;
  const int samples = 200000;
  for (int s = 0; s < samples; ++s) {
    const double x = rng.NextDouble(), y = rng.NextDouble();
    if (q.u.Contains(x + y) && q.v.Contains(x - y)) ++inside;
  }
  EXPECT_NEAR(region.TotalArea(), static_cast<double>(inside) / samples,
              5e-3);
}

TEST(VectorIsobandTest, FullBandCoversCell) {
  const VectorGridField field = MakeAffineVectorField(2);
  const VectorCellRecord rec = VectorCellRecord::FromField(field, 0);
  Region region;
  ASSERT_TRUE(
      VectorCellIsoband(rec, {{-10, 10}, {-10, 10}}, &region).ok());
  EXPECT_NEAR(region.TotalArea(), 0.25, 1e-12);
}

TEST(VectorIsobandTest, DisjointBandEmpty) {
  const VectorGridField field = MakeAffineVectorField(2);
  const VectorCellRecord rec = VectorCellRecord::FromField(field, 0);
  Region region;
  auto n = VectorCellIsoband(rec, {{50, 60}, {-10, 10}}, &region);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
}

TEST(VectorSubfieldTest, CostModelPrefersSimilarBoxes) {
  Box<2> range;
  range.lo = {0, 0};
  range.hi = {100, 100};
  const VectorSubfieldCostModel model(range, {});
  VectorSubfield sf;
  sf.box.lo = {10, 10};
  sf.box.hi = {20, 20};
  sf.sum_box_sizes = 121.0;
  // Identical box: SI doubles, P unchanged -> cost halves.
  EXPECT_TRUE(model.ShouldAppend(sf, sf.box));
  // A far-away box: P explodes.
  Box<2> far;
  far.lo = {90, 90};
  far.hi = {95, 95};
  EXPECT_FALSE(model.ShouldAppend(sf, far));
}

TEST(VectorSubfieldTest, PartitionInvariants) {
  Rng rng(9);
  std::vector<Box<2>> boxes(400);
  Box<2> range = Box<2>::Empty();
  double u = 0, v = 0;
  for (auto& b : boxes) {
    u += rng.NextGaussian();
    v += rng.NextGaussian();
    b.lo = {u, v};
    b.hi = {u + rng.NextDouble(), v + rng.NextDouble()};
    range.Extend(b);
  }
  const auto sfs = BuildVectorSubfields(boxes, range, {});
  ASSERT_FALSE(sfs.empty());
  EXPECT_EQ(sfs.front().start, 0u);
  EXPECT_EQ(sfs.back().end, boxes.size());
  for (size_t i = 0; i + 1 < sfs.size(); ++i) {
    EXPECT_EQ(sfs[i].end, sfs[i + 1].start);
  }
  for (const VectorSubfield& sf : sfs) {
    Box<2> hull = Box<2>::Empty();
    for (uint64_t pos = sf.start; pos < sf.end; ++pos) {
      hull.Extend(boxes[pos]);
    }
    EXPECT_EQ(sf.box, hull);
  }
}

class VectorDbTest : public ::testing::TestWithParam<VectorIndexMethod> {};

TEST_P(VectorDbTest, MatchesLinearScanOnFractal) {
  const VectorGridField field = MakeFractalVectorField(5, 31);
  VectorFieldDatabase::Options scan_options;
  scan_options.method = VectorIndexMethod::kLinearScan;
  auto reference = VectorFieldDatabase::Build(field, scan_options);
  ASSERT_TRUE(reference.ok());

  VectorFieldDatabase::Options options;
  options.method = GetParam();
  auto db = VectorFieldDatabase::Build(field, options);
  ASSERT_TRUE(db.ok());

  Rng rng(41);
  const Box<2> range = field.ValueRangeBox();
  for (int i = 0; i < 25; ++i) {
    const double ul = rng.NextDouble(range.lo[0], range.hi[0]);
    const double vl = rng.NextDouble(range.lo[1], range.hi[1]);
    const VectorBandQuery q{
        {ul, ul + 0.1 * (range.hi[0] - range.lo[0])},
        {vl, vl + 0.1 * (range.hi[1] - range.lo[1])}};
    VectorQueryResult expected, actual;
    ASSERT_TRUE((*reference)->BandQuery(q, &expected).ok());
    ASSERT_TRUE((*db)->BandQuery(q, &actual).ok());
    EXPECT_NEAR(actual.region.TotalArea(), expected.region.TotalArea(),
                1e-9);
    EXPECT_EQ(actual.stats.answer_cells, expected.stats.answer_cells);
  }
}

TEST_P(VectorDbTest, AffineFieldAnalyticArea) {
  const VectorGridField field = MakeAffineVectorField(16);
  VectorFieldDatabase::Options options;
  options.method = GetParam();
  auto db = VectorFieldDatabase::Build(field, options);
  ASSERT_TRUE(db.ok());
  // u = x + y in [0, 1] covers the lower-left half (area 1/2); v = x - y
  // in [0, 1] covers the lower-right half (area 1/2); conjunction is the
  // bottom quarter "wedge" (area 1/4).
  VectorQueryResult result;
  ASSERT_TRUE((*db)->BandQuery({{0, 1}, {0, 1}}, &result).ok());
  EXPECT_NEAR(result.region.TotalArea(), 0.25, 1e-9);
}

TEST_P(VectorDbTest, RejectsEmptyBand) {
  const VectorGridField field = MakeAffineVectorField(4);
  VectorFieldDatabase::Options options;
  options.method = GetParam();
  auto db = VectorFieldDatabase::Build(field, options);
  ASSERT_TRUE(db.ok());
  VectorQueryResult result;
  EXPECT_FALSE(
      (*db)->BandQuery({ValueInterval::Empty(), {0, 1}}, &result).ok());
}

INSTANTIATE_TEST_SUITE_P(Methods, VectorDbTest,
                         ::testing::Values(VectorIndexMethod::kLinearScan,
                                           VectorIndexMethod::kIHilbert),
                         [](const auto& info) {
                           return info.param ==
                                          VectorIndexMethod::kLinearScan
                                      ? "LinearScan"
                                      : "IHilbert";
                         });

TEST(VectorDbTest, IHilbertReadsFewerPages) {
  const VectorGridField field = MakeFractalVectorField(7, 55);
  const Box<2> range = field.ValueRangeBox();
  const VectorBandQuery q{
      {range.lo[0] + 0.45 * (range.hi[0] - range.lo[0]),
       range.lo[0] + 0.50 * (range.hi[0] - range.lo[0])},
      {range.lo[1] + 0.45 * (range.hi[1] - range.lo[1]),
       range.lo[1] + 0.50 * (range.hi[1] - range.lo[1])}};

  const auto pages = [&](VectorIndexMethod method) {
    VectorFieldDatabase::Options options;
    options.method = method;
    // This test isolates the index's I/O advantage, so pin the physical
    // plan: under kAuto the cost-based planner is free to (correctly)
    // prefer the fused scan when the band is not selective enough.
    options.planner_mode = PlannerMode::kForceIndex;
    auto db = VectorFieldDatabase::Build(field, options);
    EXPECT_TRUE(db.ok());
    VectorQueryResult result;
    EXPECT_TRUE((*db)->BandQuery(q, &result).ok());
    return result.stats.io.logical_reads;
  };
  EXPECT_LT(2 * pages(VectorIndexMethod::kIHilbert),
            pages(VectorIndexMethod::kLinearScan));
}

}  // namespace
}  // namespace fielddb

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/field_database.h"
#include "gen/fractal.h"
#include "gen/monotonic.h"
#include "rtree/rstar_tree.h"
#include "storage/page_file.h"

namespace fielddb {
namespace {

TEST(MinDistTest, PointToBox) {
  Box<2> b;
  b.lo = {1, 1};
  b.hi = {3, 2};
  EXPECT_DOUBLE_EQ(b.MinDist2({2, 1.5}), 0.0);  // inside
  EXPECT_DOUBLE_EQ(b.MinDist2({0, 1.5}), 1.0);  // left
  EXPECT_DOUBLE_EQ(b.MinDist2({4, 3}), 2.0);    // corner: 1 + 1
  EXPECT_DOUBLE_EQ(b.MinDist2({2, 5}), 9.0);    // above
}

TEST(RTreeNearestTest, MatchesBruteForce1D) {
  MemPageFile file(512);
  BufferPool pool(&file, 256);
  auto tree = RStarTree<1>::Create(&pool);
  ASSERT_TRUE(tree.ok());
  Rng rng(61);
  std::vector<RTreeEntry<1>> entries(500);
  for (int i = 0; i < 500; ++i) {
    const double lo = rng.NextDouble();
    entries[i].box.lo = {lo};
    entries[i].box.hi = {lo + 0.01};
    entries[i].a = i;
    ASSERT_TRUE(tree->Insert(entries[i].box, i).ok());
  }
  for (int trial = 0; trial < 20; ++trial) {
    const double q = rng.NextDouble(-0.2, 1.2);
    std::vector<RStarTree<1>::Neighbor> got;
    ASSERT_TRUE(tree->NearestNeighbors({q}, 5, &got).ok());
    ASSERT_EQ(got.size(), 5u);
    // Distances must be ascending and match brute force.
    std::vector<double> brute;
    for (const auto& e : entries) {
      brute.push_back(e.box.MinDist2({q}));
    }
    std::sort(brute.begin(), brute.end());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].distance2, brute[i], 1e-12);
      if (i > 0) {
        EXPECT_GE(got[i].distance2, got[i - 1].distance2);
      }
    }
  }
}

TEST(RTreeNearestTest, MatchesBruteForce2D) {
  MemPageFile file(512);
  BufferPool pool(&file, 256);
  Rng rng(67);
  std::vector<RTreeEntry<2>> entries(800);
  for (int i = 0; i < 800; ++i) {
    entries[i].box.lo = {rng.NextDouble(), rng.NextDouble()};
    entries[i].box.hi = {entries[i].box.lo[0] + 0.02,
                         entries[i].box.lo[1] + 0.02};
    entries[i].a = i;
  }
  auto tree = RStarTree<2>::BulkLoad(&pool, entries);
  ASSERT_TRUE(tree.ok());
  for (int trial = 0; trial < 10; ++trial) {
    const std::array<double, 2> q = {rng.NextDouble(), rng.NextDouble()};
    std::vector<RStarTree<2>::Neighbor> got;
    ASSERT_TRUE(tree->NearestNeighbors(q, 10, &got).ok());
    ASSERT_EQ(got.size(), 10u);
    std::vector<double> brute;
    for (const auto& e : entries) brute.push_back(e.box.MinDist2(q));
    std::sort(brute.begin(), brute.end());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].distance2, brute[i], 1e-12);
    }
  }
}

TEST(RTreeNearestTest, EdgeCases) {
  MemPageFile file;
  BufferPool pool(&file, 64);
  auto tree = RStarTree<1>::Create(&pool);
  ASSERT_TRUE(tree.ok());
  std::vector<RStarTree<1>::Neighbor> got;
  // Empty tree and k = 0.
  ASSERT_TRUE(tree->NearestNeighbors({0.5}, 3, &got).ok());
  EXPECT_TRUE(got.empty());
  Box<1> b;
  b.lo = {0};
  b.hi = {1};
  ASSERT_TRUE(tree->Insert(b, 1).ok());
  ASSERT_TRUE(tree->NearestNeighbors({0.5}, 0, &got).ok());
  EXPECT_TRUE(got.empty());
  // k larger than tree size returns everything.
  ASSERT_TRUE(tree->NearestNeighbors({0.5}, 10, &got).ok());
  EXPECT_EQ(got.size(), 1u);
  EXPECT_DOUBLE_EQ(got[0].distance2, 0.0);
}

class NearestValueTest : public ::testing::TestWithParam<IndexMethod> {};

TEST_P(NearestValueTest, MatchesBruteForceDistances) {
  FractalOptions fo;
  fo.size_exp = 5;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  FieldDatabaseOptions options;
  options.method = GetParam();
  auto db = FieldDatabase::Build(*field, options);
  ASSERT_TRUE(db.ok());

  Rng rng(71);
  for (int trial = 0; trial < 10; ++trial) {
    const double w = rng.NextDouble(field->ValueRange().min - 1,
                                    field->ValueRange().max + 1);
    std::vector<FieldDatabase::NearestCell> got;
    ASSERT_TRUE((*db)->NearestValueQuery(w, 7, &got).ok());
    ASSERT_EQ(got.size(), 7u);

    std::vector<double> brute;
    for (CellId id = 0; id < field->NumCells(); ++id) {
      const ValueInterval iv = field->GetCell(id).Interval();
      brute.push_back(w < iv.min ? iv.min - w
                                 : (w > iv.max ? w - iv.max : 0.0));
    }
    std::sort(brute.begin(), brute.end());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].distance, brute[i], 1e-9)
          << IndexMethodName(GetParam()) << " hit " << i;
      if (i > 0) {
        EXPECT_GE(got[i].distance, got[i - 1].distance - 1e-12);
      }
    }
  }
}

TEST_P(NearestValueTest, InsideRangeDistanceZero) {
  auto field = MakeMonotonicField(8, 8);
  ASSERT_TRUE(field.ok());
  FieldDatabaseOptions options;
  options.method = GetParam();
  auto db = FieldDatabase::Build(*field, options);
  ASSERT_TRUE(db.ok());
  std::vector<FieldDatabase::NearestCell> got;
  ASSERT_TRUE((*db)->NearestValueQuery(1.0, 3, &got).ok());
  ASSERT_EQ(got.size(), 3u);
  for (const auto& hit : got) {
    EXPECT_DOUBLE_EQ(hit.distance, 0.0);
    EXPECT_TRUE(hit.interval.Contains(1.0));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, NearestValueTest,
    ::testing::Values(IndexMethod::kLinearScan, IndexMethod::kIAll,
                      IndexMethod::kIHilbert,
                      IndexMethod::kIntervalQuadtree),
    [](const ::testing::TestParamInfo<IndexMethod>& info) {
      std::string name = IndexMethodName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace fielddb

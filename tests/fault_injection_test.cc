// End-to-end tests of the fault-tolerance layer: injected read/write
// faults, torn writes, checksum verification, scrub, degraded queries,
// and crash-safe persistence. Every fault schedule is deterministic, so
// each failure path is exercised exactly, not probabilistically.

#include "storage/fault_injection.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/field_database.h"
#include "gen/fractal.h"
#include "gen/workload.h"
#include "index/i_hilbert.h"
#include "obs/metrics.h"
#include "storage/buffer_pool.h"

namespace fielddb {
namespace {

// ---------------------------------------------------------------------
// PageFile-level behavior of the decorator.

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest() : base_(256), faulty_(&base_) {}

  PageId AllocWritten(uint64_t tag) {
    StatusOr<PageId> id = faulty_.Allocate();
    EXPECT_TRUE(id.ok());
    Page p(256);
    p.WriteAt<uint64_t>(0, tag);
    EXPECT_TRUE(faulty_.Write(*id, p).ok());
    return *id;
  }

  MemPageFile base_;
  FaultInjectingPageFile faulty_;
};

TEST_F(FaultInjectionTest, PassThroughWhenNoFaults) {
  const PageId id = AllocWritten(42);
  Page p(256);
  ASSERT_TRUE(faulty_.Read(id, &p).ok());
  EXPECT_EQ(p.ReadAt<uint64_t>(0), 42u);
  EXPECT_EQ(faulty_.counters().read_errors, 0u);
}

TEST_F(FaultInjectionTest, TransientReadFaultClearsAfterCount) {
  const PageId id = AllocWritten(7);
  faulty_.FailNextReads(id, 2);
  Page p(256);
  EXPECT_EQ(faulty_.Read(id, &p).code(), StatusCode::kIOError);
  EXPECT_EQ(faulty_.Read(id, &p).code(), StatusCode::kIOError);
  ASSERT_TRUE(faulty_.Read(id, &p).ok());  // third attempt succeeds
  EXPECT_EQ(p.ReadAt<uint64_t>(0), 7u);
  EXPECT_EQ(faulty_.counters().read_errors, 2u);
}

TEST_F(FaultInjectionTest, PermanentReadFaultNeverClears) {
  const PageId id = AllocWritten(7);
  faulty_.FailAllReads(id);
  Page p(256);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(faulty_.Read(id, &p).code(), StatusCode::kIOError);
  }
  faulty_.ClearFaults();
  ASSERT_TRUE(faulty_.Read(id, &p).ok());
}

TEST_F(FaultInjectionTest, WriteFaultsInjected) {
  const PageId id = AllocWritten(1);
  faulty_.FailNextWrites(id, 1);
  Page p(256);
  p.WriteAt<uint64_t>(0, 2);
  EXPECT_EQ(faulty_.Write(id, p).code(), StatusCode::kIOError);
  ASSERT_TRUE(faulty_.Write(id, p).ok());
  ASSERT_TRUE(faulty_.Read(id, &p).ok());
  EXPECT_EQ(p.ReadAt<uint64_t>(0), 2u);
  EXPECT_EQ(faulty_.counters().write_errors, 1u);
}

TEST_F(FaultInjectionTest, TornWriteLeavesMixedContentAndIsDetected) {
  const PageId id = AllocWritten(0);
  Page old_page(256);
  for (uint32_t i = 0; i < 256; i += 8) old_page.WriteAt<uint64_t>(i, 0xAA);
  ASSERT_TRUE(faulty_.Write(id, old_page).ok());

  faulty_.TearNextWrite(id, 16);  // only the first 16 bytes land
  Page new_page(256);
  for (uint32_t i = 0; i < 256; i += 8) new_page.WriteAt<uint64_t>(i, 0xBB);
  ASSERT_TRUE(faulty_.Write(id, new_page).ok());  // "power cut": no error
  EXPECT_EQ(faulty_.counters().torn_writes, 1u);

  // The underlying file holds the mix (prefix new, tail old)...
  Page raw(256);
  ASSERT_TRUE(base_.Read(id, &raw).ok());
  EXPECT_EQ(raw.ReadAt<uint64_t>(0), 0xBBu);
  EXPECT_EQ(raw.ReadAt<uint64_t>(128), 0xAAu);
  // ...and the checksum layer reports the tear on read.
  Page p(256);
  EXPECT_EQ(faulty_.Read(id, &p).code(), StatusCode::kCorruption);
  EXPECT_EQ(faulty_.VerifyPage(id).code(), StatusCode::kCorruption);
}

TEST_F(FaultInjectionTest, SilentCorruptionFlipsBits) {
  const PageId id = AllocWritten(0xFF);
  faulty_.SilentlyCorruptPage(id, 0x01);
  Page p(256);
  ASSERT_TRUE(faulty_.Read(id, &p).ok());  // no error — that's the point
  EXPECT_EQ(p.ReadAt<uint64_t>(0), 0xFFull ^ 0x0101010101010101ull);
  // Verification still knows.
  EXPECT_EQ(faulty_.VerifyPage(id).code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------
// ReadBatch through the decorator: faults fire per submitted page, with
// exactly the schedule semantics of `count` single Reads.

TEST_F(FaultInjectionTest, ReadBatchInjectsOnTheSubmittedPageOnly) {
  PageId ids[5];
  for (uint64_t i = 0; i < 5; ++i) ids[i] = AllocWritten(100 + i);
  faulty_.FailNextReads(ids[2], 1);

  std::vector<Page> outs(5, Page(256));
  std::vector<Status> statuses(5);
  const Status overall =
      faulty_.ReadBatch(ids, 5, outs.data(), statuses.data());
  EXPECT_EQ(overall.code(), StatusCode::kIOError);  // first failing slot
  for (uint64_t i = 0; i < 5; ++i) {
    if (i == 2) {
      EXPECT_EQ(statuses[i].code(), StatusCode::kIOError);
    } else {
      ASSERT_TRUE(statuses[i].ok()) << i;
      EXPECT_EQ(outs[i].ReadAt<uint64_t>(0), 100 + i);
    }
  }
  EXPECT_EQ(faulty_.counters().read_errors, 1u);
  // The batch consumed the armed fault exactly as a single Read would.
  ASSERT_TRUE(faulty_.ReadBatch(ids, 5, outs.data(), statuses.data()).ok());
  for (uint64_t i = 0; i < 5; ++i) EXPECT_TRUE(statuses[i].ok()) << i;
}

TEST_F(FaultInjectionTest, ReadBatchCorruptionIsPerSlot) {
  PageId ids[4];
  for (uint64_t i = 0; i < 4; ++i) ids[i] = AllocWritten(0xF0 + i);
  faulty_.CorruptPage(ids[1]);
  faulty_.SilentlyCorruptPage(ids[3], 0x01);

  std::vector<Page> outs(4, Page(256));
  std::vector<Status> statuses(4);
  EXPECT_EQ(faulty_.ReadBatch(ids, 4, outs.data(), statuses.data()).code(),
            StatusCode::kCorruption);
  ASSERT_TRUE(statuses[0].ok());
  EXPECT_EQ(outs[0].ReadAt<uint64_t>(0), 0xF0u);
  EXPECT_EQ(statuses[1].code(), StatusCode::kCorruption);
  ASSERT_TRUE(statuses[2].ok());
  EXPECT_EQ(outs[2].ReadAt<uint64_t>(0), 0xF2u);
  ASSERT_TRUE(statuses[3].ok());  // silent: success with flipped bits
  EXPECT_EQ(outs[3].ReadAt<uint64_t>(0),
            (0xF0ull + 3) ^ 0x0101010101010101ull);
  EXPECT_EQ(faulty_.counters().corrupt_reads, 1u);
  EXPECT_EQ(faulty_.counters().silent_flips, 1u);
}

TEST_F(FaultInjectionTest, ReadBatchTicksTheKillCountdownPerPage) {
  PageId ids[5];
  for (uint64_t i = 0; i < 5; ++i) ids[i] = AllocWritten(i);
  faulty_.KillAfterOps(3);
  std::vector<Page> outs(5, Page(256));
  std::vector<Status> statuses(5);
  EXPECT_FALSE(faulty_.ReadBatch(ids, 5, outs.data(), statuses.data()).ok());
  for (uint64_t i = 0; i < 5; ++i) {
    if (i < 3) {
      ASSERT_TRUE(statuses[i].ok()) << i;
      EXPECT_EQ(outs[i].ReadAt<uint64_t>(0), i);
    } else {
      EXPECT_EQ(statuses[i].code(), StatusCode::kIOError) << i;
    }
  }
  EXPECT_EQ(faulty_.counters().killed_ops, 2u);
}

TEST(FaultInjectionSeedTest, ProbabilisticScheduleIsDeterministic) {
  FaultInjectionOptions options;
  options.seed = 2002;
  options.read_error_prob = 0.3;

  std::vector<bool> pattern[2];
  for (int run = 0; run < 2; ++run) {
    MemPageFile base(128);
    FaultInjectingPageFile faulty(&base, options);
    ASSERT_TRUE(faulty.Allocate().ok());
    Page p(128);
    for (int i = 0; i < 100; ++i) {
      pattern[run].push_back(faulty.Read(0, &p).ok());
    }
  }
  EXPECT_EQ(pattern[0], pattern[1]);
  EXPECT_NE(std::count(pattern[0].begin(), pattern[0].end(), false), 0);
}

// ---------------------------------------------------------------------
// BufferPool retry / write-back behavior under faults.

TEST(BufferPoolFaultTest, TransientReadFaultAbsorbedByRetry) {
  MemPageFile base(256);
  FaultInjectingPageFile faulty(&base);
  BufferPool pool(&faulty, 4);
  PinnedPage pin;
  StatusOr<PageId> id = pool.Allocate(&pin);
  ASSERT_TRUE(id.ok());
  pin.MutablePage().WriteAt<uint64_t>(0, 99);
  pin.Release();
  ASSERT_TRUE(pool.Clear().ok());

  faulty.FailNextReads(*id, 2);  // < kMaxReadRetries
  ASSERT_TRUE(pool.Fetch(*id, &pin).ok());
  EXPECT_EQ(pin.page().ReadAt<uint64_t>(0), 99u);
  EXPECT_EQ(pool.stats().read_retries, 2u);
  EXPECT_EQ(pool.stats().failed_reads, 0u);
}

TEST(BufferPoolFaultTest, PermanentReadFaultPropagatesAfterRetries) {
  MemPageFile base(256);
  FaultInjectingPageFile faulty(&base);
  BufferPool pool(&faulty, 4);
  PinnedPage pin;
  StatusOr<PageId> id = pool.Allocate(&pin);
  ASSERT_TRUE(id.ok());
  pin.Release();
  ASSERT_TRUE(pool.Clear().ok());

  faulty.FailAllReads(*id);
  const Status s = pool.Fetch(*id, &pin);
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(pool.stats().read_retries,
            static_cast<uint64_t>(BufferPool::kMaxReadRetries));
  EXPECT_EQ(pool.stats().failed_reads, 1u);
  // 1 + kMaxReadRetries attempts hit the file.
  EXPECT_EQ(faulty.counters().read_errors,
            static_cast<uint64_t>(BufferPool::kMaxReadRetries) + 1);
}

TEST(BufferPoolFaultTest, CorruptionIsNotRetried) {
  MemPageFile base(256);
  FaultInjectingPageFile faulty(&base);
  BufferPool pool(&faulty, 4);
  PinnedPage pin;
  StatusOr<PageId> id = pool.Allocate(&pin);
  ASSERT_TRUE(id.ok());
  pin.Release();
  ASSERT_TRUE(pool.Clear().ok());

  faulty.CorruptPage(*id);
  const Status s = pool.Fetch(*id, &pin);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(pool.stats().read_retries, 0u);  // retrying rot is pointless
  EXPECT_EQ(faulty.counters().corrupt_reads, 1u);
}

TEST(BufferPoolFaultTest, EvictionWriteBackFailureKeepsPoolConsistent) {
  MemPageFile base(256);
  FaultInjectingPageFile faulty(&base);
  BufferPool pool(&faulty, 2);
  // Two dirty unpinned frames fill the pool.
  PageId ids[2];
  for (uint64_t i = 0; i < 2; ++i) {
    PinnedPage pin;
    StatusOr<PageId> id = pool.Allocate(&pin);
    ASSERT_TRUE(id.ok());
    pin.MutablePage().WriteAt<uint64_t>(0, 100 + i);
    ids[i] = *id;
  }
  // The LRU victim's write-back fails: the allocation must fail cleanly.
  faulty.FailAllWrites(ids[0]);
  PinnedPage pin;
  StatusOr<PageId> third = pool.Allocate(&pin);
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kIOError);
  EXPECT_EQ(pool.stats().failed_writes, 1u);
  // The victim frame is still resident with its dirty data intact...
  PinnedPage check;
  ASSERT_TRUE(pool.Fetch(ids[0], &check).ok());
  EXPECT_EQ(check.page().ReadAt<uint64_t>(0), 100u);
  check.Release();
  // ...and once the fault clears, eviction (and the data) go through.
  faulty.ClearFaults();
  StatusOr<PageId> fourth = pool.Allocate(&pin);
  ASSERT_TRUE(fourth.ok()) << fourth.status().ToString();
  pin.Release();
  ASSERT_TRUE(pool.Flush().ok());
  Page raw(256);
  ASSERT_TRUE(base.Read(ids[0], &raw).ok());
  EXPECT_EQ(raw.ReadAt<uint64_t>(0), 100u);
}

TEST(BufferPoolFaultTest, CloseSurfacesWriteBackErrors) {
  MemPageFile base(256);
  FaultInjectingPageFile faulty(&base);
  auto pool = std::make_unique<BufferPool>(&faulty, 4);
  PinnedPage pin;
  StatusOr<PageId> id = pool->Allocate(&pin);
  ASSERT_TRUE(id.ok());
  pin.MutablePage().WriteAt<uint64_t>(0, 5);
  pin.Release();

  faulty.FailAllWrites(*id);
  const Status s = pool->Close();
  EXPECT_EQ(s.code(), StatusCode::kIOError);  // the destructor only logs
  EXPECT_FALSE(pool->closed());
  // Fault cleared: Close succeeds, is idempotent, and fences the pool.
  faulty.ClearFaults();
  ASSERT_TRUE(pool->Close().ok());
  ASSERT_TRUE(pool->Close().ok());
  EXPECT_EQ(pool->Fetch(*id, &pin).code(), StatusCode::kFailedPrecondition);
}

TEST(BufferPoolFaultTest, PrefetchFailureCountsOnlyTheDedicatedMetric) {
  MemPageFile base(256);
  FaultInjectingPageFile faulty(&base);
  BufferPool pool(&faulty, 8);
  std::vector<PageId> ids;
  for (uint64_t i = 0; i < 4; ++i) {
    PinnedPage pin;
    StatusOr<PageId> id = pool.Allocate(&pin);
    ASSERT_TRUE(id.ok());
    pin.MutablePage().WriteAt<uint64_t>(0, 700 + i);
    ids.push_back(*id);
  }
  ASSERT_TRUE(pool.Flush().ok());
  ASSERT_TRUE(pool.Clear().ok());
  pool.ResetStats();

  Counter* failed =
      MetricsRegistry::Default().GetCounter("storage.pool.prefetch_failed");
  Counter* batches =
      MetricsRegistry::Default().GetCounter("storage.pool.batch_reads");
  const uint64_t failed_before = failed->value();
  const uint64_t batches_before = batches->value();

  faulty.FailAllReads(ids[1]);
  // Best effort: the pool reports OK, skips the bad page and installs
  // the other three.
  ASSERT_TRUE(pool.PrefetchRange(ids[0], 4).ok());
  EXPECT_EQ(failed->value() - failed_before, 1u);
  EXPECT_EQ(batches->value() - batches_before, 1u);

  // The failed prefetch read is invisible in the I/O totals: only the
  // three installed pages count physical; nothing counts logical,
  // failed or retried — Fetch's counted-and-retried path stays
  // authoritative for the bad page.
  IoStats s = pool.stats();
  EXPECT_EQ(s.physical_reads, 3u);
  EXPECT_EQ(s.logical_reads, 0u);
  EXPECT_EQ(s.failed_reads, 0u);
  EXPECT_EQ(s.read_retries, 0u);

  // A prefetched page hits without further physical reads...
  PinnedPage pin;
  ASSERT_TRUE(pool.Fetch(ids[2], &pin).ok());
  EXPECT_EQ(pin.page().ReadAt<uint64_t>(0), 702u);
  pin.Release();
  EXPECT_EQ(pool.stats().physical_reads, 3u);
  // ...and the faulted page fails through the normal retry path.
  EXPECT_EQ(pool.Fetch(ids[1], &pin).code(), StatusCode::kIOError);
  EXPECT_EQ(pool.stats().failed_reads, 1u);
  faulty.ClearFaults();
  ASSERT_TRUE(pool.Fetch(ids[1], &pin).ok());
  EXPECT_EQ(pin.page().ReadAt<uint64_t>(0), 701u);
}

// ---------------------------------------------------------------------
// Checksummed DiskPageFile: real on-disk corruption.

class DiskChecksumTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/fielddb_checksum_test.bin";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(DiskChecksumTest, BitFlipInPayloadDetected) {
  auto f = DiskPageFile::Create(path_, 512);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Allocate().ok());
  Page p(512);
  p.WriteAt<uint64_t>(64, 0x1234);
  ASSERT_TRUE((*f)->Write(0, p).ok());
  ASSERT_TRUE((*f)->Read(0, &p).ok());

  // One flipped bit in the payload region.
  ASSERT_TRUE((*f)->CorruptRawForTest(0, kPageHeaderSize + 64, 0x10).ok());
  const Status s = (*f)->Read(0, &p);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("page 0"), std::string::npos);
  EXPECT_EQ((*f)->VerifyPage(0).code(), StatusCode::kCorruption);
}

TEST_F(DiskChecksumTest, TornTailDetected) {
  auto f = DiskPageFile::Create(path_, 512);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Allocate().ok());
  Page p(512);
  for (uint32_t i = 0; i < 512; i += 8) p.WriteAt<uint64_t>(i, 7);
  ASSERT_TRUE((*f)->Write(0, p).ok());
  // A torn sector: the last byte of the slot never hit the platter.
  ASSERT_TRUE(
      (*f)->CorruptRawForTest(0, kPageHeaderSize + 511, 0xFF).ok());
  EXPECT_EQ((*f)->Read(0, &p).code(), StatusCode::kCorruption);
}

TEST_F(DiskChecksumTest, HeaderCorruptionDetected) {
  auto f = DiskPageFile::Create(path_, 512);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Allocate().ok());
  ASSERT_TRUE((*f)->CorruptRawForTest(0, 9, 0x01).ok());  // page-id field
  Page p(512);
  EXPECT_EQ((*f)->Read(0, &p).code(), StatusCode::kCorruption);
}

TEST_F(DiskChecksumTest, CleanPagesSurviveReopen) {
  {
    auto f = DiskPageFile::Create(path_, 512, /*epoch=*/3);
    ASSERT_TRUE(f.ok());
    for (int i = 0; i < 4; ++i) ASSERT_TRUE((*f)->Allocate().ok());
    Page p(512);
    p.WriteAt<uint64_t>(0, 11);
    ASSERT_TRUE((*f)->Write(2, p).ok());
  }
  auto f = DiskPageFile::Open(path_, 512, /*epoch=*/3);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->NumPages(), 4u);
  Page p(512);
  ASSERT_TRUE((*f)->Read(2, &p).ok());
  EXPECT_EQ(p.ReadAt<uint64_t>(0), 11u);
  // Wrong expected epoch = catalog/page-file mix: detected.
  auto stale = DiskPageFile::Open(path_, 512, /*epoch=*/7);
  ASSERT_TRUE(stale.ok());  // the length check cannot see epochs...
  EXPECT_EQ((*stale)->Read(2, &p).code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------
// DiskPageFile::ReadBatch: the vectored path must be indistinguishable
// from a loop of single Reads — same bytes, same error taxonomy, per
// slot — regardless of which async backend the host selected.

TEST_F(DiskChecksumTest, ReadBatchMatchesSingleReads) {
  auto f = DiskPageFile::Create(path_, 512);
  ASSERT_TRUE(f.ok());
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE((*f)->Allocate().ok());
    Page p(512);
    p.WriteAt<uint64_t>(0, 900 + i);
    ASSERT_TRUE((*f)->Write(i, p).ok());
  }
  // Out-of-order, non-contiguous submission: the backend may coalesce
  // whatever runs it finds, but each slot must land in its own buffer.
  const PageId ids[] = {7, 0, 3, 4, 5, 1};
  std::vector<Page> outs(6, Page(512));
  std::vector<Status> statuses(6);
  ASSERT_TRUE((*f)->ReadBatch(ids, 6, outs.data(), statuses.data()).ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(statuses[i].ok()) << i;
    EXPECT_EQ(outs[i].ReadAt<uint64_t>(0), 900 + ids[i]);
  }
  // An out-of-range id fails its slot alone.
  const PageId mixed[] = {2, 64, 6};
  std::vector<Page> mouts(3, Page(512));
  std::vector<Status> mstat(3);
  EXPECT_EQ((*f)->ReadBatch(mixed, 3, mouts.data(), mstat.data()).code(),
            StatusCode::kOutOfRange);
  ASSERT_TRUE(mstat[0].ok());
  EXPECT_EQ(mouts[0].ReadAt<uint64_t>(0), 902u);
  EXPECT_EQ(mstat[1].code(), StatusCode::kOutOfRange);
  ASSERT_TRUE(mstat[2].ok());
  EXPECT_EQ(mouts[2].ReadAt<uint64_t>(0), 906u);
}

TEST_F(DiskChecksumTest, ReadBatchReportsTheCorruptSlotAlone) {
  auto f = DiskPageFile::Create(path_, 512);
  ASSERT_TRUE(f.ok());
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE((*f)->Allocate().ok());
    Page p(512);
    p.WriteAt<uint64_t>(0, 40 + i);
    ASSERT_TRUE((*f)->Write(i, p).ok());
  }
  ASSERT_TRUE((*f)->CorruptRawForTest(2, kPageHeaderSize + 8, 0x40).ok());
  const PageId ids[] = {0, 1, 2, 3};
  std::vector<Page> outs(4, Page(512));
  std::vector<Status> statuses(4);
  const Status overall =
      (*f)->ReadBatch(ids, 4, outs.data(), statuses.data());
  EXPECT_EQ(overall.code(), StatusCode::kCorruption);
  EXPECT_NE(overall.message().find("page 2"), std::string::npos);
  for (uint64_t i = 0; i < 4; ++i) {
    if (i == 2) {
      EXPECT_EQ(statuses[i].code(), StatusCode::kCorruption);
    } else {
      ASSERT_TRUE(statuses[i].ok()) << i;
      EXPECT_EQ(outs[i].ReadAt<uint64_t>(0), 40 + i);
    }
  }
}

TEST_F(DiskChecksumTest, ReadBatchShortReadFailsOnlyTheTruncatedSlot) {
  auto f = DiskPageFile::Create(path_, 512);
  ASSERT_TRUE(f.ok());
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE((*f)->Allocate().ok());
    Page p(512);
    p.WriteAt<uint64_t>(0, 60 + i);
    ASSERT_TRUE((*f)->Write(i, p).ok());
  }
  // Flush stdio first: ReadBatch's own flush must not resurrect the
  // bytes the truncation below is about to destroy.
  ASSERT_TRUE((*f)->Sync().ok());
  // The device loses the tail of the last slot: every backend must turn
  // the short transfer into a per-slot IOError, never garbage bytes.
  const uint64_t slot = kPageHeaderSize + 512;
  ASSERT_EQ(::truncate(path_.c_str(), 3 * slot + 17), 0);
  const PageId ids[] = {0, 1, 2, 3};
  std::vector<Page> outs(4, Page(512));
  std::vector<Status> statuses(4);
  EXPECT_EQ((*f)->ReadBatch(ids, 4, outs.data(), statuses.data()).code(),
            StatusCode::kIOError);
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(statuses[i].ok()) << i;
    EXPECT_EQ(outs[i].ReadAt<uint64_t>(0), 60 + i);
  }
  EXPECT_EQ(statuses[3].code(), StatusCode::kIOError);
}

TEST_F(DiskChecksumTest, AsyncBackendEnvOverridePinsTheBackend) {
  // "iouring" is deliberately absent: it degrades to "preadv" on hosts
  // whose build or kernel lacks it, so its name is not assertable.
  for (const char* want : {"sync", "preadv"}) {
    SCOPED_TRACE(want);
    ASSERT_EQ(::setenv("FIELDDB_ASYNC_IO", want, 1), 0);
    std::remove(path_.c_str());
    auto f = DiskPageFile::Create(path_, 512);
    ASSERT_TRUE(f.ok());
    for (uint64_t i = 0; i < 6; ++i) {
      ASSERT_TRUE((*f)->Allocate().ok());
      Page p(512);
      p.WriteAt<uint64_t>(0, 80 + i);
      ASSERT_TRUE((*f)->Write(i, p).ok());
    }
    EXPECT_STREQ((*f)->async_backend_name(), want);
    const PageId ids[] = {5, 4, 3, 2, 1, 0};
    std::vector<Page> outs(6, Page(512));
    std::vector<Status> statuses(6);
    ASSERT_TRUE((*f)->ReadBatch(ids, 6, outs.data(), statuses.data()).ok());
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(statuses[i].ok()) << i;
      EXPECT_EQ(outs[i].ReadAt<uint64_t>(0), 80 + ids[i]);
    }
  }
  ASSERT_EQ(::unsetenv("FIELDDB_ASYNC_IO"), 0);
}

// ---------------------------------------------------------------------
// FieldDatabase-level degradation: scrub + fallback to LinearScan.

class DatabaseFaultTest : public ::testing::Test {
 protected:
  StatusOr<std::unique_ptr<FieldDatabase>> BuildFaulty(IndexMethod method) {
    FractalOptions fo;
    fo.size_exp = 5;
    fo.roughness_h = 0.6;
    field_ = MakeFractalField(fo);
    if (!field_.ok()) return field_.status();

    FieldDatabaseOptions options;
    options.method = method;
    options.page_file_factory = [this](uint32_t page_size) {
      auto mem = std::make_unique<MemPageFile>(page_size);
      auto faulty = std::make_unique<FaultInjectingPageFile>(std::move(mem));
      injector_ = faulty.get();
      return faulty;
    };
    return FieldDatabase::Build(*field_, options);
  }

  StatusOr<GridField> field_ = Status::NotFound("not built");
  FaultInjectingPageFile* injector_ = nullptr;
};

TEST_F(DatabaseFaultTest, ScrubCleanOnHealthyDatabase) {
  auto db = BuildFaulty(IndexMethod::kIHilbert);
  ASSERT_TRUE(db.ok());
  FieldDatabase::ScrubReport report;
  ASSERT_TRUE((*db)->Scrub(&report).ok());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.pages_checked, (*db)->pool().file()->NumPages());
  EXPECT_GT(report.pages_checked, 0u);
}

TEST_F(DatabaseFaultTest, ScrubReportsExactlyTheCorruptPage) {
  auto db = BuildFaulty(IndexMethod::kIHilbert);
  ASSERT_TRUE(db.ok());
  const PageId victim = 3;
  injector_->CorruptPage(victim);
  FieldDatabase::ScrubReport report;
  ASSERT_TRUE((*db)->Scrub(&report).ok());
  ASSERT_EQ(report.corrupt_pages.size(), 1u);
  EXPECT_EQ(report.corrupt_pages[0], victim);
}

TEST_F(DatabaseFaultTest, CorruptIndexFallsBackToScanWithIdenticalResults) {
  // Reference run: an intact database of the same field.
  FractalOptions fo;
  fo.size_exp = 5;
  fo.roughness_h = 0.6;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  auto intact = FieldDatabase::Build(*field);
  ASSERT_TRUE(intact.ok());

  auto db = BuildFaulty(IndexMethod::kIHilbert);
  ASSERT_TRUE(db.ok());
  // Pin the indexed plan: this test exercises the corrupt-filter
  // fallback, and on a field this small the auto planner would choose
  // the fused scan and never touch the index at all.
  (*db)->set_planner_mode(PlannerMode::kForceIndex);
  // Corrupt the I-Hilbert tree root: the filtering step becomes
  // unusable, but the clustered cell store is untouched.
  const auto* idx = static_cast<const IHilbertIndex*>(&(*db)->index());
  injector_->CorruptPage(idx->tree().meta().root);
  // Drop cached frames so the next tree descent actually hits storage.
  ASSERT_TRUE((*db)->pool().Clear().ok());

  const auto queries = GenerateValueQueries(field->ValueRange(),
                                            WorkloadOptions{0.04, 10, 17});
  for (const ValueInterval& q : queries) {
    ValueQueryResult expected, degraded;
    ASSERT_TRUE((*intact)->ValueQuery(q, &expected).ok());
    ASSERT_TRUE((*db)->ValueQuery(q, &degraded).ok());
    EXPECT_EQ(degraded.stats.index_fallbacks, 1u);
    EXPECT_EQ(degraded.stats.answer_cells, expected.stats.answer_cells);
    EXPECT_NEAR(degraded.region.TotalArea(), expected.region.TotalArea(),
                1e-9);
  }
  EXPECT_EQ((*db)->index_fallbacks(), queries.size());

  // Scrub agrees with the failure the queries worked around.
  FieldDatabase::ScrubReport report;
  ASSERT_TRUE((*db)->Scrub(&report).ok());
  ASSERT_EQ(report.corrupt_pages.size(), 1u);
  EXPECT_EQ(report.corrupt_pages[0], idx->tree().meta().root);
}

TEST_F(DatabaseFaultTest, TransientFaultsDuringQueriesAreInvisible) {
  auto db = BuildFaulty(IndexMethod::kIHilbert);
  ASSERT_TRUE(db.ok());
  // Every page of the store intermittently fails: a 20% transient
  // error rate must be fully absorbed by the pool's retry loop.
  FaultInjectionOptions options;
  options.seed = 99;
  options.read_error_prob = 0.2;
  FieldDatabaseOptions db_options;
  db_options.page_file_factory = [&](uint32_t page_size) {
    auto mem = std::make_unique<MemPageFile>(page_size);
    return std::make_unique<FaultInjectingPageFile>(std::move(mem), options);
  };
  FractalOptions fo;
  fo.size_exp = 4;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  auto flaky = FieldDatabase::Build(*field, db_options);
  ASSERT_TRUE(flaky.ok());

  QueryStats stats;
  ASSERT_TRUE((*flaky)
                  ->ValueQueryStats(ValueInterval{0.2, 0.4}, &stats)
                  .ok());
  // (With a 3-retry budget, P(4 consecutive 20% faults) = 0.16% per
  // read; the seeded schedule above stays under that.)
}

}  // namespace
}  // namespace fielddb

#include "common/status.h"

#include <gtest/gtest.h>

namespace fielddb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad grid");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad grid");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad grid");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::IOError("disk"); };
  auto wrapper = [&]() -> Status {
    FIELDDB_RETURN_IF_ERROR(fails());
    return Status::Internal("unreachable");
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kIOError);
}

TEST(StatusTest, ReturnIfErrorPassesOk) {
  auto succeeds = []() -> Status { return Status::OK(); };
  auto wrapper = [&]() -> Status {
    FIELDDB_RETURN_IF_ERROR(succeeds());
    return Status::Internal("reached");
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 7);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

TEST(StatusCodeTest, Names) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
}

}  // namespace
}  // namespace fielddb

// Whole-database concurrency tests: N threads issue value queries
// against one open FieldDatabase and every result must equal the
// single-threaded ground truth exactly — same candidates, same answers,
// same logical I/O. Worker threads record discrepancies in atomics that
// are asserted after join (gtest expectations are not thread-safe).
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/field_database.h"
#include "core/query_executor.h"
#include "gen/fractal.h"
#include "gen/workload.h"

namespace fielddb {
namespace {

StatusOr<GridField> MakeTestField() {
  FractalOptions fo;
  fo.size_exp = 5;  // 32x32 cells: small enough to stress-query cheaply
  fo.seed = 9;
  return MakeFractalField(fo);
}

// Exact-value, narrow, and wide interval queries — the fallback-free
// paths a reader pool may mix freely.
std::vector<ValueInterval> MakeQueries(const ValueInterval& range) {
  std::vector<ValueInterval> queries;
  int salt = 0;
  for (const double qf : {0.0, 0.05, 0.2}) {
    WorkloadOptions wo;
    wo.qinterval_fraction = qf;
    wo.num_queries = 16;
    wo.seed = 100 + salt++;
    const std::vector<ValueInterval> qs = GenerateValueQueries(range, wo);
    queries.insert(queries.end(), qs.begin(), qs.end());
  }
  return queries;
}

// Computes per-query ground truth sequentially, then replays the same
// workload from 8 threads (each with its own QueryContext, several
// rounds so cache states vary) and requires bit-exact agreement on the
// deterministic fields. physical_reads is legitimately timing-dependent
// (another thread may have warmed the page) and is not compared.
void StressDatabase(const FieldDatabase& db) {
  const std::vector<ValueInterval> queries = MakeQueries(db.value_range());
  std::vector<QueryStats> truth(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(db.ValueQueryStats(queries[i], &truth[i]).ok());
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 3;
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      QueryContext ctx;  // thread-private scratch, reused across queries
      for (int r = 0; r < kRounds; ++r) {
        for (size_t i = 0; i < queries.size(); ++i) {
          QueryStats s;
          if (!db.ValueQueryStats(queries[i], &s, &ctx).ok()) {
            errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (s.candidate_cells != truth[i].candidate_cells ||
              s.answer_cells != truth[i].answer_cells ||
              s.index_fallbacks != truth[i].index_fallbacks ||
              s.io.logical_reads != truth[i].io.logical_reads) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(ConcurrencyTest, SharedIHilbertDatabaseMatchesGroundTruth) {
  StatusOr<GridField> field = MakeTestField();
  ASSERT_TRUE(field.ok());
  FieldDatabaseOptions options;
  options.method = IndexMethod::kIHilbert;
  auto db = FieldDatabase::Build(*field, options);
  ASSERT_TRUE(db.ok());
  StressDatabase(**db);
}

TEST(ConcurrencyTest, SharedLinearScanDatabaseMatchesGroundTruth) {
  StatusOr<GridField> field = MakeTestField();
  ASSERT_TRUE(field.ok());
  FieldDatabaseOptions options;
  options.method = IndexMethod::kLinearScan;
  auto db = FieldDatabase::Build(*field, options);
  ASSERT_TRUE(db.ok());
  StressDatabase(**db);
}

TEST(ConcurrencyTest, ReopenedDatabaseUnderEvictionPressure) {
  // The on-disk path with a pool far smaller than the page count: every
  // thread's queries continuously evict pages the others need, so the
  // shard eviction/write-back machinery runs hot while results must
  // stay exact.
  StatusOr<GridField> field = MakeTestField();
  ASSERT_TRUE(field.ok());
  auto built = FieldDatabase::Build(*field);
  ASSERT_TRUE(built.ok());
  const std::string prefix =
      ::testing::TempDir() + "/fielddb_concurrency_stress";
  ASSERT_TRUE((*built)->Save(prefix).ok());

  auto db = FieldDatabase::Open(prefix, /*pool_pages=*/16);
  ASSERT_TRUE(db.ok());
  StressDatabase(**db);
  ASSERT_TRUE((*db)->Close().ok());
  std::remove((prefix + ".pages").c_str());
  std::remove((prefix + ".meta").c_str());
}

TEST(ConcurrencyTest, ExecutorBatchMatchesSequentialTruth) {
  StatusOr<GridField> field = MakeTestField();
  ASSERT_TRUE(field.ok());
  auto db = FieldDatabase::Build(*field);
  ASSERT_TRUE(db.ok());
  const std::vector<ValueInterval> queries =
      MakeQueries((*db)->value_range());
  std::vector<QueryStats> truth(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE((*db)->ValueQueryStats(queries[i], &truth[i]).ok());
  }

  QueryExecutor::Options eo;
  eo.threads = 8;
  eo.queue_capacity = 4;  // small queue: Submit's backpressure engages
  QueryExecutor executor(db->get(), eo);
  QueryExecutor::BatchResult batch;
  ASSERT_TRUE(executor.RunBatch(queries, &batch).ok());

  ASSERT_EQ(batch.per_query.size(), queries.size());
  EXPECT_EQ(batch.failed, 0u);
  EXPECT_TRUE(batch.first_error.ok());
  EXPECT_GT(batch.qps, 0.0);
  EXPECT_LE(batch.p50_wall_ms, batch.p99_wall_ms);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(batch.per_query[i].candidate_cells, truth[i].candidate_cells)
        << "query " << i;
    EXPECT_EQ(batch.per_query[i].answer_cells, truth[i].answer_cells)
        << "query " << i;
    EXPECT_EQ(batch.per_query[i].io.logical_reads, truth[i].io.logical_reads)
        << "query " << i;
  }
  // The batch total is the exact accumulation of the per-query stats
  // (per-thread IoStats merged via IoStats::operator+=).
  QueryStats manual;
  for (const QueryStats& s : batch.per_query) manual.Accumulate(s);
  EXPECT_EQ(batch.total.candidate_cells, manual.candidate_cells);
  EXPECT_EQ(batch.total.answer_cells, manual.answer_cells);
  EXPECT_EQ(batch.total.io.logical_reads, manual.io.logical_reads);
  EXPECT_EQ(batch.total.io.physical_reads, manual.io.physical_reads);
}

TEST(ConcurrencyTest, ExecutorSubmitRunsEveryCallback) {
  StatusOr<GridField> field = MakeTestField();
  ASSERT_TRUE(field.ok());
  auto db = FieldDatabase::Build(*field);
  ASSERT_TRUE(db.ok());
  const std::vector<ValueInterval> queries =
      MakeQueries((*db)->value_range());

  QueryExecutor::Options eo;
  eo.threads = 4;
  QueryExecutor executor(db->get(), eo);
  EXPECT_EQ(executor.threads(), 4u);
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> failures{0};
  for (int round = 0; round < 4; ++round) {
    for (const ValueInterval& q : queries) {
      executor.Submit(q, [&](const Status& s, const QueryStats&) {
        if (!s.ok()) failures.fetch_add(1, std::memory_order_relaxed);
        completed.fetch_add(1, std::memory_order_relaxed);
      });
    }
    executor.Drain();  // after Drain, all callbacks of the round ran
    EXPECT_EQ(completed.load(), (round + 1) * queries.size());
  }
  EXPECT_EQ(failures.load(), 0u);
}

}  // namespace
}  // namespace fielddb

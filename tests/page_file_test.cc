#include "storage/page_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace fielddb {
namespace {

TEST(PageTest, ReadWriteRoundtrip) {
  Page p(4096);
  EXPECT_EQ(p.size(), 4096u);
  const uint64_t magic = 0xDEADBEEFCAFEF00DULL;
  p.WriteAt<uint64_t>(16, magic);
  EXPECT_EQ(p.ReadAt<uint64_t>(16), magic);
  p.Zero();
  EXPECT_EQ(p.ReadAt<uint64_t>(16), 0u);
}

TEST(PageTest, BulkCopy) {
  Page p(256);
  const char src[] = "hello pages";
  p.Write(100, src, sizeof(src));
  char dst[sizeof(src)] = {};
  p.Read(100, dst, sizeof(src));
  EXPECT_STREQ(dst, "hello pages");
}

TEST(MemPageFileTest, AllocateSequentialIds) {
  MemPageFile f(512);
  EXPECT_EQ(f.NumPages(), 0u);
  for (PageId want = 0; want < 5; ++want) {
    StatusOr<PageId> id = f.Allocate();
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, want);
  }
  EXPECT_EQ(f.NumPages(), 5u);
}

TEST(MemPageFileTest, WriteReadRoundtrip) {
  MemPageFile f(512);
  ASSERT_TRUE(f.Allocate().ok());
  Page p(512);
  p.WriteAt<uint32_t>(0, 777u);
  ASSERT_TRUE(f.Write(0, p).ok());
  Page q(512);
  ASSERT_TRUE(f.Read(0, &q).ok());
  EXPECT_EQ(q.ReadAt<uint32_t>(0), 777u);
}

TEST(MemPageFileTest, FreshPagesAreZeroed) {
  MemPageFile f(128);
  ASSERT_TRUE(f.Allocate().ok());
  Page p(128);
  ASSERT_TRUE(f.Read(0, &p).ok());
  for (uint32_t i = 0; i < 128; i += 8) {
    EXPECT_EQ(p.ReadAt<uint64_t>(i), 0u);
  }
}

TEST(MemPageFileTest, OutOfRangeRejected) {
  MemPageFile f(512);
  Page p(512);
  EXPECT_EQ(f.Read(0, &p).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(f.Write(0, p).code(), StatusCode::kOutOfRange);
}

TEST(MemPageFileTest, SizeMismatchRejected) {
  MemPageFile f(512);
  ASSERT_TRUE(f.Allocate().ok());
  Page wrong(256);
  EXPECT_EQ(f.Write(0, wrong).code(), StatusCode::kInvalidArgument);
}

class DiskPageFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/fielddb_pagefile_test.bin";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(DiskPageFileTest, CreateWriteReopenRead) {
  {
    auto f = DiskPageFile::Create(path_, 512);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Allocate().ok());
    ASSERT_TRUE((*f)->Allocate().ok());
    Page p(512);
    p.WriteAt<uint64_t>(8, 4242u);
    ASSERT_TRUE((*f)->Write(1, p).ok());
  }
  auto f = DiskPageFile::Open(path_, 512);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->NumPages(), 2u);
  Page p(512);
  ASSERT_TRUE((*f)->Read(1, &p).ok());
  EXPECT_EQ(p.ReadAt<uint64_t>(8), 4242u);
}

TEST_F(DiskPageFileTest, OpenMissingFails) {
  auto f = DiskPageFile::Open(path_ + ".nope", 512);
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kIOError);
}

TEST_F(DiskPageFileTest, OpenBadLengthIsCorruption) {
  std::FILE* raw = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(raw, nullptr);
  std::fputs("not a multiple of 512", raw);
  std::fclose(raw);
  auto f = DiskPageFile::Open(path_, 512);
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kCorruption);
}

TEST_F(DiskPageFileTest, OutOfRangeRejected) {
  auto f = DiskPageFile::Create(path_, 512);
  ASSERT_TRUE(f.ok());
  Page p(512);
  EXPECT_EQ((*f)->Read(3, &p).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace fielddb

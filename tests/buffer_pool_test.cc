#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include "storage/fault_injection.h"

namespace fielddb {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() : file_(256) {}

  PageId AllocViaPool(BufferPool& pool, uint64_t tag) {
    PinnedPage pin;
    StatusOr<PageId> id = pool.Allocate(&pin);
    EXPECT_TRUE(id.ok());
    pin.MutablePage().WriteAt<uint64_t>(0, tag);
    return *id;
  }

  MemPageFile file_;
};

TEST_F(BufferPoolTest, AllocateAndFetch) {
  BufferPool pool(&file_, 4);
  const PageId id = AllocViaPool(pool, 111);
  PinnedPage pin;
  ASSERT_TRUE(pool.Fetch(id, &pin).ok());
  EXPECT_EQ(pin.page().ReadAt<uint64_t>(0), 111u);
}

TEST_F(BufferPoolTest, HitDoesNotTouchFile) {
  BufferPool pool(&file_, 4);
  const PageId id = AllocViaPool(pool, 1);
  pool.ResetStats();
  PinnedPage a, b;
  ASSERT_TRUE(pool.Fetch(id, &a).ok());
  ASSERT_TRUE(pool.Fetch(id, &b).ok());
  EXPECT_EQ(pool.stats().logical_reads, 2u);
  EXPECT_EQ(pool.stats().physical_reads, 0u);  // still cached from alloc
}

TEST_F(BufferPoolTest, EvictionWritesBackDirtyPages) {
  BufferPool pool(&file_, 2);
  const PageId a = AllocViaPool(pool, 10);
  const PageId b = AllocViaPool(pool, 20);
  const PageId c = AllocViaPool(pool, 30);  // evicts the LRU frame (a)
  EXPECT_GE(pool.stats().evictions, 1u);
  EXPECT_GE(pool.stats().writes, 1u);

  // Re-fetch all three; contents must have survived the eviction cycle.
  for (const auto& [id, tag] :
       std::vector<std::pair<PageId, uint64_t>>{{a, 10}, {b, 20}, {c, 30}}) {
    PinnedPage pin;
    ASSERT_TRUE(pool.Fetch(id, &pin).ok());
    EXPECT_EQ(pin.page().ReadAt<uint64_t>(0), tag);
  }
}

TEST_F(BufferPoolTest, LruOrderEvictsLeastRecentlyUsed) {
  BufferPool pool(&file_, 2);
  const PageId a = AllocViaPool(pool, 1);
  const PageId b = AllocViaPool(pool, 2);
  {
    PinnedPage pin;  // touch `a` so `b` becomes LRU
    ASSERT_TRUE(pool.Fetch(a, &pin).ok());
  }
  AllocViaPool(pool, 3);  // must evict b, not a
  pool.ResetStats();
  {
    PinnedPage pin;
    ASSERT_TRUE(pool.Fetch(a, &pin).ok());
  }
  EXPECT_EQ(pool.stats().physical_reads, 0u);  // a stayed resident
  {
    PinnedPage pin;
    ASSERT_TRUE(pool.Fetch(b, &pin).ok());
  }
  EXPECT_EQ(pool.stats().physical_reads, 1u);  // b was evicted
}

TEST_F(BufferPoolTest, PinnedFramesAreNotEvicted) {
  BufferPool pool(&file_, 2);
  const PageId a = AllocViaPool(pool, 1);
  AllocViaPool(pool, 2);
  PinnedPage hold;
  ASSERT_TRUE(pool.Fetch(a, &hold).ok());
  AllocViaPool(pool, 3);  // must evict the unpinned frame
  // `a` is still resident and its content intact.
  EXPECT_EQ(hold.page().ReadAt<uint64_t>(0), 1u);
}

TEST_F(BufferPoolTest, AllPinnedFailsGracefully) {
  BufferPool pool(&file_, 2);
  PinnedPage p1, p2, p3;
  ASSERT_TRUE(pool.Allocate(&p1).ok());
  ASSERT_TRUE(pool.Allocate(&p2).ok());
  StatusOr<PageId> third = pool.Allocate(&p3);
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(BufferPoolTest, MovePinTransfersOwnership) {
  BufferPool pool(&file_, 4);
  const PageId id = AllocViaPool(pool, 5);
  PinnedPage a;
  ASSERT_TRUE(pool.Fetch(id, &a).ok());
  PinnedPage b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.page().ReadAt<uint64_t>(0), 5u);
}

TEST_F(BufferPoolTest, FlushPersistsWithoutEviction) {
  BufferPool pool(&file_, 8);
  const PageId id = AllocViaPool(pool, 77);
  ASSERT_TRUE(pool.Flush().ok());
  Page raw(256);
  ASSERT_TRUE(file_.Read(id, &raw).ok());
  EXPECT_EQ(raw.ReadAt<uint64_t>(0), 77u);
}

TEST_F(BufferPoolTest, ClearDropsResidency) {
  BufferPool pool(&file_, 8);
  const PageId id = AllocViaPool(pool, 9);
  ASSERT_TRUE(pool.Clear().ok());
  EXPECT_EQ(pool.num_frames(), 0u);
  pool.ResetStats();
  PinnedPage pin;
  ASSERT_TRUE(pool.Fetch(id, &pin).ok());
  EXPECT_EQ(pool.stats().physical_reads, 1u);
  EXPECT_EQ(pin.page().ReadAt<uint64_t>(0), 9u);
}

TEST_F(BufferPoolTest, StatsDiffAttributesTraffic) {
  BufferPool pool(&file_, 2);
  const PageId a = AllocViaPool(pool, 1);
  const PageId b = AllocViaPool(pool, 2);
  ASSERT_TRUE(pool.Clear().ok());
  const IoStats before = pool.stats();
  for (const PageId id : {a, b, a, b}) {
    PinnedPage pin;
    ASSERT_TRUE(pool.Fetch(id, &pin).ok());
  }
  const IoStats delta = pool.stats() - before;
  EXPECT_EQ(delta.logical_reads, 4u);
  EXPECT_EQ(delta.physical_reads, 2u);  // both fit; second round hits
}

TEST_F(BufferPoolTest, SequentialReadAccounting) {
  BufferPool pool(&file_, 4);
  std::vector<PageId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(AllocViaPool(pool, i));
  ASSERT_TRUE(pool.Clear().ok());
  pool.ResetStats();
  // Ascending scan: first read is random, the rest sequential.
  for (const PageId id : ids) {
    PinnedPage pin;
    ASSERT_TRUE(pool.Fetch(id, &pin).ok());
  }
  EXPECT_EQ(pool.stats().physical_reads, 8u);
  EXPECT_EQ(pool.stats().sequential_reads, 7u);
  EXPECT_EQ(pool.stats().random_reads(), 1u);

  // Strided access: every read pays a seek.
  ASSERT_TRUE(pool.Clear().ok());
  pool.ResetStats();
  for (const PageId id : {ids[0], ids[4], ids[2], ids[6]}) {
    PinnedPage pin;
    ASSERT_TRUE(pool.Fetch(id, &pin).ok());
  }
  EXPECT_EQ(pool.stats().sequential_reads, 0u);
  EXPECT_EQ(pool.stats().random_reads(), 4u);
}

TEST_F(BufferPoolTest, CacheHitsDoNotCountAsPhysical) {
  BufferPool pool(&file_, 8);
  const PageId a = AllocViaPool(pool, 1);
  pool.ResetStats();
  for (int i = 0; i < 5; ++i) {
    PinnedPage pin;
    ASSERT_TRUE(pool.Fetch(a, &pin).ok());
  }
  EXPECT_EQ(pool.stats().logical_reads, 5u);
  EXPECT_EQ(pool.stats().physical_reads, 0u);
  EXPECT_EQ(pool.stats().sequential_reads, 0u);
}

TEST_F(BufferPoolTest, CapacityZeroClampsToOne) {
  BufferPool pool(&file_, 0);
  EXPECT_EQ(pool.capacity(), 1u);
  AllocViaPool(pool, 1);
  AllocViaPool(pool, 2);  // forces eviction through the single frame
  EXPECT_GE(pool.stats().evictions, 1u);
}

TEST_F(BufferPoolTest, CloseFlushesAndFencesThePool) {
  BufferPool pool(&file_, 4);
  const PageId id = AllocViaPool(pool, 33);
  ASSERT_TRUE(pool.Close().ok());
  EXPECT_TRUE(pool.closed());
  // The dirty frame reached the file before the pool shut down.
  Page raw(256);
  ASSERT_TRUE(file_.Read(id, &raw).ok());
  EXPECT_EQ(raw.ReadAt<uint64_t>(0), 33u);
  // A closed pool rejects traffic but tolerates another Close.
  PinnedPage pin;
  EXPECT_EQ(pool.Fetch(id, &pin).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(pool.Allocate(&pin).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(pool.Close().ok());
}

TEST_F(BufferPoolTest, PrefetchMakesSubsequentFetchesHits) {
  BufferPool pool(&file_, 16);
  std::vector<PageId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(AllocViaPool(pool, i));
  ASSERT_TRUE(pool.Clear().ok());
  pool.ResetStats();

  ASSERT_TRUE(pool.PrefetchRange(ids.front(), ids.size()).ok());
  // Prefetch reads are physical (and sequential after the first) but
  // never logical: readahead replaces Fetch's miss reads one-for-one.
  EXPECT_EQ(pool.stats().logical_reads, 0u);
  EXPECT_EQ(pool.stats().physical_reads, 8u);
  EXPECT_EQ(pool.stats().sequential_reads, 7u);

  for (size_t i = 0; i < ids.size(); ++i) {
    PinnedPage pin;
    ASSERT_TRUE(pool.Fetch(ids[i], &pin).ok());
    EXPECT_EQ(pin.page().ReadAt<uint64_t>(0), i);
  }
  // Every Fetch hit; I/O totals match a plain sequential scan exactly.
  EXPECT_EQ(pool.stats().logical_reads, 8u);
  EXPECT_EQ(pool.stats().physical_reads, 8u);
  EXPECT_EQ(pool.stats().sequential_reads, 7u);
}

TEST_F(BufferPoolTest, PrefetchOfResidentPagesReadsNothing) {
  BufferPool pool(&file_, 16);
  std::vector<PageId> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(AllocViaPool(pool, i));
  pool.ResetStats();
  ASSERT_TRUE(pool.PrefetchRange(ids.front(), ids.size()).ok());
  EXPECT_EQ(pool.stats().logical_reads, 0u);
  EXPECT_EQ(pool.stats().physical_reads, 0u);
}

TEST_F(BufferPoolTest, PrefetchedFramesAreEvictable) {
  // Prefetched frames enter the LRU unpinned; they must not wedge a
  // small pool.
  BufferPool pool(&file_, 2);
  std::vector<PageId> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(AllocViaPool(pool, i));
  ASSERT_TRUE(pool.Clear().ok());
  ASSERT_TRUE(pool.PrefetchRange(ids.front(), ids.size()).ok());
  EXPECT_LE(pool.num_frames(), pool.capacity());
  PinnedPage pin;
  ASSERT_TRUE(pool.Fetch(ids[0], &pin).ok());
  EXPECT_EQ(pin.page().ReadAt<uint64_t>(0), 0u);
}

TEST_F(BufferPoolTest, PrefetchReadFailureIsSilentAndUncounted) {
  FaultInjectingPageFile faulty(&file_);
  BufferPool pool(&faulty, 8);
  PinnedPage pin;
  StatusOr<PageId> id = pool.Allocate(&pin);
  ASSERT_TRUE(id.ok());
  pin.MutablePage().WriteAt<uint64_t>(0, 12);
  pin.Release();
  ASSERT_TRUE(pool.Clear().ok());
  pool.ResetStats();

  // The prefetch's single uncounted read fails; Fetch then succeeds
  // through its own retried path with normal accounting.
  faulty.FailNextReads(*id, 1);
  ASSERT_TRUE(pool.PrefetchRange(*id, 1).ok());
  EXPECT_EQ(pool.stats().physical_reads, 0u);
  EXPECT_EQ(pool.stats().failed_reads, 0u);
  ASSERT_TRUE(pool.Fetch(*id, &pin).ok());
  EXPECT_EQ(pin.page().ReadAt<uint64_t>(0), 12u);
  EXPECT_EQ(pool.stats().logical_reads, 1u);
  EXPECT_EQ(pool.stats().physical_reads, 1u);
}

TEST_F(BufferPoolTest, PinManyPinsTheWholeSpan) {
  BufferPool pool(&file_, 16);
  std::vector<PageId> ids;
  for (int i = 0; i < 5; ++i) ids.push_back(AllocViaPool(pool, i));
  ASSERT_TRUE(pool.Clear().ok());
  pool.ResetStats();

  std::vector<PinnedPage> pins;
  ASSERT_TRUE(pool.PinMany(ids.front(), ids.size(), &pins).ok());
  ASSERT_EQ(pins.size(), ids.size());
  for (size_t i = 0; i < pins.size(); ++i) {
    EXPECT_EQ(pins[i].id(), ids[i]);
    EXPECT_EQ(pins[i].page().ReadAt<uint64_t>(0), i);
  }
  EXPECT_EQ(pool.stats().logical_reads, 5u);
  EXPECT_EQ(pool.stats().physical_reads, 5u);
}

TEST_F(BufferPoolTest, PinManyRollsBackOnFailure) {
  BufferPool pool(&file_, 16);
  const PageId a = AllocViaPool(pool, 1);
  AllocViaPool(pool, 2);
  std::vector<PinnedPage> pins;
  // Span runs past the end of the file: the pin batch must fail and
  // leave `pins` exactly as it was.
  PinnedPage keep;
  ASSERT_TRUE(pool.Fetch(a, &keep).ok());
  pins.push_back(std::move(keep));
  EXPECT_FALSE(pool.PinMany(a, 100, &pins).ok());
  ASSERT_EQ(pins.size(), 1u);
  EXPECT_EQ(pins[0].id(), a);
}

TEST_F(BufferPoolTest, TransientReadFaultRetriedTransparently) {
  FaultInjectingPageFile faulty(&file_);
  BufferPool pool(&faulty, 4);
  PinnedPage pin;
  StatusOr<PageId> id = pool.Allocate(&pin);
  ASSERT_TRUE(id.ok());
  pin.MutablePage().WriteAt<uint64_t>(0, 8);
  pin.Release();
  ASSERT_TRUE(pool.Clear().ok());

  faulty.FailNextReads(*id, BufferPool::kMaxReadRetries);
  ASSERT_TRUE(pool.Fetch(*id, &pin).ok());
  EXPECT_EQ(pin.page().ReadAt<uint64_t>(0), 8u);
  EXPECT_EQ(pool.stats().read_retries,
            static_cast<uint64_t>(BufferPool::kMaxReadRetries));
}

TEST_F(BufferPoolTest, EvictionWriteBackFailureDoesNotLoseData) {
  FaultInjectingPageFile faulty(&file_);
  BufferPool pool(&faulty, 1);
  PinnedPage pin;
  StatusOr<PageId> victim = pool.Allocate(&pin);
  ASSERT_TRUE(victim.ok());
  pin.MutablePage().WriteAt<uint64_t>(0, 55);
  pin.Release();

  faulty.FailAllWrites(*victim);
  PinnedPage other;
  EXPECT_EQ(pool.Allocate(&other).status().code(), StatusCode::kIOError);
  // The dirty frame survived the failed eviction; once the device
  // recovers, a flush writes it out intact.
  faulty.ClearFaults();
  ASSERT_TRUE(pool.Flush().ok());
  Page raw(256);
  ASSERT_TRUE(file_.Read(*victim, &raw).ok());
  EXPECT_EQ(raw.ReadAt<uint64_t>(0), 55u);
}

}  // namespace
}  // namespace fielddb

// Tests for the per-query trace spans (obs/trace.h threaded through
// FieldDatabase) and the EXPLAIN path. The load-bearing invariants:
// span I/O deltas sum exactly to the query's IoStats, and the EXPLAIN
// subfield list agrees with what the filter actually produced.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/field_database.h"
#include "gen/fractal.h"
#include "obs/trace.h"

namespace fielddb {
namespace {

StatusOr<GridField> MakeDem() {
  FractalOptions options;
  options.size_exp = 6;  // 64x64 = 4096 cells
  options.roughness_h = 0.7;
  options.seed = 20020613;
  return MakeFractalField(options);
}

StatusOr<std::unique_ptr<FieldDatabase>> MakeDb(IndexMethod method) {
  StatusOr<GridField> dem = MakeDem();
  if (!dem.ok()) return dem.status();
  FieldDatabaseOptions options;
  options.method = method;
  options.build_spatial_index = false;
  return FieldDatabase::Build(*dem, options);
}

ValueInterval MidBand(const FieldDatabase& db, double lo_frac,
                      double hi_frac) {
  const ValueInterval& vr = db.value_range();
  const double span = vr.max - vr.min;
  return ValueInterval{vr.min + lo_frac * span, vr.min + hi_frac * span};
}

TEST(TraceTest, ScopedSpanIsNoOpWithoutTrace) {
  IoStats io;
  ScopedSpan span(nullptr, "filter", &io);
  span.set_items(5);
  span.Finish();  // must not crash or dereference anything
}

TEST(TraceTest, SpanIoDeltasSumToQueryIo) {
  auto db = MakeDb(IndexMethod::kIHilbert);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  // Pin the indexed pipeline: this test asserts its exact span list.
  (*db)->set_planner_mode(PlannerMode::kForceIndex);
  const ValueInterval band = MidBand(**db, 0.30, 0.45);

  QueryStats qs;
  ASSERT_TRUE((*db)->TracedValueQueryStats(band, &qs).ok());
  ASSERT_NE(qs.trace, nullptr);

  // The indexed pipeline records planning plus its three phases, in
  // order.
  ASSERT_EQ(qs.trace->spans().size(), 4u);
  EXPECT_EQ(qs.trace->spans()[0].name, "plan");
  EXPECT_EQ(qs.trace->spans()[1].name, "filter");
  EXPECT_EQ(qs.trace->spans()[2].name, "fetch");
  EXPECT_EQ(qs.trace->spans()[3].name, "estimate");

  // Planning never touches pages: its cost inputs are the subfield
  // table / zone-map sidecar, both in memory.
  EXPECT_EQ(qs.trace->spans()[0].io.logical_reads, 0u);

  // Phase I/O deltas account for the query's I/O exactly: the spans are
  // contiguous and nothing else touches the pool in between.
  const IoStats total = qs.trace->TotalIo();
  EXPECT_EQ(total.logical_reads, qs.io.logical_reads);
  EXPECT_EQ(total.physical_reads, qs.io.physical_reads);
  EXPECT_EQ(total.sequential_reads, qs.io.sequential_reads);

  // The estimation phase is pure computation.
  const TraceSpan* estimate = qs.trace->Find("estimate");
  ASSERT_NE(estimate, nullptr);
  EXPECT_EQ(estimate->io.logical_reads, 0u);
  EXPECT_EQ(estimate->items, qs.answer_cells);

  const TraceSpan* filter = qs.trace->Find("filter");
  ASSERT_NE(filter, nullptr);
  EXPECT_EQ(filter->items, qs.candidate_cells);

  // Span wall times are disjoint pieces of the query wall time.
  EXPECT_LE(qs.trace->TotalWallSeconds(), qs.wall_seconds + 1e-9);

  // Renderings exist and mention every phase.
  const std::string text = qs.trace->ToString();
  const std::string json = qs.trace->ToJson();
  for (const char* phase : {"filter", "fetch", "estimate"}) {
    EXPECT_NE(text.find(phase), std::string::npos) << phase;
    EXPECT_NE(json.find(phase), std::string::npos) << phase;
  }
}

TEST(TraceTest, LinearScanTracesFusedPipeline) {
  auto db = MakeDb(IndexMethod::kLinearScan);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  QueryStats qs;
  ASSERT_TRUE(
      (*db)->TracedValueQueryStats(MidBand(**db, 0.3, 0.5), &qs).ok());
  ASSERT_NE(qs.trace, nullptr);
  // No index: no filter phase, just plan + the fused scan + estimation
  // split.
  EXPECT_EQ(qs.trace->Find("filter"), nullptr);
  ASSERT_NE(qs.trace->Find("plan"), nullptr);
  ASSERT_NE(qs.trace->Find("fetch"), nullptr);
  ASSERT_NE(qs.trace->Find("estimate"), nullptr);
  EXPECT_EQ(qs.trace->TotalIo().logical_reads, qs.io.logical_reads);
}

TEST(ExplainTest, SubfieldListMatchesActualCandidates) {
  auto db = MakeDb(IndexMethod::kIHilbert);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  // The subfield annotations describe the indexed filter's output, so
  // pin that plan (auto may prefer the fused scan for this band).
  (*db)->set_planner_mode(PlannerMode::kForceIndex);
  const ValueInterval band = MidBand(**db, 0.40, 0.55);

  FieldDatabase::ExplainResult explain;
  ASSERT_TRUE((*db)->ExplainValueQuery(band, &explain).ok());
  EXPECT_EQ(explain.method, IndexMethod::kIHilbert);
  EXPECT_EQ(explain.chosen_plan, PlanKind::kIndexedFilter);
  EXPECT_FALSE(explain.planner_reason.empty());
  EXPECT_GT(explain.predicted_cost_ms, 0.0);
  EXPECT_DOUBLE_EQ(explain.predicted_cost_ms,
                   explain.predicted_index_cost_ms);
  ASSERT_NE(explain.stats.trace, nullptr);
  ASSERT_FALSE(explain.subfields.empty());

  // I-Hilbert's candidates are exactly the cells of the touched
  // subfields, and `matching_cells` applies the same intersection test
  // the estimation step applies — so the sums must agree with the
  // executed query's stats.
  uint64_t cells = 0;
  uint64_t matching = 0;
  for (const FieldDatabase::ExplainSubfield& sf : explain.subfields) {
    ASSERT_LT(sf.start, sf.end);
    EXPECT_EQ(sf.cells, sf.end - sf.start);
    EXPECT_LE(sf.matching_cells, sf.cells);
    EXPECT_TRUE(sf.interval.Intersects(band));
    cells += sf.cells;
    matching += sf.matching_cells;
  }
  EXPECT_EQ(cells, explain.stats.candidate_cells);
  EXPECT_EQ(matching, explain.stats.answer_cells);

  // Derived quantities are consistent with the stats.
  const double expected_fp =
      static_cast<double>(explain.stats.candidate_cells -
                          explain.stats.answer_cells) /
      static_cast<double>(explain.stats.candidate_cells);
  EXPECT_DOUBLE_EQ(explain.false_positive_ratio, expected_fp);
  EXPECT_EQ(explain.rtree_height, (*db)->build_info().tree_height);
  EXPECT_GE(explain.rtree_nodes_visited, 1u);
  EXPECT_GE(explain.est_disk_ms, 0.0);

  const std::string text = explain.ToString();
  EXPECT_NE(text.find("EXPLAIN"), std::string::npos);
  EXPECT_NE(text.find("subfields touched"), std::string::npos);
  EXPECT_NE(text.find("filter"), std::string::npos);
  EXPECT_NE(text.find("plan: indexed_filter"), std::string::npos);
  const std::string json = explain.ToJson();
  EXPECT_NE(json.find("\"method\":\"I-Hilbert\""), std::string::npos)
      << json.substr(0, 200);
  EXPECT_NE(json.find("\"subfields\":["), std::string::npos);
  EXPECT_NE(json.find("\"trace\":"), std::string::npos);
  EXPECT_NE(json.find("\"plan\":{\"chosen\":\"indexed_filter\""),
            std::string::npos);
}

TEST(ExplainTest, LinearScanHasNoSubfields) {
  auto db = MakeDb(IndexMethod::kLinearScan);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  FieldDatabase::ExplainResult explain;
  ASSERT_TRUE(
      (*db)->ExplainValueQuery(MidBand(**db, 0.3, 0.5), &explain).ok());
  EXPECT_TRUE(explain.subfields.empty());
  EXPECT_EQ(explain.rtree_nodes_visited, 0u);
  ASSERT_NE(explain.stats.trace, nullptr);
  EXPECT_NE(explain.stats.trace->Find("fetch"), nullptr);
}

TEST(ExplainTest, EmptyIntervalRejected) {
  auto db = MakeDb(IndexMethod::kIHilbert);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  FieldDatabase::ExplainResult explain;
  const Status s =
      (*db)->ExplainValueQuery(ValueInterval{1.0, 0.0}, &explain);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // Regression: the result's method must reflect the database even on a
  // failed explain — the struct default (kLinearScan) used to leak
  // through because validation ran before the result was stamped.
  EXPECT_EQ(explain.method, IndexMethod::kIHilbert);
}

TEST(ExplainTest, ReportsAdaptivePlanChoice) {
  auto db = MakeDb(IndexMethod::kIHilbert);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  // A band covering nearly the whole value range: candidates ~ the
  // entire store, so the fused scan must win on the disk model (the
  // indexed plan pays the same pages plus tree seeks).
  FieldDatabase::ExplainResult wide;
  ASSERT_TRUE((*db)->ExplainValueQuery(MidBand(**db, 0.01, 0.99), &wide).ok());
  EXPECT_EQ(wide.chosen_plan, PlanKind::kFusedScan);
  EXPECT_DOUBLE_EQ(wide.predicted_cost_ms, wide.predicted_scan_cost_ms);
  // The fused scan never consulted the subfield table, so EXPLAIN must
  // not annotate subfields the executed plan didn't touch.
  EXPECT_TRUE(wide.subfields.empty());
  ASSERT_NE(wide.stats.trace, nullptr);
  EXPECT_NE(wide.stats.trace->Find("plan"), nullptr);
  EXPECT_EQ(wide.stats.trace->Find("filter"), nullptr);

  // A sliver at the bottom of the range: few candidates, the indexed
  // filter+fetch must undercut reading every page. This needs a store
  // big enough for a crossover to exist at all — on the 4096-cell DEM
  // above, the whole scan costs less than three disk seeks, so the
  // planner (correctly) never picks the index there.
  FractalOptions fo;
  fo.size_exp = 8;  // 256x256 = 65536 cells
  fo.roughness_h = 0.7;
  fo.seed = 20020613;
  auto big_dem = MakeFractalField(fo);
  ASSERT_TRUE(big_dem.ok());
  FieldDatabaseOptions options;
  options.method = IndexMethod::kIHilbert;
  options.build_spatial_index = false;
  auto big = FieldDatabase::Build(*big_dem, options);
  ASSERT_TRUE(big.ok());

  FieldDatabase::ExplainResult narrow;
  ASSERT_TRUE(
      (*big)->ExplainValueQuery(MidBand(**big, 0.0, 0.02), &narrow).ok());
  EXPECT_EQ(narrow.chosen_plan, PlanKind::kIndexedFilter);
  EXPECT_DOUBLE_EQ(narrow.predicted_cost_ms, narrow.predicted_index_cost_ms);
  EXPECT_LT(narrow.predicted_index_cost_ms, narrow.predicted_scan_cost_ms);
  ASSERT_NE(narrow.stats.trace, nullptr);
  EXPECT_NE(narrow.stats.trace->Find("filter"), nullptr);
}

}  // namespace
}  // namespace fielddb

#include "common/simd/interval_filter.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace fielddb {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// The specified predicate, written as naively as possible: one branch per
// slot, emitted through the shared run-merging rule. Every kernel must
// reproduce this exactly.
std::vector<PosRange> Reference(const std::vector<double>& mins,
                                const std::vector<double>& maxs,
                                uint64_t base, double qmin, double qmax) {
  std::vector<PosRange> out;
  for (size_t i = 0; i < mins.size(); ++i) {
    if (mins[i] <= qmax && maxs[i] >= qmin) {
      AppendPosition(&out, base + i);
    }
  }
  return out;
}

std::vector<PosRange> RunScalar(const std::vector<double>& mins,
                                const std::vector<double>& maxs,
                                uint64_t base, double qmin, double qmax) {
  std::vector<PosRange> out;
  simd::FilterIntervalRangesScalar(mins.data(), maxs.data(), mins.size(),
                                   base, qmin, qmax, &out);
  return out;
}

std::vector<PosRange> RunDispatched(const std::vector<double>& mins,
                                    const std::vector<double>& maxs,
                                    uint64_t base, double qmin, double qmax) {
  std::vector<PosRange> out;
  simd::FilterIntervalRanges(mins.data(), maxs.data(), mins.size(), base,
                             qmin, qmax, &out);
  return out;
}

TEST(AppendPositionTest, MergesContiguousRuns) {
  std::vector<PosRange> out;
  AppendPosition(&out, 3);
  AppendPosition(&out, 4);
  AppendPosition(&out, 5);
  AppendPosition(&out, 9);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (PosRange{3, 6}));
  EXPECT_EQ(out[1], (PosRange{9, 10}));
  EXPECT_EQ(TotalRangeLength(out), 4u);
}

TEST(SimdFilterTest, EmptyInputEmitsNothing) {
  std::vector<PosRange> out;
  simd::FilterIntervalRanges(nullptr, nullptr, 0, 0, 0.0, 1.0, &out);
  EXPECT_TRUE(out.empty());
}

TEST(SimdFilterTest, BoundaryTouchingMatches) {
  // Closed intervals: w == min and w == max both qualify.
  const std::vector<double> mins = {5.0, 1.0, 5.0, 0.0};
  const std::vector<double> maxs = {9.0, 5.0, 5.0, 0.5};
  // Query [5, 5]: slots 0 (min == qmax), 1 (max == qmin), 2 (degenerate
  // interval equal to the query) match; slot 3 does not.
  const auto expect = Reference(mins, maxs, 0, 5.0, 5.0);
  ASSERT_EQ(expect.size(), 1u);
  EXPECT_EQ(expect[0], (PosRange{0, 3}));
  EXPECT_EQ(RunScalar(mins, maxs, 0, 5.0, 5.0), expect);
  EXPECT_EQ(RunDispatched(mins, maxs, 0, 5.0, 5.0), expect);
}

TEST(SimdFilterTest, NanNeverMatches) {
  const std::vector<double> mins = {kNaN, 0.0, 0.0, kNaN};
  const std::vector<double> maxs = {1.0, kNaN, 1.0, kNaN};
  const auto expect = Reference(mins, maxs, 0, 0.0, 1.0);
  ASSERT_EQ(expect.size(), 1u);
  EXPECT_EQ(expect[0], (PosRange{2, 3}));
  EXPECT_EQ(RunScalar(mins, maxs, 0, 0.0, 1.0), expect);
  EXPECT_EQ(RunDispatched(mins, maxs, 0, 0.0, 1.0), expect);
  // NaN query bounds match nothing at all.
  EXPECT_TRUE(RunScalar(mins, maxs, 0, kNaN, kNaN).empty());
  EXPECT_TRUE(RunDispatched(mins, maxs, 0, kNaN, kNaN).empty());
}

TEST(SimdFilterTest, InfinitiesAreOrderedValues) {
  const std::vector<double> mins = {-kInf, -kInf, 2.0, 5.0};
  const std::vector<double> maxs = {kInf, -3.0, kInf, 6.0};
  // Query (-inf, inf) matches every non-NaN slot.
  auto all = RunDispatched(mins, maxs, 0, -kInf, kInf);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0], (PosRange{0, 4}));
  // Query [-inf, -10] only reaches the slots extending to -inf.
  const auto expect = Reference(mins, maxs, 0, -kInf, -10.0);
  EXPECT_EQ(RunScalar(mins, maxs, 0, -kInf, -10.0), expect);
  EXPECT_EQ(RunDispatched(mins, maxs, 0, -kInf, -10.0), expect);
}

TEST(SimdFilterTest, AppendsAcrossCallsAndMergesAtTheSeam) {
  // A caller feeding consecutive chunks must get the same run list as a
  // single call — including a run that spans the chunk boundary.
  const std::vector<double> mins(64, 0.0);
  const std::vector<double> maxs(64, 1.0);
  std::vector<PosRange> whole;
  simd::FilterIntervalRanges(mins.data(), maxs.data(), 64, 100, 0.5, 0.7,
                             &whole);
  std::vector<PosRange> chunked;
  simd::FilterIntervalRanges(mins.data(), maxs.data(), 37, 100, 0.5, 0.7,
                             &chunked);
  simd::FilterIntervalRanges(mins.data() + 37, maxs.data() + 37, 64 - 37,
                             137, 0.5, 0.7, &chunked);
  EXPECT_EQ(chunked, whole);
  ASSERT_EQ(whole.size(), 1u);
  EXPECT_EQ(whole[0], (PosRange{100, 164}));
}

// The heart of the satellite: 10k randomized interval sets (with NaN,
// ±inf, boundary-touching values, and sizes exercising every SIMD tail
// length) checked kernel-against-kernel and against the reference.
TEST(SimdFilterTest, RandomizedDifferential10k) {
  Rng rng(20020805);
  const simd::IntervalFilterFn avx2 = simd::Avx2KernelOrNull();
  size_t avx2_checked = 0;
  for (int iter = 0; iter < 10000; ++iter) {
    // Sizes 0..67 cover empty input, sub-vector-width inputs, and every
    // possible 4-lane tail remainder.
    const uint64_t n = rng.NextBounded(68);
    const uint64_t base = rng.NextBounded(1 << 20);
    std::vector<double> mins(n), maxs(n);
    for (uint64_t i = 0; i < n; ++i) {
      const uint64_t kind = rng.NextBounded(16);
      double lo = rng.NextDouble(-100.0, 100.0);
      double hi = lo + rng.NextDouble(0.0, 10.0);
      if (kind == 0) lo = kNaN;
      if (kind == 1) hi = kNaN;
      if (kind == 2) lo = -kInf;
      if (kind == 3) hi = kInf;
      if (kind == 4) lo = hi;  // degenerate interval
      mins[i] = lo;
      maxs[i] = hi;
    }
    double qmin = rng.NextDouble(-110.0, 110.0);
    double qmax = qmin + rng.NextDouble(0.0, 30.0);
    const uint64_t qkind = rng.NextBounded(12);
    if (qkind == 0) qmin = qmax;  // point query
    if (qkind == 1 && n > 0) {
      // Force boundary contact: query max exactly equals some slot min.
      const uint64_t j = rng.NextBounded(n);
      if (!std::isnan(mins[j])) qmax = mins[j];
    }
    if (qkind == 2 && n > 0) {
      const uint64_t j = rng.NextBounded(n);
      if (!std::isnan(maxs[j])) qmin = maxs[j];
    }

    const auto expect = Reference(mins, maxs, base, qmin, qmax);
    ASSERT_EQ(RunScalar(mins, maxs, base, qmin, qmax), expect)
        << "scalar kernel diverged at iter " << iter;
    ASSERT_EQ(RunDispatched(mins, maxs, base, qmin, qmax), expect)
        << "dispatched kernel (" << simd::KernelLevelName(
               simd::ActiveKernelLevel())
        << ") diverged at iter " << iter;
    if (avx2 != nullptr) {
      std::vector<PosRange> got;
      avx2(mins.data(), maxs.data(), n, base, qmin, qmax, &got);
      ASSERT_EQ(got, expect) << "AVX2 kernel diverged at iter " << iter;
      ++avx2_checked;
    }
  }
  if (avx2 == nullptr) {
    GTEST_SKIP() << "AVX2 kernel not compiled in or CPU lacks AVX2; "
                    "scalar and dispatched kernels verified";
  }
  EXPECT_EQ(avx2_checked, 10000u);
}

TEST(SimdFilterTest, DispatchReportsConsistentLevel) {
  const simd::KernelLevel level = simd::ActiveKernelLevel();
  if (simd::Avx2KernelOrNull() != nullptr) {
    EXPECT_EQ(level, simd::KernelLevel::kAvx2);
    EXPECT_STREQ(simd::KernelLevelName(level), "avx2");
  } else {
    EXPECT_EQ(level, simd::KernelLevel::kScalar);
    EXPECT_STREQ(simd::KernelLevelName(level), "scalar");
  }
}

// Kernels are pure functions over const input arrays; N threads filtering
// the same zone map concurrently (the shared-reader query engine does
// exactly this) must not race. Run under TSan via the "concurrency" label.
TEST(SimdFilterConcurrencyTest, ParallelKernelsOnSharedArrays) {
  Rng rng(99);
  const uint64_t n = 4096;
  std::vector<double> mins(n), maxs(n);
  for (uint64_t i = 0; i < n; ++i) {
    mins[i] = rng.NextDouble(-50.0, 50.0);
    maxs[i] = mins[i] + rng.NextDouble(0.0, 5.0);
  }
  const auto expect = Reference(mins, maxs, 0, -10.0, 10.0);

  constexpr int kThreads = 8;
  std::vector<std::vector<PosRange>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 50; ++round) {
        results[t].clear();
        simd::FilterIntervalRanges(mins.data(), maxs.data(), n, 0, -10.0,
                                   10.0, &results[t]);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(results[t], expect) << "thread " << t;
  }
}

}  // namespace
}  // namespace fielddb

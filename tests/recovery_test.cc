// Crash-matrix tests of WAL recovery: every deterministic crash site in
// the append -> commit -> apply -> checkpoint -> rename pipeline, for
// every persistable index method, must recover to exactly the
// pre-mutation or post-mutation state — never a torn mix. State equality
// is checked differentially: the recovered database must answer a query
// workload bit-identically to a reference built fresh with the same
// updates applied in memory. (Row-IP is the fifth method; it has no
// persistence support by contract — pinned by a test below — so the
// matrix covers the four on-disk methods.)

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/field_database.h"
#include "gen/monotonic.h"
#include "gen/workload.h"
#include "storage/wal.h"

namespace fielddb {
namespace {

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

// The two mutations the matrix toggles. Values far outside the field's
// native range so their presence is unambiguous in value queries.
constexpr CellId kCellA = 3;
constexpr CellId kCellB = 10;
const std::vector<double> kValuesA = {400.0, 400.0, 400.0, 400.0};
const std::vector<double> kValuesB = {500.0, 500.0, 500.0, 500.0};

class RecoveryTest : public ::testing::TestWithParam<IndexMethod> {
 protected:
  void SetUp() override {
    prefix_ = ::testing::TempDir() + "/fielddb_recovery_" +
              std::to_string(static_cast<int>(GetParam()));
    Cleanup();
    auto field = MakeMonotonicField(8, 8);
    ASSERT_TRUE(field.ok());
    field_ = std::make_unique<GridField>(std::move(*field));
    FieldDatabaseOptions options;
    options.method = GetParam();
    auto db = FieldDatabase::Build(*field_, options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE((*db)->Save(prefix_).ok());  // checkpoint, epoch 1
  }
  void TearDown() override { Cleanup(); }
  void Cleanup() {
    for (const char* suffix :
         {".pages", ".meta", ".pages.tmp", ".meta.tmp", ".wal"}) {
      std::remove((prefix_ + suffix).c_str());
    }
  }

  std::unique_ptr<FieldDatabase> OpenWal(
      WalMode mode = WalMode::kFsyncOnCommit,
      FieldDatabase::RecoveryReport* report = nullptr) {
    FieldDatabase::OpenOptions options;
    options.wal_mode = mode;
    options.recovery_report = report;
    auto db = FieldDatabase::Open(prefix_, options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return db.ok() ? std::move(*db) : nullptr;
  }

  // Asserts `got` answers a workload bit-identically to a reference
  // database built from the original field with the given updates
  // applied in memory (the same maintenance code path recovery replays).
  void ExpectState(FieldDatabase* got, bool a_applied, bool b_applied) {
    ASSERT_NE(got, nullptr);
    FieldDatabaseOptions options;
    options.method = GetParam();
    auto reference = FieldDatabase::Build(*field_, options);
    ASSERT_TRUE(reference.ok());
    if (a_applied) {
      ASSERT_TRUE((*reference)->UpdateCellValues(kCellA, kValuesA).ok());
    }
    if (b_applied) {
      ASSERT_TRUE((*reference)->UpdateCellValues(kCellB, kValuesB).ok());
    }
    std::vector<ValueInterval> queries = GenerateValueQueries(
        field_->ValueRange(), WorkloadOptions{0.05, 10, 17});
    queries.push_back(ValueInterval{399, 401});  // A's band
    queries.push_back(ValueInterval{499, 501});  // B's band
    queries.push_back(ValueInterval{-1000, 1000});
    for (const ValueInterval& q : queries) {
      SCOPED_TRACE(q.min);
      ValueQueryResult expected, actual;
      ASSERT_TRUE((*reference)->ValueQuery(q, &expected).ok());
      ASSERT_TRUE(got->ValueQuery(q, &actual).ok());
      EXPECT_EQ(actual.stats.answer_cells, expected.stats.answer_cells);
      EXPECT_EQ(actual.region.TotalArea(), expected.region.TotalArea());
    }
  }

  std::string prefix_;
  std::unique_ptr<GridField> field_;
};

// --- Crash sites in the update pipeline ------------------------------

TEST_P(RecoveryTest, AckedUpdateSurvivesPowerCut) {
  auto db = OpenWal();
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(db->UpdateCellValues(kCellA, kValuesA).ok());  // acked
  ASSERT_TRUE(db->SimulateCrashForTest().ok());
  db.reset();

  FieldDatabase::RecoveryReport report;
  auto recovered = OpenWal(WalMode::kFsyncOnCommit, &report);
  EXPECT_EQ(report.frames_replayed, 1u);
  EXPECT_EQ(report.stale_frames, 0u);
  EXPECT_TRUE(report.corrupt_pages.empty());
  EXPECT_GT(report.pages_verified, 0u);
  EXPECT_NE(report.trace.Find("wal.replay"), nullptr);
  ExpectState(recovered.get(), true, false);
}

TEST_P(RecoveryTest, AppendFailureLosesNothing) {
  auto db = OpenWal();
  ASSERT_NE(db, nullptr);
  db->wal()->ArmAppendErrorForTest(0);
  EXPECT_FALSE(db->UpdateCellValues(kCellA, kValuesA).ok());
  ASSERT_TRUE(db->SimulateCrashForTest().ok());
  db.reset();
  ExpectState(OpenWal().get(), false, false);
}

TEST_P(RecoveryTest, BatchAppendFailureAtEveryPositionRejectsWhole) {
  // The batch appends three frames before its single commit; kill the
  // log at each append position. No frame was committed, so recovery
  // lands on the pre-batch state every time.
  for (int fail_at = 0; fail_at < 3; ++fail_at) {
    SCOPED_TRACE(fail_at);
    SetUp();
    auto db = OpenWal();
    ASSERT_NE(db, nullptr);
    db->wal()->ArmAppendErrorForTest(fail_at);
    const std::vector<FieldDatabase::CellUpdate> batch = {
        {kCellA, kValuesA}, {kCellB, kValuesB}, {17, {450, 450, 450, 450}}};
    EXPECT_FALSE(db->UpdateCellValuesBatch(batch).ok());
    ASSERT_TRUE(db->SimulateCrashForTest().ok());
    db.reset();
    ExpectState(OpenWal().get(), false, false);
  }
}

TEST_P(RecoveryTest, TornAppendAtEveryOffsetKeepsCommittedPrefix) {
  // Power cut mid-append: only `keep` bytes of B's frame reached the
  // platter. Whatever the tear position, recovery must keep committed
  // update A and drop torn update B. A 4-value frame is 68 bytes
  // (24-byte header + 8-byte cell id + 4-byte count + 32 bytes values).
  for (const uint32_t keep :
       {0u, 1u, 4u, 8u, 12u, 16u, 20u, 23u, 24u, 32u, 36u, 67u}) {
    SCOPED_TRACE(keep);
    SetUp();
    auto db = OpenWal();
    ASSERT_NE(db, nullptr);
    ASSERT_TRUE(db->UpdateCellValues(kCellA, kValuesA).ok());
    db->wal()->ArmShortAppendForTest(0, keep);
    EXPECT_FALSE(db->UpdateCellValues(kCellB, kValuesB).ok());
    ASSERT_TRUE(db->SimulateCrashForTest().ok());
    db.reset();

    FieldDatabase::RecoveryReport report;
    auto recovered = OpenWal(WalMode::kFsyncOnCommit, &report);
    EXPECT_EQ(report.frames_replayed, 1u);
    EXPECT_EQ(report.torn_bytes, keep);
    ExpectState(recovered.get(), true, false);
  }
}

TEST_P(RecoveryTest, FsyncFailureMeansNotAcknowledged) {
  auto db = OpenWal();
  ASSERT_NE(db, nullptr);
  db->wal()->ArmSyncErrorForTest(1);
  EXPECT_EQ(db->UpdateCellValues(kCellA, kValuesA).code(),
            StatusCode::kIOError);
  ASSERT_TRUE(db->SimulateCrashForTest().ok());
  db.reset();
  // The update was never acknowledged, so losing it is correct — and
  // required: the frame never became durable.
  ExpectState(OpenWal().get(), false, false);
}

TEST_P(RecoveryTest, CommittedThenFailedUpdateKeepsOnlyCommitted) {
  auto db = OpenWal();
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(db->UpdateCellValues(kCellA, kValuesA).ok());
  db->wal()->ArmAppendErrorForTest(0);
  EXPECT_FALSE(db->UpdateCellValues(kCellB, kValuesB).ok());
  ASSERT_TRUE(db->SimulateCrashForTest().ok());
  db.reset();
  ExpectState(OpenWal().get(), true, false);
}

// --- Crash sites in the checkpoint pipeline --------------------------

TEST_P(RecoveryTest, CheckpointCrashMatrixNeverLosesAckedUpdates) {
  // A committed update must survive a crash at every interruption point
  // of the checkpoint: before the rename the WAL still carries it, after
  // the renames the new snapshot does (and the un-truncated WAL replays
  // as stale no-ops).
  using CP = FieldDatabase::SaveCrashPoint;
  for (const CP point : {CP::kMidPagesTmp, CP::kBeforeRename,
                         CP::kBetweenRenames, CP::kBeforeWalTruncate}) {
    SCOPED_TRACE(static_cast<int>(point));
    SetUp();
    auto db = OpenWal();
    ASSERT_NE(db, nullptr);
    ASSERT_TRUE(db->UpdateCellValues(kCellA, kValuesA).ok());
    ASSERT_TRUE(db->SaveWithCrashPointForTest(prefix_, point).ok());
    ASSERT_TRUE(db->SimulateCrashForTest().ok());
    db.reset();
    ExpectState(OpenWal().get(), true, false);
  }
}

TEST_P(RecoveryTest, StaleFramesAreSkippedNotReplayed) {
  // Crash after the checkpoint committed but before the WAL truncate:
  // the log still holds the update's frame, stamped with the superseded
  // epoch. Recovery must not apply it on top of the snapshot that
  // already contains it.
  auto db = OpenWal();
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(db->UpdateCellValues(kCellA, kValuesA).ok());
  ASSERT_TRUE(db->SaveWithCrashPointForTest(
                    prefix_, FieldDatabase::SaveCrashPoint::kBeforeWalTruncate)
                  .ok());
  ASSERT_TRUE(db->SimulateCrashForTest().ok());
  db.reset();

  FieldDatabase::RecoveryReport report;
  auto recovered = OpenWal(WalMode::kFsyncOnCommit, &report);
  EXPECT_EQ(report.frames_replayed, 0u);
  EXPECT_EQ(report.stale_frames, 1u);
  ExpectState(recovered.get(), true, false);
}

TEST_P(RecoveryTest, CleanCheckpointTruncatesTheLog) {
  auto db = OpenWal();
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(db->UpdateCellValues(kCellA, kValuesA).ok());
  EXPECT_GT(db->wal()->size_bytes(), 0u);
  ASSERT_TRUE(db->Save(prefix_).ok());
  EXPECT_EQ(db->wal()->size_bytes(), 0u);
  ASSERT_TRUE(db->Close().ok());
  db.reset();

  FieldDatabase::RecoveryReport report;
  auto recovered = OpenWal(WalMode::kFsyncOnCommit, &report);
  EXPECT_EQ(report.frames_replayed, 0u);
  ExpectState(recovered.get(), true, false);
}

TEST_P(RecoveryTest, CheckpointTruncateFailureRefusesFurtherUpdates) {
  // The WAL truncate runs after the snapshot renames commit. If it
  // fails, the on-disk catalog is at the new epoch while the log would
  // keep stamping frames with the old one — frames the next recovery
  // skips as stale. Acknowledging any further update would therefore be
  // silent data loss; the poisoned log must refuse them instead.
  auto db = OpenWal();
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(db->UpdateCellValues(kCellA, kValuesA).ok());
  db->wal()->ArmSyncErrorForTest(1);  // fires inside Save's Truncate
  EXPECT_EQ(db->Save(prefix_).code(), StatusCode::kIOError);
  EXPECT_FALSE(db->UpdateCellValues(kCellB, kValuesB).ok());
  ASSERT_TRUE(db->SimulateCrashForTest().ok());
  db.reset();

  // The committed snapshot carries A; the never-acknowledged B is gone.
  FieldDatabase::RecoveryReport report;
  auto recovered = OpenWal(WalMode::kFsyncOnCommit, &report);
  EXPECT_EQ(report.frames_replayed, 0u);
  ExpectState(recovered.get(), true, false);
}

// --- Repeated and compound failures ----------------------------------

TEST_P(RecoveryTest, DoubleCrashReplayIsIdempotent) {
  auto db = OpenWal();
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(db->UpdateCellValues(kCellA, kValuesA).ok());
  ASSERT_TRUE(db->SimulateCrashForTest().ok());
  db.reset();

  auto once = OpenWal();  // replays A
  ASSERT_NE(once, nullptr);
  ASSERT_TRUE(once->SimulateCrashForTest().ok());  // crash again, no writes
  once.reset();

  FieldDatabase::RecoveryReport report;
  auto twice = OpenWal(WalMode::kFsyncOnCommit, &report);
  EXPECT_EQ(report.frames_replayed, 1u);  // same frame, same result
  ExpectState(twice.get(), true, false);
}

TEST_P(RecoveryTest, BitRotInTheLogLosesOnlyTheTail) {
  auto db = OpenWal();
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(db->UpdateCellValues(kCellA, kValuesA).ok());
  const uint64_t second_start = db->wal()->size_bytes();
  ASSERT_TRUE(db->UpdateCellValues(kCellB, kValuesB).ok());
  ASSERT_TRUE(db->SimulateCrashForTest().ok());
  db.reset();

  // Flip one byte of B's frame on disk: its checksum no longer matches,
  // so the scan truncates there. A survives; B is gone.
  const std::string wal_path = prefix_ + ".wal";
  std::FILE* f = std::fopen(wal_path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, static_cast<long>(second_start + 30), SEEK_SET), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, static_cast<long>(second_start + 30), SEEK_SET), 0);
  std::fputc(c ^ 0x10, f);
  std::fclose(f);

  FieldDatabase::RecoveryReport report;
  auto recovered = OpenWal(WalMode::kFsyncOnCommit, &report);
  EXPECT_EQ(report.frames_replayed, 1u);
  EXPECT_GT(report.torn_bytes, 0u);
  ExpectState(recovered.get(), true, false);
}

// --- Mode contracts --------------------------------------------------

TEST_P(RecoveryTest, AsyncModeLosesPowerCutTailKeepsCheckpoint) {
  // kAsync survives process crashes, not power cuts: the commit was
  // flushed to the OS but never fsynced, so the simulated power cut
  // erases it. The checkpoint state must still load cleanly.
  auto db = OpenWal(WalMode::kAsync);
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(db->UpdateCellValues(kCellA, kValuesA).ok());
  ASSERT_TRUE(db->SimulateCrashForTest().ok());
  db.reset();
  ExpectState(OpenWal(WalMode::kAsync).get(), false, false);
}

TEST_P(RecoveryTest, ReopenWithWalOffFoldsTheLogIntoACheckpoint) {
  auto db = OpenWal();
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(db->UpdateCellValues(kCellA, kValuesA).ok());
  ASSERT_TRUE(db->SimulateCrashForTest().ok());
  db.reset();

  FieldDatabase::RecoveryReport report;
  FieldDatabase::OpenOptions options;
  options.wal_mode = WalMode::kOff;
  options.recovery_report = &report;
  auto folded = FieldDatabase::Open(prefix_, options);
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  EXPECT_EQ(report.frames_replayed, 1u);
  EXPECT_TRUE(report.folded);
  EXPECT_FALSE(FileExists(prefix_ + ".wal"));
  ExpectState(folded->get(), true, false);

  // The fold is durable: a plain reopen sees the update with no log.
  folded->reset();
  FieldDatabase::RecoveryReport second;
  FieldDatabase::OpenOptions plain;
  plain.recovery_report = &second;
  auto reopened = FieldDatabase::Open(prefix_, plain);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(second.frames_replayed, 0u);
  ExpectState(reopened->get(), true, false);
}

TEST_P(RecoveryTest, CleanCloseThenReopenReplaysTheLog) {
  // Close syncs the log and drops the dirty pages (no-steal): the next
  // open rebuilds the updates from the log alone.
  auto db = OpenWal();
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(db->UpdateCellValues(kCellA, kValuesA).ok());
  ASSERT_TRUE(db->UpdateCellValues(kCellB, kValuesB).ok());
  ASSERT_TRUE(db->Close().ok());
  db.reset();

  FieldDatabase::RecoveryReport report;
  auto recovered = OpenWal(WalMode::kFsyncOnCommit, &report);
  EXPECT_EQ(report.frames_replayed, 2u);
  ExpectState(recovered.get(), true, true);
}

INSTANTIATE_TEST_SUITE_P(
    AllPersistableMethods, RecoveryTest,
    ::testing::Values(IndexMethod::kLinearScan, IndexMethod::kIAll,
                      IndexMethod::kIHilbert,
                      IndexMethod::kIntervalQuadtree),
    [](const ::testing::TestParamInfo<IndexMethod>& info) {
      std::string name = IndexMethodName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Row-IP is the comparison baseline without persistence — and therefore
// without WAL durability. Pin the contract so the matrix's method list
// stays honest.
TEST(RecoveryContractTest, RowIpHasNoPersistence) {
  auto field = MakeMonotonicField(8, 8);
  ASSERT_TRUE(field.ok());
  FieldDatabaseOptions options;
  options.method = IndexMethod::kRowIp;
  auto db = FieldDatabase::Build(*field, options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->Save(::testing::TempDir() + "/fielddb_rowip").code(),
            StatusCode::kUnimplemented);
}

// Building with a WAL requires a path to log to.
TEST(RecoveryContractTest, WalModeRequiresWalPath) {
  auto field = MakeMonotonicField(8, 8);
  ASSERT_TRUE(field.ok());
  FieldDatabaseOptions options;
  options.wal_mode = WalMode::kFsyncOnCommit;
  auto db = FieldDatabase::Build(*field, options);
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fielddb

#include "obs/metrics.h"

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace fielddb {
namespace {

/// Every test leaves recording enabled (the process default) so the
/// instrumented-subsystem tests running in the same binary see live
/// counters.
class MetricsTest : public ::testing::Test {
 protected:
  void TearDown() override { MetricsRegistry::set_enabled(true); }
};

TEST_F(MetricsTest, CounterBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(5);
  EXPECT_EQ(c.value(), 6u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(MetricsTest, GaugeLastWriteWins) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST_F(MetricsTest, DisabledRecordingIsSkipped) {
  Counter c;
  Gauge g;
  Histogram h;
  MetricsRegistry::set_enabled(false);
  c.Increment(7);
  g.Set(9.0);
  h.Record(42.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  MetricsRegistry::set_enabled(true);
  c.Increment(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST_F(MetricsTest, HistogramCountSumMaxMean) {
  Histogram h;
  h.Record(1);
  h.Record(2);
  h.Record(3);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 6.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);  // exact, not bucketized
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
}

TEST_F(MetricsTest, HistogramPercentileMath) {
  Histogram h;
  for (int v = 1; v <= 1000; ++v) h.Record(v);
  // Sub-bucket resolution is 1/32 of an octave: ~3.1% relative error,
  // so 4% is a safe assertion bound.
  EXPECT_NEAR(h.Percentile(50), 500.0, 500.0 * 0.04);
  EXPECT_NEAR(h.Percentile(90), 900.0, 900.0 * 0.04);
  EXPECT_NEAR(h.Percentile(99), 990.0, 990.0 * 0.04);
  // The reported quantile never exceeds the true max.
  EXPECT_LE(h.Percentile(100), 1000.0);
  EXPECT_GE(h.Percentile(100), 990.0);
  EXPECT_GE(h.Percentile(0), 1.0);
}

TEST_F(MetricsTest, HistogramBucketGeometry) {
  // Below 2^kSubBits every integer has its own bucket (exact).
  for (uint64_t n = 1; n < (1u << Histogram::kSubBits); ++n) {
    EXPECT_EQ(Histogram::BucketIndex(n), static_cast<int>(n));
    EXPECT_DOUBLE_EQ(Histogram::BucketMidpoint(static_cast<int>(n)),
                     static_cast<double>(n));
  }
  // Above, the midpoint stays within one sub-bucket (~3.125%) of the
  // recorded value, and indices are monotone in the value.
  int prev_idx = -1;
  for (const uint64_t n :
       {uint64_t{32}, uint64_t{33}, uint64_t{100}, uint64_t{1000},
        uint64_t{12345}, uint64_t{1} << 20, (uint64_t{1} << 30) + 12345}) {
    const int idx = Histogram::BucketIndex(n);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, Histogram::kNumBuckets);
    EXPECT_GT(idx, prev_idx);
    prev_idx = idx;
    const double mid = Histogram::BucketMidpoint(idx);
    EXPECT_NEAR(mid, static_cast<double>(n),
                static_cast<double>(n) * 0.03125);
  }
}

TEST_F(MetricsTest, HistogramSubHundredMicrosecondResolution) {
  // Regression pin for the bucket-resolution contract (DESIGN.md §15):
  // latency histograms record microseconds, and the sub-100µs range —
  // where a warm-pool page read or a zone-map probe lives — must not
  // collapse into a handful of buckets. kSubBits = 5 gives exact
  // single-value buckets below 2^5 = 32 and ≤ 1/32 ≈ 3.1% relative
  // width above. A kSubBits regression (e.g. back to 4) fails here.
  static_assert(Histogram::kSubBits >= 5,
                "sub-100µs latencies need >= 32 sub-buckets per octave");

  // Exact region: every integer microsecond below 32 is its own bucket.
  for (uint64_t us = 1; us < 32; ++us) {
    EXPECT_EQ(Histogram::BucketMidpoint(Histogram::BucketIndex(us)),
              static_cast<double>(us))
        << us << "µs must be exact";
  }
  // Bucketed region: near-by sub-100µs values stay distinguishable.
  EXPECT_NE(Histogram::BucketIndex(40), Histogram::BucketIndex(42));
  EXPECT_NE(Histogram::BucketIndex(64), Histogram::BucketIndex(67));
  EXPECT_NE(Histogram::BucketIndex(96), Histogram::BucketIndex(100));
  // Relative bucket width across the whole sub-millisecond range.
  for (uint64_t us = 32; us <= 1000; ++us) {
    const double mid = Histogram::BucketMidpoint(Histogram::BucketIndex(us));
    EXPECT_NEAR(mid, static_cast<double>(us),
                static_cast<double>(us) / 32.0)
        << "bucket too wide at " << us << "µs";
  }
  // End-to-end through percentiles: a bimodal 20µs/80µs latency split
  // must survive bucketing — the modes may not smear into each other.
  Histogram h;
  for (int i = 0; i < 900; ++i) h.Record(20);
  for (int i = 0; i < 100; ++i) h.Record(80);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 20.0);  // exact bucket
  EXPECT_NEAR(h.Percentile(99), 80.0, 80.0 * 0.04);
}

TEST_F(MetricsTest, HistogramClampsSubUnitValues) {
  Histogram h;
  h.Record(0.25);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.25);  // min(bucket midpoint, max)
}

TEST_F(MetricsTest, ConcurrentRecordersLoseNothing) {
  // The instruments use atomic RMW, so concurrent recording must be
  // exact — not approximately right, bit-for-bit right. All recorded
  // values are small integers, so the double sum has no rounding and
  // the equality checks below are legitimate.
  Counter c;
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Increment();
        h.Record(static_cast<double>(t + 1));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  double expected_sum = 0.0;
  for (int t = 0; t < kThreads; ++t) expected_sum += (t + 1.0) * kPerThread;
  EXPECT_DOUBLE_EQ(h.sum(), expected_sum);
  EXPECT_DOUBLE_EQ(h.max(), static_cast<double>(kThreads));
}

TEST_F(MetricsTest, RegistryReturnsStablePointers) {
  MetricsRegistry reg;
  Counter* c1 = reg.GetCounter("a.b");
  Counter* c2 = reg.GetCounter("a.b");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(reg.GetCounter("a.c"), c1);
  // Same name as a different kind is a distinct instrument.
  EXPECT_NE(static_cast<void*>(reg.GetGauge("a.b")),
            static_cast<void*>(c1));
}

TEST_F(MetricsTest, PrometheusExposition) {
  MetricsRegistry reg;
  reg.GetCounter("storage.pool.reads")->Increment(3);
  reg.GetGauge("subfield.partition")->Set(2.5);
  Histogram* h = reg.GetHistogram("pool.read_latency_us");
  h->Record(10);
  h->Record(20);

  const std::string text = reg.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE fielddb_storage_pool_reads counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("fielddb_storage_pool_reads 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE fielddb_subfield_partition gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("fielddb_subfield_partition 2.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE fielddb_pool_read_latency_us summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("fielddb_pool_read_latency_us{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("fielddb_pool_read_latency_us{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("fielddb_pool_read_latency_us_count 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("fielddb_pool_read_latency_us_max 20\n"),
            std::string::npos);
}

TEST_F(MetricsTest, JsonExpositionRoundTrip) {
  MetricsRegistry reg;
  reg.GetCounter("q.count")->Increment(11);
  reg.GetGauge("q.gauge")->Set(1.5);
  Histogram* h = reg.GetHistogram("q.lat");
  for (int v = 1; v <= 100; ++v) h->Record(v);

  const std::string json = reg.ToJson();
  // Snapshot carries every instrument with its summary fields.
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"q.count\": 11"), std::string::npos);
  EXPECT_NE(json.find("\"q.gauge\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"q.lat\": {\"count\": 100"), std::string::npos);
  for (const char* key : {"\"sum\"", "\"mean\"", "\"p50\"", "\"p90\"",
                          "\"p99\"", "\"max\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }

  // Reset zeroes values but keeps the instruments (pointer stability).
  Counter* before = reg.GetCounter("q.count");
  reg.Reset();
  EXPECT_EQ(reg.GetCounter("q.count"), before);
  EXPECT_EQ(before->value(), 0u);
  EXPECT_NE(reg.ToJson().find("\"q.count\": 0"), std::string::npos);
}

}  // namespace
}  // namespace fielddb

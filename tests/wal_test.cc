// Unit tests of the write-ahead log: frame round-trips, torn-tail
// detection (every cut position), CRC and epoch checks, durability
// watermarks per mode, and the deterministic crash hooks the recovery
// suites build on.

#include "storage/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "storage/crc32c.h"

namespace fielddb {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/fielddb_wal_test.wal";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::unique_ptr<WriteAheadLog> OpenLog(WalMode mode, uint32_t epoch = 1) {
    auto wal = WriteAheadLog::Open(path_, mode, epoch);
    EXPECT_TRUE(wal.ok()) << wal.status().ToString();
    return wal.ok() ? std::move(*wal) : nullptr;
  }

  uint64_t FileSize() {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    if (f == nullptr) return 0;
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    return static_cast<uint64_t>(size);
  }

  void CorruptByte(uint64_t offset, uint8_t xor_mask) {
    std::FILE* f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
    const int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
    std::fputc(c ^ xor_mask, f);
    std::fclose(f);
  }

  void TruncateFile(uint64_t size) {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::vector<char> bytes(size);
    ASSERT_EQ(std::fread(bytes.data(), 1, size, f), size);
    std::fclose(f);
    f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, size, f), size);
    std::fclose(f);
  }

  std::string path_;
};

TEST_F(WalTest, ModeNamesRoundTrip) {
  WalMode mode = WalMode::kOff;
  EXPECT_TRUE(ParseWalMode("off", &mode));
  EXPECT_EQ(mode, WalMode::kOff);
  EXPECT_TRUE(ParseWalMode("async", &mode));
  EXPECT_EQ(mode, WalMode::kAsync);
  EXPECT_TRUE(ParseWalMode("fsync", &mode));
  EXPECT_EQ(mode, WalMode::kFsyncOnCommit);
  EXPECT_TRUE(ParseWalMode("fsync_on_commit", &mode));
  EXPECT_EQ(mode, WalMode::kFsyncOnCommit);
  EXPECT_FALSE(ParseWalMode("sometimes", &mode));
  EXPECT_STREQ(WalModeName(WalMode::kOff), "off");
  EXPECT_STREQ(WalModeName(WalMode::kAsync), "async");
  EXPECT_STREQ(WalModeName(WalMode::kFsyncOnCommit), "fsync");
}

TEST_F(WalTest, ScanOfMissingFileIsEmpty) {
  auto scan = WriteAheadLog::Scan(path_);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->frames.empty());
  EXPECT_EQ(scan->file_bytes, 0u);
  EXPECT_EQ(scan->valid_bytes, 0u);
  EXPECT_TRUE(scan->torn_reason.empty());
}

TEST_F(WalTest, AppendCommitScanRoundTrip) {
  auto wal = OpenLog(WalMode::kFsyncOnCommit, 7);
  ASSERT_NE(wal, nullptr);
  EXPECT_EQ(wal->next_lsn(), 1u);
  ASSERT_TRUE(wal->AppendUpdate(3, {1.0, 2.0, 3.0, 4.0}).ok());
  ASSERT_TRUE(wal->AppendUpdate(9, {5.5}).ok());
  ASSERT_TRUE(wal->Commit().ok());
  EXPECT_EQ(wal->next_lsn(), 3u);
  EXPECT_EQ(wal->synced_bytes(), wal->size_bytes());
  ASSERT_TRUE(wal->Close().ok());

  auto scan = WriteAheadLog::Scan(path_);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->frames.size(), 2u);
  EXPECT_TRUE(scan->torn_reason.empty());
  EXPECT_EQ(scan->valid_bytes, scan->file_bytes);
  const WalFrame& a = scan->frames[0];
  EXPECT_EQ(a.lsn, 1u);
  EXPECT_EQ(a.epoch, 7u);
  EXPECT_EQ(a.type, WriteAheadLog::kUpdateValuesFrame);
  EXPECT_EQ(a.cell_id, 3u);
  EXPECT_EQ(a.values, (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
  const WalFrame& b = scan->frames[1];
  EXPECT_EQ(b.lsn, 2u);
  EXPECT_EQ(b.cell_id, 9u);
  EXPECT_EQ(b.values, (std::vector<double>{5.5}));
  EXPECT_GT(b.offset, a.offset);
}

TEST_F(WalTest, OversizedPayloadRefused) {
  auto wal = OpenLog(WalMode::kAsync);
  ASSERT_NE(wal, nullptr);
  const std::vector<double> huge(WriteAheadLog::kMaxPayload / 8 + 1, 0.0);
  EXPECT_EQ(wal->AppendUpdate(0, huge).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(WalTest, EveryTruncationPointYieldsCleanTornTail) {
  // Cut the file after the first frame at every byte of the second
  // frame: the scan must always keep frame 1 intact and report a torn
  // tail, never crash or misparse.
  auto wal = OpenLog(WalMode::kFsyncOnCommit);
  ASSERT_NE(wal, nullptr);
  ASSERT_TRUE(wal->AppendUpdate(1, {10.0, 11.0, 12.0, 13.0}).ok());
  ASSERT_TRUE(wal->Commit().ok());
  const uint64_t first_frame_end = wal->size_bytes();
  ASSERT_TRUE(wal->AppendUpdate(2, {20.0, 21.0, 22.0, 23.0}).ok());
  ASSERT_TRUE(wal->Commit().ok());
  ASSERT_TRUE(wal->Close().ok());
  const uint64_t full = FileSize();

  for (uint64_t cut = first_frame_end; cut < full; ++cut) {
    SCOPED_TRACE(cut);
    SetUp();  // fresh copy: rebuild the two-frame log
    auto rebuilt = OpenLog(WalMode::kFsyncOnCommit);
    ASSERT_TRUE(rebuilt->AppendUpdate(1, {10.0, 11.0, 12.0, 13.0}).ok());
    ASSERT_TRUE(rebuilt->Commit().ok());
    ASSERT_TRUE(rebuilt->AppendUpdate(2, {20.0, 21.0, 22.0, 23.0}).ok());
    ASSERT_TRUE(rebuilt->Commit().ok());
    ASSERT_TRUE(rebuilt->Close().ok());
    TruncateFile(cut);

    auto scan = WriteAheadLog::Scan(path_);
    ASSERT_TRUE(scan.ok());
    ASSERT_EQ(scan->frames.size(), 1u);
    EXPECT_EQ(scan->frames[0].cell_id, 1u);
    EXPECT_EQ(scan->valid_bytes, first_frame_end);
    EXPECT_EQ(scan->torn_bytes(), cut - first_frame_end);
    if (cut > first_frame_end) {
      EXPECT_FALSE(scan->torn_reason.empty());
    }
  }
}

TEST_F(WalTest, BitRotInFrameCutsScanThere) {
  auto wal = OpenLog(WalMode::kFsyncOnCommit);
  ASSERT_NE(wal, nullptr);
  ASSERT_TRUE(wal->AppendUpdate(1, {1.0}).ok());
  ASSERT_TRUE(wal->Commit().ok());
  const uint64_t second_start = wal->size_bytes();
  ASSERT_TRUE(wal->AppendUpdate(2, {2.0}).ok());
  ASSERT_TRUE(wal->Commit().ok());
  ASSERT_TRUE(wal->Close().ok());

  // Flip one payload byte of the second frame.
  CorruptByte(second_start + WriteAheadLog::kFrameHeaderSize + 13, 0x01);
  auto scan = WriteAheadLog::Scan(path_);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->frames.size(), 1u);
  EXPECT_EQ(scan->valid_bytes, second_start);
  EXPECT_NE(scan->torn_reason.find("checksum"), std::string::npos)
      << scan->torn_reason;
}

TEST_F(WalTest, ReopenTruncatesTornTailAndContinuesLsn) {
  auto wal = OpenLog(WalMode::kFsyncOnCommit);
  ASSERT_NE(wal, nullptr);
  ASSERT_TRUE(wal->AppendUpdate(1, {1.0}).ok());
  ASSERT_TRUE(wal->Commit().ok());
  const uint64_t intact = wal->size_bytes();
  ASSERT_TRUE(wal->AppendUpdate(2, {2.0}).ok());
  ASSERT_TRUE(wal->Commit().ok());
  ASSERT_TRUE(wal->Close().ok());
  TruncateFile(intact + 5);  // torn second frame

  auto reopened = OpenLog(WalMode::kFsyncOnCommit);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->size_bytes(), intact);  // tail physically removed
  EXPECT_EQ(FileSize(), intact);
  EXPECT_EQ(reopened->next_lsn(), 2u);  // after the surviving frame
  ASSERT_TRUE(reopened->AppendUpdate(3, {3.0}).ok());
  ASSERT_TRUE(reopened->Commit().ok());
  ASSERT_TRUE(reopened->Close().ok());

  auto scan = WriteAheadLog::Scan(path_);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->frames.size(), 2u);
  EXPECT_EQ(scan->frames[1].lsn, 2u);
  EXPECT_EQ(scan->frames[1].cell_id, 3u);
}

TEST_F(WalTest, TruncateDropsFramesAndAdoptsEpoch) {
  auto wal = OpenLog(WalMode::kFsyncOnCommit, 1);
  ASSERT_NE(wal, nullptr);
  ASSERT_TRUE(wal->AppendUpdate(1, {1.0}).ok());
  ASSERT_TRUE(wal->Commit().ok());
  ASSERT_TRUE(wal->Truncate(2).ok());
  EXPECT_EQ(wal->epoch(), 2u);
  EXPECT_EQ(wal->size_bytes(), 0u);
  ASSERT_TRUE(wal->AppendUpdate(2, {2.0}).ok());
  ASSERT_TRUE(wal->Commit().ok());
  ASSERT_TRUE(wal->Close().ok());

  auto scan = WriteAheadLog::Scan(path_);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->frames.size(), 1u);
  EXPECT_EQ(scan->frames[0].epoch, 2u);
  EXPECT_EQ(scan->frames[0].cell_id, 2u);
}

TEST_F(WalTest, FsyncCommitAdvancesDurableWatermark) {
  auto wal = OpenLog(WalMode::kFsyncOnCommit);
  ASSERT_NE(wal, nullptr);
  ASSERT_TRUE(wal->AppendUpdate(1, {1.0}).ok());
  EXPECT_EQ(wal->synced_bytes(), 0u);  // appended, not yet durable
  ASSERT_TRUE(wal->Commit().ok());
  EXPECT_EQ(wal->synced_bytes(), wal->size_bytes());
}

TEST_F(WalTest, AsyncCommitIsNotDurable) {
  auto wal = OpenLog(WalMode::kAsync);
  ASSERT_NE(wal, nullptr);
  ASSERT_TRUE(wal->AppendUpdate(1, {1.0}).ok());
  ASSERT_TRUE(wal->Commit().ok());
  EXPECT_EQ(wal->synced_bytes(), 0u);  // flushed to the OS, not fsynced
  // A power cut now loses the commit.
  ASSERT_TRUE(wal->SimulateCrashForTest().ok());
  auto scan = WriteAheadLog::Scan(path_);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->frames.empty());
}

TEST_F(WalTest, SimulatedCrashKeepsExactlyTheSyncedPrefix) {
  auto wal = OpenLog(WalMode::kFsyncOnCommit);
  ASSERT_NE(wal, nullptr);
  ASSERT_TRUE(wal->AppendUpdate(1, {1.0}).ok());
  ASSERT_TRUE(wal->Commit().ok());  // durable
  ASSERT_TRUE(wal->AppendUpdate(2, {2.0}).ok());  // buffered only
  ASSERT_TRUE(wal->SimulateCrashForTest().ok());

  auto scan = WriteAheadLog::Scan(path_);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->frames.size(), 1u);
  EXPECT_EQ(scan->frames[0].cell_id, 1u);
  // The log is poisoned afterwards.
  EXPECT_EQ(wal->AppendUpdate(3, {3.0}).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(WalTest, ArmedAppendErrorPoisonsTheLog) {
  auto wal = OpenLog(WalMode::kFsyncOnCommit);
  ASSERT_NE(wal, nullptr);
  ASSERT_TRUE(wal->AppendUpdate(1, {1.0}).ok());
  wal->ArmAppendErrorForTest(1);  // the append after next fails
  ASSERT_TRUE(wal->AppendUpdate(2, {2.0}).ok());
  EXPECT_EQ(wal->AppendUpdate(3, {3.0}).code(), StatusCode::kIOError);
  // All subsequent appends refuse too: the "process" died mid-pipeline.
  EXPECT_FALSE(wal->AppendUpdate(4, {4.0}).ok());
}

TEST_F(WalTest, ArmedShortAppendLeavesDetectableTornFrame) {
  auto wal = OpenLog(WalMode::kFsyncOnCommit);
  ASSERT_NE(wal, nullptr);
  ASSERT_TRUE(wal->AppendUpdate(1, {1.0}).ok());
  ASSERT_TRUE(wal->Commit().ok());
  const uint64_t intact = wal->size_bytes();
  wal->ArmShortAppendForTest(0, 10);  // 10 bytes of the frame hit disk
  EXPECT_EQ(wal->AppendUpdate(2, {2.0}).code(), StatusCode::kIOError);

  auto scan = WriteAheadLog::Scan(path_);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->frames.size(), 1u);
  EXPECT_EQ(scan->valid_bytes, intact);
  EXPECT_EQ(scan->torn_bytes(), 10u);
}

TEST_F(WalTest, ArmedSyncErrorFailsCommitAndPoisonsTheLog) {
  auto wal = OpenLog(WalMode::kFsyncOnCommit);
  ASSERT_NE(wal, nullptr);
  ASSERT_TRUE(wal->AppendUpdate(1, {1.0}).ok());
  wal->ArmSyncErrorForTest(1);
  EXPECT_EQ(wal->Commit().code(), StatusCode::kIOError);
  EXPECT_EQ(wal->synced_bytes(), 0u);
  // fsyncgate: a failed fsync may have dropped the dirty pages, so a
  // retried "successful" sync could not be trusted. The log refuses
  // everything until it is reopened (which re-scans the file).
  EXPECT_EQ(wal->Commit().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(wal->AppendUpdate(2, {2.0}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(wal->synced_bytes(), 0u);
}

TEST_F(WalTest, ScanRejectsCountThatWrapsInUint32Arithmetic) {
  // A CRC-valid frame whose stored value count is 2^29: in 32-bit
  // arithmetic 12 + count * 8 wraps back to 12 and matches the actual
  // payload_len, after which the decoder would attempt a 4 GB values
  // allocation. The size check must run in 64 bits and cut the scan.
  std::vector<uint8_t> frame(WriteAheadLog::kFrameHeaderSize + 12, 0);
  const uint32_t epoch = 1, type = WriteAheadLog::kUpdateValuesFrame;
  const uint64_t lsn = 1, cell_id = 0;
  const uint32_t payload_len = 12;
  const uint32_t count = 1u << 29;
  std::memcpy(frame.data() + 4, &epoch, 4);
  std::memcpy(frame.data() + 8, &lsn, 8);
  std::memcpy(frame.data() + 16, &type, 4);
  std::memcpy(frame.data() + 20, &payload_len, 4);
  std::memcpy(frame.data() + 24, &cell_id, 8);
  std::memcpy(frame.data() + 32, &count, 4);
  const uint32_t crc =
      MaskCrc(Crc32c(frame.data() + 4, frame.size() - 4));
  std::memcpy(frame.data(), &crc, 4);
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(frame.data(), 1, frame.size(), f), frame.size());
  std::fclose(f);

  auto scan = WriteAheadLog::Scan(path_);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->frames.empty());
  EXPECT_EQ(scan->valid_bytes, 0u);
  EXPECT_EQ(scan->torn_reason, "update payload size mismatch");
}

TEST_F(WalTest, StaleEpochFramesAreKeptByScan) {
  // Scan reports frames of every epoch; filtering is the caller's job
  // (recovery skips stale ones, the CLI prints them).
  auto wal = OpenLog(WalMode::kFsyncOnCommit, 1);
  ASSERT_NE(wal, nullptr);
  ASSERT_TRUE(wal->AppendUpdate(1, {1.0}).ok());
  ASSERT_TRUE(wal->Commit().ok());
  ASSERT_TRUE(wal->Close().ok());
  auto newer = OpenLog(WalMode::kFsyncOnCommit, 2);
  ASSERT_NE(newer, nullptr);
  ASSERT_TRUE(newer->AppendUpdate(2, {2.0}).ok());
  ASSERT_TRUE(newer->Commit().ok());
  ASSERT_TRUE(newer->Close().ok());

  auto scan = WriteAheadLog::Scan(path_);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->frames.size(), 2u);
  EXPECT_EQ(scan->frames[0].epoch, 1u);
  EXPECT_EQ(scan->frames[1].epoch, 2u);
}

}  // namespace
}  // namespace fielddb

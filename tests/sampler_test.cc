// MetricsSampler tests. The rate math and ring semantics are pinned
// deterministically through SampleOnce(now_ms_override); the background
// thread gets one liveness test.

#include "obs/sampler.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace fielddb {
namespace {

class SamplerTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::set_enabled(true); }
};

MetricsSampler::Options SmallRing(size_t capacity) {
  MetricsSampler::Options o;
  o.period_ms = 10.0;
  o.ring_capacity = capacity;
  return o;
}

TEST_F(SamplerTest, CounterRateMath) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("t.count");
  MetricsSampler sampler(&reg, SmallRing(16));

  c->Increment(5);
  sampler.SampleOnce(0.0);  // first sample: value 5, no previous → rate 0
  c->Increment(100);
  sampler.SampleOnce(1000.0);  // +100 over 1s → 100/s
  c->Increment(50);
  sampler.SampleOnce(1500.0);  // +50 over 0.5s → 100/s

  const auto series = sampler.Snapshot();
  ASSERT_EQ(series.count("t.count"), 1u);
  const MetricsSampler::Series& s = series.at("t.count");
  EXPECT_EQ(s.kind, MetricsRegistry::InstrumentKind::kCounter);
  ASSERT_EQ(s.samples.size(), 3u);
  EXPECT_DOUBLE_EQ(s.samples[0].t_ms, 0.0);
  EXPECT_DOUBLE_EQ(s.samples[0].value, 5.0);
  EXPECT_DOUBLE_EQ(s.samples[0].rate_per_sec, 0.0);
  EXPECT_DOUBLE_EQ(s.samples[1].value, 105.0);
  EXPECT_DOUBLE_EQ(s.samples[1].rate_per_sec, 100.0);
  EXPECT_DOUBLE_EQ(s.samples[2].value, 155.0);
  EXPECT_DOUBLE_EQ(s.samples[2].rate_per_sec, 100.0);
  EXPECT_EQ(sampler.ticks(), 3u);
}

TEST_F(SamplerTest, GaugeDerivative) {
  MetricsRegistry reg;
  Gauge* g = reg.GetGauge("t.level");
  MetricsSampler sampler(&reg, SmallRing(16));

  g->Set(10.0);
  sampler.SampleOnce(0.0);
  g->Set(25.0);
  sampler.SampleOnce(500.0);  // +15 over 0.5s → 30/s
  g->Set(25.0);
  sampler.SampleOnce(1000.0);  // flat → 0/s

  const auto series = sampler.Snapshot();
  const MetricsSampler::Series& s = series.at("t.level");
  EXPECT_EQ(s.kind, MetricsRegistry::InstrumentKind::kGauge);
  ASSERT_EQ(s.samples.size(), 3u);
  EXPECT_DOUBLE_EQ(s.samples[1].value, 25.0);  // level preserved
  EXPECT_DOUBLE_EQ(s.samples[1].rate_per_sec, 30.0);
  EXPECT_DOUBLE_EQ(s.samples[2].rate_per_sec, 0.0);
}

TEST_F(SamplerTest, RingDropsOldestBeyondCapacity) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("t.wrap");
  MetricsSampler sampler(&reg, SmallRing(4));

  for (int i = 0; i < 10; ++i) {
    c->Increment();
    sampler.SampleOnce(i * 100.0);
  }

  const auto series = sampler.Snapshot();
  const MetricsSampler::Series& s = series.at("t.wrap");
  ASSERT_EQ(s.samples.size(), 4u);  // bounded by ring_capacity
  // Oldest-first, and only the newest 4 ticks (t = 600..900) survive.
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(s.samples[i].t_ms, (6 + i) * 100.0);
    EXPECT_DOUBLE_EQ(s.samples[i].value, 7.0 + i);
    // Rates stay correct across the wrap: +1 per 0.1s.
    EXPECT_DOUBLE_EQ(s.samples[i].rate_per_sec, 10.0);
  }
}

TEST_F(SamplerTest, LatestReflectsNewestSample) {
  MetricsRegistry reg;
  reg.GetCounter("t.a")->Increment(3);
  reg.GetGauge("t.b")->Set(7.5);
  MetricsSampler sampler(&reg, SmallRing(8));
  sampler.SampleOnce(0.0);
  reg.GetCounter("t.a")->Increment(2);
  sampler.SampleOnce(1000.0);

  bool saw_a = false, saw_b = false;
  for (const MetricsSampler::LatestRate& r : sampler.Latest()) {
    if (r.name == "t.a") {
      saw_a = true;
      EXPECT_EQ(r.kind, MetricsRegistry::InstrumentKind::kCounter);
      EXPECT_DOUBLE_EQ(r.value, 5.0);
      EXPECT_DOUBLE_EQ(r.rate_per_sec, 2.0);
    } else if (r.name == "t.b") {
      saw_b = true;
      EXPECT_EQ(r.kind, MetricsRegistry::InstrumentKind::kGauge);
      EXPECT_DOUBLE_EQ(r.value, 7.5);
    }
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
}

TEST_F(SamplerTest, InstrumentsRegisteredLaterArePickedUp) {
  MetricsRegistry reg;
  reg.GetCounter("t.early")->Increment();
  MetricsSampler sampler(&reg, SmallRing(8));
  sampler.SampleOnce(0.0);
  EXPECT_EQ(sampler.Snapshot().count("t.late"), 0u);

  reg.GetCounter("t.late")->Increment(4);
  sampler.SampleOnce(100.0);
  const auto series = sampler.Snapshot();
  ASSERT_EQ(series.count("t.late"), 1u);
  const MetricsSampler::Series& s = series.at("t.late");
  ASSERT_EQ(s.samples.size(), 1u);
  EXPECT_DOUBLE_EQ(s.samples[0].value, 4.0);
  EXPECT_DOUBLE_EQ(s.samples[0].rate_per_sec, 0.0);  // no previous sample
}

TEST_F(SamplerTest, BackgroundThreadTicks) {
  MetricsRegistry reg;
  reg.GetCounter("t.bg")->Increment();
  MetricsSampler sampler(&reg, SmallRing(64));
  EXPECT_FALSE(sampler.running());
  sampler.Start();
  sampler.Start();  // idempotent
  EXPECT_TRUE(sampler.running());
  // 10ms period: a few ticks should land well within the deadline.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (sampler.ticks() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(sampler.ticks(), 3u);
  sampler.Stop();
  sampler.Stop();  // idempotent
  EXPECT_FALSE(sampler.running());
  const uint64_t after_stop = sampler.ticks();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(sampler.ticks(), after_stop);
}

TEST_F(SamplerTest, JsonExportAndCrashSafeWrite) {
  MetricsRegistry reg;
  reg.GetCounter("t.json")->Increment(9);
  MetricsSampler sampler(&reg, SmallRing(8));
  sampler.SampleOnce(0.0);

  const std::string json = sampler.ToJson();
  EXPECT_NE(json.find("\"schema\": \"fielddb-sampler-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"t.json\""), std::string::npos);
  EXPECT_NE(json.find("\"rate_per_sec\""), std::string::npos);

  const std::string path = "sampler_test_out.json";
  ASSERT_TRUE(sampler.WriteJson(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  // The tmp staging file must be gone after the atomic rename.
  EXPECT_EQ(std::fopen((path + ".tmp").c_str(), "rb"), nullptr);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fielddb

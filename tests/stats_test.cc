#include "core/stats.h"

#include <gtest/gtest.h>

namespace fielddb {
namespace {

TEST(QueryStatsTest, AccumulateAddsEveryField) {
  QueryStats a;
  a.wall_seconds = 1.0;
  a.candidate_cells = 10;
  a.answer_cells = 4;
  a.region_pieces = 6;
  a.io = IoStats{100, 50, 30, 2, 1};

  QueryStats b;
  b.wall_seconds = 0.5;
  b.candidate_cells = 5;
  b.answer_cells = 2;
  b.region_pieces = 3;
  b.io = IoStats{40, 20, 10, 1, 1};

  a.Accumulate(b);
  EXPECT_DOUBLE_EQ(a.wall_seconds, 1.5);
  EXPECT_EQ(a.candidate_cells, 15u);
  EXPECT_EQ(a.answer_cells, 6u);
  EXPECT_EQ(a.region_pieces, 9u);
  EXPECT_EQ(a.io.logical_reads, 140u);
  EXPECT_EQ(a.io.physical_reads, 70u);
  EXPECT_EQ(a.io.sequential_reads, 40u);
  EXPECT_EQ(a.io.writes, 3u);
  EXPECT_EQ(a.io.evictions, 2u);
}

TEST(QueryStatsTest, AccumulateKeepsRobustnessCounters) {
  QueryStats a;
  a.index_fallbacks = 1;
  a.io.read_retries = 2;
  a.io.failed_reads = 1;
  a.io.failed_writes = 3;

  QueryStats b;
  b.index_fallbacks = 1;
  b.io.read_retries = 5;
  b.io.failed_reads = 2;

  a.Accumulate(b);
  EXPECT_EQ(a.index_fallbacks, 2u);
  EXPECT_EQ(a.io.read_retries, 7u);
  EXPECT_EQ(a.io.failed_reads, 3u);
  EXPECT_EQ(a.io.failed_writes, 3u);
}

TEST(IoStatsTest, PlusEqualsAddsEveryField) {
  IoStats a{1, 2, 3, 4, 5, 6, 7, 8};
  const IoStats b{10, 20, 30, 40, 50, 60, 70, 80};
  a += b;
  EXPECT_EQ(a.logical_reads, 11u);
  EXPECT_EQ(a.physical_reads, 22u);
  EXPECT_EQ(a.sequential_reads, 33u);
  EXPECT_EQ(a.writes, 44u);
  EXPECT_EQ(a.evictions, 55u);
  EXPECT_EQ(a.read_retries, 66u);
  EXPECT_EQ(a.failed_reads, 77u);
  EXPECT_EQ(a.failed_writes, 88u);
}

TEST(IoStatsTest, DiffAndRandomReads) {
  const IoStats now{100, 60, 45, 5, 2};
  const IoStats before{40, 20, 15, 1, 1};
  const IoStats delta = now - before;
  EXPECT_EQ(delta.logical_reads, 60u);
  EXPECT_EQ(delta.physical_reads, 40u);
  EXPECT_EQ(delta.sequential_reads, 30u);
  EXPECT_EQ(delta.random_reads(), 10u);
}

TEST(DiskModelTest, CostFormula) {
  const DiskModel disk{10.0, 0.2};
  // 100 sequential pages: transfer only.
  EXPECT_DOUBLE_EQ(disk.EstimateMs(100, 0), 20.0);
  // 10 random pages: seek + transfer each.
  EXPECT_DOUBLE_EQ(disk.EstimateMs(0, 10), 102.0);
  // A sequential scan of many pages must beat the same page count read
  // randomly — the effect behind the paper's Fig. 11.a crossover.
  EXPECT_LT(disk.EstimateMs(1000, 1), disk.EstimateMs(0, 500));
}

TEST(WorkloadStatsTest, AvgDiskMs) {
  WorkloadStats ws;
  ws.num_queries = 10;
  ws.avg_sequential_reads = 100;
  ws.avg_random_reads = 5;
  const DiskModel disk{9.0, 0.16};
  EXPECT_NEAR(ws.AvgDiskMs(disk), 100 * 0.16 + 5 * 9.16, 1e-9);
}

TEST(WorkloadStatsTest, ToStringContainsFields) {
  WorkloadStats ws;
  ws.num_queries = 7;
  ws.avg_wall_ms = 1.25;
  ws.p99_wall_ms = 4.5;
  ws.avg_index_fallbacks = 0.125;
  const std::string s = ws.ToString();
  EXPECT_NE(s.find("queries=7"), std::string::npos);
  EXPECT_NE(s.find("avg_ms=1.25"), std::string::npos);
  EXPECT_NE(s.find("p99_ms=4.5"), std::string::npos);
  EXPECT_NE(s.find("avg_index_fallbacks=0.125"), std::string::npos);
  EXPECT_NE(s.find("avg_read_retries="), std::string::npos);
  EXPECT_NE(s.find("avg_failed_reads="), std::string::npos);
}

TEST(PercentileOfSortedTest, NearestRank) {
  EXPECT_DOUBLE_EQ(PercentileOfSorted({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted({5.0}, 0), 5.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted({5.0}, 100), 5.0);

  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(v, 50), 50.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(v, 90), 90.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(v, 99), 99.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(v, 100), 100.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(v, 1), 1.0);
  // Out-of-range percentiles clamp.
  EXPECT_DOUBLE_EQ(PercentileOfSorted(v, -5), 1.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(v, 150), 100.0);
}

}  // namespace
}  // namespace fielddb

#include "field/isoband.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "field/region.h"

namespace fielddb {
namespace {

double BandArea(const CellRecord& cell, double lo, double hi) {
  Region region;
  const StatusOr<size_t> n = CellIsoband(cell, ValueInterval{lo, hi},
                                         &region);
  EXPECT_TRUE(n.ok());
  return region.TotalArea();
}

TEST(IsobandTest, TriangleFullCoverage) {
  const CellRecord tri =
      CellRecord::Triangle(0, {0, 0}, 1, {1, 0}, 2, {0, 1}, 3);
  EXPECT_NEAR(BandArea(tri, 0, 10), 0.5, 1e-12);
}

TEST(IsobandTest, TriangleNoCoverage) {
  const CellRecord tri =
      CellRecord::Triangle(0, {0, 0}, 1, {1, 0}, 2, {0, 1}, 3);
  Region region;
  const StatusOr<size_t> n = CellIsoband(tri, ValueInterval{5, 6}, &region);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
  EXPECT_TRUE(region.IsEmpty());
}

TEST(IsobandTest, TriangleHalfPlaneCut) {
  // w = x on the unit right triangle: w <= 0.5 keeps the left part,
  // whose area is 1/2 - (1/2)(1/2)^2 = 3/8.
  const CellRecord tri =
      CellRecord::Triangle(0, {0, 0}, 0, {1, 0}, 1, {0, 1}, 0);
  EXPECT_NEAR(BandArea(tri, -1, 0.5), 0.375, 1e-12);
  // Complementary band: w >= 0.5 keeps 1/8.
  EXPECT_NEAR(BandArea(tri, 0.5, 2), 0.125, 1e-12);
}

TEST(IsobandTest, TriangleBandsPartition) {
  // Bands [0, t] and [t, 1] must tile the triangle for any threshold.
  const CellRecord tri =
      CellRecord::Triangle(0, {0, 0}, 0, {1, 0}, 1, {0, 1}, 0.3);
  for (const double t : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double below = BandArea(tri, -1, t);
    const double above = BandArea(tri, t, 2);
    EXPECT_NEAR(below + above, 0.5, 1e-9) << "t=" << t;
  }
}

TEST(IsobandTest, ConstantTriangleAllOrNothing) {
  const CellRecord tri =
      CellRecord::Triangle(0, {0, 0}, 5, {1, 0}, 5, {0, 1}, 5);
  EXPECT_NEAR(BandArea(tri, 4, 6), 0.5, 1e-12);
  EXPECT_NEAR(BandArea(tri, 5, 5), 0.5, 1e-12);  // exact-value query
  EXPECT_NEAR(BandArea(tri, 6, 7), 0.0, 1e-12);
}

TEST(IsobandTest, QuadAffinePlane) {
  // w = x on the unit quad: band [0.25, 0.75] is a vertical strip of
  // area 0.5, regardless of the 4-triangle fan decomposition.
  const CellRecord quad =
      CellRecord::Quad(0, Rect2{{0, 0}, {1, 1}}, 0, 1, 1, 0);
  EXPECT_NEAR(BandArea(quad, 0.25, 0.75), 0.5, 1e-12);
  EXPECT_NEAR(BandArea(quad, 0, 1), 1.0, 1e-12);
  EXPECT_NEAR(BandArea(quad, 0.9, 2), 0.1, 1e-12);
}

TEST(IsobandTest, QuadDiagonalPlane) {
  // w = x + y: band [0, 1] on the unit quad is the lower-left half.
  const CellRecord quad =
      CellRecord::Quad(0, Rect2{{0, 0}, {1, 1}}, 0, 1, 2, 1);
  EXPECT_NEAR(BandArea(quad, 0, 1), 0.5, 1e-12);
  EXPECT_NEAR(BandArea(quad, 1, 2), 0.5, 1e-12);
}

TEST(IsobandTest, QuadBandsPartitionRandom) {
  Rng rng(13);
  for (int trial = 0; trial < 25; ++trial) {
    const CellRecord quad = CellRecord::Quad(
        0, Rect2{{0, 0}, {1, 1}}, rng.NextDouble(), rng.NextDouble(),
        rng.NextDouble(), rng.NextDouble());
    const double t = rng.NextDouble();
    const double below = BandArea(quad, -1, t);
    const double above = BandArea(quad, t, 2);
    EXPECT_NEAR(below + above, 1.0, 1e-9);
  }
}

TEST(IsobandTest, MonotoneInBandWidth) {
  Rng rng(31);
  const CellRecord quad = CellRecord::Quad(
      0, Rect2{{0, 0}, {1, 1}}, rng.NextDouble(), rng.NextDouble(),
      rng.NextDouble(), rng.NextDouble());
  double prev = 0.0;
  for (const double hw : {0.05, 0.1, 0.2, 0.4, 0.8}) {
    const double area = BandArea(quad, 0.5 - hw, 0.5 + hw);
    EXPECT_GE(area, prev - 1e-12);
    prev = area;
  }
}

TEST(IsobandTest, RegionPiecesStayInsideCell) {
  const CellRecord quad = CellRecord::Quad(
      0, Rect2{{2, 3}, {4, 5}}, 1, 9, 4, 7);
  Region region;
  ASSERT_TRUE(CellIsoband(quad, ValueInterval{3, 6}, &region).ok());
  for (const ConvexPolygon& piece : region.pieces) {
    for (const Point2& p : piece.vertices) {
      EXPECT_TRUE(quad.Bounds().Contains(p));
    }
  }
}

TEST(IsobandTest, EmptyQueryRejected) {
  const CellRecord quad =
      CellRecord::Quad(0, Rect2{{0, 0}, {1, 1}}, 0, 0, 0, 0);
  Region region;
  const StatusOr<size_t> n =
      CellIsoband(quad, ValueInterval::Empty(), &region);
  EXPECT_FALSE(n.ok());
}

TEST(RegionTest, AppendAndTotals) {
  Region a, b;
  a.pieces.push_back(PolygonFromRect(Rect2{{0, 0}, {1, 1}}));
  b.pieces.push_back(PolygonFromRect(Rect2{{2, 2}, {4, 3}}));
  a.Append(b);
  EXPECT_EQ(a.NumPieces(), 2u);
  EXPECT_NEAR(a.TotalArea(), 3.0, 1e-12);
  EXPECT_EQ(a.BoundingBox(), (Rect2{{0, 0}, {4, 3}}));
}

TEST(SvgTest, RejectsEmptyViewportAndBadPath) {
  Region region;
  region.pieces.push_back(PolygonFromRect(Rect2{{0, 0}, {1, 1}}));
  const std::string path = ::testing::TempDir() + "/fielddb_bad.svg";
  EXPECT_FALSE(WriteSvg(path.c_str(), Rect2::Empty(),
                        {SvgLayer{region.pieces}}));
  EXPECT_FALSE(WriteSvg("/no/such/dir/out.svg", Rect2{{0, 0}, {1, 1}},
                        {SvgLayer{region.pieces}}));
  std::remove(path.c_str());
}

TEST(SvgTest, WritesFile) {
  Region region;
  region.pieces.push_back(PolygonFromRect(Rect2{{0, 0}, {1, 1}}));
  const std::string path = ::testing::TempDir() + "/fielddb_region.svg";
  ASSERT_TRUE(WriteSvg(path.c_str(), Rect2{{0, 0}, {2, 2}},
                       {SvgLayer{region.pieces, "#ff0000", "#000000", 0.5}}));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  ASSERT_GT(std::fread(buf, 1, sizeof(buf) - 1, f), 0u);
  std::fclose(f);
  EXPECT_NE(std::string(buf).find("<svg"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fielddb

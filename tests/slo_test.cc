// SloTracker tests: classification ladder, error-budget and burn-rate
// math (pinned with hand-computed values), and the QueryExecutor
// integration that classifies real queries by selectivity width.

#include "obs/slo.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "core/field_database.h"
#include "core/query_executor.h"
#include "gen/fractal.h"
#include "gen/workload.h"
#include "obs/metrics.h"

namespace fielddb {
namespace {

// SloTracker registers "slo.<class>.latency_ms" histograms in the
// default registry, and instruments are pointer-stable per name — so
// each test uses its own class names to keep latency distributions
// from bleeding across tests in this binary.
class SloTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::set_enabled(true); }
};

std::vector<SloObjective> OneClass(const std::string& name, double target_ms,
                                   double target_fraction) {
  SloObjective o;
  o.query_class = name;
  o.max_width_frac = std::numeric_limits<double>::infinity();
  o.target_ms = target_ms;
  o.target_fraction = target_fraction;
  return {o};
}

TEST_F(SloTest, DefaultLadderClassification) {
  SloTracker tracker(SloTracker::DefaultQueryClasses());
  ASSERT_EQ(tracker.num_classes(), 3);
  EXPECT_EQ(tracker.objective(0).query_class, "point");
  EXPECT_EQ(tracker.objective(1).query_class, "narrow");
  EXPECT_EQ(tracker.objective(2).query_class, "wide");

  EXPECT_EQ(tracker.ClassForWidthFraction(0.0), 0);
  EXPECT_EQ(tracker.ClassForWidthFraction(0.0005), 0);
  EXPECT_EQ(tracker.ClassForWidthFraction(0.001), 0);  // bound inclusive
  EXPECT_EQ(tracker.ClassForWidthFraction(0.01), 1);
  EXPECT_EQ(tracker.ClassForWidthFraction(0.02), 1);
  EXPECT_EQ(tracker.ClassForWidthFraction(0.5), 2);
  EXPECT_EQ(tracker.ClassForWidthFraction(1.0), 2);  // catch-all
}

TEST_F(SloTest, ErrorBudgetMath) {
  // target: 90% under 100ms → allowed violation fraction 0.1.
  SloTracker tracker(OneClass("ebm", 100.0, 0.9));
  for (int i = 0; i < 9; ++i) tracker.Record(0, 10.0);
  tracker.Record(0, 200.0);  // 1 violation in 10

  auto snap = tracker.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].query_class, "ebm");
  EXPECT_EQ(snap[0].total, 10u);
  EXPECT_EQ(snap[0].violations, 1u);
  EXPECT_DOUBLE_EQ(snap[0].compliance, 0.9);
  // Violation fraction exactly equals the allowance: budget spent.
  EXPECT_NEAR(snap[0].error_budget_remaining, 0.0, 1e-12);

  // Ten more queries, six violations: lifetime violation fraction
  // 7/20 = 0.35 → budget remaining 1 - 0.35/0.1 = -2.5 (SLO blown).
  for (int i = 0; i < 4; ++i) tracker.Record(0, 10.0);
  for (int i = 0; i < 6; ++i) tracker.Record(0, 500.0);
  snap = tracker.Snapshot();
  EXPECT_EQ(snap[0].total, 20u);
  EXPECT_EQ(snap[0].violations, 7u);
  EXPECT_DOUBLE_EQ(snap[0].compliance, 0.65);
  EXPECT_NEAR(snap[0].error_budget_remaining, -2.5, 1e-12);
}

TEST_F(SloTest, PerfectComplianceKeepsFullBudget) {
  SloTracker tracker(OneClass("clean", 50.0, 0.99));
  for (int i = 0; i < 100; ++i) tracker.Record(0, 1.0);
  const auto snap = tracker.Snapshot();
  EXPECT_DOUBLE_EQ(snap[0].compliance, 1.0);
  EXPECT_DOUBLE_EQ(snap[0].error_budget_remaining, 1.0);
  EXPECT_DOUBLE_EQ(snap[0].burn_rate, 0.0);
}

TEST_F(SloTest, BurnRateCoversTheWindowSincePreviousSnapshot) {
  // Allowed fraction 0.1: burning at exactly the sustainable pace is
  // burn_rate 1.0, five violations out of ten in a window is 5.0.
  SloTracker tracker(OneClass("burn", 100.0, 0.9));

  for (int i = 0; i < 9; ++i) tracker.Record(0, 1.0);
  tracker.Record(0, 300.0);
  auto snap = tracker.Snapshot();  // window = everything so far
  EXPECT_NEAR(snap[0].burn_rate, 1.0, 1e-12);

  for (int i = 0; i < 5; ++i) tracker.Record(0, 1.0);
  for (int i = 0; i < 5; ++i) tracker.Record(0, 300.0);
  snap = tracker.Snapshot();  // window = the ten queries since above
  EXPECT_NEAR(snap[0].burn_rate, 5.0, 1e-12);

  snap = tracker.Snapshot();  // empty window
  EXPECT_DOUBLE_EQ(snap[0].burn_rate, 0.0);
  // Lifetime numbers are unaffected by the windowing.
  EXPECT_EQ(snap[0].total, 20u);
  EXPECT_EQ(snap[0].violations, 6u);
}

TEST_F(SloTest, LatencyPercentilesRideTheHdrHistograms) {
  SloTracker tracker(OneClass("lat", 100.0, 0.99));
  for (int i = 0; i < 900; ++i) tracker.Record(0, 4.0);
  for (int i = 0; i < 100; ++i) tracker.Record(0, 20.0);
  const auto snap = tracker.Snapshot();
  EXPECT_DOUBLE_EQ(snap[0].p50_ms, 4.0);  // exact sub-32 bucket
  EXPECT_NEAR(snap[0].p99_ms, 20.0, 20.0 * 0.04);
  EXPECT_DOUBLE_EQ(snap[0].max_ms, 20.0);
}

TEST_F(SloTest, ToJsonCarriesSchemaAndClasses) {
  SloTracker tracker(OneClass("json", 100.0, 0.99));
  tracker.Record(0, 1.0);
  const std::string json = tracker.ToJson();
  EXPECT_NE(json.find("\"schema\": \"fielddb-slo-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"json\""), std::string::npos);
  EXPECT_NE(json.find("\"error_budget_remaining\""), std::string::npos);
  EXPECT_NE(json.find("\"burn_rate\""), std::string::npos);
}

TEST_F(SloTest, QueryExecutorClassifiesAndRecordsEveryQuery) {
  FractalOptions fo;
  fo.size_exp = 5;
  fo.seed = 13;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  FieldDatabaseOptions options;
  options.build_spatial_index = false;
  auto db = FieldDatabase::Build(*field, options);
  ASSERT_TRUE(db.ok());

  // Exact-value queries (width 0 → "point") plus wide scans (20% of
  // the value range → "wide"); nothing lands in "narrow".
  std::vector<ValueInterval> queries;
  for (const double qf : {0.0, 0.2}) {
    WorkloadOptions wo;
    wo.qinterval_fraction = qf;
    wo.num_queries = 12;
    wo.seed = 21 + static_cast<uint64_t>(qf * 100);
    const auto qs = GenerateValueQueries((*db)->value_range(), wo);
    queries.insert(queries.end(), qs.begin(), qs.end());
  }

  SloTracker slo(SloTracker::DefaultQueryClasses());
  QueryExecutor::Options eo;
  eo.threads = 4;
  eo.slo = &slo;
  QueryExecutor executor(db->get(), eo);
  QueryExecutor::BatchResult result;
  ASSERT_TRUE(executor.RunBatch(queries, &result).ok());
  EXPECT_EQ(result.per_query.size(), queries.size());

  uint64_t total = 0, point = 0, wide = 0;
  for (const auto& cls : slo.Snapshot()) {
    total += cls.total;
    if (cls.query_class == "point") point = cls.total;
    if (cls.query_class == "wide") wide = cls.total;
  }
  // Every completed query was classified exactly once, and both ends
  // of the width spectrum hit their intended class.
  EXPECT_EQ(total, static_cast<uint64_t>(queries.size()));
  EXPECT_EQ(point, 12u);
  EXPECT_EQ(wide, 12u);
}

}  // namespace
}  // namespace fielddb

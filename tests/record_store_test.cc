#include "storage/record_store.h"

#include <gtest/gtest.h>

#include <numeric>

#include "storage/page_file.h"

namespace fielddb {
namespace {

struct TestRecord {
  uint64_t key = 0;
  double payload[7] = {0};
};
static_assert(sizeof(TestRecord) == 64);

std::vector<TestRecord> MakeRecords(int n) {
  std::vector<TestRecord> records(n);
  for (int i = 0; i < n; ++i) {
    records[i].key = static_cast<uint64_t>(i) * 10;
    records[i].payload[0] = i * 0.5;
  }
  return records;
}

TEST(RecordStoreTest, BuildAndGet) {
  MemPageFile file(512);  // 8 records per page
  BufferPool pool(&file, 64);
  auto store = RecordStore<TestRecord>::Build(&pool, MakeRecords(20));
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->size(), 20u);
  EXPECT_EQ(store->records_per_page(), 8u);
  EXPECT_EQ(store->num_pages(), 3u);
  TestRecord rec;
  ASSERT_TRUE(store->Get(13, &rec).ok());
  EXPECT_EQ(rec.key, 130u);
  EXPECT_DOUBLE_EQ(rec.payload[0], 6.5);
}

TEST(RecordStoreTest, EmptyStore) {
  MemPageFile file;
  BufferPool pool(&file, 16);
  auto store = RecordStore<TestRecord>::Build(&pool, {});
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->size(), 0u);
  EXPECT_EQ(store->num_pages(), 1u);
  TestRecord rec;
  EXPECT_EQ(store->Get(0, &rec).code(), StatusCode::kOutOfRange);
}

TEST(RecordStoreTest, PutOverwrites) {
  MemPageFile file(512);
  BufferPool pool(&file, 64);
  auto store = RecordStore<TestRecord>::Build(&pool, MakeRecords(10));
  ASSERT_TRUE(store.ok());
  TestRecord updated;
  updated.key = 999;
  ASSERT_TRUE(store->Put(4, updated).ok());
  TestRecord rec;
  ASSERT_TRUE(store->Get(4, &rec).ok());
  EXPECT_EQ(rec.key, 999u);
  // Neighbors untouched.
  ASSERT_TRUE(store->Get(3, &rec).ok());
  EXPECT_EQ(rec.key, 30u);
  EXPECT_EQ(store->Put(10, updated).code(), StatusCode::kOutOfRange);
}

TEST(RecordStoreTest, ScanRangeAndEarlyStop) {
  MemPageFile file(512);
  BufferPool pool(&file, 64);
  auto store = RecordStore<TestRecord>::Build(&pool, MakeRecords(30));
  ASSERT_TRUE(store.ok());
  std::vector<uint64_t> seen;
  ASSERT_TRUE(store->Scan(5, 25, [&](uint64_t pos, const TestRecord& r) {
                     EXPECT_EQ(r.key, pos * 10);
                     seen.push_back(pos);
                     return true;
                   }).ok());
  std::vector<uint64_t> expected(20);
  std::iota(expected.begin(), expected.end(), 5);
  EXPECT_EQ(seen, expected);

  int visited = 0;
  ASSERT_TRUE(store->Scan(0, 30, [&](uint64_t, const TestRecord&) {
                     return ++visited < 4;
                   }).ok());
  EXPECT_EQ(visited, 4);
  EXPECT_FALSE(store->Scan(10, 31, [](uint64_t, const TestRecord&) {
                      return true;
                    }).ok());
}

TEST(RecordStoreTest, ScanTouchesEachPageOnce) {
  MemPageFile file(512);
  BufferPool pool(&file, 64);
  auto store = RecordStore<TestRecord>::Build(&pool, MakeRecords(64));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(pool.Clear().ok());
  pool.ResetStats();
  ASSERT_TRUE(store->Scan(0, 64, [](uint64_t, const TestRecord&) {
                     return true;
                   }).ok());
  EXPECT_EQ(pool.stats().logical_reads, store->num_pages());
}

TEST(RecordStoreTest, SurvivesEvictionPressure) {
  MemPageFile file(512);
  BufferPool pool(&file, 2);  // tiny pool forces constant eviction
  auto store = RecordStore<TestRecord>::Build(&pool, MakeRecords(100));
  ASSERT_TRUE(store.ok());
  TestRecord rec;
  for (uint64_t pos = 0; pos < 100; pos += 7) {
    ASSERT_TRUE(store->Get(pos, &rec).ok());
    EXPECT_EQ(rec.key, pos * 10);
  }
}

}  // namespace
}  // namespace fielddb

// Unit coverage for the bounded-memory external merge sorter
// (core/ext_sort.h): ordering, stable tie-breaks, spill telemetry, and
// the byte-identity between budgeted and unlimited runs that the
// extension builds rely on.

#include "core/ext_sort.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace fielddb {
namespace {

struct Payload {
  uint64_t id = 0;
  double value = 0.0;
};

using Emitted = std::vector<std::pair<uint64_t, uint64_t>>;  // (key, id)

Emitted Drain(ExternalKeyRecordSorter<Payload>* sorter) {
  Emitted out;
  const Status s =
      sorter->Merge([&](uint64_t key, const Payload& p) -> Status {
        out.emplace_back(key, p.id);
        return Status::OK();
      });
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out;
}

TEST(ExtSortTest, EmptySorterEmitsNothing) {
  ExternalKeyRecordSorter<Payload> sorter(0);
  EXPECT_TRUE(Drain(&sorter).empty());
  EXPECT_EQ(sorter.spill_runs(), 0u);
}

TEST(ExtSortTest, UnlimitedBudgetSortsByKey) {
  ExternalKeyRecordSorter<Payload> sorter(0);
  const uint64_t keys[] = {9, 2, 7, 2, 0, 9, 5};
  for (uint64_t i = 0; i < 7; ++i) {
    ASSERT_TRUE(sorter.Add(keys[i], Payload{i, 0.0}).ok());
  }
  const Emitted out = Drain(&sorter);
  ASSERT_EQ(out.size(), 7u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1].first, out[i].first);
  }
  // Equal keys keep insertion order (stable tie-break by sequence).
  EXPECT_EQ(out[1], (std::pair<uint64_t, uint64_t>{2, 1}));
  EXPECT_EQ(out[2], (std::pair<uint64_t, uint64_t>{2, 3}));
  EXPECT_EQ(out[5], (std::pair<uint64_t, uint64_t>{9, 0}));
  EXPECT_EQ(out[6], (std::pair<uint64_t, uint64_t>{9, 5}));
  EXPECT_EQ(sorter.spill_runs(), 0u);
  EXPECT_EQ(sorter.spilled_records(), 0u);
}

TEST(ExtSortTest, TinyBudgetSpillsAndMatchesUnlimited) {
  constexpr size_t kEntries = 2000;
  Rng rng(42);
  std::vector<std::pair<uint64_t, Payload>> input;
  input.reserve(kEntries);
  for (uint64_t i = 0; i < kEntries; ++i) {
    // Narrow key space forces many cross-run ties.
    input.push_back({rng.NextU64() % 97, Payload{i, rng.NextDouble()}});
  }

  ExternalKeyRecordSorter<Payload> unlimited(0);
  using Sorter = ExternalKeyRecordSorter<Payload>;
  Sorter budgeted(32 * sizeof(Sorter::Entry));
  for (const auto& [key, payload] : input) {
    ASSERT_TRUE(unlimited.Add(key, payload).ok());
    ASSERT_TRUE(budgeted.Add(key, payload).ok());
  }
  const Emitted expected = Drain(&unlimited);
  const Emitted actual = Drain(&budgeted);
  EXPECT_EQ(actual, expected);

  EXPECT_GT(budgeted.spill_runs(), 1u);
  EXPECT_GT(budgeted.spilled_records(), 0u);
  EXPECT_LE(budgeted.peak_buffered_bytes(), 32 * sizeof(Sorter::Entry));
  EXPECT_EQ(unlimited.spill_runs(), 0u);
  EXPECT_EQ(unlimited.peak_buffered_bytes(),
            kEntries * sizeof(Sorter::Entry));
}

TEST(ExtSortTest, EmitErrorAbortsMerge) {
  ExternalKeyRecordSorter<Payload> sorter(0);
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(sorter.Add(i, Payload{i, 0.0}).ok());
  }
  int calls = 0;
  const Status s = sorter.Merge([&](uint64_t, const Payload&) -> Status {
    if (++calls == 3) return Status::Internal("downstream full");
    return Status::OK();
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(calls, 3);
}

TEST(ExtSortTest, SpilledMergePreservesRecordBytes) {
  using Sorter = ExternalKeyRecordSorter<Payload>;
  Sorter sorter(8 * sizeof(Sorter::Entry));
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(sorter.Add(100 - i, Payload{i, i * 0.25}).ok());
  }
  uint64_t count = 0;
  ASSERT_TRUE(sorter
                  .Merge([&](uint64_t key, const Payload& p) -> Status {
                    EXPECT_EQ(key, 100 - p.id);
                    EXPECT_DOUBLE_EQ(p.value, p.id * 0.25);
                    ++count;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(count, 100u);
  EXPECT_GT(sorter.spill_runs(), 0u);
}

}  // namespace
}  // namespace fielddb

#include "gen/delaunay.h"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"

namespace fielddb {
namespace {

std::vector<Point2> RandomPoints(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point2> pts(n);
  for (auto& p : pts) p = {rng.NextDouble(), rng.NextDouble()};
  return pts;
}

TEST(InCircumcircleTest, UnitCircleCases) {
  // CCW triangle on the unit circle centered at origin.
  const Point2 a{1, 0}, b{0, 1}, c{-1, 0};
  EXPECT_TRUE(InCircumcircle(a, b, c, {0, 0}));
  EXPECT_TRUE(InCircumcircle(a, b, c, {0.5, -0.5}));
  EXPECT_FALSE(InCircumcircle(a, b, c, {2, 0}));
  EXPECT_FALSE(InCircumcircle(a, b, c, {0, -1.001}));
}

TEST(DelaunayTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(DelaunayTriangulate({{0, 0}, {1, 1}}).ok());
  EXPECT_FALSE(
      DelaunayTriangulate({{0, 0}, {1, 1}, {1, 1 + 1e-15}}).ok());
  EXPECT_FALSE(
      DelaunayTriangulate({{0, 0}, {1, 1}, {2, 2}, {3, 3}}).ok());
}

TEST(DelaunayTest, TriangleOfThree) {
  auto tris = DelaunayTriangulate({{0, 0}, {1, 0}, {0, 1}});
  ASSERT_TRUE(tris.ok());
  ASSERT_EQ(tris->size(), 1u);
}

TEST(DelaunayTest, SquareSplitsInTwo) {
  auto tris = DelaunayTriangulate({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  ASSERT_TRUE(tris.ok());
  EXPECT_EQ(tris->size(), 2u);
}

class DelaunayPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DelaunayPropertyTest, EmptyCircumcircleHolds) {
  const std::vector<Point2> pts = RandomPoints(GetParam(), GetParam());
  auto tris = DelaunayTriangulate(pts);
  ASSERT_TRUE(tris.ok());
  for (const IndexTriangle& t : *tris) {
    const Point2 a = pts[t.v[0]], b = pts[t.v[1]], c = pts[t.v[2]];
    for (uint32_t pi = 0; pi < pts.size(); ++pi) {
      if (pi == t.v[0] || pi == t.v[1] || pi == t.v[2]) continue;
      ASSERT_FALSE(InCircumcircle(a, b, c, pts[pi]))
          << "point " << pi << " violates Delaunay";
    }
  }
}

TEST_P(DelaunayPropertyTest, TrianglesAreCcwAndNonDegenerate) {
  const std::vector<Point2> pts = RandomPoints(GetParam(), GetParam() + 1);
  auto tris = DelaunayTriangulate(pts);
  ASSERT_TRUE(tris.ok());
  for (const IndexTriangle& t : *tris) {
    const Triangle2 tri{{pts[t.v[0]], pts[t.v[1]], pts[t.v[2]]}};
    EXPECT_GT(tri.SignedArea(), 0.0);
  }
}

TEST_P(DelaunayPropertyTest, TriangulationTilesConvexHull) {
  const std::vector<Point2> pts = RandomPoints(GetParam(), GetParam() + 2);
  auto tris = DelaunayTriangulate(pts);
  ASSERT_TRUE(tris.ok());

  // Total area equals the convex hull area (computed via the monotone
  // chain hull + shoelace), and internal edges are shared exactly twice.
  double tri_area = 0;
  std::map<std::pair<uint32_t, uint32_t>, int> edge_count;
  for (const IndexTriangle& t : *tris) {
    const Triangle2 tri{{pts[t.v[0]], pts[t.v[1]], pts[t.v[2]]}};
    tri_area += tri.Area();
    for (int e = 0; e < 3; ++e) {
      uint32_t u = t.v[e], v = t.v[(e + 1) % 3];
      if (u > v) std::swap(u, v);
      ++edge_count[{u, v}];
    }
  }
  for (const auto& [edge, count] : edge_count) {
    EXPECT_LE(count, 2) << "edge shared by more than two triangles";
  }

  // Monotone-chain convex hull.
  std::vector<Point2> sorted = pts;
  std::sort(sorted.begin(), sorted.end(), [](Point2 a, Point2 b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  std::vector<Point2> hull;
  for (int pass = 0; pass < 2; ++pass) {
    const size_t base = hull.size();
    for (const Point2& p : sorted) {
      while (hull.size() >= base + 2 &&
             Cross(hull[hull.size() - 1] - hull[hull.size() - 2],
                   p - hull[hull.size() - 2]) <= 0) {
        hull.pop_back();
      }
      hull.push_back(p);
    }
    hull.pop_back();
    std::reverse(sorted.begin(), sorted.end());
  }
  double hull_area = 0;
  for (size_t i = 0; i < hull.size(); ++i) {
    hull_area += Cross(hull[i], hull[(i + 1) % hull.size()]);
  }
  hull_area = std::abs(hull_area) / 2;
  EXPECT_NEAR(tri_area, hull_area, 1e-9 * std::max(1.0, hull_area));
}

INSTANTIATE_TEST_SUITE_P(Sizes, DelaunayPropertyTest,
                         ::testing::Values(5, 20, 100, 400),
                         ::testing::PrintToStringParamName());

TEST(DelaunayTest, ExpectedTriangleCount) {
  // For n points with h on the hull: triangles = 2n - h - 2.
  const int n = 500;
  const std::vector<Point2> pts = RandomPoints(n, 777);
  auto tris = DelaunayTriangulate(pts);
  ASSERT_TRUE(tris.ok());
  // Uniform random points have few hull points (O(log n)); the count must
  // land close to 2n.
  EXPECT_GT(tris->size(), 2u * n - 60);
  EXPECT_LT(tris->size(), 2u * n);
}

}  // namespace
}  // namespace fielddb

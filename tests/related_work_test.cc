// Tests for the Section 2.3 related-work baselines: the main-memory
// interval tree [5] and the per-row IP-index [18, 19].

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "core/field_database.h"
#include "gen/fractal.h"
#include "gen/noise_tin.h"
#include "gen/workload.h"
#include "index/interval_tree.h"
#include "index/row_ip_index.h"
#include "storage/page_file.h"

namespace fielddb {
namespace {

// Candidate runs expanded to individual positions for set comparisons.
std::vector<uint64_t> FilterPositions(const ValueIndex& index,
                                      const ValueInterval& q) {
  std::vector<PosRange> ranges;
  EXPECT_TRUE(index.FilterCandidateRanges(q, &ranges).ok());
  std::vector<uint64_t> positions;
  for (const PosRange& r : ranges) {
    for (uint64_t pos = r.begin; pos < r.end; ++pos) {
      positions.push_back(pos);
    }
  }
  return positions;
}

std::vector<IntervalTree::Item> RandomItems(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<IntervalTree::Item> items(n);
  for (int i = 0; i < n; ++i) {
    const double lo = rng.NextDouble(-10, 10);
    items[i].interval = ValueInterval{lo, lo + rng.NextDouble(0, 3)};
    items[i].payload = i;
  }
  return items;
}

TEST(IntervalTreeTest, EmptyTree) {
  IntervalTree tree = IntervalTree::Build({});
  EXPECT_EQ(tree.size(), 0u);
  std::vector<uint64_t> hits;
  tree.Stab(0.0, &hits);
  tree.Query(ValueInterval{0, 1}, &hits);
  EXPECT_TRUE(hits.empty());
}

TEST(IntervalTreeTest, StabMatchesBruteForce) {
  const auto items = RandomItems(500, 3);
  IntervalTree tree = IntervalTree::Build(items);
  EXPECT_EQ(tree.size(), 500u);
  Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    const double w = rng.NextDouble(-11, 12);
    std::vector<uint64_t> got;
    tree.Stab(w, &got);
    std::vector<uint64_t> expected;
    for (const auto& item : items) {
      if (item.interval.Contains(w)) expected.push_back(item.payload);
    }
    ASSERT_EQ(got, expected) << "w=" << w;
  }
}

TEST(IntervalTreeTest, QueryMatchesBruteForce) {
  const auto items = RandomItems(800, 7);
  IntervalTree tree = IntervalTree::Build(items);
  Rng rng(8);
  for (int trial = 0; trial < 50; ++trial) {
    const ValueInterval q = ValueInterval::Of(rng.NextDouble(-11, 12),
                                              rng.NextDouble(-11, 12));
    std::vector<uint64_t> got;
    tree.Query(q, &got);
    std::vector<uint64_t> expected;
    for (const auto& item : items) {
      if (item.interval.Intersects(q)) expected.push_back(item.payload);
    }
    ASSERT_EQ(got, expected);
  }
}

TEST(IntervalTreeTest, DegenerateIntervalsAndStabAtCenter) {
  std::vector<IntervalTree::Item> items = {
      {{1, 1}, 0}, {{1, 1}, 1}, {{0, 2}, 2}, {{2, 3}, 3}};
  IntervalTree tree = IntervalTree::Build(items);
  std::vector<uint64_t> hits;
  tree.Stab(1.0, &hits);
  EXPECT_EQ(hits, (std::vector<uint64_t>{0, 1, 2}));
  hits.clear();
  tree.Query(ValueInterval{1, 2}, &hits);
  EXPECT_EQ(hits, (std::vector<uint64_t>{0, 1, 2, 3}));
}

TEST(IntervalTreeTest, MemoryScalesWithSize) {
  // The paper's objection quantified: resident bytes grow linearly.
  const size_t small = IntervalTree::Build(RandomItems(100, 1))
                           .MemoryBytes();
  const size_t large = IntervalTree::Build(RandomItems(10000, 1))
                           .MemoryBytes();
  EXPECT_GT(large, 50 * small);
  EXPECT_GT(large, 10000 * sizeof(IntervalTree::Item));
}

TEST(RowIpIndexTest, RejectsNonGridFields) {
  NoiseTinOptions no;
  no.num_sites = 100;
  auto tin = MakeUrbanNoiseTin(no);
  ASSERT_TRUE(tin.ok());
  MemPageFile file;
  BufferPool pool(&file, 1024);
  EXPECT_FALSE(RowIpIndex::Build(&pool, *tin).ok());
}

TEST(RowIpIndexTest, CandidatesMatchGroundTruth) {
  FractalOptions fo;
  fo.size_exp = 5;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  MemPageFile file;
  BufferPool pool(&file, 4096);
  auto idx = RowIpIndex::Build(&pool, *field);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ((*idx)->num_rows(), 32u);

  const auto queries = GenerateValueQueries(field->ValueRange(),
                                            WorkloadOptions{0.04, 25, 5});
  for (const ValueInterval& q : queries) {
    const std::vector<uint64_t> positions = FilterPositions(**idx, q);
    std::set<uint64_t> got(positions.begin(), positions.end());
    EXPECT_EQ(got.size(), positions.size());
    std::set<uint64_t> expected;
    for (CellId id = 0; id < field->NumCells(); ++id) {
      if (field->GetCell(id).Interval().Intersects(q)) {
        expected.insert(id);  // native order: position == id
      }
    }
    ASSERT_EQ(got, expected);
  }
}

TEST(RowIpIndexTest, WorksThroughFieldDatabase) {
  FractalOptions fo;
  fo.size_exp = 5;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  FieldDatabaseOptions options;
  options.method = IndexMethod::kRowIp;
  auto db = FieldDatabase::Build(*field, options);
  ASSERT_TRUE(db.ok());

  FieldDatabaseOptions ref_options;
  ref_options.method = IndexMethod::kLinearScan;
  auto reference = FieldDatabase::Build(*field, ref_options);
  ASSERT_TRUE(reference.ok());
  const auto queries = GenerateValueQueries(field->ValueRange(),
                                            WorkloadOptions{0.03, 15, 9});
  for (const ValueInterval& q : queries) {
    ValueQueryResult expected, actual;
    ASSERT_TRUE((*reference)->ValueQuery(q, &expected).ok());
    ASSERT_TRUE((*db)->ValueQuery(q, &actual).ok());
    EXPECT_NEAR(actual.region.TotalArea(), expected.region.TotalArea(),
                1e-9);
  }
  // No persistence for the baseline.
  EXPECT_EQ((*db)->Save("/tmp/fielddb_rowip").code(),
            StatusCode::kUnimplemented);
}

TEST(RowIpIndexTest, UpdatesMaintainCorrectness) {
  FractalOptions fo;
  fo.size_exp = 4;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  MemPageFile file;
  BufferPool pool(&file, 4096);
  auto idx = RowIpIndex::Build(&pool, *field);
  ASSERT_TRUE(idx.ok());

  ASSERT_TRUE((*idx)->UpdateCellValues(100, {70, 71, 72, 73}).ok());
  std::vector<uint64_t> positions =
      FilterPositions(**idx, ValueInterval{69, 74});
  ASSERT_EQ(positions.size(), 1u);
  EXPECT_EQ(positions[0], 100u);
  // And the old band no longer finds it.
  const ValueInterval old_band = field->GetCell(100).Interval();
  positions = FilterPositions(**idx, old_band);
  for (const uint64_t pos : positions) {
    EXPECT_NE(pos, 100u);
  }
}

TEST(RowIpIndexTest, TouchesMorePagesThanIHilbert) {
  // The paper's point, quantified: per-row 1-D indexing cannot group
  // across rows, so its filtering touches far more pages.
  FractalOptions fo;
  fo.size_exp = 7;
  fo.roughness_h = 0.7;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  const auto queries = GenerateValueQueries(field->ValueRange(),
                                            WorkloadOptions{0.01, 20, 11});
  const auto avg_reads = [&](IndexMethod method) {
    FieldDatabaseOptions options;
    options.method = method;
    options.build_spatial_index = false;
    // This test measures the *methods'* page-touch behavior, so pin the
    // indexed plan — in auto mode the planner would notice Row-IP's
    // directory walk is a bad deal here and route around it.
    options.planner_mode = PlannerMode::kForceIndex;
    auto db = FieldDatabase::Build(*field, options);
    EXPECT_TRUE(db.ok());
    auto ws = (*db)->RunWorkload(queries);
    EXPECT_TRUE(ws.ok());
    return ws->avg_logical_reads;
  };
  EXPECT_GT(avg_reads(IndexMethod::kRowIp),
            2 * avg_reads(IndexMethod::kIHilbert));
}

}  // namespace
}  // namespace fielddb

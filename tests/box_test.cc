#include "rtree/box.h"

#include <gtest/gtest.h>

namespace fielddb {
namespace {

Box<2> MakeBox(double x0, double y0, double x1, double y1) {
  Box<2> b;
  b.lo = {x0, y0};
  b.hi = {x1, y1};
  return b;
}

TEST(BoxTest, EmptyIdentity) {
  Box<2> e = Box<2>::Empty();
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_DOUBLE_EQ(e.Area(), 0.0);
  EXPECT_DOUBLE_EQ(e.Margin(), 0.0);
  e.Extend(MakeBox(1, 2, 3, 4));
  EXPECT_FALSE(e.IsEmpty());
  EXPECT_EQ(e, MakeBox(1, 2, 3, 4));
}

TEST(BoxTest, AreaAndMargin) {
  const Box<2> b = MakeBox(0, 0, 2, 3);
  EXPECT_DOUBLE_EQ(b.Area(), 6.0);
  EXPECT_DOUBLE_EQ(b.Margin(), 5.0);

  Box<1> iv;
  iv.lo = {1};
  iv.hi = {4};
  EXPECT_DOUBLE_EQ(iv.Area(), 3.0);  // length in 1-D
  EXPECT_DOUBLE_EQ(iv.Margin(), 3.0);

  Box<3> cube;
  cube.lo = {0, 0, 0};
  cube.hi = {2, 2, 2};
  EXPECT_DOUBLE_EQ(cube.Area(), 8.0);  // volume in 3-D
  EXPECT_DOUBLE_EQ(cube.Margin(), 6.0);
}

TEST(BoxTest, IntersectsClosedBoundaries) {
  const Box<2> a = MakeBox(0, 0, 1, 1);
  EXPECT_TRUE(a.Intersects(MakeBox(1, 0, 2, 1)));   // shared edge
  EXPECT_TRUE(a.Intersects(MakeBox(1, 1, 2, 2)));   // shared corner
  EXPECT_FALSE(a.Intersects(MakeBox(1.01, 0, 2, 1)));
  EXPECT_TRUE(a.Intersects(a));
}

TEST(BoxTest, Contains) {
  const Box<2> outer = MakeBox(0, 0, 4, 4);
  EXPECT_TRUE(outer.Contains(MakeBox(1, 1, 2, 2)));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(MakeBox(3, 3, 5, 5)));
  EXPECT_FALSE(MakeBox(1, 1, 2, 2).Contains(outer));
}

TEST(BoxTest, OverlapArea) {
  const Box<2> a = MakeBox(0, 0, 2, 2);
  EXPECT_DOUBLE_EQ(a.OverlapArea(MakeBox(1, 1, 3, 3)), 1.0);
  EXPECT_DOUBLE_EQ(a.OverlapArea(MakeBox(2, 0, 3, 2)), 0.0);  // edge
  EXPECT_DOUBLE_EQ(a.OverlapArea(MakeBox(5, 5, 6, 6)), 0.0);
  EXPECT_DOUBLE_EQ(a.OverlapArea(a), 4.0);
}

TEST(BoxTest, CenterAndDistance) {
  const Box<2> a = MakeBox(0, 0, 2, 2);
  const Box<2> b = MakeBox(3, 4, 5, 4);
  const auto ca = a.Center();
  EXPECT_DOUBLE_EQ(ca[0], 1.0);
  EXPECT_DOUBLE_EQ(ca[1], 1.0);
  // Centers (1,1) and (4,4): squared distance 9 + 9 = 18.
  EXPECT_DOUBLE_EQ(a.CenterDistance2(b), 18.0);
}

TEST(BoxTest, IntervalAdapters) {
  const ValueInterval iv{2, 5};
  const Box<1> b = BoxFromInterval(iv);
  EXPECT_DOUBLE_EQ(b.lo[0], 2.0);
  EXPECT_DOUBLE_EQ(b.hi[0], 5.0);
  EXPECT_EQ(IntervalFromBox(b), iv);
}

TEST(BoxTest, RectAdapters) {
  const Rect2 r{{1, 2}, {3, 4}};
  EXPECT_EQ(RectFromBox(BoxFromRect(r)), r);
  const Box<2> p = BoxFromPoint({5, 6});
  EXPECT_EQ(p.lo, p.hi);
  EXPECT_TRUE(p.Intersects(MakeBox(5, 6, 7, 8)));
}

TEST(BoxTest, DegenerateBoxBehaves) {
  // Zero-extent boxes (exact-value intervals) are not "empty".
  Box<1> point;
  point.lo = {3};
  point.hi = {3};
  EXPECT_FALSE(point.IsEmpty());
  EXPECT_DOUBLE_EQ(point.Area(), 0.0);
  Box<1> other;
  other.lo = {3};
  other.hi = {9};
  EXPECT_TRUE(point.Intersects(other));
}

}  // namespace
}  // namespace fielddb

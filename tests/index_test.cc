#include "index/value_index.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "gen/fractal.h"
#include "gen/noise_tin.h"
#include "gen/workload.h"
#include "index/i_all.h"
#include "index/i_hilbert.h"
#include "index/interval_quadtree.h"
#include "index/linear_scan.h"
#include "index/row_ip_index.h"
#include "storage/page_file.h"

namespace fielddb {
namespace {

struct IndexFixture {
  std::unique_ptr<MemPageFile> file;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<ValueIndex> index;
};

IndexFixture BuildIndex(IndexMethod method, const Field& field) {
  IndexFixture fx;
  fx.file = std::make_unique<MemPageFile>();
  fx.pool = std::make_unique<BufferPool>(fx.file.get(), 4096);
  switch (method) {
    case IndexMethod::kLinearScan: {
      auto idx = LinearScanIndex::Build(fx.pool.get(), field);
      EXPECT_TRUE(idx.ok());
      fx.index = std::move(idx).value();
      break;
    }
    case IndexMethod::kIAll: {
      auto idx = IAllIndex::Build(fx.pool.get(), field);
      EXPECT_TRUE(idx.ok());
      fx.index = std::move(idx).value();
      break;
    }
    case IndexMethod::kIHilbert: {
      auto idx = IHilbertIndex::Build(fx.pool.get(), field);
      EXPECT_TRUE(idx.ok());
      fx.index = std::move(idx).value();
      break;
    }
    case IndexMethod::kIntervalQuadtree: {
      auto idx = IntervalQuadtreeIndex::Build(fx.pool.get(), field);
      EXPECT_TRUE(idx.ok());
      fx.index = std::move(idx).value();
      break;
    }
    case IndexMethod::kRowIp: {
      auto idx = RowIpIndex::Build(fx.pool.get(), field);
      EXPECT_TRUE(idx.ok());
      fx.index = std::move(idx).value();
      break;
    }
  }
  return fx;
}

// Field cell ids whose own interval intersects the query — the ground
// truth every filtering step must cover.
std::set<CellId> GroundTruth(const Field& field, const ValueInterval& q) {
  std::set<CellId> hits;
  for (CellId id = 0; id < field.NumCells(); ++id) {
    if (field.GetCell(id).Interval().Intersects(q)) hits.insert(id);
  }
  return hits;
}

// Candidate runs expanded to individual positions.
std::vector<uint64_t> FilterPositions(const ValueIndex& index,
                                      const ValueInterval& q) {
  std::vector<PosRange> ranges;
  EXPECT_TRUE(index.FilterCandidateRanges(q, &ranges).ok());
  std::vector<uint64_t> positions;
  for (const PosRange& r : ranges) {
    for (uint64_t pos = r.begin; pos < r.end; ++pos) {
      positions.push_back(pos);
    }
  }
  return positions;
}

// Candidate positions translated back to field cell ids.
std::set<CellId> CandidateCellIds(const ValueIndex& index,
                                  const ValueInterval& q) {
  const std::vector<uint64_t> positions = FilterPositions(index, q);
  std::set<CellId> ids;
  CellRecord rec;
  for (const uint64_t pos : positions) {
    EXPECT_TRUE(index.cell_store().Get(pos, &rec).ok());
    ids.insert(rec.id);
  }
  EXPECT_EQ(ids.size(), positions.size()) << "duplicate candidates";
  return ids;
}

class IndexEquivalenceTest
    : public ::testing::TestWithParam<IndexMethod> {};

TEST_P(IndexEquivalenceTest, NoFalseNegativesOnFractalGrid) {
  FractalOptions fo;
  fo.size_exp = 5;  // 1024 cells
  fo.roughness_h = 0.5;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  IndexFixture fx = BuildIndex(GetParam(), *field);

  const auto queries = GenerateValueQueries(
      field->ValueRange(), WorkloadOptions{0.05, 40, 3});
  for (const ValueInterval& q : queries) {
    const std::set<CellId> truth = GroundTruth(*field, q);
    const std::set<CellId> candidates = CandidateCellIds(*fx.index, q);
    for (const CellId id : truth) {
      ASSERT_TRUE(candidates.count(id))
          << IndexMethodName(GetParam()) << " missed cell " << id
          << " for query " << q.ToString();
    }
  }
}

TEST_P(IndexEquivalenceTest, NoFalseNegativesOnTin) {
  NoiseTinOptions no;
  no.num_sites = 400;
  auto field = MakeUrbanNoiseTin(no);
  ASSERT_TRUE(field.ok());
  IndexFixture fx = BuildIndex(GetParam(), *field);

  const auto queries = GenerateValueQueries(
      field->ValueRange(), WorkloadOptions{0.02, 25, 5});
  for (const ValueInterval& q : queries) {
    const std::set<CellId> truth = GroundTruth(*field, q);
    const std::set<CellId> candidates = CandidateCellIds(*fx.index, q);
    for (const CellId id : truth) {
      ASSERT_TRUE(candidates.count(id));
    }
  }
}

TEST_P(IndexEquivalenceTest, CandidatesAscendingPositions) {
  FractalOptions fo;
  fo.size_exp = 4;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  IndexFixture fx = BuildIndex(GetParam(), *field);
  const std::vector<uint64_t> positions = FilterPositions(
      *fx.index,
      ValueInterval{field->ValueRange().min, field->ValueRange().max});
  EXPECT_EQ(positions.size(), field->NumCells());  // full-range query
  for (size_t i = 1; i < positions.size(); ++i) {
    EXPECT_LT(positions[i - 1], positions[i]);
  }
}

TEST_P(IndexEquivalenceTest, DisjointQueryYieldsNothingExact) {
  FractalOptions fo;
  fo.size_exp = 4;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  IndexFixture fx = BuildIndex(GetParam(), *field);
  const ValueInterval range = field->ValueRange();
  const ValueInterval far_above{range.max + 10, range.max + 11};
  EXPECT_TRUE(FilterPositions(*fx.index, far_above).empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, IndexEquivalenceTest,
    ::testing::Values(IndexMethod::kLinearScan, IndexMethod::kIAll,
                      IndexMethod::kIHilbert,
                      IndexMethod::kIntervalQuadtree),
    [](const ::testing::TestParamInfo<IndexMethod>& info) {
      std::string name = IndexMethodName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(LinearScanTest, ExactCandidatesOnly) {
  FractalOptions fo;
  fo.size_exp = 4;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  IndexFixture fx = BuildIndex(IndexMethod::kLinearScan, *field);
  const auto queries = GenerateValueQueries(field->ValueRange(),
                                            WorkloadOptions{0.03, 20, 9});
  for (const ValueInterval& q : queries) {
    EXPECT_EQ(CandidateCellIds(*fx.index, q), GroundTruth(*field, q));
  }
}

TEST(IAllTest, ExactCandidatesOnly) {
  // I-All indexes individual intervals, so it has no false positives
  // either.
  FractalOptions fo;
  fo.size_exp = 4;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  IndexFixture fx = BuildIndex(IndexMethod::kIAll, *field);
  const auto queries = GenerateValueQueries(field->ValueRange(),
                                            WorkloadOptions{0.03, 20, 9});
  for (const ValueInterval& q : queries) {
    EXPECT_EQ(CandidateCellIds(*fx.index, q), GroundTruth(*field, q));
  }
}

TEST(IAllTest, InsertAndBulkAgree) {
  FractalOptions fo;
  fo.size_exp = 4;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());

  MemPageFile f1, f2;
  BufferPool p1(&f1, 1024), p2(&f2, 1024);
  IAllOptions bulk_opts, insert_opts;
  insert_opts.bulk_load = false;
  auto bulk = IAllIndex::Build(&p1, *field, bulk_opts);
  auto inserted = IAllIndex::Build(&p2, *field, insert_opts);
  ASSERT_TRUE(bulk.ok());
  ASSERT_TRUE(inserted.ok());
  ASSERT_TRUE((*bulk)->tree().CheckInvariants().ok());
  ASSERT_TRUE((*inserted)->tree().CheckInvariants().ok());

  const auto queries = GenerateValueQueries(field->ValueRange(),
                                            WorkloadOptions{0.04, 25, 2});
  for (const ValueInterval& q : queries) {
    EXPECT_EQ(FilterPositions(**bulk, q), FilterPositions(**inserted, q));
  }
}

TEST(IHilbertTest, SubfieldsPartitionStore) {
  FractalOptions fo;
  fo.size_exp = 6;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  IndexFixture fx = BuildIndex(IndexMethod::kIHilbert, *field);
  const auto* ih = static_cast<const IHilbertIndex*>(fx.index.get());

  const auto& sfs = ih->subfields();
  ASSERT_FALSE(sfs.empty());
  EXPECT_EQ(sfs.front().start, 0u);
  EXPECT_EQ(sfs.back().end, field->NumCells());
  for (size_t i = 0; i + 1 < sfs.size(); ++i) {
    EXPECT_EQ(sfs[i].end, sfs[i + 1].start);
  }
  EXPECT_EQ(ih->build_info().num_subfields, sfs.size());
  // The whole point: far fewer index entries than cells.
  EXPECT_LT(sfs.size(), field->NumCells() / 4);
}

TEST(IHilbertTest, SubfieldIntervalCoversMembers) {
  FractalOptions fo;
  fo.size_exp = 5;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  IndexFixture fx = BuildIndex(IndexMethod::kIHilbert, *field);
  const auto* ih = static_cast<const IHilbertIndex*>(fx.index.get());
  CellRecord rec;
  for (const Subfield& sf : ih->subfields()) {
    for (uint64_t pos = sf.start; pos < sf.end; ++pos) {
      ASSERT_TRUE(ih->cell_store().Get(pos, &rec).ok());
      const ValueInterval iv = rec.Interval();
      EXPECT_GE(iv.min, sf.interval.min);
      EXPECT_LE(iv.max, sf.interval.max);
    }
  }
}

TEST(IHilbertTest, StoreIsHilbertOrdered) {
  FractalOptions fo;
  fo.size_exp = 4;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  const auto curve = MakeCurve(CurveType::kHilbert, 16);
  const std::vector<CellId> order = LinearizeCells(*field, *curve);
  IndexFixture fx = BuildIndex(IndexMethod::kIHilbert, *field);
  CellRecord rec;
  for (uint64_t pos = 0; pos < order.size(); ++pos) {
    ASSERT_TRUE(fx.index->cell_store().Get(pos, &rec).ok());
    EXPECT_EQ(rec.id, order[pos]);
  }
}

TEST(IHilbertTest, FilterSubfieldsFindsIntersecting) {
  FractalOptions fo;
  fo.size_exp = 5;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  IndexFixture fx = BuildIndex(IndexMethod::kIHilbert, *field);
  const auto* ih = static_cast<const IHilbertIndex*>(fx.index.get());
  const ValueInterval range = field->ValueRange();
  const ValueInterval q{range.min + 0.3 * range.Length(),
                        range.min + 0.4 * range.Length()};
  std::vector<uint32_t> ids;
  ASSERT_TRUE(ih->FilterSubfields(q, &ids).ok());
  std::set<uint32_t> expected;
  for (uint32_t i = 0; i < ih->subfields().size(); ++i) {
    if (ih->subfields()[i].interval.Intersects(q)) expected.insert(i);
  }
  EXPECT_EQ(std::set<uint32_t>(ids.begin(), ids.end()), expected);
}

TEST(IHilbertTest, CurveChoiceAffectsSubfieldCount) {
  // Hilbert linearization should need no more subfields than row-major
  // (better clustering => longer similar-value runs). This pins the
  // paper's motivation for Hilbert ordering.
  FractalOptions fo;
  fo.size_exp = 7;  // 16384 cells
  fo.roughness_h = 0.7;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());

  const auto count_subfields = [&](CurveType curve) {
    MemPageFile file;
    BufferPool pool(&file, 4096);
    IHilbertOptions options;
    options.curve = curve;
    auto idx = IHilbertIndex::Build(&pool, *field, options);
    EXPECT_TRUE(idx.ok());
    return (*idx)->subfields().size();
  };
  EXPECT_LT(count_subfields(CurveType::kHilbert),
            count_subfields(CurveType::kRowMajor));
}

TEST(IntervalQuadtreeTest, ThresholdControlsPartition) {
  FractalOptions fo;
  fo.size_exp = 6;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());

  const auto count_subfields = [&](double threshold) {
    MemPageFile file;
    BufferPool pool(&file, 4096);
    IntervalQuadtreeOptions options;
    options.threshold_fraction = threshold;
    auto idx = IntervalQuadtreeIndex::Build(&pool, *field, options);
    EXPECT_TRUE(idx.ok());
    return (*idx)->subfields().size();
  };
  // Tighter thresholds force deeper division -> more subfields.
  EXPECT_GT(count_subfields(0.02), count_subfields(0.5));
}

TEST(IntervalQuadtreeTest, SubfieldsRespectThreshold) {
  FractalOptions fo;
  fo.size_exp = 5;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  MemPageFile file;
  BufferPool pool(&file, 4096);
  IntervalQuadtreeOptions options;
  options.threshold_fraction = 0.25;
  auto idx = IntervalQuadtreeIndex::Build(&pool, *field, options);
  ASSERT_TRUE(idx.ok());
  const double threshold = 0.25 * field->ValueRange().Length();
  for (const Subfield& sf : (*idx)->subfields()) {
    // Single-cell quadrants may exceed the threshold (indivisible), as
    // may max-depth cutoffs; multi-cell quadrants must respect it.
    if (sf.NumCells() > 1) {
      EXPECT_LE(sf.interval.Length(), threshold + 1e-9);
    }
  }
}

TEST(IntervalQuadtreeTest, RejectsBadThreshold) {
  FractalOptions fo;
  fo.size_exp = 4;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  MemPageFile file;
  BufferPool pool(&file, 1024);
  IntervalQuadtreeOptions options;
  options.threshold_fraction = 0.0;
  EXPECT_FALSE(IntervalQuadtreeIndex::Build(&pool, *field, options).ok());
}

TEST(BuildInfoTest, ReportsSensibleNumbers) {
  FractalOptions fo;
  fo.size_exp = 6;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  for (const IndexMethod method :
       {IndexMethod::kLinearScan, IndexMethod::kIAll,
        IndexMethod::kIHilbert, IndexMethod::kIntervalQuadtree}) {
    IndexFixture fx = BuildIndex(method, *field);
    const IndexBuildInfo& info = fx.index->build_info();
    EXPECT_EQ(info.num_cells, field->NumCells());
    EXPECT_GT(info.store_pages, 0u);
    if (method != IndexMethod::kLinearScan) {
      EXPECT_GT(info.num_index_entries, 0u);
      EXPECT_GT(info.tree_height, 0u);
    }
    if (method == IndexMethod::kIHilbert) {
      EXPECT_LT(info.num_index_entries, info.num_cells);
    }
    if (method == IndexMethod::kIAll) {
      EXPECT_EQ(info.num_index_entries, info.num_cells);
    }
  }
}

}  // namespace
}  // namespace fielddb

#include <gtest/gtest.h>

#include <cstdio>

#include "core/field_database.h"
#include "gen/fractal.h"
#include "gen/monotonic.h"
#include "gen/workload.h"

namespace fielddb {
namespace {

class PersistTest : public ::testing::TestWithParam<IndexMethod> {
 protected:
  void SetUp() override {
    prefix_ = ::testing::TempDir() + "/fielddb_persist_" +
              std::to_string(static_cast<int>(GetParam()));
    Cleanup();
  }
  void TearDown() override { Cleanup(); }
  void Cleanup() {
    std::remove((prefix_ + ".pages").c_str());
    std::remove((prefix_ + ".meta").c_str());
  }
  std::string prefix_;
};

TEST_P(PersistTest, SaveOpenRoundTripAnswersMatch) {
  FractalOptions fo;
  fo.size_exp = 5;
  fo.roughness_h = 0.6;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());

  FieldDatabaseOptions options;
  options.method = GetParam();
  auto original = FieldDatabase::Build(*field, options);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE((*original)->Save(prefix_).ok());

  auto reopened = FieldDatabase::Open(prefix_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->method(), GetParam());
  EXPECT_EQ((*reopened)->build_info().num_cells, field->NumCells());
  EXPECT_EQ((*reopened)->value_range(), (*original)->value_range());
  EXPECT_EQ((*reopened)->domain(), (*original)->domain());

  const auto queries = GenerateValueQueries(field->ValueRange(),
                                            WorkloadOptions{0.03, 15, 61});
  for (const ValueInterval& q : queries) {
    ValueQueryResult expected, actual;
    ASSERT_TRUE((*original)->ValueQuery(q, &expected).ok());
    ASSERT_TRUE((*reopened)->ValueQuery(q, &actual).ok());
    EXPECT_NEAR(actual.region.TotalArea(), expected.region.TotalArea(),
                1e-9);
    EXPECT_EQ(actual.stats.candidate_cells, expected.stats.candidate_cells);
    EXPECT_EQ(actual.stats.answer_cells, expected.stats.answer_cells);
  }
}

TEST_P(PersistTest, PointQueriesSurvive) {
  auto field = MakeMonotonicField(16, 16);
  ASSERT_TRUE(field.ok());
  FieldDatabaseOptions options;
  options.method = GetParam();
  auto original = FieldDatabase::Build(*field, options);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE((*original)->Save(prefix_).ok());
  auto reopened = FieldDatabase::Open(prefix_);
  ASSERT_TRUE(reopened.ok());
  for (const Point2 p :
       {Point2{0.1, 0.9}, Point2{0.5, 0.5}, Point2{0.99, 0.01}}) {
    EXPECT_NEAR(*(*reopened)->PointQuery(p), p.x + p.y, 1e-12);
  }
}

TEST_P(PersistTest, UpdatesAfterReopen) {
  auto field = MakeMonotonicField(8, 8);
  ASSERT_TRUE(field.ok());
  FieldDatabaseOptions options;
  options.method = GetParam();
  auto original = FieldDatabase::Build(*field, options);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE((*original)->Save(prefix_).ok());
  auto reopened = FieldDatabase::Open(prefix_);
  ASSERT_TRUE(reopened.ok());

  ASSERT_TRUE(
      (*reopened)->UpdateCellValues(3, {400.0, 400, 400, 400}).ok());
  ValueQueryResult result;
  ASSERT_TRUE(
      (*reopened)->ValueQuery(ValueInterval{399, 401}, &result).ok());
  EXPECT_EQ(result.stats.answer_cells, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, PersistTest,
    ::testing::Values(IndexMethod::kLinearScan, IndexMethod::kIAll,
                      IndexMethod::kIHilbert,
                      IndexMethod::kIntervalQuadtree),
    [](const ::testing::TestParamInfo<IndexMethod>& info) {
      std::string name = IndexMethodName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(PersistErrorsTest, OpenMissingFiles) {
  auto db = FieldDatabase::Open(::testing::TempDir() + "/no_such_db");
  EXPECT_FALSE(db.ok());
}

TEST(PersistErrorsTest, CorruptMetaRejected) {
  const std::string prefix = ::testing::TempDir() + "/fielddb_corrupt";
  std::FILE* f = std::fopen((prefix + ".meta").c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("not-a-catalog at all\n", f);
  std::fclose(f);
  auto db = FieldDatabase::Open(prefix);
  EXPECT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kCorruption);
  std::remove((prefix + ".meta").c_str());
}

}  // namespace
}  // namespace fielddb

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/field_database.h"
#include "gen/fractal.h"
#include "gen/monotonic.h"
#include "gen/workload.h"
#include "storage/page_file.h"

namespace fielddb {
namespace {

class PersistTest : public ::testing::TestWithParam<IndexMethod> {
 protected:
  void SetUp() override {
    prefix_ = ::testing::TempDir() + "/fielddb_persist_" +
              std::to_string(static_cast<int>(GetParam()));
    Cleanup();
  }
  void TearDown() override { Cleanup(); }
  void Cleanup() {
    std::remove((prefix_ + ".pages").c_str());
    std::remove((prefix_ + ".meta").c_str());
  }
  std::string prefix_;
};

TEST_P(PersistTest, SaveOpenRoundTripAnswersMatch) {
  FractalOptions fo;
  fo.size_exp = 5;
  fo.roughness_h = 0.6;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());

  FieldDatabaseOptions options;
  options.method = GetParam();
  auto original = FieldDatabase::Build(*field, options);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE((*original)->Save(prefix_).ok());

  auto reopened = FieldDatabase::Open(prefix_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->method(), GetParam());
  EXPECT_EQ((*reopened)->build_info().num_cells, field->NumCells());
  EXPECT_EQ((*reopened)->value_range(), (*original)->value_range());
  EXPECT_EQ((*reopened)->domain(), (*original)->domain());

  const auto queries = GenerateValueQueries(field->ValueRange(),
                                            WorkloadOptions{0.03, 15, 61});
  for (const ValueInterval& q : queries) {
    ValueQueryResult expected, actual;
    ASSERT_TRUE((*original)->ValueQuery(q, &expected).ok());
    ASSERT_TRUE((*reopened)->ValueQuery(q, &actual).ok());
    EXPECT_NEAR(actual.region.TotalArea(), expected.region.TotalArea(),
                1e-9);
    EXPECT_EQ(actual.stats.candidate_cells, expected.stats.candidate_cells);
    EXPECT_EQ(actual.stats.answer_cells, expected.stats.answer_cells);
  }
}

TEST_P(PersistTest, PointQueriesSurvive) {
  auto field = MakeMonotonicField(16, 16);
  ASSERT_TRUE(field.ok());
  FieldDatabaseOptions options;
  options.method = GetParam();
  auto original = FieldDatabase::Build(*field, options);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE((*original)->Save(prefix_).ok());
  auto reopened = FieldDatabase::Open(prefix_);
  ASSERT_TRUE(reopened.ok());
  for (const Point2 p :
       {Point2{0.1, 0.9}, Point2{0.5, 0.5}, Point2{0.99, 0.01}}) {
    EXPECT_NEAR(*(*reopened)->PointQuery(p), p.x + p.y, 1e-12);
  }
}

TEST_P(PersistTest, UpdatesAfterReopen) {
  auto field = MakeMonotonicField(8, 8);
  ASSERT_TRUE(field.ok());
  FieldDatabaseOptions options;
  options.method = GetParam();
  auto original = FieldDatabase::Build(*field, options);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE((*original)->Save(prefix_).ok());
  auto reopened = FieldDatabase::Open(prefix_);
  ASSERT_TRUE(reopened.ok());

  ASSERT_TRUE(
      (*reopened)->UpdateCellValues(3, {400.0, 400, 400, 400}).ok());
  ValueQueryResult result;
  ASSERT_TRUE(
      (*reopened)->ValueQuery(ValueInterval{399, 401}, &result).ok());
  EXPECT_EQ(result.stats.answer_cells, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, PersistTest,
    ::testing::Values(IndexMethod::kLinearScan, IndexMethod::kIAll,
                      IndexMethod::kIHilbert,
                      IndexMethod::kIntervalQuadtree),
    [](const ::testing::TestParamInfo<IndexMethod>& info) {
      std::string name = IndexMethodName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(PersistErrorsTest, OpenMissingFiles) {
  auto db = FieldDatabase::Open(::testing::TempDir() + "/no_such_db");
  EXPECT_FALSE(db.ok());
}

TEST(PersistErrorsTest, CorruptMetaRejected) {
  const std::string prefix = ::testing::TempDir() + "/fielddb_corrupt";
  std::FILE* f = std::fopen((prefix + ".meta").c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("not-a-catalog at all\n", f);
  std::fclose(f);
  auto db = FieldDatabase::Open(prefix);
  EXPECT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kCorruption);
  std::remove((prefix + ".meta").c_str());
}

// ---------------------------------------------------------------------
// Catalog validation: every numerically absurd value must be rejected as
// kCorruption naming the offending key, never acted on.

std::string ReadTextFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void WriteTextFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::trunc);
  out << contents;
}

// Replaces the first catalog line starting with `key ` by `replacement`
// (which must include the key itself). Returns false if no line matched.
bool ReplaceMetaLine(const std::string& path, const std::string& key,
                     const std::string& replacement) {
  const std::string contents = ReadTextFile(path);
  const std::string prefix = key + " ";
  size_t pos = 0;
  while (pos < contents.size()) {
    const size_t eol = contents.find('\n', pos);
    const size_t end = eol == std::string::npos ? contents.size() : eol;
    if (contents.compare(pos, prefix.size(), prefix) == 0) {
      WriteTextFile(path, contents.substr(0, pos) + replacement +
                              contents.substr(end));
      return true;
    }
    pos = end + 1;
  }
  return false;
}

uint64_t MetaValueOf(const std::string& path, const std::string& key) {
  std::ifstream in(path);
  std::string k;
  uint64_t v = 0;
  while (in >> k) {
    if (k == key) {
      in >> v;
      return v;
    }
    std::getline(in, k);  // skip the rest of the line
  }
  ADD_FAILURE() << "key " << key << " not found in " << path;
  return 0;
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

class MetaValidationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = ::testing::TempDir() + "/fielddb_meta_validation";
    Cleanup();
    auto field = MakeMonotonicField(8, 8);
    ASSERT_TRUE(field.ok());
    FieldDatabaseOptions options;
    options.method = IndexMethod::kIHilbert;  // so the catalog has sf lines
    auto db = FieldDatabase::Build(*field, options);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Save(prefix_).ok());
    meta_path_ = prefix_ + ".meta";
  }
  void TearDown() override { Cleanup(); }
  void Cleanup() {
    for (const char* suffix :
         {".pages", ".meta", ".pages.tmp", ".meta.tmp"}) {
      std::remove((prefix_ + suffix).c_str());
    }
  }

  // Mutates one catalog line and asserts Open reports kCorruption whose
  // message names `expect_in_message`.
  void ExpectRejected(const std::string& key, const std::string& line,
                      const std::string& expect_in_message) {
    ASSERT_TRUE(ReplaceMetaLine(meta_path_, key, line));
    auto db = FieldDatabase::Open(prefix_);
    ASSERT_FALSE(db.ok());
    EXPECT_EQ(db.status().code(), StatusCode::kCorruption);
    EXPECT_NE(db.status().message().find(expect_in_message),
              std::string::npos)
        << db.status().ToString();
  }

  std::string prefix_;
  std::string meta_path_;
};

TEST_F(MetaValidationTest, RejectsZeroPageSize) {
  ExpectRejected("page_size", "page_size 0", "page_size");
}

TEST_F(MetaValidationTest, RejectsAbsurdPageSize) {
  ExpectRejected("page_size", "page_size 4294967295", "page_size");
}

TEST_F(MetaValidationTest, RejectsOutOfRangeMethod) {
  ExpectRejected("method", "method 99", "method");
}

TEST_F(MetaValidationTest, RejectsNonFiniteValueRange) {
  ExpectRejected("value_range", "value_range nan 1", "value_range");
}

TEST_F(MetaValidationTest, RejectsInvertedValueRange) {
  ExpectRejected("value_range", "value_range 5 -5", "value_range");
}

TEST_F(MetaValidationTest, RejectsNonFiniteDomain) {
  ExpectRejected("domain", "domain 0 0 inf 1", "domain");
}

TEST_F(MetaValidationTest, RejectsSubfieldCountMismatch) {
  ExpectRejected("subfields", "subfields 999", "subfields");
}

TEST_F(MetaValidationTest, RejectsInvertedSubfield) {
  ExpectRejected("sf", "sf 5 2 0 1 1", "sf");
}

TEST_F(MetaValidationTest, RejectsNonFiniteSubfieldInterval) {
  ExpectRejected("sf", "sf 0 2 nan 1 1", "sf");
}

TEST_F(MetaValidationTest, RejectsOutOfRangeTreeRoot) {
  ExpectRejected("tree", "tree 999999 1 64 1", "tree");
}

TEST_F(MetaValidationTest, RejectsV1Catalog) {
  const std::string contents = ReadTextFile(meta_path_);
  WriteTextFile(meta_path_,
                "fielddb-meta-v1" + contents.substr(contents.find('\n')));
  auto db = FieldDatabase::Open(prefix_);
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kCorruption);
  EXPECT_NE(db.status().message().find("v1"), std::string::npos);
}

TEST_F(MetaValidationTest, CorruptStorePageFailsOpenWithChecksumError) {
  const uint32_t page_size =
      static_cast<uint32_t>(MetaValueOf(meta_path_, "page_size"));
  const PageId store_page = MetaValueOf(meta_path_, "store_first_page");
  {
    // epoch 0 = skip the epoch check; we want raw byte access only.
    auto f = DiskPageFile::Open(prefix_ + ".pages", page_size, 0);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(
        (*f)->CorruptRawForTest(store_page, kPageHeaderSize + 3, 0x40).ok());
  }
  // The cell store is scanned during attach, so the flip surfaces as a
  // checksum failure at Open, naming the page.
  auto db = FieldDatabase::Open(prefix_);
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kCorruption);
  EXPECT_NE(db.status().message().find("checksum"), std::string::npos)
      << db.status().ToString();
}

// ---------------------------------------------------------------------
// Crash-safe save: an interrupted save must leave the previous snapshot
// fully loadable, and a half-committed one must be detected, not mixed.

class CrashSafetyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = ::testing::TempDir() + "/fielddb_crash_safety";
    Cleanup();
    auto field = MakeMonotonicField(8, 8);
    ASSERT_TRUE(field.ok());
    auto db = FieldDatabase::Build(*field);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    ASSERT_TRUE(db_->Save(prefix_).ok());  // snapshot A
    // Mutate the live database so snapshot B would differ from A.
    ASSERT_TRUE(db_->UpdateCellValues(3, {400.0, 400, 400, 400}).ok());
  }
  void TearDown() override { Cleanup(); }
  void Cleanup() {
    for (const char* suffix :
         {".pages", ".meta", ".pages.tmp", ".meta.tmp"}) {
      std::remove((prefix_ + suffix).c_str());
    }
  }

  // Number of cells with value ~400 in the persisted snapshot.
  uint64_t UpdatedCellsOnDisk() {
    auto reopened = FieldDatabase::Open(prefix_);
    EXPECT_TRUE(reopened.ok()) << reopened.status().ToString();
    if (!reopened.ok()) return ~uint64_t{0};
    ValueQueryResult result;
    EXPECT_TRUE(
        (*reopened)->ValueQuery(ValueInterval{399, 401}, &result).ok());
    return result.stats.answer_cells;
  }

  std::string prefix_;
  std::unique_ptr<FieldDatabase> db_;
};

TEST_F(CrashSafetyTest, InterruptedSaveLeavesOldSnapshotLoadable) {
  // "Crash" after the temp files are durable but before either rename.
  ASSERT_TRUE(db_->SaveCrashBeforeRenameForTest(prefix_).ok());
  EXPECT_TRUE(FileExists(prefix_ + ".pages.tmp"));
  EXPECT_TRUE(FileExists(prefix_ + ".meta.tmp"));
  // Snapshot A is untouched: the update is not visible.
  EXPECT_EQ(UpdatedCellsOnDisk(), 0u);
  // Recovery is simply saving again; the stale temps are overwritten.
  ASSERT_TRUE(db_->Save(prefix_).ok());
  EXPECT_FALSE(FileExists(prefix_ + ".pages.tmp"));
  EXPECT_FALSE(FileExists(prefix_ + ".meta.tmp"));
  EXPECT_EQ(UpdatedCellsOnDisk(), 1u);
}

TEST_F(CrashSafetyTest, LeftoverTempFilesDoNotInterfereWithOpen) {
  WriteTextFile(prefix_ + ".pages.tmp", "garbage from a dead process");
  WriteTextFile(prefix_ + ".meta.tmp", "more garbage");
  EXPECT_EQ(UpdatedCellsOnDisk(), 0u);  // snapshot A opens fine
  ASSERT_TRUE(db_->Save(prefix_).ok());
  EXPECT_EQ(UpdatedCellsOnDisk(), 1u);
}

TEST_F(CrashSafetyTest, CrashBetweenRenamesSelfHealsOnOpen) {
  // Simulate a crash after the pages rename but before the meta rename:
  // new pages (epoch A+1) under the old catalog (epoch A). Open proves
  // `.meta.tmp` describes exactly the pages now in place (epoch match)
  // and completes the interrupted commit itself.
  ASSERT_TRUE(db_->SaveCrashBeforeRenameForTest(prefix_).ok());
  ASSERT_EQ(std::rename((prefix_ + ".pages.tmp").c_str(),
                        (prefix_ + ".pages").c_str()),
            0);
  EXPECT_EQ(UpdatedCellsOnDisk(), 1u);  // snapshot B, healed
  // The heal consumed the temp catalog (renamed into place).
  EXPECT_FALSE(FileExists(prefix_ + ".meta.tmp"));
  // And the healed state is stable: a second open sees the same thing.
  EXPECT_EQ(UpdatedCellsOnDisk(), 1u);
}

TEST_F(CrashSafetyTest, SaveWithCrashPointMatrix) {
  // Every interruption point of the Save pipeline leaves a loadable
  // database: the old snapshot for points before the pages rename, the
  // new one from there on.
  using CP = FieldDatabase::SaveCrashPoint;
  const struct {
    CP point;
    uint64_t expect_updated;
  } kCases[] = {
      {CP::kMidPagesTmp, 0},     // torn temp file, snapshot A intact
      {CP::kBeforeRename, 0},    // both temps durable, nothing committed
      {CP::kBetweenRenames, 1},  // half-committed; Open self-heals to B
  };
  for (const auto& c : kCases) {
    SCOPED_TRACE(static_cast<int>(c.point));
    SetUp();  // fresh snapshot A + one in-memory update
    ASSERT_TRUE(db_->SaveWithCrashPointForTest(prefix_, c.point).ok());
    EXPECT_EQ(UpdatedCellsOnDisk(), c.expect_updated);
  }
}

}  // namespace
}  // namespace fielddb

// Multi-threaded hammer tests for the sharded buffer pool: many readers
// over a working set far larger than the pool, so fetch/pin/evict/
// write-back race constantly. Assertions run on atomics collected by the
// worker threads and are checked after join (gtest expectations are not
// thread-safe).
#include "storage/buffer_pool.h"

#include <atomic>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "storage/fault_injection.h"
#include "storage/io_sink.h"
#include "storage/io_stats.h"

namespace fielddb {
namespace {

uint64_t TagFor(PageId id) { return id * 2654435761ull + 17; }

// Allocates `n` pages through the pool, each stamped with its tag, then
// flushes and clears so the hammer starts from a cold cache.
void SeedPages(BufferPool& pool, int n, std::vector<PageId>* ids) {
  for (int i = 0; i < n; ++i) {
    PinnedPage pin;
    StatusOr<PageId> id = pool.Allocate(&pin);
    ASSERT_TRUE(id.ok());
    pin.MutablePage().WriteAt<uint64_t>(0, TagFor(*id));
    ids->push_back(*id);
  }
  ASSERT_TRUE(pool.Flush().ok());
  ASSERT_TRUE(pool.Clear().ok());
  pool.ResetStats();
}

TEST(BufferPoolConcurrencyTest, ShardedFetchHammerKeepsContentsAndCounts) {
  MemPageFile file(256);
  // 512 pages through 64 frames in 8 shards: every thread's fetch storm
  // evicts pages other threads are about to read.
  BufferPool pool(&file, 64, 8);
  ASSERT_EQ(pool.num_shards(), 8u);
  std::vector<PageId> ids;
  SeedPages(pool, 512, &ids);

  // Page-content access follows the pool's contract — any number of
  // concurrent readers, or one writer with the page to itself. The
  // first kShared pages are read-only and verified by everyone; the
  // rest are write targets partitioned by thread (index % kThreads), so
  // dirty marking and eviction write-back run hot without two threads
  // ever touching one page's bytes with a writer involved.
  constexpr size_t kShared = 256;
  constexpr int kThreads = 8;
  constexpr int kIters = 4000;
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> mismatches{0};
  std::vector<IoStats> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Per-thread sink: this thread's I/O lands in per_thread[t] only.
      ScopedIoSink sink(&per_thread[t]);
      std::mt19937_64 rng(1000 + t);
      const size_t owned = (ids.size() - kShared) / kThreads;
      std::uniform_int_distribution<size_t> pick(0, kShared + owned - 1);
      for (int i = 0; i < kIters; ++i) {
        const size_t r = pick(rng);
        const bool own = r >= kShared;
        const size_t idx = own ? kShared + (r - kShared) * kThreads + t : r;
        const PageId id = ids[idx];
        PinnedPage pin;
        if (!pool.Fetch(id, &pin).ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (pin.page().ReadAt<uint64_t>(0) != TagFor(id)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        if (own) {
          // Same-value rewrite on a thread-owned page: marks the frame
          // dirty so concurrent evictions exercise write-back without
          // changing what the final verification expects.
          pin.MutablePage().WriteAt<uint64_t>(0, TagFor(id));
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_LE(pool.num_frames(), pool.capacity());

  // The pool-wide counters are atomic RMW: the logical-read total is
  // exact, and the per-thread sinks partition it exactly.
  const IoStats total = pool.stats();
  EXPECT_EQ(total.logical_reads, static_cast<uint64_t>(kThreads) * kIters);
  IoStats merged;
  for (const IoStats& s : per_thread) merged += s;
  EXPECT_EQ(merged.logical_reads, total.logical_reads);
  EXPECT_EQ(merged.physical_reads, total.physical_reads);
  EXPECT_EQ(merged.writes, total.writes);

  // Nothing was lost through the eviction/write-back storm.
  ASSERT_TRUE(pool.Flush().ok());
  for (const PageId id : ids) {
    Page raw(256);
    ASSERT_TRUE(file.Read(id, &raw).ok());
    EXPECT_EQ(raw.ReadAt<uint64_t>(0), TagFor(id));
  }
}

TEST(BufferPoolConcurrencyTest, ClearRacesWithReaders) {
  MemPageFile file(256);
  BufferPool pool(&file, 32, 4);
  std::vector<PageId> ids;
  SeedPages(pool, 128, &ids);

  constexpr int kReaders = 4;
  constexpr int kIters = 2000;
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<bool> readers_done{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(77 + t);
      std::uniform_int_distribution<size_t> pick(0, ids.size() - 1);
      for (int i = 0; i < kIters; ++i) {
        const PageId id = ids[pick(rng)];
        PinnedPage pin;
        if (!pool.Fetch(id, &pin).ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (pin.page().ReadAt<uint64_t>(0) != TagFor(id)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Clear() concurrently drops whatever is unpinned; pinned frames must
  // survive untouched and later fetches must still see correct bytes.
  std::thread clearer([&] {
    while (!readers_done.load(std::memory_order_acquire)) {
      if (!pool.Clear().ok()) errors.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });
  for (std::thread& th : threads) th.join();
  readers_done.store(true, std::memory_order_release);
  clearer.join();

  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(pool.stats().logical_reads,
            static_cast<uint64_t>(kReaders) * kIters);
}

// Every shard prefetches (one vectored ReadBatch per window, no shard
// lock held during the submission) while every other shard fetches and
// evicts: the install-after-read races and the readahead-invariant
// accounting both run hot.
TEST(BufferPoolConcurrencyTest, PrefetchFetchHammerKeepsContentsAndCounts) {
  MemPageFile file(256);
  BufferPool pool(&file, 64, 8);
  std::vector<PageId> ids;
  SeedPages(pool, 512, &ids);

  constexpr int kThreads = 8;
  constexpr int kIters = 1500;
  constexpr size_t kWindow = 8;
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> mismatches{0};
  std::vector<IoStats> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ScopedIoSink sink(&per_thread[t]);
      std::mt19937_64 rng(3000 + t);
      std::uniform_int_distribution<size_t> pick(0, ids.size() - kWindow);
      for (int i = 0; i < kIters; ++i) {
        const size_t start = pick(rng);
        if (!pool.PrefetchRange(ids[start], kWindow).ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
        for (size_t k = 0; k < kWindow; ++k) {
          const PageId id = ids[start + k];
          PinnedPage pin;
          if (!pool.Fetch(id, &pin).ok()) {
            errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (pin.page().ReadAt<uint64_t>(0) != TagFor(id)) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_LE(pool.num_frames(), pool.capacity());

  // Readahead-invariant accounting: prefetch reads count as the
  // physical reads they replace and never as logical ones, so the
  // logical total is exactly the Fetch count and the per-thread sinks
  // still partition both totals exactly.
  const IoStats total = pool.stats();
  EXPECT_EQ(total.logical_reads,
            static_cast<uint64_t>(kThreads) * kIters * kWindow);
  IoStats merged;
  for (const IoStats& s : per_thread) merged += s;
  EXPECT_EQ(merged.logical_reads, total.logical_reads);
  EXPECT_EQ(merged.physical_reads, total.physical_reads);
}

// The same hammer over a file with a 1% transient read-error rate: the
// pool's retry loop absorbs what hits Fetch, a fault landing inside a
// prefetch batch silently skips that page (Fetch re-reads it), and the
// sink/total accounting stays exact throughout.
TEST(BufferPoolConcurrencyTest, PrefetchFetchHammerAbsorbsTransientFaults) {
  MemPageFile base(256);
  FaultInjectionOptions fo;
  fo.seed = 404;
  fo.read_error_prob = 0.01;
  FaultInjectingPageFile faulty(&base, fo);
  BufferPool pool(&faulty, 64, 8);
  std::vector<PageId> ids;
  SeedPages(pool, 256, &ids);

  constexpr int kThreads = 8;
  constexpr int kIters = 600;
  constexpr size_t kWindow = 8;
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> mismatches{0};
  std::vector<IoStats> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ScopedIoSink sink(&per_thread[t]);
      std::mt19937_64 rng(5000 + t);
      std::uniform_int_distribution<size_t> pick(0, ids.size() - kWindow);
      for (int i = 0; i < kIters; ++i) {
        const size_t start = pick(rng);
        if (!pool.PrefetchRange(ids[start], kWindow).ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
        for (size_t k = 0; k < kWindow; ++k) {
          const PageId id = ids[start + k];
          PinnedPage pin;
          if (!pool.Fetch(id, &pin).ok()) {
            errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (pin.page().ReadAt<uint64_t>(0) != TagFor(id)) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // (A Fetch fails only after 1 + kMaxReadRetries independent 1% draws
  // all fault — P ≈ 1e-8 per fetch, ~4e-4 expected across the run.)
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  const IoStats total = pool.stats();
  EXPECT_EQ(total.logical_reads,
            static_cast<uint64_t>(kThreads) * kIters * kWindow);
  EXPECT_EQ(total.failed_reads, 0u);
  IoStats merged;
  for (const IoStats& s : per_thread) merged += s;
  EXPECT_EQ(merged.logical_reads, total.logical_reads);
  EXPECT_EQ(merged.physical_reads, total.physical_reads);
  EXPECT_EQ(merged.read_retries, total.read_retries);
}

}  // namespace
}  // namespace fielddb

// Trace-v2 recorder tests: lock-free per-thread ring buffers under real
// concurrency. The multi-threaded cases run under ThreadSanitizer via
// tools/run_sanitizers.sh tsan (labels "concurrency" and "obs") — the
// seqlock slot protocol must be clean there, not just correct here.

#include "obs/trace_buffer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace fielddb {
namespace {

// Every test shares the process-global buffer (TraceScope has no other
// sink), so each restores the disabled state and clears retained events.
class TraceBufferTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceBuffer::Global().Clear();
    TraceBuffer::set_enabled(true);
  }
  void TearDown() override {
    TraceBuffer::set_enabled(false);
    TraceBuffer::Global().set_ring_capacity(
        TraceBuffer::kDefaultRingCapacity);
    TraceBuffer::Global().Clear();
  }
};

TEST_F(TraceBufferTest, DisabledRecordsNothing) {
  TraceBuffer::set_enabled(false);
  const uint64_t before = TraceBuffer::Global().total_recorded();
  {
    TraceScope span("test.disabled", "test");
    span.set_items(3);
  }
  EXPECT_EQ(TraceBuffer::Global().total_recorded(), before);
}

TEST_F(TraceBufferTest, ScopeRoundTrip) {
  {
    TraceScope span("test.roundtrip", "test");
    span.set_items(7);
  }
  bool found = false;
  for (const TraceEvent& e : TraceBuffer::Global().Snapshot()) {
    if (std::string(e.name) != "test.roundtrip") continue;
    found = true;
    EXPECT_STREQ(e.category, "test");
    EXPECT_EQ(e.items, 7u);
    EXPECT_GT(e.tid, 0u);
  }
  EXPECT_TRUE(found);
}

TEST_F(TraceBufferTest, NoSpanLossBelowRingCapacity) {
  // Each thread gets a fresh ring (rings are created on first record),
  // records fewer events than the ring holds, and every single one must
  // come back out — recording is wait-free but never lossy under
  // capacity.
  TraceBuffer& tb = TraceBuffer::Global();
  tb.set_ring_capacity(256);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;  // < 256
  const uint64_t recorded_before = tb.total_recorded();
  const uint64_t dropped_before = tb.total_dropped();

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tb] {
      for (int i = 0; i < kPerThread; ++i) {
        tb.Record("test.concurrent", "test", static_cast<uint64_t>(i), 1,
                  static_cast<uint64_t>(i));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(tb.total_recorded() - recorded_before,
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(tb.total_dropped(), dropped_before);

  std::map<uint32_t, uint64_t> per_tid;
  for (const TraceEvent& e : tb.Snapshot()) {
    if (std::string(e.name) == "test.concurrent") ++per_tid[e.tid];
  }
  uint64_t total = 0;
  for (const auto& [tid, n] : per_tid) {
    EXPECT_EQ(n, static_cast<uint64_t>(kPerThread)) << "tid " << tid;
    total += n;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST_F(TraceBufferTest, DropOldestAccountingAboveCapacity) {
  // Over-fill each fresh ring: the newest `capacity` events survive per
  // thread and the overflow is counted exactly — drop-oldest, never
  // silent.
  TraceBuffer& tb = TraceBuffer::Global();
  constexpr size_t kCapacity = 64;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 300;  // > 64
  tb.set_ring_capacity(kCapacity);
  const uint64_t dropped_before = tb.total_dropped();

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tb] {
      for (int i = 0; i < kPerThread; ++i) {
        tb.Record("test.overflow", "test", static_cast<uint64_t>(i), 1,
                  static_cast<uint64_t>(i));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(tb.total_dropped() - dropped_before,
            static_cast<uint64_t>(kThreads) * (kPerThread - kCapacity));

  // Retained events are exactly the newest kCapacity per thread: items
  // carries the sequence number, so the survivors of each ring are the
  // tail [kPerThread - kCapacity, kPerThread).
  std::map<uint32_t, std::vector<uint64_t>> kept;
  for (const TraceEvent& e : tb.Snapshot()) {
    if (std::string(e.name) == "test.overflow") kept[e.tid].push_back(e.items);
  }
  int overflow_rings = 0;
  for (const auto& [tid, items] : kept) {
    if (items.size() != kCapacity) continue;  // another test's ring
    ++overflow_rings;
    for (const uint64_t seq : items) {
      EXPECT_GE(seq, static_cast<uint64_t>(kPerThread) - kCapacity)
          << "tid " << tid << " kept a dropped event";
      EXPECT_LT(seq, static_cast<uint64_t>(kPerThread));
    }
  }
  EXPECT_EQ(overflow_rings, kThreads);
}

TEST_F(TraceBufferTest, ConcurrentExportIsSafe) {
  // Readers race writers over wrapping rings: Snapshot must neither
  // crash nor return torn events (checked via the items==ts invariant
  // the writers maintain). TSan-clean by the seqlock protocol.
  TraceBuffer& tb = TraceBuffer::Global();
  tb.set_ring_capacity(32);  // small, so wrap-around races are constant
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};

  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      for (uint64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        tb.Record("test.race", "test", i, 1, i);
      }
    });
  }
  std::thread reader([&] {
    for (int pass = 0; pass < 200; ++pass) {
      for (const TraceEvent& e : tb.Snapshot()) {
        if (std::string(e.name) == "test.race" && e.ts_ns != e.items) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });
  reader.join();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& th : writers) th.join();
  EXPECT_EQ(torn.load(), 0u);
}

TEST_F(TraceBufferTest, ChromeExportShape) {
  {
    TraceScope span("test.export", "test");
    span.set_items(5);
  }
  const std::string json = TraceBuffer::Global().ExportChromeTrace();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"test.export\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"test\""), std::string::npos);
  EXPECT_NE(json.find("\"schema\": \"fielddb-trace-v2\""),
            std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\""), std::string::npos);

  const std::string path = "trace_buffer_test_export.json";
  ASSERT_TRUE(TraceBuffer::Global().WriteChromeTrace(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}

TEST_F(TraceBufferTest, ClearResetsAccounting) {
  TraceBuffer& tb = TraceBuffer::Global();
  tb.Record("test.clear", "test", 1, 1);
  EXPECT_GT(tb.total_recorded(), 0u);
  tb.Clear();
  EXPECT_EQ(tb.total_recorded(), 0u);
  EXPECT_EQ(tb.total_dropped(), 0u);
  for (const TraceEvent& e : tb.Snapshot()) {
    EXPECT_STRNE(e.name, "test.clear");
  }
}

}  // namespace
}  // namespace fielddb

// WAL-backed crash recovery for the extension engines (vector, volume,
// temporal), mirroring the grid's recovery_test: acked updates survive
// power cuts, unlogged updates are lost (correctly), the checkpoint
// crash matrix never loses acked state, and stale frames are skipped.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "temporal/temporal_index.h"
#include "vector/vector_index.h"
#include "volume/volume_index.h"

namespace fielddb {
namespace {

void Cleanup(const std::string& prefix) {
  for (const char* suffix :
       {".pages", ".meta", ".pages.tmp", ".meta.tmp", ".wal"}) {
    std::remove((prefix + suffix).c_str());
  }
}

// --- Volume ----------------------------------------------------------

class VolumeRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = ::testing::TempDir() + "/fielddb_ext_rec_vol";
    Cleanup(prefix_);
    VolumeFractalOptions fo;
    fo.nx = fo.ny = fo.nz = 4;
    auto field = MakeFractalVolume(fo);
    ASSERT_TRUE(field.ok());
    auto db = VolumeFieldDatabase::Build(*field, {});
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE((*db)->Save(prefix_).ok());  // checkpoint, epoch 1
  }
  void TearDown() override { Cleanup(prefix_); }

  std::unique_ptr<VolumeFieldDatabase> OpenWal(
      WalMode mode = WalMode::kFsyncOnCommit,
      EngineRecoveryReport* report = nullptr) {
    VolumeFieldDatabase::OpenOptions options;
    options.wal_mode = mode;
    options.recovery_report = report;
    auto db = VolumeFieldDatabase::Open(prefix_, options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return db.ok() ? std::move(*db) : nullptr;
  }

  // Voxels answering the marker band [699, 701] (update writes 700s).
  uint64_t MarkerCount(VolumeFieldDatabase* db) {
    VolumeQueryResult result;
    EXPECT_TRUE(db->BandQuery(ValueInterval{699, 701}, &result).ok());
    return result.stats.answer_cells;
  }

  std::string prefix_;
};

TEST_F(VolumeRecoveryTest, AckedUpdateSurvivesPowerCut) {
  auto db = OpenWal();
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(
      db->UpdateVoxelValues(7, std::vector<double>(8, 700.0)).ok());
  ASSERT_TRUE(db->SimulateCrashForTest().ok());
  db.reset();

  EngineRecoveryReport report;
  auto recovered = OpenWal(WalMode::kFsyncOnCommit, &report);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(report.frames_replayed, 1u);
  EXPECT_EQ(report.stale_frames, 0u);
  EXPECT_TRUE(report.corrupt_pages.empty());
  EXPECT_EQ(MarkerCount(recovered.get()), 1u);
}

TEST_F(VolumeRecoveryTest, UnloggedUpdateIsLostAfterCrash) {
  auto db = OpenWal(WalMode::kOff);
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(
      db->UpdateVoxelValues(7, std::vector<double>(8, 700.0)).ok());
  ASSERT_TRUE(db->SimulateCrashForTest().ok());
  db.reset();

  auto recovered = OpenWal(WalMode::kOff);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(MarkerCount(recovered.get()), 0u);  // nothing promised
}

TEST_F(VolumeRecoveryTest, CheckpointCrashMatrixNeverLosesAckedUpdates) {
  for (const SnapshotCrashPoint point :
       {SnapshotCrashPoint::kMidPagesTmp, SnapshotCrashPoint::kBeforeRename,
        SnapshotCrashPoint::kBetweenRenames,
        SnapshotCrashPoint::kBeforeWalTruncate}) {
    SCOPED_TRACE(static_cast<int>(point));
    SetUp();
    auto db = OpenWal();
    ASSERT_NE(db, nullptr);
    ASSERT_TRUE(
        db->UpdateVoxelValues(7, std::vector<double>(8, 700.0)).ok());
    ASSERT_TRUE(db->SaveWithCrashPointForTest(prefix_, point).ok());
    ASSERT_TRUE(db->SimulateCrashForTest().ok());
    db.reset();

    auto recovered = OpenWal();
    ASSERT_NE(recovered, nullptr);
    EXPECT_EQ(MarkerCount(recovered.get()), 1u);
  }
}

TEST_F(VolumeRecoveryTest, StaleFramesAreSkippedNotReplayed) {
  auto db = OpenWal();
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(
      db->UpdateVoxelValues(7, std::vector<double>(8, 700.0)).ok());
  ASSERT_TRUE(db->SaveWithCrashPointForTest(
                    prefix_, SnapshotCrashPoint::kBeforeWalTruncate)
                  .ok());
  ASSERT_TRUE(db->SimulateCrashForTest().ok());
  db.reset();

  EngineRecoveryReport report;
  auto recovered = OpenWal(WalMode::kFsyncOnCommit, &report);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(report.frames_replayed, 0u);
  EXPECT_EQ(report.stale_frames, 1u);
  EXPECT_EQ(MarkerCount(recovered.get()), 1u);
}

TEST_F(VolumeRecoveryTest, WalOffFoldsPendingFramesIntoCheckpoint) {
  auto db = OpenWal();
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(
      db->UpdateVoxelValues(7, std::vector<double>(8, 700.0)).ok());
  ASSERT_TRUE(db->SimulateCrashForTest().ok());
  db.reset();

  // Opening with the WAL disabled must not drop the durable frames:
  // they are folded into a fresh checkpoint and the log is deleted.
  EngineRecoveryReport report;
  auto folded = OpenWal(WalMode::kOff, &report);
  ASSERT_NE(folded, nullptr);
  EXPECT_TRUE(report.folded);
  EXPECT_EQ(MarkerCount(folded.get()), 1u);
  folded.reset();

  auto reopened = OpenWal(WalMode::kOff);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(MarkerCount(reopened.get()), 1u);
}

// --- Vector ----------------------------------------------------------

class VectorRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = ::testing::TempDir() + "/fielddb_ext_rec_vec";
    Cleanup(prefix_);
    std::vector<double> su, sv;
    const uint32_t n = 8;
    for (uint32_t j = 0; j <= n; ++j) {
      for (uint32_t i = 0; i <= n; ++i) {
        su.push_back(static_cast<double>(i) / n);
        sv.push_back(static_cast<double>(j) / n);
      }
    }
    auto field =
        VectorGridField::Create(n, n, Rect2{{0, 0}, {1, 1}}, su, sv);
    ASSERT_TRUE(field.ok());
    auto db = VectorFieldDatabase::Build(*field, {});
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE((*db)->Save(prefix_).ok());
  }
  void TearDown() override { Cleanup(prefix_); }

  std::unique_ptr<VectorFieldDatabase> OpenWal(
      WalMode mode = WalMode::kFsyncOnCommit,
      EngineRecoveryReport* report = nullptr) {
    VectorFieldDatabase::OpenOptions options;
    options.wal_mode = mode;
    options.recovery_report = report;
    auto db = VectorFieldDatabase::Open(prefix_, options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return db.ok() ? std::move(*db) : nullptr;
  }

  uint64_t MarkerCount(VectorFieldDatabase* db) {
    VectorBandQuery marker;
    marker.u = ValueInterval{299, 301};
    marker.v = ValueInterval{-301, -299};
    VectorQueryResult result;
    EXPECT_TRUE(db->BandQuery(marker, &result).ok());
    return result.stats.answer_cells;
  }

  Status ApplyMarker(VectorFieldDatabase* db) {
    return db->UpdateCellValues(5, std::vector<double>(4, 300.0),
                                std::vector<double>(4, -300.0));
  }

  std::string prefix_;
};

TEST_F(VectorRecoveryTest, AckedUpdateSurvivesPowerCut) {
  auto db = OpenWal();
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(ApplyMarker(db.get()).ok());
  ASSERT_TRUE(db->SimulateCrashForTest().ok());
  db.reset();

  EngineRecoveryReport report;
  auto recovered = OpenWal(WalMode::kFsyncOnCommit, &report);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(report.frames_replayed, 1u);
  EXPECT_EQ(MarkerCount(recovered.get()), 1u);
}

TEST_F(VectorRecoveryTest, CheckpointCrashMatrixNeverLosesAckedUpdates) {
  for (const SnapshotCrashPoint point :
       {SnapshotCrashPoint::kMidPagesTmp, SnapshotCrashPoint::kBeforeRename,
        SnapshotCrashPoint::kBetweenRenames,
        SnapshotCrashPoint::kBeforeWalTruncate}) {
    SCOPED_TRACE(static_cast<int>(point));
    SetUp();
    auto db = OpenWal();
    ASSERT_NE(db, nullptr);
    ASSERT_TRUE(ApplyMarker(db.get()).ok());
    ASSERT_TRUE(db->SaveWithCrashPointForTest(prefix_, point).ok());
    ASSERT_TRUE(db->SimulateCrashForTest().ok());
    db.reset();

    auto recovered = OpenWal();
    ASSERT_NE(recovered, nullptr);
    EXPECT_EQ(MarkerCount(recovered.get()), 1u);
  }
}

TEST_F(VectorRecoveryTest, TornFrameKeepsCommittedPrefix) {
  auto db = OpenWal();
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(ApplyMarker(db.get()).ok());
  db->wal()->ArmShortAppendForTest(0, 16);  // tear the second frame
  EXPECT_FALSE(db->UpdateCellValues(6, std::vector<double>(4, 800.0),
                                    std::vector<double>(4, 800.0))
                   .ok());
  ASSERT_TRUE(db->SimulateCrashForTest().ok());
  db.reset();

  EngineRecoveryReport report;
  auto recovered = OpenWal(WalMode::kFsyncOnCommit, &report);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(report.frames_replayed, 1u);
  EXPECT_EQ(report.torn_bytes, 16u);
  EXPECT_EQ(MarkerCount(recovered.get()), 1u);
  VectorBandQuery torn;
  torn.u = ValueInterval{799, 801};
  torn.v = ValueInterval{799, 801};
  VectorQueryResult result;
  ASSERT_TRUE(recovered->BandQuery(torn, &result).ok());
  EXPECT_EQ(result.stats.answer_cells, 0u);
}

// --- Temporal --------------------------------------------------------

class TemporalRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = ::testing::TempDir() + "/fielddb_ext_rec_temp";
    Cleanup(prefix_);
    const uint32_t n = 6;
    std::vector<std::vector<double>> snapshots(3);
    for (uint32_t k = 0; k < 3; ++k) {
      for (uint32_t j = 0; j <= n; ++j) {
        for (uint32_t i = 0; i <= n; ++i) {
          snapshots[k].push_back(static_cast<double>(i + j) + 10.0 * k);
        }
      }
    }
    auto field = TemporalGridField::Create(n, n, Rect2{{0, 0}, {1, 1}},
                                           std::move(snapshots));
    ASSERT_TRUE(field.ok());
    auto db = TemporalFieldDatabase::Build(*field, {});
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE((*db)->Save(prefix_).ok());
  }
  void TearDown() override { Cleanup(prefix_); }

  std::unique_ptr<TemporalFieldDatabase> OpenWal(
      WalMode mode = WalMode::kFsyncOnCommit,
      EngineRecoveryReport* report = nullptr) {
    TemporalFieldDatabase::OpenOptions options;
    options.wal_mode = mode;
    options.recovery_report = report;
    auto db = TemporalFieldDatabase::Open(prefix_, options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return db.ok() ? std::move(*db) : nullptr;
  }

  // Cells answering the marker band around 900 at snapshot time 1.
  uint64_t MarkerCount(TemporalFieldDatabase* db) {
    ValueQueryResult result;
    EXPECT_TRUE(
        db->SnapshotValueQuery(1.0, ValueInterval{899, 901}, &result).ok());
    return result.stats.answer_cells;
  }

  std::string prefix_;
};

TEST_F(TemporalRecoveryTest, AckedUpdateSurvivesPowerCut) {
  auto db = OpenWal();
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(db->UpdateSnapshotCellValues(1, 5,
                                           std::vector<double>(4, 900.0))
                  .ok());
  ASSERT_TRUE(db->SimulateCrashForTest().ok());
  db.reset();

  EngineRecoveryReport report;
  auto recovered = OpenWal(WalMode::kFsyncOnCommit, &report);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(report.frames_replayed, 1u);
  EXPECT_GE(MarkerCount(recovered.get()), 1u);
}

TEST_F(TemporalRecoveryTest, CheckpointCrashMatrixNeverLosesAckedUpdates) {
  for (const SnapshotCrashPoint point :
       {SnapshotCrashPoint::kMidPagesTmp, SnapshotCrashPoint::kBeforeRename,
        SnapshotCrashPoint::kBetweenRenames,
        SnapshotCrashPoint::kBeforeWalTruncate}) {
    SCOPED_TRACE(static_cast<int>(point));
    SetUp();
    auto db = OpenWal();
    ASSERT_NE(db, nullptr);
    ASSERT_TRUE(db->UpdateSnapshotCellValues(1, 5,
                                             std::vector<double>(4, 900.0))
                    .ok());
    ASSERT_TRUE(db->SaveWithCrashPointForTest(prefix_, point).ok());
    ASSERT_TRUE(db->SimulateCrashForTest().ok());
    db.reset();

    auto recovered = OpenWal();
    ASSERT_NE(recovered, nullptr);
    EXPECT_GE(MarkerCount(recovered.get()), 1u);
  }
}

TEST_F(TemporalRecoveryTest, ReplayRefreshesBothBorderingSlabs) {
  auto db = OpenWal();
  ASSERT_NE(db, nullptr);
  // Snapshot 1 borders slabs 0 and 1; after recovery both must reflect
  // the new samples (queries just inside each slab see the marker).
  ASSERT_TRUE(db->UpdateSnapshotCellValues(1, 5,
                                           std::vector<double>(4, 900.0))
                  .ok());
  ASSERT_TRUE(db->SimulateCrashForTest().ok());
  db.reset();

  auto recovered = OpenWal();
  ASSERT_NE(recovered, nullptr);
  for (const double t : {0.9, 1.1}) {
    SCOPED_TRACE(t);
    ValueQueryResult result;
    ASSERT_TRUE(recovered
                    ->SnapshotValueQuery(t, ValueInterval{500, 1000},
                                         &result)
                    .ok());
    EXPECT_GE(result.stats.answer_cells, 1u);
  }
}

TEST_F(TemporalRecoveryTest, UpdateValidatesBeforeLogging) {
  auto db = OpenWal();
  ASSERT_NE(db, nullptr);
  EXPECT_EQ(db->UpdateSnapshotCellValues(99, 0, {1, 1, 1, 1}).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(db->UpdateSnapshotCellValues(1, 999999, {1, 1, 1, 1}).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(db->UpdateSnapshotCellValues(1, 0, {1, 1}).code(),
            StatusCode::kInvalidArgument);
  // None of the rejected updates reached the log.
  ASSERT_NE(db->wal(), nullptr);
  EXPECT_EQ(db->wal()->size_bytes(), 0u);
}

}  // namespace
}  // namespace fielddb

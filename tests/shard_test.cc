// Shard-count differential suite for the shard-per-core serving layer
// (DESIGN.md §18): the router's answers must be independent of the
// shard count — N=2/4/8 bit-identical to N=1 across every index method
// and planner mode — the merged IoStats must equal the sum of the
// per-shard contributions, and recovery must replay WAL updates that
// landed in different shards.

#include "core/shard_router.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "gen/fractal.h"
#include "gen/workload.h"

namespace fielddb {
namespace {

GridField MakeTestField() {
  FractalOptions fo;
  fo.size_exp = 5;  // 32x32 cells: every shard count up to 8 is honest
  fo.roughness_h = 0.4;
  auto field = MakeFractalField(fo);
  EXPECT_TRUE(field.ok());
  return *field;
}

std::vector<ValueInterval> TestQueries(const ValueInterval& range) {
  // Random workload plus the edges the random draw misses: the full
  // range, a degenerate interval, and a band outside the range (every
  // shard must be skipped and the answer must still be exact: empty).
  std::vector<ValueInterval> queries =
      GenerateValueQueries(range, WorkloadOptions{0.08, 10, 42});
  queries.push_back(range);
  queries.push_back(ValueInterval{range.min, range.min});
  queries.push_back(ValueInterval{range.max + 10.0, range.max + 11.0});
  return queries;
}

/// Canonical form of a region for order-independent comparison: every
/// piece flattened to its exact vertex doubles, pieces sorted.
std::vector<std::vector<double>> CanonicalPieces(const Region& region) {
  std::vector<std::vector<double>> pieces;
  pieces.reserve(region.pieces.size());
  for (const ConvexPolygon& poly : region.pieces) {
    std::vector<double> flat;
    flat.reserve(poly.vertices.size() * 2);
    for (const Point2& v : poly.vertices) {
      flat.push_back(v.x);
      flat.push_back(v.y);
    }
    pieces.push_back(std::move(flat));
  }
  std::sort(pieces.begin(), pieces.end());
  return pieces;
}

std::vector<std::vector<double>> ExactPieces(const Region& region) {
  std::vector<std::vector<double>> pieces;
  for (const ConvexPolygon& poly : region.pieces) {
    std::vector<double> flat;
    for (const Point2& v : poly.vertices) {
      flat.push_back(v.x);
      flat.push_back(v.y);
    }
    pieces.push_back(std::move(flat));
  }
  return pieces;
}

class ShardDifferentialTest : public ::testing::TestWithParam<IndexMethod> {};

TEST_P(ShardDifferentialTest, AnswersIdenticalAcrossShardCounts) {
  const GridField field = MakeTestField();
  const std::vector<ValueInterval> queries = TestQueries(field.ValueRange());

  // Baseline: the 1-shard router (the whole store behind one lane).
  ShardRouterOptions ro;
  ro.db.method = GetParam();
  ro.shards = 1;
  auto baseline = ShardRouter::Build(field, ro);
  ASSERT_TRUE(baseline.ok());

  for (uint32_t shards : {2u, 4u, 8u}) {
    ro.shards = shards;
    auto router = ShardRouter::Build(field, ro);
    ASSERT_TRUE(router.ok());
    ASSERT_EQ((*router)->num_shards(), shards);

    // The partition is contiguous in Hilbert-key order.
    for (uint32_t k = 0; k + 1 < shards; ++k) {
      EXPECT_LE((*router)->shard(k).descriptor().key_end,
                (*router)->shard(k + 1).descriptor().key_begin);
    }

    for (const PlannerMode mode :
         {PlannerMode::kAuto, PlannerMode::kForceScan,
          PlannerMode::kForceIndex}) {
      (*baseline)->set_planner_mode(mode);
      (*router)->set_planner_mode(mode);
      for (const ValueInterval& q : queries) {
        ValueQueryResult expected, actual;
        RouterQueryProfile profile;
        ASSERT_TRUE((*baseline)->ValueQuery(q, &expected).ok());
        ASSERT_TRUE((*router)->ValueQuery(q, &actual, &profile).ok());

        EXPECT_EQ(actual.stats.answer_cells, expected.stats.answer_cells)
            << IndexMethodName(GetParam()) << " " << PlannerModeName(mode)
            << " shards=" << shards << " " << q.ToString();
        EXPECT_EQ(actual.stats.region_pieces, expected.stats.region_pieces);
        // Bit-identical answers: the same pieces, down to the doubles.
        // I-Hilbert additionally guarantees the same piece ORDER — its
        // store order is the global linearization, and the gather
        // concatenates shards in linearization order.
        EXPECT_EQ(CanonicalPieces(actual.region),
                  CanonicalPieces(expected.region));
        if (GetParam() == IndexMethod::kIHilbert) {
          EXPECT_EQ(ExactPieces(actual.region), ExactPieces(expected.region));
        }

        // The merged IoStats are exactly the sum of the per-shard
        // contributions the profile reports.
        IoStats summed;
        uint64_t answer_sum = 0;
        for (const QueryStats& s : profile.per_shard) {
          summed += s.io;
          answer_sum += s.answer_cells;
        }
        EXPECT_EQ(summed.logical_reads, actual.stats.io.logical_reads);
        EXPECT_EQ(summed.physical_reads, actual.stats.io.physical_reads);
        EXPECT_EQ(answer_sum, actual.stats.answer_cells);
        EXPECT_EQ(profile.shards_touched + profile.shards_skipped, shards);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, ShardDifferentialTest,
    ::testing::Values(IndexMethod::kLinearScan, IndexMethod::kIAll,
                      IndexMethod::kIHilbert,
                      IndexMethod::kIntervalQuadtree, IndexMethod::kRowIp),
    [](const ::testing::TestParamInfo<IndexMethod>& info) {
      std::string name = IndexMethodName(info.param);
      name.erase(std::remove_if(name.begin(), name.end(),
                                [](char c) { return !std::isalnum(
                                    static_cast<unsigned char>(c)); }),
                 name.end());
      return name;
    });

TEST(ShardRouterTest, OutOfRangeQuerySkipsEveryShard) {
  const GridField field = MakeTestField();
  ShardRouterOptions ro;
  ro.shards = 4;
  auto router = ShardRouter::Build(field, ro);
  ASSERT_TRUE(router.ok());

  const ValueInterval range = (*router)->value_range();
  QueryStats stats;
  RouterQueryProfile profile;
  ASSERT_TRUE((*router)
                  ->ValueQueryStats(ValueInterval{range.max + 1.0,
                                                  range.max + 2.0},
                                    &stats, &profile)
                  .ok());
  EXPECT_EQ(profile.shards_touched, 0u);
  EXPECT_EQ(profile.shards_skipped, 4u);
  EXPECT_EQ(stats.answer_cells, 0u);
  EXPECT_EQ(stats.io.logical_reads, 0u);
}

TEST(ShardRouterTest, SharedScanMatchesIsolatedExecution) {
  const GridField field = MakeTestField();
  ShardRouterOptions ro;
  ro.shards = 4;
  auto router = ShardRouter::Build(field, ro);
  ASSERT_TRUE(router.ok());

  // Overlapping wide members so the per-shard cost aggregation actually
  // fuses some groups.
  const std::vector<ValueInterval> members =
      GenerateValueQueries((*router)->value_range(),
                           WorkloadOptions{0.5, 8, 7});
  std::vector<QueryStats> shared;
  ASSERT_TRUE((*router)->SharedValueQueryStats(members, &shared).ok());
  ASSERT_EQ(shared.size(), members.size());

  uint64_t shared_logical = 0;
  uint64_t isolated_logical = 0;
  for (size_t i = 0; i < members.size(); ++i) {
    QueryStats isolated;
    ASSERT_TRUE((*router)->ValueQueryStats(members[i], &isolated).ok());
    EXPECT_EQ(shared[i].answer_cells, isolated.answer_cells)
        << members[i].ToString();
    shared_logical += shared[i].io.logical_reads;
    isolated_logical += isolated.io.logical_reads;
  }
  // Leader-charged fused sweeps never read more than isolated runs.
  EXPECT_LE(shared_logical, isolated_logical);
}

TEST(ShardRouterTest, PointQueryAndUpdateRouting) {
  const GridField field = MakeTestField();
  ShardRouterOptions ro;
  ro.shards = 4;
  auto router = ShardRouter::Build(field, ro);
  ASSERT_TRUE(router.ok());

  // Point queries agree with the source field's own interpolation.
  const Rect2 domain = field.Domain();
  const Point2 p{domain.lo.x + domain.Width() * 0.37,
                 domain.lo.y + domain.Height() * 0.61};
  auto direct = field.ValueAt(p);
  ASSERT_TRUE(direct.ok());
  auto routed = (*router)->PointQuery(p);
  ASSERT_TRUE(routed.ok());
  EXPECT_DOUBLE_EQ(*routed, *direct);

  // A global-id update routes to the owning shard and becomes visible
  // through value queries.
  const double w = (*router)->value_range().max + 5.0;
  ASSERT_TRUE((*router)->UpdateCellValues(3, {w, w, w, w}).ok());
  QueryStats stats;
  ASSERT_TRUE((*router)
                  ->ValueQueryStats(ValueInterval{w - 0.5, w + 0.5}, &stats)
                  .ok());
  EXPECT_EQ(stats.answer_cells, 1u);
}

TEST(ShardRouterTest, SaveOpenRoundTripPreservesAnswers) {
  const GridField field = MakeTestField();
  const std::string prefix = "shard_test_roundtrip";
  ShardRouterOptions ro;
  ro.shards = 3;
  std::vector<ValueInterval> queries = TestQueries(field.ValueRange());

  std::vector<uint64_t> expected;
  {
    auto router = ShardRouter::Build(field, ro);
    ASSERT_TRUE(router.ok());
    for (const ValueInterval& q : queries) {
      QueryStats stats;
      ASSERT_TRUE((*router)->ValueQueryStats(q, &stats).ok());
      expected.push_back(stats.answer_cells);
    }
    ASSERT_TRUE((*router)->Save(prefix).ok());
    ASSERT_TRUE((*router)->Close().ok());
  }

  ShardRouter::OpenOptions oo;
  auto reopened = ShardRouter::Open(prefix, oo);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->num_shards(), 3u);
  EXPECT_EQ((*reopened)->num_cells(), field.NumCells());
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryStats stats;
    ASSERT_TRUE((*reopened)->ValueQueryStats(queries[i], &stats).ok());
    EXPECT_EQ(stats.answer_cells, expected[i]) << queries[i].ToString();
  }
  // Updates still route after reopen (the catalog preserved the
  // global->local map).
  const double w = (*reopened)->value_range().max + 7.0;
  ASSERT_TRUE((*reopened)->UpdateCellValues(5, {w, w, w, w}).ok());
  QueryStats stats;
  ASSERT_TRUE((*reopened)
                  ->ValueQueryStats(ValueInterval{w - 0.5, w + 0.5}, &stats)
                  .ok());
  EXPECT_EQ(stats.answer_cells, 1u);
  ASSERT_TRUE((*reopened)->Close().ok());

  for (uint32_t k = 0; k < 3; ++k) {
    const std::string sp = prefix + ".s" + std::to_string(k);
    std::remove((sp + ".pages").c_str());
    std::remove((sp + ".meta").c_str());
    std::remove((sp + ".wal").c_str());
  }
  std::remove((prefix + ".router").c_str());
}

TEST(ShardRouterTest, CrashRecoveryReplaysUpdatesAcrossTwoShards) {
  const GridField field = MakeTestField();
  const std::string prefix = "shard_test_crash";
  ShardRouterOptions ro;
  ro.shards = 2;
  ro.db.wal_mode = WalMode::kFsyncOnCommit;
  ro.wal_prefix = prefix;

  // One update landing in each shard: the first local cell of shard 0
  // and of shard 1, addressed by their GLOBAL ids.
  double w = 0.0;
  CellId g0 = 0, g1 = 0;
  {
    auto router = ShardRouter::Build(field, ro);
    ASSERT_TRUE(router.ok());
    ASSERT_TRUE((*router)->Save(prefix).ok());
    g0 = (*router)->shard(0).descriptor().local_to_global.front();
    g1 = (*router)->shard(1).descriptor().local_to_global.front();
    w = (*router)->value_range().max + 9.0;
    ASSERT_TRUE((*router)->UpdateCellValues(g0, {w, w, w, w}).ok());
    ASSERT_TRUE((*router)->UpdateCellValues(g1, {w, w, w, w}).ok());
    // Power cut: the updates live only in the two shard WALs now.
    ASSERT_TRUE((*router)->SimulateCrashForTest().ok());
  }

  ShardRouter::OpenOptions oo;
  oo.wal_mode = WalMode::kFsyncOnCommit;
  RouterRecoveryReport report;
  oo.recovery_report = &report;
  auto reopened = ShardRouter::Open(prefix, oo);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(report.frames_replayed, 2u);
  EXPECT_EQ(report.shards_with_replay, 2u);

  QueryStats stats;
  ASSERT_TRUE((*reopened)
                  ->ValueQueryStats(ValueInterval{w - 0.5, w + 0.5}, &stats)
                  .ok());
  EXPECT_EQ(stats.answer_cells, 2u);
  ASSERT_TRUE((*reopened)->Close().ok());

  for (uint32_t k = 0; k < 2; ++k) {
    const std::string sp = prefix + ".s" + std::to_string(k);
    std::remove((sp + ".pages").c_str());
    std::remove((sp + ".meta").c_str());
    std::remove((sp + ".wal").c_str());
  }
  std::remove((prefix + ".router").c_str());
}

}  // namespace
}  // namespace fielddb

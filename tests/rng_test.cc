#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace fielddb {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, SmallSeedsAreWellMixed) {
  // SplitMix64 expansion: seed 0 must not produce a degenerate stream.
  Rng r(0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(r.NextU64());
  EXPECT_EQ(seen.size(), 100u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, DoubleRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.NextDouble(-3.0, 5.5);
    EXPECT_GE(d, -3.0);
    EXPECT_LT(d, 5.5);
  }
}

TEST(RngTest, DoubleMeanIsCentered) {
  Rng r(99);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng r(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.NextBounded(7), 7u);
  }
}

TEST(RngTest, BoundedCoversAllResidues) {
  Rng r(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, GaussianMoments) {
  Rng r(11);
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double g = r.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(RngTest, ReseedResetsStream) {
  Rng r(42);
  const uint64_t first = r.NextU64();
  r.NextU64();
  r.Seed(42);
  EXPECT_EQ(r.NextU64(), first);
}

}  // namespace
}  // namespace fielddb

#include "index/subfield.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "index/subfield_maintenance.h"

namespace fielddb {
namespace {

SubfieldCostConfig PaperExampleConfig() {
  // The arithmetic mode of the paper's worked example (Fig. 5): raw
  // interval sizes, no q̄ term.
  SubfieldCostConfig config;
  config.normalize = false;
  config.avg_query_fraction = 0.0;
  return config;
}

TEST(SubfieldCostTest, PaperFig5Example) {
  // Subfield 1 holds cells with intervals of sizes 11, 10, 11, 13 and a
  // hull of size 21. Cost before inserting c5 = 21/45 ≈ 0.466; inserting
  // c5 (interval size 13, growing the hull to size 31) gives
  // 31/58 ≈ 0.534 — so a new subfield starts with c5.
  const SubfieldCostModel model(ValueInterval{0, 100},
                                PaperExampleConfig());
  // Reconstruction matching Fig. 5's arithmetic: cells [20,30], [25,34],
  // [28,38], [28,40]; hull [20,40] has PaperSize 21; then c5 = [10,22]
  // extends the hull to [10,40], PaperSize 31.
  Subfield sf;
  sf.start = 0;
  sf.end = 4;
  sf.interval = ValueInterval{20, 40};
  sf.sum_interval_sizes = 11 + 10 + 11 + 13;

  EXPECT_NEAR(model.Cost(sf.interval, sf.sum_interval_sizes), 21.0 / 45.0,
              1e-12);
  const ValueInterval c5{10, 22};  // PaperSize 13
  const ValueInterval merged = ValueInterval::Hull(sf.interval, c5);
  EXPECT_NEAR(model.Cost(merged, sf.sum_interval_sizes + c5.PaperSize()),
              31.0 / 58.0, 1e-12);
  // Cost increases -> the paper starts Subfield 2 with c5.
  EXPECT_FALSE(model.ShouldAppend(sf, c5));
}

TEST(SubfieldCostTest, SimilarCellLowersCost) {
  const SubfieldCostModel model(ValueInterval{0, 100},
                                PaperExampleConfig());
  Subfield sf;
  sf.interval = ValueInterval{20, 30};
  sf.sum_interval_sizes = 11;
  // An identical interval doubles SI without growing the hull.
  EXPECT_TRUE(model.ShouldAppend(sf, ValueInterval{20, 30}));
}

TEST(SubfieldCostTest, NormalizedModeMatchesScaledRaw) {
  // (L + q̄·R)/SI is scale-free: costs computed on a value range [0, 1]
  // and on [0, 1000] with proportionally scaled intervals order the same
  // way.
  SubfieldCostConfig config;  // normalized, q̄ = 0.5
  const SubfieldCostModel small(ValueInterval{0, 1}, config);
  const SubfieldCostModel large(ValueInterval{0, 1000}, config);
  Subfield sf_small;
  sf_small.interval = ValueInterval{0.2, 0.3};
  sf_small.sum_interval_sizes = (ValueInterval{0.2, 0.3}).PaperSize();
  Subfield sf_large;
  sf_large.interval = ValueInterval{200, 300};
  sf_large.sum_interval_sizes = (ValueInterval{200, 300}).PaperSize();
  EXPECT_EQ(small.ShouldAppend(sf_small, ValueInterval{0.25, 0.35}),
            large.ShouldAppend(sf_large, ValueInterval{250, 350}));
}

TEST(BuildSubfieldsTest, EmptyInput) {
  EXPECT_TRUE(BuildSubfields({}, ValueInterval{0, 1}, {}).empty());
}

TEST(BuildSubfieldsTest, SingleCell) {
  const std::vector<Subfield> sfs =
      BuildSubfields({ValueInterval{1, 2}}, ValueInterval{0, 10}, {});
  ASSERT_EQ(sfs.size(), 1u);
  EXPECT_EQ(sfs[0].start, 0u);
  EXPECT_EQ(sfs[0].end, 1u);
  EXPECT_EQ(sfs[0].interval, (ValueInterval{1, 2}));
}

TEST(BuildSubfieldsTest, PartitionInvariants) {
  Rng rng(8);
  std::vector<ValueInterval> intervals(500);
  double v = 0;
  ValueInterval range = ValueInterval::Empty();
  for (auto& iv : intervals) {
    v += rng.NextGaussian();  // a random walk: spatially correlated values
    iv = ValueInterval::Of(v, v + rng.NextDouble());
    range.Extend(iv);
  }
  const std::vector<Subfield> sfs = BuildSubfields(intervals, range, {});
  ASSERT_FALSE(sfs.empty());

  // Contiguous, ordered, exhaustive.
  EXPECT_EQ(sfs.front().start, 0u);
  EXPECT_EQ(sfs.back().end, intervals.size());
  for (size_t i = 0; i + 1 < sfs.size(); ++i) {
    EXPECT_EQ(sfs[i].end, sfs[i + 1].start);
    EXPECT_LT(sfs[i].start, sfs[i].end);
  }

  // Each subfield's interval is exactly the hull of its members and SI
  // is the sum of member sizes.
  for (const Subfield& sf : sfs) {
    ValueInterval hull = ValueInterval::Empty();
    double si = 0;
    for (uint64_t pos = sf.start; pos < sf.end; ++pos) {
      hull.Extend(intervals[pos]);
      si += intervals[pos].PaperSize();
    }
    EXPECT_EQ(sf.interval, hull);
    EXPECT_NEAR(sf.sum_interval_sizes, si, 1e-9);
  }
}

TEST(BuildSubfieldsTest, SmoothSequenceGroupsAggressively) {
  // Nearly identical intervals should merge into few subfields.
  std::vector<ValueInterval> intervals(1000);
  for (size_t i = 0; i < intervals.size(); ++i) {
    const double base = 50.0 + 0.001 * static_cast<double>(i);
    intervals[i] = ValueInterval{base, base + 1.0};
  }
  const std::vector<Subfield> sfs =
      BuildSubfields(intervals, ValueInterval{0, 100}, {});
  EXPECT_LT(sfs.size(), 20u);
}

TEST(BuildSubfieldsTest, JaggedSequenceSplitsOften) {
  // Alternating far-apart intervals should rarely merge.
  std::vector<ValueInterval> intervals(1000);
  for (size_t i = 0; i < intervals.size(); ++i) {
    const double base = (i % 2 == 0) ? 0.0 : 90.0;
    intervals[i] = ValueInterval{base, base + 1.0};
  }
  SubfieldCostConfig config;
  config.normalize = false;  // raw mode: merging [0,1] with [90,91] is
                             // clearly cost-increasing
  const std::vector<Subfield> jagged =
      BuildSubfields(intervals, ValueInterval{0, 100}, config);

  std::vector<ValueInterval> smooth(1000, ValueInterval{45, 46});
  const std::vector<Subfield> merged =
      BuildSubfields(smooth, ValueInterval{0, 100}, config);
  EXPECT_GT(jagged.size(), 10 * merged.size());
}

TEST(SubfieldContainingTest, BinarySearchOverPartition) {
  std::vector<Subfield> sfs(3);
  sfs[0].start = 0;
  sfs[0].end = 4;
  sfs[1].start = 4;
  sfs[1].end = 5;
  sfs[2].start = 5;
  sfs[2].end = 12;
  EXPECT_EQ(SubfieldContaining(sfs, 0), 0u);
  EXPECT_EQ(SubfieldContaining(sfs, 3), 0u);
  EXPECT_EQ(SubfieldContaining(sfs, 4), 1u);
  EXPECT_EQ(SubfieldContaining(sfs, 5), 2u);
  EXPECT_EQ(SubfieldContaining(sfs, 11), 2u);
}

TEST(BuildSubfieldsTest, LargerQBarGivesFewerSubfields) {
  // A larger assumed query length raises the fixed access cost, which
  // rewards bigger subfields (design-choice ablation #4 in DESIGN.md).
  Rng rng(15);
  std::vector<ValueInterval> intervals(2000);
  double v = 0;
  ValueInterval range = ValueInterval::Empty();
  for (auto& iv : intervals) {
    v += rng.NextGaussian();
    iv = ValueInterval::Of(v, v + 0.5);
    range.Extend(iv);
  }
  SubfieldCostConfig small_q, large_q;
  small_q.avg_query_fraction = 0.05;
  large_q.avg_query_fraction = 0.9;
  const size_t with_small =
      BuildSubfields(intervals, range, small_q).size();
  const size_t with_large =
      BuildSubfields(intervals, range, large_q).size();
  EXPECT_LE(with_large, with_small);
}

}  // namespace
}  // namespace fielddb

#include "common/geometry.h"

#include <gtest/gtest.h>

namespace fielddb {
namespace {

TEST(Point2Test, Arithmetic) {
  const Point2 a{1, 2}, b{3, 5};
  EXPECT_EQ(a + b, (Point2{4, 7}));
  EXPECT_EQ(b - a, (Point2{2, 3}));
  EXPECT_EQ(2.0 * a, (Point2{2, 4}));
  EXPECT_DOUBLE_EQ(Dot(a, b), 13.0);
  EXPECT_DOUBLE_EQ(Cross(a, b), -1.0);
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
}

TEST(Rect2Test, EmptyBehaviour) {
  Rect2 r = Rect2::Empty();
  EXPECT_TRUE(r.IsEmpty());
  EXPECT_DOUBLE_EQ(r.Area(), 0.0);
  r.Extend(Point2{1, 1});
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_EQ(r.lo, (Point2{1, 1}));
  EXPECT_EQ(r.hi, (Point2{1, 1}));
}

TEST(Rect2Test, ExtendAndMetrics) {
  Rect2 r = Rect2::Empty();
  r.Extend(Point2{0, 0});
  r.Extend(Point2{2, 3});
  EXPECT_DOUBLE_EQ(r.Width(), 2.0);
  EXPECT_DOUBLE_EQ(r.Height(), 3.0);
  EXPECT_DOUBLE_EQ(r.Area(), 6.0);
  EXPECT_EQ(r.Center(), (Point2{1, 1.5}));
}

TEST(Rect2Test, ContainsBoundaryInclusive) {
  const Rect2 r{{0, 0}, {1, 1}};
  EXPECT_TRUE(r.Contains({0, 0}));
  EXPECT_TRUE(r.Contains({1, 1}));
  EXPECT_TRUE(r.Contains({0.5, 0.5}));
  EXPECT_FALSE(r.Contains({1.0001, 0.5}));
  EXPECT_FALSE(r.Contains({0.5, -0.0001}));
}

TEST(Rect2Test, IntersectsSharedEdge) {
  const Rect2 a{{0, 0}, {1, 1}};
  const Rect2 b{{1, 0}, {2, 1}};  // shares an edge
  const Rect2 c{{1.5, 1.5}, {2, 2}};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Intersects(a));
}

TEST(Rect2Test, ExtendByEmptyRectIsNoop) {
  Rect2 r{{0, 0}, {1, 1}};
  r.Extend(Rect2::Empty());
  EXPECT_EQ(r, (Rect2{{0, 0}, {1, 1}}));
}

TEST(Triangle2Test, AreaAndOrientation) {
  const Triangle2 ccw{{Point2{0, 0}, Point2{1, 0}, Point2{0, 1}}};
  EXPECT_DOUBLE_EQ(ccw.SignedArea(), 0.5);
  const Triangle2 cw{{Point2{0, 0}, Point2{0, 1}, Point2{1, 0}}};
  EXPECT_DOUBLE_EQ(cw.SignedArea(), -0.5);
  EXPECT_DOUBLE_EQ(cw.Area(), 0.5);
}

TEST(Triangle2Test, BarycentricAtVertices) {
  const Triangle2 t{{Point2{0, 0}, Point2{2, 0}, Point2{0, 2}}};
  const auto l0 = t.Barycentric({0, 0});
  EXPECT_DOUBLE_EQ(l0[0], 1.0);
  EXPECT_DOUBLE_EQ(l0[1], 0.0);
  EXPECT_DOUBLE_EQ(l0[2], 0.0);
  const auto lc = t.Barycentric(t.Centroid());
  EXPECT_NEAR(lc[0], 1.0 / 3, 1e-12);
  EXPECT_NEAR(lc[1], 1.0 / 3, 1e-12);
  EXPECT_NEAR(lc[2], 1.0 / 3, 1e-12);
}

TEST(Triangle2Test, BarycentricSumsToOneOutside) {
  const Triangle2 t{{Point2{0, 0}, Point2{1, 0}, Point2{0, 1}}};
  const auto l = t.Barycentric({5, 5});
  EXPECT_NEAR(l[0] + l[1] + l[2], 1.0, 1e-9);
  EXPECT_FALSE(t.Contains({5, 5}));
}

TEST(Triangle2Test, ContainsEdgeAndInterior) {
  const Triangle2 t{{Point2{0, 0}, Point2{1, 0}, Point2{0, 1}}};
  EXPECT_TRUE(t.Contains({0.25, 0.25}));
  EXPECT_TRUE(t.Contains({0.5, 0}));    // on an edge
  EXPECT_TRUE(t.Contains({0.5, 0.5}));  // on the hypotenuse
  EXPECT_FALSE(t.Contains({0.6, 0.6}));
}

TEST(Triangle2Test, DegenerateBarycentricIsNaN) {
  const Triangle2 t{{Point2{0, 0}, Point2{1, 1}, Point2{2, 2}}};
  const auto l = t.Barycentric({0.5, 0.5});
  EXPECT_TRUE(std::isnan(l[0]));
  EXPECT_FALSE(t.Contains({0.5, 0.5}));
}

TEST(ConvexPolygonTest, AreaShoelace) {
  ConvexPolygon square;
  square.vertices = {{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  EXPECT_DOUBLE_EQ(square.Area(), 4.0);
  // Clockwise orientation still yields positive area.
  ConvexPolygon cw;
  cw.vertices = {{0, 0}, {0, 2}, {2, 2}, {2, 0}};
  EXPECT_DOUBLE_EQ(cw.Area(), 4.0);
}

TEST(ConvexPolygonTest, CentroidOfSquare) {
  ConvexPolygon square = PolygonFromRect(Rect2{{0, 0}, {2, 2}});
  const Point2 c = square.Centroid();
  EXPECT_NEAR(c.x, 1.0, 1e-12);
  EXPECT_NEAR(c.y, 1.0, 1e-12);
}

TEST(ConvexPolygonTest, EmptyPolygon) {
  ConvexPolygon p;
  EXPECT_TRUE(p.IsEmpty());
  EXPECT_DOUBLE_EQ(p.Area(), 0.0);
  EXPECT_TRUE(p.BoundingBox().IsEmpty());
}

TEST(ClipHalfPlaneTest, KeepAll) {
  const ConvexPolygon square = PolygonFromRect(Rect2{{0, 0}, {1, 1}});
  // x >= -1 keeps everything.
  const ConvexPolygon out = ClipHalfPlane(square, 1, 0, 1);
  EXPECT_DOUBLE_EQ(out.Area(), 1.0);
}

TEST(ClipHalfPlaneTest, RemoveAll) {
  const ConvexPolygon square = PolygonFromRect(Rect2{{0, 0}, {1, 1}});
  // x >= 2 removes everything.
  const ConvexPolygon out = ClipHalfPlane(square, 1, 0, -2);
  EXPECT_TRUE(out.IsEmpty());
}

TEST(ClipHalfPlaneTest, HalvesSquare) {
  const ConvexPolygon square = PolygonFromRect(Rect2{{0, 0}, {1, 1}});
  // x >= 0.5.
  const ConvexPolygon out = ClipHalfPlane(square, 1, 0, -0.5);
  EXPECT_NEAR(out.Area(), 0.5, 1e-12);
  for (const Point2& p : out.vertices) EXPECT_GE(p.x, 0.5 - 1e-12);
}

TEST(ClipHalfPlaneTest, DiagonalCut) {
  const ConvexPolygon square = PolygonFromRect(Rect2{{0, 0}, {1, 1}});
  // x + y <= 1  <=>  -x - y + 1 >= 0: keeps the lower-left triangle.
  const ConvexPolygon out = ClipHalfPlane(square, -1, -1, 1);
  EXPECT_NEAR(out.Area(), 0.5, 1e-12);
}

TEST(ClipHalfPlaneTest, SequentialClipsCommute) {
  const ConvexPolygon square = PolygonFromRect(Rect2{{0, 0}, {1, 1}});
  const ConvexPolygon a =
      ClipHalfPlane(ClipHalfPlane(square, 1, 0, -0.25), 0, 1, -0.25);
  const ConvexPolygon b =
      ClipHalfPlane(ClipHalfPlane(square, 0, 1, -0.25), 1, 0, -0.25);
  EXPECT_NEAR(a.Area(), b.Area(), 1e-12);
  EXPECT_NEAR(a.Area(), 0.75 * 0.75, 1e-12);
}

TEST(PolygonFromTriangleTest, NormalizesOrientation) {
  const Triangle2 cw{{Point2{0, 0}, Point2{0, 1}, Point2{1, 0}}};
  const ConvexPolygon p = PolygonFromTriangle(cw);
  // Shoelace on the produced order must be positive (CCW).
  double twice = 0;
  for (size_t i = 0; i < 3; ++i) {
    twice += Cross(p.vertices[i], p.vertices[(i + 1) % 3]);
  }
  EXPECT_GT(twice, 0);
}

}  // namespace
}  // namespace fielddb

// Crash-loop convergence (randomized, deterministic seed): many cycles
// of mutate -> kill at a random pipeline point -> power cut -> reopen.
// Invariant proved per cycle: with wal_mode=fsync_on_commit, every
// acknowledged update is present after recovery — across any number of
// consecutive crashes — and the database always opens cleanly.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/field_database.h"
#include "gen/monotonic.h"
#include "storage/wal.h"

namespace fielddb {
namespace {

constexpr int kCycles = 20;
constexpr int kUpdatesPerCycle = 5;
constexpr uint32_t kGrid = 8;  // 64 cells

class CrashLoopTest : public ::testing::TestWithParam<IndexMethod> {
 protected:
  void SetUp() override {
    prefix_ = ::testing::TempDir() + "/fielddb_crash_loop_" +
              std::to_string(static_cast<int>(GetParam()));
    Cleanup();
  }
  void TearDown() override { Cleanup(); }
  void Cleanup() {
    for (const char* suffix :
         {".pages", ".meta", ".pages.tmp", ".meta.tmp", ".wal"}) {
      std::remove((prefix_ + suffix).c_str());
    }
  }
  std::string prefix_;
};

TEST_P(CrashLoopTest, AckedUpdatesConvergeThroughRepeatedCrashes) {
  auto field = MakeMonotonicField(kGrid, kGrid);
  ASSERT_TRUE(field.ok());
  {
    FieldDatabaseOptions options;
    options.method = GetParam();
    auto db = FieldDatabase::Build(*field, options);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Save(prefix_).ok());
  }

  // Shadow of every acknowledged update: cell -> the distinct marker
  // value its corners were last set to. Marker values are unique per
  // update, all above the field's native range.
  std::map<CellId, double> acked;
  int update_serial = 0;
  Rng rng(20260807);

  for (int cycle = 0; cycle < kCycles; ++cycle) {
    SCOPED_TRACE(cycle);
    FieldDatabase::RecoveryReport report;
    FieldDatabase::OpenOptions options;
    options.wal_mode = WalMode::kFsyncOnCommit;
    options.recovery_report = &report;
    auto opened = FieldDatabase::Open(prefix_, options);
    ASSERT_TRUE(opened.ok()) << "cycle " << cycle << ": "
                             << opened.status().ToString();
    FieldDatabase* db = opened->get();

    // Recovery must have restored every acknowledged update: each
    // marker band holds exactly its one cell, and the count of cells
    // above the native range equals the shadow's size.
    for (const auto& [cell, value] : acked) {
      ValueQueryResult result;
      ASSERT_TRUE(
          db->ValueQuery(ValueInterval{value - 0.5, value + 0.5}, &result)
              .ok());
      EXPECT_EQ(result.stats.answer_cells, 1u)
          << "lost acked update of cell " << cell << " (value " << value
          << ")";
    }
    ValueQueryResult all_updated;
    ASSERT_TRUE(
        db->ValueQuery(ValueInterval{999.0, 1e18}, &all_updated).ok());
    EXPECT_EQ(all_updated.stats.answer_cells, acked.size());

    // Arm one random fault for this cycle, then mutate until the fault
    // fires (first failed update => immediate "process death") or the
    // cycle's quota is done, then cut the power.
    const uint64_t fault_kind = rng.NextBounded(4);
    switch (fault_kind) {
      case 0:  // clean cycle: no fault, crash after the last ack
        break;
      case 1:
        db->wal()->ArmAppendErrorForTest(
            static_cast<int>(rng.NextBounded(kUpdatesPerCycle)));
        break;
      case 2:
        db->wal()->ArmShortAppendForTest(
            static_cast<int>(rng.NextBounded(kUpdatesPerCycle)),
            static_cast<uint32_t>(rng.NextBounded(68)));
        break;
      case 3:
        db->wal()->ArmSyncErrorForTest(1);
        break;
    }
    for (int i = 0; i < kUpdatesPerCycle; ++i) {
      const CellId cell =
          static_cast<CellId>(rng.NextBounded(kGrid * kGrid));
      const double value = 1000.0 + 2.0 * update_serial++;
      const std::vector<double> values(4, value);
      if (db->UpdateCellValues(cell, values).ok()) {
        acked[cell] = value;
      } else {
        break;  // not acknowledged; the "process" dies here
      }
    }
    ASSERT_TRUE(db->SimulateCrashForTest().ok());
  }

  // Final convergence check after the last crash.
  FieldDatabase::OpenOptions options;
  options.wal_mode = WalMode::kFsyncOnCommit;
  auto final_db = FieldDatabase::Open(prefix_, options);
  ASSERT_TRUE(final_db.ok());
  for (const auto& [cell, value] : acked) {
    ValueQueryResult result;
    ASSERT_TRUE((*final_db)
                    ->ValueQuery(ValueInterval{value - 0.5, value + 0.5},
                                 &result)
                    .ok());
    EXPECT_EQ(result.stats.answer_cells, 1u) << "cell " << cell;
  }
  EXPECT_GT(acked.size(), 0u);  // the loop really exercised updates
}

INSTANTIATE_TEST_SUITE_P(
    AllPersistableMethods, CrashLoopTest,
    ::testing::Values(IndexMethod::kLinearScan, IndexMethod::kIAll,
                      IndexMethod::kIHilbert,
                      IndexMethod::kIntervalQuadtree),
    [](const ::testing::TestParamInfo<IndexMethod>& info) {
      std::string name = IndexMethodName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace fielddb

#include "common/interval.h"

#include <gtest/gtest.h>

namespace fielddb {
namespace {

TEST(ValueIntervalTest, EmptyIdentity) {
  const ValueInterval e = ValueInterval::Empty();
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_DOUBLE_EQ(e.Length(), 0.0);
  EXPECT_DOUBLE_EQ(e.PaperSize(), 0.0);
  EXPECT_FALSE(e.Contains(0.0));
}

TEST(ValueIntervalTest, OfNormalizesOrder) {
  const ValueInterval iv = ValueInterval::Of(5.0, 2.0);
  EXPECT_DOUBLE_EQ(iv.min, 2.0);
  EXPECT_DOUBLE_EQ(iv.max, 5.0);
}

TEST(ValueIntervalTest, ContainsClosed) {
  const ValueInterval iv{2.0, 5.0};
  EXPECT_TRUE(iv.Contains(2.0));
  EXPECT_TRUE(iv.Contains(5.0));
  EXPECT_TRUE(iv.Contains(3.3));
  EXPECT_FALSE(iv.Contains(1.999));
  EXPECT_FALSE(iv.Contains(5.001));
}

TEST(ValueIntervalTest, IntersectsSharedEndpoint) {
  const ValueInterval a{0, 2}, b{2, 4}, c{4.1, 5};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(b.Intersects(c) == false);
}

TEST(ValueIntervalTest, DegenerateIntersection) {
  const ValueInterval point{3, 3};
  EXPECT_TRUE(point.Intersects({0, 3}));
  EXPECT_TRUE(point.Intersects({3, 9}));
  EXPECT_FALSE(point.Intersects({3.0001, 9}));
}

TEST(ValueIntervalTest, ExtendValueAndInterval) {
  ValueInterval iv = ValueInterval::Empty();
  iv.Extend(3.0);
  EXPECT_EQ(iv, (ValueInterval{3, 3}));
  iv.Extend(ValueInterval{1, 2});
  EXPECT_EQ(iv, (ValueInterval{1, 3}));
  iv.Extend(ValueInterval::Empty());  // no-op
  EXPECT_EQ(iv, (ValueInterval{1, 3}));
}

TEST(ValueIntervalTest, Hull) {
  const ValueInterval h =
      ValueInterval::Hull(ValueInterval{0, 1}, ValueInterval{5, 9});
  EXPECT_EQ(h, (ValueInterval{0, 9}));
}

TEST(ValueIntervalTest, PaperSizeDefinition) {
  // Section 3.1: I = max - min + 1, and 1 for degenerate intervals (a
  // constant interpolation function).
  EXPECT_DOUBLE_EQ((ValueInterval{20, 30}).PaperSize(), 11.0);
  EXPECT_DOUBLE_EQ((ValueInterval{7, 7}).PaperSize(), 1.0);
}

TEST(ValueIntervalTest, ToString) {
  EXPECT_EQ((ValueInterval{1.5, 2.5}).ToString(), "[1.5, 2.5]");
  EXPECT_EQ(ValueInterval::Empty().ToString(), "[empty]");
}

}  // namespace
}  // namespace fielddb

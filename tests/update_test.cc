#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/rng.h"
#include "core/field_database.h"
#include "gen/fractal.h"
#include "gen/workload.h"
#include "index/i_all.h"
#include "index/i_hilbert.h"
#include "index/interval_quadtree.h"
#include "index/linear_scan.h"
#include "index/row_ip_index.h"
#include "storage/page_file.h"

namespace fielddb {
namespace {

struct IndexFixture {
  std::unique_ptr<MemPageFile> file;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<ValueIndex> index;
};

IndexFixture BuildIndex(IndexMethod method, const Field& field) {
  IndexFixture fx;
  fx.file = std::make_unique<MemPageFile>();
  fx.pool = std::make_unique<BufferPool>(fx.file.get(), 4096);
  switch (method) {
    case IndexMethod::kLinearScan: {
      auto idx = LinearScanIndex::Build(fx.pool.get(), field);
      EXPECT_TRUE(idx.ok());
      fx.index = std::move(idx).value();
      break;
    }
    case IndexMethod::kIAll: {
      auto idx = IAllIndex::Build(fx.pool.get(), field);
      EXPECT_TRUE(idx.ok());
      fx.index = std::move(idx).value();
      break;
    }
    case IndexMethod::kIHilbert: {
      auto idx = IHilbertIndex::Build(fx.pool.get(), field);
      EXPECT_TRUE(idx.ok());
      fx.index = std::move(idx).value();
      break;
    }
    case IndexMethod::kIntervalQuadtree: {
      auto idx = IntervalQuadtreeIndex::Build(fx.pool.get(), field);
      EXPECT_TRUE(idx.ok());
      fx.index = std::move(idx).value();
      break;
    }
    case IndexMethod::kRowIp: {
      auto idx = RowIpIndex::Build(fx.pool.get(), field);
      EXPECT_TRUE(idx.ok());
      fx.index = std::move(idx).value();
      break;
    }
  }
  return fx;
}

// Candidate runs expanded to individual positions for set comparisons.
std::vector<uint64_t> FilterPositions(const ValueIndex& index,
                                      const ValueInterval& q) {
  std::vector<PosRange> ranges;
  EXPECT_TRUE(index.FilterCandidateRanges(q, &ranges).ok());
  std::vector<uint64_t> positions;
  for (const PosRange& r : ranges) {
    for (uint64_t pos = r.begin; pos < r.end; ++pos) {
      positions.push_back(pos);
    }
  }
  return positions;
}

// Ground truth recomputed from the (mutated) store itself.
std::set<uint64_t> StoreGroundTruth(const ValueIndex& index,
                                    const ValueInterval& q) {
  std::set<uint64_t> hits;
  EXPECT_TRUE(index.cell_store()
                  .Scan(0, index.cell_store().size(),
                        [&](uint64_t pos, const CellRecord& cell) {
                          if (cell.Interval().Intersects(q)) {
                            hits.insert(pos);
                          }
                          return true;
                        })
                  .ok());
  return hits;
}

class UpdateTest : public ::testing::TestWithParam<IndexMethod> {};

TEST_P(UpdateTest, SingleUpdateVisibleInStore) {
  FractalOptions fo;
  fo.size_exp = 4;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  IndexFixture fx = BuildIndex(GetParam(), *field);

  const CellId target = 42;
  const std::vector<double> fresh = {100.0, 101.0, 102.0, 103.0};
  ASSERT_TRUE(fx.index->UpdateCellValues(target, fresh).ok());

  CellRecord rec;
  ASSERT_TRUE(fx.index->cell_store()
                  .Get(fx.index->cell_store().PositionOf(target), &rec)
                  .ok());
  EXPECT_EQ(rec.id, target);
  EXPECT_EQ(rec.Interval(), (ValueInterval{100, 103}));
}

TEST_P(UpdateTest, QueriesSeeNewValuesNoFalseNegatives) {
  FractalOptions fo;
  fo.size_exp = 5;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  IndexFixture fx = BuildIndex(GetParam(), *field);

  // Push a scattered batch of cells into a far-away value band, then
  // query that band: every moved cell must be found.
  Rng rng(71);
  std::set<CellId> moved;
  while (moved.size() < 25) {
    const CellId id =
        static_cast<CellId>(rng.NextBounded(field->NumCells()));
    if (!moved.insert(id).second) continue;
    ASSERT_TRUE(fx.index
                    ->UpdateCellValues(
                        id, {50.0 + rng.NextDouble(), 50.5, 51.0,
                             51.0 + rng.NextDouble()})
                    .ok());
  }

  const ValueInterval band{49.5, 52.5};
  std::vector<uint64_t> positions = FilterPositions(*fx.index, band);
  std::set<uint64_t> candidates(positions.begin(), positions.end());
  for (const CellId id : moved) {
    EXPECT_TRUE(candidates.count(fx.index->cell_store().PositionOf(id)))
        << IndexMethodName(GetParam()) << " lost updated cell " << id;
  }
  // And the filtering still covers the store-derived ground truth for
  // ordinary bands.
  const ValueInterval mid{field->ValueRange().min,
                          field->ValueRange().Center()};
  positions = FilterPositions(*fx.index, mid);
  candidates = std::set<uint64_t>(positions.begin(), positions.end());
  for (const uint64_t pos : StoreGroundTruth(*fx.index, mid)) {
    EXPECT_TRUE(candidates.count(pos));
  }
}

TEST_P(UpdateTest, RandomizedUpdateStorm) {
  FractalOptions fo;
  fo.size_exp = 4;  // 256 cells
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  IndexFixture fx = BuildIndex(GetParam(), *field);

  Rng rng(73);
  for (int round = 0; round < 200; ++round) {
    const CellId id =
        static_cast<CellId>(rng.NextBounded(field->NumCells()));
    const double base = rng.NextDouble(-3, 3);
    ASSERT_TRUE(fx.index
                    ->UpdateCellValues(
                        id, {base, base + rng.NextDouble(),
                             base + rng.NextDouble(),
                             base + rng.NextDouble()})
                    .ok());
    if (round % 50 == 49) {
      // Full equivalence check against the mutated store.
      const ValueInterval q =
          ValueInterval::Of(rng.NextDouble(-3, 4), rng.NextDouble(-3, 4));
      const std::vector<uint64_t> positions = FilterPositions(*fx.index, q);
      const std::set<uint64_t> candidates(positions.begin(),
                                          positions.end());
      for (const uint64_t pos : StoreGroundTruth(*fx.index, q)) {
        ASSERT_TRUE(candidates.count(pos))
            << IndexMethodName(GetParam()) << " round " << round;
      }
    }
  }
}

TEST_P(UpdateTest, RejectsBadArguments) {
  FractalOptions fo;
  fo.size_exp = 4;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  IndexFixture fx = BuildIndex(GetParam(), *field);
  // Wrong arity (quads have 4 vertices).
  EXPECT_EQ(fx.index->UpdateCellValues(0, {1.0, 2.0}).code(),
            StatusCode::kInvalidArgument);
  // Unknown cell.
  EXPECT_EQ(
      fx.index->UpdateCellValues(field->NumCells() + 5, {1, 2, 3, 4})
          .code(),
      StatusCode::kOutOfRange);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, UpdateTest,
    ::testing::Values(IndexMethod::kLinearScan, IndexMethod::kIAll,
                      IndexMethod::kIHilbert,
                      IndexMethod::kIntervalQuadtree,
                      IndexMethod::kRowIp),
    [](const ::testing::TestParamInfo<IndexMethod>& info) {
      std::string name = IndexMethodName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(SubfieldUpdateTest, IntervalCanShrink) {
  // An update that pulls the extreme cell back must tighten the subfield
  // interval (the refresh recomputes the hull, it does not just extend).
  FractalOptions fo;
  fo.size_exp = 5;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  IndexFixture fx = BuildIndex(IndexMethod::kIHilbert, *field);
  auto* ih = static_cast<IHilbertIndex*>(fx.index.get());

  // Blow one cell's values far out, then restore them.
  CellRecord before;
  ASSERT_TRUE(ih->cell_store().Get(0, &before).ok());
  const CellId target = before.id;
  const size_t sf_idx = 0;
  const ValueInterval original = ih->subfields()[sf_idx].interval;

  ASSERT_TRUE(
      fx.index->UpdateCellValues(target, {999, 999, 999, 999}).ok());
  EXPECT_GE(ih->subfields()[sf_idx].interval.max, 999.0);

  ASSERT_TRUE(fx.index
                  ->UpdateCellValues(target, {before.w[0], before.w[1],
                                              before.w[2], before.w[3]})
                  .ok());
  EXPECT_EQ(ih->subfields()[sf_idx].interval, original);
  EXPECT_TRUE(ih->tree().CheckInvariants().ok());
}

TEST(DatabaseUpdateTest, EndToEndUpdateChangesAnswers) {
  auto field = MakeFractalField([] {
    FractalOptions fo;
    fo.size_exp = 4;
    return fo;
  }());
  ASSERT_TRUE(field.ok());
  FieldDatabaseOptions options;
  options.method = IndexMethod::kIHilbert;
  auto db = FieldDatabase::Build(*field, options);
  ASSERT_TRUE(db.ok());

  const ValueInterval far_band{500, 510};
  ValueQueryResult result;
  ASSERT_TRUE((*db)->ValueQuery(far_band, &result).ok());
  EXPECT_TRUE(result.region.IsEmpty());

  ASSERT_TRUE(
      (*db)->UpdateCellValues(7, {505.0, 505.0, 505.0, 505.0}).ok());
  ASSERT_TRUE((*db)->ValueQuery(far_band, &result).ok());
  EXPECT_FALSE(result.region.IsEmpty());
  EXPECT_EQ(result.stats.answer_cells, 1u);
  // The whole cell sits at 505: the answer region is the full cell.
  const CellRecord cell = field->GetCell(7);
  EXPECT_NEAR(result.region.TotalArea(), cell.Bounds().Area(), 1e-9);
  // The cached value range was widened.
  EXPECT_GE((*db)->value_range().max, 505.0);
}

}  // namespace
}  // namespace fielddb

#include "field/interpolation.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace fielddb {
namespace {

CellRecord UnitQuad(double ll, double lr, double ur, double ul) {
  return CellRecord::Quad(0, Rect2{{0, 0}, {1, 1}}, ll, lr, ur, ul);
}

CellRecord RightTriangle(double wa, double wb, double wc) {
  return CellRecord::Triangle(0, {0, 0}, wa, {1, 0}, wb, {0, 1}, wc);
}

TEST(CellRecordTest, IntervalIsVertexHull) {
  const CellRecord quad = UnitQuad(3, 7, 1, 5);
  EXPECT_EQ(quad.Interval(), (ValueInterval{1, 7}));
  const CellRecord tri = RightTriangle(2, 2, 2);
  EXPECT_EQ(tri.Interval(), (ValueInterval{2, 2}));
  EXPECT_DOUBLE_EQ(tri.Interval().PaperSize(), 1.0);
}

TEST(CellRecordTest, BoundsAndCentroid) {
  const CellRecord quad =
      CellRecord::Quad(0, Rect2{{2, 3}, {4, 7}}, 0, 0, 0, 0);
  EXPECT_EQ(quad.Bounds(), (Rect2{{2, 3}, {4, 7}}));
  EXPECT_EQ(quad.Centroid(), (Point2{3, 5}));
  const CellRecord tri = RightTriangle(0, 0, 0);
  EXPECT_NEAR(tri.Centroid().x, 1.0 / 3, 1e-12);
  EXPECT_NEAR(tri.Centroid().y, 1.0 / 3, 1e-12);
}

TEST(CellContainsTest, QuadBoundaryInclusive) {
  const CellRecord quad = UnitQuad(0, 0, 0, 0);
  EXPECT_TRUE(CellContains(quad, {0, 0}));
  EXPECT_TRUE(CellContains(quad, {1, 1}));
  EXPECT_TRUE(CellContains(quad, {0.5, 0.5}));
  EXPECT_FALSE(CellContains(quad, {1.01, 0.5}));
}

TEST(CellContainsTest, TriangleMembership) {
  const CellRecord tri = RightTriangle(0, 0, 0);
  EXPECT_TRUE(CellContains(tri, {0.2, 0.2}));
  EXPECT_TRUE(CellContains(tri, {0.5, 0.5}));  // hypotenuse
  EXPECT_FALSE(CellContains(tri, {0.8, 0.8}));
}

TEST(InterpolateTest, BilinearAtCornersMatchesSamples) {
  const CellRecord quad = UnitQuad(1, 2, 3, 4);
  EXPECT_DOUBLE_EQ(*InterpolateCell(quad, {0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(*InterpolateCell(quad, {1, 0}), 2.0);
  EXPECT_DOUBLE_EQ(*InterpolateCell(quad, {1, 1}), 3.0);
  EXPECT_DOUBLE_EQ(*InterpolateCell(quad, {0, 1}), 4.0);
}

TEST(InterpolateTest, BilinearCenterIsCornerAverage) {
  const CellRecord quad = UnitQuad(1, 2, 3, 4);
  EXPECT_DOUBLE_EQ(*InterpolateCell(quad, {0.5, 0.5}), 2.5);
}

TEST(InterpolateTest, BilinearEdgesAreLinear) {
  const CellRecord quad = UnitQuad(0, 10, 30, 20);
  // Along the bottom edge: linear in x between 0 and 10.
  EXPECT_DOUBLE_EQ(*InterpolateCell(quad, {0.3, 0}), 3.0);
  // Along the left edge: linear in y between 0 and 20.
  EXPECT_DOUBLE_EQ(*InterpolateCell(quad, {0, 0.25}), 5.0);
}

TEST(InterpolateTest, BilinearReproducesAffineFunctions) {
  // For w = a + bx + cy the bilinear interpolant is exact everywhere.
  const auto f = [](Point2 p) { return 3.0 + 2.0 * p.x - 1.5 * p.y; };
  const CellRecord quad = UnitQuad(f({0, 0}), f({1, 0}), f({1, 1}),
                                   f({0, 1}));
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const Point2 p{rng.NextDouble(), rng.NextDouble()};
    EXPECT_NEAR(*InterpolateCell(quad, p), f(p), 1e-12);
  }
}

TEST(InterpolateTest, BilinearStaysInsideVertexHull) {
  // The property that justifies Interval() = vertex min/max.
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    const double w0 = rng.NextDouble(-10, 10), w1 = rng.NextDouble(-10, 10);
    const double w2 = rng.NextDouble(-10, 10), w3 = rng.NextDouble(-10, 10);
    const CellRecord quad = UnitQuad(w0, w1, w2, w3);
    const ValueInterval iv = quad.Interval();
    for (int i = 0; i < 50; ++i) {
      const Point2 p{rng.NextDouble(), rng.NextDouble()};
      const double w = *InterpolateCell(quad, p);
      EXPECT_GE(w, iv.min - 1e-9);
      EXPECT_LE(w, iv.max + 1e-9);
    }
  }
}

TEST(InterpolateTest, BarycentricAtVerticesMatchesSamples) {
  const CellRecord tri = RightTriangle(5, 7, 11);
  EXPECT_DOUBLE_EQ(*InterpolateCell(tri, {0, 0}), 5.0);
  EXPECT_DOUBLE_EQ(*InterpolateCell(tri, {1, 0}), 7.0);
  EXPECT_DOUBLE_EQ(*InterpolateCell(tri, {0, 1}), 11.0);
}

TEST(InterpolateTest, BarycentricIsAffine) {
  const auto f = [](Point2 p) { return -2.0 + 4.0 * p.x + 0.5 * p.y; };
  const CellRecord tri = CellRecord::Triangle(
      0, {0.1, 0.1}, f({0.1, 0.1}), {0.9, 0.2}, f({0.9, 0.2}), {0.3, 0.8},
      f({0.3, 0.8}));
  Rng rng(5);
  int tested = 0;
  while (tested < 100) {
    const Point2 p{rng.NextDouble(), rng.NextDouble()};
    if (!CellContains(tri, p)) continue;
    EXPECT_NEAR(*InterpolateCell(tri, p), f(p), 1e-10);
    ++tested;
  }
}

TEST(InterpolateTest, BarycentricStaysInsideVertexHull) {
  Rng rng(29);
  const CellRecord tri = RightTriangle(rng.NextDouble(-5, 5),
                                       rng.NextDouble(-5, 5),
                                       rng.NextDouble(-5, 5));
  const ValueInterval iv = tri.Interval();
  int tested = 0;
  while (tested < 200) {
    const Point2 p{rng.NextDouble(), rng.NextDouble()};
    if (!CellContains(tri, p)) continue;
    const double w = *InterpolateCell(tri, p);
    EXPECT_GE(w, iv.min - 1e-9);
    EXPECT_LE(w, iv.max + 1e-9);
    ++tested;
  }
}

TEST(InterpolateTest, OutsideCellIsOutOfRange) {
  const CellRecord quad = UnitQuad(0, 0, 0, 0);
  EXPECT_EQ(InterpolateCell(quad, {2, 2}).status().code(),
            StatusCode::kOutOfRange);
  const CellRecord tri = RightTriangle(0, 0, 0);
  EXPECT_EQ(InterpolateCell(tri, {0.9, 0.9}).status().code(),
            StatusCode::kOutOfRange);
}

TEST(FitTrianglePlaneTest, RecoversCoefficients) {
  // w = 1 + 2x + 3y.
  auto plane = FitTrianglePlane({0, 0}, 1, {1, 0}, 3, {0, 1}, 4);
  ASSERT_TRUE(plane.ok());
  EXPECT_NEAR(plane->gx, 2.0, 1e-12);
  EXPECT_NEAR(plane->gy, 3.0, 1e-12);
  EXPECT_NEAR(plane->c, 1.0, 1e-12);
  EXPECT_NEAR(plane->Eval({0.25, 0.5}), 1 + 0.5 + 1.5, 1e-12);
}

TEST(FitTrianglePlaneTest, DegenerateRejected) {
  auto plane = FitTrianglePlane({0, 0}, 1, {1, 1}, 2, {2, 2}, 3);
  EXPECT_FALSE(plane.ok());
  EXPECT_EQ(plane.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fielddb

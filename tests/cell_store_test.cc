#include "index/cell_store.h"

#include <gtest/gtest.h>

#include <numeric>

#include "field/grid_field.h"
#include "storage/page_file.h"

namespace fielddb {
namespace {

GridField MakeGrid(uint32_t n) {
  std::vector<double> samples;
  for (uint32_t j = 0; j <= n; ++j) {
    for (uint32_t i = 0; i <= n; ++i) {
      samples.push_back(i + 100.0 * j);
    }
  }
  auto field = GridField::Create(n, n, Rect2{{0, 0}, {1, 1}}, samples);
  EXPECT_TRUE(field.ok());
  return std::move(field).value();
}

TEST(CellStoreTest, BuildIdentityOrder) {
  MemPageFile file;
  BufferPool pool(&file, 64);
  const GridField field = MakeGrid(4);
  auto store = CellStore::Build(&pool, field, {});
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->size(), 16u);
  EXPECT_EQ(store->cells_per_page(), 4096u / sizeof(CellRecord));

  CellRecord rec;
  for (uint64_t pos = 0; pos < 16; ++pos) {
    ASSERT_TRUE(store->Get(pos, &rec).ok());
    EXPECT_EQ(rec.id, pos);
    EXPECT_EQ(store->PositionOf(static_cast<CellId>(pos)), pos);
  }
}

TEST(CellStoreTest, BuildPermutedOrder) {
  MemPageFile file;
  BufferPool pool(&file, 64);
  const GridField field = MakeGrid(3);  // 9 cells
  std::vector<CellId> order = {8, 0, 7, 1, 6, 2, 5, 3, 4};
  auto store = CellStore::Build(&pool, field, order);
  ASSERT_TRUE(store.ok());
  CellRecord rec;
  for (uint64_t pos = 0; pos < order.size(); ++pos) {
    ASSERT_TRUE(store->Get(pos, &rec).ok());
    EXPECT_EQ(rec.id, order[pos]);
    EXPECT_EQ(store->PositionOf(order[pos]), pos);
  }
}

TEST(CellStoreTest, RejectsNonPermutation) {
  MemPageFile file;
  BufferPool pool(&file, 64);
  const GridField field = MakeGrid(2);  // 4 cells
  EXPECT_FALSE(CellStore::Build(&pool, field, {0, 1, 2}).ok());
  EXPECT_FALSE(CellStore::Build(&pool, field, {0, 1, 2, 2}).ok());
  EXPECT_FALSE(CellStore::Build(&pool, field, {0, 1, 2, 9}).ok());
}

TEST(CellStoreTest, RecordContentsSurviveStorage) {
  MemPageFile file;
  BufferPool pool(&file, 64);
  const GridField field = MakeGrid(4);
  auto store = CellStore::Build(&pool, field, {});
  ASSERT_TRUE(store.ok());
  CellRecord rec;
  ASSERT_TRUE(store->Get(7, &rec).ok());
  const CellRecord expected = field.GetCell(7);
  EXPECT_EQ(rec.num_vertices, expected.num_vertices);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(rec.x[i], expected.x[i]);
    EXPECT_DOUBLE_EQ(rec.y[i], expected.y[i]);
    EXPECT_DOUBLE_EQ(rec.w[i], expected.w[i]);
  }
}

TEST(CellStoreTest, ScanVisitsRangeInOrder) {
  MemPageFile file;
  BufferPool pool(&file, 64);
  const GridField field = MakeGrid(8);  // 64 cells
  auto store = CellStore::Build(&pool, field, {});
  ASSERT_TRUE(store.ok());
  std::vector<uint64_t> seen;
  ASSERT_TRUE(store->Scan(10, 50, [&](uint64_t pos, const CellRecord& rec) {
                     EXPECT_EQ(rec.id, pos);
                     seen.push_back(pos);
                     return true;
                   }).ok());
  std::vector<uint64_t> expected(40);
  std::iota(expected.begin(), expected.end(), 10);
  EXPECT_EQ(seen, expected);
}

TEST(CellStoreTest, ScanEarlyStop) {
  MemPageFile file;
  BufferPool pool(&file, 64);
  const GridField field = MakeGrid(4);
  auto store = CellStore::Build(&pool, field, {});
  ASSERT_TRUE(store.ok());
  int visited = 0;
  ASSERT_TRUE(store->Scan(0, 16, [&](uint64_t, const CellRecord&) {
                     return ++visited < 3;
                   }).ok());
  EXPECT_EQ(visited, 3);
}

TEST(CellStoreTest, ScanBoundsChecked) {
  MemPageFile file;
  BufferPool pool(&file, 64);
  const GridField field = MakeGrid(2);
  auto store = CellStore::Build(&pool, field, {});
  ASSERT_TRUE(store.ok());
  const auto noop = [](uint64_t, const CellRecord&) { return true; };
  EXPECT_FALSE(store->Scan(0, 5, noop).ok());
  EXPECT_FALSE(store->Scan(3, 2, noop).ok());
  EXPECT_TRUE(store->Scan(4, 4, noop).ok());  // empty range is fine
}

TEST(CellStoreTest, GetOutOfRange) {
  MemPageFile file;
  BufferPool pool(&file, 64);
  const GridField field = MakeGrid(2);
  auto store = CellStore::Build(&pool, field, {});
  ASSERT_TRUE(store.ok());
  CellRecord rec;
  EXPECT_EQ(store->Get(4, &rec).code(), StatusCode::kOutOfRange);
}

TEST(CellStoreTest, PageAccountingOneFetchPerPageOnScan) {
  MemPageFile file;
  BufferPool pool(&file, 256);
  const GridField field = MakeGrid(32);  // 1024 cells
  auto store = CellStore::Build(&pool, field, {});
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(pool.Clear().ok());
  pool.ResetStats();
  ASSERT_TRUE(store->Scan(0, store->size(),
                          [](uint64_t, const CellRecord&) { return true; })
                  .ok());
  EXPECT_EQ(pool.stats().logical_reads, store->num_pages());
  EXPECT_EQ(pool.stats().physical_reads, store->num_pages());
}

TEST(CellStoreTest, NumPagesFormula) {
  MemPageFile file;
  BufferPool pool(&file, 64);
  const GridField field = MakeGrid(8);  // 64 cells, 39 per 4 KB page
  auto store = CellStore::Build(&pool, field, {});
  ASSERT_TRUE(store.ok());
  const uint64_t per = store->cells_per_page();
  EXPECT_EQ(store->num_pages(), (64 + per - 1) / per);
}

TEST(CellStoreTest, SmallPagesSpanManyPages) {
  MemPageFile file(256);  // 2 cells per page
  BufferPool pool(&file, 64);
  const GridField field = MakeGrid(4);  // 16 cells
  auto store = CellStore::Build(&pool, field, {});
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->cells_per_page(), 2u);
  EXPECT_EQ(store->num_pages(), 8u);
  CellRecord rec;
  ASSERT_TRUE(store->Get(15, &rec).ok());
  EXPECT_EQ(rec.id, 15u);
}

}  // namespace
}  // namespace fielddb

#include "field/field.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "field/grid_field.h"
#include "field/tin_field.h"

namespace fielddb {
namespace {

// 2x2-cell grid over [0,2]^2 with samples w(i,j) = i + 10*j — the Fig. 1
// shape of a "DEM for a continuous field".
GridField MakeSmallGrid() {
  std::vector<double> samples;
  for (int j = 0; j <= 2; ++j) {
    for (int i = 0; i <= 2; ++i) {
      samples.push_back(i + 10.0 * j);
    }
  }
  auto field = GridField::Create(2, 2, Rect2{{0, 0}, {2, 2}}, samples);
  EXPECT_TRUE(field.ok());
  return std::move(field).value();
}

TinField MakeTwoTriangleTin() {
  // Unit square split along the main diagonal.
  std::vector<TinVertex> vertices = {
      {{0, 0}, 1.0}, {{1, 0}, 2.0}, {{1, 1}, 3.0}, {{0, 1}, 4.0}};
  std::vector<TinTriangle> triangles = {{{0, 1, 2}}, {{0, 2, 3}}};
  auto tin = TinField::Create(vertices, triangles);
  EXPECT_TRUE(tin.ok());
  return std::move(tin).value();
}

TEST(GridFieldTest, CreateValidatesArguments) {
  EXPECT_FALSE(GridField::Create(0, 2, Rect2{{0, 0}, {1, 1}}, {}).ok());
  EXPECT_FALSE(
      GridField::Create(2, 2, Rect2{{0, 0}, {1, 1}}, {1.0, 2.0}).ok());
  EXPECT_FALSE(GridField::Create(1, 1, Rect2{{0, 0}, {0, 1}},
                                 {1, 2, 3, 4})
                   .ok());
}

TEST(GridFieldTest, CellGeometry) {
  const GridField field = MakeSmallGrid();
  EXPECT_EQ(field.NumCells(), 4u);
  const CellRecord c0 = field.GetCell(0);
  EXPECT_EQ(c0.num_vertices, 4u);
  EXPECT_EQ(c0.Bounds(), (Rect2{{0, 0}, {1, 1}}));
  const CellRecord c3 = field.GetCell(3);
  EXPECT_EQ(c3.Bounds(), (Rect2{{1, 1}, {2, 2}}));
}

TEST(GridFieldTest, CellValuesMatchSamples) {
  const GridField field = MakeSmallGrid();
  // Cell (1,1): corners (1,1),(2,1),(2,2),(1,2) -> 11, 12, 22, 21.
  const CellRecord c = field.GetCell(field.CellIdAt(1, 1));
  EXPECT_DOUBLE_EQ(c.w[0], 11.0);
  EXPECT_DOUBLE_EQ(c.w[1], 12.0);
  EXPECT_DOUBLE_EQ(c.w[2], 22.0);
  EXPECT_DOUBLE_EQ(c.w[3], 21.0);
}

TEST(GridFieldTest, FindCellDirect) {
  const GridField field = MakeSmallGrid();
  EXPECT_EQ(*field.FindCell({0.5, 0.5}), field.CellIdAt(0, 0));
  EXPECT_EQ(*field.FindCell({1.5, 0.5}), field.CellIdAt(1, 0));
  EXPECT_EQ(*field.FindCell({0.5, 1.5}), field.CellIdAt(0, 1));
  // Domain boundary maps into the last cell.
  EXPECT_EQ(*field.FindCell({2.0, 2.0}), field.CellIdAt(1, 1));
  EXPECT_EQ(field.FindCell({2.5, 0.5}).status().code(),
            StatusCode::kNotFound);
}

TEST(GridFieldTest, ValueAtIsBilinear) {
  const GridField field = MakeSmallGrid();
  // w(x, y) = x + 10y is affine, so interpolation is exact everywhere.
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const Point2 p{rng.NextDouble(0, 2), rng.NextDouble(0, 2)};
    EXPECT_NEAR(*field.ValueAt(p), p.x + 10 * p.y, 1e-12);
  }
}

TEST(GridFieldTest, ValueRange) {
  const GridField field = MakeSmallGrid();
  EXPECT_EQ(field.ValueRange(), (ValueInterval{0, 22}));
}

TEST(GridFieldTest, Q1ConventionalQueryExample) {
  // The paper's Q1: "what is the value at point v'?"
  const GridField field = MakeSmallGrid();
  const StatusOr<double> w = field.ValueAt({1.0, 1.0});
  ASSERT_TRUE(w.ok());
  EXPECT_DOUBLE_EQ(*w, 11.0);
}

TEST(TinFieldTest, CreateValidates) {
  std::vector<TinVertex> v = {{{0, 0}, 1}, {{1, 0}, 2}, {{2, 0}, 3}};
  // Index out of range.
  EXPECT_FALSE(TinField::Create(v, {{{0, 1, 5}}}).ok());
  // Degenerate (collinear) triangle.
  EXPECT_FALSE(TinField::Create(v, {{{0, 1, 2}}}).ok());
  // No triangles at all.
  EXPECT_FALSE(TinField::Create(v, {}).ok());
}

TEST(TinFieldTest, CellRecords) {
  const TinField tin = MakeTwoTriangleTin();
  EXPECT_EQ(tin.NumCells(), 2u);
  const CellRecord c0 = tin.GetCell(0);
  EXPECT_EQ(c0.num_vertices, 3u);
  EXPECT_EQ(c0.id, 0u);
  EXPECT_EQ(c0.Interval(), (ValueInterval{1, 3}));
  const CellRecord c1 = tin.GetCell(1);
  EXPECT_EQ(c1.Interval(), (ValueInterval{1, 4}));
}

TEST(TinFieldTest, DomainAndRange) {
  const TinField tin = MakeTwoTriangleTin();
  EXPECT_EQ(tin.Domain(), (Rect2{{0, 0}, {1, 1}}));
  EXPECT_EQ(tin.ValueRange(), (ValueInterval{1, 4}));
}

TEST(TinFieldTest, FindCellScan) {
  const TinField tin = MakeTwoTriangleTin();
  // Below the diagonal -> triangle 0; above -> triangle 1.
  EXPECT_EQ(*tin.FindCell({0.7, 0.2}), 0u);
  EXPECT_EQ(*tin.FindCell({0.2, 0.7}), 1u);
  EXPECT_EQ(tin.FindCell({1.5, 1.5}).status().code(),
            StatusCode::kNotFound);
}

TEST(TinFieldTest, ValueAtInterpolatesLinearly) {
  const TinField tin = MakeTwoTriangleTin();
  // At vertex positions, exact sample values.
  EXPECT_NEAR(*tin.ValueAt({0, 0}), 1.0, 1e-12);
  EXPECT_NEAR(*tin.ValueAt({1, 1}), 3.0, 1e-12);
  // Midpoint of the diagonal edge (shared by both triangles).
  EXPECT_NEAR(*tin.ValueAt({0.5, 0.5}), 2.0, 1e-12);
}

}  // namespace
}  // namespace fielddb

// Differential guard for the FieldEngine extraction: the grid database's
// query answers must be bit-identical across every lifecycle path the
// shared engine now hosts — fresh build vs Save/Open round trip, and
// unlimited vs bounded-memory (external-sort) build. Any drift in the
// hoisted Build/Attach/Save/Open plumbing shows up here as a workload
// mismatch.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/field_database.h"
#include "gen/fractal.h"
#include "gen/workload.h"

namespace fielddb {
namespace {

void Cleanup(const std::string& prefix) {
  for (const char* suffix :
       {".pages", ".meta", ".pages.tmp", ".meta.tmp", ".wal"}) {
    std::remove((prefix + suffix).c_str());
  }
}

GridField MakeField() {
  FractalOptions fo;
  fo.size_exp = 5;  // 32x32 cells
  fo.roughness_h = 0.8;
  fo.seed = 1234;
  auto field = MakeFractalField(fo);
  EXPECT_TRUE(field.ok());
  return std::move(field).value();
}

std::vector<ValueInterval> MakeWorkload(const GridField& field) {
  std::vector<ValueInterval> queries = GenerateValueQueries(
      field.ValueRange(), WorkloadOptions{0.08, 12, 99});
  queries.push_back(ValueInterval{-1e9, 1e9});
  const ValueInterval r = field.ValueRange();
  queries.push_back(ValueInterval{r.max + 1.0, r.max + 2.0});  // empty
  return queries;
}

// Answers must match exactly: same cells, same total area, same region
// piece count — the strongest equality the result type exposes.
void ExpectSameAnswers(FieldDatabase* a, FieldDatabase* b,
                       const std::vector<ValueInterval>& queries) {
  for (const ValueInterval& q : queries) {
    SCOPED_TRACE(q.min);
    ValueQueryResult ra, rb;
    ASSERT_TRUE(a->ValueQuery(q, &ra).ok());
    ASSERT_TRUE(b->ValueQuery(q, &rb).ok());
    EXPECT_EQ(ra.stats.answer_cells, rb.stats.answer_cells);
    EXPECT_EQ(ra.region.pieces.size(), rb.region.pieces.size());
    EXPECT_DOUBLE_EQ(ra.region.TotalArea(), rb.region.TotalArea());
  }
}

class EngineDiffTest : public ::testing::TestWithParam<IndexMethod> {};

TEST_P(EngineDiffTest, ReopenedDatabaseAnswersIdentically) {
  const std::string prefix =
      ::testing::TempDir() + "/fielddb_engine_diff_" +
      std::to_string(static_cast<int>(GetParam()));
  Cleanup(prefix);
  const GridField field = MakeField();
  FieldDatabaseOptions options;
  options.method = GetParam();
  auto built = FieldDatabase::Build(field, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ASSERT_TRUE((*built)->Save(prefix).ok());
  auto opened = FieldDatabase::Open(prefix);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();

  ExpectSameAnswers(built->get(), opened->get(), MakeWorkload(field));
  Cleanup(prefix);
}

TEST_P(EngineDiffTest, BudgetedBuildAnswersIdentically) {
  const GridField field = MakeField();
  FieldDatabaseOptions options;
  options.method = GetParam();
  auto unlimited = FieldDatabase::Build(field, options);
  ASSERT_TRUE(unlimited.ok()) << unlimited.status().ToString();

  options.build_memory_budget_bytes = 2048;
  auto budgeted = FieldDatabase::Build(field, options);
  ASSERT_TRUE(budgeted.ok()) << budgeted.status().ToString();

  ExpectSameAnswers(unlimited->get(), budgeted->get(),
                    MakeWorkload(field));
}

INSTANTIATE_TEST_SUITE_P(
    PersistableMethods, EngineDiffTest,
    ::testing::Values(IndexMethod::kLinearScan, IndexMethod::kIAll,
                      IndexMethod::kIHilbert,
                      IndexMethod::kIntervalQuadtree),
    [](const ::testing::TestParamInfo<IndexMethod>& info) {
      std::string name = IndexMethodName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace fielddb

// Tests for the plan layer: cost-model golden page counts on a
// synthetic store shape, the planner's access-path decisions, and the
// differential suite — the planner-chosen plan must return bit-identical
// results to both forced plans across every index method and a
// selectivity sweep from 0.1% to 90%.

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/field_database.h"
#include "gen/fractal.h"
#include "index/cell_store.h"
#include "plan/cost_model.h"
#include "plan/planner.h"

namespace fielddb {
namespace {

// ---------------------------------------------------------------------------
// Cost-model goldens: a synthetic 1000-cell store, 10 cells per 4 KB
// page, 100 pages. Every expected count below is worked out by hand.

StoreShape SyntheticShape() {
  StoreShape shape;
  shape.num_cells = 1000;
  shape.cells_per_page = 10;
  shape.store_pages = 100;
  return shape;
}

TEST(CostModelTest, ScanPatternGolden) {
  const PlanCostModel cost;
  const PagePattern p = cost.ScanPattern(SyntheticShape());
  EXPECT_EQ(p.pages, 100u);
  EXPECT_EQ(p.random_reads, 1u);  // one seek to the store's first page
  EXPECT_EQ(p.sequential_reads, 99u);
  // Default disk model: 9.16 ms for the seek'd page, 0.16 ms per
  // sequential page.
  EXPECT_DOUBLE_EQ(cost.CostMs(p), 1 * (9.0 + 0.16) + 99 * 0.16);
}

TEST(CostModelTest, ScanPatternEmptyStore) {
  const PlanCostModel cost;
  const PagePattern p = cost.ScanPattern(StoreShape{});
  EXPECT_EQ(p.pages, 0u);
  EXPECT_EQ(p.random_reads, 0u);
  EXPECT_EQ(p.sequential_reads, 0u);
  EXPECT_DOUBLE_EQ(cost.CostMs(p), 0.0);
}

TEST(CostModelTest, FetchPatternSingleRunGolden) {
  const PlanCostModel cost;
  // Cells [25, 35) live on pages 2 and 3: one seek, one sequential.
  const PagePattern p =
      cost.FetchPattern(SyntheticShape(), {PosRange{25, 35}});
  EXPECT_EQ(p.pages, 2u);
  EXPECT_EQ(p.random_reads, 1u);
  EXPECT_EQ(p.sequential_reads, 1u);
}

TEST(CostModelTest, FetchPatternWholeStoreEqualsScan) {
  const PlanCostModel cost;
  const StoreShape shape = SyntheticShape();
  const PagePattern fetch =
      cost.FetchPattern(shape, {PosRange{0, shape.num_cells}});
  const PagePattern scan = cost.ScanPattern(shape);
  EXPECT_EQ(fetch.pages, scan.pages);
  EXPECT_EQ(fetch.random_reads, scan.random_reads);
  EXPECT_EQ(fetch.sequential_reads, scan.sequential_reads);
}

TEST(CostModelTest, FetchPatternSharedPageChargedOnce) {
  const PlanCostModel cost;
  // [5, 12) reads pages 0-1; [12, 18) lives entirely on page 1, which
  // the previous run already read — the buffer pool serves it free.
  const PagePattern p =
      cost.FetchPattern(SyntheticShape(), {PosRange{5, 12}, PosRange{12, 18}});
  EXPECT_EQ(p.pages, 2u);
  EXPECT_EQ(p.random_reads, 1u);
  EXPECT_EQ(p.sequential_reads, 1u);
}

TEST(CostModelTest, FetchPatternAbuttingRunsStaySequential) {
  const PlanCostModel cost;
  // [0, 10) reads page 0; [10, 30) starts on page 1 — exactly one past
  // the previous read, so its head page is sequential, not a seek.
  const PagePattern p =
      cost.FetchPattern(SyntheticShape(), {PosRange{0, 10}, PosRange{10, 30}});
  EXPECT_EQ(p.pages, 3u);
  EXPECT_EQ(p.random_reads, 1u);
  EXPECT_EQ(p.sequential_reads, 2u);
}

TEST(CostModelTest, FetchPatternDisjointRunsEachPaySeek) {
  const PlanCostModel cost;
  // Page 0, then pages 50-51: two seeks, one sequential follower.
  const PagePattern p = cost.FetchPattern(SyntheticShape(),
                                          {PosRange{0, 10}, PosRange{500, 515}});
  EXPECT_EQ(p.pages, 3u);
  EXPECT_EQ(p.random_reads, 2u);
  EXPECT_EQ(p.sequential_reads, 1u);
}

TEST(CostModelTest, ApproxFetchPatternGolden) {
  const PlanCostModel cost;
  // 95 candidates over 4 clusters: ceil(95/10) = 10 body pages plus one
  // extra page straddle per additional cluster; 4 seeks.
  const PagePattern p = cost.ApproxFetchPattern(SyntheticShape(), 95, 4);
  EXPECT_EQ(p.pages, 13u);
  EXPECT_EQ(p.random_reads, 4u);
  EXPECT_EQ(p.sequential_reads, 9u);

  const PagePattern none = cost.ApproxFetchPattern(SyntheticShape(), 0, 0);
  EXPECT_EQ(none.pages, 0u);
  EXPECT_EQ(none.random_reads, 0u);

  // Degenerate worst case — every cell a candidate, every cell its own
  // run — must stay capped at the store size.
  const PagePattern all = cost.ApproxFetchPattern(SyntheticShape(), 1000, 1000);
  EXPECT_EQ(all.pages, 100u);
  EXPECT_LE(all.random_reads, all.pages);
}

TEST(CostModelTest, CostMsUsesConfiguredDiskModel) {
  DiskModel disk;
  disk.seek_ms = 10.0;
  disk.transfer_ms_per_page = 1.0;
  const PlanCostModel cost(disk);
  PagePattern p;
  p.pages = 5;
  p.random_reads = 2;
  p.sequential_reads = 3;
  EXPECT_DOUBLE_EQ(cost.CostMs(p), 2 * (10.0 + 1.0) + 3 * 1.0);
}

// ---------------------------------------------------------------------------
// Shared fixtures: fractal DEMs at two sizes. The small one (4096
// cells) is cheap enough for the 5-method differential sweep; the big
// one (65536 cells) is the smallest where the scan/index crossover
// exists under the default disk model.

StatusOr<GridField> MakeDem(int size_exp) {
  FractalOptions options;
  options.size_exp = size_exp;
  options.roughness_h = 0.7;
  options.seed = 20020613;
  return MakeFractalField(options);
}

StatusOr<std::unique_ptr<FieldDatabase>> MakeDb(const Field& field,
                                                IndexMethod method) {
  FieldDatabaseOptions options;
  options.method = method;
  options.build_spatial_index = false;
  return FieldDatabase::Build(field, options);
}

ValueInterval Band(const FieldDatabase& db, double lo_frac, double hi_frac) {
  const ValueInterval& vr = db.value_range();
  const double span = vr.max - vr.min;
  return ValueInterval{vr.min + lo_frac * span, vr.min + hi_frac * span};
}

// ---------------------------------------------------------------------------
// The strided zone probe the planner uses on very large stores.

TEST(ZoneProbeTest, StrideOneMatchesExactFilter) {
  auto dem = MakeDem(6);
  ASSERT_TRUE(dem.ok());
  auto db = MakeDb(*dem, IndexMethod::kLinearScan);
  ASSERT_TRUE(db.ok());
  const CellStore& store = (*db)->index().cell_store();
  const ValueInterval band = Band(**db, 0.3, 0.5);

  std::vector<PosRange> exact;
  store.FilterZoneMap(band, &exact);
  const CellStore::ZoneProbe probe = store.ProbeZoneMap(band, 1);
  EXPECT_EQ(probe.sampled, store.size());
  EXPECT_EQ(probe.matched, TotalRangeLength(exact));
  EXPECT_EQ(probe.run_starts, exact.size());
}

TEST(ZoneProbeTest, StridedSampleCountsAndEdgeCases) {
  auto dem = MakeDem(6);
  ASSERT_TRUE(dem.ok());
  auto db = MakeDb(*dem, IndexMethod::kLinearScan);
  ASSERT_TRUE(db.ok());
  const CellStore& store = (*db)->index().cell_store();

  // Stride k samples ceil(size / k) slots.
  const CellStore::ZoneProbe strided =
      store.ProbeZoneMap(Band(**db, 0.3, 0.5), 7);
  EXPECT_EQ(strided.sampled, (store.size() + 6) / 7);
  EXPECT_LE(strided.matched, strided.sampled);
  EXPECT_LE(strided.run_starts, strided.matched);

  // The whole value range matches every sample in one run.
  const CellStore::ZoneProbe all =
      store.ProbeZoneMap((*db)->value_range(), 4);
  EXPECT_EQ(all.matched, all.sampled);
  EXPECT_EQ(all.run_starts, 1u);

  // A band outside the value range matches nothing.
  const ValueInterval& vr = (*db)->value_range();
  const CellStore::ZoneProbe none =
      store.ProbeZoneMap(ValueInterval{vr.max + 1.0, vr.max + 2.0}, 4);
  EXPECT_EQ(none.matched, 0u);
  EXPECT_EQ(none.run_starts, 0u);

  // Stride 0 behaves as stride 1.
  const CellStore::ZoneProbe zero =
      store.ProbeZoneMap(Band(**db, 0.3, 0.5), 0);
  EXPECT_EQ(zero.sampled, store.size());
}

// ---------------------------------------------------------------------------
// Planner decisions.

TEST(PlannerTest, LinearScanOnlyEverPlansFusedScan) {
  auto dem = MakeDem(6);
  ASSERT_TRUE(dem.ok());
  auto db = MakeDb(*dem, IndexMethod::kLinearScan);
  ASSERT_TRUE(db.ok());
  const ValueInterval band = Band(**db, 0.0, 0.01);
  for (const PlannerMode mode :
       {PlannerMode::kAuto, PlannerMode::kForceScan, PlannerMode::kForceIndex}) {
    (*db)->set_planner_mode(mode);
    const PhysicalPlan plan = (*db)->PlanValueQuery(band);
    EXPECT_EQ(plan.kind, PlanKind::kFusedScan) << PlannerModeName(mode);
    EXPECT_DOUBLE_EQ(plan.predicted_cost_ms, plan.scan_cost_ms);
  }
}

TEST(PlannerTest, ForcedModesPinThePlan) {
  auto dem = MakeDem(6);
  ASSERT_TRUE(dem.ok());
  auto db = MakeDb(*dem, IndexMethod::kIHilbert);
  ASSERT_TRUE(db.ok());
  const ValueInterval band = Band(**db, 0.2, 0.6);

  (*db)->set_planner_mode(PlannerMode::kForceScan);
  const PhysicalPlan scan = (*db)->PlanValueQuery(band);
  EXPECT_EQ(scan.kind, PlanKind::kFusedScan);
  EXPECT_DOUBLE_EQ(scan.predicted_cost_ms, scan.scan_cost_ms);

  (*db)->set_planner_mode(PlannerMode::kForceIndex);
  const PhysicalPlan index = (*db)->PlanValueQuery(band);
  EXPECT_EQ(index.kind, PlanKind::kIndexedFilter);
  EXPECT_DOUBLE_EQ(index.predicted_cost_ms, index.index_cost_ms);
  EXPECT_GT(index.predicted_candidates, 0u);
}

TEST(PlannerTest, AutoPicksIndexForSliversAndScanForWideBands) {
  // 65536 cells: big enough that three tree seeks undercut the full
  // scan. (On small stores the scan always wins — that behavior is
  // asserted by ReportsAdaptivePlanChoice in explain_test.)
  auto dem = MakeDem(8);
  ASSERT_TRUE(dem.ok());
  auto db = MakeDb(*dem, IndexMethod::kIHilbert);
  ASSERT_TRUE(db.ok());

  const PhysicalPlan narrow = (*db)->PlanValueQuery(Band(**db, 0.0, 0.02));
  EXPECT_EQ(narrow.kind, PlanKind::kIndexedFilter);
  EXPECT_LT(narrow.index_cost_ms, narrow.scan_cost_ms);
  EXPECT_DOUBLE_EQ(narrow.predicted_cost_ms, narrow.index_cost_ms);

  const PhysicalPlan wide = (*db)->PlanValueQuery(Band(**db, 0.05, 0.95));
  EXPECT_EQ(wide.kind, PlanKind::kFusedScan);
  EXPECT_GE(wide.index_cost_ms, wide.scan_cost_ms);
  EXPECT_DOUBLE_EQ(wide.predicted_cost_ms, wide.scan_cost_ms);

  // In auto mode the chosen cost is the cheaper alternative, always.
  for (const double hi : {0.01, 0.1, 0.3, 0.6, 0.9}) {
    const PhysicalPlan plan = (*db)->PlanValueQuery(Band(**db, 0.0, hi));
    EXPECT_DOUBLE_EQ(plan.predicted_cost_ms,
                     std::min(plan.scan_cost_ms, plan.index_cost_ms));
    EXPECT_FALSE(plan.reason.empty());
  }
}

TEST(PlannerTest, PlanningIsPureOfExecutionState) {
  auto dem = MakeDem(6);
  ASSERT_TRUE(dem.ok());
  auto db = MakeDb(*dem, IndexMethod::kIHilbert);
  ASSERT_TRUE(db.ok());
  const ValueInterval band = Band(**db, 0.1, 0.4);

  const PhysicalPlan before = (*db)->PlanValueQuery(band);
  // Execute queries to warm the buffer pool and bump every counter the
  // planner must NOT consult.
  for (int i = 0; i < 3; ++i) {
    QueryStats qs;
    ASSERT_TRUE((*db)->ValueQueryStats(band, &qs).ok());
  }
  const PhysicalPlan after = (*db)->PlanValueQuery(band);

  EXPECT_EQ(before.kind, after.kind);
  EXPECT_EQ(before.predicted_candidates, after.predicted_candidates);
  EXPECT_EQ(before.predicted_runs, after.predicted_runs);
  EXPECT_DOUBLE_EQ(before.scan_cost_ms, after.scan_cost_ms);
  EXPECT_DOUBLE_EQ(before.index_cost_ms, after.index_cost_ms);
  EXPECT_EQ(before.reason, after.reason);
}

TEST(PlannerTest, ConcurrentAutoPlanningIsDeterministic) {
  auto dem = MakeDem(6);
  ASSERT_TRUE(dem.ok());
  auto db = MakeDb(*dem, IndexMethod::kIHilbert);
  ASSERT_TRUE(db.ok());

  std::vector<ValueInterval> queries;
  for (const double width : {0.005, 0.05, 0.3, 0.8}) {
    queries.push_back(Band(**db, 0.1, 0.1 + width));
  }
  std::vector<PlanKind> baseline;
  for (const ValueInterval& q : queries) {
    baseline.push_back((*db)->PlanValueQuery(q).kind);
  }

  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      QueryContext ctx;
      for (size_t i = 0; i < queries.size(); ++i) {
        if ((*db)->PlanValueQuery(queries[i]).kind != baseline[i]) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        QueryStats qs;
        if (!(*db)->ValueQueryStats(queries[i], &qs, &ctx).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---------------------------------------------------------------------------
// The differential suite: for every index method and a selectivity
// sweep from ~0.1% to 90%, the plan the planner picks must return
// bit-identical answers to both forced plans, and its I/O must match
// the forced plan of the same kind.

class DifferentialTest : public ::testing::TestWithParam<IndexMethod> {};

TEST_P(DifferentialTest, AutoMatchesBothForcedPlansAcrossSelectivities) {
  const IndexMethod method = GetParam();
  auto dem = MakeDem(6);
  ASSERT_TRUE(dem.ok());
  auto db = MakeDb(*dem, method);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  std::vector<ValueInterval> queries;
  for (const double width : {0.001, 0.01, 0.05, 0.2, 0.5, 0.9}) {
    for (const double lo : {0.0, 0.35, 0.7}) {
      const double hi = std::min(lo + width, 1.0);
      queries.push_back(Band(**db, lo, hi));
    }
  }

  const auto run = [&](const ValueInterval& q, PlannerMode mode) {
    (*db)->set_planner_mode(mode);
    ValueQueryResult r;
    EXPECT_TRUE((*db)->ValueQuery(q, &r).ok()) << PlannerModeName(mode);
    return r;
  };

  for (const ValueInterval& q : queries) {
    (*db)->set_planner_mode(PlannerMode::kAuto);
    const PhysicalPlan plan = (*db)->PlanValueQuery(q);
    const ValueQueryResult chosen = run(q, PlannerMode::kAuto);
    const ValueQueryResult scan = run(q, PlannerMode::kForceScan);
    const ValueQueryResult index = run(q, PlannerMode::kForceIndex);

    // Bit-identical answers: both pipelines visit the matching cells in
    // ascending store order, so even the piece order and the area sum
    // agree exactly — no tolerance.
    EXPECT_EQ(chosen.stats.answer_cells, scan.stats.answer_cells);
    EXPECT_EQ(chosen.stats.answer_cells, index.stats.answer_cells);
    EXPECT_EQ(chosen.region.NumPieces(), scan.region.NumPieces());
    EXPECT_EQ(chosen.region.NumPieces(), index.region.NumPieces());
    EXPECT_EQ(chosen.region.TotalArea(), scan.region.TotalArea());
    EXPECT_EQ(chosen.region.TotalArea(), index.region.TotalArea());

    // The indexed filter may pass false positives; the fused scan's
    // candidate test is exact — so scan candidates bound index
    // candidates from below, and both bound the answers.
    EXPECT_LE(scan.stats.candidate_cells, index.stats.candidate_cells);
    EXPECT_GE(scan.stats.candidate_cells, scan.stats.answer_cells);

    // IoStats-consistent: logical reads are a pure function of the plan
    // kind, so the auto run must read exactly what the forced run of
    // its chosen kind reads.
    const ValueQueryResult& same_kind =
        plan.kind == PlanKind::kFusedScan ? scan : index;
    EXPECT_EQ(chosen.stats.io.logical_reads, same_kind.stats.io.logical_reads)
        << PlanKindName(plan.kind);

    // The probe predicts the filter's output exactly for every
    // non-sampled method (subfield table walk or exact zone sweep).
    if (method != IndexMethod::kLinearScan) {
      EXPECT_EQ(plan.predicted_candidates, index.stats.candidate_cells);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, DifferentialTest,
                         ::testing::Values(IndexMethod::kLinearScan,
                                           IndexMethod::kIAll,
                                           IndexMethod::kIHilbert,
                                           IndexMethod::kIntervalQuadtree,
                                           IndexMethod::kRowIp),
                         [](const ::testing::TestParamInfo<IndexMethod>& info) {
                           // gtest names allow no '-' (I-Hilbert etc.).
                           std::string name = IndexMethodName(info.param);
                           name.erase(std::remove(name.begin(), name.end(), '-'),
                                      name.end());
                           return name;
                         });

}  // namespace
}  // namespace fielddb

#include "temporal/temporal_index.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "gen/fractal.h"

namespace fielddb {
namespace {

// T snapshots of a drifting fractal terrain: snapshot k = base + k*trend,
// trend itself a smooth surface — values move linearly in time.
TemporalGridField MakeDriftingField(int size_exp, uint32_t num_snapshots,
                                    uint64_t seed) {
  FractalOptions fo;
  fo.size_exp = size_exp;
  fo.roughness_h = 0.7;
  fo.seed = seed;
  const std::vector<double> base = DiamondSquare(fo);
  fo.seed = seed + 1;
  std::vector<double> trend = DiamondSquare(fo);
  for (double& w : trend) w *= 0.3;

  std::vector<std::vector<double>> snapshots(num_snapshots);
  for (uint32_t k = 0; k < num_snapshots; ++k) {
    snapshots[k].resize(base.size());
    for (size_t i = 0; i < base.size(); ++i) {
      snapshots[k][i] = base[i] + k * trend[i];
    }
  }
  const uint32_t n = uint32_t{1} << size_exp;
  auto field = TemporalGridField::Create(n, n, Rect2{{0, 0}, {1, 1}},
                                         std::move(snapshots));
  EXPECT_TRUE(field.ok());
  return std::move(field).value();
}

TEST(TemporalFieldTest, CreateValidates) {
  EXPECT_FALSE(
      TemporalGridField::Create(2, 2, Rect2{{0, 0}, {1, 1}}, {}).ok());
  std::vector<double> good(9, 0.0);
  EXPECT_FALSE(TemporalGridField::Create(2, 2, Rect2{{0, 0}, {1, 1}},
                                         {good})
                   .ok());  // only one snapshot
  EXPECT_FALSE(TemporalGridField::Create(2, 2, Rect2{{0, 0}, {1, 1}},
                                         {good, {1.0, 2.0}})
                   .ok());  // size mismatch
  EXPECT_TRUE(TemporalGridField::Create(2, 2, Rect2{{0, 0}, {1, 1}},
                                        {good, good})
                  .ok());
}

TEST(TemporalFieldTest, TimeInterpolationIsLinear) {
  const TemporalGridField field = MakeDriftingField(3, 4, 5);
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const Point2 p{rng.NextDouble(), rng.NextDouble()};
    const double w0 = *field.ValueAt(p, 1.0);
    const double w1 = *field.ValueAt(p, 2.0);
    const double mid = *field.ValueAt(p, 1.5);
    EXPECT_NEAR(mid, (w0 + w1) / 2.0, 1e-9);
  }
  EXPECT_FALSE(field.ValueAt({0.5, 0.5}, -0.1).ok());
  EXPECT_FALSE(field.ValueAt({0.5, 0.5}, 3.1).ok());
}

TEST(TemporalFieldTest, SnapshotAtEndpointsMatchesSnapshots) {
  const TemporalGridField field = MakeDriftingField(3, 3, 9);
  const StatusOr<GridField> s1 = field.Snapshot(1);
  const StatusOr<GridField> at1 = field.SnapshotAt(1.0);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(at1.ok());
  for (uint32_t j = 0; j <= field.rows(); ++j) {
    for (uint32_t i = 0; i <= field.cols(); ++i) {
      EXPECT_DOUBLE_EQ(at1->SampleAt(i, j), s1->SampleAt(i, j));
    }
  }
}

TEST(TemporalDbTest, SnapshotQueryMatchesStaticDatabase) {
  const TemporalGridField field = MakeDriftingField(5, 4, 11);
  TemporalFieldDatabase::Options options;
  auto db = TemporalFieldDatabase::Build(field, options);
  ASSERT_TRUE(db.ok());

  Rng rng(13);
  for (const double t : {0.0, 0.7, 1.5, 2.3, 3.0}) {
    // Reference: a plain FieldDatabase over the interpolated snapshot.
    StatusOr<GridField> snapshot = field.SnapshotAt(t);
    ASSERT_TRUE(snapshot.ok());
    FieldDatabaseOptions ref_options;
    ref_options.method = IndexMethod::kLinearScan;
    ref_options.build_spatial_index = false;
    auto reference = FieldDatabase::Build(*snapshot, ref_options);
    ASSERT_TRUE(reference.ok());

    for (int trial = 0; trial < 10; ++trial) {
      const ValueInterval range = field.ValueRange();
      const double lo = rng.NextDouble(range.min, range.max);
      const ValueInterval band{lo, lo + 0.05 * range.Length()};
      ValueQueryResult expected, actual;
      ASSERT_TRUE((*reference)->ValueQuery(band, &expected).ok());
      ASSERT_TRUE((*db)->SnapshotValueQuery(t, band, &actual).ok());
      EXPECT_NEAR(actual.region.TotalArea(),
                  expected.region.TotalArea(), 1e-9)
          << "t=" << t << " band=" << band.ToString();
      EXPECT_EQ(actual.stats.answer_cells, expected.stats.answer_cells);
    }
  }
}

TEST(TemporalDbTest, RejectsBadQueries) {
  const TemporalGridField field = MakeDriftingField(3, 3, 15);
  TemporalFieldDatabase::Options options;
  auto db = TemporalFieldDatabase::Build(field, options);
  ASSERT_TRUE(db.ok());
  ValueQueryResult result;
  EXPECT_FALSE(
      (*db)->SnapshotValueQuery(-1.0, ValueInterval{0, 1}, &result).ok());
  EXPECT_FALSE(
      (*db)->SnapshotValueQuery(5.0, ValueInterval{0, 1}, &result).ok());
  EXPECT_FALSE(
      (*db)->SnapshotValueQuery(1.0, ValueInterval::Empty(), &result)
          .ok());
}

TEST(TemporalDbTest, TimeRangeCandidatesCoverGroundTruth) {
  const TemporalGridField field = MakeDriftingField(4, 5, 17);
  TemporalFieldDatabase::Options options;
  auto db = TemporalFieldDatabase::Build(field, options);
  ASSERT_TRUE(db.ok());

  const ValueInterval range = field.ValueRange();
  const ValueInterval band{range.Center(),
                           range.Center() + 0.1 * range.Length()};
  const double t0 = 1.2, t1 = 3.6;
  std::vector<CellId> candidates;
  ASSERT_TRUE((*db)->TimeRangeCandidates(band, t0, t1, &candidates).ok());
  const std::set<CellId> candidate_set(candidates.begin(),
                                       candidates.end());

  // Ground truth: sample times densely; any cell whose snapshot interval
  // intersects at some sampled time must be a candidate.
  for (double t = t0; t <= t1; t += 0.2) {
    StatusOr<GridField> snapshot = field.SnapshotAt(t);
    ASSERT_TRUE(snapshot.ok());
    for (CellId id = 0; id < snapshot->NumCells(); ++id) {
      if (snapshot->GetCell(id).Interval().Intersects(band)) {
        ASSERT_TRUE(candidate_set.count(id))
            << "cell " << id << " missing at t=" << t;
      }
    }
  }
}

TEST(TemporalDbTest, TimeRangeRespectsTimeBounds) {
  // A value present only in late snapshots must not be a candidate for
  // an early time range.
  const uint32_t n = 4;
  std::vector<double> flat(static_cast<size_t>(n + 1) * (n + 1), 0.0);
  std::vector<double> spiked = flat;
  spiked[12] = 100.0;
  auto field = TemporalGridField::Create(
      n, n, Rect2{{0, 0}, {1, 1}}, {flat, flat, flat, spiked});
  ASSERT_TRUE(field.ok());
  TemporalFieldDatabase::Options options;
  auto db = TemporalFieldDatabase::Build(*field, options);
  ASSERT_TRUE(db.ok());

  std::vector<CellId> early, late;
  ASSERT_TRUE(
      (*db)->TimeRangeCandidates(ValueInterval{50, 150}, 0.0, 1.9, &early)
          .ok());
  EXPECT_TRUE(early.empty());
  ASSERT_TRUE(
      (*db)->TimeRangeCandidates(ValueInterval{50, 150}, 2.5, 3.0, &late)
          .ok());
  EXPECT_FALSE(late.empty());
}

TEST(TemporalDbTest, NonSquareGridWorks) {
  // 6 x 3 cells, values drift linearly.
  const uint32_t cols = 6, rows = 3;
  std::vector<std::vector<double>> snapshots(3);
  for (uint32_t k = 0; k < 3; ++k) {
    for (uint32_t j = 0; j <= rows; ++j) {
      for (uint32_t i = 0; i <= cols; ++i) {
        snapshots[k].push_back(i + 10.0 * j + 100.0 * k);
      }
    }
  }
  auto field = TemporalGridField::Create(cols, rows,
                                         Rect2{{0, 0}, {2, 1}}, snapshots);
  ASSERT_TRUE(field.ok());
  TemporalFieldDatabase::Options options;
  auto db = TemporalFieldDatabase::Build(*field, options);
  ASSERT_TRUE(db.ok());
  // At t=1 values are samples + 100; query the whole range there.
  ValueQueryResult result;
  ASSERT_TRUE(
      (*db)->SnapshotValueQuery(1.0, ValueInterval{100, 200}, &result)
          .ok());
  EXPECT_NEAR(result.region.TotalArea(), 2.0, 1e-9);  // whole 2x1 domain
}

TEST(TemporalDbTest, SubfieldsPerSlab) {
  const TemporalGridField field = MakeDriftingField(5, 3, 21);
  TemporalFieldDatabase::Options options;
  auto db = TemporalFieldDatabase::Build(field, options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->num_slabs(), 2u);
  EXPECT_GT((*db)->num_subfields(), 0u);
  EXPECT_LT((*db)->num_subfields(), 2u * field.NumCells() / 4);
}

}  // namespace
}  // namespace fielddb

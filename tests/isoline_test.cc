#include "field/isoline.h"

#include <gtest/gtest.h>

#include "core/field_database.h"
#include "gen/fractal.h"
#include "gen/monotonic.h"

namespace fielddb {
namespace {

TEST(CellIsolineTest, TriangleCrossing) {
  // w = x on the unit right triangle: the isoline x = 0.5 is a vertical
  // segment from (0.5, 0) to (0.5, 0.5).
  const CellRecord tri =
      CellRecord::Triangle(0, {0, 0}, 0, {1, 0}, 1, {0, 1}, 0);
  std::vector<IsoSegment> segments;
  auto n = CellIsolineSegments(tri, 0.5, &segments);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, 1u);
  const double length =
      Distance(segments[0].first, segments[0].second);
  EXPECT_NEAR(length, 0.5, 1e-12);
  EXPECT_NEAR(segments[0].first.x, 0.5, 1e-12);
  EXPECT_NEAR(segments[0].second.x, 0.5, 1e-12);
}

TEST(CellIsolineTest, LevelOutsideCell) {
  const CellRecord tri =
      CellRecord::Triangle(0, {0, 0}, 0, {1, 0}, 1, {0, 1}, 0);
  std::vector<IsoSegment> segments;
  auto n = CellIsolineSegments(tri, 5.0, &segments);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
}

TEST(CellIsolineTest, ConstantCellYieldsNoLine) {
  const CellRecord tri =
      CellRecord::Triangle(0, {0, 0}, 2, {1, 0}, 2, {0, 1}, 2);
  std::vector<IsoSegment> segments;
  auto n = CellIsolineSegments(tri, 2.0, &segments);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
}

TEST(CellIsolineTest, QuadDiagonalLevelLine) {
  // w = x + y on the unit quad: isoline w = 1 is the anti-diagonal of
  // length sqrt(2), split across the fan triangles.
  const CellRecord quad =
      CellRecord::Quad(0, Rect2{{0, 0}, {1, 1}}, 0, 1, 2, 1);
  std::vector<IsoSegment> segments;
  auto n = CellIsolineSegments(quad, 1.0, &segments);
  ASSERT_TRUE(n.ok());
  ASSERT_GT(*n, 0u);
  double length = 0;
  for (const IsoSegment& s : segments) {
    length += Distance(s.first, s.second);
  }
  EXPECT_NEAR(length, std::sqrt(2.0), 1e-9);
}

TEST(AssembleTest, ChainsSegmentsIntoOnePolyline) {
  std::vector<IsoSegment> segments = {
      {{0, 0}, {1, 0}}, {{2, 0}, {1, 0}}, {{2, 0}, {3, 1}}};
  const Isoline iso = AssembleIsoline(segments);
  ASSERT_EQ(iso.polylines.size(), 1u);
  EXPECT_EQ(iso.polylines[0].size(), 4u);
  EXPECT_EQ(iso.NumSegments(), 3u);
  EXPECT_NEAR(iso.TotalLength(), 2.0 + std::sqrt(2.0), 1e-12);
}

TEST(AssembleTest, SeparateComponentsStaySeparate) {
  std::vector<IsoSegment> segments = {
      {{0, 0}, {1, 0}}, {{5, 5}, {6, 5}}};
  const Isoline iso = AssembleIsoline(segments);
  EXPECT_EQ(iso.polylines.size(), 2u);
}

TEST(AssembleTest, EmptyInput) {
  const Isoline iso = AssembleIsoline({});
  EXPECT_TRUE(iso.polylines.empty());
  EXPECT_DOUBLE_EQ(iso.TotalLength(), 0.0);
}

class IsolineQueryTest : public ::testing::TestWithParam<IndexMethod> {};

TEST_P(IsolineQueryTest, MonotonicFieldAnalyticLength) {
  // w = x + y on the unit square: the isoline w = c (for c <= 1) is the
  // anti-diagonal segment from (c, 0) to (0, c), length c*sqrt(2).
  auto field = MakeMonotonicField(32, 32);
  ASSERT_TRUE(field.ok());
  FieldDatabaseOptions options;
  options.method = GetParam();
  auto db = FieldDatabase::Build(*field, options);
  ASSERT_TRUE(db.ok());

  for (const double c : {0.25, 0.5, 0.75, 1.0}) {
    IsolineQueryResult result;
    ASSERT_TRUE((*db)->IsolineQuery(c, &result).ok());
    EXPECT_NEAR(result.isoline.TotalLength(), c * std::sqrt(2.0), 1e-9)
        << "level " << c;
    // The anti-diagonal is one connected curve.
    EXPECT_EQ(result.isoline.polylines.size(), 1u);
  }
}

TEST_P(IsolineQueryTest, LevelOutsideRangeIsEmpty) {
  auto field = MakeMonotonicField(8, 8);
  ASSERT_TRUE(field.ok());
  FieldDatabaseOptions options;
  options.method = GetParam();
  auto db = FieldDatabase::Build(*field, options);
  ASSERT_TRUE(db.ok());
  IsolineQueryResult result;
  ASSERT_TRUE((*db)->IsolineQuery(5.0, &result).ok());
  EXPECT_TRUE(result.isoline.polylines.empty());
  EXPECT_EQ(result.stats.answer_cells, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, IsolineQueryTest,
    ::testing::Values(IndexMethod::kLinearScan, IndexMethod::kIAll,
                      IndexMethod::kIHilbert,
                      IndexMethod::kIntervalQuadtree),
    [](const ::testing::TestParamInfo<IndexMethod>& info) {
      std::string name = IndexMethodName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(IsolineQueryTest, FractalIsolineConsistentAcrossMethods) {
  FractalOptions fo;
  fo.size_exp = 5;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  const double level = field->ValueRange().Center();

  double reference_length = -1;
  for (const IndexMethod method :
       {IndexMethod::kLinearScan, IndexMethod::kIHilbert}) {
    FieldDatabaseOptions options;
    options.method = method;
    auto db = FieldDatabase::Build(*field, options);
    ASSERT_TRUE(db.ok());
    IsolineQueryResult result;
    ASSERT_TRUE((*db)->IsolineQuery(level, &result).ok());
    EXPECT_GT(result.isoline.TotalLength(), 0);
    if (reference_length < 0) {
      reference_length = result.isoline.TotalLength();
    } else {
      EXPECT_NEAR(result.isoline.TotalLength(), reference_length, 1e-9);
    }
  }
}

TEST(IsolineQueryTest, IsolineBoundsIsobandForSmallBands) {
  // The isoline at level c must lie inside the isoband [c-e, c+e]; as a
  // cheap proxy, every polyline vertex must evaluate to ~c.
  FractalOptions fo;
  fo.size_exp = 4;
  auto field = MakeFractalField(fo);
  ASSERT_TRUE(field.ok());
  FieldDatabaseOptions options;
  auto db = FieldDatabase::Build(*field, options);
  ASSERT_TRUE(db.ok());
  const double level = field->ValueRange().Center();
  IsolineQueryResult result;
  ASSERT_TRUE((*db)->IsolineQuery(level, &result).ok());
  ASSERT_FALSE(result.isoline.polylines.empty());
  int checked = 0;
  for (const auto& line : result.isoline.polylines) {
    for (const Point2& p : line) {
      // The fan-decomposition interpolant differs from bilinear off the
      // triangle edges, so evaluate leniently.
      StatusOr<double> w = field->ValueAt(p);
      if (!w.ok()) continue;
      EXPECT_NEAR(*w, level, 0.15 * field->ValueRange().Length());
      ++checked;
    }
  }
  EXPECT_GT(checked, 10);
}

}  // namespace
}  // namespace fielddb

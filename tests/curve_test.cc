#include "curve/curves.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "curve/gray.h"
#include "curve/hilbert.h"
#include "curve/zorder.h"

namespace fielddb {
namespace {

TEST(HilbertTest, Order1KnownSequence) {
  // The order-1 Hilbert curve visits (0,0), (0,1), (1,1), (1,0).
  EXPECT_EQ(HilbertEncode2D(1, 0, 0), 0u);
  EXPECT_EQ(HilbertEncode2D(1, 0, 1), 1u);
  EXPECT_EQ(HilbertEncode2D(1, 1, 1), 2u);
  EXPECT_EQ(HilbertEncode2D(1, 1, 0), 3u);
}

TEST(HilbertTest, Order2KnownValues) {
  // Classic xy2d formulation, spot-checked against the standard table.
  EXPECT_EQ(HilbertEncode2D(2, 0, 0), 0u);
  EXPECT_EQ(HilbertEncode2D(2, 1, 0), 1u);
  EXPECT_EQ(HilbertEncode2D(2, 1, 1), 2u);
  EXPECT_EQ(HilbertEncode2D(2, 0, 1), 3u);
  EXPECT_EQ(HilbertEncode2D(2, 0, 2), 4u);
  EXPECT_EQ(HilbertEncode2D(2, 3, 0), 15u);
}

TEST(HilbertTest, AdjacencyNoJumps) {
  // The property the subfield builder relies on (Section 3.1.2):
  // consecutive Hilbert indexes are 4-neighbors — no jumps.
  const int order = 5;
  const uint64_t n = uint64_t{1} << (2 * order);
  uint32_t px = 0, py = 0;
  HilbertDecode2D(order, 0, &px, &py);
  for (uint64_t d = 1; d < n; ++d) {
    uint32_t x = 0, y = 0;
    HilbertDecode2D(order, d, &x, &y);
    const int manhattan = std::abs(static_cast<int>(x) - static_cast<int>(px)) +
                          std::abs(static_cast<int>(y) - static_cast<int>(py));
    ASSERT_EQ(manhattan, 1) << "jump at d=" << d;
    px = x;
    py = y;
  }
}

TEST(HilbertTest, LargeOrderRoundtrip) {
  const int order = 20;
  for (const auto& [x, y] : std::vector<std::pair<uint32_t, uint32_t>>{
           {0, 0}, {1048575, 1048575}, {12345, 678910 % (1u << 20)},
           {999999, 3}}) {
    const uint64_t d = HilbertEncode2D(order, x, y);
    uint32_t rx = 0, ry = 0;
    HilbertDecode2D(order, d, &rx, &ry);
    EXPECT_EQ(rx, x);
    EXPECT_EQ(ry, y);
  }
}

TEST(HilbertNDTest, MatchesNothingButIsBijective3D) {
  const int order = 3;
  const int dims = 3;
  std::vector<bool> seen(size_t{1} << (order * dims), false);
  std::vector<uint32_t> coords(dims);
  for (uint32_t x = 0; x < 8; ++x) {
    for (uint32_t y = 0; y < 8; ++y) {
      for (uint32_t z = 0; z < 8; ++z) {
        const uint64_t d = HilbertEncodeND(order, {x, y, z});
        ASSERT_LT(d, seen.size());
        ASSERT_FALSE(seen[d]) << "collision at " << d;
        seen[d] = true;
        coords = {0, 0, 0};
        HilbertDecodeND(order, d, &coords);
        ASSERT_EQ(coords[0], x);
        ASSERT_EQ(coords[1], y);
        ASSERT_EQ(coords[2], z);
      }
    }
  }
}

TEST(HilbertNDTest, Adjacency3D) {
  const int order = 3;
  const uint64_t n = uint64_t{1} << (3 * order);
  std::vector<uint32_t> prev(3), cur(3);
  HilbertDecodeND(order, 0, &prev);
  for (uint64_t d = 1; d < n; ++d) {
    HilbertDecodeND(order, d, &cur);
    int manhattan = 0;
    for (int i = 0; i < 3; ++i) {
      manhattan += std::abs(static_cast<int>(cur[i]) -
                            static_cast<int>(prev[i]));
    }
    ASSERT_EQ(manhattan, 1) << "3-D jump at d=" << d;
    prev = cur;
  }
}

TEST(HilbertNDTest, TwoDimensionalVariantIsAlsoAHilbertCurve) {
  // The n-D (Skilling) construction at d=2 is a valid Hilbert curve —
  // bijective with unit steps — even though its orientation differs
  // from the classic 2-D formulation.
  const int order = 5;
  const uint64_t n = uint64_t{1} << (2 * order);
  std::vector<bool> seen(n, false);
  std::vector<uint32_t> prev(2), cur(2);
  HilbertDecodeND(order, 0, &prev);
  for (uint64_t d = 0; d < n; ++d) {
    HilbertDecodeND(order, d, &cur);
    const uint64_t e = HilbertEncodeND(order, cur);
    ASSERT_EQ(e, d);
    ASSERT_FALSE(seen[d]);
    seen[d] = true;
    if (d > 0) {
      const int manhattan =
          std::abs(static_cast<int>(cur[0]) - static_cast<int>(prev[0])) +
          std::abs(static_cast<int>(cur[1]) - static_cast<int>(prev[1]));
      ASSERT_EQ(manhattan, 1) << "jump at d=" << d;
    }
    prev = cur;
  }
}

TEST(MortonTest, KnownInterleaving) {
  EXPECT_EQ(MortonEncode2D(0, 0), 0u);
  EXPECT_EQ(MortonEncode2D(1, 0), 1u);
  EXPECT_EQ(MortonEncode2D(0, 1), 2u);
  EXPECT_EQ(MortonEncode2D(1, 1), 3u);
  EXPECT_EQ(MortonEncode2D(2, 0), 4u);
  EXPECT_EQ(MortonEncode2D(0xFFFFFFFFu, 0), 0x5555555555555555ULL);
}

TEST(MortonTest, Roundtrip) {
  for (const uint32_t x : {0u, 1u, 255u, 65535u, 123456789u}) {
    for (const uint32_t y : {0u, 7u, 1024u, 87654321u}) {
      uint32_t rx = 0, ry = 0;
      MortonDecode2D(MortonEncode2D(x, y), &rx, &ry);
      EXPECT_EQ(rx, x);
      EXPECT_EQ(ry, y);
    }
  }
}

TEST(GrayTest, GrayBinaryInverse) {
  for (uint64_t v = 0; v < 4096; ++v) {
    EXPECT_EQ(GrayToBinary(BinaryToGray(v)), v);
  }
  EXPECT_EQ(BinaryToGray(GrayToBinary(0xABCDEF0123456789ULL)),
            0xABCDEF0123456789ULL);
}

TEST(GrayTest, ConsecutiveGrayCodesDifferInOneBit) {
  for (uint64_t v = 0; v + 1 < 4096; ++v) {
    const uint64_t diff = BinaryToGray(v) ^ BinaryToGray(v + 1);
    EXPECT_EQ(diff & (diff - 1), 0u);  // power of two
  }
}

struct CurveCase {
  CurveType type;
  int order;
};

class CurveParamTest : public ::testing::TestWithParam<CurveCase> {};

TEST_P(CurveParamTest, EncodeIsBijective) {
  const auto [type, order] = GetParam();
  const auto curve = MakeCurve(type, order);
  ASSERT_NE(curve, nullptr);
  const uint32_t side = curve->side();
  std::vector<bool> seen(curve->num_points(), false);
  for (uint32_t y = 0; y < side; ++y) {
    for (uint32_t x = 0; x < side; ++x) {
      const uint64_t d = curve->Encode(x, y);
      ASSERT_LT(d, seen.size());
      ASSERT_FALSE(seen[d]);
      seen[d] = true;
    }
  }
}

TEST_P(CurveParamTest, DecodeInvertsEncode) {
  const auto [type, order] = GetParam();
  const auto curve = MakeCurve(type, order);
  const uint32_t side = curve->side();
  for (uint32_t y = 0; y < side; ++y) {
    for (uint32_t x = 0; x < side; ++x) {
      uint32_t rx = ~0u, ry = ~0u;
      curve->Decode(curve->Encode(x, y), &rx, &ry);
      ASSERT_EQ(rx, x);
      ASSERT_EQ(ry, y);
    }
  }
}

TEST_P(CurveParamTest, EncodeUnitQuantizesAndClamps) {
  const auto [type, order] = GetParam();
  const auto curve = MakeCurve(type, order);
  EXPECT_EQ(curve->EncodeUnit(0.0, 0.0), curve->Encode(0, 0));
  const uint32_t last = curve->side() - 1;
  // 1.0 and beyond clamp to the last cell.
  EXPECT_EQ(curve->EncodeUnit(1.0, 1.0), curve->Encode(last, last));
  EXPECT_EQ(curve->EncodeUnit(5.0, -3.0), curve->Encode(last, 0));
}

INSTANTIATE_TEST_SUITE_P(
    AllCurves, CurveParamTest,
    ::testing::Values(CurveCase{CurveType::kHilbert, 3},
                      CurveCase{CurveType::kHilbert, 5},
                      CurveCase{CurveType::kZOrder, 3},
                      CurveCase{CurveType::kZOrder, 5},
                      CurveCase{CurveType::kGrayCode, 3},
                      CurveCase{CurveType::kGrayCode, 5},
                      CurveCase{CurveType::kRowMajor, 3},
                      CurveCase{CurveType::kRowMajor, 5}),
    [](const ::testing::TestParamInfo<CurveCase>& info) {
      std::string name = CurveTypeName(info.param.type);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_order" + std::to_string(info.param.order);
    });

// Measures the clustering metric of Faloutsos & Roseman [7] / Moon et
// al.: the average number of contiguous index runs ("clusters") that an
// axis-aligned query rectangle is split into along the curve. Fewer runs
// mean fewer disk seeks — the paper's stated reason for choosing Hilbert
// over Z-order and Gray-code (Section 3.1.2).
double MeanQueryClusters(const SpaceFillingCurve& curve) {
  const uint32_t side = curve.side();
  uint64_t total_runs = 0;
  uint64_t num_queries = 0;
  // All square queries of a few sizes at a coarse stride.
  for (const uint32_t q : {4u, 8u, 16u}) {
    for (uint32_t y = 0; y + q <= side; y += 3) {
      for (uint32_t x = 0; x + q <= side; x += 3) {
        std::vector<uint64_t> idx;
        idx.reserve(q * q);
        for (uint32_t dy = 0; dy < q; ++dy) {
          for (uint32_t dx = 0; dx < q; ++dx) {
            idx.push_back(curve.Encode(x + dx, y + dy));
          }
        }
        std::sort(idx.begin(), idx.end());
        uint64_t runs = 1;
        for (size_t i = 1; i < idx.size(); ++i) {
          if (idx[i] != idx[i - 1] + 1) ++runs;
        }
        total_runs += runs;
        ++num_queries;
      }
    }
  }
  return static_cast<double>(total_runs) / num_queries;
}

TEST(CurveClusteringTest, HilbertClustersBest) {
  const int order = 6;
  const double hilbert =
      MeanQueryClusters(*MakeCurve(CurveType::kHilbert, order));
  const double zorder =
      MeanQueryClusters(*MakeCurve(CurveType::kZOrder, order));
  const double gray =
      MeanQueryClusters(*MakeCurve(CurveType::kGrayCode, order));
  const double row =
      MeanQueryClusters(*MakeCurve(CurveType::kRowMajor, order));
  EXPECT_LT(hilbert, zorder);
  EXPECT_LT(hilbert, gray);
  EXPECT_LT(hilbert, row);
}

}  // namespace
}  // namespace fielddb

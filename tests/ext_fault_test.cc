// Fault-injection coverage for the extension engines (vector, volume,
// temporal): their query and update paths run over a wrapped page file
// that injects transient read errors, detected corruption, and
// kill-points. Faults must surface as status errors (never wrong
// answers or crashes), the engines must recover once the fault clears,
// and the new update entry points must maintain their index invariants.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "gen/fractal.h"
#include "storage/fault_injection.h"
#include "temporal/temporal_index.h"
#include "vector/vector_index.h"
#include "volume/volume_index.h"

namespace fielddb {
namespace {

// Factory installing a FaultInjectingPageFile around the default memory
// file; `*injector_out` receives the wrapper to schedule faults on.
std::function<std::unique_ptr<PageFile>(uint32_t)> InjectingFactory(
    FaultInjectingPageFile** injector_out) {
  return [injector_out](uint32_t page_size) -> std::unique_ptr<PageFile> {
    auto wrapped = std::make_unique<FaultInjectingPageFile>(
        std::make_unique<MemPageFile>(page_size));
    *injector_out = wrapped.get();
    return wrapped;
  };
}

// --- Vector fields ---------------------------------------------------

// u = x + y, v = x - y over the unit square (affine, analytic answers).
VectorGridField MakeAffineVectorField(uint32_t n) {
  std::vector<double> su, sv;
  for (uint32_t j = 0; j <= n; ++j) {
    for (uint32_t i = 0; i <= n; ++i) {
      const double x = static_cast<double>(i) / n;
      const double y = static_cast<double>(j) / n;
      su.push_back(x + y);
      sv.push_back(x - y);
    }
  }
  auto field = VectorGridField::Create(n, n, Rect2{{0, 0}, {1, 1}}, su, sv);
  EXPECT_TRUE(field.ok());
  return std::move(field).value();
}

class VectorFaultTest : public ::testing::TestWithParam<VectorIndexMethod> {
 protected:
  void Build(uint32_t n = 8) {
    field_ = std::make_unique<VectorGridField>(MakeAffineVectorField(n));
    VectorFieldDatabase::Options options;
    options.method = GetParam();
    options.page_file_factory = InjectingFactory(&injector_);
    auto db = VectorFieldDatabase::Build(*field_, options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
    ASSERT_NE(injector_, nullptr);
  }

  // A band covering the whole value space: touches every store page.
  VectorBandQuery EverythingQuery() const {
    VectorBandQuery q;
    q.u = ValueInterval{-1000, 1000};
    q.v = ValueInterval{-1000, 1000};
    return q;
  }

  std::unique_ptr<VectorGridField> field_;
  std::unique_ptr<VectorFieldDatabase> db_;
  FaultInjectingPageFile* injector_ = nullptr;
};

TEST_P(VectorFaultTest, ReadFaultSurfacesAndClears) {
  Build();
  VectorQueryResult reference;
  ASSERT_TRUE(db_->BandQuery(EverythingQuery(), &reference).ok());

  ASSERT_TRUE(db_->pool().Clear().ok());  // force physical reads
  injector_->FailAllReads(0);
  VectorQueryResult result;
  EXPECT_FALSE(db_->BandQuery(EverythingQuery(), &result).ok());
  EXPECT_GT(injector_->counters().read_errors, 0u);

  injector_->ClearFaults();
  ASSERT_TRUE(db_->BandQuery(EverythingQuery(), &result).ok());
  EXPECT_EQ(result.stats.answer_cells, reference.stats.answer_cells);
}

TEST_P(VectorFaultTest, DetectedCorruptionSurfaces) {
  Build();
  ASSERT_TRUE(db_->pool().Clear().ok());
  injector_->CorruptPage(0);
  VectorQueryResult result;
  const Status s = db_->BandQuery(EverythingQuery(), &result);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST_P(VectorFaultTest, KillPointSweepNeverCorruptsState) {
  Build();
  VectorQueryResult reference;
  ASSERT_TRUE(db_->BandQuery(EverythingQuery(), &reference).ok());
  for (int ops = 0; ops < 8; ++ops) {
    SCOPED_TRACE(ops);
    ASSERT_TRUE(db_->pool().Clear().ok());
    injector_->KillAfterOps(ops);
    VectorQueryResult result;
    const Status s = db_->BandQuery(EverythingQuery(), &result);
    injector_->ClearFaults();
    if (s.ok()) {
      EXPECT_EQ(result.stats.answer_cells, reference.stats.answer_cells);
    }
    // Dead device or not, the engine recovers once the fault clears.
    ASSERT_TRUE(db_->pool().Clear().ok());
    VectorQueryResult after;
    ASSERT_TRUE(db_->BandQuery(EverythingQuery(), &after).ok());
    EXPECT_EQ(after.stats.answer_cells, reference.stats.answer_cells);
  }
}

TEST_P(VectorFaultTest, UpdateMovesCellAcrossBands) {
  Build();
  ASSERT_TRUE(
      db_->UpdateCellValues(5, std::vector<double>(4, 300.0),
                            std::vector<double>(4, -300.0))
          .ok());
  VectorBandQuery marker;
  marker.u = ValueInterval{299, 301};
  marker.v = ValueInterval{-301, -299};
  VectorQueryResult result;
  ASSERT_TRUE(db_->BandQuery(marker, &result).ok());
  EXPECT_EQ(result.stats.answer_cells, 1u);  // tree refresh: no false neg
  // The whole-space query still sees every cell exactly once.
  ASSERT_TRUE(db_->BandQuery(EverythingQuery(), &result).ok());
  EXPECT_EQ(result.stats.answer_cells, field_->NumCells());
}

TEST_P(VectorFaultTest, UpdateValidatesArguments) {
  Build();
  EXPECT_EQ(db_->UpdateCellValues(9999, {1, 1, 1, 1}, {1, 1, 1, 1}).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(db_->UpdateCellValues(0, {1, 1}, {1, 1, 1, 1}).code(),
            StatusCode::kInvalidArgument);
}

TEST_P(VectorFaultTest, FaultedUpdateLeavesStateUnchanged) {
  Build();
  VectorQueryResult reference;
  ASSERT_TRUE(db_->BandQuery(EverythingQuery(), &reference).ok());

  ASSERT_TRUE(db_->pool().Clear().ok());
  for (PageId p = 0; p < injector_->NumPages(); ++p) {
    injector_->FailAllReads(p);
  }
  EXPECT_FALSE(db_->UpdateCellValues(5, std::vector<double>(4, 300.0),
                                     std::vector<double>(4, -300.0))
                   .ok());
  injector_->ClearFaults();

  // No marker values leaked in.
  VectorBandQuery marker;
  marker.u = ValueInterval{299, 301};
  marker.v = ValueInterval{-301, -299};
  VectorQueryResult result;
  ASSERT_TRUE(db_->BandQuery(marker, &result).ok());
  EXPECT_EQ(result.stats.answer_cells, 0u);
  ASSERT_TRUE(db_->BandQuery(EverythingQuery(), &result).ok());
  EXPECT_EQ(result.stats.answer_cells, reference.stats.answer_cells);

  // And the update path works once the device is healthy again.
  ASSERT_TRUE(db_->UpdateCellValues(5, std::vector<double>(4, 300.0),
                                    std::vector<double>(4, -300.0))
                  .ok());
  ASSERT_TRUE(db_->BandQuery(marker, &result).ok());
  EXPECT_EQ(result.stats.answer_cells, 1u);
}

INSTANTIATE_TEST_SUITE_P(BothMethods, VectorFaultTest,
                         ::testing::Values(VectorIndexMethod::kLinearScan,
                                           VectorIndexMethod::kIHilbert),
                         [](const auto& info) {
                           return info.param ==
                                          VectorIndexMethod::kLinearScan
                                      ? "LinearScan"
                                      : "IHilbert";
                         });

// --- Volume fields ---------------------------------------------------

class VolumeFaultTest : public ::testing::TestWithParam<VolumeIndexMethod> {
 protected:
  void Build() {
    VolumeFractalOptions fo;
    fo.nx = fo.ny = fo.nz = 4;  // 64 voxels
    auto field = MakeFractalVolume(fo);
    ASSERT_TRUE(field.ok());
    voxel_volume_ = field->VoxelVolume();
    num_voxels_ = field->NumCells();
    VolumeFieldDatabase::Options options;
    options.method = GetParam();
    options.page_file_factory = InjectingFactory(&injector_);
    auto db = VolumeFieldDatabase::Build(*field, options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
    ASSERT_NE(injector_, nullptr);
  }

  std::unique_ptr<VolumeFieldDatabase> db_;
  FaultInjectingPageFile* injector_ = nullptr;
  double voxel_volume_ = 0.0;
  uint64_t num_voxels_ = 0;
};

TEST_P(VolumeFaultTest, ReadFaultSurfacesAndClears) {
  Build();
  const ValueInterval everything{-1e6, 1e6};
  VolumeQueryResult reference;
  ASSERT_TRUE(db_->BandQuery(everything, &reference).ok());

  ASSERT_TRUE(db_->pool().Clear().ok());
  injector_->FailAllReads(0);
  VolumeQueryResult result;
  EXPECT_FALSE(db_->BandQuery(everything, &result).ok());

  injector_->ClearFaults();
  ASSERT_TRUE(db_->BandQuery(everything, &result).ok());
  EXPECT_DOUBLE_EQ(result.volume, reference.volume);
}

TEST_P(VolumeFaultTest, UpdateMovesVoxelAcrossBands) {
  Build();
  ASSERT_TRUE(
      db_->UpdateVoxelValues(7, std::vector<double>(8, 700.0)).ok());
  VolumeQueryResult result;
  ASSERT_TRUE(db_->BandQuery(ValueInterval{699, 701}, &result).ok());
  EXPECT_EQ(result.stats.answer_cells, 1u);
  EXPECT_NEAR(result.volume, voxel_volume_, 1e-12);  // the whole voxel
  // Whole-space query still covers every voxel.
  ASSERT_TRUE(db_->BandQuery(ValueInterval{-1e6, 1e6}, &result).ok());
  EXPECT_EQ(result.stats.answer_cells, num_voxels_);
}

TEST_P(VolumeFaultTest, UpdateValidatesArguments) {
  Build();
  EXPECT_EQ(
      db_->UpdateVoxelValues(999999, std::vector<double>(8, 0.0)).code(),
      StatusCode::kOutOfRange);
  EXPECT_EQ(db_->UpdateVoxelValues(0, {1.0, 2.0}).code(),
            StatusCode::kInvalidArgument);
}

TEST_P(VolumeFaultTest, FaultedUpdateLeavesStateUnchanged) {
  Build();
  ASSERT_TRUE(db_->pool().Clear().ok());
  for (PageId p = 0; p < injector_->NumPages(); ++p) {
    injector_->FailAllReads(p);
  }
  EXPECT_FALSE(
      db_->UpdateVoxelValues(7, std::vector<double>(8, 700.0)).ok());
  injector_->ClearFaults();
  VolumeQueryResult result;
  ASSERT_TRUE(db_->BandQuery(ValueInterval{699, 701}, &result).ok());
  EXPECT_EQ(result.stats.answer_cells, 0u);
}

INSTANTIATE_TEST_SUITE_P(BothMethods, VolumeFaultTest,
                         ::testing::Values(VolumeIndexMethod::kLinearScan,
                                           VolumeIndexMethod::kIHilbert),
                         [](const auto& info) {
                           return info.param ==
                                          VolumeIndexMethod::kLinearScan
                                      ? "LinearScan"
                                      : "IHilbert";
                         });

// --- Temporal fields -------------------------------------------------

// T snapshots of a drifting fractal terrain (same generator as
// temporal_test).
TemporalGridField MakeDriftingField(int size_exp, uint32_t num_snapshots,
                                    uint64_t seed) {
  FractalOptions fo;
  fo.size_exp = size_exp;
  fo.roughness_h = 0.7;
  fo.seed = seed;
  const std::vector<double> base = DiamondSquare(fo);
  fo.seed = seed + 1;
  std::vector<double> trend = DiamondSquare(fo);
  for (double& w : trend) w *= 0.3;
  std::vector<std::vector<double>> snapshots(num_snapshots);
  for (uint32_t k = 0; k < num_snapshots; ++k) {
    snapshots[k].resize(base.size());
    for (size_t i = 0; i < base.size(); ++i) {
      snapshots[k][i] = base[i] + k * trend[i];
    }
  }
  const uint32_t n = uint32_t{1} << size_exp;
  auto field = TemporalGridField::Create(n, n, Rect2{{0, 0}, {1, 1}},
                                         std::move(snapshots));
  EXPECT_TRUE(field.ok());
  return std::move(field).value();
}

class TemporalFaultTest : public ::testing::Test {
 protected:
  void Build() {
    TemporalFieldDatabase::Options options;
    options.page_file_factory = InjectingFactory(&injector_);
    const TemporalGridField field = MakeDriftingField(3, 4, 11);
    auto db = TemporalFieldDatabase::Build(field, options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
    ASSERT_NE(injector_, nullptr);
  }

  std::unique_ptr<TemporalFieldDatabase> db_;
  FaultInjectingPageFile* injector_ = nullptr;
};

TEST_F(TemporalFaultTest, ReadFaultSurfacesAndClears) {
  Build();
  const ValueInterval everything{-1e6, 1e6};
  ValueQueryResult reference;
  ASSERT_TRUE(db_->SnapshotValueQuery(0.5, everything, &reference).ok());

  ASSERT_TRUE(db_->pool().Clear().ok());
  injector_->FailAllReads(0);
  ValueQueryResult result;
  EXPECT_FALSE(db_->SnapshotValueQuery(0.5, everything, &result).ok());

  injector_->ClearFaults();
  ASSERT_TRUE(db_->SnapshotValueQuery(0.5, everything, &result).ok());
  EXPECT_EQ(result.stats.answer_cells, reference.stats.answer_cells);
}

TEST_F(TemporalFaultTest, TimeRangeCandidatesSurfacesFaults) {
  Build();
  ASSERT_TRUE(db_->pool().Clear().ok());
  injector_->FailAllReads(0);
  std::vector<CellId> cells;
  EXPECT_FALSE(
      db_->TimeRangeCandidates(ValueInterval{-1e6, 1e6}, 0, 3, &cells)
          .ok());
  injector_->ClearFaults();
  cells.clear();
  ASSERT_TRUE(
      db_->TimeRangeCandidates(ValueInterval{-1e6, 1e6}, 0, 3, &cells)
          .ok());
  EXPECT_EQ(cells.size(), 64u);  // every cell of the 8x8 grid
}

TEST_F(TemporalFaultTest, SnapshotUpdateVisibleInBothSlabs) {
  Build();
  // Rewrite cell 5's samples at snapshot 1 to a marker far outside the
  // native range. Snapshot 1 borders slabs [0,1] and [1,2]: queries at
  // t=1 must see the marker; t=0 and t=2 see the blended values only at
  // the updated endpoint, so the marker band is empty there.
  ASSERT_TRUE(
      db_->UpdateSnapshotCellValues(1, 5, std::vector<double>(4, 500.0))
          .ok());
  const ValueInterval marker{499, 501};
  ValueQueryResult at1;
  ASSERT_TRUE(db_->SnapshotValueQuery(1.0, marker, &at1).ok());
  EXPECT_EQ(at1.stats.answer_cells, 1u);
  ValueQueryResult at0, at2;
  ASSERT_TRUE(db_->SnapshotValueQuery(0.0, marker, &at0).ok());
  EXPECT_EQ(at0.stats.answer_cells, 0u);
  ASSERT_TRUE(db_->SnapshotValueQuery(2.0, marker, &at2).ok());
  EXPECT_EQ(at2.stats.answer_cells, 0u);
  // Mid-slab times interpolate toward the marker: at t=0.5 the cell
  // reaches ~250, far above the native range.
  ValueQueryResult mid;
  ASSERT_TRUE(
      db_->SnapshotValueQuery(0.5, ValueInterval{100, 400}, &mid).ok());
  EXPECT_EQ(mid.stats.answer_cells, 1u);
  // Time-range filtering finds the cell through the refreshed tree.
  std::vector<CellId> cells;
  ASSERT_TRUE(db_->TimeRangeCandidates(marker, 0, 3, &cells).ok());
  EXPECT_NE(std::find(cells.begin(), cells.end(), CellId{5}), cells.end());
}

TEST_F(TemporalFaultTest, BoundarySnapshotsTouchOneSlab) {
  Build();
  // Snapshot 0 only borders slab [0,1]; snapshot T-1 only [T-2, T-1].
  ASSERT_TRUE(
      db_->UpdateSnapshotCellValues(0, 3, std::vector<double>(4, 600.0))
          .ok());
  ASSERT_TRUE(
      db_->UpdateSnapshotCellValues(3, 9, std::vector<double>(4, 700.0))
          .ok());
  ValueQueryResult result;
  ASSERT_TRUE(
      db_->SnapshotValueQuery(0.0, ValueInterval{599, 601}, &result).ok());
  EXPECT_EQ(result.stats.answer_cells, 1u);
  ASSERT_TRUE(
      db_->SnapshotValueQuery(3.0, ValueInterval{699, 701}, &result).ok());
  EXPECT_EQ(result.stats.answer_cells, 1u);
}

TEST_F(TemporalFaultTest, UpdateValidatesArguments) {
  Build();
  EXPECT_EQ(db_->UpdateSnapshotCellValues(9, 0, {1, 1, 1, 1}).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(db_->UpdateSnapshotCellValues(1, 9999, {1, 1, 1, 1}).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(db_->UpdateSnapshotCellValues(1, 0, {1, 1}).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(TemporalFaultTest, FaultedUpdateLeavesStateUnchanged) {
  Build();
  ASSERT_TRUE(db_->pool().Clear().ok());
  for (PageId p = 0; p < injector_->NumPages(); ++p) {
    injector_->FailAllReads(p);
  }
  EXPECT_FALSE(
      db_->UpdateSnapshotCellValues(1, 5, std::vector<double>(4, 500.0))
          .ok());
  injector_->ClearFaults();
  ValueQueryResult result;
  ASSERT_TRUE(
      db_->SnapshotValueQuery(1.0, ValueInterval{499, 501}, &result).ok());
  EXPECT_EQ(result.stats.answer_cells, 0u);
}

}  // namespace
}  // namespace fielddb

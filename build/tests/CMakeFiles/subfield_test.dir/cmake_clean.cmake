file(REMOVE_RECURSE
  "CMakeFiles/subfield_test.dir/subfield_test.cc.o"
  "CMakeFiles/subfield_test.dir/subfield_test.cc.o.d"
  "subfield_test"
  "subfield_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subfield_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for subfield_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for isoline_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/isoline_test.dir/isoline_test.cc.o"
  "CMakeFiles/isoline_test.dir/isoline_test.cc.o.d"
  "isoline_test"
  "isoline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isoline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for nearest_test.
# This may be replaced when dependencies are built.

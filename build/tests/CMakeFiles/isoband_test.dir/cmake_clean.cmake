file(REMOVE_RECURSE
  "CMakeFiles/isoband_test.dir/isoband_test.cc.o"
  "CMakeFiles/isoband_test.dir/isoband_test.cc.o.d"
  "isoband_test"
  "isoband_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isoband_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for isoband_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8a_terrain.dir/bench_fig8a_terrain.cc.o"
  "CMakeFiles/bench_fig8a_terrain.dir/bench_fig8a_terrain.cc.o.d"
  "bench_fig8a_terrain"
  "bench_fig8a_terrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8a_terrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

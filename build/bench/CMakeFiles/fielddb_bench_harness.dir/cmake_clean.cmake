file(REMOVE_RECURSE
  "CMakeFiles/fielddb_bench_harness.dir/harness.cc.o"
  "CMakeFiles/fielddb_bench_harness.dir/harness.cc.o.d"
  "libfielddb_bench_harness.a"
  "libfielddb_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fielddb_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libfielddb_bench_harness.a"
)

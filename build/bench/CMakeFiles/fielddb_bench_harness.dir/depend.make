# Empty dependencies file for fielddb_bench_harness.
# This may be replaced when dependencies are built.

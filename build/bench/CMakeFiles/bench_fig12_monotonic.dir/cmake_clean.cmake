file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_monotonic.dir/bench_fig12_monotonic.cc.o"
  "CMakeFiles/bench_fig12_monotonic.dir/bench_fig12_monotonic.cc.o.d"
  "bench_fig12_monotonic"
  "bench_fig12_monotonic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_monotonic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ablation_pagesize.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pagesize.dir/bench_ablation_pagesize.cc.o"
  "CMakeFiles/bench_ablation_pagesize.dir/bench_ablation_pagesize.cc.o.d"
  "bench_ablation_pagesize"
  "bench_ablation_pagesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pagesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

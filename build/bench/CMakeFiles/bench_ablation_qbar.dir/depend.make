# Empty dependencies file for bench_ablation_qbar.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_qbar.dir/bench_ablation_qbar.cc.o"
  "CMakeFiles/bench_ablation_qbar.dir/bench_ablation_qbar.cc.o.d"
  "bench_ablation_qbar"
  "bench_ablation_qbar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_qbar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_vector.dir/bench_ext_vector.cc.o"
  "CMakeFiles/bench_ext_vector.dir/bench_ext_vector.cc.o.d"
  "bench_ext_vector"
  "bench_ext_vector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

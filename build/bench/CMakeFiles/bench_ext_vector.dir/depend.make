# Empty dependencies file for bench_ext_vector.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8b_noise_tin.dir/bench_fig8b_noise_tin.cc.o"
  "CMakeFiles/bench_fig8b_noise_tin.dir/bench_fig8b_noise_tin.cc.o.d"
  "bench_fig8b_noise_tin"
  "bench_fig8b_noise_tin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8b_noise_tin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig8b_noise_tin.
# This may be replaced when dependencies are built.

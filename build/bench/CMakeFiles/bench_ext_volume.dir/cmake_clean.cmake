file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_volume.dir/bench_ext_volume.cc.o"
  "CMakeFiles/bench_ext_volume.dir/bench_ext_volume.cc.o.d"
  "bench_ext_volume"
  "bench_ext_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

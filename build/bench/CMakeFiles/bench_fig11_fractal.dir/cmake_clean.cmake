file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_fractal.dir/bench_fig11_fractal.cc.o"
  "CMakeFiles/bench_fig11_fractal.dir/bench_fig11_fractal.cc.o.d"
  "bench_fig11_fractal"
  "bench_fig11_fractal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_fractal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig11_fractal.
# This may be replaced when dependencies are built.

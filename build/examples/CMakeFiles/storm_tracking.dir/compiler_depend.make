# Empty compiler generated dependencies file for storm_tracking.
# This may be replaced when dependencies are built.

# Empty dependencies file for urban_noise.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/urban_noise.dir/urban_noise.cc.o"
  "CMakeFiles/urban_noise.dir/urban_noise.cc.o.d"
  "urban_noise"
  "urban_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urban_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/terrain_subfields.dir/terrain_subfields.cc.o"
  "CMakeFiles/terrain_subfields.dir/terrain_subfields.cc.o.d"
  "terrain_subfields"
  "terrain_subfields.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terrain_subfields.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for terrain_subfields.
# This may be replaced when dependencies are built.

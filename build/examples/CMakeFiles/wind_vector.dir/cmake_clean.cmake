file(REMOVE_RECURSE
  "CMakeFiles/wind_vector.dir/wind_vector.cc.o"
  "CMakeFiles/wind_vector.dir/wind_vector.cc.o.d"
  "wind_vector"
  "wind_vector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wind_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

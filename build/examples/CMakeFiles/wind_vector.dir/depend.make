# Empty dependencies file for wind_vector.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ocean_salmon.
# This may be replaced when dependencies are built.

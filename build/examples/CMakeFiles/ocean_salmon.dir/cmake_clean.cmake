file(REMOVE_RECURSE
  "CMakeFiles/ocean_salmon.dir/ocean_salmon.cc.o"
  "CMakeFiles/ocean_salmon.dir/ocean_salmon.cc.o.d"
  "ocean_salmon"
  "ocean_salmon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocean_salmon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

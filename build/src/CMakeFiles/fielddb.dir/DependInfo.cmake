
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/geometry.cc" "src/CMakeFiles/fielddb.dir/common/geometry.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/common/geometry.cc.o.d"
  "/root/repo/src/common/interval.cc" "src/CMakeFiles/fielddb.dir/common/interval.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/common/interval.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/fielddb.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/fielddb.dir/common/status.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/common/status.cc.o.d"
  "/root/repo/src/core/field_database.cc" "src/CMakeFiles/fielddb.dir/core/field_database.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/core/field_database.cc.o.d"
  "/root/repo/src/core/persist.cc" "src/CMakeFiles/fielddb.dir/core/persist.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/core/persist.cc.o.d"
  "/root/repo/src/core/stats.cc" "src/CMakeFiles/fielddb.dir/core/stats.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/core/stats.cc.o.d"
  "/root/repo/src/curve/curves.cc" "src/CMakeFiles/fielddb.dir/curve/curves.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/curve/curves.cc.o.d"
  "/root/repo/src/curve/gray.cc" "src/CMakeFiles/fielddb.dir/curve/gray.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/curve/gray.cc.o.d"
  "/root/repo/src/curve/hilbert.cc" "src/CMakeFiles/fielddb.dir/curve/hilbert.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/curve/hilbert.cc.o.d"
  "/root/repo/src/curve/zorder.cc" "src/CMakeFiles/fielddb.dir/curve/zorder.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/curve/zorder.cc.o.d"
  "/root/repo/src/field/field.cc" "src/CMakeFiles/fielddb.dir/field/field.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/field/field.cc.o.d"
  "/root/repo/src/field/grid_field.cc" "src/CMakeFiles/fielddb.dir/field/grid_field.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/field/grid_field.cc.o.d"
  "/root/repo/src/field/interpolation.cc" "src/CMakeFiles/fielddb.dir/field/interpolation.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/field/interpolation.cc.o.d"
  "/root/repo/src/field/isoband.cc" "src/CMakeFiles/fielddb.dir/field/isoband.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/field/isoband.cc.o.d"
  "/root/repo/src/field/isoline.cc" "src/CMakeFiles/fielddb.dir/field/isoline.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/field/isoline.cc.o.d"
  "/root/repo/src/field/region.cc" "src/CMakeFiles/fielddb.dir/field/region.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/field/region.cc.o.d"
  "/root/repo/src/field/tin_field.cc" "src/CMakeFiles/fielddb.dir/field/tin_field.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/field/tin_field.cc.o.d"
  "/root/repo/src/gen/delaunay.cc" "src/CMakeFiles/fielddb.dir/gen/delaunay.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/gen/delaunay.cc.o.d"
  "/root/repo/src/gen/fractal.cc" "src/CMakeFiles/fielddb.dir/gen/fractal.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/gen/fractal.cc.o.d"
  "/root/repo/src/gen/monotonic.cc" "src/CMakeFiles/fielddb.dir/gen/monotonic.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/gen/monotonic.cc.o.d"
  "/root/repo/src/gen/noise_tin.cc" "src/CMakeFiles/fielddb.dir/gen/noise_tin.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/gen/noise_tin.cc.o.d"
  "/root/repo/src/gen/workload.cc" "src/CMakeFiles/fielddb.dir/gen/workload.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/gen/workload.cc.o.d"
  "/root/repo/src/index/cell_store.cc" "src/CMakeFiles/fielddb.dir/index/cell_store.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/index/cell_store.cc.o.d"
  "/root/repo/src/index/i_all.cc" "src/CMakeFiles/fielddb.dir/index/i_all.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/index/i_all.cc.o.d"
  "/root/repo/src/index/i_hilbert.cc" "src/CMakeFiles/fielddb.dir/index/i_hilbert.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/index/i_hilbert.cc.o.d"
  "/root/repo/src/index/interval_quadtree.cc" "src/CMakeFiles/fielddb.dir/index/interval_quadtree.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/index/interval_quadtree.cc.o.d"
  "/root/repo/src/index/interval_tree.cc" "src/CMakeFiles/fielddb.dir/index/interval_tree.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/index/interval_tree.cc.o.d"
  "/root/repo/src/index/linear_scan.cc" "src/CMakeFiles/fielddb.dir/index/linear_scan.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/index/linear_scan.cc.o.d"
  "/root/repo/src/index/row_ip_index.cc" "src/CMakeFiles/fielddb.dir/index/row_ip_index.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/index/row_ip_index.cc.o.d"
  "/root/repo/src/index/subfield.cc" "src/CMakeFiles/fielddb.dir/index/subfield.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/index/subfield.cc.o.d"
  "/root/repo/src/index/subfield_maintenance.cc" "src/CMakeFiles/fielddb.dir/index/subfield_maintenance.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/index/subfield_maintenance.cc.o.d"
  "/root/repo/src/rtree/rstar_tree.cc" "src/CMakeFiles/fielddb.dir/rtree/rstar_tree.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/rtree/rstar_tree.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/fielddb.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/page_file.cc" "src/CMakeFiles/fielddb.dir/storage/page_file.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/storage/page_file.cc.o.d"
  "/root/repo/src/temporal/temporal_field.cc" "src/CMakeFiles/fielddb.dir/temporal/temporal_field.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/temporal/temporal_field.cc.o.d"
  "/root/repo/src/temporal/temporal_index.cc" "src/CMakeFiles/fielddb.dir/temporal/temporal_index.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/temporal/temporal_index.cc.o.d"
  "/root/repo/src/vector/vector_field.cc" "src/CMakeFiles/fielddb.dir/vector/vector_field.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/vector/vector_field.cc.o.d"
  "/root/repo/src/vector/vector_index.cc" "src/CMakeFiles/fielddb.dir/vector/vector_index.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/vector/vector_index.cc.o.d"
  "/root/repo/src/vector/vector_isoband.cc" "src/CMakeFiles/fielddb.dir/vector/vector_isoband.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/vector/vector_isoband.cc.o.d"
  "/root/repo/src/volume/tet_band.cc" "src/CMakeFiles/fielddb.dir/volume/tet_band.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/volume/tet_band.cc.o.d"
  "/root/repo/src/volume/volume_field.cc" "src/CMakeFiles/fielddb.dir/volume/volume_field.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/volume/volume_field.cc.o.d"
  "/root/repo/src/volume/volume_index.cc" "src/CMakeFiles/fielddb.dir/volume/volume_index.cc.o" "gcc" "src/CMakeFiles/fielddb.dir/volume/volume_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

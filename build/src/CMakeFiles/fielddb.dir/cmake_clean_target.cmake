file(REMOVE_RECURSE
  "libfielddb.a"
)

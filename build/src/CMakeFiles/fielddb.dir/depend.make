# Empty dependencies file for fielddb.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fielddb_cli.dir/fielddb_cli.cc.o"
  "CMakeFiles/fielddb_cli.dir/fielddb_cli.cc.o.d"
  "fielddb_cli"
  "fielddb_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fielddb_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fielddb_cli.
# This may be replaced when dependencies are built.

// Ablation for DESIGN.md choice #2 — adaptive cost grouping vs. the
// fixed threshold of the Interval Quadtree [15]. The paper's critique
// (Section 3.1.1): "there is no justifiable way to decide the optimal
// threshold". This bench sweeps the threshold on the Fig. 8a terrain and
// compares every point against the threshold-free I-Hilbert.

#include <cstdio>
#include <cstring>

#include "core/field_database.h"
#include "gen/fractal.h"
#include "gen/workload.h"

namespace {

using namespace fielddb;

struct Row {
  const char* label;
  uint64_t subfields;
  double avg_ms;
  double avg_pages;
};

StatusOr<Row> Measure(const GridField& field,
                      const FieldDatabaseOptions& options,
                      const char* label, uint32_t num_queries) {
  StatusOr<std::unique_ptr<FieldDatabase>> db =
      FieldDatabase::Build(field, options);
  if (!db.ok()) return db.status();
  WorkloadOptions wo;
  wo.num_queries = num_queries;
  wo.seed = 2002;
  wo.qinterval_fraction = 0.02;
  StatusOr<WorkloadStats> ws = (*db)->RunWorkload(
      GenerateValueQueries(field.ValueRange(), wo));
  if (!ws.ok()) return ws.status();
  return Row{label, (*db)->build_info().num_subfields, ws->avg_wall_ms,
             ws->avg_logical_reads};
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t num_queries = 200;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) num_queries = 30;
  }

  StatusOr<GridField> terrain = MakeRoseburgLikeTerrain();
  if (!terrain.ok()) {
    std::fprintf(stderr, "%s\n", terrain.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "=== Ablation: fixed threshold (Interval Quadtree) vs adaptive "
      "cost (I-Hilbert), Qinterval=0.02 ===\n");
  std::printf("%-22s %11s %10s %11s\n", "config", "subfields", "avg_ms",
              "avg_pages");

  static const double kThresholds[] = {0.01, 0.02, 0.05, 0.1, 0.2, 0.4};
  char label[64];
  for (const double t : kThresholds) {
    FieldDatabaseOptions options;
    options.method = IndexMethod::kIntervalQuadtree;
    options.build_spatial_index = false;
    options.iqt.threshold_fraction = t;
    std::snprintf(label, sizeof(label), "I-Quadtree t=%.2f", t);
    StatusOr<Row> row = Measure(*terrain, options, label, num_queries);
    if (!row.ok()) {
      std::fprintf(stderr, "%s\n", row.status().ToString().c_str());
      return 1;
    }
    std::printf("%-22s %11llu %10.4f %11.1f\n", row->label,
                static_cast<unsigned long long>(row->subfields),
                row->avg_ms, row->avg_pages);
  }

  FieldDatabaseOptions options;
  options.method = IndexMethod::kIHilbert;
  options.build_spatial_index = false;
  StatusOr<Row> hilbert =
      Measure(*terrain, options, "I-Hilbert (no thresh)", num_queries);
  if (!hilbert.ok()) {
    std::fprintf(stderr, "%s\n", hilbert.status().ToString().c_str());
    return 1;
  }
  std::printf("%-22s %11llu %10.4f %11.1f\n", hilbert->label,
              static_cast<unsigned long long>(hilbert->subfields),
              hilbert->avg_ms, hilbert->avg_pages);
  std::printf(
      "\nexpected: quadtree performance swings with the threshold (the "
      "paper's point); cost-based grouping needs no tuning and sits near "
      "the best swept point.\n");
  return 0;
}

// Extension experiment (the paper's 3-D fields, Section 1: "Three-
// dimensional fields can model geological structures"): value queries on
// a 64^3 fractal volume (262,144 hexahedral cells — the Fig. 8a scale in
// 3-D), 3D-LinearScan vs 3D-I-Hilbert (3-D Hilbert linearization via the
// higher-dimensional generalization the paper cites [2]).

#include <cstdio>
#include <cstring>

#include "gen/workload.h"
#include "volume/volume_index.h"

int main(int argc, char** argv) {
  using namespace fielddb;
  uint32_t num_queries = 200;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) num_queries = 30;
  }

  VolumeFractalOptions vo;
  vo.nx = vo.ny = vo.nz = 64;
  vo.roughness_h = 0.7;
  vo.seed = 909;
  StatusOr<VolumeGridField> volume = MakeFractalVolume(vo);
  if (!volume.ok()) {
    std::fprintf(stderr, "%s\n", volume.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "=== Extension: 3-D volume field value queries, 64^3 = 262,144 "
      "voxels ===\n");
  const DiskModel disk;

  std::printf("%-10s %18s %18s %16s %16s\n", "Qinterval",
              "3D-LinearScan(ms)", "3D-I-Hilbert(ms)", "3D-LinScan(io)",
              "3D-I-Hil(io)");
  for (const double qi : {0.0, 0.01, 0.02, 0.05, 0.1}) {
    WorkloadOptions wo;
    wo.qinterval_fraction = qi;
    wo.num_queries = num_queries;
    wo.seed = 2002;
    const auto queries =
        GenerateValueQueries(volume->ValueRange(), wo);
    double ms[2], io[2];
    int mi = 0;
    for (const VolumeIndexMethod method :
         {VolumeIndexMethod::kLinearScan, VolumeIndexMethod::kIHilbert}) {
      VolumeFieldDatabase::Options options;
      options.method = method;
      auto db = VolumeFieldDatabase::Build(*volume, options);
      if (!db.ok()) {
        std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
        return 1;
      }
      auto ws = (*db)->RunWorkload(queries);
      if (!ws.ok()) {
        std::fprintf(stderr, "%s\n", ws.status().ToString().c_str());
        return 1;
      }
      ms[mi] = ws->avg_wall_ms;
      io[mi] = ws->AvgDiskMs(disk);
      ++mi;
    }
    std::printf("%-10.2f %18.4f %18.4f %16.1f %16.1f\n", qi, ms[0], ms[1],
                io[0], io[1]);
  }

  VolumeFieldDatabase::Options options;
  auto db = VolumeFieldDatabase::Build(*volume, options);
  if (db.ok()) {
    std::printf("\n3D-I-Hilbert: %zu subfields over %llu voxels\n",
                (*db)->subfields().size(),
                static_cast<unsigned long long>((*db)->num_cells()));
  }
  return 0;
}

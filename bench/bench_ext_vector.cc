// Extension experiment (the paper's future work, Section 5: "extend our
// method to process value queries in vector field databases such as
// wind"): conjunctive band queries over a 2-component wind field,
// V-LinearScan vs V-I-Hilbert (subfields with 2-D value boxes in a 2-D
// R*-tree).

#include <cstdio>
#include <cstring>

#include "common/rng.h"
#include "gen/fractal.h"
#include "vector/vector_index.h"

namespace {

using namespace fielddb;

StatusOr<VectorGridField> MakeWindField(uint32_t size_exp, uint64_t seed) {
  FractalOptions fo;
  fo.size_exp = static_cast<int>(size_exp);
  fo.roughness_h = 0.8;
  fo.seed = seed;
  std::vector<double> u = DiamondSquare(fo);
  fo.seed = seed + 1;
  std::vector<double> v = DiamondSquare(fo);
  const uint32_t n = uint32_t{1} << size_exp;
  return VectorGridField::Create(n, n, Rect2{{0, 0}, {1, 1}},
                                 std::move(u), std::move(v));
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t num_queries = 200;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) num_queries = 30;
  }

  StatusOr<VectorGridField> wind = MakeWindField(9, 404);  // 512x512
  if (!wind.ok()) {
    std::fprintf(stderr, "%s\n", wind.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "=== Extension: vector field (wind u,v) conjunctive band queries, "
      "512x512 cells ===\n");
  const Box<2> range = wind->ValueRangeBox();
  const DiskModel disk;

  std::printf("%-10s %16s %16s %16s %16s\n", "Qinterval",
              "V-LinearScan(ms)", "V-I-Hilbert(ms)", "V-LinScan(io)",
              "V-I-Hil(io)");
  for (const double qi : {0.02, 0.05, 0.1, 0.2}) {
    double ms[2], io[2];
    int mi = 0;
    for (const VectorIndexMethod method :
         {VectorIndexMethod::kLinearScan, VectorIndexMethod::kIHilbert}) {
      VectorFieldDatabase::Options options;
      options.method = method;
      auto db = VectorFieldDatabase::Build(*wind, options);
      if (!db.ok()) {
        std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
        return 1;
      }
      Rng rng(2002);
      QueryStats total;
      for (uint32_t q = 0; q < num_queries; ++q) {
        const double lu = qi * (range.hi[0] - range.lo[0]);
        const double lv = qi * (range.hi[1] - range.lo[1]);
        const double su =
            rng.NextDouble(range.lo[0], range.hi[0] - lu);
        const double sv =
            rng.NextDouble(range.lo[1], range.hi[1] - lv);
        if (!(*db)->pool().Clear().ok()) return 1;
        VectorQueryResult result;
        const Status s = (*db)->BandQuery(
            VectorBandQuery{{su, su + lu}, {sv, sv + lv}}, &result);
        if (!s.ok()) {
          std::fprintf(stderr, "%s\n", s.ToString().c_str());
          return 1;
        }
        total.Accumulate(result.stats);
      }
      ms[mi] = total.wall_seconds * 1000.0 / num_queries;
      io[mi] = disk.EstimateMs(total.io.sequential_reads,
                               total.io.random_reads()) /
               num_queries;
      ++mi;
    }
    std::printf("%-10.2f %16.4f %16.4f %16.1f %16.1f\n", qi, ms[0], ms[1],
                io[0], io[1]);
  }

  VectorFieldDatabase::Options options;
  auto db = VectorFieldDatabase::Build(*wind, options);
  if (db.ok()) {
    std::printf("\nV-I-Hilbert: %zu subfields over %llu cells\n",
                (*db)->subfields().size(),
                static_cast<unsigned long long>((*db)->num_cells()));
  }
  return 0;
}

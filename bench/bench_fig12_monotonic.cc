// Reproduces Fig. 12: the synthetic monotonic DEM w(x, y) = x + y with
// 512x512 rectangular cells, Qinterval in {0, 0.01, ..., 0.06}.
//
// Expected shape (paper): I-Hilbert outperforms the others; monotonic
// data is the friendliest case since value locality == spatial locality.

#include "bench/harness.h"
#include "gen/monotonic.h"

int main(int argc, char** argv) {
  using namespace fielddb;
  StatusOr<GridField> field = MakeMonotonicField(512, 512);
  if (!field.ok()) {
    std::fprintf(stderr, "%s\n", field.status().ToString().c_str());
    return 1;
  }

  bench::FigureConfig config;
  config.title = "Fig 12: monotonic DEM w=x+y, 512x512 cells";
  config.bench_id = "fig12";
  config.qintervals = {0.0, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06};
  bench::ApplyFlags(argc, argv, &config);
  return bench::RunFigure(*field, config) ? 0 : 1;
}

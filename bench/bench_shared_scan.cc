// Shared-scan bench: 64 concurrent clients issuing overlapping value
// intervals against the Fig-8a terrain, once with every query executed
// in isolation and once with the executor's shared-scan scheduler
// fusing overlapping queries into single sweeps (DESIGN.md §17).
//
// Unlike bench_scaling this run is deliberately I/O-bound: the database
// is saved and reopened from disk with a pool far smaller than the
// store, so every sweep really reads pages through the vectored batch
// path (io_uring / preadv — the emitted async_backend field records
// which backend the host selected). The bench enforces its own
// acceptance bounds in-binary:
//   - shared-scan QPS >= 1.5x the isolated QPS,
//   - per-query answer_cells bit-identical between the two modes,
//   - the summed per-query IoStats of the shared run never exceed the
//     isolated run's (leader-charged attribution: each group's sweep is
//     billed once).
//
// Emits BENCH_shared_scan.json (schema validated by
// tools/check_bench_json.py).

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/field_database.h"
#include "core/query_executor.h"
#include "gen/fractal.h"
#include "gen/workload.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "storage/page_file.h"

namespace {

using namespace fielddb;

constexpr size_t kClients = 64;     // concurrent in-flight queries
constexpr size_t kThreads = 8;      // executor workers, both modes
constexpr size_t kMaxGroup = 16;    // shared-scan group cap
constexpr uint64_t kSeed = 3003;
constexpr double kQInterval = 0.35;  // wide => heavy overlap across clients

struct ModeResult {
  double qps = 0.0;
  double p50_wall_ms = 0.0;
  double p99_wall_ms = 0.0;
  QueryExecutor::BatchResult batch;
};

bool Fail(const Status& s) {
  std::fprintf(stderr, "%s\n", s.ToString().c_str());
  return false;
}

bool RunMode(const FieldDatabase& db, const std::vector<ValueInterval>& queries,
             bool shared, ModeResult* out) {
  QueryExecutor::Options eo;
  eo.threads = kThreads;
  eo.queue_capacity = kClients;
  eo.shared_scan = shared;
  eo.max_scan_group = kMaxGroup;
  QueryExecutor executor(&db, eo);

  // Small warmup so lazy one-time work (async backend creation, stdio
  // flush) never lands inside the measured window. The pool is far
  // smaller than the store, so the measured sweeps miss either way.
  const std::vector<ValueInterval> warm(queries.begin(),
                                        queries.begin() + kThreads);
  QueryExecutor::BatchResult warmup;
  const Status sw = executor.RunBatch(warm, &warmup);
  if (!sw.ok()) return Fail(sw);

  const Status sb = executor.RunBatch(queries, &out->batch);
  if (!sb.ok()) return Fail(sb);
  if (out->batch.failed != 0) {
    std::fprintf(stderr, "%s run: %llu queries failed\n",
                 shared ? "shared" : "isolated",
                 static_cast<unsigned long long>(out->batch.failed));
    return false;
  }
  out->qps = out->batch.qps;
  out->p50_wall_ms = out->batch.p50_wall_ms;
  out->p99_wall_ms = out->batch.p99_wall_ms;
  return true;
}

bool WriteJson(const std::string& path, uint64_t field_cells,
               uint32_t num_queries, const char* backend,
               const ModeResult& iso, const ModeResult& shared,
               double speedup, uint64_t groups, bool answers_identical,
               bool io_not_worse, bool speedup_ok) {
  std::string j = "{\n  \"bench_id\": \"shared_scan\",\n  \"title\": ";
  JsonAppendString(&j, "Shared-scan multi-query execution: 64 overlapping "
                       "clients, Fig-8a terrain, disk-backed");
  j += ",\n  \"shared_scan_bench\": true";
  j += ",\n  \"method\": ";
  JsonAppendString(&j, IndexMethodName(IndexMethod::kIHilbert));
  j += ",\n  \"field_cells\": " + std::to_string(field_cells);
  j += ",\n  \"num_queries\": " + std::to_string(num_queries);
  j += ",\n  \"clients\": " + std::to_string(kClients);
  j += ",\n  \"threads\": " + std::to_string(kThreads);
  j += ",\n  \"max_scan_group\": " + std::to_string(kMaxGroup);
  j += ",\n  \"workload_seed\": " + std::to_string(kSeed);
  j += ",\n  \"hardware_threads\": " +
       std::to_string(std::thread::hardware_concurrency());
  j += ",\n  \"qinterval\": ";
  JsonAppendDouble(&j, kQInterval);
  j += ",\n  \"async_backend\": ";
  JsonAppendString(&j, backend);
  j += ",\n  \"qps_isolated\": ";
  JsonAppendDouble(&j, iso.qps);
  j += ",\n  \"qps_shared\": ";
  JsonAppendDouble(&j, shared.qps);
  j += ",\n  \"speedup\": ";
  JsonAppendDouble(&j, speedup);
  j += ",\n  \"p50_wall_ms_isolated\": ";
  JsonAppendDouble(&j, iso.p50_wall_ms);
  j += ",\n  \"p99_wall_ms_isolated\": ";
  JsonAppendDouble(&j, iso.p99_wall_ms);
  j += ",\n  \"p50_wall_ms_shared\": ";
  JsonAppendDouble(&j, shared.p50_wall_ms);
  j += ",\n  \"p99_wall_ms_shared\": ";
  JsonAppendDouble(&j, shared.p99_wall_ms);
  j += ",\n  \"physical_reads_isolated\": " +
       std::to_string(iso.batch.total.io.physical_reads);
  j += ",\n  \"physical_reads_shared\": " +
       std::to_string(shared.batch.total.io.physical_reads);
  j += ",\n  \"logical_reads_isolated\": " +
       std::to_string(iso.batch.total.io.logical_reads);
  j += ",\n  \"logical_reads_shared\": " +
       std::to_string(shared.batch.total.io.logical_reads);
  j += ",\n  \"shared_groups\": " + std::to_string(groups);
  j += ",\n  \"answers_identical\": ";
  j += answers_identical ? "true" : "false";
  j += ",\n  \"io_not_worse\": ";
  j += io_not_worse ? "true" : "false";
  j += ",\n  \"speedup_ok\": ";
  j += speedup_ok ? "true" : "false";
  j += "\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(j.data(), 1, j.size(), f) == j.size();
  std::fclose(f);
  if (ok) std::printf("telemetry: %s\n", path.c_str());
  return ok;
}

int Run(uint32_t num_queries) {
  StatusOr<GridField> terrain = MakeRoseburgLikeTerrain();
  if (!terrain.ok()) return Fail(terrain.status()) ? 0 : 1;

  // Build in memory, persist, reopen from disk: the reopened database
  // reads through DiskPageFile's vectored batch path, which is the
  // machinery under test.
  const std::string prefix = "bench_shared_scan_db";
  {
    FieldDatabaseOptions options;
    options.method = IndexMethod::kIHilbert;
    StatusOr<std::unique_ptr<FieldDatabase>> built =
        FieldDatabase::Build(*terrain, options);
    if (!built.ok()) return Fail(built.status()) ? 0 : 1;
    const Status saved = (*built)->Save(prefix);
    if (!saved.ok()) return Fail(saved) ? 0 : 1;
  }

  FieldDatabase::OpenOptions oo;
  // Far smaller than the store: every sweep misses and pays real reads.
  oo.pool_pages = 256;
  oo.readahead_pages = 16;
  StatusOr<std::unique_ptr<FieldDatabase>> db = FieldDatabase::Open(prefix, oo);
  if (!db.ok()) return Fail(db.status()) ? 0 : 1;
  const uint64_t field_cells = (*db)->build_info().num_cells;

  const char* backend = "none";
  if (const auto* disk = dynamic_cast<const DiskPageFile*>((*db)->pool().file())) {
    backend = disk->async_backend_name();
  }
  std::printf("store: %llu cells, %llu pages; pool %zu pages; "
              "async backend: %s\n",
              static_cast<unsigned long long>(field_cells),
              static_cast<unsigned long long>((*db)->build_info().store_pages),
              oo.pool_pages, backend);

  WorkloadOptions wo;
  wo.qinterval_fraction = kQInterval;
  wo.num_queries = num_queries;
  wo.seed = kSeed;
  const std::vector<ValueInterval> queries =
      GenerateValueQueries((*db)->value_range(), wo);

  Counter* groups_counter =
      MetricsRegistry::Default().GetCounter("executor.shared_scan_groups");

  ModeResult iso;
  if (!RunMode(**db, queries, /*shared=*/false, &iso)) return 1;
  const uint64_t groups_before = groups_counter->value();
  ModeResult shared;
  if (!RunMode(**db, queries, /*shared=*/true, &shared)) return 1;
  const uint64_t groups = groups_counter->value() - groups_before;

  // Acceptance check 1: bit-identical answers, query by query.
  bool answers_identical = true;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (iso.batch.per_query[i].answer_cells !=
        shared.batch.per_query[i].answer_cells) {
      std::fprintf(stderr,
                   "answer mismatch at query %zu: isolated %llu != shared "
                   "%llu\n",
                   i,
                   static_cast<unsigned long long>(
                       iso.batch.per_query[i].answer_cells),
                   static_cast<unsigned long long>(
                       shared.batch.per_query[i].answer_cells));
      answers_identical = false;
    }
  }

  // Acceptance check 2: leader-charged shared IoStats sum to no more
  // than the isolated run's totals.
  const IoStats& iso_io = iso.batch.total.io;
  const IoStats& sh_io = shared.batch.total.io;
  const bool io_not_worse = sh_io.physical_reads <= iso_io.physical_reads &&
                            sh_io.logical_reads <= iso_io.logical_reads;
  if (!io_not_worse) {
    std::fprintf(stderr,
                 "shared run read more: physical %llu vs %llu, logical %llu "
                 "vs %llu\n",
                 static_cast<unsigned long long>(sh_io.physical_reads),
                 static_cast<unsigned long long>(iso_io.physical_reads),
                 static_cast<unsigned long long>(sh_io.logical_reads),
                 static_cast<unsigned long long>(iso_io.logical_reads));
  }

  // Acceptance check 3: the fused sweeps buy real throughput.
  const double speedup = iso.qps > 0.0 ? shared.qps / iso.qps : 0.0;
  const bool speedup_ok = speedup >= 1.5;
  if (!speedup_ok) {
    std::fprintf(stderr, "speedup %.2fx below the 1.5x acceptance bound\n",
                 speedup);
  }

  std::printf("isolated: qps=%9.1f p50=%8.3fms p99=%8.3fms physical=%llu\n",
              iso.qps, iso.p50_wall_ms, iso.p99_wall_ms,
              static_cast<unsigned long long>(iso_io.physical_reads));
  std::printf("shared:   qps=%9.1f p50=%8.3fms p99=%8.3fms physical=%llu "
              "groups=%llu\n",
              shared.qps, shared.p50_wall_ms, shared.p99_wall_ms,
              static_cast<unsigned long long>(sh_io.physical_reads),
              static_cast<unsigned long long>(groups));
  std::printf("speedup: %.2fx (bound 1.5x), answers %s, io %s\n", speedup,
              answers_identical ? "identical" : "DIVERGED",
              io_not_worse ? "not worse" : "WORSE");

  const bool json_ok =
      WriteJson("BENCH_shared_scan.json", field_cells, num_queries, backend,
                iso, shared, speedup, groups, answers_identical, io_not_worse,
                speedup_ok);

  std::remove((prefix + ".pages").c_str());
  std::remove((prefix + ".meta").c_str());
  return (json_ok && answers_identical && io_not_worse && speedup_ok) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t num_queries = 4 * kClients;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      num_queries = kClients;
    }
  }
  return Run(num_queries);
}

// Shard-scaling bench for the shard-per-core serving layer: one router
// per shard count in {1, 2, 4, 8}, 64 concurrent clients hammering the
// scatter/gather front door with the same warm-cache value workload
// (DESIGN.md §18).
//
// Like bench_scaling this run is CPU-bound (per-shard pools sized for
// full residency, warmup pass first), so the curve isolates what the
// refactor is for: N independent BufferPools, value indexes and
// executor lanes instead of one contended engine. speedup_vs_1 only
// approaches the shard count on hosts that actually have the cores; the
// in-binary >= 2.5x acceptance gate therefore only arms when
// hardware_threads >= 4 (speedup_gated in the JSON records whether it
// did — single-core captures are flagged by tools/check_bench_json.py).
//
// Emits BENCH_shard_scaling.json (schema validated by
// tools/check_bench_json.py).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/shard_router.h"
#include "gen/fractal.h"
#include "gen/workload.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace {

using namespace fielddb;

constexpr uint64_t kSeed = 2002;
constexpr double kQInterval = 0.05;
constexpr size_t kClients = 64;
constexpr double kSpeedupTarget = 2.5;

struct ShardPoint {
  uint32_t shards = 0;
  double qps = 0.0;
  double avg_wall_ms = 0.0;
  double p50_wall_ms = 0.0;
  double p99_wall_ms = 0.0;
  double speedup_vs_1 = 0.0;
  double shards_skipped_frac = 0.0;
  uint64_t admission_waits = 0;
  uint64_t failed = 0;
};

bool Fail(const Status& s) {
  std::fprintf(stderr, "%s\n", s.ToString().c_str());
  return false;
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

bool RunPoint(const Field& field, uint32_t shards,
              const std::vector<ValueInterval>& queries, ShardPoint* out) {
  ShardRouterOptions options;
  options.shards = shards;
  options.db.method = IndexMethod::kIHilbert;
  // Full residency per shard: every shard count sees all-hit I/O, so
  // the sweep measures scatter/gather + lane parallelism, not paging.
  options.db.pool_pages = 16384;
  StatusOr<std::unique_ptr<ShardRouter>> router =
      ShardRouter::Build(field, options);
  if (!router.ok()) return Fail(router.status());

  Counter* waits =
      MetricsRegistry::Default().GetCounter("router.admission_waits");
  const uint64_t waits_before = waits->value();

  // Warmup: one full pass populates every shard's pool.
  for (const ValueInterval& q : queries) {
    QueryStats stats;
    const Status s = (*router)->ValueQueryStats(q, &stats);
    if (!s.ok()) return Fail(s);
  }

  std::atomic<size_t> next{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> touched{0};
  std::atomic<uint64_t> skipped{0};
  std::vector<std::vector<double>> client_wall_ms(kClients);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= queries.size()) break;
        RouterQueryProfile profile;
        QueryStats stats;
        const auto q0 = std::chrono::steady_clock::now();
        const Status s = (*router)->ValueQueryStats(queries[i], &stats,
                                                    &profile);
        const auto q1 = std::chrono::steady_clock::now();
        if (!s.ok()) {
          failed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        client_wall_ms[c].push_back(
            std::chrono::duration<double, std::milli>(q1 - q0).count());
        touched.fetch_add(profile.shards_touched, std::memory_order_relaxed);
        skipped.fetch_add(profile.shards_skipped, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::vector<double> wall_ms;
  for (const auto& per_client : client_wall_ms) {
    wall_ms.insert(wall_ms.end(), per_client.begin(), per_client.end());
  }
  std::sort(wall_ms.begin(), wall_ms.end());

  out->shards = static_cast<uint32_t>((*router)->num_shards());
  out->qps = wall_s > 0.0 ? static_cast<double>(wall_ms.size()) / wall_s : 0.0;
  double sum = 0.0;
  for (const double ms : wall_ms) sum += ms;
  out->avg_wall_ms =
      wall_ms.empty() ? 0.0 : sum / static_cast<double>(wall_ms.size());
  out->p50_wall_ms = Percentile(wall_ms, 0.50);
  out->p99_wall_ms = Percentile(wall_ms, 0.99);
  const uint64_t routed = touched.load() + skipped.load();
  out->shards_skipped_frac =
      routed > 0 ? static_cast<double>(skipped.load()) /
                       static_cast<double>(routed)
                 : 0.0;
  out->admission_waits = waits->value() - waits_before;
  out->failed = failed.load();
  return (*router)->Close().ok();
}

bool WriteJson(const std::string& path, const std::vector<ShardPoint>& points,
               uint64_t field_cells, uint32_t num_queries, bool gated,
               bool speedup_ok) {
  std::string j = "{\n  \"bench_id\": \"shard_scaling\",\n  \"title\": ";
  JsonAppendString(&j, "Shard scaling: 64 concurrent clients, warm-cache "
                       "value queries, 512x512 fractal terrain");
  j += ",\n  \"shard_scaling_bench\": true";
  j += ",\n  \"method\": ";
  JsonAppendString(&j, IndexMethodName(IndexMethod::kIHilbert));
  j += ",\n  \"field_cells\": " + std::to_string(field_cells);
  j += ",\n  \"num_queries\": " + std::to_string(num_queries);
  j += ",\n  \"clients\": " + std::to_string(kClients);
  j += ",\n  \"workload_seed\": " + std::to_string(kSeed);
  j += ",\n  \"qinterval\": ";
  JsonAppendDouble(&j, kQInterval);
  j += ",\n  \"hardware_threads\": " +
       std::to_string(std::thread::hardware_concurrency());
  j += ",\n  \"points\": [";
  for (size_t i = 0; i < points.size(); ++i) {
    const ShardPoint& p = points[i];
    j += i == 0 ? "\n" : ",\n";
    j += "    {\"shards\": " + std::to_string(p.shards);
    j += ", \"qps\": ";
    JsonAppendDouble(&j, p.qps);
    j += ", \"avg_wall_ms\": ";
    JsonAppendDouble(&j, p.avg_wall_ms);
    j += ", \"p50_wall_ms\": ";
    JsonAppendDouble(&j, p.p50_wall_ms);
    j += ", \"p99_wall_ms\": ";
    JsonAppendDouble(&j, p.p99_wall_ms);
    j += ", \"speedup_vs_1\": ";
    JsonAppendDouble(&j, p.speedup_vs_1);
    j += ", \"shards_skipped_frac\": ";
    JsonAppendDouble(&j, p.shards_skipped_frac);
    j += ", \"admission_waits\": " + std::to_string(p.admission_waits);
    j += ", \"failed\": " + std::to_string(p.failed) + "}";
  }
  j += "\n  ],\n  \"speedup_target\": ";
  JsonAppendDouble(&j, kSpeedupTarget);
  j += ",\n  \"speedup_gated\": ";
  j += gated ? "true" : "false";
  j += ",\n  \"speedup_ok\": ";
  j += speedup_ok ? "true" : "false";
  j += "\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(j.data(), 1, j.size(), f) == j.size();
  std::fclose(f);
  if (ok) std::printf("telemetry: %s\n", path.c_str());
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t num_queries = 512;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) num_queries = 96;
  }

  StatusOr<GridField> terrain = MakeRoseburgLikeTerrain();
  if (!terrain.ok()) {
    std::fprintf(stderr, "%s\n", terrain.status().ToString().c_str());
    return 1;
  }
  const uint64_t field_cells = terrain->NumCells();

  WorkloadOptions wo;
  wo.qinterval_fraction = kQInterval;
  wo.num_queries = num_queries;
  wo.seed = kSeed;
  const std::vector<ValueInterval> queries =
      GenerateValueQueries(terrain->ValueRange(), wo);

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u  clients: %zu\n", hw, kClients);

  const std::vector<uint32_t> shard_counts = {1, 2, 4, 8};
  std::vector<ShardPoint> points;
  double qps_at_1 = 0.0;
  for (const uint32_t shards : shard_counts) {
    ShardPoint p;
    if (!RunPoint(*terrain, shards, queries, &p)) return 1;
    if (p.shards == 1) qps_at_1 = p.qps;
    p.speedup_vs_1 = qps_at_1 > 0.0 ? p.qps / qps_at_1 : 0.0;
    points.push_back(p);
    std::printf("shards=%u qps=%9.1f p50=%8.3fms p99=%8.3fms speedup=%.2fx "
                "skipped=%.0f%% waits=%llu failed=%llu\n",
                p.shards, p.qps, p.p50_wall_ms, p.p99_wall_ms, p.speedup_vs_1,
                p.shards_skipped_frac * 100.0,
                static_cast<unsigned long long>(p.admission_waits),
                static_cast<unsigned long long>(p.failed));
    if (p.failed != 0) {
      std::fprintf(stderr, "shards=%u: %llu queries failed\n", p.shards,
                   static_cast<unsigned long long>(p.failed));
      return 1;
    }
  }

  // The >= 2.5x acceptance gate (router on N=cores shards vs N=1) only
  // binds on real multi-core hardware; a 1-core container can at best
  // reshuffle the same CPU between lanes.
  const bool gated = hw >= 4;
  double speedup_at_cores = 0.0;
  for (const ShardPoint& p : points) {
    if (p.shards <= hw) speedup_at_cores = std::max(speedup_at_cores,
                                                    p.speedup_vs_1);
  }
  bool speedup_ok = true;
  if (gated) {
    speedup_ok = speedup_at_cores >= kSpeedupTarget;
    if (!speedup_ok) {
      std::fprintf(stderr,
                   "FAIL: speedup %.2fx at <= %u shards, target %.1fx\n",
                   speedup_at_cores, hw, kSpeedupTarget);
    }
  } else {
    std::printf("speedup gate disarmed: %u hardware thread(s) < 4\n", hw);
  }

  if (!WriteJson("BENCH_shard_scaling.json", points, field_cells, num_queries,
                 gated, speedup_ok)) {
    return 1;
  }
  return speedup_ok ? 0 : 1;
}

// Observability overhead benchmark: proves the always-on obs layer —
// metrics registry, trace-v2 ring buffers, the 10 ms metrics sampler,
// and an attached structured event log at the default slow-query
// threshold — costs under 5% on the Fig-8a terrain workload.
//
// Methodology matches the harness's metrics calibration (bench/
// harness.cc): each rep times a fixed workload slice in *process CPU
// time* four times in ABBA order (obs-off, obs-on, obs-on, obs-off;
// order flipped every rep), which cancels drift that is linear in time
// within a rep, and the reported overhead is the median rep ratio.
// Process CPU time deliberately includes the sampler thread — its
// cycles are part of what "always on" costs.
//
// Before measuring, the run saves and reopens the database and pushes
// the workload through a QueryExecutor with tracing live, so the
// exported TRACE_obs_overhead.json carries every span family the
// validator requires: plan, wal, recovery, and queue-wait.
//
// Emits BENCH_obs_overhead.json (marker: top-level "obs_overhead":
// true; schema enforced by tools/check_bench_json.py) and fails the
// run if the measured overhead reaches 5%.
//
// --quick shrinks the terrain and rep count for the CTest smoke run.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/field_database.h"
#include "core/query_executor.h"
#include "gen/fractal.h"
#include "gen/workload.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace_buffer.h"

namespace {

using namespace fielddb;

constexpr char kPrefix[] = "bench_obs_overhead_db";
constexpr double kOverheadLimitPct = 5.0;

void RemoveArtifacts() {
  for (const char* suffix : {".pages", ".meta", ".pages.tmp", ".meta.tmp",
                             ".wal", ".events.jsonl", ".events.jsonl.1"}) {
    std::remove((std::string(kPrefix) + suffix).c_str());
  }
}

bool WriteJson(const std::string& path, uint64_t field_cells,
               uint32_t num_queries, uint64_t seed, int reps,
               double off_cpu_ms, double on_cpu_ms, double overhead_pct,
               double sampler_period_ms, double threshold_ms,
               uint64_t trace_events, uint64_t trace_dropped,
               const std::map<std::string, uint64_t>& families,
               uint64_t events_appended) {
  std::string j = "{\n  \"bench_id\": \"obs_overhead\",\n  \"title\": ";
  JsonAppendString(&j,
                   "Always-on observability overhead, Fig-8a terrain "
                   "workload (CPU-time ABBA medians)");
  j += ",\n  \"obs_overhead\": true";
  j += ",\n  \"method\": ";
  JsonAppendString(&j, IndexMethodName(IndexMethod::kIHilbert));
  j += ",\n  \"field_cells\": " + std::to_string(field_cells);
  j += ",\n  \"num_queries\": " + std::to_string(num_queries);
  j += ",\n  \"workload_seed\": " + std::to_string(seed);
  j += ",\n  \"reps\": " + std::to_string(reps);
  j += ",\n  \"off_cpu_ms\": ";
  JsonAppendDouble(&j, off_cpu_ms);
  j += ",\n  \"on_cpu_ms\": ";
  JsonAppendDouble(&j, on_cpu_ms);
  j += ",\n  \"overhead_pct\": ";
  JsonAppendDouble(&j, overhead_pct);
  j += ",\n  \"overhead_limit_pct\": ";
  JsonAppendDouble(&j, kOverheadLimitPct);
  j += ",\n  \"within_limit\": ";
  j += overhead_pct < kOverheadLimitPct ? "true" : "false";
  j += ",\n  \"sampler_period_ms\": ";
  JsonAppendDouble(&j, sampler_period_ms);
  j += ",\n  \"slow_query_threshold_ms\": ";
  JsonAppendDouble(&j, threshold_ms);
  j += ",\n  \"trace_events\": " + std::to_string(trace_events);
  j += ",\n  \"trace_dropped\": " + std::to_string(trace_dropped);
  j += ",\n  \"trace_families\": {";
  bool first = true;
  for (const auto& [name, n] : families) {
    j += first ? "\n" : ",\n";
    first = false;
    j += "    ";
    JsonAppendString(&j, name);
    j += ": " + std::to_string(n);
  }
  j += "\n  },\n  \"event_log_appended\": " +
       std::to_string(events_appended);
  j += "\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(j.data(), 1, j.size(), f) == j.size();
  std::fclose(f);
  if (ok) std::printf("telemetry: %s\n", path.c_str());
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const uint64_t seed = 2002;
  const double sampler_period_ms = 10.0;
  const double threshold_ms = 25.0;  // the production default

  StatusOr<GridField> terrain = [&]() -> StatusOr<GridField> {
    if (!quick) return MakeRoseburgLikeTerrain();
    FractalOptions fo;
    fo.size_exp = 6;  // 64x64 smoke terrain
    fo.roughness_h = 0.7;
    fo.seed = 1972;
    return MakeFractalField(fo);
  }();
  if (!terrain.ok()) {
    std::fprintf(stderr, "%s\n", terrain.status().ToString().c_str());
    return 1;
  }

  FieldDatabaseOptions options;
  options.method = IndexMethod::kIHilbert;
  options.build_spatial_index = false;
  StatusOr<std::unique_ptr<FieldDatabase>> built =
      FieldDatabase::Build(*terrain, options);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  const uint64_t field_cells = (*built)->build_info().num_cells;

  RemoveArtifacts();
  if (const Status s = (*built)->Save(kPrefix); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  built->reset();

  // Reopen with the full obs stack live so the trace captures the
  // recovery + wal.scan spans of the attach itself and the event log
  // records the recovery event.
  MetricsRegistry::set_enabled(true);
  TraceBuffer::set_enabled(true);
  // Rings sized so the one-shot recovery/wal spans from Open and a full
  // warmup pass coexist in the retained window on the full-size terrain
  // (drop-oldest would otherwise evict them before the export below).
  // Must precede the first enabled record: capacity only applies to
  // rings created afterwards.
  TraceBuffer::Global().set_ring_capacity(size_t{1} << 17);
  FieldDatabase::OpenOptions oo;
  oo.event_log_path = std::string(kPrefix) + ".events.jsonl";
  oo.slow_query_threshold_ms = threshold_ms;
  auto db = FieldDatabase::Open(kPrefix, oo);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }

  WorkloadOptions wo;
  wo.qinterval_fraction = 0.02;  // the Fig-8a sweet spot
  wo.num_queries = quick ? 60 : 200;
  wo.seed = seed;
  const std::vector<ValueInterval> queries =
      GenerateValueQueries((*db)->value_range(), wo);

  // Queue-wait spans only exist where a queue does: one warm batch
  // through a thread pool before the single-threaded measurement.
  {
    QueryExecutor::Options eo;
    eo.threads = 4;
    QueryExecutor executor(db->get(), eo);
    QueryExecutor::BatchResult batch;
    if (const Status s = executor.RunBatch(queries, &batch); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }

  // --- ABBA CPU-time measurement -------------------------------------
  // Off = the baseline system as it was before the always-on layer:
  // metrics recording stays enabled (it has always been the process
  // default and every figure bench runs with it), but the trace-v2
  // buffer is gated, the sampler is stopped and the slow-query
  // threshold is unreachable. On = everything a production process now
  // leaves running. The ratio therefore isolates the layer this
  // subsystem added, not the pre-existing counters.
  std::vector<ValueInterval> slice(
      queries.begin(),
      queries.begin() + std::min<size_t>(queries.size(), 50));
  (void)(*db)->RunWorkload(slice);  // warmup: neither side pays first-touch

  // Export the trace artifact now, while the rings still retain the
  // whole story — Open's recovery/wal.scan spans, the executor batch's
  // queue-waits, and the warmup queries. The ABBA loop below reruns the
  // slice dozens of times and would lap the bounded rings, evicting the
  // one-shot families (that drop-oldest behavior is by design; the
  // artifact just has to be cut before it applies).
  TraceBuffer& tb = TraceBuffer::Global();
  if (const Status s = tb.WriteChromeTrace("TRACE_obs_overhead.json");
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::map<std::string, uint64_t> families;
  for (const TraceEvent& e : tb.Snapshot()) ++families[e.category];
  const uint64_t trace_recorded = tb.total_recorded();
  const uint64_t trace_dropped = tb.total_dropped();

  MetricsSampler sampler(&MetricsRegistry::Default(),
                         MetricsSampler::Options{sampler_period_ms, 300});
  auto cpu_ms_pass = [&](bool enable) -> double {
    TraceBuffer::set_enabled(enable);
    (*db)->set_slow_query_threshold_ms(enable ? threshold_ms : 1e18);
    if (enable) {
      sampler.Start();
    } else {
      sampler.Stop();
    }
    const std::clock_t t0 = std::clock();
    StatusOr<WorkloadStats> ws = (*db)->RunWorkload(slice);
    const std::clock_t t1 = std::clock();
    if (!ws.ok()) return 0.0;
    return 1000.0 * static_cast<double>(t1 - t0) / CLOCKS_PER_SEC;
  };

  const int reps = quick ? 5 : 15;
  std::vector<double> ratios;
  double off_total_ms = 0.0, on_total_ms = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const bool a_is_off = (rep % 2 == 0);  // ABBA then BAAB, ...
    const double a1 = cpu_ms_pass(!a_is_off);
    const double b1 = cpu_ms_pass(a_is_off);
    const double b2 = cpu_ms_pass(a_is_off);
    const double a2 = cpu_ms_pass(!a_is_off);
    const double off_ms = a_is_off ? a1 + a2 : b1 + b2;
    const double on_ms = a_is_off ? b1 + b2 : a1 + a2;
    if (off_ms > 0 && on_ms > 0) {
      ratios.push_back(on_ms / off_ms);
      off_total_ms += off_ms;
      on_total_ms += on_ms;
      std::printf("rep %2d: off=%8.2fms on=%8.2fms ratio=%.4f\n", rep,
                  off_ms, on_ms, on_ms / off_ms);
    }
  }
  sampler.Stop();
  MetricsRegistry::set_enabled(true);
  TraceBuffer::set_enabled(true);
  (*db)->set_slow_query_threshold_ms(threshold_ms);

  if (ratios.empty()) {
    std::fprintf(stderr, "no valid reps (clock too coarse?)\n");
    return 1;
  }
  std::sort(ratios.begin(), ratios.end());
  const size_t n = ratios.size();
  const double median = (n % 2 == 1)
                            ? ratios[n / 2]
                            : (ratios[n / 2 - 1] + ratios[n / 2]) / 2.0;
  const double overhead_pct = (median - 1.0) * 100.0;

  // --- Report + acceptance -------------------------------------------
  const uint64_t events_appended =
      (*db)->event_log() != nullptr ? (*db)->event_log()->events_appended()
                                    : 0;

  std::printf(
      "obs overhead: %.2f%% (median of %zu ABBA reps; off %.1fms, on "
      "%.1fms total CPU)\n",
      overhead_pct, n, off_total_ms, on_total_ms);
  std::printf("trace: %llu events (%llu dropped) -> TRACE_obs_overhead.json\n",
              static_cast<unsigned long long>(trace_recorded),
              static_cast<unsigned long long>(trace_dropped));
  for (const auto& [name, cnt] : families) {
    std::printf("  %-12s %llu\n", name.c_str(),
                static_cast<unsigned long long>(cnt));
  }

  const bool wrote = WriteJson(
      "BENCH_obs_overhead.json", field_cells, wo.num_queries, seed,
      static_cast<int>(n), off_total_ms, on_total_ms, overhead_pct,
      sampler_period_ms, threshold_ms, trace_recorded,
      trace_dropped, families, events_appended);
  db->reset();
  RemoveArtifacts();
  if (!wrote) return 1;

  bool ok = true;
  for (const char* family : {"plan", "wal", "recovery", "queue-wait"}) {
    if (families.count(family) == 0) {
      std::fprintf(stderr, "missing trace family: %s\n", family);
      ok = false;
    }
  }
  if (overhead_pct >= kOverheadLimitPct) {
    std::fprintf(stderr, "overhead %.2f%% >= %.1f%% limit\n", overhead_pct,
                 kOverheadLimitPct);
    ok = false;
  }
  return ok ? 0 : 1;
}

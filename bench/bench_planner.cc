// Planner sweep: on the Fig. 8a terrain (512x512 = 262,144 cells,
// I-Hilbert), runs the same seeded value queries through the adaptive
// planner and through both forced plans at query widths from 0.1% to
// 90% of the value range, comparing average disk-model I/O time per
// query (deterministic — cold cache, same logical reads every run).
//
// Acceptance (checked here, not just plotted): at every sweep point the
// adaptive planner must land within 10% of the better fixed plan, and
// at the sweep extremes — where the fixed plans diverge most — it must
// be strictly faster than the worse one. Emits BENCH_planner.json
// (marker: top-level "planner_sweep": true; schema enforced by
// tools/check_bench_json.py).
//
// --quick shrinks the terrain to 128x128 and the workload for the CTest
// smoke run; the crossover still exists at that size, so the acceptance
// checks stay meaningful.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/field_database.h"
#include "gen/fractal.h"
#include "obs/json.h"

namespace {

using namespace fielddb;

struct SweepPoint {
  double width_frac = 0.0;       // query width / value-range length
  uint32_t num_queries = 0;
  double selectivity_avg = 0.0;  // filter candidates / cells (indexed run)
  double auto_disk_ms = 0.0;
  double scan_disk_ms = 0.0;
  double index_disk_ms = 0.0;
  double ratio_to_best = 0.0;    // auto / min(scan, index)
  double index_plan_frac = 0.0;  // fraction of queries auto sent to the index
  bool within_10pct = false;
};

bool RunMode(FieldDatabase* db, PlannerMode mode,
             const std::vector<ValueInterval>& queries, WorkloadStats* out) {
  db->set_planner_mode(mode);
  StatusOr<WorkloadStats> ws = db->RunWorkload(queries);
  if (!ws.ok()) {
    std::fprintf(stderr, "%s\n", ws.status().ToString().c_str());
    return false;
  }
  *out = *ws;
  return true;
}

bool WriteJson(const std::string& path, uint64_t field_cells, uint64_t seed,
               const DiskModel& disk, const std::vector<SweepPoint>& points) {
  std::string j = "{\n  \"bench_id\": \"planner\",\n  \"title\": ";
  JsonAppendString(&j,
                   "Cost-based planner vs fixed plans, I-Hilbert terrain "
                   "selectivity sweep");
  j += ",\n  \"planner_sweep\": true";
  j += ",\n  \"method\": ";
  JsonAppendString(&j, IndexMethodName(IndexMethod::kIHilbert));
  j += ",\n  \"field_cells\": " + std::to_string(field_cells);
  j += ",\n  \"workload_seed\": " + std::to_string(seed);
  j += ",\n  \"disk_model\": {\"seek_ms\": ";
  JsonAppendDouble(&j, disk.seek_ms);
  j += ", \"transfer_ms_per_page\": ";
  JsonAppendDouble(&j, disk.transfer_ms_per_page);
  j += "},\n  \"points\": [";
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    j += i == 0 ? "\n" : ",\n";
    j += "    {\"width_frac\": ";
    JsonAppendDouble(&j, p.width_frac);
    j += ", \"num_queries\": " + std::to_string(p.num_queries);
    j += ", \"selectivity_avg\": ";
    JsonAppendDouble(&j, p.selectivity_avg);
    j += ",\n     \"auto_disk_ms\": ";
    JsonAppendDouble(&j, p.auto_disk_ms);
    j += ", \"scan_disk_ms\": ";
    JsonAppendDouble(&j, p.scan_disk_ms);
    j += ", \"index_disk_ms\": ";
    JsonAppendDouble(&j, p.index_disk_ms);
    j += ",\n     \"ratio_to_best\": ";
    JsonAppendDouble(&j, p.ratio_to_best);
    j += ", \"index_plan_frac\": ";
    JsonAppendDouble(&j, p.index_plan_frac);
    j += ", \"within_10pct\": ";
    j += p.within_10pct ? "true" : "false";
    j += "}";
  }
  j += "\n  ]\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(j.data(), 1, j.size(), f) == j.size();
  std::fclose(f);
  if (ok) std::printf("telemetry: %s\n", path.c_str());
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const uint64_t seed = 1988;

  StatusOr<GridField> terrain = [&]() -> StatusOr<GridField> {
    if (!quick) return MakeRoseburgLikeTerrain();
    FractalOptions options;
    options.size_exp = 7;  // 128x128: smallest quick size with a crossover
    options.roughness_h = 0.7;
    options.seed = 1972;
    return MakeFractalField(options);
  }();
  if (!terrain.ok()) {
    std::fprintf(stderr, "%s\n", terrain.status().ToString().c_str());
    return 1;
  }

  FieldDatabaseOptions options;
  options.method = IndexMethod::kIHilbert;
  options.build_spatial_index = false;
  StatusOr<std::unique_ptr<FieldDatabase>> db =
      FieldDatabase::Build(*terrain, options);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }

  const std::vector<double> widths =
      quick ? std::vector<double>{0.001, 0.05, 0.5}
            : std::vector<double>{0.001, 0.005, 0.01, 0.05, 0.1,
                                  0.3,   0.5,   0.7,  0.9};
  const uint32_t num_queries = quick ? 5 : 20;
  const ValueInterval range = (*db)->value_range();
  const DiskModel disk = (*db)->planner().cost_model().disk();

  std::printf("cells=%llu store_pages=%llu\n",
              static_cast<unsigned long long>((*db)->build_info().num_cells),
              static_cast<unsigned long long>((*db)->build_info().store_pages));

  Rng rng(seed);
  std::vector<SweepPoint> points;
  bool accepted = true;
  for (size_t wi = 0; wi < widths.size(); ++wi) {
    SweepPoint p;
    p.width_frac = widths[wi];
    const double w = p.width_frac * range.Length();
    std::vector<ValueInterval> queries(num_queries);
    for (ValueInterval& q : queries) {
      const double lo = rng.NextDouble(range.min, range.max - w);
      q = ValueInterval{lo, lo + w};
    }

    WorkloadStats adaptive, scan, index;
    if (!RunMode(db->get(), PlannerMode::kAuto, queries, &adaptive) ||
        !RunMode(db->get(), PlannerMode::kForceScan, queries, &scan) ||
        !RunMode(db->get(), PlannerMode::kForceIndex, queries, &index)) {
      return 1;
    }
    (*db)->set_planner_mode(PlannerMode::kAuto);
    uint32_t index_plans = 0;
    for (const ValueInterval& q : queries) {
      if ((*db)->PlanValueQuery(q).kind == PlanKind::kIndexedFilter) {
        ++index_plans;
      }
    }

    p.num_queries = num_queries;
    p.selectivity_avg =
        index.avg_candidates /
        static_cast<double>((*db)->build_info().num_cells);
    p.auto_disk_ms = adaptive.AvgDiskMs(disk);
    p.scan_disk_ms = scan.AvgDiskMs(disk);
    p.index_disk_ms = index.AvgDiskMs(disk);
    p.index_plan_frac = static_cast<double>(index_plans) / num_queries;

    const double best = std::min(p.scan_disk_ms, p.index_disk_ms);
    const double worst = std::max(p.scan_disk_ms, p.index_disk_ms);
    p.ratio_to_best = p.auto_disk_ms / best;
    p.within_10pct = p.auto_disk_ms <= 1.10 * best;
    const bool extreme = wi == 0 || wi == widths.size() - 1;
    const bool beats_worst = !extreme || p.auto_disk_ms < worst;
    accepted = accepted && p.within_10pct && beats_worst;

    std::printf(
        "width=%.3f sel=%.4f auto=%9.1fms scan=%9.1fms index=%9.1fms "
        "ratio=%.3f index_plans=%.0f%%%s%s\n",
        p.width_frac, p.selectivity_avg, p.auto_disk_ms, p.scan_disk_ms,
        p.index_disk_ms, p.ratio_to_best, p.index_plan_frac * 100,
        p.within_10pct ? "" : "  VIOLATION: >10% off best",
        beats_worst ? "" : "  VIOLATION: not under worst at extreme");
    points.push_back(p);
  }

  if (!WriteJson("BENCH_planner.json", (*db)->build_info().num_cells, seed,
                 disk, points)) {
    return 1;
  }
  if (!accepted) {
    std::fprintf(stderr, "planner acceptance checks failed\n");
    return 1;
  }
  return 0;
}

// Ablation for DESIGN.md choice #3 — the page size. The paper fixes
// 4 KB (Section 4); this sweep shows how the LinearScan / I-Hilbert gap
// moves with page size (larger pages help the scan more than the index,
// whose candidate set is already page-clustered).

#include <cstdio>
#include <cstring>

#include "core/field_database.h"
#include "gen/fractal.h"
#include "gen/workload.h"

int main(int argc, char** argv) {
  using namespace fielddb;
  uint32_t num_queries = 200;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) num_queries = 30;
  }

  StatusOr<GridField> terrain = MakeRoseburgLikeTerrain();
  if (!terrain.ok()) {
    std::fprintf(stderr, "%s\n", terrain.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "=== Ablation: page size sweep (Fig 8a terrain, Qinterval=0.02) "
      "===\n");
  std::printf("%-10s %14s %14s %14s %14s\n", "page_size",
              "LinearScan(ms)", "I-Hilbert(ms)", "LinearScan(pg)",
              "I-Hilbert(pg)");

  for (const uint32_t page_size : {1024u, 2048u, 4096u, 8192u, 16384u}) {
    double ms[2] = {0, 0};
    double pages[2] = {0, 0};
    int mi = 0;
    for (const IndexMethod method :
         {IndexMethod::kLinearScan, IndexMethod::kIHilbert}) {
      FieldDatabaseOptions options;
      options.method = method;
      options.page_size = page_size;
      // Hold the pool's byte budget constant across page sizes.
      options.pool_pages = (4u << 20) / page_size;
      options.build_spatial_index = false;
      StatusOr<std::unique_ptr<FieldDatabase>> db =
          FieldDatabase::Build(*terrain, options);
      if (!db.ok()) {
        std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
        return 1;
      }
      WorkloadOptions wo;
      wo.num_queries = num_queries;
      wo.seed = 2002;
      wo.qinterval_fraction = 0.02;
      StatusOr<WorkloadStats> ws = (*db)->RunWorkload(
          GenerateValueQueries(terrain->ValueRange(), wo));
      if (!ws.ok()) {
        std::fprintf(stderr, "%s\n", ws.status().ToString().c_str());
        return 1;
      }
      ms[mi] = ws->avg_wall_ms;
      pages[mi] = ws->avg_logical_reads;
      ++mi;
    }
    std::printf("%-10u %14.4f %14.4f %14.1f %14.1f\n", page_size, ms[0],
                ms[1], pages[0], pages[1]);
  }
  return 0;
}

// Micro-benchmarks (google-benchmark) for the substrates: space-filling
// curve encoding, R*-tree insert/search, subfield construction, and the
// isoband estimation step. These are not paper figures; they document
// the constant factors underneath them.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "curve/curves.h"
#include "field/isoband.h"
#include "gen/fractal.h"
#include "index/subfield.h"
#include "rtree/rstar_tree.h"
#include "storage/page_file.h"

namespace fielddb {
namespace {

void BM_CurveEncode(benchmark::State& state) {
  const auto curve =
      MakeCurve(static_cast<CurveType>(state.range(0)), 16);
  Rng rng(1);
  uint32_t x = 0, y = 0;
  for (auto _ : state) {
    x = (x + 12345) & 0xFFFF;
    y = (y + 54321) & 0xFFFF;
    benchmark::DoNotOptimize(curve->Encode(x, y));
  }
  state.SetLabel(CurveTypeName(curve->type()));
}
BENCHMARK(BM_CurveEncode)
    ->Arg(static_cast<int>(CurveType::kHilbert))
    ->Arg(static_cast<int>(CurveType::kZOrder))
    ->Arg(static_cast<int>(CurveType::kGrayCode))
    ->Arg(static_cast<int>(CurveType::kRowMajor));

void BM_RTreeInsert1D(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    MemPageFile file;
    BufferPool pool(&file, 4096);
    auto tree = RStarTree<1>::Create(&pool);
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      const double lo = rng.NextDouble();
      Box<1> b;
      b.lo = {lo};
      b.hi = {lo + 0.01};
      benchmark::DoNotOptimize(tree->Insert(b, i));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeInsert1D)->Arg(1000)->Arg(10000);

void BM_RTreeBulkLoad1D(benchmark::State& state) {
  Rng rng(3);
  const int64_t n = state.range(0);
  std::vector<RTreeEntry<1>> entries(n);
  for (int64_t i = 0; i < n; ++i) {
    const double lo = rng.NextDouble();
    entries[i].box.lo = {lo};
    entries[i].box.hi = {lo + 0.01};
    entries[i].a = i;
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& x, const auto& y) {
              return x.box.lo[0] < y.box.lo[0];
            });
  for (auto _ : state) {
    MemPageFile file;
    BufferPool pool(&file, 4096);
    benchmark::DoNotOptimize(RStarTree<1>::BulkLoad(&pool, entries));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RTreeBulkLoad1D)->Arg(10000)->Arg(100000);

void BM_RTreeSearch1D(benchmark::State& state) {
  Rng rng(4);
  const int64_t n = state.range(0);
  MemPageFile file;
  BufferPool pool(&file, 1 << 20);
  std::vector<RTreeEntry<1>> entries(n);
  for (int64_t i = 0; i < n; ++i) {
    const double lo = rng.NextDouble();
    entries[i].box.lo = {lo};
    entries[i].box.hi = {lo + 0.001};
    entries[i].a = i;
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& x, const auto& y) {
              return x.box.lo[0] < y.box.lo[0];
            });
  auto tree = RStarTree<1>::BulkLoad(&pool, entries);
  uint64_t found = 0;
  for (auto _ : state) {
    const double lo = rng.NextDouble() * 0.95;
    Box<1> q;
    q.lo = {lo};
    q.hi = {lo + 0.02};
    tree->Search(q, [&](const RTreeEntry<1>&) {
      ++found;
      return true;
    });
  }
  benchmark::DoNotOptimize(found);
}
BENCHMARK(BM_RTreeSearch1D)->Arg(100000)->Arg(1000000);

void BM_BuildSubfields(benchmark::State& state) {
  Rng rng(5);
  const int64_t n = state.range(0);
  std::vector<ValueInterval> intervals(n);
  ValueInterval range = ValueInterval::Empty();
  double v = 0;
  for (auto& iv : intervals) {
    v += rng.NextGaussian();
    iv = ValueInterval::Of(v, v + rng.NextDouble());
    range.Extend(iv);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildSubfields(intervals, range, {}));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BuildSubfields)->Arg(10000)->Arg(1000000);

void BM_CellIsoband(benchmark::State& state) {
  Rng rng(6);
  const CellRecord quad = CellRecord::Quad(
      0, Rect2{{0, 0}, {1, 1}}, rng.NextDouble(), rng.NextDouble(),
      rng.NextDouble(), rng.NextDouble());
  for (auto _ : state) {
    Region region;
    benchmark::DoNotOptimize(
        CellIsoband(quad, ValueInterval{0.4, 0.6}, &region));
  }
}
BENCHMARK(BM_CellIsoband);

void BM_DiamondSquare(benchmark::State& state) {
  FractalOptions options;
  options.size_exp = static_cast<int>(state.range(0));
  options.roughness_h = 0.7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DiamondSquare(options));
  }
}
BENCHMARK(BM_DiamondSquare)->Arg(8)->Arg(10);

}  // namespace
}  // namespace fielddb

BENCHMARK_MAIN();

// Reproduces Fig. 11a-d: synthetic fractal terrain with 1,048,576 cells
// (1024x1024) for roughness H in {0.1, 0.3, 0.6, 0.9}, Qinterval in
// {0, 0.01, ..., 0.05}.
//
// Expected shapes (paper): I-Hilbert wins everywhere (up to >50x over
// LinearScan at small Qinterval and large H); I-All is *slower than
// LinearScan* when H is small or Qinterval is large (high selectivity
// from overlapped values), and competitive otherwise.
//
// Note: the full run builds four million-cell databases; pass --quick
// for a smoke run with fewer queries.

#include "bench/harness.h"
#include "gen/fractal.h"

int main(int argc, char** argv) {
  using namespace fielddb;
  for (const double h : {0.1, 0.3, 0.6, 0.9}) {
    FractalOptions options;
    options.size_exp = 10;  // 1024x1024 cells = 1,048,576
    options.roughness_h = h;
    options.seed = 1111;
    StatusOr<GridField> field = MakeFractalField(options);
    if (!field.ok()) {
      std::fprintf(stderr, "%s\n", field.status().ToString().c_str());
      return 1;
    }

    bench::FigureConfig config;
    char title[128];
    std::snprintf(title, sizeof(title),
                  "Fig 11 (H=%.1f): fractal DEM 1024x1024, 1,048,576 cells",
                  h);
    config.title = title;
    char bench_id[32];
    std::snprintf(bench_id, sizeof(bench_id), "fig11_h%02d",
                  static_cast<int>(h * 10 + 0.5));
    config.bench_id = bench_id;
    config.qintervals = {0.0, 0.01, 0.02, 0.03, 0.04, 0.05};
    bench::ApplyFlags(argc, argv, &config);
    if (!bench::RunFigure(*field, config)) return 1;
  }
  return 0;
}

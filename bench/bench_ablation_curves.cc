// Ablation for DESIGN.md choice #1 — the linearization curve. The paper
// picks Hilbert over Z-order / Gray-code citing [7, 13] and dismisses
// row-major implicitly (the IP-index row-by-row approach of [19] "could
// not handle the continuity of terrain"). This bench quantifies that on
// the Fig. 8a workload: subfield count and average query cost per curve.

#include <cstdio>
#include <cstring>

#include "core/field_database.h"
#include "gen/fractal.h"
#include "gen/workload.h"

int main(int argc, char** argv) {
  using namespace fielddb;
  uint32_t num_queries = 200;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) num_queries = 30;
  }

  StatusOr<GridField> terrain = MakeRoseburgLikeTerrain();
  if (!terrain.ok()) {
    std::fprintf(stderr, "%s\n", terrain.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "=== Ablation: linearization curve (I-Hilbert grouping on the "
      "Fig 8a terrain) ===\n");
  std::printf("%-10s %11s %9s %12s %12s %12s\n", "curve", "subfields",
              "tree_h", "avg_ms@0.01", "avg_ms@0.05", "avg_pages@0.01");

  for (const CurveType curve :
       {CurveType::kHilbert, CurveType::kZOrder, CurveType::kGrayCode,
        CurveType::kRowMajor}) {
    FieldDatabaseOptions options;
    options.method = IndexMethod::kIHilbert;
    options.build_spatial_index = false;
    options.ihilbert.curve = curve;
    StatusOr<std::unique_ptr<FieldDatabase>> db =
        FieldDatabase::Build(*terrain, options);
    if (!db.ok()) {
      std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
      return 1;
    }

    WorkloadOptions wo;
    wo.num_queries = num_queries;
    wo.seed = 2002;
    wo.qinterval_fraction = 0.01;
    auto narrow = (*db)->RunWorkload(
        GenerateValueQueries(terrain->ValueRange(), wo));
    wo.qinterval_fraction = 0.05;
    auto wide = (*db)->RunWorkload(
        GenerateValueQueries(terrain->ValueRange(), wo));
    if (!narrow.ok() || !wide.ok()) {
      std::fprintf(stderr, "workload failed\n");
      return 1;
    }
    std::printf("%-10s %11llu %9u %12.4f %12.4f %12.1f\n",
                CurveTypeName(curve),
                static_cast<unsigned long long>(
                    (*db)->build_info().num_subfields),
                (*db)->build_info().tree_height, narrow->avg_wall_ms,
                wide->avg_wall_ms, narrow->avg_logical_reads);
  }
  std::printf(
      "\nexpected: hilbert needs the fewest subfields and pages; "
      "row-major the most.\n");
  return 0;
}

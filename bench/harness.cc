#include "bench/harness.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <vector>

#include "gen/workload.h"
#include "obs/metrics.h"

namespace fielddb::bench {

void ApplyFlags(int argc, char** argv, FigureConfig* config) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      config->num_queries = 30;
    }
  }
}

bool RunFigure(const Field& field, const FigureConfig& config) {
  BenchReport report;
  return RunFigure(field, config, &report);
}

bool RunFigure(const Field& field, const FigureConfig& config,
               BenchReport* out_report) {
  std::printf("=== %s ===\n", config.title.c_str());
  std::printf("cells=%u value_range=%s queries_per_point=%u\n",
              field.NumCells(), field.ValueRange().ToString().c_str(),
              config.num_queries);

  BenchReport& report = *out_report;
  report = BenchReport{};
  report.bench_id = config.bench_id;
  report.title = config.title;
  report.field_cells = field.NumCells();
  report.value_min = field.ValueRange().min;
  report.value_max = field.ValueRange().max;
  report.num_queries = config.num_queries;
  report.workload_seed = config.workload_seed;

  bool first_workload = true;
  for (const IndexMethod method : config.methods) {
    FieldDatabaseOptions options = config.base_options;
    options.method = method;
    options.build_spatial_index = false;  // Q2-only workload
    StatusOr<std::unique_ptr<FieldDatabase>> db =
        FieldDatabase::Build(field, options);
    if (!db.ok()) {
      std::fprintf(stderr, "build %s: %s\n", IndexMethodName(method),
                   db.status().ToString().c_str());
      return false;
    }
    BenchSeries series;
    series.method = IndexMethodName(method);
    series.build = (*db)->build_info();

    for (const double qi : config.qintervals) {
      WorkloadOptions wo;
      wo.qinterval_fraction = qi;
      wo.num_queries = config.num_queries;
      wo.seed = config.workload_seed;  // same queries for every method
      const auto queries = GenerateValueQueries(field.ValueRange(), wo);

      if (first_workload && !config.bench_id.empty()) {
        // Instrumentation-overhead calibration: the very first workload
        // runs twice, metrics recording off then on, and the relative
        // wall-time delta lands in the report (and BENCH_*.json) so
        // every bench run carries its own measurement of what the
        // observability layer costs.
        const bool prev = MetricsRegistry::enabled();
        // Warmup pass so neither side pays first-touch costs (allocator,
        // page-file growth). The delta we are after is percent-level,
        // far below the timing noise on a shared machine (a single
        // off/on wall-time pair swings ±30% here; even per-pass CPU
        // time drifts ±15% in slow waves). So the calibration (a) times
        // each pass in *process CPU time* — preemption by other tenants
        // never shows up in it; (b) runs each rep in an ABBA order
        // (off, on, on, off), which cancels any drift that is linear in
        // time within the rep — including the observed
        // "second-pass-slower" effect a simple alternating pair folds
        // into the ratio; and (c) reports the median rep ratio, which
        // discards reps that caught a machine-state transient.
        // A short pass (a slice of the workload) keeps each ABBA rep
        // well inside one drift wave, where the cancellation is near
        // exact; the paired design supplies the statistical power the
        // shorter interval gives up.
        std::vector<ValueInterval> cal_queries(
            queries.begin(),
            queries.begin() + std::min<size_t>(queries.size(), 50));
        (void)(*db)->RunWorkload(cal_queries);
        auto cpu_ms_pass = [&](bool enable) -> double {
          MetricsRegistry::set_enabled(enable);
          const std::clock_t t0 = std::clock();
          StatusOr<WorkloadStats> ws = (*db)->RunWorkload(cal_queries);
          const std::clock_t t1 = std::clock();
          if (!ws.ok()) return 0.0;
          return 1000.0 * static_cast<double>(t1 - t0) / CLOCKS_PER_SEC;
        };
        std::vector<double> ratios;
        for (int rep = 0; rep < 15; ++rep) {
          const bool a_is_off = (rep % 2 == 0);  // ABBA then BAAB, ...
          const double a1 = cpu_ms_pass(!a_is_off);
          const double b1 = cpu_ms_pass(a_is_off);
          const double b2 = cpu_ms_pass(a_is_off);
          const double a2 = cpu_ms_pass(!a_is_off);
          const double off_ms = a_is_off ? a1 + a2 : b1 + b2;
          const double on_ms = a_is_off ? b1 + b2 : a1 + a2;
          if (off_ms > 0 && on_ms > 0) ratios.push_back(on_ms / off_ms);
        }
        MetricsRegistry::set_enabled(prev);
        if (!ratios.empty()) {
          std::sort(ratios.begin(), ratios.end());
          const size_t n = ratios.size();
          const double median =
              (n % 2 == 1) ? ratios[n / 2]
                           : (ratios[n / 2 - 1] + ratios[n / 2]) / 2.0;
          report.metrics_overhead_pct = (median - 1.0) * 100.0;
        }
      }
      first_workload = false;

      StatusOr<WorkloadStats> ws = (*db)->RunWorkload(queries);
      if (!ws.ok()) {
        std::fprintf(stderr, "workload %s qi=%g: %s\n",
                     IndexMethodName(method), qi,
                     ws.status().ToString().c_str());
        return false;
      }
      series.points.push_back(BenchPoint{qi, *ws});
    }
    report.series.push_back(std::move(series));
  }

  PrintBenchReport(report);

  if (!config.bench_id.empty()) {
    const std::string path = "BENCH_" + config.bench_id + ".json";
    const Status s = report.WriteJson(path);
    if (!s.ok()) {
      std::fprintf(stderr, "write %s: %s\n", path.c_str(),
                   s.ToString().c_str());
      return false;
    }
    std::printf("telemetry: %s\n\n", path.c_str());
  }
  return true;
}

}  // namespace fielddb::bench

#include "bench/harness.h"

#include <cstdio>
#include <cstring>
#include <map>

#include "gen/workload.h"

namespace fielddb::bench {

namespace {

struct SeriesPoint {
  WorkloadStats stats;
};

}  // namespace

void ApplyFlags(int argc, char** argv, FigureConfig* config) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      config->num_queries = 30;
    }
  }
}

bool RunFigure(const Field& field, const FigureConfig& config) {
  std::printf("=== %s ===\n", config.title.c_str());
  std::printf("cells=%u value_range=%s queries_per_point=%u\n",
              field.NumCells(), field.ValueRange().ToString().c_str(),
              config.num_queries);

  // results[method][qinterval index]
  std::map<IndexMethod, std::vector<SeriesPoint>> results;

  for (const IndexMethod method : config.methods) {
    FieldDatabaseOptions options = config.base_options;
    options.method = method;
    options.build_spatial_index = false;  // Q2-only workload
    StatusOr<std::unique_ptr<FieldDatabase>> db =
        FieldDatabase::Build(field, options);
    if (!db.ok()) {
      std::fprintf(stderr, "build %s: %s\n", IndexMethodName(method),
                   db.status().ToString().c_str());
      return false;
    }
    const IndexBuildInfo& info = (*db)->build_info();
    std::printf(
        "[build] %-11s entries=%-8llu subfields=%-7llu tree_h=%u "
        "tree_nodes=%-6llu store_pages=%-6llu build_s=%.2f\n",
        IndexMethodName(method),
        static_cast<unsigned long long>(info.num_index_entries),
        static_cast<unsigned long long>(info.num_subfields),
        info.tree_height,
        static_cast<unsigned long long>(info.tree_nodes),
        static_cast<unsigned long long>(info.store_pages),
        info.build_seconds);

    for (const double qi : config.qintervals) {
      WorkloadOptions wo;
      wo.qinterval_fraction = qi;
      wo.num_queries = config.num_queries;
      wo.seed = config.workload_seed;  // same queries for every method
      const auto queries =
          GenerateValueQueries(field.ValueRange(), wo);
      StatusOr<WorkloadStats> ws = (*db)->RunWorkload(queries);
      if (!ws.ok()) {
        std::fprintf(stderr, "workload %s qi=%g: %s\n",
                     IndexMethodName(method), qi,
                     ws.status().ToString().c_str());
        return false;
      }
      results[method].push_back(SeriesPoint{*ws});
    }
  }

  // Paper-figure table: avg execution time per query.
  std::printf("\n%-10s", "Qinterval");
  for (const IndexMethod method : config.methods) {
    std::printf(" %14s", (std::string(IndexMethodName(method)) + "(ms)")
                             .c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < config.qintervals.size(); ++i) {
    std::printf("%-10.3f", config.qintervals[i]);
    for (const IndexMethod method : config.methods) {
      std::printf(" %14.4f", results[method][i].stats.avg_wall_ms);
    }
    std::printf("\n");
  }

  // Companion table: average pages read per query (the quantity that
  // drives the wall-time shapes on a real disk).
  std::printf("\n%-10s", "Qinterval");
  for (const IndexMethod method : config.methods) {
    std::printf(" %14s", (std::string(IndexMethodName(method)) + "(pg)")
                             .c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < config.qintervals.size(); ++i) {
    std::printf("%-10.3f", config.qintervals[i]);
    for (const IndexMethod method : config.methods) {
      std::printf(" %14.1f", results[method][i].stats.avg_logical_reads);
    }
    std::printf("\n");
  }

  // Third table: the simulated 2002-disk I/O time per query (seek cost
  // for random pages, transfer-only for sequential ones — see DiskModel).
  // This is the regime the paper measured in: LinearScan reads the store
  // sequentially while index candidates are scattered, which is exactly
  // what makes I-All *lose* to LinearScan on high-selectivity workloads
  // (Fig. 11.a) even though it reads fewer pages.
  const DiskModel disk;
  std::printf("\n%-10s", "Qinterval");
  for (const IndexMethod method : config.methods) {
    std::printf(" %14s", (std::string(IndexMethodName(method)) + "(io_ms)")
                             .c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < config.qintervals.size(); ++i) {
    std::printf("%-10.3f", config.qintervals[i]);
    for (const IndexMethod method : config.methods) {
      std::printf(" %14.1f", results[method][i].stats.AvgDiskMs(disk));
    }
    std::printf("\n");
  }

  // Headline ratios when both series are present.
  const bool has_scan = results.count(IndexMethod::kLinearScan) > 0;
  const bool has_hilbert = results.count(IndexMethod::kIHilbert) > 0;
  if (has_scan && has_hilbert) {
    double min_ratio = 1e300, max_ratio = 0;
    double min_io = 1e300, max_io = 0;
    for (size_t i = 0; i < config.qintervals.size(); ++i) {
      const WorkloadStats& scan =
          results[IndexMethod::kLinearScan][i].stats;
      const WorkloadStats& hil = results[IndexMethod::kIHilbert][i].stats;
      if (hil.avg_wall_ms > 0) {
        const double r = scan.avg_wall_ms / hil.avg_wall_ms;
        min_ratio = std::min(min_ratio, r);
        max_ratio = std::max(max_ratio, r);
      }
      if (hil.AvgDiskMs(disk) > 0) {
        const double r = scan.AvgDiskMs(disk) / hil.AvgDiskMs(disk);
        min_io = std::min(min_io, r);
        max_io = std::max(max_io, r);
      }
    }
    std::printf(
        "\nI-Hilbert speedup over LinearScan: wall %.1fx .. %.1fx, "
        "sim-disk %.1fx .. %.1fx\n",
        min_ratio, max_ratio, min_io, max_io);
  }
  std::printf("\n");
  return true;
}

}  // namespace fielddb::bench

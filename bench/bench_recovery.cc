// Recovery benchmark (DESIGN.md §14): quantifies what the WAL costs and
// what recovery delivers, on an I-Hilbert fractal terrain.
//
//  1. Write overhead: the same seeded update stream through wal_mode
//     off / async / fsync_on_commit — updates/s per mode and the
//     slowdown relative to off. "off" is the pre-WAL contract, so its
//     number doubles as the no-regression baseline.
//  2. Replay: for WAL lengths L in a sweep, a checkpointed database
//     takes L committed updates, suffers a power cut, and is reopened —
//     reopen latency vs L, the scan/replay/verify split from the
//     recovery trace, and replay throughput in frames/s.
//
// Acceptance (checked here, not just plotted): every reopen must
// replay exactly L frames — a mismatch is lost or phantom data and
// fails the run. Emits BENCH_recovery.json (marker: top-level
// "recovery_bench": true; schema enforced by tools/check_bench_json.py).
//
// --quick shrinks the terrain and the sweep for the CTest smoke run.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/field_database.h"
#include "gen/fractal.h"
#include "obs/json.h"
#include "storage/wal.h"

namespace {

using namespace fielddb;

constexpr char kPrefix[] = "bench_recovery_db";

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void RemoveArtifacts() {
  for (const char* suffix :
       {".pages", ".meta", ".pages.tmp", ".meta.tmp", ".wal"}) {
    std::remove((std::string(kPrefix) + suffix).c_str());
  }
}

struct OverheadPoint {
  WalMode mode = WalMode::kOff;
  uint32_t updates = 0;
  double wall_ms = 0.0;
  double updates_per_sec = 0.0;
  double overhead_vs_off = 1.0;  // this mode's wall / off's wall
};

struct ReplayPoint {
  uint64_t wal_frames = 0;
  uint64_t wal_bytes = 0;
  double reopen_ms = 0.0;
  double scan_ms = 0.0;
  double replay_ms = 0.0;
  double verify_ms = 0.0;
  double frames_per_sec = 0.0;
  bool frames_replayed_ok = false;
};

/// Applies `n` seeded updates to `db`; returns false on error.
bool ApplyUpdates(FieldDatabase* db, uint32_t n, uint64_t num_cells,
                  Rng* rng) {
  for (uint32_t i = 0; i < n; ++i) {
    const CellId cell = static_cast<CellId>(rng->NextBounded(num_cells));
    const double v = rng->NextDouble(0.0, 1.0);
    const Status s = db->UpdateCellValues(cell, {v, v, v, v});
    if (!s.ok()) {
      std::fprintf(stderr, "update failed: %s\n", s.ToString().c_str());
      return false;
    }
  }
  return true;
}

double SpanMs(const QueryTrace& trace, const char* name) {
  const TraceSpan* span = trace.Find(name);
  return span == nullptr ? 0.0 : span->wall_seconds * 1000.0;
}

bool WriteJson(const std::string& path, uint64_t field_cells, uint64_t seed,
               const std::vector<OverheadPoint>& overhead,
               const std::vector<ReplayPoint>& replay) {
  std::string j = "{\n  \"bench_id\": \"recovery\",\n  \"title\": ";
  JsonAppendString(&j,
                   "WAL write overhead and crash-recovery replay, "
                   "I-Hilbert fractal terrain");
  j += ",\n  \"recovery_bench\": true";
  j += ",\n  \"method\": ";
  JsonAppendString(&j, IndexMethodName(IndexMethod::kIHilbert));
  j += ",\n  \"field_cells\": " + std::to_string(field_cells);
  j += ",\n  \"workload_seed\": " + std::to_string(seed);
  j += ",\n  \"write_overhead\": [";
  for (size_t i = 0; i < overhead.size(); ++i) {
    const OverheadPoint& p = overhead[i];
    j += i == 0 ? "\n" : ",\n";
    j += "    {\"wal_mode\": ";
    JsonAppendString(&j, WalModeName(p.mode));
    j += ", \"updates\": " + std::to_string(p.updates);
    j += ", \"wall_ms\": ";
    JsonAppendDouble(&j, p.wall_ms);
    j += ", \"updates_per_sec\": ";
    JsonAppendDouble(&j, p.updates_per_sec);
    j += ", \"overhead_vs_off\": ";
    JsonAppendDouble(&j, p.overhead_vs_off);
    j += "}";
  }
  j += "\n  ],\n  \"replay\": [";
  for (size_t i = 0; i < replay.size(); ++i) {
    const ReplayPoint& p = replay[i];
    j += i == 0 ? "\n" : ",\n";
    j += "    {\"wal_frames\": " + std::to_string(p.wal_frames);
    j += ", \"wal_bytes\": " + std::to_string(p.wal_bytes);
    j += ", \"reopen_ms\": ";
    JsonAppendDouble(&j, p.reopen_ms);
    j += ",\n     \"scan_ms\": ";
    JsonAppendDouble(&j, p.scan_ms);
    j += ", \"replay_ms\": ";
    JsonAppendDouble(&j, p.replay_ms);
    j += ", \"verify_ms\": ";
    JsonAppendDouble(&j, p.verify_ms);
    j += ", \"frames_per_sec\": ";
    JsonAppendDouble(&j, p.frames_per_sec);
    j += ", \"frames_replayed_ok\": ";
    j += p.frames_replayed_ok ? "true" : "false";
    j += "}";
  }
  j += "\n  ]\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(j.data(), 1, j.size(), f) == j.size();
  std::fclose(f);
  if (ok) std::printf("telemetry: %s\n", path.c_str());
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const uint64_t seed = 1492;

  FractalOptions fo;
  fo.size_exp = quick ? 5 : 7;  // 32x32 quick, 128x128 full
  fo.roughness_h = 0.7;
  fo.seed = 1972;
  StatusOr<GridField> terrain = MakeFractalField(fo);
  if (!terrain.ok()) {
    std::fprintf(stderr, "%s\n", terrain.status().ToString().c_str());
    return 1;
  }

  FieldDatabaseOptions options;
  options.method = IndexMethod::kIHilbert;
  options.build_spatial_index = false;
  StatusOr<std::unique_ptr<FieldDatabase>> built =
      FieldDatabase::Build(*terrain, options);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  const uint64_t num_cells = (*built)->build_info().num_cells;

  RemoveArtifacts();
  if (const Status s = (*built)->Save(kPrefix); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  built->reset();  // everything below runs against the checkpoint

  // --- 1. Write overhead per durability mode -------------------------
  const uint32_t updates = quick ? 300 : 2000;
  std::vector<OverheadPoint> overhead;
  for (const WalMode mode :
       {WalMode::kOff, WalMode::kAsync, WalMode::kFsyncOnCommit}) {
    FieldDatabase::OpenOptions oo;
    oo.wal_mode = mode;
    auto db = FieldDatabase::Open(kPrefix, oo);
    if (!db.ok()) {
      std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
      return 1;
    }
    Rng rng(seed);  // identical stream in every mode
    const auto t0 = std::chrono::steady_clock::now();
    if (!ApplyUpdates(db->get(), updates, num_cells, &rng)) return 1;
    OverheadPoint p;
    p.mode = mode;
    p.updates = updates;
    p.wall_ms = MsSince(t0);
    p.updates_per_sec = updates / (p.wall_ms / 1000.0);
    p.overhead_vs_off =
        overhead.empty() ? 1.0 : p.wall_ms / overhead.front().wall_ms;
    std::printf("mode=%-5s updates=%u wall=%8.2fms  %9.0f upd/s  x%.2f\n",
                WalModeName(mode), updates, p.wall_ms, p.updates_per_sec,
                p.overhead_vs_off);
    overhead.push_back(p);
    db->reset();  // discard (off: pool only; wal modes: log closed)
    std::remove((std::string(kPrefix) + ".wal").c_str());
  }

  // --- 2. Reopen latency & replay throughput vs WAL length -----------
  const std::vector<uint64_t> lengths =
      quick ? std::vector<uint64_t>{0, 50, 200}
            : std::vector<uint64_t>{0, 100, 1000, 5000};
  std::vector<ReplayPoint> replay;
  bool accepted = true;
  for (const uint64_t length : lengths) {
    {
      FieldDatabase::OpenOptions oo;
      oo.wal_mode = WalMode::kFsyncOnCommit;
      auto db = FieldDatabase::Open(kPrefix, oo);
      if (!db.ok()) {
        std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
        return 1;
      }
      Rng rng(seed + length);
      if (!ApplyUpdates(db->get(), static_cast<uint32_t>(length), num_cells,
                        &rng)) {
        return 1;
      }
      if (const Status s = (*db)->SimulateCrashForTest(); !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
    }

    FieldDatabase::RecoveryReport report;
    FieldDatabase::OpenOptions oo;
    oo.wal_mode = WalMode::kFsyncOnCommit;
    oo.recovery_report = &report;
    const auto t0 = std::chrono::steady_clock::now();
    auto reopened = FieldDatabase::Open(kPrefix, oo);
    const double reopen_ms = MsSince(t0);
    if (!reopened.ok()) {
      std::fprintf(stderr, "%s\n", reopened.status().ToString().c_str());
      return 1;
    }
    reopened->reset();
    std::remove((std::string(kPrefix) + ".wal").c_str());

    ReplayPoint p;
    p.wal_frames = length;
    p.wal_bytes = report.valid_bytes;
    p.reopen_ms = reopen_ms;
    p.scan_ms = SpanMs(report.trace, "wal.scan");
    p.replay_ms = SpanMs(report.trace, "wal.replay");
    p.verify_ms = SpanMs(report.trace, "verify");
    p.frames_per_sec =
        p.replay_ms > 0.0 ? length / (p.replay_ms / 1000.0) : 0.0;
    p.frames_replayed_ok = report.frames_replayed == length;
    accepted = accepted && p.frames_replayed_ok;
    std::printf(
        "frames=%-5llu bytes=%-7llu reopen=%8.2fms scan=%6.2fms "
        "replay=%6.2fms verify=%6.2fms %9.0f frames/s%s\n",
        static_cast<unsigned long long>(p.wal_frames),
        static_cast<unsigned long long>(p.wal_bytes), p.reopen_ms, p.scan_ms,
        p.replay_ms, p.verify_ms, p.frames_per_sec,
        p.frames_replayed_ok
            ? ""
            : "  VIOLATION: replayed != logged frame count");
    replay.push_back(p);
  }

  const bool wrote =
      WriteJson("BENCH_recovery.json", num_cells, seed, overhead, replay);
  RemoveArtifacts();
  if (!wrote) return 1;
  if (!accepted) {
    std::fprintf(stderr, "recovery acceptance checks failed\n");
    return 1;
  }
  return 0;
}

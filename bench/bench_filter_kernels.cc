// Microbench for the vectorized filter pipeline: on the Fig. 8a terrain
// (512x512 fractal DEM), times the filter step of a LinearScan database
// three ways at fixed selectivities —
//
//   record_scan     the pre-zone-map engine: fetch every page, deserialize
//                   every record, test cell.Interval().Intersects(q)
//   zonemap_scalar  the SoA zone map through the portable scalar kernel
//   zonemap_simd    the same arrays through the dispatched kernel (AVX2
//                   when compiled in and the CPU has it)
//
// All three must produce identical candidate-run lists (the JSON records
// the check). The pool is sized to hold the whole store and warmed first,
// so the comparison isolates filter CPU cost, not simulated disk.
//
// Emits BENCH_filter_kernels.json (schema: tools/check_bench_json.py).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/simd/interval_filter.h"
#include "gen/fractal.h"
#include "index/linear_scan.h"
#include "obs/json.h"
#include "storage/page_file.h"

namespace {

using namespace fielddb;
using Clock = std::chrono::steady_clock;

struct KernelPoint {
  double selectivity = 0.0;       // target fraction of matching cells
  double band_width = 0.0;        // calibrated query-interval width
  uint32_t num_queries = 0;
  double matched_cells_avg = 0.0;  // achieved avg matches per query
  double record_scan_ms = 0.0;
  double zonemap_scalar_ms = 0.0;
  double zonemap_simd_ms = 0.0;
  double speedup_scalar = 0.0;  // record_scan / zonemap_scalar
  double speedup_simd = 0.0;    // record_scan / zonemap_simd
  bool results_identical = false;
};

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

// Average fraction of cells whose interval intersects a width-`w` band,
// over a fixed set of probe centers (pure zone-map work, so calibration
// is cheap).
double Coverage(const CellStore& store, const std::vector<double>& centers,
                double w) {
  uint64_t total = 0;
  std::vector<PosRange> out;
  for (const double c : centers) {
    out.clear();
    store.FilterZoneMap(ValueInterval{c - w / 2, c + w / 2}, &out);
    total += TotalRangeLength(out);
  }
  return static_cast<double>(total) /
         (static_cast<double>(centers.size()) *
          static_cast<double>(store.size()));
}

// Bisects the band width that makes the average match fraction hit
// `target` on this field (the terrain's value distribution decides it,
// so the bench states selectivity, not an opaque qinterval).
double CalibrateWidth(const CellStore& store, const ValueInterval& range,
                      const std::vector<double>& centers, double target) {
  double lo = 0.0, hi = range.Length();
  for (int it = 0; it < 40; ++it) {
    const double mid = (lo + hi) / 2;
    (Coverage(store, centers, mid) < target ? lo : hi) = mid;
  }
  return (lo + hi) / 2;
}

bool RunPoint(const CellStore& store, const std::vector<ValueInterval>& qs,
              int repeats, KernelPoint* p) {
  std::vector<PosRange> record_runs, scalar_runs, simd_runs;
  uint64_t matched = 0;
  bool identical = true;

  const auto t_record = Clock::now();
  for (int rep = 0; rep < repeats; ++rep) {
    for (const ValueInterval& q : qs) {
      record_runs.clear();
      const Status s = store.ScanWith(
          0, store.size(), [&](uint64_t pos, const CellRecord& cell) {
            if (cell.Interval().Intersects(q)) {
              AppendPosition(&record_runs, pos);
            }
            return true;
          });
      if (!s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return false;
      }
    }
  }
  p->record_scan_ms = MsSince(t_record) / repeats;

  const auto t_scalar = Clock::now();
  for (int rep = 0; rep < repeats; ++rep) {
    for (const ValueInterval& q : qs) {
      scalar_runs.clear();
      simd::FilterIntervalRangesScalar(store.zone_min().data(),
                                       store.zone_max().data(), store.size(),
                                       0, q.min, q.max, &scalar_runs);
    }
  }
  p->zonemap_scalar_ms = MsSince(t_scalar) / repeats;

  const auto t_simd = Clock::now();
  for (int rep = 0; rep < repeats; ++rep) {
    for (const ValueInterval& q : qs) {
      simd_runs.clear();
      store.FilterZoneMap(q, &simd_runs);
    }
  }
  p->zonemap_simd_ms = MsSince(t_simd) / repeats;

  // Correctness pass, outside the timed loops: all three paths must
  // agree query by query.
  for (const ValueInterval& q : qs) {
    record_runs.clear();
    scalar_runs.clear();
    simd_runs.clear();
    const Status s = store.ScanWith(
        0, store.size(), [&](uint64_t pos, const CellRecord& cell) {
          if (cell.Interval().Intersects(q)) {
            AppendPosition(&record_runs, pos);
          }
          return true;
        });
    if (!s.ok()) return false;
    simd::FilterIntervalRangesScalar(store.zone_min().data(),
                                     store.zone_max().data(), store.size(),
                                     0, q.min, q.max, &scalar_runs);
    store.FilterZoneMap(q, &simd_runs);
    identical = identical && scalar_runs == record_runs &&
                simd_runs == record_runs;
    matched += TotalRangeLength(record_runs);
  }

  p->num_queries = static_cast<uint32_t>(qs.size());
  p->matched_cells_avg =
      static_cast<double>(matched) / static_cast<double>(qs.size());
  p->speedup_scalar = p->record_scan_ms / p->zonemap_scalar_ms;
  p->speedup_simd = p->record_scan_ms / p->zonemap_simd_ms;
  p->results_identical = identical;
  return true;
}

bool WriteJson(const std::string& path, uint64_t field_cells, uint64_t seed,
               const std::vector<KernelPoint>& points) {
  std::string j = "{\n  \"bench_id\": \"filter_kernels\",\n  \"title\": ";
  JsonAppendString(&j,
                   "Filter kernels: record scan vs SoA zone map, "
                   "512x512 fractal terrain");
  j += ",\n  \"field_cells\": " + std::to_string(field_cells);
  j += ",\n  \"workload_seed\": " + std::to_string(seed);
  j += ",\n  \"simd_level\": ";
  JsonAppendString(&j, simd::KernelLevelName(simd::ActiveKernelLevel()));
  j += ",\n  \"points\": [";
  for (size_t i = 0; i < points.size(); ++i) {
    const KernelPoint& p = points[i];
    j += i == 0 ? "\n" : ",\n";
    j += "    {\"selectivity\": ";
    JsonAppendDouble(&j, p.selectivity);
    j += ", \"band_width\": ";
    JsonAppendDouble(&j, p.band_width);
    j += ", \"num_queries\": " + std::to_string(p.num_queries);
    j += ", \"matched_cells_avg\": ";
    JsonAppendDouble(&j, p.matched_cells_avg);
    j += ",\n     \"record_scan_ms\": ";
    JsonAppendDouble(&j, p.record_scan_ms);
    j += ", \"zonemap_scalar_ms\": ";
    JsonAppendDouble(&j, p.zonemap_scalar_ms);
    j += ", \"zonemap_simd_ms\": ";
    JsonAppendDouble(&j, p.zonemap_simd_ms);
    j += ",\n     \"speedup_scalar\": ";
    JsonAppendDouble(&j, p.speedup_scalar);
    j += ", \"speedup_simd\": ";
    JsonAppendDouble(&j, p.speedup_simd);
    j += ", \"results_identical\": ";
    j += p.results_identical ? "true" : "false";
    j += "}";
  }
  j += "\n  ]\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(j.data(), 1, j.size(), f) == j.size();
  std::fclose(f);
  if (ok) std::printf("telemetry: %s\n", path.c_str());
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t num_queries = 100;
  int repeats = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      num_queries = 10;
      repeats = 1;
    }
  }
  const uint64_t seed = 1972;

  StatusOr<GridField> terrain = MakeRoseburgLikeTerrain();
  if (!terrain.ok()) {
    std::fprintf(stderr, "%s\n", terrain.status().ToString().c_str());
    return 1;
  }

  MemPageFile file;
  BufferPool pool(&file, 1 << 15);  // whole store resident
  StatusOr<std::unique_ptr<LinearScanIndex>> index =
      LinearScanIndex::Build(&pool, *terrain);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  const CellStore& store = (*index)->cell_store();
  const ValueInterval range = terrain->ValueRange();

  std::printf("cells=%llu simd=%s\n",
              static_cast<unsigned long long>(store.size()),
              simd::KernelLevelName(simd::ActiveKernelLevel()));

  // Warm the pool so record_scan pays pure fetch-hit + deserialize cost.
  uint64_t warm = 0;
  const Status ws = store.ScanWith(
      0, store.size(), [&](uint64_t, const CellRecord&) {
        ++warm;
        return true;
      });
  if (!ws.ok() || warm != store.size()) {
    std::fprintf(stderr, "warmup scan failed\n");
    return 1;
  }

  Rng rng(seed);
  std::vector<double> centers(32);
  for (double& c : centers) c = rng.NextDouble(range.min, range.max);

  std::vector<KernelPoint> points;
  for (const double selectivity : {0.01, 0.10}) {
    KernelPoint p;
    p.selectivity = selectivity;
    p.band_width = CalibrateWidth(store, range, centers, selectivity);
    std::vector<ValueInterval> qs(num_queries);
    for (ValueInterval& q : qs) {
      const double c = rng.NextDouble(range.min, range.max);
      q = ValueInterval{c - p.band_width / 2, c + p.band_width / 2};
    }
    if (!RunPoint(store, qs, repeats, &p)) return 1;
    points.push_back(p);
    std::printf(
        "sel=%.2f width=%.3f matched=%.0f record=%8.2fms scalar=%7.2fms "
        "(%.1fx) simd=%7.2fms (%.1fx) identical=%s\n",
        p.selectivity, p.band_width, p.matched_cells_avg, p.record_scan_ms,
        p.zonemap_scalar_ms, p.speedup_scalar, p.zonemap_simd_ms,
        p.speedup_simd, p.results_identical ? "yes" : "NO");
    if (!p.results_identical) {
      std::fprintf(stderr, "kernel outputs diverged\n");
      return 1;
    }
  }

  return WriteJson("BENCH_filter_kernels.json",
                   (*index)->build_info().num_cells, seed, points)
             ? 0
             : 1;
}

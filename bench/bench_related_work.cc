// Related-work comparison (paper Section 2.3): every query-processing
// approach the paper discusses, on the Fig. 8a terrain workload —
//  - LinearScan, I-All, I-Hilbert, I-Quadtree (the paper's methods);
//  - Row-IP: the per-row IP-index of [18, 19] ("could not handle the
//    continuity of terrain");
//  - IntervalTree: the main-memory interval tree of [5] used by the
//    isosurface literature [4, 24] — fast, but its whole structure must
//    be RAM-resident (the paper's objection), so it reports bytes of
//    required memory instead of pages.

#include <chrono>
#include <cstdio>
#include <cstring>

#include "core/field_database.h"
#include "gen/fractal.h"
#include "gen/workload.h"
#include "index/interval_tree.h"

int main(int argc, char** argv) {
  using namespace fielddb;
  uint32_t num_queries = 200;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) num_queries = 30;
  }

  StatusOr<GridField> terrain = MakeRoseburgLikeTerrain();
  if (!terrain.ok()) {
    std::fprintf(stderr, "%s\n", terrain.status().ToString().c_str());
    return 1;
  }
  WorkloadOptions wo;
  wo.qinterval_fraction = 0.02;
  wo.num_queries = num_queries;
  wo.seed = 2002;
  const auto queries = GenerateValueQueries(terrain->ValueRange(), wo);
  const DiskModel disk;

  std::printf(
      "=== Related work: every Section-2.3 approach on the Fig 8a "
      "terrain, Qinterval=0.02 ===\n");
  std::printf("%-12s %10s %12s %12s %14s\n", "method", "avg_ms",
              "avg_pages", "io_ms", "resident_MB");

  for (const IndexMethod method :
       {IndexMethod::kLinearScan, IndexMethod::kIAll,
        IndexMethod::kIHilbert, IndexMethod::kIntervalQuadtree,
        IndexMethod::kRowIp}) {
    FieldDatabaseOptions options;
    options.method = method;
    options.build_spatial_index = false;
    StatusOr<std::unique_ptr<FieldDatabase>> db =
        FieldDatabase::Build(*terrain, options);
    if (!db.ok()) {
      std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
      return 1;
    }
    StatusOr<WorkloadStats> ws = (*db)->RunWorkload(queries);
    if (!ws.ok()) {
      std::fprintf(stderr, "%s\n", ws.status().ToString().c_str());
      return 1;
    }
    // Paged methods keep only the buffer pool resident.
    const double resident_mb =
        static_cast<double>((*db)->pool().capacity()) * 4096 / 1e6;
    std::printf("%-12s %10.4f %12.1f %12.1f %14.1f\n",
                IndexMethodName(method), ws->avg_wall_ms,
                ws->avg_logical_reads, ws->AvgDiskMs(disk), resident_mb);
  }

  // The main-memory interval tree: filtering happens entirely in RAM
  // (no page accounting is possible — that is the point), and the
  // estimation step must still fetch the matching cells.
  {
    std::vector<IntervalTree::Item> items(terrain->NumCells());
    for (CellId id = 0; id < terrain->NumCells(); ++id) {
      items[id] = IntervalTree::Item{terrain->GetCell(id).Interval(), id};
    }
    const IntervalTree tree = IntervalTree::Build(std::move(items));
    const auto t0 = std::chrono::steady_clock::now();
    uint64_t total_hits = 0;
    std::vector<uint64_t> hits;
    for (const ValueInterval& q : queries) {
      hits.clear();
      tree.Query(q, &hits);
      total_hits += hits.size();
    }
    const double avg_ms =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count() *
        1000.0 / queries.size();
    std::printf("%-12s %10.4f %12s %12s %14.1f\n", "IntervalTree",
                avg_ms, "(RAM)", "(RAM)",
                static_cast<double>(tree.MemoryBytes()) / 1e6);
    std::printf(
        "\nIntervalTree filters %.0f cells/query entirely from %0.1f MB "
        "of required RAM — fast, but the paper's objection is exactly "
        "that this does not scale to databases larger than memory, and "
        "candidate cells must still be fetched from scattered pages.\n",
        static_cast<double>(total_hits) / queries.size(),
        static_cast<double>(tree.MemoryBytes()) / 1e6);
  }
  return 0;
}

// Reproduces Fig. 8a: field value queries on real terrain data — the
// USGS Roseburg DEM (512x512, 262,144 rectangular cells), substituted by
// a seeded H=0.7 fractal DEM of the same resolution (see DESIGN.md).
// Sweep: Qinterval in {0, 0.02, ..., 0.10}, 200 random interval queries
// per point, LinearScan vs I-All vs I-Hilbert.
//
// Expected shape (paper): I-Hilbert 6x-12x faster than LinearScan; I-All
// between them (or worse at large Qinterval).

#include "bench/harness.h"
#include "gen/fractal.h"

int main(int argc, char** argv) {
  using namespace fielddb;
  StatusOr<GridField> terrain = MakeRoseburgLikeTerrain();
  if (!terrain.ok()) {
    std::fprintf(stderr, "%s\n", terrain.status().ToString().c_str());
    return 1;
  }

  bench::FigureConfig config;
  config.title =
      "Fig 8a: real terrain DEM 512x512 (fractal H=0.7 substitute)";
  config.bench_id = "fig8a";
  config.qintervals = {0.0, 0.02, 0.04, 0.06, 0.08, 0.10};
  bench::ApplyFlags(argc, argv, &config);
  return bench::RunFigure(*terrain, config) ? 0 : 1;
}

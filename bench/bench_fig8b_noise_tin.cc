// Reproduces Fig. 8b: field value queries on real urban noise data — the
// Lyon TIN of ~9000 triangles, substituted by a synthetic Delaunay noise
// TIN of the same scale (see DESIGN.md). Same sweep as Fig. 8a.

#include "bench/harness.h"
#include "gen/noise_tin.h"

int main(int argc, char** argv) {
  using namespace fielddb;
  StatusOr<TinField> city = MakeUrbanNoiseTin();
  if (!city.ok()) {
    std::fprintf(stderr, "%s\n", city.status().ToString().c_str());
    return 1;
  }

  bench::FigureConfig config;
  config.title =
      "Fig 8b: urban noise TIN ~9000 triangles (synthetic substitute)";
  config.bench_id = "fig8b";
  config.qintervals = {0.0, 0.02, 0.04, 0.06, 0.08, 0.10};
  bench::ApplyFlags(argc, argv, &config);
  return bench::RunFigure(*city, config) ? 0 : 1;
}

// External bulk-load benchmark (DESIGN.md §16): throughput of the
// bounded-memory Hilbert bulk-load across every extension field type
// (3-D volume, 2-D vector, temporal slabs) under a sweep of build
// memory budgets, from unlimited (one in-RAM sort) down to budgets a
// few entries wide (dozens of spilled runs).
//
// Acceptance (checked here, not just plotted): a budgeted build must
// stay under its budget (peak buffered bytes) and must answer a fixed
// band query identically to the unlimited build — the external sort's
// stable (key, insertion-seq) tie-break makes the store layouts
// byte-identical, so any drift is a determinism bug. Emits
// BENCH_ext_build.json (marker: top-level "ext_build_bench": true;
// schema enforced by tools/check_bench_json.py).
//
// --quick shrinks the fields for the CTest smoke run.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/json.h"
#include "temporal/temporal_index.h"
#include "vector/vector_index.h"
#include "volume/volume_index.h"

namespace {

using namespace fielddb;

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct BuildPoint {
  size_t budget_bytes = 0;
  double build_ms = 0.0;
  double cells_per_sec = 0.0;
  uint64_t spill_runs = 0;
  uint64_t peak_buffered_bytes = 0;
  bool within_budget = false;
  bool matches_unlimited = false;
};

struct Series {
  std::string field_type;
  uint64_t num_cells = 0;
  std::vector<BuildPoint> points;
};

// One budgeted build of one field type: `build` constructs the database
// under the given budget and returns (spill_runs, peak_bytes, answer
// cells of the fixed probe query) — the caller compares the probe
// against the unlimited baseline.
struct BuildOutcome {
  uint64_t spill_runs = 0;
  uint64_t peak_bytes = 0;
  uint64_t answer_cells = 0;
  bool ok = false;
};

template <typename BuildFn>
bool RunSweep(const char* field_type, uint64_t num_cells,
              const std::vector<size_t>& budgets, BuildFn build,
              Series* out) {
  out->field_type = field_type;
  out->num_cells = num_cells;
  uint64_t baseline_cells = 0;
  for (size_t i = 0; i < budgets.size(); ++i) {
    const size_t budget = budgets[i];
    const auto t0 = std::chrono::steady_clock::now();
    const BuildOutcome outcome = build(budget);
    const double ms = MsSince(t0);
    if (!outcome.ok) return false;
    if (i == 0) baseline_cells = outcome.answer_cells;

    BuildPoint p;
    p.budget_bytes = budget;
    p.build_ms = ms;
    p.cells_per_sec = ms > 0 ? num_cells / (ms / 1000.0) : 0.0;
    p.spill_runs = outcome.spill_runs;
    p.peak_buffered_bytes = outcome.peak_bytes;
    p.within_budget = budget == 0 || outcome.peak_bytes <= budget;
    p.matches_unlimited = outcome.answer_cells == baseline_cells;
    out->points.push_back(p);

    std::printf("%-9s %10zu B %10.2f ms %12.0f cells/s %6llu runs "
                "%8llu B peak%s%s\n",
                field_type, budget, ms, p.cells_per_sec,
                static_cast<unsigned long long>(p.spill_runs),
                static_cast<unsigned long long>(p.peak_buffered_bytes),
                p.within_budget ? "" : "  OVER BUDGET",
                p.matches_unlimited ? "" : "  ANSWER MISMATCH");
  }
  return true;
}

bool WriteJson(const std::string& path,
               const std::vector<Series>& series) {
  std::string j = "{\n  \"bench_id\": \"ext_build\",\n";
  j += "  \"title\": \"Bounded-memory external Hilbert bulk-load\",\n";
  j += "  \"ext_build_bench\": true,\n";
  j += "  \"series\": [";
  for (size_t s = 0; s < series.size(); ++s) {
    const Series& ser = series[s];
    j += s == 0 ? "\n" : ",\n";
    j += "    {\"field_type\": \"" + ser.field_type + "\",";
    j += " \"num_cells\": " + std::to_string(ser.num_cells) + ",";
    j += " \"points\": [";
    for (size_t i = 0; i < ser.points.size(); ++i) {
      const BuildPoint& p = ser.points[i];
      j += i == 0 ? "\n" : ",\n";
      j += "      {\"budget_bytes\": " + std::to_string(p.budget_bytes);
      j += ", \"build_ms\": ";
      JsonAppendDouble(&j, p.build_ms);
      j += ", \"cells_per_sec\": ";
      JsonAppendDouble(&j, p.cells_per_sec);
      j += ",\n       \"spill_runs\": " + std::to_string(p.spill_runs);
      j += ", \"peak_buffered_bytes\": " +
           std::to_string(p.peak_buffered_bytes);
      j += ", \"within_budget\": ";
      j += p.within_budget ? "true" : "false";
      j += ", \"matches_unlimited\": ";
      j += p.matches_unlimited ? "true" : "false";
      j += "}";
    }
    j += "\n    ]}";
  }
  j += "\n  ]\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(j.data(), 1, j.size(), f) == j.size();
  std::fclose(f);
  if (ok) std::printf("telemetry: %s\n", path.c_str());
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  // Budget 0 (unlimited) must come first: it is the answer baseline the
  // budgeted builds are differenced against.
  const std::vector<size_t> budgets =
      quick ? std::vector<size_t>{0, 16384, 1024}
            : std::vector<size_t>{0, 1 << 20, 65536, 4096};

  std::printf("=== External bulk-load: budget sweep per field type "
              "===\n");
  std::vector<Series> series;
  bool accepted = true;

  {
    VolumeFractalOptions vo;
    vo.nx = vo.ny = vo.nz = quick ? 8 : 32;
    vo.roughness_h = 0.7;
    vo.seed = 909;
    auto volume = MakeFractalVolume(vo);
    if (!volume.ok()) {
      std::fprintf(stderr, "%s\n", volume.status().ToString().c_str());
      return 1;
    }
    const ValueInterval range = volume->ValueRange();
    const ValueInterval band{range.min + 0.25 * (range.max - range.min),
                             range.max - 0.25 * (range.max - range.min)};
    Series ser;
    const bool ok = RunSweep(
        "volume", volume->NumCells(), budgets,
        [&](size_t budget) {
          BuildOutcome outcome;
          VolumeFieldDatabase::Options options;
          options.build_memory_budget_bytes = budget;
          auto db = VolumeFieldDatabase::Build(*volume, options);
          if (!db.ok()) {
            std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
            return outcome;
          }
          VolumeQueryResult result;
          if (const Status s = (*db)->BandQuery(band, &result); !s.ok()) {
            std::fprintf(stderr, "%s\n", s.ToString().c_str());
            return outcome;
          }
          outcome.spill_runs = (*db)->ext_spill_runs();
          outcome.peak_bytes = (*db)->ext_peak_buffered_bytes();
          outcome.answer_cells = result.stats.answer_cells;
          outcome.ok = true;
          return outcome;
        },
        &ser);
    if (!ok) return 1;
    series.push_back(std::move(ser));
  }

  {
    const uint32_t n = quick ? 24 : 96;
    const uint32_t verts = n + 1;
    std::vector<double> su(verts * verts), sv(verts * verts);
    for (uint32_t jv = 0; jv < verts; ++jv) {
      for (uint32_t iv = 0; iv < verts; ++iv) {
        su[jv * verts + iv] = static_cast<double>(iv) + jv;
        sv[jv * verts + iv] = static_cast<double>(iv) - jv;
      }
    }
    auto field = VectorGridField::Create(
        n, n, Rect2{{0.0, 0.0}, {1.0, 1.0}}, su, sv);
    if (!field.ok()) {
      std::fprintf(stderr, "%s\n", field.status().ToString().c_str());
      return 1;
    }
    VectorBandQuery query;
    query.u = ValueInterval{0.5 * n, 1.5 * n};
    query.v = ValueInterval{-0.5 * n, 0.5 * n};
    Series ser;
    const bool ok = RunSweep(
        "vector", field->NumCells(), budgets,
        [&](size_t budget) {
          BuildOutcome outcome;
          VectorFieldDatabase::Options options;
          options.build_memory_budget_bytes = budget;
          auto db = VectorFieldDatabase::Build(*field, options);
          if (!db.ok()) {
            std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
            return outcome;
          }
          VectorQueryResult result;
          if (const Status s = (*db)->BandQuery(query, &result);
              !s.ok()) {
            std::fprintf(stderr, "%s\n", s.ToString().c_str());
            return outcome;
          }
          outcome.spill_runs = (*db)->ext_spill_runs();
          outcome.peak_bytes = (*db)->ext_peak_buffered_bytes();
          outcome.answer_cells = result.stats.answer_cells;
          outcome.ok = true;
          return outcome;
        },
        &ser);
    if (!ok) return 1;
    series.push_back(std::move(ser));
  }

  {
    const uint32_t n = quick ? 16 : 48;
    const uint32_t num_snapshots = quick ? 4 : 8;
    const uint32_t verts = n + 1;
    std::vector<std::vector<double>> snapshots(num_snapshots);
    for (uint32_t k = 0; k < num_snapshots; ++k) {
      snapshots[k].resize(verts * verts);
      for (uint32_t jv = 0; jv < verts; ++jv) {
        for (uint32_t iv = 0; iv < verts; ++iv) {
          snapshots[k][jv * verts + iv] =
              static_cast<double>(iv) + jv + 10.0 * k;
        }
      }
    }
    auto field = TemporalGridField::Create(
        n, n, Rect2{{0.0, 0.0}, {1.0, 1.0}}, std::move(snapshots));
    if (!field.ok()) {
      std::fprintf(stderr, "%s\n", field.status().ToString().c_str());
      return 1;
    }
    const ValueInterval range = field->ValueRange();
    const ValueInterval band{range.min + 0.25 * (range.max - range.min),
                             range.max - 0.25 * (range.max - range.min)};
    Series ser;
    const bool ok = RunSweep(
        "temporal", field->NumCells(), budgets,
        [&](size_t budget) {
          BuildOutcome outcome;
          TemporalFieldDatabase::Options options;
          options.build_memory_budget_bytes = budget;
          auto db = TemporalFieldDatabase::Build(*field, options);
          if (!db.ok()) {
            std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
            return outcome;
          }
          ValueQueryResult result;
          if (const Status s =
                  (*db)->SnapshotValueQuery(1.0, band, &result);
              !s.ok()) {
            std::fprintf(stderr, "%s\n", s.ToString().c_str());
            return outcome;
          }
          outcome.spill_runs = (*db)->ext_spill_runs();
          outcome.peak_bytes = (*db)->ext_peak_buffered_bytes();
          outcome.answer_cells = result.stats.answer_cells;
          outcome.ok = true;
          return outcome;
        },
        &ser);
    if (!ok) return 1;
    series.push_back(std::move(ser));
  }

  bool wrote = WriteJson("BENCH_ext_build.json", series);
  size_t tightest = 0;
  for (const size_t b : budgets) {
    if (b > 0 && (tightest == 0 || b < tightest)) tightest = b;
  }
  for (const Series& ser : series) {
    for (const BuildPoint& p : ser.points) {
      if (!p.within_budget || !p.matches_unlimited) accepted = false;
      // The tightest budget must actually exercise the spill path, or
      // the sweep proves nothing about the external sort.
      if (p.budget_bytes > 0 && p.budget_bytes == tightest &&
          p.spill_runs == 0) {
        std::fprintf(stderr, "%s: tightest budget never spilled\n",
                     ser.field_type.c_str());
        accepted = false;
      }
    }
  }
  if (!accepted) {
    std::fprintf(stderr, "ext build acceptance checks failed\n");
    return 1;
  }
  return wrote ? 0 : 1;
}

#ifndef FIELDDB_BENCH_HARNESS_H_
#define FIELDDB_BENCH_HARNESS_H_

#include <string>
#include <vector>

#include "core/field_database.h"
#include "field/field.h"

namespace fielddb::bench {

/// One figure reproduction: for each Qinterval in the sweep and each
/// method, run `num_queries` random interval queries (cold cache per
/// query, as the paper's independent random disk-resident queries) and
/// print one row per Qinterval with the per-method average query time —
/// the series the paper's figures plot — plus the page-access counts
/// that explain them.
struct FigureConfig {
  std::string title;
  std::vector<double> qintervals;
  std::vector<IndexMethod> methods = {IndexMethod::kLinearScan,
                                      IndexMethod::kIAll,
                                      IndexMethod::kIHilbert};
  uint32_t num_queries = 200;
  uint64_t workload_seed = 2002;
  FieldDatabaseOptions base_options;  // method is overridden per series
};

/// Runs the sweep and prints the figure table to stdout. Databases are
/// built one at a time (million-cell fields would not fit side by side).
/// Returns false on any error (after printing it).
bool RunFigure(const Field& field, const FigureConfig& config);

/// Parses the common bench flags: "--quick" shrinks the workload to 30
/// queries for smoke runs.
void ApplyFlags(int argc, char** argv, FigureConfig* config);

}  // namespace fielddb::bench

#endif  // FIELDDB_BENCH_HARNESS_H_

#ifndef FIELDDB_BENCH_HARNESS_H_
#define FIELDDB_BENCH_HARNESS_H_

#include <string>
#include <vector>

#include "core/field_database.h"
#include "field/field.h"
#include "obs/report.h"

namespace fielddb::bench {

/// One figure reproduction: for each Qinterval in the sweep and each
/// method, run `num_queries` random interval queries (cold cache per
/// query, as the paper's independent random disk-resident queries) and
/// print one row per Qinterval with the per-method average query time —
/// the series the paper's figures plot — plus the page-access counts
/// that explain them.
struct FigureConfig {
  std::string title;
  /// Stable id for machine-readable output: when non-empty the run also
  /// writes BENCH_<bench_id>.json (schema in DESIGN.md) to the current
  /// directory, and calibrates the metrics-recording overhead by running
  /// the first workload with the registry disabled, then enabled.
  std::string bench_id;
  std::vector<double> qintervals;
  std::vector<IndexMethod> methods = {IndexMethod::kLinearScan,
                                      IndexMethod::kIAll,
                                      IndexMethod::kIHilbert};
  uint32_t num_queries = 200;
  uint64_t workload_seed = 2002;
  FieldDatabaseOptions base_options;  // method is overridden per series
};

/// Runs the sweep, prints the figure table to stdout, and (when
/// `config.bench_id` is set) writes the BENCH_<id>.json telemetry file.
/// Databases are built one at a time (million-cell fields would not fit
/// side by side). Returns false on any error (after printing it).
bool RunFigure(const Field& field, const FigureConfig& config);

/// Like RunFigure, but also hands the populated report back to the
/// caller (fielddb_cli bench reuses this to honor its --json flag).
bool RunFigure(const Field& field, const FigureConfig& config,
               BenchReport* out_report);

/// Parses the common bench flags: "--quick" shrinks the workload to 30
/// queries for smoke runs.
void ApplyFlags(int argc, char** argv, FigureConfig* config);

}  // namespace fielddb::bench

#endif  // FIELDDB_BENCH_HARNESS_H_

// Ablation for DESIGN.md choice #4 — the assumed average query length q̄
// in the access probability P = L + q̄ (Section 3.1, after [14]). The
// paper fixes q̄ = 0.5; this sweep shows how the subfield granularity
// and query cost move with it, at two actual query widths.

#include <cstdio>
#include <cstring>

#include "core/field_database.h"
#include "gen/fractal.h"
#include "gen/workload.h"

int main(int argc, char** argv) {
  using namespace fielddb;
  uint32_t num_queries = 200;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) num_queries = 30;
  }

  StatusOr<GridField> terrain = MakeRoseburgLikeTerrain();
  if (!terrain.ok()) {
    std::fprintf(stderr, "%s\n", terrain.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "=== Ablation: cost-model q-bar sweep (I-Hilbert on the Fig 8a "
      "terrain) ===\n");
  std::printf("%-8s %11s %12s %12s %14s %14s\n", "q_bar", "subfields",
              "avg_ms@0.01", "avg_ms@0.05", "io_ms@0.01", "io_ms@0.05");

  const DiskModel disk;
  for (const double qbar : {0.05, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    FieldDatabaseOptions options;
    options.method = IndexMethod::kIHilbert;
    options.build_spatial_index = false;
    options.ihilbert.cost.avg_query_fraction = qbar;
    StatusOr<std::unique_ptr<FieldDatabase>> db =
        FieldDatabase::Build(*terrain, options);
    if (!db.ok()) {
      std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
      return 1;
    }
    WorkloadOptions wo;
    wo.num_queries = num_queries;
    wo.seed = 2002;
    wo.qinterval_fraction = 0.01;
    auto narrow = (*db)->RunWorkload(
        GenerateValueQueries(terrain->ValueRange(), wo));
    wo.qinterval_fraction = 0.05;
    auto wide = (*db)->RunWorkload(
        GenerateValueQueries(terrain->ValueRange(), wo));
    if (!narrow.ok() || !wide.ok()) {
      std::fprintf(stderr, "workload failed\n");
      return 1;
    }
    std::printf("%-8.2f %11llu %12.4f %12.4f %14.1f %14.1f\n", qbar,
                static_cast<unsigned long long>(
                    (*db)->build_info().num_subfields),
                narrow->avg_wall_ms, wide->avg_wall_ms,
                narrow->AvgDiskMs(disk), wide->AvgDiskMs(disk));
  }
  std::printf(
      "\nexpected: larger q-bar -> fewer, coarser subfields; the paper's "
      "0.5 sits in a broad flat optimum (the model is robust to it).\n");
  return 0;
}

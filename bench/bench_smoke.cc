// End-to-end smoke run of the figure harness, small enough for CTest: a
// 64x64 fractal DEM swept through every method, with telemetry written
// to BENCH_smoke.json. The binary asserts the report's structure itself
// (series/points/counts); the companion check_bench_json CTest then
// validates the JSON file against the documented schema with
// tools/check_bench_json.py.

#include <cstdio>

#include "bench/harness.h"
#include "gen/fractal.h"

namespace {

bool Check(bool ok, const char* what) {
  if (!ok) std::fprintf(stderr, "bench_smoke: FAILED: %s\n", what);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fielddb;
  FractalOptions options;
  options.size_exp = 6;  // 64x64 = 4096 cells
  options.roughness_h = 0.7;
  options.seed = 7;
  StatusOr<GridField> field = MakeFractalField(options);
  if (!field.ok()) {
    std::fprintf(stderr, "%s\n", field.status().ToString().c_str());
    return 1;
  }

  bench::FigureConfig config;
  config.title = "smoke: 64x64 fractal DEM through the figure harness";
  config.bench_id = "smoke";
  config.qintervals = {0.02, 0.10};
  config.num_queries = 20;
  bench::ApplyFlags(argc, argv, &config);

  BenchReport report;
  if (!bench::RunFigure(*field, config, &report)) return 1;

  bool ok = true;
  ok &= Check(report.series.size() == config.methods.size(),
              "one series per method");
  for (const BenchSeries& s : report.series) {
    ok &= Check(!s.method.empty(), "series has a method name");
    ok &= Check(s.points.size() == config.qintervals.size(),
                "one point per qinterval");
    ok &= Check(s.build.num_cells == field->NumCells(),
                "build info counts the field's cells");
    for (const BenchPoint& p : s.points) {
      ok &= Check(p.stats.num_queries == config.num_queries,
                  "point ran the configured workload");
      ok &= Check(p.stats.avg_logical_reads > 0,
                  "queries touched pages");
      ok &= Check(p.stats.max_wall_ms >= p.stats.p50_wall_ms,
                  "wall-time percentiles are ordered");
    }
  }
  // The harness must have calibrated instrumentation overhead.
  ok &= Check(report.metrics_overhead_pct ==
                  report.metrics_overhead_pct,  // not NaN
              "metrics overhead was measured");
  std::FILE* f = std::fopen("BENCH_smoke.json", "rb");
  ok &= Check(f != nullptr, "BENCH_smoke.json exists");
  if (f != nullptr) {
    const int first = std::fgetc(f);
    ok &= Check(first == '{', "BENCH_smoke.json starts a JSON object");
    std::fclose(f);
  }
  if (ok) std::printf("bench_smoke: OK\n");
  return ok ? 0 : 1;
}

// Thread-scaling bench for the concurrent query engine: one database
// per method, a fixed warm-cache workload, QPS and wall-time tails as
// the QueryExecutor pool grows through {1, 2, 4, 8} threads.
//
// Unlike the figure benches (cold cache per query, disk-bound shapes),
// this bench is deliberately CPU-bound: the pool is sized to hold the
// whole database, a warmup pass populates it, and every measured query
// is served from memory — so the curve isolates the engine's
// shared-reader scalability (shard locks, atomic counters) rather than
// simulated-disk behavior. speedup_vs_1 only approaches the thread
// count when the host actually has that many cores; the emitted
// hardware_threads field records what the machine could do.
//
// Emits BENCH_scaling.json (schema validated by tools/check_bench_json.py).

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/field_database.h"
#include "core/query_executor.h"
#include "gen/fractal.h"
#include "gen/workload.h"
#include "obs/json.h"

namespace {

using namespace fielddb;

struct ScalePoint {
  size_t threads = 0;
  double qps = 0.0;
  double avg_wall_ms = 0.0;
  double p50_wall_ms = 0.0;
  double p99_wall_ms = 0.0;
  double speedup_vs_1 = 0.0;
  uint64_t failed = 0;
};

struct ScaleSeries {
  std::string method;
  std::vector<ScalePoint> points;
};

bool Fail(const Status& s) {
  std::fprintf(stderr, "%s\n", s.ToString().c_str());
  return false;
}

bool RunScaling(const Field& field, uint32_t num_queries, uint64_t seed,
                double qinterval, std::vector<ScaleSeries>* out,
                uint64_t* field_cells) {
  const std::vector<IndexMethod> methods = {
      IndexMethod::kIHilbert, IndexMethod::kIAll, IndexMethod::kLinearScan};
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};

  for (const IndexMethod method : methods) {
    FieldDatabaseOptions options;
    options.method = method;
    // Big enough for full residency: warm-cache queries never evict, so
    // every thread count sees the identical all-hit I/O pattern.
    options.pool_pages = 16384;
    StatusOr<std::unique_ptr<FieldDatabase>> db =
        FieldDatabase::Build(field, options);
    if (!db.ok()) return Fail(db.status());
    *field_cells = (*db)->build_info().num_cells;

    WorkloadOptions wo;
    wo.qinterval_fraction = qinterval;
    wo.num_queries = num_queries;
    wo.seed = seed;
    const std::vector<ValueInterval> queries =
        GenerateValueQueries((*db)->value_range(), wo);

    ScaleSeries series;
    series.method = IndexMethodName(method);
    double qps_at_1 = 0.0;
    for (const size_t threads : thread_counts) {
      QueryExecutor::Options eo;
      eo.threads = threads;
      QueryExecutor executor(db->get(), eo);
      QueryExecutor::BatchResult warmup;
      const Status sw = executor.RunBatch(queries, &warmup);
      if (!sw.ok()) return Fail(sw);
      QueryExecutor::BatchResult batch;
      const Status sb = executor.RunBatch(queries, &batch);
      if (!sb.ok()) return Fail(sb);

      ScalePoint p;
      p.threads = threads;
      p.qps = batch.qps;
      p.avg_wall_ms =
          batch.total.wall_seconds * 1000.0 / static_cast<double>(num_queries);
      p.p50_wall_ms = batch.p50_wall_ms;
      p.p99_wall_ms = batch.p99_wall_ms;
      p.failed = batch.failed;
      if (threads == 1) qps_at_1 = batch.qps;
      p.speedup_vs_1 = qps_at_1 > 0.0 ? batch.qps / qps_at_1 : 0.0;
      series.points.push_back(p);

      std::printf("%-12s threads=%zu qps=%9.1f p50=%8.3fms p99=%8.3fms "
                  "speedup=%.2fx failed=%llu\n",
                  series.method.c_str(), threads, p.qps, p.p50_wall_ms,
                  p.p99_wall_ms, p.speedup_vs_1,
                  static_cast<unsigned long long>(p.failed));
    }
    out->push_back(std::move(series));
  }
  return true;
}

bool WriteJson(const std::string& path, const std::vector<ScaleSeries>& series,
               uint64_t field_cells, uint32_t num_queries, uint64_t seed,
               double qinterval) {
  std::string j = "{\n  \"bench_id\": \"scaling\",\n  \"title\": ";
  JsonAppendString(&j, "Thread scaling: warm-cache value queries, "
                       "512x512 fractal terrain");
  j += ",\n  \"field_cells\": " + std::to_string(field_cells);
  j += ",\n  \"num_queries\": " + std::to_string(num_queries);
  j += ",\n  \"workload_seed\": " + std::to_string(seed);
  j += ",\n  \"qinterval\": ";
  JsonAppendDouble(&j, qinterval);
  j += ",\n  \"hardware_threads\": " +
       std::to_string(std::thread::hardware_concurrency());
  j += ",\n  \"series\": [";
  for (size_t si = 0; si < series.size(); ++si) {
    const ScaleSeries& s = series[si];
    j += si == 0 ? "\n" : ",\n";
    j += "    {\"method\": ";
    JsonAppendString(&j, s.method);
    j += ", \"points\": [";
    for (size_t pi = 0; pi < s.points.size(); ++pi) {
      const ScalePoint& p = s.points[pi];
      j += pi == 0 ? "\n" : ",\n";
      j += "      {\"threads\": " + std::to_string(p.threads);
      j += ", \"qps\": ";
      JsonAppendDouble(&j, p.qps);
      j += ", \"avg_wall_ms\": ";
      JsonAppendDouble(&j, p.avg_wall_ms);
      j += ", \"p50_wall_ms\": ";
      JsonAppendDouble(&j, p.p50_wall_ms);
      j += ", \"p99_wall_ms\": ";
      JsonAppendDouble(&j, p.p99_wall_ms);
      j += ", \"speedup_vs_1\": ";
      JsonAppendDouble(&j, p.speedup_vs_1);
      j += ", \"failed\": " + std::to_string(p.failed) + "}";
    }
    j += "\n    ]}";
  }
  j += "\n  ]\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(j.data(), 1, j.size(), f) == j.size();
  std::fclose(f);
  if (ok) std::printf("telemetry: %s\n", path.c_str());
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t num_queries = 240;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) num_queries = 40;
  }
  const uint64_t seed = 2002;
  const double qinterval = 0.05;

  StatusOr<GridField> terrain = MakeRoseburgLikeTerrain();
  if (!terrain.ok()) {
    std::fprintf(stderr, "%s\n", terrain.status().ToString().c_str());
    return 1;
  }

  std::printf("hardware threads: %u\n", std::thread::hardware_concurrency());
  std::vector<ScaleSeries> series;
  uint64_t field_cells = 0;
  if (!RunScaling(*terrain, num_queries, seed, qinterval, &series,
                  &field_cells)) {
    return 1;
  }
  return WriteJson("BENCH_scaling.json", series, field_cells, num_queries,
                   seed, qinterval)
             ? 0
             : 1;
}

#!/usr/bin/env python3
"""Validates BENCH_*.json bench telemetry against the schema in DESIGN.md.

Usage: check_bench_json.py FILE [FILE...]
Exits 0 when every file is valid; prints each violation and exits 1
otherwise. Stdlib only — this runs inside CTest (see bench/CMakeLists.txt)
and in CI pipelines that plot the figures from the telemetry.
"""

import json
import math
import sys

_POINT_FIELDS = [
    "avg_wall_ms",
    "p50_wall_ms",
    "p90_wall_ms",
    "p99_wall_ms",
    "max_wall_ms",
    "avg_candidates",
    "avg_answer_cells",
    "avg_logical_reads",
    "avg_physical_reads",
    "avg_sequential_reads",
    "avg_random_reads",
    "avg_index_fallbacks",
    "avg_read_retries",
    "avg_failed_reads",
    "avg_disk_model_ms",
]

_BUILD_FIELDS = [
    "num_cells",
    "num_index_entries",
    "num_subfields",
    "tree_height",
    "tree_nodes",
    "store_pages",
    "build_seconds",
]


class Checker:
    def __init__(self, path):
        self.path = path
        self.errors = []
        self.warnings = []

    def error(self, where, message):
        self.errors.append(f"{self.path}: {where}: {message}")

    def warn(self, where, message):
        self.warnings.append(f"{self.path}: {where}: warning: {message}")

    def warn_single_threaded(self, report):
        # A scaling-type bench captured on one hardware thread measures
        # queueing, not parallelism — the capture is valid telemetry but
        # should not be quoted as a scaling result.
        threads = report.get("hardware_threads")
        if isinstance(threads, (int, float)) and threads == 1:
            self.warn("report",
                      "captured on 1 hardware thread; scaling numbers "
                      "reflect queueing, not parallel speedup")

    def require(self, obj, key, types, where):
        if key not in obj:
            self.error(where, f"missing key '{key}'")
            return None
        value = obj[key]
        if not isinstance(value, types) or isinstance(value, bool):
            self.error(where, f"'{key}' has type {type(value).__name__}")
            return None
        return value

    def number(self, obj, key, where, minimum=None):
        value = self.require(obj, key, (int, float), where)
        if value is None:
            return None
        if isinstance(value, float) and not math.isfinite(value):
            self.error(where, f"'{key}' is not finite")
            return None
        if minimum is not None and value < minimum:
            self.error(where, f"'{key}' = {value} < {minimum}")
        return value

    def check(self, report):
        # Explicit marker fields dispatch first: several scaling-type
        # benches also stamp hardware_threads, so the bare
        # hardware_threads fallback (bench_scaling) must come last.
        # The shard-scaling bench (bench_shard_scaling) sweeps router
        # shard counts under concurrent clients; its marker is the
        # top-level shard_scaling_bench field.
        if "shard_scaling_bench" in report:
            self.check_shard_scaling(report)
            return
        # The filter-kernel microbench (bench_filter_kernels) compares
        # filter implementations at fixed selectivities; its marker is
        # the top-level simd_level field.
        if "simd_level" in report:
            self.check_filter_kernels(report)
            return
        # The planner sweep (bench_planner) compares the adaptive planner
        # against both forced plans; its marker is the top-level
        # planner_sweep field.
        if "planner_sweep" in report:
            self.check_planner(report)
            return
        # The recovery bench (bench_recovery) measures WAL write overhead
        # and crash-replay throughput; its marker is the top-level
        # recovery_bench field.
        if "recovery_bench" in report:
            self.check_recovery(report)
            return
        # The observability bench (bench_obs_overhead) measures the cost
        # of the always-on obs layer; its marker is the top-level
        # obs_overhead field.
        if "obs_overhead" in report:
            self.check_obs_overhead(report)
            return
        # The external bulk-load bench (bench_ext_build) sweeps the
        # build memory budget across the extension field types; its
        # marker is the top-level ext_build_bench field.
        if "ext_build_bench" in report:
            self.check_ext_build(report)
            return
        # The shared-scan bench (bench_shared_scan) compares isolated
        # vs fused multi-query execution; its marker is the top-level
        # shared_scan_bench field.
        if "shared_scan_bench" in report:
            self.check_shared_scan(report)
            return
        # The thread-scaling bench (bench_scaling) has its own shape:
        # points are keyed by thread count, not qinterval, and there is
        # no disk model (warm-cache regime). Its marker is the top-level
        # hardware_threads field — checked after every explicit marker
        # above, since those reports stamp hardware_threads too.
        if "hardware_threads" in report:
            self.check_scaling(report)
            return
        self.require(report, "bench_id", str, "report")
        self.require(report, "title", str, "report")
        self.number(report, "field_cells", "report", minimum=1)
        self.number(report, "num_queries", "report", minimum=1)
        self.number(report, "workload_seed", "report", minimum=0)

        vr = self.require(report, "value_range", dict, "report")
        if vr is not None:
            lo = self.number(vr, "min", "value_range")
            hi = self.number(vr, "max", "value_range")
            if lo is not None and hi is not None and lo > hi:
                self.error("value_range", f"min {lo} > max {hi}")

        # May legitimately be slightly negative (timing noise around 0)
        # or null (not measured); only its type is constrained.
        if "metrics_overhead_pct" not in report:
            self.error("report", "missing key 'metrics_overhead_pct'")
        elif report["metrics_overhead_pct"] is not None:
            self.number(report, "metrics_overhead_pct", "report")

        disk = self.require(report, "disk_model", dict, "report")
        if disk is not None:
            self.number(disk, "seek_ms", "disk_model", minimum=0)
            self.number(disk, "transfer_ms_per_page", "disk_model",
                        minimum=0)

        series = self.require(report, "series", list, "report")
        if series is None:
            return
        if not series:
            self.error("report", "'series' is empty")
        for i, ser in enumerate(series):
            self.check_series(ser, f"series[{i}]")

    def check_scaling(self, report):
        self.require(report, "bench_id", str, "report")
        self.require(report, "title", str, "report")
        self.number(report, "field_cells", "report", minimum=1)
        self.number(report, "num_queries", "report", minimum=1)
        self.number(report, "workload_seed", "report", minimum=0)
        self.number(report, "qinterval", "report", minimum=0)
        self.number(report, "hardware_threads", "report", minimum=0)
        self.warn_single_threaded(report)

        series = self.require(report, "series", list, "report")
        if series is None:
            return
        if not series:
            self.error("report", "'series' is empty")
        for i, ser in enumerate(series):
            where = f"series[{i}]"
            if not isinstance(ser, dict):
                self.error(where, "not an object")
                continue
            method = self.require(ser, "method", str, where)
            if method == "":
                self.error(where, "'method' is empty")
            points = self.require(ser, "points", list, where)
            if points is None:
                continue
            if not points:
                self.error(where, "'points' is empty")
            for j, point in enumerate(points):
                pwhere = f"{where}.points[{j}]"
                if not isinstance(point, dict):
                    self.error(pwhere, "not an object")
                    continue
                self.number(point, "threads", pwhere, minimum=1)
                self.number(point, "qps", pwhere, minimum=0)
                qps = point.get("qps")
                if isinstance(qps, (int, float)) and qps <= 0:
                    self.error(pwhere, f"qps {qps} is not positive")
                self.number(point, "avg_wall_ms", pwhere, minimum=0)
                p50 = self.number(point, "p50_wall_ms", pwhere, minimum=0)
                p99 = self.number(point, "p99_wall_ms", pwhere, minimum=0)
                if p50 is not None and p99 is not None and p50 > p99:
                    self.error(pwhere,
                               f"p50_wall_ms {p50} > p99_wall_ms {p99}")
                speedup = self.number(point, "speedup_vs_1", pwhere)
                if speedup is not None and speedup <= 0:
                    self.error(pwhere,
                               f"speedup_vs_1 {speedup} is not positive")
                self.number(point, "failed", pwhere, minimum=0)

    def check_filter_kernels(self, report):
        self.require(report, "bench_id", str, "report")
        self.require(report, "title", str, "report")
        self.number(report, "field_cells", "report", minimum=1)
        self.number(report, "workload_seed", "report", minimum=0)
        level = self.require(report, "simd_level", str, "report")
        if level is not None and level not in ("scalar", "avx2"):
            self.error("report", f"unknown simd_level '{level}'")

        points = self.require(report, "points", list, "report")
        if points is None:
            return
        if not points:
            self.error("report", "'points' is empty")
        for j, point in enumerate(points):
            where = f"points[{j}]"
            if not isinstance(point, dict):
                self.error(where, "not an object")
                continue
            sel = self.number(point, "selectivity", where, minimum=0)
            if sel is not None and sel > 1:
                self.error(where, f"selectivity {sel} > 1")
            self.number(point, "band_width", where, minimum=0)
            self.number(point, "num_queries", where, minimum=1)
            self.number(point, "matched_cells_avg", where, minimum=0)
            for key in ("record_scan_ms", "zonemap_scalar_ms",
                        "zonemap_simd_ms"):
                value = self.number(point, key, where, minimum=0)
                if isinstance(value, (int, float)) and value <= 0:
                    self.error(where, f"{key} {value} is not positive")
            for key in ("speedup_scalar", "speedup_simd"):
                value = self.number(point, key, where)
                if value is not None and value <= 0:
                    self.error(where, f"{key} {value} is not positive")
            if "results_identical" not in point:
                self.error(where, "missing key 'results_identical'")
            elif not isinstance(point["results_identical"], bool):
                self.error(where, "'results_identical' is not a bool")
            elif not point["results_identical"]:
                self.error(where, "kernel outputs diverged")

    def check_planner(self, report):
        self.require(report, "bench_id", str, "report")
        self.require(report, "title", str, "report")
        if report.get("planner_sweep") is not True:
            self.error("report", "'planner_sweep' is not true")
        method = self.require(report, "method", str, "report")
        if method == "":
            self.error("report", "'method' is empty")
        self.number(report, "field_cells", "report", minimum=1)
        self.number(report, "workload_seed", "report", minimum=0)
        disk = self.require(report, "disk_model", dict, "report")
        if disk is not None:
            self.number(disk, "seek_ms", "disk_model", minimum=0)
            self.number(disk, "transfer_ms_per_page", "disk_model",
                        minimum=0)

        points = self.require(report, "points", list, "report")
        if points is None:
            return
        if not points:
            self.error("report", "'points' is empty")
        for j, point in enumerate(points):
            where = f"points[{j}]"
            if not isinstance(point, dict):
                self.error(where, "not an object")
                continue
            width = self.number(point, "width_frac", where, minimum=0)
            if width is not None and not 0 < width <= 1:
                self.error(where, f"width_frac {width} not in (0, 1]")
            self.number(point, "num_queries", where, minimum=1)
            sel = self.number(point, "selectivity_avg", where, minimum=0)
            if sel is not None and sel > 1:
                self.error(where, f"selectivity_avg {sel} > 1")
            for key in ("auto_disk_ms", "scan_disk_ms", "index_disk_ms"):
                value = self.number(point, key, where, minimum=0)
                if isinstance(value, (int, float)) and value <= 0:
                    self.error(where, f"{key} {value} is not positive")
            ratio = self.number(point, "ratio_to_best", where)
            if ratio is not None and ratio <= 0:
                self.error(where, f"ratio_to_best {ratio} is not positive")
            frac = self.number(point, "index_plan_frac", where, minimum=0)
            if frac is not None and frac > 1:
                self.error(where, f"index_plan_frac {frac} > 1")
            if "within_10pct" not in point:
                self.error(where, "missing key 'within_10pct'")
            elif not isinstance(point["within_10pct"], bool):
                self.error(where, "'within_10pct' is not a bool")
            elif not point["within_10pct"]:
                self.error(where, "adaptive planner >10% off the best plan")

    def check_recovery(self, report):
        self.require(report, "bench_id", str, "report")
        self.require(report, "title", str, "report")
        if report.get("recovery_bench") is not True:
            self.error("report", "'recovery_bench' is not true")
        method = self.require(report, "method", str, "report")
        if method == "":
            self.error("report", "'method' is empty")
        self.number(report, "field_cells", "report", minimum=1)
        self.number(report, "workload_seed", "report", minimum=0)

        overhead = self.require(report, "write_overhead", list, "report")
        if overhead is not None:
            if not overhead:
                self.error("report", "'write_overhead' is empty")
            modes = []
            for j, point in enumerate(overhead):
                where = f"write_overhead[{j}]"
                if not isinstance(point, dict):
                    self.error(where, "not an object")
                    continue
                mode = self.require(point, "wal_mode", str, where)
                if mode is not None:
                    if mode not in ("off", "async", "fsync"):
                        self.error(where, f"unknown wal_mode '{mode}'")
                    elif mode in modes:
                        self.error(where, f"duplicate wal_mode '{mode}'")
                    modes.append(mode)
                self.number(point, "updates", where, minimum=1)
                for key in ("wall_ms", "updates_per_sec",
                            "overhead_vs_off"):
                    value = self.number(point, key, where, minimum=0)
                    if isinstance(value, (int, float)) and value <= 0:
                        self.error(where, f"{key} {value} is not positive")
            if "off" not in modes:
                self.error("write_overhead",
                           "missing the wal_mode=off baseline")

        replay = self.require(report, "replay", list, "report")
        if replay is None:
            return
        if not replay:
            self.error("report", "'replay' is empty")
        for j, point in enumerate(replay):
            where = f"replay[{j}]"
            if not isinstance(point, dict):
                self.error(where, "not an object")
                continue
            frames = self.number(point, "wal_frames", where, minimum=0)
            self.number(point, "wal_bytes", where, minimum=0)
            for key in ("reopen_ms", "scan_ms", "replay_ms", "verify_ms"):
                self.number(point, key, where, minimum=0)
            fps = self.number(point, "frames_per_sec", where, minimum=0)
            if (isinstance(frames, (int, float)) and frames > 0
                    and isinstance(fps, (int, float)) and fps <= 0):
                self.error(where,
                           f"frames_per_sec {fps} with {frames} frames")
            if "frames_replayed_ok" not in point:
                self.error(where, "missing key 'frames_replayed_ok'")
            elif not isinstance(point["frames_replayed_ok"], bool):
                self.error(where, "'frames_replayed_ok' is not a bool")
            elif not point["frames_replayed_ok"]:
                self.error(where, "recovery replayed a wrong frame count")

    def check_obs_overhead(self, report):
        self.require(report, "bench_id", str, "report")
        self.require(report, "title", str, "report")
        if report.get("obs_overhead") is not True:
            self.error("report", "'obs_overhead' is not true")
        method = self.require(report, "method", str, "report")
        if method == "":
            self.error("report", "'method' is empty")
        self.number(report, "field_cells", "report", minimum=1)
        self.number(report, "num_queries", "report", minimum=1)
        self.number(report, "workload_seed", "report", minimum=0)
        self.number(report, "reps", "report", minimum=1)
        for key in ("off_cpu_ms", "on_cpu_ms"):
            value = self.number(report, key, "report", minimum=0)
            if isinstance(value, (int, float)) and value <= 0:
                self.error("report", f"{key} {value} is not positive")
        # overhead_pct may legitimately be slightly negative (timing
        # noise around 0); only finiteness is constrained.
        self.number(report, "overhead_pct", "report")
        limit = self.number(report, "overhead_limit_pct", "report",
                            minimum=0)
        self.number(report, "sampler_period_ms", "report", minimum=0)
        self.number(report, "slow_query_threshold_ms", "report", minimum=0)
        self.number(report, "trace_events", "report", minimum=1)
        self.number(report, "trace_dropped", "report", minimum=0)
        self.number(report, "event_log_appended", "report", minimum=1)
        if "within_limit" not in report:
            self.error("report", "missing key 'within_limit'")
        elif not isinstance(report["within_limit"], bool):
            self.error("report", "'within_limit' is not a bool")
        elif not report["within_limit"]:
            self.error("report",
                       f"obs overhead exceeded the {limit}% budget")
        families = self.require(report, "trace_families", dict, "report")
        if families is not None:
            for family in ("plan", "wal", "recovery", "queue-wait"):
                count = families.get(family)
                if not isinstance(count, int) or count < 1:
                    self.error("trace_families",
                               f"missing or empty family '{family}'")

    def check_ext_build(self, report):
        self.require(report, "bench_id", str, "report")
        self.require(report, "title", str, "report")
        if report.get("ext_build_bench") is not True:
            self.error("report", "'ext_build_bench' is not true")

        series = self.require(report, "series", list, "report")
        if series is None:
            return
        if not series:
            self.error("report", "'series' is empty")
        types = []
        for i, ser in enumerate(series):
            where = f"series[{i}]"
            if not isinstance(ser, dict):
                self.error(where, "not an object")
                continue
            ftype = self.require(ser, "field_type", str, where)
            if ftype is not None:
                if ftype not in ("volume", "vector", "temporal"):
                    self.error(where, f"unknown field_type '{ftype}'")
                elif ftype in types:
                    self.error(where, f"duplicate field_type '{ftype}'")
                types.append(ftype)
            self.number(ser, "num_cells", where, minimum=1)
            points = self.require(ser, "points", list, where)
            if points is None:
                continue
            if not points:
                self.error(where, "'points' is empty")
            saw_unlimited = False
            saw_budgeted = False
            for j, point in enumerate(points):
                pwhere = f"{where}.points[{j}]"
                if not isinstance(point, dict):
                    self.error(pwhere, "not an object")
                    continue
                budget = self.number(point, "budget_bytes", pwhere,
                                     minimum=0)
                if budget == 0:
                    saw_unlimited = True
                elif isinstance(budget, (int, float)) and budget > 0:
                    saw_budgeted = True
                for key in ("build_ms", "cells_per_sec"):
                    value = self.number(point, key, pwhere, minimum=0)
                    if isinstance(value, (int, float)) and value <= 0:
                        self.error(pwhere, f"{key} {value} is not positive")
                self.number(point, "spill_runs", pwhere, minimum=0)
                peak = self.number(point, "peak_buffered_bytes", pwhere,
                                   minimum=1)
                if (isinstance(budget, (int, float)) and budget > 0
                        and isinstance(peak, (int, float))
                        and peak > budget):
                    self.error(pwhere,
                               f"peak_buffered_bytes {peak} > budget "
                               f"{budget}")
                for key in ("within_budget", "matches_unlimited"):
                    if key not in point:
                        self.error(pwhere, f"missing key '{key}'")
                    elif not isinstance(point[key], bool):
                        self.error(pwhere, f"'{key}' is not a bool")
                    elif not point[key]:
                        self.error(pwhere, f"'{key}' is false")
            if not saw_unlimited:
                self.error(where, "missing the budget_bytes=0 baseline")
            if not saw_budgeted:
                self.error(where, "no budgeted (spilling) build point")

    def check_shared_scan(self, report):
        self.require(report, "bench_id", str, "report")
        self.require(report, "title", str, "report")
        if report.get("shared_scan_bench") is not True:
            self.error("report", "'shared_scan_bench' is not true")
        method = self.require(report, "method", str, "report")
        if method == "":
            self.error("report", "'method' is empty")
        self.number(report, "field_cells", "report", minimum=1)
        self.number(report, "num_queries", "report", minimum=1)
        self.number(report, "clients", "report", minimum=1)
        self.number(report, "threads", "report", minimum=1)
        self.number(report, "max_scan_group", "report", minimum=1)
        self.number(report, "workload_seed", "report", minimum=0)
        self.number(report, "hardware_threads", "report", minimum=1)
        self.warn_single_threaded(report)
        qi = self.number(report, "qinterval", "report", minimum=0)
        if qi is not None and qi > 1:
            self.error("report", f"qinterval {qi} > 1")
        backend = self.require(report, "async_backend", str, "report")
        if backend is not None and backend not in ("sync", "preadv",
                                                   "iouring"):
            self.error("report", f"unknown async_backend '{backend}'")
        for key in ("qps_isolated", "qps_shared", "speedup"):
            value = self.number(report, key, "report", minimum=0)
            if isinstance(value, (int, float)) and value <= 0:
                self.error("report", f"{key} {value} is not positive")
        for key in ("p50_wall_ms_isolated", "p99_wall_ms_isolated",
                    "p50_wall_ms_shared", "p99_wall_ms_shared"):
            self.number(report, key, "report", minimum=0)
        iso_phys = self.number(report, "physical_reads_isolated", "report",
                               minimum=0)
        sh_phys = self.number(report, "physical_reads_shared", "report",
                              minimum=0)
        if (isinstance(iso_phys, (int, float))
                and isinstance(sh_phys, (int, float))
                and sh_phys > iso_phys):
            self.error("report",
                       f"physical_reads_shared {sh_phys} > isolated "
                       f"{iso_phys}")
        iso_log = self.number(report, "logical_reads_isolated", "report",
                              minimum=0)
        sh_log = self.number(report, "logical_reads_shared", "report",
                             minimum=0)
        if (isinstance(iso_log, (int, float))
                and isinstance(sh_log, (int, float))
                and sh_log > iso_log):
            self.error("report",
                       f"logical_reads_shared {sh_log} > isolated "
                       f"{iso_log}")
        self.number(report, "shared_groups", "report", minimum=1)
        for key in ("answers_identical", "io_not_worse", "speedup_ok"):
            if key not in report:
                self.error("report", f"missing key '{key}'")
            elif not isinstance(report[key], bool):
                self.error("report", f"'{key}' is not a bool")
            elif not report[key]:
                self.error("report", f"'{key}' is false")

    def check_shard_scaling(self, report):
        self.require(report, "bench_id", str, "report")
        self.require(report, "title", str, "report")
        if report.get("shard_scaling_bench") is not True:
            self.error("report", "'shard_scaling_bench' is not true")
        method = self.require(report, "method", str, "report")
        if method == "":
            self.error("report", "'method' is empty")
        self.number(report, "field_cells", "report", minimum=1)
        self.number(report, "num_queries", "report", minimum=1)
        self.number(report, "clients", "report", minimum=1)
        self.number(report, "workload_seed", "report", minimum=0)
        qi = self.number(report, "qinterval", "report", minimum=0)
        if qi is not None and qi > 1:
            self.error("report", f"qinterval {qi} > 1")
        threads = self.number(report, "hardware_threads", "report",
                              minimum=1)
        self.warn_single_threaded(report)

        points = self.require(report, "points", list, "report")
        if points is not None:
            if not points:
                self.error("report", "'points' is empty")
            shard_counts = []
            for j, point in enumerate(points):
                where = f"points[{j}]"
                if not isinstance(point, dict):
                    self.error(where, "not an object")
                    continue
                shards = self.number(point, "shards", where, minimum=1)
                if shards is not None:
                    if shards in shard_counts:
                        self.error(where, f"duplicate shard count {shards}")
                    shard_counts.append(shards)
                qps = self.number(point, "qps", where, minimum=0)
                if isinstance(qps, (int, float)) and qps <= 0:
                    self.error(where, f"qps {qps} is not positive")
                self.number(point, "avg_wall_ms", where, minimum=0)
                p50 = self.number(point, "p50_wall_ms", where, minimum=0)
                p99 = self.number(point, "p99_wall_ms", where, minimum=0)
                if p50 is not None and p99 is not None and p50 > p99:
                    self.error(where,
                               f"p50_wall_ms {p50} > p99_wall_ms {p99}")
                speedup = self.number(point, "speedup_vs_1", where)
                if speedup is not None and speedup <= 0:
                    self.error(where,
                               f"speedup_vs_1 {speedup} is not positive")
                frac = self.number(point, "shards_skipped_frac", where,
                                   minimum=0)
                if frac is not None and frac > 1:
                    self.error(where, f"shards_skipped_frac {frac} > 1")
                self.number(point, "admission_waits", where, minimum=0)
                self.number(point, "failed", where, minimum=0)
            if 1 not in shard_counts:
                self.error("report", "missing the shards=1 baseline")

        self.number(report, "speedup_target", "report", minimum=0)
        # The >= 2.5x acceptance gate only binds on real multi-core
        # hardware; single-core captures record speedup_ok=true with
        # speedup_gated=false (and the warning above flags them).
        for key in ("speedup_ok", "speedup_gated"):
            if key not in report:
                self.error("report", f"missing key '{key}'")
            elif not isinstance(report[key], bool):
                self.error("report", f"'{key}' is not a bool")
        if report.get("speedup_ok") is False:
            self.error("report", "'speedup_ok' is false")
        if (report.get("speedup_gated") is True
                and isinstance(threads, (int, float)) and threads < 4):
            self.error("report",
                       f"speedup_gated on {threads} hardware threads")

    def check_series(self, ser, where):
        if not isinstance(ser, dict):
            self.error(where, "not an object")
            return
        method = self.require(ser, "method", str, where)
        if method == "":
            self.error(where, "'method' is empty")

        build = self.require(ser, "build", dict, where)
        if build is not None:
            for key in _BUILD_FIELDS:
                self.number(build, key, f"{where}.build", minimum=0)

        points = self.require(ser, "points", list, where)
        if points is None:
            return
        if not points:
            self.error(where, "'points' is empty")
        for j, point in enumerate(points):
            pwhere = f"{where}.points[{j}]"
            if not isinstance(point, dict):
                self.error(pwhere, "not an object")
                continue
            self.number(point, "qinterval", pwhere, minimum=0)
            self.number(point, "num_queries", pwhere, minimum=1)
            for key in _POINT_FIELDS:
                self.number(point, key, pwhere, minimum=0)
            p50 = point.get("p50_wall_ms")
            mx = point.get("max_wall_ms")
            if isinstance(p50, (int, float)) and isinstance(mx, (int, float)):
                if p50 > mx:
                    self.error(pwhere, f"p50_wall_ms {p50} > max_wall_ms {mx}")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        checker = Checker(path)
        try:
            with open(path, encoding="utf-8") as f:
                report = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"{path}: unreadable: {e}", file=sys.stderr)
            failed = True
            continue
        if not isinstance(report, dict):
            print(f"{path}: top level is not an object", file=sys.stderr)
            failed = True
            continue
        checker.check(report)
        for warning in checker.warnings:
            print(warning, file=sys.stderr)
        if checker.errors:
            failed = True
            for err in checker.errors:
                print(err, file=sys.stderr)
        else:
            print(f"{path}: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Validates Chrome trace-event JSON exported by TraceBuffer (trace v2).

Usage: check_trace_json.py FILE [FILE...] [--require-families a,b,...]

Checks that each file is the JSON-object flavor of the Chrome
trace-event format (the one ui.perfetto.dev and chrome://tracing load):
a top-level object with a "traceEvents" array of "X" (complete) and "M"
(metadata) events carrying valid name/cat/ts/dur/pid/tid fields, plus
the exporter's own schema stamp in otherData. By default it also
requires at least one complete event from each span family an
instrumented fielddb process must produce: plan, wal, recovery, and
queue (matched as category prefixes).

Exits 0 when every file is valid; prints each violation and exits 1
otherwise. Stdlib only — this runs inside CTest (bench/CMakeLists.txt
and tools/CMakeLists.txt).
"""

import json
import math
import sys

DEFAULT_FAMILIES = ["plan", "wal", "recovery", "queue"]


def check_file(path, families):
    errors = []

    def error(where, message):
        errors.append(f"{path}: {where}: {message}")

    try:
        with open(path, encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable: {e}"]

    if not isinstance(trace, dict):
        return [f"{path}: top level is not an object"]

    other = trace.get("otherData")
    if not isinstance(other, dict):
        error("otherData", "missing or not an object")
    else:
        if other.get("schema") != "fielddb-trace-v2":
            error("otherData", f"schema is {other.get('schema')!r}, "
                  "expected 'fielddb-trace-v2'")
        dropped = other.get("dropped_events")
        if not isinstance(dropped, int) or isinstance(dropped, bool) \
                or dropped < 0:
            error("otherData", "dropped_events is not a non-negative int")

    events = trace.get("traceEvents")
    if not isinstance(events, list):
        error("traceEvents", "missing or not an array")
        return errors
    if not events:
        error("traceEvents", "empty — nothing was recorded")
        return errors

    seen_families = set()
    complete_events = 0
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            error(where, "not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "M"):
            error(where, f"ph is {ph!r}, expected 'X' or 'M'")
            continue
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            error(where, "name is missing or empty")
        pid = ev.get("pid")
        if not isinstance(pid, int) or isinstance(pid, bool):
            error(where, "pid is not an int")
        tid = ev.get("tid")
        if not isinstance(tid, int) or isinstance(tid, bool):
            error(where, "tid is not an int")
        if ph == "M":
            continue

        complete_events += 1
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) \
                or not math.isfinite(ts) or ts < 0:
            error(where, f"ts {ts!r} is not a finite non-negative number")
        dur = ev.get("dur")
        if not isinstance(dur, (int, float)) or isinstance(dur, bool) \
                or not math.isfinite(dur) or dur < 0:
            error(where, f"dur {dur!r} is not a finite non-negative number")
        cat = ev.get("cat")
        if not isinstance(cat, str) or not cat:
            error(where, "cat is missing or empty")
        else:
            for family in families:
                if cat.startswith(family):
                    seen_families.add(family)

    if complete_events == 0:
        error("traceEvents", "no 'X' (complete) events")
    for family in families:
        if family not in seen_families:
            error("traceEvents",
                  f"no event from required span family '{family}'")
    return errors


def main(argv):
    families = list(DEFAULT_FAMILIES)
    paths = []
    i = 1
    while i < len(argv):
        if argv[i] == "--require-families":
            if i + 1 >= len(argv):
                print("--require-families needs a value", file=sys.stderr)
                return 2
            families = [f for f in argv[i + 1].split(",") if f]
            i += 2
        else:
            paths.append(argv[i])
            i += 1
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    failed = False
    for path in paths:
        errors = check_file(path, families)
        if errors:
            failed = True
            for err in errors:
                print(err, file=sys.stderr)
        else:
            print(f"{path}: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

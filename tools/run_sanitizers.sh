#!/usr/bin/env bash
# Builds and runs the test suite under sanitizers (separate build trees,
# so none pollutes the default build/ directory).
#
#   tools/run_sanitizers.sh [asan|ubsan|tsan|all]
#
# asan/ubsan run the full suite. tsan runs only the suites labeled
# "concurrency", "planner", "recovery", "ext", "obs", "asyncio", or
# "shard" (see tests/CMakeLists.txt): ThreadSanitizer slows
# single-threaded tests ~10x for no extra coverage, while the labeled
# suites are exactly the ones hammering the shared-reader machinery
# (sharded buffer pool, atomic metrics, concurrent value queries,
# concurrent cost-based planning), the WAL / crash-recovery paths, the
# extension engines (vector / volume / temporal persistence and
# external-sort builds), the lock-free trace-v2 ring buffers, the async
# batch-I/O / shared-scan path (vectored prefetch installs, executor
# grouping), and the shard router's scatter/gather across per-shard
# executor lanes.
set -euo pipefail

cd "$(dirname "$0")/.."
mode="${1:-all}"

run_one() {
  local name="$1" flags="$2" ctest_args="${3:-}"
  local dir="build-${name}"
  echo "=== ${name}: configuring (${flags}) ==="
  cmake -B "${dir}" -S . \
    -DFIELDDB_SANITIZE="${flags}" \
    -DFIELDDB_BUILD_BENCHMARKS=OFF \
    -DFIELDDB_BUILD_EXAMPLES=OFF \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "${dir}" -j >/dev/null
  echo "=== ${name}: running tests ==="
  # shellcheck disable=SC2086  # ctest_args is intentionally word-split
  (cd "${dir}" && ctest ${ctest_args} --output-on-failure -j)
}

case "${mode}" in
  asan)  run_one asan address ;;
  ubsan) run_one ubsan undefined ;;
  tsan)  run_one tsan thread \
           "-L concurrency|planner|recovery|ext|obs|asyncio|shard" ;;
  all)   run_one asan address && run_one ubsan undefined \
           && run_one tsan thread \
                "-L concurrency|planner|recovery|ext|obs|asyncio|shard" ;;
  *)     echo "usage: $0 [asan|ubsan|tsan|all]" >&2; exit 2 ;;
esac
echo "sanitizer runs passed"

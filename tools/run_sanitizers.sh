#!/usr/bin/env bash
# Builds and runs the test suite under ASan and UBSan (separate build
# trees, so neither pollutes the default build/ directory).
#
#   tools/run_sanitizers.sh [asan|ubsan|all]
set -euo pipefail

cd "$(dirname "$0")/.."
mode="${1:-all}"

run_one() {
  local name="$1" flags="$2"
  local dir="build-${name}"
  echo "=== ${name}: configuring (${flags}) ==="
  cmake -B "${dir}" -S . \
    -DFIELDDB_SANITIZE="${flags}" \
    -DFIELDDB_BUILD_BENCHMARKS=OFF \
    -DFIELDDB_BUILD_EXAMPLES=OFF \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "${dir}" -j >/dev/null
  echo "=== ${name}: running tests ==="
  (cd "${dir}" && ctest --output-on-failure -j)
}

case "${mode}" in
  asan)  run_one asan address ;;
  ubsan) run_one ubsan undefined ;;
  all)   run_one asan address && run_one ubsan undefined ;;
  *)     echo "usage: $0 [asan|ubsan|all]" >&2; exit 2 ;;
esac
echo "sanitizer runs passed"

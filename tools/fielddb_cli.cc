// fielddb command-line tool: generate field databases, persist them, and
// query them from the shell.
//
//   fielddb_cli gen     --out PREFIX [--type fractal|monotonic|noise-tin]
//                       [--size-exp N] [--h H] [--seed S]
//                       [--method i-hilbert|i-all|linear-scan|i-quadtree]
//   fielddb_cli info    --db PREFIX
//   fielddb_cli query   --db PREFIX --min W --max W [--svg FILE]
//   fielddb_cli explain --db PREFIX --min W --max W [--format text|json]
//   fielddb_cli plan    --db PREFIX --min W --max W
//                       [--mode auto|scan|index]
//                       (prints the planner's decision and predicted
//                       disk-model cost, then executes the query and
//                       reports the observed cost next to it)
//   fielddb_cli isoline --db PREFIX --level W
//   fielddb_cli point   --db PREFIX --x X --y Y
//   fielddb_cli bench   --db PREFIX [--qinterval F] [--queries N]
//                       [--json FILE] [--threads N]
//                       (--threads > 1 runs the workload through a
//                       QueryExecutor thread pool, warm cache, and
//                       reports throughput instead of per-figure stats)
//   fielddb_cli stats   --db PREFIX [--qinterval F] [--queries N]
//                       [--threads N] [--format group|prom|json]
//                       [--watch SEC] [--count N]
//                       (default output groups instruments by subsystem
//                       — storage.wal.*, storage.pool.*, db.*,
//                       executor.* including shared_scan_groups — one
//                       block each, followed by an [slo] block with
//                       each query class's error budget remaining and
//                       burn rate; --watch re-runs the workload and
//                       reprints every SEC seconds, --count bounds the
//                       refreshes)
//   fielddb_cli serve   [--db PREFIX] [--shards N] [--clients N]
//                       [--seconds S] [--interval SEC] [--qinterval F]
//                       [--queries N] [--pool-pages N]
//                       (long-running loop against the sharded router:
//                       N concurrent clients replay the workload while
//                       rolling QPS, latency tails, admission waits and
//                       per-class SLO budget print every SEC seconds;
//                       --db opens a router saved under PREFIX, without
//                       it a fractal terrain is built in memory,
//                       sharded --shards ways, default one per core)
//   fielddb_cli trace   --db PREFIX [--out FILE] [--qinterval F]
//                       [--queries N] [--threads N]
//                       (records the trace-v2 ring buffers across open +
//                       recovery + a QueryExecutor workload and writes
//                       Chrome trace-event JSON for ui.perfetto.dev)
//   fielddb_cli top     --db PREFIX [--rounds N] [--queries N]
//                       [--top N]
//                       (drives the metrics sampler over a workload and
//                       prints the hottest instruments by rate)
//   fielddb_cli events  --db PREFIX [--log FILE] [--threshold MS]
//                       [--limit N]
//                       (opens the database with the structured event
//                       log attached, runs a workload, and dumps the
//                       JSONL records — threshold 0 logs every query)
//   fielddb_cli scrub   --db PREFIX
//   fielddb_cli wal     --db PREFIX [--limit N]
//                       (decodes PREFIX.wal read-only: stats, torn-tail
//                       report, and up to N frames — lsn, epoch, type,
//                       cell, value count, byte offset)
//   fielddb_cli recover --db PREFIX [--dry-run]
//                       [--mode off|async|fsync]
//                       (--dry-run scans the log without touching any
//                       file and reports what a replay would do;
//                       otherwise opens the database, replaying the log
//                       per --mode — "off" folds it into a fresh
//                       checkpoint — and prints the recovery report)
//   fielddb_cli ext     --type volume|vector|temporal [--n N]
//                       [--budget BYTES] [--mode auto|scan|index]
//                       [--min W --max W] [--t T] [--out PREFIX]
//                       (builds a synthetic extension field — 3-D
//                       volume, 2-D vector, or temporal — optionally
//                       under a build memory budget (external-sort
//                       spill telemetry is printed), optionally
//                       Save/Open round-trips it through --out, then
//                       runs one band query and prints the physical
//                       plan the extension planner chose)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/field_database.h"
#include "core/query_executor.h"
#include "core/shard_router.h"
#include "temporal/temporal_index.h"
#include "vector/vector_index.h"
#include "volume/volume_index.h"
#include "gen/fractal.h"
#include "gen/monotonic.h"
#include "gen/noise_tin.h"
#include "gen/workload.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/sampler.h"
#include "obs/slo.h"
#include "obs/trace_buffer.h"
#include "storage/wal.h"

namespace {

using namespace fielddb;

// Minimal --key value argument parsing. A "--key" followed by another
// option (or by nothing) is a boolean flag: Has("key") is true, the
// value empty.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) != 0) continue;
      const char* key = argv[i] + 2;
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[key] = argv[i + 1];
        ++i;
      } else {
        values_[key] = "";
      }
    }
  }

  std::string Get(const std::string& key, const std::string& def) const {
    const auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }
  double GetDouble(const std::string& key, double def) const {
    const auto it = values_.find(key);
    return it == values_.end() ? def : std::atof(it->second.c_str());
  }
  long GetLong(const std::string& key, long def) const {
    const auto it = values_.find(key);
    return it == values_.end() ? def : std::atol(it->second.c_str());
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

StatusOr<IndexMethod> ParseMethod(const std::string& name) {
  if (name == "i-hilbert") return IndexMethod::kIHilbert;
  if (name == "i-all") return IndexMethod::kIAll;
  if (name == "linear-scan") return IndexMethod::kLinearScan;
  if (name == "i-quadtree") return IndexMethod::kIntervalQuadtree;
  return Status::InvalidArgument("unknown method: " + name);
}

int CmdGen(const Args& args) {
  const std::string out = args.Get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "gen requires --out PREFIX\n");
    return 2;
  }
  StatusOr<IndexMethod> method =
      ParseMethod(args.Get("method", "i-hilbert"));
  if (!method.ok()) return Fail(method.status());

  FieldDatabaseOptions options;
  options.method = *method;

  const std::string type = args.Get("type", "fractal");
  std::unique_ptr<FieldDatabase> db;
  if (type == "fractal" || type == "monotonic") {
    StatusOr<GridField> field = [&]() -> StatusOr<GridField> {
      if (type == "monotonic") {
        const uint32_t n = uint32_t{1}
                           << args.GetLong("size-exp", 8);
        return MakeMonotonicField(n, n);
      }
      FractalOptions fo;
      fo.size_exp = static_cast<int>(args.GetLong("size-exp", 8));
      fo.roughness_h = args.GetDouble("h", 0.7);
      fo.seed = static_cast<uint64_t>(args.GetLong("seed", 42));
      return MakeFractalField(fo);
    }();
    if (!field.ok()) return Fail(field.status());
    auto built = FieldDatabase::Build(*field, options);
    if (!built.ok()) return Fail(built.status());
    db = std::move(built).value();
  } else if (type == "noise-tin") {
    NoiseTinOptions no;
    no.seed = static_cast<uint64_t>(args.GetLong("seed", 69));
    StatusOr<TinField> field = MakeUrbanNoiseTin(no);
    if (!field.ok()) return Fail(field.status());
    auto built = FieldDatabase::Build(*field, options);
    if (!built.ok()) return Fail(built.status());
    db = std::move(built).value();
  } else {
    std::fprintf(stderr, "unknown --type %s\n", type.c_str());
    return 2;
  }

  const Status s = db->Save(out);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %s.pages / %s.meta (%llu cells, %s, %llu subfields)\n",
              out.c_str(), out.c_str(),
              static_cast<unsigned long long>(db->build_info().num_cells),
              IndexMethodName(db->method()),
              static_cast<unsigned long long>(
                  db->build_info().num_subfields));
  return 0;
}

int CmdInfo(const Args& args) {
  auto db = FieldDatabase::Open(args.Get("db", ""));
  if (!db.ok()) return Fail(db.status());
  const IndexBuildInfo& info = (*db)->build_info();
  std::printf("method:       %s\n", IndexMethodName((*db)->method()));
  std::printf("cells:        %llu\n",
              static_cast<unsigned long long>(info.num_cells));
  std::printf("index entries:%llu\n",
              static_cast<unsigned long long>(info.num_index_entries));
  std::printf("subfields:    %llu\n",
              static_cast<unsigned long long>(info.num_subfields));
  std::printf("tree height:  %u\n", info.tree_height);
  std::printf("store pages:  %llu\n",
              static_cast<unsigned long long>(info.store_pages));
  std::printf("value range:  %s\n",
              (*db)->value_range().ToString().c_str());
  const Rect2& d = (*db)->domain();
  std::printf("domain:       [%g, %g] x [%g, %g]\n", d.lo.x, d.hi.x,
              d.lo.y, d.hi.y);
  return 0;
}

int CmdQuery(const Args& args) {
  auto db = FieldDatabase::Open(args.Get("db", ""));
  if (!db.ok()) return Fail(db.status());
  const ValueInterval band{args.GetDouble("min", 0),
                           args.GetDouble("max", 0)};
  ValueQueryResult result;
  const Status s = (*db)->ValueQuery(band, &result);
  if (!s.ok()) return Fail(s);
  std::printf(
      "band %s: %zu pieces, area %.6f, %llu candidates, %llu answer "
      "cells, %llu pages, %.3f ms\n",
      band.ToString().c_str(), result.region.NumPieces(),
      result.region.TotalArea(),
      static_cast<unsigned long long>(result.stats.candidate_cells),
      static_cast<unsigned long long>(result.stats.answer_cells),
      static_cast<unsigned long long>(result.stats.io.logical_reads),
      result.stats.wall_seconds * 1000.0);
  if (args.Has("svg")) {
    const std::string path = args.Get("svg", "query.svg");
    if (!WriteSvg(path.c_str(), (*db)->domain(),
                  {SvgLayer{result.region.pieces}})) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

int CmdIsoline(const Args& args) {
  auto db = FieldDatabase::Open(args.Get("db", ""));
  if (!db.ok()) return Fail(db.status());
  IsolineQueryResult result;
  const Status s =
      (*db)->IsolineQuery(args.GetDouble("level", 0), &result);
  if (!s.ok()) return Fail(s);
  std::printf("isoline: %zu polylines, total length %.6f, %llu cells\n",
              result.isoline.polylines.size(),
              result.isoline.TotalLength(),
              static_cast<unsigned long long>(result.stats.answer_cells));
  return 0;
}

int CmdPoint(const Args& args) {
  auto db = FieldDatabase::Open(args.Get("db", ""));
  if (!db.ok()) return Fail(db.status());
  StatusOr<double> w = (*db)->PointQuery(
      {args.GetDouble("x", 0), args.GetDouble("y", 0)});
  if (!w.ok()) return Fail(w.status());
  std::printf("%.10g\n", *w);
  return 0;
}

int CmdExplain(const Args& args) {
  auto db = FieldDatabase::Open(args.Get("db", ""));
  if (!db.ok()) return Fail(db.status());
  const ValueInterval band{args.GetDouble("min", 0),
                           args.GetDouble("max", 0)};
  FieldDatabase::ExplainResult result;
  const Status s = (*db)->ExplainValueQuery(band, &result);
  if (!s.ok()) return Fail(s);
  if (args.Get("format", "text") == "json") {
    std::printf("%s\n", result.ToJson().c_str());
  } else {
    std::printf("%s", result.ToString().c_str());
  }
  return 0;
}

int CmdPlan(const Args& args) {
  auto db = FieldDatabase::Open(args.Get("db", ""));
  if (!db.ok()) return Fail(db.status());
  const std::string mode_name = args.Get("mode", "auto");
  PlannerMode mode = PlannerMode::kAuto;
  if (mode_name == "scan") {
    mode = PlannerMode::kForceScan;
  } else if (mode_name == "index") {
    mode = PlannerMode::kForceIndex;
  } else if (mode_name != "auto") {
    std::fprintf(stderr, "unknown --mode %s (auto|scan|index)\n",
                 mode_name.c_str());
    return 2;
  }
  (*db)->set_planner_mode(mode);
  const ValueInterval band{args.GetDouble("min", 0),
                           args.GetDouble("max", 0)};

  const PhysicalPlan plan = (*db)->PlanValueQuery(band);
  std::printf("PLAN %s (mode %s) on %s\n", band.ToString().c_str(),
              PlannerModeName(mode), IndexMethodName((*db)->method()));
  std::printf("  chosen:     %s\n", PlanKindName(plan.kind));
  std::printf("  reason:     %s\n", plan.reason.c_str());
  std::printf(
      "  predicted:  %.2f ms (fused_scan %.2f ms, indexed_filter %.2f ms)\n",
      plan.predicted_cost_ms, plan.scan_cost_ms, plan.index_cost_ms);
  std::printf("  candidates: %llu (%.2f%% selectivity, %llu runs)\n",
              static_cast<unsigned long long>(plan.predicted_candidates),
              plan.selectivity * 100.0,
              static_cast<unsigned long long>(plan.predicted_runs));

  // Now run the same query cold and put the observed cost next to the
  // prediction (the pool is warm after Open's store scan; the predicted
  // pattern models cold reads, so clear it for a comparable number).
  const Status cs = (*db)->pool().Clear();
  if (!cs.ok()) return Fail(cs);
  QueryStats qs;
  const Status s = (*db)->ValueQueryStats(band, &qs);
  if (!s.ok()) return Fail(s);
  const DiskModel disk = (*db)->planner().cost_model().disk();
  std::printf(
      "  observed:   %.2f ms (%llu sequential + %llu random reads, "
      "%llu candidates)\n",
      disk.EstimateMs(qs.io.sequential_reads, qs.io.random_reads()),
      static_cast<unsigned long long>(qs.io.sequential_reads),
      static_cast<unsigned long long>(qs.io.random_reads()),
      static_cast<unsigned long long>(qs.candidate_cells));
  return 0;
}

int CmdBench(const Args& args) {
  auto db = FieldDatabase::Open(args.Get("db", ""));
  if (!db.ok()) return Fail(db.status());
  WorkloadOptions wo;
  wo.qinterval_fraction = args.GetDouble("qinterval", 0.02);
  wo.num_queries = static_cast<uint32_t>(args.GetLong("queries", 200));
  wo.seed = static_cast<uint64_t>(args.GetLong("seed", 2002));
  const std::vector<ValueInterval> queries =
      GenerateValueQueries((*db)->value_range(), wo);

  if (const long threads = args.GetLong("threads", 1); threads > 1) {
    // Concurrent mode: warm-cache throughput across a fixed thread
    // pool. Cold cache makes no sense here — concurrent queries would
    // clear each other's pages mid-flight.
    QueryExecutor::Options eo;
    eo.threads = static_cast<size_t>(threads);
    QueryExecutor executor(db->get(), eo);
    QueryExecutor::BatchResult warmup;  // populate the pool once
    const Status sw = executor.RunBatch(queries, &warmup);
    if (!sw.ok()) return Fail(sw);
    QueryExecutor::BatchResult batch;
    const Status sb = executor.RunBatch(queries, &batch);
    if (!sb.ok()) return Fail(sb);
    std::printf(
        "threads=%zu queries=%zu wall=%.3fs qps=%.1f "
        "p50=%.3fms p90=%.3fms p99=%.3fms failed=%llu\n",
        executor.threads(), queries.size(), batch.wall_seconds, batch.qps,
        batch.p50_wall_ms, batch.p90_wall_ms, batch.p99_wall_ms,
        static_cast<unsigned long long>(batch.failed));
    std::printf(
        "total io: logical=%llu physical=%llu\n",
        static_cast<unsigned long long>(batch.total.io.logical_reads),
        static_cast<unsigned long long>(batch.total.io.physical_reads));
    return 0;
  }

  auto ws = (*db)->RunWorkload(queries);
  if (!ws.ok()) return Fail(ws.status());

  // Same reporting path as the figure benches: a one-series, one-point
  // BenchReport renders both the stdout tables and (with --json) the
  // telemetry file check_bench_json.py validates.
  BenchReport report;
  report.bench_id = "cli";
  report.title = "fielddb_cli bench " + args.Get("db", "");
  report.field_cells = (*db)->build_info().num_cells;
  report.value_min = (*db)->value_range().min;
  report.value_max = (*db)->value_range().max;
  report.num_queries = wo.num_queries;
  report.workload_seed = wo.seed;
  BenchSeries series;
  series.method = IndexMethodName((*db)->method());
  series.build = (*db)->build_info();
  series.points.push_back(BenchPoint{wo.qinterval_fraction, *ws});
  report.series.push_back(std::move(series));
  PrintBenchReport(report);
  std::printf("%s\n", ws->ToString().c_str());
  if (args.Has("json")) {
    const std::string path = args.Get("json", "BENCH_cli.json");
    const Status w = report.WriteJson(path);
    if (!w.ok()) return Fail(w);
    std::printf("telemetry: %s\n", path.c_str());
  }
  return 0;
}

int CmdStats(const Args& args) {
  auto db = FieldDatabase::Open(args.Get("db", ""));
  if (!db.ok()) return Fail(db.status());
  // Drive a short workload with recording on so the snapshot holds live
  // data for this database (pool latency percentiles need physical
  // reads to sample). The workload runs through a QueryExecutor with
  // shared-scan scheduling and SLO tracking on — that is the serving
  // configuration, and it is what puts executor.shared_scan_groups and
  // the slo.* histograms into the grouped output.
  MetricsRegistry::set_enabled(true);
  WorkloadOptions wo;
  wo.qinterval_fraction = args.GetDouble("qinterval", 0.02);
  wo.num_queries = static_cast<uint32_t>(args.GetLong("queries", 50));
  wo.seed = static_cast<uint64_t>(args.GetLong("seed", 2002));
  const std::vector<ValueInterval> queries =
      GenerateValueQueries((*db)->value_range(), wo);
  const std::string format = args.Get("format", "group");
  const double watch_sec = args.GetDouble("watch", 0.0);
  const long count = args.GetLong("count", watch_sec > 0 ? -1 : 1);

  SloTracker slo(SloTracker::DefaultQueryClasses());
  QueryExecutor::Options eo;
  eo.threads = static_cast<size_t>(args.GetLong("threads", 2));
  eo.shared_scan = true;
  eo.slo = &slo;
  QueryExecutor executor(db->get(), eo);

  for (long i = 0; count < 0 || i < count; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(watch_sec));
    }
    QueryExecutor::BatchResult batch;
    const Status s = executor.RunBatch(queries, &batch);
    if (!s.ok()) return Fail(s);
    if (format == "json") {
      std::printf("%s\n", MetricsRegistry::Default().ToJson().c_str());
      std::printf("%s\n", slo.ToJson().c_str());
    } else if (format == "prom") {
      std::printf("%s",
                  MetricsRegistry::Default().ToPrometheusText().c_str());
    } else {
      std::printf("%s",
                  MetricsRegistry::Default().ToGroupedText().c_str());
      // The numbers an operator pages on, next to the raw instruments:
      // per-class error budget remaining (1 = untouched, 0 = spent,
      // negative = SLO blown) and the burn rate since the last refresh.
      std::printf("[slo]\n");
      for (const SloTracker::ClassSnapshot& c : slo.Snapshot()) {
        std::printf(
            "  %-28s %.1f%% budget remaining  (%llu/%llu in %gms @ "
            "p%g, burn %.2f)\n",
            c.query_class.c_str(), c.error_budget_remaining * 100.0,
            static_cast<unsigned long long>(c.total - c.violations),
            static_cast<unsigned long long>(c.total), c.target_ms,
            c.target_fraction * 100.0, c.burn_rate);
      }
    }
    if (watch_sec > 0) {
      std::printf("--- refresh %ld (every %.3gs, ctrl-c to stop) ---\n",
                  i + 1, watch_sec);
      std::fflush(stdout);
    } else if (count == 1) {
      break;  // plain one-shot stats
    }
  }
  return 0;
}

// Long-running serving loop against the shard-per-core router
// (DESIGN.md §18): N concurrent clients replay a value workload in a
// loop while the main thread prints rolling QPS / latency tails /
// per-class SLO budget every --interval seconds. With --db it opens a
// router previously persisted by ShardRouter::Save; without it the
// loop builds an in-memory router over a fresh fractal terrain, which
// is what makes "qps at 64 concurrent clients" benchable on a bare
// checkout.
int CmdServe(const Args& args) {
  MetricsRegistry::set_enabled(true);
  const uint32_t shards = static_cast<uint32_t>(std::max(
      1L, args.GetLong("shards",
                       std::max(1u, std::thread::hardware_concurrency()))));
  StatusOr<std::unique_ptr<ShardRouter>> router = [&] {
    if (args.Has("db")) {
      ShardRouter::OpenOptions oo;
      oo.pool_pages = static_cast<size_t>(args.GetLong("pool-pages", 4096));
      return ShardRouter::Open(args.Get("db", ""), oo);
    }
    StatusOr<GridField> terrain = MakeRoseburgLikeTerrain(
        static_cast<uint64_t>(args.GetLong("seed", 1972)));
    if (!terrain.ok()) {
      return StatusOr<std::unique_ptr<ShardRouter>>(terrain.status());
    }
    ShardRouterOptions ro;
    ro.shards = shards;
    ro.db.pool_pages = static_cast<size_t>(args.GetLong("pool-pages", 16384));
    return ShardRouter::Build(*terrain, ro);
  }();
  if (!router.ok()) return Fail(router.status());
  std::printf("serving %llu cells across %zu shard(s)\n",
              static_cast<unsigned long long>((*router)->num_cells()),
              (*router)->num_shards());

  WorkloadOptions wo;
  wo.qinterval_fraction = args.GetDouble("qinterval", 0.02);
  wo.num_queries = static_cast<uint32_t>(args.GetLong("queries", 512));
  wo.seed = static_cast<uint64_t>(args.GetLong("seed", 2002));
  const std::vector<ValueInterval> queries =
      GenerateValueQueries((*router)->value_range(), wo);

  const size_t clients = static_cast<size_t>(
      std::max(1L, args.GetLong("clients", 64)));
  const double seconds = args.GetDouble("seconds", 10.0);
  const double interval = std::max(0.1, args.GetDouble("interval", 2.0));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> failed{0};
  // The clients append window latencies under one mutex; the reporter
  // swaps the vector out each tick. Contention is irrelevant at CLI
  // query rates and keeps the rolling percentiles exact.
  std::mutex window_mu;
  std::vector<double> window_ms;

  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      size_t i = c;  // stagger the replay so clients do not convoy
      while (!stop.load(std::memory_order_relaxed)) {
        const ValueInterval& q = queries[i++ % queries.size()];
        QueryStats stats;
        const auto t0 = std::chrono::steady_clock::now();
        const Status s = (*router)->ValueQueryStats(q, &stats);
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        if (!s.ok()) {
          failed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        completed.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(window_mu);
        window_ms.push_back(ms);
      }
    });
  }

  Counter* waits =
      MetricsRegistry::Default().GetCounter("router.admission_waits");
  const auto serve_start = std::chrono::steady_clock::now();
  uint64_t last_completed = 0;
  uint64_t last_waits = waits->value();
  for (;;) {
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - serve_start)
                               .count();
    std::vector<double> window;
    {
      std::lock_guard<std::mutex> lock(window_mu);
      window.swap(window_ms);
    }
    std::sort(window.begin(), window.end());
    const auto pct = [&window](double p) {
      if (window.empty()) return 0.0;
      const size_t idx = static_cast<size_t>(
          p * static_cast<double>(window.size() - 1) + 0.5);
      return window[std::min(idx, window.size() - 1)];
    };
    const uint64_t done = completed.load();
    const uint64_t now_waits = waits->value();
    std::printf("[%7.1fs] qps=%9.1f p50=%8.3fms p99=%8.3fms "
                "inflight_waits=%llu failed=%llu\n",
                elapsed, static_cast<double>(done - last_completed) / interval,
                pct(0.50), pct(0.99),
                static_cast<unsigned long long>(now_waits - last_waits),
                static_cast<unsigned long long>(failed.load()));
    for (const SloTracker::ClassSnapshot& c : (*router)->slo().Snapshot()) {
      std::printf("          slo %-10s %6.1f%% budget  burn %.2f  "
                  "p99 %.3fms\n",
                  c.query_class.c_str(), c.error_budget_remaining * 100.0,
                  c.burn_rate, c.p99_ms);
    }
    std::fflush(stdout);
    last_completed = done;
    last_waits = now_waits;
    if (seconds > 0 && elapsed >= seconds) break;
  }
  stop.store(true);
  for (std::thread& t : pool) t.join();
  const Status close = (*router)->Close();
  if (!close.ok()) return Fail(close);
  return failed.load() == 0 ? 0 : 1;
}

int CmdTrace(const Args& args) {
  // Recording has to be live before Open so the recovery and wal.scan
  // spans of the attach itself land in the trace.
  MetricsRegistry::set_enabled(true);
  TraceBuffer::set_enabled(true);
  auto db = FieldDatabase::Open(args.Get("db", ""));
  if (!db.ok()) return Fail(db.status());

  WorkloadOptions wo;
  wo.qinterval_fraction = args.GetDouble("qinterval", 0.02);
  wo.num_queries = static_cast<uint32_t>(args.GetLong("queries", 100));
  wo.seed = static_cast<uint64_t>(args.GetLong("seed", 2002));
  const std::vector<ValueInterval> queries =
      GenerateValueQueries((*db)->value_range(), wo);

  // Through the executor, not RunWorkload: the queue-wait spans only
  // exist where a queue does.
  QueryExecutor::Options eo;
  eo.threads = static_cast<size_t>(args.GetLong("threads", 4));
  QueryExecutor executor(db->get(), eo);
  QueryExecutor::BatchResult batch;
  const Status s = executor.RunBatch(queries, &batch);
  if (!s.ok()) return Fail(s);

  TraceBuffer& tb = TraceBuffer::Global();
  const std::string out = args.Get("out", "TRACE_cli.json");
  const Status w = tb.WriteChromeTrace(out);
  if (!w.ok()) return Fail(w);

  std::map<std::string, uint64_t> by_category;
  for (const TraceEvent& e : tb.Snapshot()) ++by_category[e.category];
  std::printf("trace: %s (%llu events, %llu dropped)\n", out.c_str(),
              static_cast<unsigned long long>(tb.total_recorded()),
              static_cast<unsigned long long>(tb.total_dropped()));
  for (const auto& [category, n] : by_category) {
    std::printf("  %-12s %llu\n", category.c_str(),
                static_cast<unsigned long long>(n));
  }
  std::printf("load it at ui.perfetto.dev or chrome://tracing\n");
  return 0;
}

int CmdTop(const Args& args) {
  auto db = FieldDatabase::Open(args.Get("db", ""));
  if (!db.ok()) return Fail(db.status());
  MetricsRegistry::set_enabled(true);
  WorkloadOptions wo;
  wo.qinterval_fraction = args.GetDouble("qinterval", 0.02);
  wo.num_queries = static_cast<uint32_t>(args.GetLong("queries", 50));
  wo.seed = static_cast<uint64_t>(args.GetLong("seed", 2002));
  const std::vector<ValueInterval> queries =
      GenerateValueQueries((*db)->value_range(), wo);

  // The CLI drives the cadence itself (one tick per workload round)
  // instead of racing a background thread against a finite workload.
  MetricsSampler sampler(&MetricsRegistry::Default());
  sampler.SampleOnce();  // baseline so round rates are true deltas
  const long rounds = std::max(1L, args.GetLong("rounds", 3));
  for (long i = 0; i < rounds; ++i) {
    auto ws = (*db)->RunWorkload(queries);
    if (!ws.ok()) return Fail(ws.status());
    sampler.SampleOnce();
  }

  std::vector<MetricsSampler::LatestRate> latest = sampler.Latest();
  std::sort(latest.begin(), latest.end(),
            [](const MetricsSampler::LatestRate& a,
               const MetricsSampler::LatestRate& b) {
              return std::fabs(a.rate_per_sec) > std::fabs(b.rate_per_sec);
            });
  const size_t top = static_cast<size_t>(args.GetLong("top", 15));
  std::printf("%-36s %-8s %16s %16s\n", "instrument", "kind", "value",
              "rate/s");
  for (size_t i = 0; i < latest.size() && i < top; ++i) {
    const MetricsSampler::LatestRate& r = latest[i];
    std::printf("%-36s %-8s %16.6g %16.6g\n", r.name.c_str(),
                r.kind == MetricsRegistry::InstrumentKind::kCounter
                    ? "counter"
                    : "gauge",
                r.value, r.rate_per_sec);
  }
  if (args.Has("json")) {
    const std::string path = args.Get("json", "SAMPLER_cli.json");
    const Status w = sampler.WriteJson(path);
    if (!w.ok()) return Fail(w);
    std::printf("sampler series: %s\n", path.c_str());
  }
  return 0;
}

int CmdEvents(const Args& args) {
  const std::string prefix = args.Get("db", "");
  if (prefix.empty()) {
    std::fprintf(stderr, "events requires --db PREFIX\n");
    return 2;
  }
  const std::string log_path = args.Get("log", prefix + ".events.jsonl");
  FieldDatabase::OpenOptions options;
  options.event_log_path = log_path;
  options.slow_query_threshold_ms = args.GetDouble("threshold", 0.0);
  auto db = FieldDatabase::Open(prefix, options);
  if (!db.ok()) return Fail(db.status());

  WorkloadOptions wo;
  wo.qinterval_fraction = args.GetDouble("qinterval", 0.02);
  wo.num_queries = static_cast<uint32_t>(args.GetLong("queries", 20));
  wo.seed = static_cast<uint64_t>(args.GetLong("seed", 2002));
  auto ws = (*db)->RunWorkload(
      GenerateValueQueries((*db)->value_range(), wo));
  if (!ws.ok()) return Fail(ws.status());
  if ((*db)->event_log() != nullptr) {
    const Status sync = (*db)->event_log()->Sync();
    if (!sync.ok()) return Fail(sync);
  }

  std::FILE* f = std::fopen(log_path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot read %s\n", log_path.c_str());
    return 1;
  }
  const long limit = args.GetLong("limit", -1);
  long printed = 0;
  char line[4096];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (limit >= 0 && printed >= limit) break;
    std::fputs(line, stdout);
    ++printed;
  }
  std::fclose(f);
  std::fprintf(stderr, "%ld events from %s\n", printed, log_path.c_str());
  return 0;
}

int CmdScrub(const Args& args) {
  auto db = FieldDatabase::Open(args.Get("db", ""));
  if (!db.ok()) return Fail(db.status());
  FieldDatabase::ScrubReport report;
  const Status s = (*db)->Scrub(&report);
  if (!s.ok()) return Fail(s);
  std::printf("scrub: %llu pages checked, %zu corrupt\n",
              static_cast<unsigned long long>(report.pages_checked),
              report.corrupt_pages.size());
  for (const PageId id : report.corrupt_pages) {
    std::printf("corrupt page %llu\n", static_cast<unsigned long long>(id));
  }
  return report.clean() ? 0 : 1;
}

int CmdWal(const Args& args) {
  const std::string db = args.Get("db", "");
  if (db.empty()) {
    std::fprintf(stderr, "wal requires --db PREFIX\n");
    return 2;
  }
  const std::string path = db + ".wal";
  StatusOr<WalScanResult> scan = WriteAheadLog::Scan(path);
  if (!scan.ok()) return Fail(scan.status());

  std::printf("log:            %s\n", path.c_str());
  std::printf("file bytes:     %llu\n",
              static_cast<unsigned long long>(scan->file_bytes));
  std::printf("valid bytes:    %llu\n",
              static_cast<unsigned long long>(scan->valid_bytes));
  std::printf("frames:         %zu\n", scan->frames.size());
  if (scan->torn_bytes() > 0) {
    std::printf("torn tail:      %llu bytes (%s)\n",
                static_cast<unsigned long long>(scan->torn_bytes()),
                scan->torn_reason.c_str());
  } else {
    std::printf("torn tail:      none\n");
  }

  // Split frames by epoch against the snapshot, when one is readable
  // (the log may outlive its database, so a missing catalog is not an
  // error for a dump tool).
  StatusOr<uint32_t> epoch = FieldDatabase::PeekEpoch(db);
  uint64_t replayable = 0, stale = 0;
  if (epoch.ok()) {
    for (const WalFrame& f : scan->frames) {
      (f.epoch == *epoch ? replayable : stale) += 1;
    }
    std::printf("snapshot epoch: %u (%llu replayable, %llu stale)\n",
                *epoch, static_cast<unsigned long long>(replayable),
                static_cast<unsigned long long>(stale));
  } else {
    std::printf("snapshot epoch: unreadable (%s)\n",
                epoch.status().ToString().c_str());
  }

  const long limit = args.GetLong("limit", -1);
  long printed = 0;
  for (const WalFrame& f : scan->frames) {
    if (limit >= 0 && printed++ >= limit) {
      std::printf("... %zu more frames (raise --limit)\n",
                  scan->frames.size() - static_cast<size_t>(limit));
      break;
    }
    std::printf(
        "frame lsn=%llu epoch=%u type=%s cell=%llu values=%zu "
        "offset=%llu%s\n",
        static_cast<unsigned long long>(f.lsn), f.epoch,
        f.type == WriteAheadLog::kUpdateValuesFrame ? "update" : "?",
        static_cast<unsigned long long>(f.cell_id), f.values.size(),
        static_cast<unsigned long long>(f.offset),
        epoch.ok() && f.epoch != *epoch ? " [stale]" : "");
  }
  return 0;
}

int CmdRecover(const Args& args) {
  const std::string db = args.Get("db", "");
  if (db.empty()) {
    std::fprintf(stderr, "recover requires --db PREFIX\n");
    return 2;
  }
  WalMode mode = WalMode::kFsyncOnCommit;
  if (!ParseWalMode(args.Get("mode", "fsync"), &mode)) {
    std::fprintf(stderr, "unknown --mode %s (off|async|fsync)\n",
                 args.Get("mode", "").c_str());
    return 2;
  }

  if (args.Has("dry-run")) {
    // Read-only: scan the log and the catalog epoch; report what a
    // real recovery would replay, skip, and truncate.
    StatusOr<WalScanResult> scan = WriteAheadLog::Scan(db + ".wal");
    if (!scan.ok()) return Fail(scan.status());
    StatusOr<uint32_t> epoch = FieldDatabase::PeekEpoch(db);
    if (!epoch.ok()) return Fail(epoch.status());
    uint64_t replayable = 0, stale = 0;
    for (const WalFrame& f : scan->frames) {
      (f.epoch == *epoch ? replayable : stale) += 1;
    }
    std::printf("dry run: no files modified\n");
    std::printf("would replay:   %llu frames\n",
                static_cast<unsigned long long>(replayable));
    std::printf("would skip:     %llu stale frames\n",
                static_cast<unsigned long long>(stale));
    std::printf("would truncate: %llu torn bytes%s%s\n",
                static_cast<unsigned long long>(scan->torn_bytes()),
                scan->torn_reason.empty() ? "" : " — ",
                scan->torn_reason.c_str());
    if (mode == WalMode::kOff && (replayable > 0 || stale > 0)) {
      std::printf(
          "would fold the log into a fresh checkpoint (--mode off)\n");
    }
    return 0;
  }

  FieldDatabase::RecoveryReport report;
  FieldDatabase::OpenOptions options;
  options.wal_mode = mode;
  options.recovery_report = &report;
  auto opened = FieldDatabase::Open(db, options);
  if (!opened.ok()) return Fail(opened.status());
  std::printf("replayed:       %llu frames\n",
              static_cast<unsigned long long>(report.frames_replayed));
  std::printf("stale skipped:  %llu frames\n",
              static_cast<unsigned long long>(report.stale_frames));
  std::printf("torn truncated: %llu bytes\n",
              static_cast<unsigned long long>(report.torn_bytes));
  std::printf("valid prefix:   %llu bytes\n",
              static_cast<unsigned long long>(report.valid_bytes));
  std::printf("pages verified: %llu, %zu corrupt\n",
              static_cast<unsigned long long>(report.pages_verified),
              report.corrupt_pages.size());
  for (const PageId id : report.corrupt_pages) {
    std::printf("corrupt page %llu\n", static_cast<unsigned long long>(id));
  }
  if (report.folded) {
    std::printf("log folded into a fresh checkpoint and removed\n");
  }
  if (!report.trace.spans().empty()) {
    std::printf("%s", report.trace.ToString().c_str());
  }
  return report.corrupt_pages.empty() ? 0 : 1;
}

void PrintExtPlan(const PhysicalPlan& plan) {
  std::printf("plan:           %s\n", PlanKindName(plan.kind));
  std::printf("reason:         %s\n", plan.reason.c_str());
  std::printf("candidates:     %llu predicted in %llu runs "
              "(selectivity %.4f)\n",
              static_cast<unsigned long long>(plan.predicted_candidates),
              static_cast<unsigned long long>(plan.predicted_runs),
              plan.selectivity);
  std::printf("cost model:     scan %.3f ms vs index %.3f ms -> "
              "chosen %.3f ms\n",
              plan.scan_cost_ms, plan.index_cost_ms,
              plan.predicted_cost_ms);
}

void PrintExtBuildTelemetry(uint64_t spill_runs, uint64_t peak_bytes,
                            size_t budget) {
  if (budget > 0) {
    std::printf("build budget:   %zu bytes, %llu spill runs, peak "
                "buffered %llu bytes\n",
                budget, static_cast<unsigned long long>(spill_runs),
                static_cast<unsigned long long>(peak_bytes));
  }
}

// Drives the unified extension engines end to end from the shell: build
// a synthetic field of the requested type (optionally under a
// bounded-memory external-sort budget), optionally Save/Open round-trip
// it, then execute one band query and report the planner's decision.
int CmdExt(const Args& args) {
  const std::string type = args.Get("type", "volume");
  const long n = std::max(2L, args.GetLong("n", 16));
  const size_t budget =
      static_cast<size_t>(std::max(0L, args.GetLong("budget", 0)));
  const std::string out = args.Get("out", "");
  const std::string mode_name = args.Get("mode", "auto");
  PlannerMode mode = PlannerMode::kAuto;
  if (mode_name == "scan") {
    mode = PlannerMode::kForceScan;
  } else if (mode_name == "index") {
    mode = PlannerMode::kForceIndex;
  } else if (mode_name != "auto") {
    std::fprintf(stderr, "unknown --mode %s (auto|scan|index)\n",
                 mode_name.c_str());
    return 2;
  }

  // Default band: the middle half of the field's value range, unless
  // --min/--max pin one explicitly.
  const auto band_of = [&args](const ValueInterval& range) {
    ValueInterval band;
    const double span = range.max - range.min;
    band.min = args.GetDouble("min", range.min + 0.25 * span);
    band.max = args.GetDouble("max", range.max - 0.25 * span);
    return band;
  };

  if (type == "volume") {
    VolumeFractalOptions vo;
    vo.nx = vo.ny = vo.nz = static_cast<uint32_t>(n);
    vo.roughness_h = 0.7;
    vo.seed = 909;
    auto volume = MakeFractalVolume(vo);
    if (!volume.ok()) return Fail(volume.status());
    VolumeFieldDatabase::Options options;
    options.planner_mode = mode;
    options.build_memory_budget_bytes = budget;
    auto db = VolumeFieldDatabase::Build(*volume, options);
    if (!db.ok()) return Fail(db.status());
    std::printf("volume field:   %ld^3 voxels, %zu subfields\n", n,
                (*db)->subfields().size());
    PrintExtBuildTelemetry((*db)->ext_spill_runs(),
                           (*db)->ext_peak_buffered_bytes(), budget);
    if (!out.empty()) {
      if (const Status s = (*db)->Save(out); !s.ok()) return Fail(s);
      VolumeFieldDatabase::OpenOptions oo;
      oo.planner_mode = mode;
      auto reopened = VolumeFieldDatabase::Open(out, oo);
      if (!reopened.ok()) return Fail(reopened.status());
      db = std::move(reopened);
      std::printf("round trip:     saved + reopened %s (epoch %u)\n",
                  out.c_str(), (*db)->epoch());
    }
    const ValueInterval band = band_of(volume->ValueRange());
    VolumeQueryResult result;
    if (const Status s = (*db)->BandQuery(band, &result); !s.ok()) {
      return Fail(s);
    }
    std::printf("band [%g, %g]:  %llu cells, volume %.6g\n", band.min,
                band.max,
                static_cast<unsigned long long>(result.stats.answer_cells),
                result.volume);
    PrintExtPlan(result.plan);
    return 0;
  }

  if (type == "vector") {
    // Affine (u, v) = (x + y, x - y) on an n x n grid: smooth value
    // boxes so the zone maps and subfields have real pruning power.
    const uint32_t verts = static_cast<uint32_t>(n) + 1;
    std::vector<double> su(verts * verts), sv(verts * verts);
    for (uint32_t j = 0; j < verts; ++j) {
      for (uint32_t i = 0; i < verts; ++i) {
        su[j * verts + i] = static_cast<double>(i) + j;
        sv[j * verts + i] = static_cast<double>(i) - j;
      }
    }
    auto field = VectorGridField::Create(
        static_cast<uint32_t>(n), static_cast<uint32_t>(n),
        Rect2{{0.0, 0.0}, {1.0, 1.0}}, su, sv);
    if (!field.ok()) return Fail(field.status());
    VectorFieldDatabase::Options options;
    options.planner_mode = mode;
    options.build_memory_budget_bytes = budget;
    auto db = VectorFieldDatabase::Build(*field, options);
    if (!db.ok()) return Fail(db.status());
    std::printf("vector field:   %ldx%ld cells, %zu subfields\n", n, n,
                (*db)->subfields().size());
    PrintExtBuildTelemetry((*db)->ext_spill_runs(),
                           (*db)->ext_peak_buffered_bytes(), budget);
    if (!out.empty()) {
      if (const Status s = (*db)->Save(out); !s.ok()) return Fail(s);
      VectorFieldDatabase::OpenOptions oo;
      oo.planner_mode = mode;
      auto reopened = VectorFieldDatabase::Open(out, oo);
      if (!reopened.ok()) return Fail(reopened.status());
      db = std::move(reopened);
      std::printf("round trip:     saved + reopened %s (epoch %u)\n",
                  out.c_str(), (*db)->epoch());
    }
    const Box<2> range = field->ValueRangeBox();
    VectorBandQuery query;
    query.u = band_of(ValueInterval{range.lo[0], range.hi[0]});
    query.v.min = args.GetDouble("vmin", range.lo[1]);
    query.v.max = args.GetDouble("vmax", range.hi[1]);
    VectorQueryResult result;
    if (const Status s = (*db)->BandQuery(query, &result); !s.ok()) {
      return Fail(s);
    }
    std::printf("band u [%g, %g] x v [%g, %g]: %llu cells\n",
                query.u.min, query.u.max, query.v.min, query.v.max,
                static_cast<unsigned long long>(
                    result.stats.answer_cells));
    PrintExtPlan(result.plan);
    return 0;
  }

  if (type == "temporal") {
    // A drifting ramp: vertex (i, j) at snapshot k holds i + j + 10k,
    // so every slab sees genuinely moving values.
    const uint32_t verts = static_cast<uint32_t>(n) + 1;
    const uint32_t num_snapshots =
        static_cast<uint32_t>(std::max(2L, args.GetLong("snapshots", 4)));
    std::vector<std::vector<double>> snapshots(num_snapshots);
    for (uint32_t k = 0; k < num_snapshots; ++k) {
      snapshots[k].resize(verts * verts);
      for (uint32_t j = 0; j < verts; ++j) {
        for (uint32_t i = 0; i < verts; ++i) {
          snapshots[k][j * verts + i] =
              static_cast<double>(i) + j + 10.0 * k;
        }
      }
    }
    auto field = TemporalGridField::Create(
        static_cast<uint32_t>(n), static_cast<uint32_t>(n),
        Rect2{{0.0, 0.0}, {1.0, 1.0}}, std::move(snapshots));
    if (!field.ok()) return Fail(field.status());
    TemporalFieldDatabase::Options options;
    options.planner_mode = mode;
    options.build_memory_budget_bytes = budget;
    auto db = TemporalFieldDatabase::Build(*field, options);
    if (!db.ok()) return Fail(db.status());
    std::printf("temporal field: %ldx%ld cells, %u slabs, %llu "
                "subfields\n",
                n, n, (*db)->num_slabs(),
                static_cast<unsigned long long>((*db)->num_subfields()));
    PrintExtBuildTelemetry((*db)->ext_spill_runs(),
                           (*db)->ext_peak_buffered_bytes(), budget);
    if (!out.empty()) {
      if (const Status s = (*db)->Save(out); !s.ok()) return Fail(s);
      TemporalFieldDatabase::OpenOptions oo;
      oo.planner_mode = mode;
      auto reopened = TemporalFieldDatabase::Open(out, oo);
      if (!reopened.ok()) return Fail(reopened.status());
      db = std::move(reopened);
      std::printf("round trip:     saved + reopened %s (epoch %u)\n",
                  out.c_str(), (*db)->epoch());
    }
    const double t = args.GetDouble("t", 0.5);
    const ValueInterval band = band_of(field->ValueRange());
    ValueQueryResult result;
    if (const Status s = (*db)->SnapshotValueQuery(t, band, &result);
        !s.ok()) {
      return Fail(s);
    }
    std::printf("t=%g band [%g, %g]: %llu cells\n", t, band.min,
                band.max,
                static_cast<unsigned long long>(
                    result.stats.answer_cells));
    PrintExtPlan(result.plan);
    return 0;
  }

  std::fprintf(stderr, "unknown --type %s (volume|vector|temporal)\n",
               type.c_str());
  return 2;
}

void Usage() {
  std::fprintf(stderr,
               "usage: fielddb_cli <gen|info|query|explain|plan|isoline"
               "|point|bench|stats|serve|trace|top|events|scrub|wal|recover"
               "|ext> [--key value ...]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const Args args(argc, argv, 2);
  const std::string cmd = argv[1];
  if (cmd == "gen") return CmdGen(args);
  if (cmd == "info") return CmdInfo(args);
  if (cmd == "query") return CmdQuery(args);
  if (cmd == "explain") return CmdExplain(args);
  if (cmd == "plan") return CmdPlan(args);
  if (cmd == "isoline") return CmdIsoline(args);
  if (cmd == "point") return CmdPoint(args);
  if (cmd == "bench") return CmdBench(args);
  if (cmd == "stats") return CmdStats(args);
  if (cmd == "serve") return CmdServe(args);
  if (cmd == "trace") return CmdTrace(args);
  if (cmd == "top") return CmdTop(args);
  if (cmd == "events") return CmdEvents(args);
  if (cmd == "scrub") return CmdScrub(args);
  if (cmd == "wal") return CmdWal(args);
  if (cmd == "recover") return CmdRecover(args);
  if (cmd == "ext") return CmdExt(args);
  Usage();
  return 2;
}

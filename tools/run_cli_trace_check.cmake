# CTest driver for the cli_trace_pipeline test: gen -> trace -> validate.
# Run as: cmake -DCLI=... -DPYTHON=... -DCHECKER=... -DWORK_DIR=... -P this.

set(prefix "${WORK_DIR}/cli_trace_db")
set(trace "${WORK_DIR}/TRACE_cli_pipeline.json")

execute_process(
  COMMAND "${CLI}" gen --out "${prefix}" --size-exp 5
  WORKING_DIRECTORY "${WORK_DIR}" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fielddb_cli gen failed (${rc})")
endif()

execute_process(
  COMMAND "${CLI}" trace --db "${prefix}" --out "${trace}"
          --queries 40 --threads 2
  WORKING_DIRECTORY "${WORK_DIR}" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fielddb_cli trace failed (${rc})")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" "${trace}"
  WORKING_DIRECTORY "${WORK_DIR}" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "check_trace_json.py rejected ${trace} (${rc})")
endif()

// Reproduces the paper's Fig. 7: the subfield map that the I-Hilbert
// builder produces over a terrain — each subfield is a set of cells
// contiguous along the Hilbert curve with similar elevations. Writes an
// SVG with cells colored by subfield, plus one highlighted value-query
// answer.
//
// Run:  ./build/examples/terrain_subfields [output.svg]

#include <cstdio>
#include <string>

#include "core/field_database.h"
#include "gen/fractal.h"

int main(int argc, char** argv) {
  using namespace fielddb;
  const char* out_path = argc > 1 ? argv[1] : "terrain_subfields.svg";

  FractalOptions terrain_options;
  terrain_options.size_exp = 6;  // 64x64: readable in an SVG
  terrain_options.roughness_h = 0.7;
  terrain_options.seed = 7;
  StatusOr<GridField> terrain = MakeFractalField(terrain_options);
  if (!terrain.ok()) {
    std::fprintf(stderr, "terrain: %s\n",
                 terrain.status().ToString().c_str());
    return 1;
  }

  FieldDatabaseOptions options;
  options.method = IndexMethod::kIHilbert;
  auto db = FieldDatabase::Build(*terrain, options);
  if (!db.ok()) {
    std::fprintf(stderr, "build: %s\n", db.status().ToString().c_str());
    return 1;
  }
  const std::vector<Subfield>& subfields = *(*db)->subfields();
  std::printf("%u cells grouped into %zu subfields\n", terrain->NumCells(),
              subfields.size());
  std::printf("subfield sizes: first=%llu cells %s",
              static_cast<unsigned long long>(subfields[0].NumCells()),
              subfields[0].interval.ToString().c_str());
  std::printf(", last=%llu cells %s\n",
              static_cast<unsigned long long>(subfields.back().NumCells()),
              subfields.back().interval.ToString().c_str());

  // One SVG layer per subfield, cycling a categorical palette.
  static const char* kPalette[] = {"#4477aa", "#66ccee", "#228833",
                                   "#ccbb44", "#ee6677", "#aa3377",
                                   "#bbbbbb", "#ee8866"};
  std::vector<SvgLayer> layers;
  const CellStore& store = (*db)->index().cell_store();
  for (size_t si = 0; si < subfields.size(); ++si) {
    SvgLayer layer;
    layer.fill = kPalette[si % (sizeof(kPalette) / sizeof(kPalette[0]))];
    layer.stroke = "#333333";
    layer.fill_opacity = 0.8;
    CellRecord rec;
    for (uint64_t pos = subfields[si].start; pos < subfields[si].end;
         ++pos) {
      if (!store.Get(pos, &rec).ok()) continue;
      layer.polygons.push_back(PolygonFromRect(rec.Bounds()));
    }
    layers.push_back(std::move(layer));
  }

  // Highlight the answer of one value query on top.
  const ValueInterval range = terrain->ValueRange();
  const ValueInterval band{range.min + 0.45 * range.Length(),
                           range.min + 0.55 * range.Length()};
  ValueQueryResult result;
  if ((*db)->ValueQuery(band, &result).ok()) {
    SvgLayer answer;
    answer.polygons = result.region.pieces;
    answer.fill = "#000000";
    answer.stroke = "#000000";
    answer.fill_opacity = 0.55;
    layers.push_back(std::move(answer));
    std::printf("highlighted band %s: area %.4f, %llu candidates\n",
                band.ToString().c_str(), result.region.TotalArea(),
                static_cast<unsigned long long>(
                    result.stats.candidate_cells));
  }

  if (!WriteSvg(out_path, terrain->Domain(), layers)) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s\n", out_path);
  return 0;
}

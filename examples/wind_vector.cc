// The paper's future-work scenario (Section 5): value queries on a
// *vector* field — wind as (u, v) velocity components. Finds the regions
// where the wind blows strongly eastward with little north-south
// component, using the 2-D-box generalization of I-Hilbert.
//
// Run:  ./build/examples/wind_vector

#include <cstdio>

#include "gen/fractal.h"
#include "vector/vector_index.h"

int main() {
  using namespace fielddb;

  // Two fractal component fields over a 128x128 grid (m/s, remapped).
  FractalOptions fo;
  fo.size_exp = 7;
  fo.roughness_h = 0.8;
  fo.seed = 21;
  std::vector<double> su = DiamondSquare(fo);
  fo.seed = 22;
  std::vector<double> sv = DiamondSquare(fo);
  // Map the raw heights (~[-1.5, 1.5]) onto wind speeds: u in ~[-15, 15].
  for (double& w : su) w *= 10.0;
  for (double& w : sv) w *= 10.0;

  StatusOr<VectorGridField> wind = VectorGridField::Create(
      128, 128, Rect2{{0, 0}, {1, 1}}, std::move(su), std::move(sv));
  if (!wind.ok()) {
    std::fprintf(stderr, "wind: %s\n", wind.status().ToString().c_str());
    return 1;
  }
  const Box<2> range = wind->ValueRangeBox();
  std::printf("wind field: %u cells, u in [%.1f, %.1f], v in [%.1f, %.1f] m/s\n",
              wind->NumCells(), range.lo[0], range.hi[0], range.lo[1],
              range.hi[1]);

  VectorFieldDatabase::Options options;  // V-I-Hilbert
  auto db = VectorFieldDatabase::Build(*wind, options);
  if (!db.ok()) {
    std::fprintf(stderr, "build: %s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("index: %zu vector subfields (2-D value boxes in a 2-D R*-tree)\n",
              (*db)->subfields().size());

  // "Steady easterly corridor": u in [5, 15] m/s, |v| <= 2 m/s.
  const VectorBandQuery corridor{{5.0, 15.0}, {-2.0, 2.0}};
  VectorQueryResult result;
  const Status s = (*db)->BandQuery(corridor, &result);
  if (!s.ok()) {
    std::fprintf(stderr, "query: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "easterly corridor (u in [5,15], v in [-2,2]): %zu pieces, area "
      "%.4f (%.1f%% of the domain), %llu candidates, %llu answer cells, "
      "%llu pages read\n",
      result.region.NumPieces(), result.region.TotalArea(),
      100.0 * result.region.TotalArea(),
      static_cast<unsigned long long>(result.stats.candidate_cells),
      static_cast<unsigned long long>(result.stats.answer_cells),
      static_cast<unsigned long long>(result.stats.io.logical_reads));

  // Contrast with a calm-region query.
  const VectorBandQuery calm{{-1.0, 1.0}, {-1.0, 1.0}};
  if (!(*db)->BandQuery(calm, &result).ok()) return 1;
  std::printf("calm regions (|u|,|v| <= 1): area %.4f (%.1f%%)\n",
              result.region.TotalArea(),
              100.0 * result.region.TotalArea());
  return 0;
}

// Quickstart: build a terrain field database and run the two query
// classes of the paper — a conventional point query (Q1) and a field
// value query (Q2: "find the regions where the elevation is in a band").
//
// Run:  ./build/examples/quickstart

#include <cstdio>

#include "core/field_database.h"
#include "gen/fractal.h"

int main() {
  using namespace fielddb;

  // 1. A continuous field: a 128x128 fractal DEM over the unit square,
  //    with bilinear interpolation inside each grid cell.
  FractalOptions terrain_options;
  terrain_options.size_exp = 7;      // 128 x 128 cells
  terrain_options.roughness_h = 0.7;  // smooth, terrain-like
  terrain_options.seed = 2002;
  StatusOr<GridField> terrain = MakeFractalField(terrain_options);
  if (!terrain.ok()) {
    std::fprintf(stderr, "terrain: %s\n",
                 terrain.status().ToString().c_str());
    return 1;
  }
  std::printf("field: %u cells, elevations %s\n", terrain->NumCells(),
              terrain->ValueRange().ToString().c_str());

  // 2. Index it with the paper's I-Hilbert method (the default).
  StatusOr<std::unique_ptr<FieldDatabase>> db =
      FieldDatabase::Build(*terrain);
  if (!db.ok()) {
    std::fprintf(stderr, "build: %s\n", db.status().ToString().c_str());
    return 1;
  }
  const IndexBuildInfo& info = (*db)->build_info();
  std::printf(
      "index: %s, %llu cells -> %llu subfields, R*-tree height %u\n",
      (*db)->index().name().c_str(),
      static_cast<unsigned long long>(info.num_cells),
      static_cast<unsigned long long>(info.num_subfields),
      info.tree_height);

  // 3. Q1 — conventional query: elevation at a point.
  const Point2 site{0.25, 0.75};
  StatusOr<double> elevation = (*db)->PointQuery(site);
  if (!elevation.ok()) {
    std::fprintf(stderr, "Q1: %s\n",
                 elevation.status().ToString().c_str());
    return 1;
  }
  std::printf("Q1: elevation at (%.2f, %.2f) = %.4f\n", site.x, site.y,
              *elevation);

  // 4. Q2 — field value query: regions with elevation in a band around
  //    the middle of the range. The cost-based planner decides per
  //    query whether to run the index's filter+fetch pipeline or a
  //    single fused scan of the store — ask it first, then run.
  const ValueInterval range = terrain->ValueRange();
  const double mid = range.Center();
  const ValueInterval band{mid - 0.02 * range.Length(),
                           mid + 0.02 * range.Length()};
  const PhysicalPlan plan = (*db)->PlanValueQuery(band);
  std::printf("Q2 plan: %s, predicted %.2f ms (%s)\n",
              PlanKindName(plan.kind), plan.predicted_cost_ms,
              plan.reason.c_str());
  ValueQueryResult result;
  const Status s = (*db)->ValueQuery(band, &result);
  if (!s.ok()) {
    std::fprintf(stderr, "Q2: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "Q2: band %s -> %zu region pieces, area %.4f (of 1.0), "
      "%llu candidate cells, %llu answer cells, %llu pages read\n",
      band.ToString().c_str(), result.region.NumPieces(),
      result.region.TotalArea(),
      static_cast<unsigned long long>(result.stats.candidate_cells),
      static_cast<unsigned long long>(result.stats.answer_cells),
      static_cast<unsigned long long>(result.stats.io.logical_reads));
  return 0;
}

// The paper's urban-noise scenario (Sections 1 and 4.1): a noise-level
// TIN over a city, queried with "find regions where the noise level is
// higher than 80 dB". Writes the answer regions (over the TIN outline)
// to urban_noise.svg.
//
// Run:  ./build/examples/urban_noise [output.svg]

#include <cstdio>

#include "core/field_database.h"
#include "gen/noise_tin.h"

int main(int argc, char** argv) {
  using namespace fielddb;
  const char* out_path = argc > 1 ? argv[1] : "urban_noise.svg";

  // A TIN of ~9000 triangles, like the paper's Lyon noise dataset (see
  // DESIGN.md for the substitution).
  StatusOr<TinField> city = MakeUrbanNoiseTin();
  if (!city.ok()) {
    std::fprintf(stderr, "tin: %s\n", city.status().ToString().c_str());
    return 1;
  }
  std::printf("city noise TIN: %u triangles, levels %s dB\n",
              city->NumCells(), city->ValueRange().ToString().c_str());

  FieldDatabaseOptions options;  // I-Hilbert
  auto db = FieldDatabase::Build(*city, options);
  if (!db.ok()) {
    std::fprintf(stderr, "build: %s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("index: %llu subfields over %u triangles\n",
              static_cast<unsigned long long>(
                  (*db)->build_info().num_subfields),
              city->NumCells());

  // "Noise level higher than 80 dB": an open upper range, expressed as
  // [80, max].
  const ValueInterval noisy{80.0, city->ValueRange().max};
  ValueQueryResult result;
  const Status s = (*db)->ValueQuery(noisy, &result);
  if (!s.ok()) {
    std::fprintf(stderr, "query: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "> 80 dB: %zu region pieces, area %.4f (%.2f%% of the city), "
      "%llu candidates, %llu pages read\n",
      result.region.NumPieces(), result.region.TotalArea(),
      100.0 * result.region.TotalArea(),
      static_cast<unsigned long long>(result.stats.candidate_cells),
      static_cast<unsigned long long>(result.stats.io.logical_reads));

  // SVG: city triangles in grey, noisy regions in red.
  SvgLayer triangles;
  triangles.fill = "#e8e8e8";
  triangles.stroke = "#bbbbbb";
  triangles.fill_opacity = 1.0;
  for (CellId id = 0; id < city->NumCells(); ++id) {
    const CellRecord cell = city->GetCell(id);
    triangles.polygons.push_back(PolygonFromTriangle(
        Triangle2{{cell.Vertex(0), cell.Vertex(1), cell.Vertex(2)}}));
  }
  SvgLayer noisy_layer;
  noisy_layer.polygons = result.region.pieces;
  noisy_layer.fill = "#cc3311";
  noisy_layer.stroke = "#7a1f0a";
  noisy_layer.fill_opacity = 0.85;

  if (!WriteSvg(out_path, city->Domain(), {triangles, noisy_layer})) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s\n", out_path);
  return 0;
}

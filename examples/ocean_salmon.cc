// The paper's motivating ocean scenario (Section 1): "Find regions where
// the temperature is between 20° and 25° and the salinity is between 12%
// and 13%" — a conjunctive field value query over two scalar fields.
//
// Each field gets its own I-Hilbert database; the conjunction is
// evaluated by running both single-field value queries and intersecting
// the answer regions (piecewise, by clipping each temperature piece
// against the salinity condition on a sampling grid).
//
// Run:  ./build/examples/ocean_salmon

#include <cstdio>

#include "core/field_database.h"
#include "gen/fractal.h"

namespace {

using namespace fielddb;

// Remaps fractal heights (centered near 0) onto a target value range.
StatusOr<GridField> MakeScalarField(uint64_t seed, double out_min,
                                    double out_max, int size_exp) {
  FractalOptions options;
  options.size_exp = size_exp;
  options.roughness_h = 0.8;  // ocean-scale smooth gradients
  options.seed = seed;
  const std::vector<double> raw = DiamondSquare(options);
  double lo = raw[0], hi = raw[0];
  for (const double v : raw) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::vector<double> scaled(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    scaled[i] =
        out_min + (raw[i] - lo) / (hi - lo) * (out_max - out_min);
  }
  const uint32_t n = uint32_t{1} << size_exp;
  return GridField::Create(n, n, Rect2{{0, 0}, {1, 1}},
                           std::move(scaled));
}

// Monte-Carlo area of the part of `piece` where `db`'s field value lies
// in `band`. Cheap and good enough for reporting; the exact alternative
// would clip the piece against the second field's cell structure.
double ConjunctiveArea(const ConvexPolygon& piece, FieldDatabase& db,
                       const ValueInterval& band) {
  const Rect2 bb = piece.BoundingBox();
  const int grid = 6;  // 36 samples per piece
  int inside = 0, total = 0;
  for (int j = 0; j < grid; ++j) {
    for (int i = 0; i < grid; ++i) {
      const Point2 p{bb.lo.x + (i + 0.5) / grid * bb.Width(),
                     bb.lo.y + (j + 0.5) / grid * bb.Height()};
      // Only sample points inside the (convex) piece.
      bool in_piece = true;
      const auto& vs = piece.vertices;
      for (size_t k = 0; k < vs.size(); ++k) {
        const Point2 a = vs[k], b = vs[(k + 1) % vs.size()];
        if (Cross(b - a, p - a) < 0) {
          in_piece = false;
          break;
        }
      }
      if (!in_piece) continue;
      ++total;
      const StatusOr<double> w = db.PointQuery(p);
      if (w.ok() && band.Contains(*w)) ++inside;
    }
  }
  if (total == 0) return 0.0;
  return piece.Area() * inside / total;
}

}  // namespace

int main() {
  // Two 64x64 ocean property fields over the same survey square.
  StatusOr<GridField> temperature = MakeScalarField(11, 14.0, 28.0, 6);
  StatusOr<GridField> salinity = MakeScalarField(23, 10.0, 16.0, 6);
  if (!temperature.ok() || !salinity.ok()) {
    std::fprintf(stderr, "field generation failed\n");
    return 1;
  }

  FieldDatabaseOptions options;  // I-Hilbert by default
  auto temp_db = FieldDatabase::Build(*temperature, options);
  auto sal_db = FieldDatabase::Build(*salinity, options);
  if (!temp_db.ok() || !sal_db.ok()) {
    std::fprintf(stderr, "database build failed\n");
    return 1;
  }

  const ValueInterval temp_band{20.0, 25.0};
  const ValueInterval sal_band{12.0, 13.0};
  std::printf("salmon habitat query: temperature in %s AND salinity in %s\n",
              temp_band.ToString().c_str(), sal_band.ToString().c_str());

  // Step 1: value query on the temperature field.
  ValueQueryResult temp_result;
  Status s = (*temp_db)->ValueQuery(temp_band, &temp_result);
  if (!s.ok()) {
    std::fprintf(stderr, "temperature query: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("  temperature band: %zu pieces, area %.4f, %llu pages\n",
              temp_result.region.NumPieces(),
              temp_result.region.TotalArea(),
              static_cast<unsigned long long>(
                  temp_result.stats.io.logical_reads));

  // Step 2: value query on the salinity field (for reporting symmetry).
  ValueQueryResult sal_result;
  s = (*sal_db)->ValueQuery(sal_band, &sal_result);
  if (!s.ok()) {
    std::fprintf(stderr, "salinity query: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("  salinity band:    %zu pieces, area %.4f, %llu pages\n",
              sal_result.region.NumPieces(), sal_result.region.TotalArea(),
              static_cast<unsigned long long>(
                  sal_result.stats.io.logical_reads));

  // Step 3: conjunction — refine the (smaller) temperature region by the
  // salinity condition.
  double habitat_area = 0.0;
  for (const ConvexPolygon& piece : temp_result.region.pieces) {
    habitat_area += ConjunctiveArea(piece, **sal_db, sal_band);
  }
  std::printf("salmon habitat: ~%.4f of the survey square (%.1f%%)\n",
              habitat_area, 100.0 * habitat_area);
  return 0;
}

// Temporal scenario: tracking a pressure anomaly ("storm") across a
// time-varying field — the spatio-temporal coordinate the paper's field
// model allows (Section 2.1). Builds one space-time index over all
// snapshots and asks, at a sweep of times, where the pressure is below a
// storm threshold — watching the anomaly grow, move and fade.
//
// Run:  ./build/examples/storm_tracking

#include <cmath>
#include <cstdio>

#include "gen/fractal.h"
#include "temporal/temporal_index.h"

int main() {
  using namespace fielddb;

  // Background pressure surface + a moving low-pressure anomaly.
  const uint32_t n = 64;
  const uint32_t num_snapshots = 9;
  FractalOptions fo;
  fo.size_exp = 6;
  fo.roughness_h = 0.85;
  fo.seed = 99;
  const std::vector<double> background = DiamondSquare(fo);

  std::vector<std::vector<double>> snapshots(num_snapshots);
  for (uint32_t k = 0; k < num_snapshots; ++k) {
    snapshots[k].resize(background.size());
    // Storm center drifts along the diagonal; depth peaks mid-sequence.
    const double cx = 0.15 + 0.08 * k;
    const double cy = 0.2 + 0.07 * k;
    const double depth =
        6.0 * std::exp(-0.5 * (k - 4.0) * (k - 4.0) / 4.0);
    size_t s = 0;
    for (uint32_t j = 0; j <= n; ++j) {
      for (uint32_t i = 0; i <= n; ++i, ++s) {
        const double x = static_cast<double>(i) / n;
        const double y = static_cast<double>(j) / n;
        const double d2 =
            (x - cx) * (x - cx) + (y - cy) * (y - cy);
        snapshots[k][s] = 1010.0 + 4.0 * background[s] -
                          depth * std::exp(-d2 / 0.02);
      }
    }
  }

  StatusOr<TemporalGridField> field = TemporalGridField::Create(
      n, n, Rect2{{0, 0}, {1, 1}}, std::move(snapshots));
  if (!field.ok()) {
    std::fprintf(stderr, "field: %s\n",
                 field.status().ToString().c_str());
    return 1;
  }

  TemporalFieldDatabase::Options options;
  auto db = TemporalFieldDatabase::Build(*field, options);
  if (!db.ok()) {
    std::fprintf(stderr, "build: %s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "pressure field: %u cells x %u snapshots, %u slabs, %llu "
      "space-time subfields, range %s hPa\n",
      field->NumCells(), field->NumSnapshots(), (*db)->num_slabs(),
      static_cast<unsigned long long>((*db)->num_subfields()),
      field->ValueRange().ToString().c_str());

  // Sweep time and report the storm footprint (pressure < 1005 hPa).
  const ValueInterval storm{field->ValueRange().min, 1005.0};
  std::printf("\n%-6s %12s %10s %12s\n", "t", "storm_area", "cells",
              "centroid");
  for (double t = 0.0; t <= 8.0; t += 1.0) {
    ValueQueryResult result;
    const Status s = (*db)->SnapshotValueQuery(t, storm, &result);
    if (!s.ok()) {
      std::fprintf(stderr, "query: %s\n", s.ToString().c_str());
      return 1;
    }
    Point2 centroid{0, 0};
    if (!result.region.IsEmpty()) {
      double area = 0;
      for (const ConvexPolygon& piece : result.region.pieces) {
        const double a = piece.Area();
        const Point2 c = piece.Centroid();
        centroid.x += c.x * a;
        centroid.y += c.y * a;
        area += a;
      }
      if (area > 0) {
        centroid.x /= area;
        centroid.y /= area;
      }
    }
    std::printf("%-6.1f %12.5f %10llu   (%.2f, %.2f)\n", t,
                result.region.TotalArea(),
                static_cast<unsigned long long>(
                    result.stats.answer_cells),
                centroid.x, centroid.y);
  }

  // Which cells were ever inside the storm during the middle of the
  // event? (time-range filtering)
  std::vector<CellId> touched;
  if (!(*db)->TimeRangeCandidates(storm, 2.0, 6.0, &touched).ok()) {
    return 1;
  }
  std::printf(
      "\ncells possibly below 1005 hPa at some moment of t in [2, 6]: "
      "%zu of %u\n",
      touched.size(), field->NumCells());
  return 0;
}

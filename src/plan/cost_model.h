#ifndef FIELDDB_PLAN_COST_MODEL_H_
#define FIELDDB_PLAN_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/simd/interval_filter.h"

namespace fielddb {

/// Parameters of the simulated spinning disk used to translate page
/// counts into the I/O time a 2002 testbed would have paid (the paper's
/// experiments ran against real disks; our pages live in RAM). Defaults:
/// ~9 ms average seek + rotational delay for a random page, ~0.16 ms to
/// transfer a 4 KB page at ~25 MB/s.
///
/// Lives in the plan layer because the planner charges candidate access
/// paths with it *before* execution; EXPLAIN and the benches keep using
/// it after the fact (core/stats.h re-exports it for them).
struct DiskModel {
  double seek_ms = 9.0;
  double transfer_ms_per_page = 0.16;

  /// Estimated I/O milliseconds for a read pattern.
  double EstimateMs(uint64_t sequential_reads, uint64_t random_reads) const {
    return random_reads * (seek_ms + transfer_ms_per_page) +
           sequential_reads * transfer_ms_per_page;
  }
};

/// The predicted physical read pattern of one access path, in the same
/// currency IoStats reports observed I/O: `random_reads` pages pay a
/// seek (a discontiguous jump), `sequential_reads` pages follow their
/// predecessor. `pages == random_reads + sequential_reads`.
struct PagePattern {
  uint64_t pages = 0;
  uint64_t random_reads = 0;
  uint64_t sequential_reads = 0;

  PagePattern& operator+=(const PagePattern& o) {
    pages += o.pages;
    random_reads += o.random_reads;
    sequential_reads += o.sequential_reads;
    return *this;
  }
};

/// The static store geometry the cost functions need — derivable from
/// any CellStore, or synthesized by tests pinning predicted page counts.
struct StoreShape {
  uint64_t num_cells = 0;
  uint32_t cells_per_page = 1;
  uint64_t store_pages = 0;
};

/// The paper's disk cost function hoisted out of EXPLAIN and turned
/// predictive: given the store geometry and a filter's candidate runs,
/// compute the page pattern each physical plan would read, then price it
/// with the DiskModel. The pattern rules mirror the buffer pool's
/// accounting (a physical read is sequential iff its page id is exactly
/// one past the previous physical read), so predicted and observed costs
/// are directly comparable.
class PlanCostModel {
 public:
  explicit PlanCostModel(DiskModel disk = {}) : disk_(disk) {}

  /// The fused scan: every store page once, in order — one seek, then
  /// pure transfer.
  PagePattern ScanPattern(const StoreShape& shape) const;

  /// The indexed fetch: the distinct pages under the candidate runs
  /// (ascending, disjoint). Each discontiguous page run costs one seek;
  /// runs that share or abut pages coalesce, as the buffer pool would
  /// serve them.
  PagePattern FetchPattern(const StoreShape& shape,
                           const std::vector<PosRange>& runs) const;

  /// FetchPattern for a sampled selectivity probe, where only candidate
  /// and run *counts* are known (large stores, strided zone probe): each
  /// of the `runs` clusters pays one seek and the candidates spread over
  /// ceil(candidates / cells_per_page) pages, capped at the store size.
  PagePattern ApproxFetchPattern(const StoreShape& shape, uint64_t candidates,
                                 uint64_t runs) const;

  double CostMs(const PagePattern& pattern) const {
    return disk_.EstimateMs(pattern.sequential_reads, pattern.random_reads);
  }

  const DiskModel& disk() const { return disk_; }

 private:
  DiskModel disk_;
};

}  // namespace fielddb

#endif  // FIELDDB_PLAN_COST_MODEL_H_

#include "plan/cost_model.h"

#include <algorithm>

namespace fielddb {

PagePattern PlanCostModel::ScanPattern(const StoreShape& shape) const {
  PagePattern p;
  p.pages = shape.store_pages;
  if (p.pages > 0) {
    p.random_reads = 1;
    p.sequential_reads = p.pages - 1;
  }
  return p;
}

PagePattern PlanCostModel::FetchPattern(
    const StoreShape& shape, const std::vector<PosRange>& runs) const {
  PagePattern p;
  constexpr uint64_t kNone = ~uint64_t{0};
  uint64_t prev_last = kNone;  // last page index the pattern has read
  for (const PosRange& r : runs) {
    if (r.end <= r.begin) continue;
    uint64_t first = r.begin / shape.cells_per_page;
    const uint64_t last = (r.end - 1) / shape.cells_per_page;
    if (prev_last != kNone && first <= prev_last) {
      // The run starts on (or before) a page the previous run already
      // read — the buffer pool serves it from the frame, no new I/O.
      first = prev_last + 1;
    }
    if (first > last) continue;  // run fully inside already-read pages
    const uint64_t pages = last - first + 1;
    p.pages += pages;
    if (prev_last != kNone && first == prev_last + 1) {
      // Abuts the previous run's pages: the head read is sequential too.
      p.sequential_reads += pages;
    } else {
      p.random_reads += 1;
      p.sequential_reads += pages - 1;
    }
    prev_last = last;
  }
  return p;
}

PagePattern PlanCostModel::ApproxFetchPattern(const StoreShape& shape,
                                              uint64_t candidates,
                                              uint64_t runs) const {
  PagePattern p;
  if (candidates == 0) return p;
  const uint32_t per_page = std::max<uint32_t>(1, shape.cells_per_page);
  const uint64_t body = (candidates + per_page - 1) / per_page;
  const uint64_t seeks = std::max<uint64_t>(1, std::min(runs, body));
  p.pages = std::min<uint64_t>(shape.store_pages, body + seeks - 1);
  p.random_reads = std::min(seeks, p.pages);
  p.sequential_reads = p.pages - p.random_reads;
  return p;
}

}  // namespace fielddb

#ifndef FIELDDB_PLAN_EXT_PLANNER_H_
#define FIELDDB_PLAN_EXT_PLANNER_H_

#include <cstdint>
#include <vector>

#include "common/simd/interval_filter.h"
#include "plan/planner.h"

namespace fielddb {

/// Cost-based scan-vs-index selection for the extension field stores
/// (temporal slabs, vector cells, voxels) — the same decision
/// QueryPlanner makes for the grid, parameterized by an explicit
/// StoreShape instead of a CellStore so any fixed-record store can be
/// costed (DESIGN.md §16).
///
/// The caller runs the zero-I/O selectivity probe itself (the extension
/// databases keep in-RAM zone-map sidecars — see index/zone_sidecar.h —
/// whose FilterRanges output *is* the exact filter result) and hands the
/// candidate runs in; Choose prices both alternatives with the paper's
/// disk model:
///  - fused scan: every store page once (one seek + pure transfer);
///  - indexed filter: `descent_pages` random pages for the index descent
///    (tree height for R*-tree-backed methods, 0 when the zone runs are
///    served straight from the sidecar) plus the candidate-run fetch
///    pattern.
/// Deterministic and independent of buffer-pool state, like the grid
/// planner.
class ExtStorePlanner {
 public:
  ExtStorePlanner(const StoreShape& shape, uint64_t descent_pages,
                  PlanCostModel cost = PlanCostModel{})
      : shape_(shape), descent_pages_(descent_pages), cost_(cost) {}

  /// Picks the plan for a query whose exact candidate runs are `runs`.
  /// `has_index` false (LinearScan-style store: nothing to filter with)
  /// always yields the fused scan.
  PhysicalPlan Choose(const std::vector<PosRange>& runs, PlannerMode mode,
                      bool has_index = true) const;

  const StoreShape& shape() const { return shape_; }
  const PlanCostModel& cost_model() const { return cost_; }

 private:
  StoreShape shape_;
  uint64_t descent_pages_;
  PlanCostModel cost_;
};

}  // namespace fielddb

#endif  // FIELDDB_PLAN_EXT_PLANNER_H_

#include "plan/operators.h"

#include <string>

#include "obs/metrics.h"

namespace fielddb {

namespace plan_internal {

void AddZoneSkips(uint64_t skipped) {
  static Counter* const counter =
      MetricsRegistry::Default().GetCounter("db.zonemap_cells_skipped");
  counter->Increment(skipped);
}

}  // namespace plan_internal

Status RunFilterOp(const OperatorEnv& env, const ValueInterval& query,
                   std::vector<PosRange>* ranges, uint64_t* candidates) {
  ScopedSpan span(env.trace, "filter", &env.ctx->io);
  const Status s = env.index->FilterCandidateRanges(query, ranges);
  *candidates = TotalRangeLength(*ranges);
  span.set_items(*candidates);
  span.set_detail("runs=" + std::to_string(ranges->size()));
  return s;
}

}  // namespace fielddb

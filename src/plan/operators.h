#ifndef FIELDDB_PLAN_OPERATORS_H_
#define FIELDDB_PLAN_OPERATORS_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "common/simd/interval_filter.h"
#include "common/status.h"
#include "core/query_context.h"
#include "core/stats.h"
#include "field/isoband.h"
#include "field/region.h"
#include "index/value_index.h"
#include "obs/trace.h"

namespace fielddb {

/// What every physical operator needs from the query that runs it: the
/// value index (and, through it, the clustered cell store), the
/// per-query scratch context whose IoStats is the live I/O sink, and an
/// optional trace — each operator reports itself as one span ("filter",
/// "fetch", "estimate") when `trace` is non-null.
struct OperatorEnv {
  const ValueIndex* index = nullptr;
  QueryContext* ctx = nullptr;
  QueryTrace* trace = nullptr;
};

/// FilterOp — the filtering step as an operator: runs
/// ValueIndex::FilterCandidateRanges under a "filter" span, reporting
/// the candidate count as the span's items and the run count as its
/// detail. Appends to `*ranges` (callers clear it for reuse). Returns
/// the index's status verbatim — kCorruption is the caller's cue to
/// degrade to FuseOp.
Status RunFilterOp(const OperatorEnv& env, const ValueInterval& query,
                   std::vector<PosRange>* ranges, uint64_t* candidates);

/// EstimateOp — the estimation step as a cell visitor: inverse
/// interpolation (CellIsoband) of each fetched cell into `region`, or
/// plain answer counting when `region` is null (stats-only queries).
/// With `count_candidates`, every visited cell is also counted as a
/// candidate — the fused scan has no filter step to provide that number
/// (the zone test inside the scan is exact, so visited == matching).
/// A failed interpolation parks its status here and stops the scan;
/// callers must check `status()` after the scan returns.
class EstimateOp {
 public:
  EstimateOp(const ValueInterval& query, Region* region, QueryStats* stats,
             bool count_candidates)
      : query_(query), region_(region), stats_(stats),
        count_candidates_(count_candidates) {}

  bool operator()(uint64_t pos, const CellRecord& cell) {
    (void)pos;
    if (count_candidates_) ++stats_->candidate_cells;
    if (region_ != nullptr) {
      StatusOr<size_t> pieces = CellIsoband(cell, query_, region_);
      if (!pieces.ok()) {
        status_ = pieces.status();
        return false;
      }
      if (*pieces > 0) {
        ++stats_->answer_cells;
        stats_->region_pieces += *pieces;
      }
    } else {
      ++stats_->answer_cells;
    }
    return true;
  }

  const Status& status() const { return status_; }

 private:
  ValueInterval query_;
  Region* region_;
  QueryStats* stats_;
  bool count_candidates_;
  Status status_;
};

namespace plan_internal {

/// Counts zone-filtered slots into the db.zonemap_cells_skipped metric
/// (out-of-line so the header does not pull in the metrics registry).
void AddZoneSkips(uint64_t skipped);

inline double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace plan_internal

/// ScanOp — candidate retrieval as an operator: walks the given runs
/// through CellStore::ScanRangesFiltered (readahead batches, zone-map
/// slot filtering) feeding each matching cell to `visit`, reported as a
/// "fetch" span. On traced runs the visitor's own work is timed per
/// cell, deducted from the fetch span, and reported as a separate
/// zero-I/O "estimate" span — the fetch span is then pure retrieval.
/// `stats->candidate_cells` must be final before the scan on indexed
/// plans (the span items are read from it after the walk, so fused
/// visitors that count candidates while scanning also report right).
///
/// Statically bound visitor (no std::function on the per-record path);
/// pass visitors whose state must survive — EstimateOp — as lvalues.
template <typename Visitor>
Status RunScanOp(const OperatorEnv& env, const ValueInterval& query,
                 const PosRange* ranges, size_t num_ranges,
                 const char* fetch_detail, QueryStats* stats,
                 Visitor&& visit) {
  double est_seconds = 0.0;
  uint64_t skipped = 0;
  Status scan;
  {
    ScopedSpan fetch(env.trace, "fetch", &env.ctx->io);
    const CellStore& store = env.index->cell_store();
    if (env.trace == nullptr) {
      scan = store.ScanRangesFiltered(ranges, num_ranges, query, &skipped,
                                      visit);
    } else {
      scan = store.ScanRangesFiltered(
          ranges, num_ranges, query, &skipped,
          [&](uint64_t pos, const CellRecord& cell) {
            const auto t0 = std::chrono::steady_clock::now();
            const bool keep_going = visit(pos, cell);
            est_seconds += plan_internal::SecondsSince(t0);
            return keep_going;
          });
    }
    fetch.set_items(stats->candidate_cells);
    if (fetch_detail != nullptr) fetch.set_detail(fetch_detail);
    fetch.DeductWallSeconds(est_seconds);
  }
  FIELDDB_RETURN_IF_ERROR(scan);
  plan_internal::AddZoneSkips(skipped);
  if (env.trace != nullptr) {
    TraceSpan span;
    span.name = "estimate";
    span.wall_seconds = est_seconds;
    span.items = stats->answer_cells;
    env.trace->AddSpan(std::move(span));
  }
  return Status::OK();
}

/// FuseOp — the single-pass scan-and-estimate plan (the paper's
/// LinearScan execution): ScanOp over the whole store as one run, with
/// estimation fused into the pass. Also the degraded path when the
/// filter hits a corrupt index page — the store holds the truth, the
/// index is only an accelerator.
template <typename Visitor>
Status RunFuseOp(const OperatorEnv& env, const ValueInterval& query,
                 QueryStats* stats, Visitor&& visit) {
  const PosRange whole{0, env.index->cell_store().size()};
  return RunScanOp(env, query, &whole, 1, "full_scan", stats,
                   std::forward<Visitor>(visit));
}

}  // namespace fielddb

#endif  // FIELDDB_PLAN_OPERATORS_H_

#include "plan/ext_planner.h"

#include <cstdio>

namespace fielddb {

PhysicalPlan ExtStorePlanner::Choose(const std::vector<PosRange>& runs,
                                     PlannerMode mode,
                                     bool has_index) const {
  PhysicalPlan plan;
  plan.scan_pattern = cost_.ScanPattern(shape_);
  plan.scan_cost_ms = cost_.CostMs(plan.scan_pattern);

  if (!has_index) {
    plan.kind = PlanKind::kFusedScan;
    plan.predicted_cost_ms = plan.scan_cost_ms;
    plan.reason = "LinearScan: no value index, fused scan is the only plan";
    return plan;
  }
  if (mode == PlannerMode::kForceScan) {
    plan.kind = PlanKind::kFusedScan;
    plan.predicted_cost_ms = plan.scan_cost_ms;
    plan.reason = "forced: fused scan";
    return plan;
  }

  plan.predicted_candidates = TotalRangeLength(runs);
  plan.predicted_runs = runs.size();
  plan.selectivity =
      shape_.num_cells > 0
          ? static_cast<double>(plan.predicted_candidates) / shape_.num_cells
          : 0.0;
  // Index descent (tree nodes are scattered: every read seeks) plus the
  // candidate fetch.
  plan.index_pattern.pages = descent_pages_;
  plan.index_pattern.random_reads = descent_pages_;
  plan.index_pattern += cost_.FetchPattern(shape_, runs);
  plan.index_cost_ms = cost_.CostMs(plan.index_pattern);

  if (mode == PlannerMode::kForceIndex) {
    plan.kind = PlanKind::kIndexedFilter;
    plan.predicted_cost_ms = plan.index_cost_ms;
    plan.reason = "forced: indexed filter+fetch";
    return plan;
  }

  const bool index_wins = plan.index_cost_ms < plan.scan_cost_ms;
  plan.kind = index_wins ? PlanKind::kIndexedFilter : PlanKind::kFusedScan;
  plan.predicted_cost_ms =
      index_wins ? plan.index_cost_ms : plan.scan_cost_ms;
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "auto: %s (index %.2f ms %s scan %.2f ms; est. %llu "
                "candidates, %.2f%% selectivity)",
                index_wins ? "indexed filter+fetch" : "fused scan",
                plan.index_cost_ms, index_wins ? "<" : ">=",
                plan.scan_cost_ms,
                static_cast<unsigned long long>(plan.predicted_candidates),
                plan.selectivity * 100.0);
  plan.reason = buf;
  return plan;
}

}  // namespace fielddb

#ifndef FIELDDB_PLAN_PLANNER_H_
#define FIELDDB_PLAN_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/interval.h"
#include "common/simd/interval_filter.h"
#include "index/subfield.h"
#include "index/value_index.h"
#include "plan/cost_model.h"

namespace fielddb {

/// The two physical shapes a field value query can execute as:
///  - kFusedScan: one pass over every store page, testing and estimating
///    each cell in place (the paper's LinearScan execution, available to
///    every method);
///  - kIndexedFilter: FilterOp (index search for candidate runs) then
///    ScanOp over just those runs (the paper's filter -> fetch ->
///    estimate pipeline).
enum class PlanKind {
  kFusedScan,
  kIndexedFilter,
};

const char* PlanKindName(PlanKind kind);

/// How the planner picks between the plan kinds. kAuto is the cost-based
/// default; the forced modes exist for differential tests, benches, and
/// the CLI (`fielddb_cli plan --mode ...`). Forcing the index on a
/// LinearScan database still yields a fused scan — there is no index to
/// force.
enum class PlannerMode {
  kAuto,
  kForceScan,
  kForceIndex,
};

const char* PlannerModeName(PlannerMode mode);

/// The planner's verdict on admitting one more query into a shared scan
/// group (see QueryPlanner::CostSharedScan).
struct SharedScanDecision {
  /// True when executing the widened group as one fused sweep is
  /// predicted no more expensive than the group and the candidate
  /// executing separately.
  bool share = false;
  /// Predicted cost of one sweep over the widened envelope.
  double shared_cost_ms = 0.0;
  /// Predicted cost of the group's envelope and the candidate running
  /// as two independent queries (each under its own best plan).
  double isolated_cost_ms = 0.0;
  std::string reason;
};

/// The planner's decision for one query: the chosen kind, the predicted
/// page patterns and disk-model costs of both alternatives, and a
/// human-readable reason. Flows into trace spans, ExplainResult, and the
/// `fielddb_cli plan` subcommand.
struct PhysicalPlan {
  PlanKind kind = PlanKind::kFusedScan;
  /// Candidate cells the filter step is predicted to produce (exact for
  /// subfield tables and in-memory zone maps; scaled for the strided
  /// probe on very large stores). 0 when no probe ran (LinearScan,
  /// forced scan).
  uint64_t predicted_candidates = 0;
  /// Predicted candidate runs (seek count of the fetch).
  uint64_t predicted_runs = 0;
  /// predicted_candidates / num_cells.
  double selectivity = 0.0;
  PagePattern scan_pattern;
  PagePattern index_pattern;  // filter descent + candidate fetch
  double scan_cost_ms = 0.0;
  double index_cost_ms = 0.0;
  /// Disk-model cost of the *chosen* kind.
  double predicted_cost_ms = 0.0;
  /// True when a selectivity probe ran for this plan. LinearScan
  /// databases and forced scans never probe, so their
  /// predicted_candidates == 0 means "unknown", not "empty".
  bool probed = false;
  /// True when the probe used the strided zone-map sample (stores above
  /// kExactProbeCells): predicted_candidates may then undercount, so a
  /// zero prediction is not proof of an empty answer. The shard router
  /// keys its skip decision on this — a shard may be skipped only when
  /// its probe was exact and predicted zero candidates (or its value
  /// hull misses the query entirely).
  bool probe_sampled = false;
  std::string reason;
};

/// The cost-based access-path selector. Pure function of the immutable
/// post-build index state: selectivity comes from the subfield table
/// (I-Hilbert, I-Quadtree) or the in-memory zone-map sidecar (the other
/// methods) — cheap, no page I/O — and both alternatives are priced with
/// the paper's disk model. Deterministic and independent of buffer-pool
/// state, so warm and cold runs of the same query read the same logical
/// pages, concurrent threads decide identically, and a reopened snapshot
/// plans exactly like the original.
class QueryPlanner {
 public:
  /// `subfields` may be null (methods without a partition). Both
  /// pointers must outlive the planner.
  QueryPlanner(const ValueIndex* index, const std::vector<Subfield>* subfields,
               PlanCostModel cost = PlanCostModel{});

  PhysicalPlan Plan(const ValueInterval& query,
                    PlannerMode mode = PlannerMode::kAuto) const;

  /// Share-vs-isolate costing for the executor's shared-scan grouping:
  /// should `candidate` join a group whose members' hull is
  /// `group_envelope`? Prices the widened envelope's single sweep (the
  /// group executes as one pass whose I/O is the envelope's plan)
  /// against the group and candidate running separately, using the same
  /// zero-I/O selectivity probes and disk model as Plan — deterministic
  /// and buffer-state independent, so grouping decisions are
  /// reproducible. Shares on ties: the fused sweep also saves the
  /// per-query fixed costs the model does not price.
  SharedScanDecision CostSharedScan(const ValueInterval& group_envelope,
                                    const ValueInterval& candidate,
                                    PlannerMode mode = PlannerMode::kAuto)
      const;

  /// The selectivity probe alone: predicted candidate runs + count for
  /// `query`. Exposed for tests and the CLI.
  uint64_t PredictCandidates(const ValueInterval& query,
                             std::vector<PosRange>* runs) const;

  StoreShape shape() const;
  const PlanCostModel& cost_model() const { return cost_; }

  /// Stores at or below this many cells are probed with the exact
  /// zone-map filter; larger ones use the strided sample (see
  /// CellStore::ProbeZoneMap) so planning stays sublinear.
  static constexpr uint64_t kExactProbeCells = uint64_t{1} << 20;

 private:
  struct Selectivity {
    uint64_t candidates = 0;
    uint64_t runs = 0;
    /// Fraction of the index's entries (subfields or cells) the filter
    /// is predicted to touch — drives the tree-descent cost estimate.
    double entry_fraction = 0.0;
    bool sampled = false;
  };

  Selectivity Probe(const ValueInterval& query,
                    std::vector<PosRange>* runs) const;
  PagePattern FilterPattern(const Selectivity& sel) const;

  const ValueIndex* index_;
  const std::vector<Subfield>* subfields_;
  PlanCostModel cost_;
};

}  // namespace fielddb

#endif  // FIELDDB_PLAN_PLANNER_H_

#include "plan/planner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/trace_buffer.h"

namespace fielddb {

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kFusedScan:
      return "fused_scan";
    case PlanKind::kIndexedFilter:
      return "indexed_filter";
  }
  return "unknown";
}

const char* PlannerModeName(PlannerMode mode) {
  switch (mode) {
    case PlannerMode::kAuto:
      return "auto";
    case PlannerMode::kForceScan:
      return "force_scan";
    case PlannerMode::kForceIndex:
      return "force_index";
  }
  return "unknown";
}

QueryPlanner::QueryPlanner(const ValueIndex* index,
                           const std::vector<Subfield>* subfields,
                           PlanCostModel cost)
    : index_(index), subfields_(subfields), cost_(cost) {}

StoreShape QueryPlanner::shape() const {
  const CellStore& store = index_->cell_store();
  StoreShape sh;
  sh.num_cells = store.size();
  sh.cells_per_page = store.cells_per_page();
  sh.store_pages = store.num_pages();
  return sh;
}

QueryPlanner::Selectivity QueryPlanner::Probe(
    const ValueInterval& query, std::vector<PosRange>* runs) const {
  Selectivity sel;
  runs->clear();
  const CellStore& store = index_->cell_store();
  if (subfields_ != nullptr) {
    // Subfield methods: the filter returns exactly the subfields whose
    // interval intersects the query, so walking the in-memory table
    // predicts the candidate runs perfectly — O(#subfields), no I/O.
    uint64_t matched = 0;
    for (const Subfield& sf : *subfields_) {
      if (sf.end <= sf.start || !sf.interval.Intersects(query)) continue;
      ++matched;
      if (!runs->empty() && sf.start <= runs->back().end) {
        runs->back().end = std::max(runs->back().end, sf.end);
      } else {
        runs->push_back(PosRange{sf.start, sf.end});
      }
    }
    sel.candidates = TotalRangeLength(*runs);
    sel.runs = runs->size();
    sel.entry_fraction =
        subfields_->empty()
            ? 0.0
            : static_cast<double>(matched) / subfields_->size();
    return sel;
  }
  // Per-cell methods (I-All, Row-IP): the index's entries are the
  // records' own intervals, so the zone-map sidecar predicts the filter
  // output exactly. Above kExactProbeCells, fall back to the strided
  // sample to keep planning sublinear in the store size.
  if (store.size() <= kExactProbeCells) {
    store.FilterZoneMap(query, runs);
    sel.candidates = TotalRangeLength(*runs);
    sel.runs = runs->size();
  } else {
    const uint64_t stride =
        (store.size() + kExactProbeCells - 1) / kExactProbeCells;
    const CellStore::ZoneProbe probe = store.ProbeZoneMap(query, stride);
    sel.sampled = true;
    sel.candidates =
        std::min<uint64_t>(store.size(), probe.matched * stride);
    sel.runs = std::max<uint64_t>(probe.run_starts,
                                  probe.matched > 0 ? 1 : 0);
  }
  sel.entry_fraction =
      store.size() > 0
          ? static_cast<double>(sel.candidates) / store.size()
          : 0.0;
  return sel;
}

PagePattern QueryPlanner::FilterPattern(const Selectivity& sel) const {
  PagePattern p;
  const IndexBuildInfo& info = index_->build_info();
  if (index_->method() == IndexMethod::kRowIp) {
    // Row-IP's filter scans a min-ordered prefix of every row's
    // directory; bound it by the whole directory (a contiguous record
    // store laid out after the cell store).
    const uint64_t cell_pages = index_->cell_store().num_pages();
    const uint64_t dir_pages =
        info.store_pages > cell_pages ? info.store_pages - cell_pages : 0;
    p.pages = dir_pages;
    if (dir_pages > 0) {
      p.random_reads = 1;
      p.sequential_reads = dir_pages - 1;
    }
    return p;
  }
  if (info.tree_nodes == 0) return p;
  // R*-tree search: the root-to-leaf descent plus the subtrees the query
  // interval spreads into — roughly the matched fraction of the tree.
  // For I-Hilbert the tree is small and this stays a handful of pages;
  // for I-All on a wide interval it approaches the whole (large) tree,
  // which is exactly the paper's Fig. 11 collapse.
  const uint64_t spread = static_cast<uint64_t>(
      std::ceil(static_cast<double>(info.tree_nodes) * sel.entry_fraction));
  p.pages = std::min<uint64_t>(info.tree_nodes, info.tree_height + spread);
  p.random_reads = p.pages;  // tree nodes are scattered: every read seeks
  return p;
}

uint64_t QueryPlanner::PredictCandidates(const ValueInterval& query,
                                         std::vector<PosRange>* runs) const {
  return Probe(query, runs).candidates;
}

SharedScanDecision QueryPlanner::CostSharedScan(
    const ValueInterval& group_envelope, const ValueInterval& candidate,
    PlannerMode mode) const {
  SharedScanDecision d;
  const ValueInterval widened = ValueInterval::Hull(group_envelope, candidate);
  d.shared_cost_ms = Plan(widened, mode).predicted_cost_ms;
  d.isolated_cost_ms = Plan(group_envelope, mode).predicted_cost_ms +
                       Plan(candidate, mode).predicted_cost_ms;
  d.share = d.shared_cost_ms <= d.isolated_cost_ms;
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "%s: widened sweep %.2f ms %s separate %.2f ms",
                d.share ? "share" : "isolate", d.shared_cost_ms,
                d.share ? "<=" : ">", d.isolated_cost_ms);
  d.reason = buf;
  return d;
}

PhysicalPlan QueryPlanner::Plan(const ValueInterval& query,
                                PlannerMode mode) const {
  PhysicalPlan plan;
  const StoreShape sh = shape();
  plan.scan_pattern = cost_.ScanPattern(sh);
  plan.scan_cost_ms = cost_.CostMs(plan.scan_pattern);

  if (index_->method() == IndexMethod::kLinearScan) {
    plan.kind = PlanKind::kFusedScan;
    plan.predicted_cost_ms = plan.scan_cost_ms;
    plan.reason = "LinearScan: no value index, fused scan is the only plan";
    return plan;
  }
  if (mode == PlannerMode::kForceScan) {
    plan.kind = PlanKind::kFusedScan;
    plan.predicted_cost_ms = plan.scan_cost_ms;
    plan.reason = "forced: fused scan";
    return plan;
  }

  std::vector<PosRange> runs;
  Selectivity sel;
  {
    // The probe is the only part of planning whose cost scales with the
    // index (zone-map walk / subfield-table scan); give it its own span
    // so planner time is attributable when the trace buffer is on.
    TraceScope probe_span("plan.probe", "plan");
    sel = Probe(query, &runs);
    probe_span.set_items(sel.candidates);
  }
  plan.probed = true;
  plan.probe_sampled = sel.sampled;
  plan.predicted_candidates = sel.candidates;
  plan.predicted_runs = sel.runs;
  plan.selectivity =
      sh.num_cells > 0
          ? static_cast<double>(sel.candidates) / sh.num_cells
          : 0.0;
  plan.index_pattern = FilterPattern(sel);
  plan.index_pattern += sel.sampled
                            ? cost_.ApproxFetchPattern(sh, sel.candidates,
                                                       sel.runs)
                            : cost_.FetchPattern(sh, runs);
  plan.index_cost_ms = cost_.CostMs(plan.index_pattern);

  if (mode == PlannerMode::kForceIndex) {
    plan.kind = PlanKind::kIndexedFilter;
    plan.predicted_cost_ms = plan.index_cost_ms;
    plan.reason = "forced: indexed filter+fetch";
    return plan;
  }

  const bool index_wins = plan.index_cost_ms < plan.scan_cost_ms;
  plan.kind = index_wins ? PlanKind::kIndexedFilter : PlanKind::kFusedScan;
  plan.predicted_cost_ms =
      index_wins ? plan.index_cost_ms : plan.scan_cost_ms;
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "auto: %s (index %.2f ms %s scan %.2f ms; est. %llu "
                "candidates, %.2f%% selectivity)",
                index_wins ? "indexed filter+fetch" : "fused scan",
                plan.index_cost_ms, index_wins ? "<" : ">=",
                plan.scan_cost_ms,
                static_cast<unsigned long long>(sel.candidates),
                plan.selectivity * 100.0);
  plan.reason = buf;
  return plan;
}

}  // namespace fielddb

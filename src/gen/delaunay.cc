#include "gen/delaunay.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace fielddb {

bool InCircumcircle(Point2 a, Point2 b, Point2 c, Point2 p) {
  // Standard 3x3 determinant predicate; positive for p strictly inside
  // when (a, b, c) is counter-clockwise.
  const double ax = a.x - p.x, ay = a.y - p.y;
  const double bx = b.x - p.x, by = b.y - p.y;
  const double cx = c.x - p.x, cy = c.y - p.y;
  const double det =
      (ax * ax + ay * ay) * (bx * cy - cx * by) -
      (bx * bx + by * by) * (ax * cy - cx * ay) +
      (cx * cx + cy * cy) * (ax * by - bx * ay);
  return det > 0.0;
}

namespace {

struct WorkTriangle {
  std::array<uint32_t, 3> v;
  bool alive = true;
};

using Edge = std::pair<uint32_t, uint32_t>;

Edge MakeEdge(uint32_t a, uint32_t b) {
  return a < b ? Edge{a, b} : Edge{b, a};
}

}  // namespace

StatusOr<std::vector<IndexTriangle>> DelaunayTriangulate(
    const std::vector<Point2>& points) {
  const uint32_t n = static_cast<uint32_t>(points.size());
  if (n < 3) {
    return Status::InvalidArgument("need at least 3 points");
  }

  Rect2 bounds = Rect2::Empty();
  for (const Point2& p : points) bounds.Extend(p);
  const double extent =
      std::max({bounds.Width(), bounds.Height(), kGeomEpsilon});

  // Reject near-duplicates: they create degenerate cavities.
  {
    std::vector<Point2> sorted = points;
    std::sort(sorted.begin(), sorted.end(), [](Point2 a, Point2 b) {
      return a.x < b.x || (a.x == b.x && a.y < b.y);
    });
    for (size_t i = 1; i < sorted.size(); ++i) {
      if (Distance(sorted[i - 1], sorted[i]) < 1e-9 * extent) {
        return Status::InvalidArgument("duplicate or near-duplicate points");
      }
    }
  }

  // Working point set: input points plus a super-triangle. The super
  // vertices are treated as *ideal points at infinity* in the in-circle
  // predicate (exact limit rules below), so their concrete positions only
  // matter for initial containment and orientation checks.
  std::vector<Point2> pts = points;
  const Point2 center = bounds.Center();
  const double r = 16.0 * extent;
  pts.push_back({center.x - 2.0 * r, center.y - r});
  pts.push_back({center.x + 2.0 * r, center.y - r});
  pts.push_back({center.x, center.y + 2.0 * r});
  const uint32_t s0 = n;

  std::vector<WorkTriangle> tris;
  tris.push_back({{s0, s0 + 1, s0 + 2}, true});

  const auto ccw = [&](std::array<uint32_t, 3>& t) {
    const Triangle2 tri{{pts[t[0]], pts[t[1]], pts[t[2]]}};
    if (tri.SignedArea() < 0) std::swap(t[1], t[2]);
  };

  // Unit directions of the ideal vertices (for the two-ideal-vertex
  // limit rule).
  const auto unit_dir = [&](uint32_t si) {
    const Point2 d = pts[si] - center;
    const double len = std::hypot(d.x, d.y);
    return Point2{d.x / len, d.y / len};
  };

  // In-circumdisk predicate with ideal-point limits. For a triangle with
  //  - 0 ideal vertices: the standard determinant;
  //  - 1 ideal vertex: its circumdisk degenerates to the open half-plane
  //    bounded by the line through the two real vertices, on the ideal
  //    vertex's side (the R -> infinity limit of the growing circle);
  //  - 2 ideal vertices: the half-plane through the single real vertex
  //    whose inward normal is the angular bisector of the two ideal
  //    directions;
  //  - 3 ideal vertices (the initial triangle): the whole plane.
  // These limits make the interior triangulation the exact Delaunay
  // triangulation of the real points, immune to the precision loss of
  // far-away finite super vertices.
  const auto in_disk = [&](const std::array<uint32_t, 3>& t, Point2 p) {
    uint32_t real[3], ideal[3];
    int nreal = 0, nideal = 0;
    for (const uint32_t vi : t) {
      if (vi >= n) {
        ideal[nideal++] = vi;
      } else {
        real[nreal++] = vi;
      }
    }
    if (nideal == 0) {
      return InCircumcircle(pts[t[0]], pts[t[1]], pts[t[2]], p);
    }
    if (nideal == 1) {
      const Point2 a = pts[real[0]], b = pts[real[1]];
      const Point2 s = pts[ideal[0]];
      const double side_p = Cross(b - a, p - a);
      const double side_s = Cross(b - a, s - a);
      return side_p * side_s > 0.0;
    }
    if (nideal == 2) {
      const Point2 a = pts[real[0]];
      const Point2 u = unit_dir(ideal[0]) + unit_dir(ideal[1]);
      return Dot(p - a, u) > 0.0;
    }
    return true;  // the initial all-ideal triangle contains everything
  };

  for (uint32_t pi = 0; pi < n; ++pi) {
    const Point2 p = pts[pi];
    // Cavity: every live triangle whose circumdisk contains p.
    std::map<Edge, int> edge_count;
    std::vector<size_t> bad;
    for (size_t ti = 0; ti < tris.size(); ++ti) {
      WorkTriangle& t = tris[ti];
      if (!t.alive) continue;
      if (in_disk(t.v, p)) {
        bad.push_back(ti);
        for (int e = 0; e < 3; ++e) {
          ++edge_count[MakeEdge(t.v[e], t.v[(e + 1) % 3])];
        }
      }
    }
    for (const size_t ti : bad) tris[ti].alive = false;
    // Boundary edges (those shared by exactly one bad triangle) fan out
    // to the new point.
    for (const auto& [edge, count] : edge_count) {
      if (count != 1) continue;
      std::array<uint32_t, 3> t{edge.first, edge.second, pi};
      ccw(t);
      const Triangle2 tri{{pts[t[0]], pts[t[1]], pts[t[2]]}};
      if (tri.Area() < 1e-18 * extent * extent) continue;
      tris.push_back({t, true});
    }
    // Compact occasionally so the dead-triangle list doesn't dominate.
    if (tris.size() > 4 * n) {
      std::vector<WorkTriangle> live;
      live.reserve(tris.size());
      for (const WorkTriangle& t : tris) {
        if (t.alive) live.push_back(t);
      }
      tris = std::move(live);
    }
  }

  std::vector<IndexTriangle> result;
  for (const WorkTriangle& t : tris) {
    if (!t.alive) continue;
    if (t.v[0] >= n || t.v[1] >= n || t.v[2] >= n) continue;  // super
    result.push_back(IndexTriangle{t.v});
  }
  if (result.empty()) {
    return Status::InvalidArgument("points are collinear");
  }
  return result;
}

}  // namespace fielddb

#include "gen/noise_tin.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "gen/delaunay.h"

namespace fielddb {

namespace {

struct Corridor {
  Point2 a;
  Point2 b;
};

double DistanceToSegment(Point2 p, Point2 a, Point2 b) {
  const Point2 ab = b - a;
  const double len2 = Dot(ab, ab);
  if (len2 <= 0.0) return Distance(p, a);
  const double t = std::clamp(Dot(p - a, ab) / len2, 0.0, 1.0);
  return Distance(p, a + t * ab);
}

}  // namespace

StatusOr<TinField> MakeUrbanNoiseTin(const NoiseTinOptions& options) {
  if (options.num_sites < 3) {
    return Status::InvalidArgument("need at least 3 sites");
  }
  Rng rng(options.seed);

  // Low-frequency base surface: a few random smooth bumps.
  struct Bump {
    Point2 c;
    double sigma;
    double weight;
  };
  std::vector<Bump> bumps(8);
  for (Bump& b : bumps) {
    b.c = {rng.NextDouble(), rng.NextDouble()};
    b.sigma = rng.NextDouble(0.15, 0.4);
    b.weight = rng.NextDouble(-1.0, 1.0);
  }
  std::vector<Corridor> corridors(options.num_corridors);
  for (Corridor& c : corridors) {
    c.a = {rng.NextDouble(), rng.NextDouble()};
    c.b = {rng.NextDouble(), rng.NextDouble()};
  }

  const auto noise_at = [&](Point2 p) {
    double s = 0.0;
    for (const Bump& b : bumps) {
      const double d = Distance(p, b.c);
      s += b.weight * std::exp(-d * d / (2.0 * b.sigma * b.sigma));
    }
    // Map the bump sum (roughly [-2, 2]) into the ambient dB range.
    const double u = std::clamp((s + 2.0) / 4.0, 0.0, 1.0);
    double db = options.base_min_db +
                u * (options.base_max_db - options.base_min_db);
    for (const Corridor& c : corridors) {
      const double d = DistanceToSegment(p, c.a, c.b);
      if (d < options.corridor_width) {
        db += options.corridor_gain_db *
              (1.0 - d / options.corridor_width);
      }
    }
    return db;
  };

  std::vector<Point2> sites(options.num_sites);
  // Four domain corners keep the triangulation covering the unit square.
  sites[0] = {0, 0};
  sites[1] = {1, 0};
  sites[2] = {0, 1};
  sites[3] = {1, 1};
  for (uint32_t i = 4; i < options.num_sites; ++i) {
    sites[i] = {rng.NextDouble(), rng.NextDouble()};
  }

  StatusOr<std::vector<IndexTriangle>> tris = DelaunayTriangulate(sites);
  if (!tris.ok()) return tris.status();

  std::vector<TinVertex> vertices(sites.size());
  for (size_t i = 0; i < sites.size(); ++i) {
    vertices[i] = TinVertex{sites[i], noise_at(sites[i])};
  }
  std::vector<TinTriangle> triangles;
  triangles.reserve(tris->size());
  for (const IndexTriangle& t : *tris) {
    triangles.push_back(TinTriangle{t.v});
  }
  return TinField::Create(std::move(vertices), std::move(triangles));
}

}  // namespace fielddb

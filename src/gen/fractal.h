#ifndef FIELDDB_GEN_FRACTAL_H_
#define FIELDDB_GEN_FRACTAL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "field/grid_field.h"

namespace fielddb {

/// Parameters of the paper's synthetic terrain generator (Section 4.2):
/// 2-D random fractal DEM via the diamond-square algorithm with midpoint
/// displacement.
struct FractalOptions {
  /// Grid is 2^size_exp x 2^size_exp cells ((2^size_exp+1)^2 samples).
  int size_exp = 5;
  /// Roughness constant H in [0, 1]: the random-displacement range is
  /// scaled by 2^-H per pass, so H=1 gives very smooth terrain and H=0
  /// something quite jagged (the paper sweeps H in Fig. 11).
  double roughness_h = 0.5;
  uint64_t seed = 42;
  /// Heights start in [-amplitude, amplitude] (the paper normalizes to
  /// [-1, 1]).
  double amplitude = 1.0;
};

/// Generates the (n+1)x(n+1) height samples of a diamond-square fractal,
/// n = 2^size_exp, row-major. Deterministic in the seed.
std::vector<double> DiamondSquare(const FractalOptions& options);

/// Convenience: wraps DiamondSquare samples in a GridField over the unit
/// square.
StatusOr<GridField> MakeFractalField(const FractalOptions& options);

/// The "real terrain" stand-in (see DESIGN.md substitutions): a seeded
/// 512x512 fractal DEM with H = 0.7, the autocorrelation regime of real
/// topography — same resolution and cell model as the paper's USGS
/// Roseburg DEM.
StatusOr<GridField> MakeRoseburgLikeTerrain(uint64_t seed = 1972);

}  // namespace fielddb

#endif  // FIELDDB_GEN_FRACTAL_H_

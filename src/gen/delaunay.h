#ifndef FIELDDB_GEN_DELAUNAY_H_
#define FIELDDB_GEN_DELAUNAY_H_

#include <array>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"

namespace fielddb {

/// A triangle of a triangulation, as indices into the input point array.
struct IndexTriangle {
  std::array<uint32_t, 3> v;
};

/// Delaunay-triangulates `points` with the Bowyer–Watson incremental
/// algorithm. Triangles are returned with counter-clockwise orientation
/// and satisfy the empty-circumcircle property (verified by a property
/// test). Needs at least 3 non-collinear points; near-duplicate points
/// (closer than ~1e-9 of the extent) are rejected.
///
/// This is the substrate for synthesizing TIN fields comparable to the
/// paper's Lyon urban-noise TIN (~9000 triangles).
StatusOr<std::vector<IndexTriangle>> DelaunayTriangulate(
    const std::vector<Point2>& points);

/// True when `p` lies strictly inside the circumcircle of CCW triangle
/// (a, b, c). Exposed for the property tests.
bool InCircumcircle(Point2 a, Point2 b, Point2 c, Point2 p);

}  // namespace fielddb

#endif  // FIELDDB_GEN_DELAUNAY_H_

#include "gen/fractal.h"

#include <cmath>

#include "common/rng.h"

namespace fielddb {

std::vector<double> DiamondSquare(const FractalOptions& options) {
  const int n = 1 << options.size_exp;
  const int side = n + 1;
  std::vector<double> h(static_cast<size_t>(side) * side, 0.0);
  Rng rng(options.seed);

  const auto at = [&](int i, int j) -> double& {
    return h[static_cast<size_t>(j) * side + i];
  };

  double range = options.amplitude;
  // Initial random heights at the four corners.
  at(0, 0) = rng.NextDouble(-range, range);
  at(n, 0) = rng.NextDouble(-range, range);
  at(0, n) = rng.NextDouble(-range, range);
  at(n, n) = rng.NextDouble(-range, range);

  const double scale = std::pow(2.0, -options.roughness_h);
  for (int step = n; step > 1; step /= 2) {
    const int half = step / 2;
    // Diamond step: centers of all squares get the 4-corner average plus
    // a random offset.
    for (int j = half; j < side; j += step) {
      for (int i = half; i < side; i += step) {
        const double avg = (at(i - half, j - half) + at(i + half, j - half) +
                            at(i - half, j + half) + at(i + half, j + half)) /
                           4.0;
        at(i, j) = avg + rng.NextDouble(-range, range);
      }
    }
    // Square step: the remaining midpoints get the average of their
    // (up to four) axis neighbors plus a random offset.
    for (int j = 0; j < side; j += half) {
      const int i0 = (j / half) % 2 == 0 ? half : 0;
      for (int i = i0; i < side; i += step) {
        double sum = 0.0;
        int count = 0;
        if (i - half >= 0) { sum += at(i - half, j); ++count; }
        if (i + half < side) { sum += at(i + half, j); ++count; }
        if (j - half >= 0) { sum += at(i, j - half); ++count; }
        if (j + half < side) { sum += at(i, j + half); ++count; }
        at(i, j) = sum / count + rng.NextDouble(-range, range);
      }
    }
    range *= scale;
  }
  return h;
}

StatusOr<GridField> MakeFractalField(const FractalOptions& options) {
  if (options.size_exp < 1 || options.size_exp > 14) {
    return Status::InvalidArgument("size_exp must be in [1, 14]");
  }
  if (options.roughness_h < 0.0 || options.roughness_h > 1.0) {
    return Status::InvalidArgument("roughness H must be in [0, 1]");
  }
  const uint32_t n = uint32_t{1} << options.size_exp;
  return GridField::Create(n, n, Rect2{{0, 0}, {1, 1}},
                           DiamondSquare(options));
}

StatusOr<GridField> MakeRoseburgLikeTerrain(uint64_t seed) {
  FractalOptions options;
  options.size_exp = 9;  // 512 x 512 cells, like the USGS DEM
  options.roughness_h = 0.7;
  options.seed = seed;
  return MakeFractalField(options);
}

}  // namespace fielddb

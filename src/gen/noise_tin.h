#ifndef FIELDDB_GEN_NOISE_TIN_H_
#define FIELDDB_GEN_NOISE_TIN_H_

#include <cstdint>

#include "common/status.h"
#include "field/tin_field.h"

namespace fielddb {

/// Parameters for the synthetic urban-noise TIN (the Lyon-data stand-in,
/// see DESIGN.md substitutions).
struct NoiseTinOptions {
  /// Number of measurement sites; ~2x this many triangles result, so the
  /// default matches the paper's "about 9000 triangles".
  uint32_t num_sites = 4600;
  uint64_t seed = 69;
  /// Ambient noise level range (dB) of the smooth city-wide surface.
  double base_min_db = 40.0;
  double base_max_db = 70.0;
  /// High-noise corridors ("boulevards") superimposed on the base
  /// surface; each raises levels by up to `corridor_gain_db` within
  /// `corridor_width` of its axis.
  int num_corridors = 6;
  double corridor_gain_db = 25.0;
  double corridor_width = 0.04;
};

/// Builds a TIN field of noise levels: random sites over the unit square,
/// Delaunay-triangulated, with values from a smooth low-frequency surface
/// plus localized corridors — spatially continuous like a real measured
/// noise map, with hot regions a ">80 dB" query isolates.
StatusOr<TinField> MakeUrbanNoiseTin(const NoiseTinOptions& options = {});

}  // namespace fielddb

#endif  // FIELDDB_GEN_NOISE_TIN_H_

#ifndef FIELDDB_GEN_MONOTONIC_H_
#define FIELDDB_GEN_MONOTONIC_H_

#include <cstdint>

#include "common/status.h"
#include "field/grid_field.h"

namespace fielddb {

/// The paper's synthetic monotonic DEM (Section 4.3): w(x, y) = x + y on
/// a cols x rows grid over the unit square. Every value appears along an
/// anti-diagonal, so value locality equals spatial locality exactly — the
/// friendliest possible case for subfield grouping.
StatusOr<GridField> MakeMonotonicField(uint32_t cols, uint32_t rows);

}  // namespace fielddb

#endif  // FIELDDB_GEN_MONOTONIC_H_

#include "gen/monotonic.h"

namespace fielddb {

StatusOr<GridField> MakeMonotonicField(uint32_t cols, uint32_t rows) {
  if (cols == 0 || rows == 0) {
    return Status::InvalidArgument("grid must have at least one cell");
  }
  std::vector<double> samples(static_cast<size_t>(cols + 1) * (rows + 1));
  for (uint32_t j = 0; j <= rows; ++j) {
    for (uint32_t i = 0; i <= cols; ++i) {
      const double x = static_cast<double>(i) / cols;
      const double y = static_cast<double>(j) / rows;
      samples[static_cast<size_t>(j) * (cols + 1) + i] = x + y;
    }
  }
  return GridField::Create(cols, rows, Rect2{{0, 0}, {1, 1}},
                           std::move(samples));
}

}  // namespace fielddb

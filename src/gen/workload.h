#ifndef FIELDDB_GEN_WORKLOAD_H_
#define FIELDDB_GEN_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/interval.h"

namespace fielddb {

/// The paper's query workload (Section 4): for each `Qinterval` — the
/// query-interval length as a fraction of the normalized value space —
/// 200 random interval value queries. Qinterval = 0 yields exact-value
/// queries ("find all regions where the value equals w").
struct WorkloadOptions {
  double qinterval_fraction = 0.02;
  uint32_t num_queries = 200;
  uint64_t seed = 7;
};

/// Generates interval queries uniformly positioned inside `value_range`.
/// Query length = qinterval_fraction * range length; the start point is
/// uniform in [min, max - length].
std::vector<ValueInterval> GenerateValueQueries(
    const ValueInterval& value_range, const WorkloadOptions& options);

}  // namespace fielddb

#endif  // FIELDDB_GEN_WORKLOAD_H_

#include "gen/workload.h"

#include <algorithm>

#include "common/rng.h"

namespace fielddb {

std::vector<ValueInterval> GenerateValueQueries(
    const ValueInterval& value_range, const WorkloadOptions& options) {
  std::vector<ValueInterval> queries;
  if (value_range.IsEmpty()) return queries;
  Rng rng(options.seed);
  const double len =
      std::clamp(options.qinterval_fraction, 0.0, 1.0) * value_range.Length();
  queries.reserve(options.num_queries);
  for (uint32_t i = 0; i < options.num_queries; ++i) {
    const double start =
        rng.NextDouble(value_range.min, value_range.max - len);
    queries.push_back(ValueInterval{start, start + len});
  }
  return queries;
}

}  // namespace fielddb

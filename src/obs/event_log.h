#ifndef FIELDDB_OBS_EVENT_LOG_H_
#define FIELDDB_OBS_EVENT_LOG_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace fielddb {

/// Structured operational event log: append-only JSONL, one
/// self-describing JSON object per line. Where metrics answer "how
/// much" and traces answer "where did the time go", the event log
/// answers "what happened" — slow queries (with the chosen plan and
/// predicted-vs-observed cost), recovery outcomes, corruption
/// fallbacks, and WAL mode transitions — in a form log pipelines can
/// ingest directly.
///
/// Every line carries:
///   {"v": <schema version>, "seq": <per-log sequence>,
///    "ts_ms": <unix wall-clock ms>, "type": "<event type>", ...fields}
/// Bump kSchemaVersion when a field changes meaning or type; adding
/// fields is backward-compatible and does not bump it.
///
/// Durability: the file is opened O_APPEND|O_CREAT and each Append is
/// a single write(2) of one complete line, so concurrent appenders
/// (and a crash mid-run) can truncate at most the final line, never
/// interleave or corrupt earlier ones. On rotation the outgoing file
/// is fsync'd before it is renamed to "<path>.1", so rotated history
/// is durable even if the process dies immediately after.
///
/// Isolation: the log writes through its own file descriptor, never
/// through PageFile/BufferPool — obs I/O cannot recurse into the
/// fault-injection decorator and never counts into query IoStats
/// (tests/event_log_test.cc pins this invariant).
///
/// Thread safety: Append is internally synchronized; one EventLog may
/// be shared by every query thread of a FieldDatabase.
class EventLog {
 public:
  static constexpr int kSchemaVersion = 1;

  struct Options {
    /// Rotate (fsync + rename to "<path>.1" + reopen) once the live
    /// file exceeds this many bytes. 0 disables rotation.
    uint64_t rotate_bytes = 64ull << 20;
  };

  /// One event under construction. Field order is preserved in the
  /// output line. Values are rendered as native JSON types.
  class Event {
   public:
    explicit Event(std::string_view type) : type_(type) {}
    Event& Add(std::string_view key, std::string_view value);
    Event& Add(std::string_view key, const char* value) {
      return Add(key, std::string_view(value));
    }
    Event& Add(std::string_view key, double value);
    Event& Add(std::string_view key, uint64_t value);
    Event& Add(std::string_view key, int64_t value);
    Event& Add(std::string_view key, int value) {
      return Add(key, static_cast<int64_t>(value));
    }
    Event& Add(std::string_view key, bool value);
    /// Adds a pre-rendered JSON value verbatim (object/array/number).
    Event& AddRawJson(std::string_view key, std::string_view json);

    const std::string& type() const { return type_; }

   private:
    friend class EventLog;
    std::string type_;
    // key -> already-JSON-rendered value, in insertion order.
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  ~EventLog();
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Opens (creating if absent) the JSONL file at `path` for appending.
  static StatusOr<std::unique_ptr<EventLog>> Open(std::string path,
                                                  Options options);
  static StatusOr<std::unique_ptr<EventLog>> Open(std::string path);

  /// Serializes and appends one event as a single line. Thread-safe.
  Status Append(const Event& event);

  /// Flushes and fsyncs the live file (rotation fsyncs automatically).
  Status Sync();

  const std::string& path() const { return path_; }
  uint64_t events_appended() const;
  uint64_t rotations() const;
  uint64_t bytes_written() const;

 private:
  EventLog(std::string path, Options options)
      : path_(std::move(path)), options_(options) {}
  Status OpenFileLocked();
  Status RotateLocked();

  const std::string path_;
  const Options options_;

  mutable std::mutex mu_;
  int fd_ = -1;
  uint64_t live_bytes_ = 0;  // size of the live (unrotated) file
  uint64_t seq_ = 0;
  uint64_t events_appended_ = 0;
  uint64_t rotations_ = 0;
  uint64_t bytes_written_ = 0;
};

}  // namespace fielddb

#endif  // FIELDDB_OBS_EVENT_LOG_H_

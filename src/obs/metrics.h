#ifndef FIELDDB_OBS_METRICS_H_
#define FIELDDB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fielddb {

/// Process-wide metrics for the observability layer. Design goals, in
/// order: (1) recording must be cheap and safe from any thread — the
/// query engine runs concurrent readers, so every hot update is a
/// relaxed atomic RMW (fetch_add for integers, a CAS loop for the
/// doubles); no recording is ever lost, and readers (an exporter
/// thread) see torn-free values. The registry mutex is touched only at
/// registration and export time.
/// (2) Instruments are identified by dotted names
/// ("storage.pool.read_latency_us") and exported as Prometheus-style
/// text or JSON. (3) Everything can be disabled globally so benchmarks
/// can measure the instrumentation overhead itself (see
/// bench/harness.cc).

namespace metrics_internal {
/// Storage for the global enable flag; use MetricsRegistry::enabled().
/// Lives here so the instruments' inline fast paths can test it.
extern std::atomic<bool> g_metrics_enabled;
inline bool Enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}
}  // namespace metrics_internal

/// Monotonic event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    if (!metrics_internal::Enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) {
    if (!metrics_internal::Enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// HDR-style latency/size histogram: geometric major buckets (powers of
/// two) split into 32 linear sub-buckets each, so any recorded value
/// lands in a bucket within ~3% of its magnitude — accurate enough for
/// p50/p90/p99 while using a fixed 1152 * 8 bytes of storage and a
/// handful of relaxed atomic RMWs per Record (safe under concurrent
/// recorders). Values are clamped to
/// [1, 2^40); sub-unit values all count as 1 (record latencies in a
/// unit fine enough that 1 is "instant", e.g. microseconds).
///
/// Resolution contract (pinned by tests/metrics_test.cc): values below
/// 2^kSubBits get exact single-value buckets, and above that the
/// relative bucket width is 2^-kSubBits ≈ 3.1% — so the sub-100µs
/// latencies of zone-map-only plans (recorded in microseconds by
/// db.query_wall_us) spread across dozens of distinct buckets instead
/// of collapsing into the first few.
class Histogram {
 public:
  static constexpr int kSubBits = 5;  // 32 sub-buckets per octave
  static constexpr int kMaxOctave = 40;
  static constexpr int kNumBuckets = ((kMaxOctave - kSubBits + 1) << kSubBits);

  void Record(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Largest recorded value, exact (not bucketized). 0 when empty.
  double max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const;

  /// Value at percentile `p` in [0, 100] (bucket midpoint; 0 when
  /// empty). Accurate to the sub-bucket width, i.e. ~3% relative.
  double Percentile(double p) const;

  void Reset();

  /// Maps a clamped value to its bucket index; exposed for tests.
  static int BucketIndex(uint64_t n);
  /// Midpoint of bucket `idx`'s value range.
  static double BucketMidpoint(int idx);

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// Name -> instrument map. Instruments are created on first lookup and
/// never destroyed while the registry lives, so callers may cache the
/// returned pointers (every instrumented subsystem does). A name must
/// be used consistently as one kind; requesting an existing name as a
/// different kind returns a distinct instrument (the export suffixes
/// kinds, so they cannot collide).
class MetricsRegistry {
 public:
  /// The process-wide registry every subsystem registers into.
  static MetricsRegistry& Default();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// One scalar instrument's value at a point in time — the unit the
  /// time-series sampler (obs/sampler.h) snapshots each tick.
  enum class InstrumentKind { kCounter, kGauge };
  struct ScalarSample {
    std::string name;
    InstrumentKind kind;
    double value;
  };
  /// Every counter and gauge, name-sorted (counters first). Histograms
  /// are excluded: their per-tick derivative is not meaningful as one
  /// scalar; sample their _count via the paired counter instead.
  std::vector<ScalarSample> SnapshotScalars() const;

  /// Prometheus-style exposition text: counters and gauges as single
  /// samples, histograms as summaries with p50/p90/p99 quantiles plus
  /// _sum/_count/_max. Dotted names are sanitized ('.' -> '_') and
  /// prefixed with "fielddb_".
  std::string ToPrometheusText() const;

  /// The same snapshot as JSON:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,
  /// mean,p50,p90,p99,max}}}.
  std::string ToJson() const;

  /// Human-oriented snapshot grouped by subsystem: instruments sharing
  /// a dotted prefix ("storage.pool.*", "storage.wal.*", "db.*") are
  /// rendered under one heading, histograms as p50/p99/max one-liners.
  /// This is what `fielddb_cli stats` (and stats --watch) prints.
  std::string ToGroupedText() const;

  /// Zeroes every instrument (pointers stay valid). For tests and
  /// benchmark calibration.
  void Reset();

  /// Globally enables/disables recording (export still works). Off, an
  /// instrument update is one relaxed load and a branch — this is what
  /// the bench harness toggles to measure metrics overhead.
  static void set_enabled(bool enabled);
  static bool enabled();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace fielddb

#endif  // FIELDDB_OBS_METRICS_H_

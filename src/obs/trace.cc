#include "obs/trace.h"

#include <cstdio>

#include "obs/json.h"
#include "obs/trace_buffer.h"

namespace fielddb {

const TraceSpan* QueryTrace::Find(std::string_view name) const {
  for (const TraceSpan& s : spans_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

double QueryTrace::TotalWallSeconds() const {
  double total = 0.0;
  for (const TraceSpan& s : spans_) total += s.wall_seconds;
  return total;
}

IoStats QueryTrace::TotalIo() const {
  IoStats total;
  for (const TraceSpan& s : spans_) total += s.io;
  return total;
}

std::string QueryTrace::ToString() const {
  std::string out = "trace\n";
  char buf[256];
  for (size_t i = 0; i < spans_.size(); ++i) {
    const TraceSpan& s = spans_[i];
    const char* branch = (i + 1 == spans_.size()) ? "`-" : "|-";
    std::snprintf(buf, sizeof(buf),
                  "%s %-9s %9.3f ms  logical=%llu physical=%llu "
                  "sequential=%llu items=%llu%s%s\n",
                  branch, s.name.c_str(), s.wall_seconds * 1000.0,
                  static_cast<unsigned long long>(s.io.logical_reads),
                  static_cast<unsigned long long>(s.io.physical_reads),
                  static_cast<unsigned long long>(s.io.sequential_reads),
                  static_cast<unsigned long long>(s.items),
                  s.detail.empty() ? "" : "  ", s.detail.c_str());
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "= total     %9.3f ms  logical=%llu physical=%llu\n",
                TotalWallSeconds() * 1000.0,
                static_cast<unsigned long long>(TotalIo().logical_reads),
                static_cast<unsigned long long>(TotalIo().physical_reads));
  out += buf;
  return out;
}

std::string QueryTrace::ToJson() const {
  std::string out = "{\"spans\": [";
  for (size_t i = 0; i < spans_.size(); ++i) {
    const TraceSpan& s = spans_[i];
    if (i > 0) out += ", ";
    out += "{\"name\": ";
    JsonAppendString(&out, s.name);
    out += ", \"wall_ms\": ";
    JsonAppendDouble(&out, s.wall_seconds * 1000.0);
    out += ", \"logical_reads\": " + std::to_string(s.io.logical_reads);
    out += ", \"physical_reads\": " + std::to_string(s.io.physical_reads);
    out += ", \"sequential_reads\": " + std::to_string(s.io.sequential_reads);
    out += ", \"items\": " + std::to_string(s.items);
    if (!s.detail.empty()) {
      out += ", \"detail\": ";
      JsonAppendString(&out, s.detail);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

namespace {

/// Span-family category for the Chrome trace export, derived from the
/// span's dotted name ("wal.scan" -> "wal", "recovery"/"verify" ->
/// "recovery", "plan*" -> "plan", everything else is a query phase).
const char* CategoryForSpanName(const char* name) {
  const std::string_view n(name);
  if (n.substr(0, 3) == "wal") return "wal";
  if (n == "recovery" || n == "verify") return "recovery";
  if (n.substr(0, 4) == "plan") return "plan";
  return "query";
}

}  // namespace

ScopedSpan::ScopedSpan(QueryTrace* trace, const char* name,
                       const IoStats* live_io)
    : trace_(trace),
      live_io_(live_io),
      name_(name),
      buffer_active_(TraceBuffer::enabled()) {
  if (trace_ == nullptr && !buffer_active_) return;
  started_ = true;
  if (trace_ != nullptr) {
    span_.name = name;
    if (live_io_ != nullptr) io_start_ = *live_io_;
  }
  t0_ = std::chrono::steady_clock::now();
}

void ScopedSpan::Finish() {
  if (!started_ || done_) return;
  done_ = true;
  double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
          .count() -
      deduct_;
  if (wall < 0) wall = 0;
  if (buffer_active_) {
    TraceBuffer& tb = TraceBuffer::Global();
    const uint64_t dur_ns = static_cast<uint64_t>(wall * 1e9);
    tb.Record(name_, CategoryForSpanName(name_), tb.TimestampNs(t0_),
              dur_ns, span_.items);
  }
  if (trace_ != nullptr) {
    span_.wall_seconds = wall;
    if (live_io_ != nullptr) span_.io = *live_io_ - io_start_;
    trace_->AddSpan(std::move(span_));
    trace_ = nullptr;
  }
}

}  // namespace fielddb

#include "obs/trace_buffer.h"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "obs/json.h"

namespace fielddb {

namespace trace_internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace trace_internal

namespace {

// Next thread id handed to a freshly created ring. Ids are small dense
// integers (1, 2, 3, ...) so the Chrome trace reads naturally; they
// are never reused within a process.
std::atomic<uint32_t> g_next_tid{1};

}  // namespace

TraceBuffer::TraceBuffer() : epoch_(std::chrono::steady_clock::now()) {}

TraceBuffer& TraceBuffer::Global() {
  static TraceBuffer* buffer = new TraceBuffer();
  return *buffer;
}

void TraceBuffer::set_enabled(bool enabled) {
  trace_internal::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

void TraceBuffer::set_ring_capacity(size_t capacity) {
  if (capacity < 2) capacity = 2;
  ring_capacity_.store(std::bit_ceil(capacity), std::memory_order_relaxed);
}

size_t TraceBuffer::ring_capacity() const {
  return ring_capacity_.load(std::memory_order_relaxed);
}

uint64_t TraceBuffer::NowNs() const {
  return TimestampNs(std::chrono::steady_clock::now());
}

uint64_t TraceBuffer::TimestampNs(
    std::chrono::steady_clock::time_point tp) const {
  if (tp < epoch_) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(tp - epoch_)
          .count());
}

TraceBuffer::Ring* TraceBuffer::RingForThisThread() {
  // One ring per (thread, buffer) for the buffer's whole lifetime. The
  // registry mutex is touched once per thread, at ring creation; the
  // ring itself outlives the thread (it stays exportable after the
  // thread exits, which is what a post-run trace dump wants).
  thread_local Ring* ring = nullptr;
  thread_local const TraceBuffer* ring_owner = nullptr;
  if (ring == nullptr || ring_owner != this) {
    std::lock_guard<std::mutex> lock(registry_mu_);
    rings_.push_back(std::make_unique<Ring>(
        g_next_tid.fetch_add(1, std::memory_order_relaxed),
        ring_capacity_.load(std::memory_order_relaxed)));
    ring = rings_.back().get();
    ring_owner = this;
  }
  return ring;
}

void TraceBuffer::Record(const char* name, const char* category,
                         uint64_t ts_ns, uint64_t dur_ns, uint64_t items) {
  Ring* ring = RingForThisThread();
  const uint64_t h = ring->head.load(std::memory_order_relaxed);
  Slot& s = ring->slots[h & (ring->capacity - 1)];
  // Seqlock write protocol: mark the slot in-progress (odd), publish
  // the fields, then stamp it stable for generation h (even). All
  // accesses are atomics, so a racing reader sees no UB — at worst it
  // observes a non-matching stamp and skips the slot. The protocol is
  // deliberately fence-free (GCC's TSan cannot instrument standalone
  // fences): each field store is a release, so (a) the in-progress
  // stamp cannot sink below any field store, and (b) a reader whose
  // acquire field load observes a generation-h value synchronizes with
  // that store and is then guaranteed to see seq >= 2h+1 on re-check,
  // rejecting the torn copy. Release/acquire on the fields compiles to
  // plain loads/stores on x86, so the hot path is unchanged.
  s.seq.store(2 * h + 1, std::memory_order_relaxed);
  s.name.store(name, std::memory_order_release);
  s.category.store(category, std::memory_order_release);
  s.ts_ns.store(ts_ns, std::memory_order_release);
  s.dur_ns.store(dur_ns, std::memory_order_release);
  s.items.store(items, std::memory_order_release);
  s.seq.store(2 * h + 2, std::memory_order_release);
  ring->head.store(h + 1, std::memory_order_release);
}

std::vector<TraceEvent> TraceBuffer::Snapshot() const {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const auto& ring : rings_) {
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    const uint64_t floor = ring->floor.load(std::memory_order_acquire);
    uint64_t begin = head > ring->capacity ? head - ring->capacity : 0;
    begin = std::max(begin, floor);
    for (uint64_t i = begin; i < head; ++i) {
      const Slot& s = ring->slots[i & (ring->capacity - 1)];
      if (s.seq.load(std::memory_order_acquire) != 2 * i + 2) continue;
      // Acquire field loads pair with the writer's release field stores:
      // if any load observes a newer generation's value, the writer's
      // in-progress stamp happens-before the re-check below, which then
      // sees a mismatched seq and rejects the torn copy. The acquire
      // loads also keep the re-check from being hoisted above the copy.
      TraceEvent e;
      e.name = s.name.load(std::memory_order_acquire);
      e.category = s.category.load(std::memory_order_acquire);
      e.tid = ring->tid;
      e.ts_ns = s.ts_ns.load(std::memory_order_acquire);
      e.dur_ns = s.dur_ns.load(std::memory_order_acquire);
      e.items = s.items.load(std::memory_order_acquire);
      // The slot may have been overwritten while we copied it; only
      // keep the copy if the generation stamp is unchanged.
      if (s.seq.load(std::memory_order_relaxed) != 2 * i + 2) continue;
      out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_ns < b.ts_ns;
            });
  return out;
}

uint64_t TraceBuffer::total_recorded() const {
  uint64_t total = 0;
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const auto& ring : rings_) {
    total += ring->head.load(std::memory_order_relaxed) -
             ring->floor.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t TraceBuffer::total_dropped() const {
  uint64_t dropped = 0;
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const auto& ring : rings_) {
    const uint64_t head = ring->head.load(std::memory_order_relaxed);
    const uint64_t floor = ring->floor.load(std::memory_order_relaxed);
    const uint64_t recorded = head - floor;
    if (recorded > ring->capacity) dropped += recorded - ring->capacity;
  }
  return dropped;
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const auto& ring : rings_) {
    // Rewind the retained window to "now": events below the floor are
    // neither exported nor counted. Only the owner thread appends, so
    // a concurrent Record may land one event past the floor — that is
    // fine, it is simply retained.
    ring->floor.store(ring->head.load(std::memory_order_relaxed),
                      std::memory_order_release);
  }
}

std::string TraceBuffer::ExportChromeTrace() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  char buf[64];
  auto append_u64 = [&buf, &out](uint64_t v) {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    out += buf;
  };
  // Process/thread metadata so Perfetto labels the tracks.
  out += "\n  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
         "\"tid\": 0, \"args\": {\"name\": \"fielddb\"}}";
  first = false;
  for (const TraceEvent& e : events) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"name\": ";
    JsonAppendString(&out, e.name == nullptr ? "" : e.name);
    out += ", \"cat\": ";
    JsonAppendString(&out, e.category == nullptr ? "" : e.category);
    // Chrome trace timestamps/durations are microseconds; fractional
    // values keep sub-microsecond spans visible.
    out += ", \"ph\": \"X\", \"ts\": ";
    JsonAppendDouble(&out, static_cast<double>(e.ts_ns) / 1000.0);
    out += ", \"dur\": ";
    JsonAppendDouble(&out, static_cast<double>(e.dur_ns) / 1000.0);
    out += ", \"pid\": 1, \"tid\": ";
    append_u64(e.tid);
    if (e.items != 0) {
      out += ", \"args\": {\"items\": ";
      append_u64(e.items);
      out += "}";
    }
    out += "}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\", \"otherData\": "
         "{\"schema\": \"fielddb-trace-v2\", \"dropped_events\": ";
  append_u64(total_dropped());
  out += "}}\n";
  return out;
}

Status TraceBuffer::WriteChromeTrace(const std::string& path) const {
  const std::string json = ExportChromeTrace();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("open " + path);
  const size_t n = std::fwrite(json.data(), 1, json.size(), f);
  const bool write_ok = n == json.size();
  const bool close_ok = std::fclose(f) == 0;
  if (!write_ok || !close_ok) return Status::IOError("write " + path);
  return Status::OK();
}

}  // namespace fielddb

#include "obs/event_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "obs/json.h"
#include "obs/metrics.h"

namespace fielddb {

namespace {

struct EventLogMetrics {
  Counter* appended;
  Counter* rotations;
  Counter* append_errors;
  static EventLogMetrics& Get() {
    static EventLogMetrics m = [] {
      auto& reg = MetricsRegistry::Default();
      return EventLogMetrics{reg.GetCounter("obs.events_appended"),
                             reg.GetCounter("obs.event_log_rotations"),
                             reg.GetCounter("obs.event_log_append_errors")};
    }();
    return m;
  }
};

uint64_t WallClockMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

EventLog::Event& EventLog::Event::Add(std::string_view key,
                                      std::string_view value) {
  std::string rendered;
  JsonAppendString(&rendered, value);
  fields_.emplace_back(std::string(key), std::move(rendered));
  return *this;
}

EventLog::Event& EventLog::Event::Add(std::string_view key, double value) {
  std::string rendered;
  JsonAppendDouble(&rendered, value);
  fields_.emplace_back(std::string(key), std::move(rendered));
  return *this;
}

EventLog::Event& EventLog::Event::Add(std::string_view key, uint64_t value) {
  fields_.emplace_back(std::string(key), std::to_string(value));
  return *this;
}

EventLog::Event& EventLog::Event::Add(std::string_view key, int64_t value) {
  fields_.emplace_back(std::string(key), std::to_string(value));
  return *this;
}

EventLog::Event& EventLog::Event::Add(std::string_view key, bool value) {
  fields_.emplace_back(std::string(key), value ? "true" : "false");
  return *this;
}

EventLog::Event& EventLog::Event::AddRawJson(std::string_view key,
                                             std::string_view json) {
  fields_.emplace_back(std::string(key), std::string(json));
  return *this;
}

StatusOr<std::unique_ptr<EventLog>> EventLog::Open(std::string path) {
  return Open(std::move(path), Options());
}

StatusOr<std::unique_ptr<EventLog>> EventLog::Open(std::string path,
                                                   Options options) {
  std::unique_ptr<EventLog> log(new EventLog(std::move(path), options));
  std::lock_guard<std::mutex> lock(log->mu_);
  const Status s = log->OpenFileLocked();
  if (!s.ok()) return s;
  return log;
}

EventLog::~EventLog() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

Status EventLog::OpenFileLocked() {
  // O_APPEND makes each single-write(2) line atomic with respect to
  // other appenders and leaves at most a truncated final line after a
  // crash — the crash-safety contract the tests pin.
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
               0644);
  if (fd_ < 0) {
    return Status::IOError("event log open " + path_ + ": " +
                           std::strerror(errno));
  }
  const off_t size = ::lseek(fd_, 0, SEEK_END);
  live_bytes_ = size < 0 ? 0 : static_cast<uint64_t>(size);
  return Status::OK();
}

Status EventLog::RotateLocked() {
  // fsync-before-rename: once "<path>.1" exists it is fully durable.
  if (::fsync(fd_) != 0) {
    return Status::IOError("event log fsync " + path_ + ": " +
                           std::strerror(errno));
  }
  ::close(fd_);
  fd_ = -1;
  const std::string rotated = path_ + ".1";
  if (std::rename(path_.c_str(), rotated.c_str()) != 0) {
    return Status::IOError("event log rotate " + path_ + ": " +
                           std::strerror(errno));
  }
  ++rotations_;
  EventLogMetrics::Get().rotations->Increment();
  return OpenFileLocked();
}

Status EventLog::Append(const Event& event) {
  std::string line;
  line.reserve(160);
  line += "{\"v\": ";
  line += std::to_string(kSchemaVersion);

  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::FailedPrecondition("event log closed");
  line += ", \"seq\": " + std::to_string(seq_);
  line += ", \"ts_ms\": " + std::to_string(WallClockMs());
  line += ", \"type\": ";
  JsonAppendString(&line, event.type_);
  for (const auto& [key, value] : event.fields_) {
    line += ", ";
    JsonAppendString(&line, key);
    line += ": ";
    line += value;
  }
  line += "}\n";

  size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      EventLogMetrics::Get().append_errors->Increment();
      return Status::IOError("event log append " + path_ + ": " +
                             std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  ++seq_;
  ++events_appended_;
  live_bytes_ += line.size();
  bytes_written_ += line.size();
  EventLogMetrics::Get().appended->Increment();
  if (options_.rotate_bytes > 0 && live_bytes_ > options_.rotate_bytes) {
    return RotateLocked();
  }
  return Status::OK();
}

Status EventLog::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::FailedPrecondition("event log closed");
  if (::fsync(fd_) != 0) {
    return Status::IOError("event log fsync " + path_ + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

uint64_t EventLog::events_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_appended_;
}

uint64_t EventLog::rotations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rotations_;
}

uint64_t EventLog::bytes_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_written_;
}

}  // namespace fielddb

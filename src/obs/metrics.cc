#include "obs/metrics.h"

#include <bit>
#include <cmath>
#include <cstdio>

#include "obs/json.h"

namespace fielddb {

namespace metrics_internal {
std::atomic<bool> g_metrics_enabled{true};
}  // namespace metrics_internal

namespace {

/// Lock-free accumulate/max for atomic<double> (no fetch_add for
/// doubles pre-C++20): relaxed CAS loops, correct under any number of
/// concurrent recorders.
void AtomicAddDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + v,
                                   std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (cur < v && !a->compare_exchange_weak(cur, v,
                                              std::memory_order_relaxed)) {
  }
}

/// "storage.pool.read_latency_us" -> "fielddb_storage_pool_read_latency_us".
std::string PromName(const std::string& name) {
  std::string out = "fielddb_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out->append(buf);
}

}  // namespace

int Histogram::BucketIndex(uint64_t n) {
  // n is in [1, 2^kMaxOctave). Values below 2^kSubBits get exact
  // single-value buckets; above, each power-of-two octave is split into
  // 2^kSubBits linear sub-buckets.
  const int k = std::bit_width(n) - 1;
  if (k < kSubBits) return static_cast<int>(n);
  const int sub = static_cast<int>((n >> (k - kSubBits)) & ((1 << kSubBits) - 1));
  return ((k - kSubBits + 1) << kSubBits) + sub;
}

double Histogram::BucketMidpoint(int idx) {
  if (idx < (1 << kSubBits)) return idx;
  const int k = (idx >> kSubBits) + kSubBits - 1;
  const int sub = idx & ((1 << kSubBits) - 1);
  const double lower =
      std::ldexp(static_cast<double>((1 << kSubBits) + sub), k - kSubBits);
  const double width = std::ldexp(1.0, k - kSubBits);
  return lower + width / 2.0;
}

void Histogram::Record(double value) {
  if (!MetricsRegistry::enabled()) return;
  if (!std::isfinite(value)) return;
  uint64_t n = value <= 1.0 ? 1 : static_cast<uint64_t>(std::llround(value));
  const uint64_t top = (uint64_t{1} << kMaxOctave) - 1;
  if (n > top) n = top;
  buckets_[BucketIndex(n)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, value < 0 ? 0 : value);
  AtomicMaxDouble(&max_, value < 0 ? 0 : value);
}

double Histogram::mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::Percentile(double p) const {
  const uint64_t total = count();
  if (total == 0) return 0.0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(p / 100.0 *
                                                  static_cast<double>(total))));
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Never report beyond the true max (the top bucket spans past it).
      return std::min(BucketMidpoint(i), max());
    }
  }
  return max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    const std::string pn = PromName(name);
    out += "# TYPE " + pn + " counter\n" + pn + " " +
           std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string pn = PromName(name);
    out += "# TYPE " + pn + " gauge\n" + pn + " ";
    AppendDouble(&out, g->value());
    out += "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string pn = PromName(name);
    out += "# TYPE " + pn + " summary\n";
    for (const double q : {0.5, 0.9, 0.99}) {
      char qbuf[16];
      std::snprintf(qbuf, sizeof(qbuf), "%g", q);
      out += pn + "{quantile=\"" + qbuf + "\"} ";
      AppendDouble(&out, h->Percentile(q * 100.0));
      out += "\n";
    }
    out += pn + "_sum ";
    AppendDouble(&out, h->sum());
    out += "\n" + pn + "_count " + std::to_string(h->count()) + "\n";
    out += pn + "_max ";
    AppendDouble(&out, h->max());
    out += "\n";
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    JsonAppendString(&out, name);
    out += ": " + std::to_string(c->value());
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    JsonAppendString(&out, name);
    out += ": ";
    JsonAppendDouble(&out, g->value());
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    JsonAppendString(&out, name);
    out += ": {\"count\": " + std::to_string(h->count());
    out += ", \"sum\": ";
    JsonAppendDouble(&out, h->sum());
    out += ", \"mean\": ";
    JsonAppendDouble(&out, h->mean());
    out += ", \"p50\": ";
    JsonAppendDouble(&out, h->Percentile(50));
    out += ", \"p90\": ";
    JsonAppendDouble(&out, h->Percentile(90));
    out += ", \"p99\": ";
    JsonAppendDouble(&out, h->Percentile(99));
    out += ", \"max\": ";
    JsonAppendDouble(&out, h->max());
    out += "}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::vector<MetricsRegistry::ScalarSample> MetricsRegistry::SnapshotScalars()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ScalarSample> out;
  out.reserve(counters_.size() + gauges_.size());
  for (const auto& [name, c] : counters_) {
    out.push_back({name, InstrumentKind::kCounter,
                   static_cast<double>(c->value())});
  }
  for (const auto& [name, g] : gauges_) {
    out.push_back({name, InstrumentKind::kGauge, g->value()});
  }
  return out;
}

namespace {

/// Subsystem heading for a dotted instrument name: everything up to
/// the final component ("storage.pool.evictions" -> "storage.pool",
/// "db.value_queries" -> "db", undotted names -> "(root)").
std::string SubsystemOf(const std::string& name) {
  const size_t dot = name.rfind('.');
  return dot == std::string::npos ? "(root)" : name.substr(0, dot);
}

std::string LeafOf(const std::string& name) {
  const size_t dot = name.rfind('.');
  return dot == std::string::npos ? name : name.substr(dot + 1);
}

}  // namespace

std::string MetricsRegistry::ToGroupedText() const {
  // subsystem -> rendered "  leaf ... value" lines, ordered by kind
  // then name within a group (maps keep both sorted).
  std::map<std::string, std::string> groups;
  char buf[192];
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) {
      std::snprintf(buf, sizeof(buf), "  %-28s %20llu\n",
                    LeafOf(name).c_str(),
                    static_cast<unsigned long long>(c->value()));
      groups[SubsystemOf(name)] += buf;
    }
    for (const auto& [name, g] : gauges_) {
      std::snprintf(buf, sizeof(buf), "  %-28s %20.6g\n",
                    LeafOf(name).c_str(), g->value());
      groups[SubsystemOf(name)] += buf;
    }
    for (const auto& [name, h] : histograms_) {
      std::snprintf(buf, sizeof(buf),
                    "  %-28s count=%llu p50=%.6g p99=%.6g max=%.6g\n",
                    LeafOf(name).c_str(),
                    static_cast<unsigned long long>(h->count()),
                    h->Percentile(50), h->Percentile(99), h->max());
      groups[SubsystemOf(name)] += buf;
    }
  }
  std::string out;
  for (const auto& [subsystem, lines] : groups) {
    out += "[" + subsystem + "]\n" + lines;
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

void MetricsRegistry::set_enabled(bool enabled) {
  metrics_internal::g_metrics_enabled.store(enabled,
                                            std::memory_order_relaxed);
}

bool MetricsRegistry::enabled() { return metrics_internal::Enabled(); }

}  // namespace fielddb

#include "obs/report.h"

#include <algorithm>
#include <cstdio>

#include "obs/json.h"

namespace fielddb {

namespace {

void AppendWorkloadStatsJson(std::string* s, const WorkloadStats& ws,
                             const DiskModel& disk) {
  const auto field = [&](const char* name, double v) {
    s->push_back(',');
    s->push_back('"');
    s->append(name);
    s->append("\":");
    JsonAppendDouble(s, v);
  };
  s->append("\"num_queries\":");
  s->append(std::to_string(ws.num_queries));
  field("avg_wall_ms", ws.avg_wall_ms);
  field("p50_wall_ms", ws.p50_wall_ms);
  field("p90_wall_ms", ws.p90_wall_ms);
  field("p99_wall_ms", ws.p99_wall_ms);
  field("max_wall_ms", ws.max_wall_ms);
  field("avg_candidates", ws.avg_candidates);
  field("avg_answer_cells", ws.avg_answer_cells);
  field("avg_logical_reads", ws.avg_logical_reads);
  field("avg_physical_reads", ws.avg_physical_reads);
  field("avg_sequential_reads", ws.avg_sequential_reads);
  field("avg_random_reads", ws.avg_random_reads);
  field("avg_index_fallbacks", ws.avg_index_fallbacks);
  field("avg_read_retries", ws.avg_read_retries);
  field("avg_failed_reads", ws.avg_failed_reads);
  field("avg_disk_model_ms", ws.AvgDiskMs(disk));
}

void AppendBuildInfoJson(std::string* s, const IndexBuildInfo& b) {
  s->append("{\"num_cells\":");
  s->append(std::to_string(b.num_cells));
  s->append(",\"num_index_entries\":");
  s->append(std::to_string(b.num_index_entries));
  s->append(",\"num_subfields\":");
  s->append(std::to_string(b.num_subfields));
  s->append(",\"tree_height\":");
  s->append(std::to_string(b.tree_height));
  s->append(",\"tree_nodes\":");
  s->append(std::to_string(b.tree_nodes));
  s->append(",\"store_pages\":");
  s->append(std::to_string(b.store_pages));
  s->append(",\"build_seconds\":");
  JsonAppendDouble(s, b.build_seconds);
  s->push_back('}');
}

}  // namespace

std::string BenchReport::ToJson() const {
  std::string s = "{\"bench_id\":";
  JsonAppendString(&s, bench_id);
  s += ",\"title\":";
  JsonAppendString(&s, title);
  s += ",\"field_cells\":" + std::to_string(field_cells);
  s += ",\"value_range\":{\"min\":";
  JsonAppendDouble(&s, value_min);
  s += ",\"max\":";
  JsonAppendDouble(&s, value_max);
  s += "},\"num_queries\":" + std::to_string(num_queries);
  s += ",\"workload_seed\":" + std::to_string(workload_seed);
  s += ",\"metrics_overhead_pct\":";
  JsonAppendDouble(&s, metrics_overhead_pct);  // NaN -> null
  s += ",\"disk_model\":{\"seek_ms\":";
  JsonAppendDouble(&s, disk.seek_ms);
  s += ",\"transfer_ms_per_page\":";
  JsonAppendDouble(&s, disk.transfer_ms_per_page);
  s += "},\"series\":[";
  for (size_t i = 0; i < series.size(); ++i) {
    const BenchSeries& ser = series[i];
    if (i > 0) s += ',';
    s += "{\"method\":";
    JsonAppendString(&s, ser.method);
    s += ",\"build\":";
    AppendBuildInfoJson(&s, ser.build);
    s += ",\"points\":[";
    for (size_t j = 0; j < ser.points.size(); ++j) {
      if (j > 0) s += ',';
      s += "{\"qinterval\":";
      JsonAppendDouble(&s, ser.points[j].qinterval);
      s += ',';
      AppendWorkloadStatsJson(&s, ser.points[j].stats, disk);
      s += '}';
    }
    s += "]}";
  }
  s += "]}";
  return s;
}

Status BenchReport::WriteJson(const std::string& path) const {
  const std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != json.size() || !closed) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

void PrintBenchReport(const BenchReport& report) {
  for (const BenchSeries& ser : report.series) {
    const IndexBuildInfo& info = ser.build;
    std::printf(
        "[build] %-11s entries=%-8llu subfields=%-7llu tree_h=%u "
        "tree_nodes=%-6llu store_pages=%-6llu build_s=%.2f\n",
        ser.method.c_str(),
        static_cast<unsigned long long>(info.num_index_entries),
        static_cast<unsigned long long>(info.num_subfields),
        info.tree_height, static_cast<unsigned long long>(info.tree_nodes),
        static_cast<unsigned long long>(info.store_pages),
        info.build_seconds);
  }

  // One table per quantity; rows are Qinterval points, columns methods.
  const auto table = [&](const char* suffix,
                         double (*cell)(const WorkloadStats&,
                                        const DiskModel&)) {
    std::printf("\n%-10s", "Qinterval");
    for (const BenchSeries& ser : report.series) {
      std::printf(" %14s", (ser.method + suffix).c_str());
    }
    std::printf("\n");
    const size_t rows =
        report.series.empty() ? 0 : report.series[0].points.size();
    for (size_t i = 0; i < rows; ++i) {
      std::printf("%-10.3f", report.series[0].points[i].qinterval);
      for (const BenchSeries& ser : report.series) {
        std::printf(" %14.4f",
                    i < ser.points.size()
                        ? cell(ser.points[i].stats, report.disk)
                        : 0.0);
      }
      std::printf("\n");
    }
  };

  table("(ms)", [](const WorkloadStats& ws, const DiskModel&) {
    return ws.avg_wall_ms;
  });
  // Average pages read per query: the quantity that drives the wall-time
  // shapes on a real disk.
  table("(pg)", [](const WorkloadStats& ws, const DiskModel&) {
    return ws.avg_logical_reads;
  });
  // Simulated 2002-disk I/O time (seek cost for random pages, transfer
  // only for sequential ones). This is the regime the paper measured in:
  // LinearScan reads the store sequentially while index candidates are
  // scattered, which is exactly what makes I-All *lose* to LinearScan on
  // high-selectivity workloads (Fig. 11.a) even though it reads fewer
  // pages.
  table("(io_ms)", [](const WorkloadStats& ws, const DiskModel& disk) {
    return ws.AvgDiskMs(disk);
  });

  // Headline ratios when both series are present.
  const BenchSeries* scan = nullptr;
  const BenchSeries* hilbert = nullptr;
  for (const BenchSeries& ser : report.series) {
    if (ser.method == IndexMethodName(IndexMethod::kLinearScan)) {
      scan = &ser;
    }
    if (ser.method == IndexMethodName(IndexMethod::kIHilbert)) {
      hilbert = &ser;
    }
  }
  if (scan != nullptr && hilbert != nullptr) {
    double min_ratio = 1e300, max_ratio = 0;
    double min_io = 1e300, max_io = 0;
    const size_t rows = std::min(scan->points.size(),
                                 hilbert->points.size());
    for (size_t i = 0; i < rows; ++i) {
      const WorkloadStats& s = scan->points[i].stats;
      const WorkloadStats& h = hilbert->points[i].stats;
      if (h.avg_wall_ms > 0) {
        const double r = s.avg_wall_ms / h.avg_wall_ms;
        min_ratio = std::min(min_ratio, r);
        max_ratio = std::max(max_ratio, r);
      }
      if (h.AvgDiskMs(report.disk) > 0) {
        const double r = s.AvgDiskMs(report.disk) / h.AvgDiskMs(report.disk);
        min_io = std::min(min_io, r);
        max_io = std::max(max_io, r);
      }
    }
    std::printf(
        "\nI-Hilbert speedup over LinearScan: wall %.1fx .. %.1fx, "
        "sim-disk %.1fx .. %.1fx\n",
        min_ratio, max_ratio, min_io, max_io);
  }
  if (!std::isnan(report.metrics_overhead_pct)) {
    std::printf("metrics overhead: %+.2f%% of query CPU time\n",
                report.metrics_overhead_pct);
  }
  std::printf("\n");
}

}  // namespace fielddb

#include "obs/sampler.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/json.h"

namespace fielddb {

namespace {

const char* KindName(MetricsRegistry::InstrumentKind kind) {
  return kind == MetricsRegistry::InstrumentKind::kCounter ? "counter"
                                                           : "gauge";
}

}  // namespace

MetricsSampler::MetricsSampler(MetricsRegistry* registry, Options options)
    : registry_(registry),
      options_(options),
      epoch_(std::chrono::steady_clock::now()) {}

MetricsSampler::MetricsSampler(MetricsRegistry* registry)
    : MetricsSampler(registry, Options()) {}

MetricsSampler::~MetricsSampler() { Stop(); }

double MetricsSampler::NowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void MetricsSampler::Start() {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (running_) return;
  stop_ = false;
  thread_ = std::thread([this] { ThreadLoop(); });
  running_ = true;
}

void MetricsSampler::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    if (!running_) return;
    stop_ = true;
    running_ = false;
    // Claim the thread while still holding the lock: a concurrent
    // Stop() must never observe running_ and join the same std::thread
    // twice (the second join is UB).
    to_join = std::move(thread_);
  }
  stop_cv_.notify_all();
  to_join.join();
}

bool MetricsSampler::running() const {
  std::lock_guard<std::mutex> lock(thread_mu_);
  return running_;
}

void MetricsSampler::ThreadLoop() {
  std::unique_lock<std::mutex> lock(thread_mu_);
  while (!stop_) {
    lock.unlock();
    SampleOnce();
    lock.lock();
    stop_cv_.wait_for(
        lock, std::chrono::duration<double, std::milli>(options_.period_ms),
        [this] { return stop_; });
  }
}

void MetricsSampler::SampleOnce(double now_ms_override) {
  const std::vector<MetricsRegistry::ScalarSample> scalars =
      registry_->SnapshotScalars();
  const double now_ms = now_ms_override >= 0 ? now_ms_override : NowMs();

  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& scalar : scalars) {
    SeriesState& state = series_[scalar.name];
    state.kind = scalar.kind;
    Sample s;
    s.t_ms = now_ms;
    s.value = scalar.value;
    if (state.has_prev && now_ms > state.prev_t_ms) {
      s.rate_per_sec = (scalar.value - state.prev_value) /
                       ((now_ms - state.prev_t_ms) / 1000.0);
    }
    if (state.ring.size() < options_.ring_capacity) {
      state.ring.push_back(s);
    } else {
      // Fixed-size ring: overwrite the oldest sample in place.
      state.ring[state.start] = s;
      state.start = (state.start + 1) % state.ring.size();
    }
    state.has_prev = true;
    state.prev_t_ms = now_ms;
    state.prev_value = scalar.value;
  }
  ++ticks_;
}

uint64_t MetricsSampler::ticks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ticks_;
}

std::map<std::string, MetricsSampler::Series> MetricsSampler::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, Series> out;
  for (const auto& [name, state] : series_) {
    Series series;
    series.kind = state.kind;
    series.samples.reserve(state.ring.size());
    for (size_t i = 0; i < state.ring.size(); ++i) {
      series.samples.push_back(
          state.ring[(state.start + i) % state.ring.size()]);
    }
    out.emplace(name, std::move(series));
  }
  return out;
}

std::vector<MetricsSampler::LatestRate> MetricsSampler::Latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LatestRate> out;
  out.reserve(series_.size());
  for (const auto& [name, state] : series_) {
    if (state.ring.empty()) continue;
    const size_t newest =
        state.ring.size() < options_.ring_capacity
            ? state.ring.size() - 1
            : (state.start + state.ring.size() - 1) % state.ring.size();
    out.push_back({name, state.kind, state.ring[newest].value,
                   state.ring[newest].rate_per_sec});
  }
  return out;
}

std::string MetricsSampler::ToJson() const {
  const std::map<std::string, Series> snapshot = Snapshot();
  std::string out =
      "{\"schema\": \"fielddb-sampler-v1\", \"period_ms\": ";
  JsonAppendDouble(&out, options_.period_ms);
  out += ", \"ticks\": " + std::to_string(ticks());
  out += ", \"series\": {";
  bool first_series = true;
  for (const auto& [name, series] : snapshot) {
    out += first_series ? "\n" : ",\n";
    first_series = false;
    out += "  ";
    JsonAppendString(&out, name);
    out += ": {\"kind\": \"";
    out += KindName(series.kind);
    out += "\", \"samples\": [";
    bool first_sample = true;
    for (const Sample& s : series.samples) {
      out += first_sample ? "" : ", ";
      first_sample = false;
      out += "{\"t_ms\": ";
      JsonAppendDouble(&out, s.t_ms);
      out += ", \"value\": ";
      JsonAppendDouble(&out, s.value);
      out += ", \"rate_per_sec\": ";
      JsonAppendDouble(&out, s.rate_per_sec);
      out += "}";
    }
    out += "]}";
  }
  out += "\n}}\n";
  return out;
}

Status MetricsSampler::WriteJson(const std::string& path) const {
  const std::string json = ToJson();
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("sampler open " + tmp + ": " +
                           std::strerror(errno));
  }
  size_t off = 0;
  while (off < json.size()) {
    const ssize_t n = ::write(fd, json.data() + off, json.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IOError("sampler write " + tmp + ": " +
                             std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  // fsync-before-rename: the destination either keeps its old contents
  // or atomically becomes the complete new dump, never a torn file.
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    return Status::IOError("sampler fsync " + tmp + ": " +
                           std::strerror(errno));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("sampler rename " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace fielddb

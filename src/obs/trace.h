#ifndef FIELDDB_OBS_TRACE_H_
#define FIELDDB_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "storage/io_stats.h"

namespace fielddb {

/// One phase of a query's execution. The engine records the paper's
/// three-step pipeline — "filter" (index search), "fetch" (candidate
/// retrieval from the clustered store) and "estimate" (inverse
/// interpolation over fetched cells) — but the model is generic: a span
/// is any named stretch of work with a wall time, the page I/O it
/// caused, and a phase-specific output cardinality.
struct TraceSpan {
  std::string name;
  double wall_seconds = 0.0;
  IoStats io;          // page traffic attributable to this span
  uint64_t items = 0;  // e.g. candidates for "filter", answers for "estimate"
  std::string detail;  // free-form annotation, e.g. "subfields=12"
};

/// An ordered list of spans attached to one query execution. Spans do
/// not overlap: their I/O deltas sum exactly to the query's IoStats
/// (asserted by tests/explain_test.cc), and their wall times sum to the
/// query wall time minus the untraced glue between phases.
class QueryTrace {
 public:
  void AddSpan(TraceSpan span) { spans_.push_back(std::move(span)); }

  const std::vector<TraceSpan>& spans() const { return spans_; }
  const TraceSpan* Find(std::string_view name) const;

  double TotalWallSeconds() const;
  IoStats TotalIo() const;

  void Clear() { spans_.clear(); }

  /// Human-readable tree, one line per span.
  std::string ToString() const;
  /// {"spans":[{"name":...,"wall_ms":...,"logical_reads":...,...}]}
  std::string ToJson() const;

 private:
  std::vector<TraceSpan> spans_;
};

/// RAII span recorder with two sinks. Snapshots the wall clock and
/// `*live_io` (a stable pointer into the live IoStats being mutated
/// underneath, e.g. BufferPool::stats()) at construction;
/// Finish()/destruction appends the deltas to the trace. A null
/// `trace` skips the per-query span list, so untraced query paths pay
/// one branch per phase — but when the global TraceBuffer
/// (obs/trace_buffer.h) is enabled, every span is *also* recorded
/// there regardless of `trace`, which is how the always-on trace-v2
/// layer sees plan/filter/fetch/estimate and recovery phases without
/// the caller opting in. `name` must be a string literal (the
/// TraceBuffer stores the pointer).
class ScopedSpan {
 public:
  ScopedSpan(QueryTrace* trace, const char* name, const IoStats* live_io);
  ~ScopedSpan() { Finish(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void set_items(uint64_t n) { span_.items = n; }
  void set_detail(std::string d) { span_.detail = std::move(d); }

  /// Moves `seconds` of this span's wall time out of it — used when a
  /// nested phase (e.g. "estimate" inside the fetch scan) is timed
  /// separately and reported as its own span.
  void DeductWallSeconds(double seconds) { deduct_ += seconds; }

  /// Records the span now (idempotent; also called by the destructor).
  void Finish();

 private:
  QueryTrace* trace_ = nullptr;
  const IoStats* live_io_ = nullptr;
  const char* name_ = nullptr;
  TraceSpan span_;
  IoStats io_start_;
  double deduct_ = 0.0;
  std::chrono::steady_clock::time_point t0_;
  bool started_ = false;
  bool buffer_active_ = false;  // TraceBuffer was enabled at start
  bool done_ = false;
};

}  // namespace fielddb

#endif  // FIELDDB_OBS_TRACE_H_

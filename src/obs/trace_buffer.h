#ifndef FIELDDB_OBS_TRACE_BUFFER_H_
#define FIELDDB_OBS_TRACE_BUFFER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace fielddb {

/// Trace v2: an always-on, process-wide span recorder. Where QueryTrace
/// (obs/trace.h) builds a per-query span list that the caller asked for
/// explicitly, TraceBuffer passively collects *every* instrumented span
/// in the process — query phases, WAL commits, buffer-pool evictions
/// and prefetches, executor queue waits, recovery phases — into
/// bounded per-thread ring buffers, and exports them as Chrome
/// trace-event JSON loadable in Perfetto (ui.perfetto.dev).
///
/// Design constraints, in order:
///  1. Recording must be cheap enough to leave on in production
///     (bench/bench_obs_overhead.cc pins the whole obs layer under 5%
///     on the Fig-8a workload). Disabled, a TraceScope is one relaxed
///     atomic load and a branch. Enabled, a record is two clock reads
///     plus a handful of relaxed atomic stores into a ring slot owned
///     by the recording thread — no locks, no allocation, no
///     cross-thread cache-line contention on the hot path.
///  2. Memory is bounded: each thread owns a fixed-capacity ring and
///     overwrites its own oldest events (drop-oldest). Drops are
///     counted exactly (total recorded minus ring capacity), never
///     silently.
///  3. Export may run concurrently with recorders and must be safe
///     (TSan-clean). Every slot field is an atomic and each slot
///     carries a seqlock-style generation stamp, so a reader that
///     races a wrap-around overwrite detects the torn slot and skips
///     it instead of reporting a frankenevent.
///
/// Span names and categories are `const char*` and must point at
/// static-storage strings (string literals): the ring stores the
/// pointer, not a copy.
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  uint32_t tid = 0;      // stable per-thread id assigned at ring creation
  uint64_t ts_ns = 0;    // start, nanoseconds since the buffer's epoch
  uint64_t dur_ns = 0;   // duration, nanoseconds
  uint64_t items = 0;    // span-specific cardinality (0 = unset)
};

class TraceBuffer {
 public:
  static constexpr size_t kDefaultRingCapacity = 8192;  // per thread

  /// The process-wide buffer every TraceScope records into.
  static TraceBuffer& Global();

  /// Globally enables/disables recording (export still works). The
  /// flag gates TraceScope's constructor, so a disabled process pays
  /// one relaxed load + branch per instrumented site.
  static void set_enabled(bool enabled);
  static bool enabled();

  /// Per-thread ring capacity, rounded up to a power of two. Affects
  /// rings created after the call (a thread's ring is created on its
  /// first Record); existing rings keep their size.
  void set_ring_capacity(size_t capacity);
  size_t ring_capacity() const;

  /// Appends one complete span to the calling thread's ring,
  /// overwriting the thread's oldest event once the ring is full.
  /// Wait-free for the recording thread.
  void Record(const char* name, const char* category, uint64_t ts_ns,
              uint64_t dur_ns, uint64_t items = 0);

  /// Nanoseconds since this buffer's epoch (process start, steady
  /// clock) — the timebase every event timestamp uses.
  uint64_t NowNs() const;
  /// Converts an already-captured steady_clock time point into the
  /// same timebase (for recorders that timed the span themselves).
  uint64_t TimestampNs(std::chrono::steady_clock::time_point tp) const;

  /// Copies out every retained event, oldest-first per thread. Safe
  /// concurrently with recorders; slots being overwritten mid-read are
  /// detected via their generation stamp and skipped (they count as
  /// dropped on the next Snapshot only if actually overwritten).
  std::vector<TraceEvent> Snapshot() const;

  /// Total events ever recorded / dropped (overwritten before export),
  /// summed across all thread rings.
  uint64_t total_recorded() const;
  uint64_t total_dropped() const;

  /// Drops all retained events and zeroes the recorded/dropped
  /// accounting. Rings stay registered (thread ids are stable).
  void Clear();

  /// Chrome trace-event JSON ("X" complete events, one pid, one tid
  /// per recording thread) — load the string or file directly in
  /// ui.perfetto.dev or chrome://tracing.
  std::string ExportChromeTrace() const;
  Status WriteChromeTrace(const std::string& path) const;

 private:
  // One ring slot. `seq` is 2*gen+1 while the owner writes generation
  // `gen` into the slot and 2*gen+2 once it is stable; a reader that
  // observes anything else for the generation it wants skips the slot.
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<const char*> category{nullptr};
    std::atomic<uint64_t> ts_ns{0};
    std::atomic<uint64_t> dur_ns{0};
    std::atomic<uint64_t> items{0};
  };

  struct Ring {
    explicit Ring(uint32_t tid_in, size_t capacity_in)
        : tid(tid_in),
          capacity(capacity_in),
          slots(std::make_unique<Slot[]>(capacity_in)) {}
    const uint32_t tid;
    const size_t capacity;  // power of two
    const std::unique_ptr<Slot[]> slots;
    // Next event number for this ring; events [max(0, head-capacity),
    // head) are retained, everything older was overwritten.
    std::atomic<uint64_t> head{0};
    // Event number Clear() rewound to; retained range starts no
    // earlier than this.
    std::atomic<uint64_t> floor{0};
  };

  TraceBuffer();
  Ring* RingForThisThread();

  mutable std::mutex registry_mu_;  // guards rings_ growth only
  std::vector<std::unique_ptr<Ring>> rings_;
  std::atomic<size_t> ring_capacity_{kDefaultRingCapacity};
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span for the global TraceBuffer. Construction snapshots the
/// clock when tracing is enabled; destruction records the completed
/// span. Cheap enough to leave in hot paths: the disabled cost is one
/// relaxed load and a branch.
class TraceScope {
 public:
  TraceScope(const char* name, const char* category)
      : name_(name), category_(category), active_(TraceBuffer::enabled()) {
    if (active_) t0_ = TraceBuffer::Global().NowNs();
  }
  ~TraceScope() {
    if (!active_) return;
    TraceBuffer& tb = TraceBuffer::Global();
    tb.Record(name_, category_, t0_, tb.NowNs() - t0_, items_);
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  void set_items(uint64_t n) { items_ = n; }
  bool active() const { return active_; }

 private:
  const char* name_;
  const char* category_;
  uint64_t t0_ = 0;
  uint64_t items_ = 0;
  const bool active_;
};

namespace trace_internal {
/// Storage for the global enable flag; use TraceBuffer::enabled().
extern std::atomic<bool> g_trace_enabled;
}  // namespace trace_internal

inline bool TraceBuffer::enabled() {
  return trace_internal::g_trace_enabled.load(std::memory_order_relaxed);
}

}  // namespace fielddb

#endif  // FIELDDB_OBS_TRACE_BUFFER_H_

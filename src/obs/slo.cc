#include "obs/slo.h"

#include <algorithm>
#include <limits>

#include "obs/json.h"

namespace fielddb {

SloTracker::SloTracker(std::vector<SloObjective> objectives) {
  if (objectives.empty()) objectives = DefaultQueryClasses();
  classes_.reserve(objectives.size());
  for (SloObjective& obj : objectives) {
    auto state = std::make_unique<ClassState>(std::move(obj));
    state->latency_ms = MetricsRegistry::Default().GetHistogram(
        "slo." + state->objective.query_class + ".latency_ms");
    classes_.push_back(std::move(state));
  }
}

std::vector<SloObjective> SloTracker::DefaultQueryClasses() {
  return {
      {"point", 0.001, 10.0, 0.99},
      {"narrow", 0.02, 50.0, 0.99},
      {"wide", std::numeric_limits<double>::infinity(), 250.0, 0.95},
  };
}

int SloTracker::ClassForWidthFraction(double width_frac) const {
  for (size_t i = 0; i < classes_.size(); ++i) {
    if (width_frac <= classes_[i]->objective.max_width_frac) {
      return static_cast<int>(i);
    }
  }
  return static_cast<int>(classes_.size()) - 1;
}

void SloTracker::Record(int class_index, double latency_ms) {
  if (class_index < 0 || class_index >= num_classes()) return;
  ClassState& state = *classes_[class_index];
  state.total.fetch_add(1, std::memory_order_relaxed);
  if (latency_ms > state.objective.target_ms) {
    state.violations.fetch_add(1, std::memory_order_relaxed);
  }
  state.latency_ms->Record(latency_ms);
}

std::vector<SloTracker::ClassSnapshot> SloTracker::Snapshot() {
  std::lock_guard<std::mutex> lock(window_mu_);
  std::vector<ClassSnapshot> out;
  out.reserve(classes_.size());
  for (const auto& state : classes_) {
    const SloObjective& obj = state->objective;
    ClassSnapshot snap;
    snap.query_class = obj.query_class;
    snap.target_ms = obj.target_ms;
    snap.target_fraction = obj.target_fraction;
    snap.total = state->total.load(std::memory_order_relaxed);
    snap.violations = state->violations.load(std::memory_order_relaxed);
    const double allowed = 1.0 - obj.target_fraction;
    if (snap.total > 0) {
      const double violation_frac =
          static_cast<double>(snap.violations) /
          static_cast<double>(snap.total);
      snap.compliance = 1.0 - violation_frac;
      snap.error_budget_remaining =
          allowed > 0 ? 1.0 - violation_frac / allowed
                      : (snap.violations == 0 ? 1.0 : -1.0);
    }
    // Burn rate over the window since the previous Snapshot.
    const uint64_t dt = snap.total - state->window_total;
    const uint64_t dv = snap.violations - state->window_violations;
    if (dt > 0 && allowed > 0) {
      snap.burn_rate =
          (static_cast<double>(dv) / static_cast<double>(dt)) / allowed;
    }
    state->window_total = snap.total;
    state->window_violations = snap.violations;
    snap.p50_ms = state->latency_ms->Percentile(50);
    snap.p90_ms = state->latency_ms->Percentile(90);
    snap.p99_ms = state->latency_ms->Percentile(99);
    snap.max_ms = state->latency_ms->max();
    out.push_back(std::move(snap));
  }
  return out;
}

std::string SloTracker::ToJson() {
  const std::vector<ClassSnapshot> snaps = Snapshot();
  std::string out = "{\"schema\": \"fielddb-slo-v1\", \"classes\": [";
  bool first = true;
  for (const ClassSnapshot& s : snaps) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"query_class\": ";
    JsonAppendString(&out, s.query_class);
    out += ", \"target_ms\": ";
    JsonAppendDouble(&out, s.target_ms);
    out += ", \"target_fraction\": ";
    JsonAppendDouble(&out, s.target_fraction);
    out += ", \"total\": " + std::to_string(s.total);
    out += ", \"violations\": " + std::to_string(s.violations);
    out += ", \"compliance\": ";
    JsonAppendDouble(&out, s.compliance);
    out += ", \"error_budget_remaining\": ";
    JsonAppendDouble(&out, s.error_budget_remaining);
    out += ", \"burn_rate\": ";
    JsonAppendDouble(&out, s.burn_rate);
    out += ", \"p50_ms\": ";
    JsonAppendDouble(&out, s.p50_ms);
    out += ", \"p90_ms\": ";
    JsonAppendDouble(&out, s.p90_ms);
    out += ", \"p99_ms\": ";
    JsonAppendDouble(&out, s.p99_ms);
    out += ", \"max_ms\": ";
    JsonAppendDouble(&out, s.max_ms);
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace fielddb

#ifndef FIELDDB_OBS_SAMPLER_H_
#define FIELDDB_OBS_SAMPLER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace fielddb {

/// Time-series sampler: a background thread that snapshots every
/// registry counter and gauge at a fixed period into per-series
/// fixed-size ring buffers, deriving deltas and per-second rates
/// between adjacent samples. This turns the registry's
/// point-in-time totals into the "QPS over the last minute" /
/// "eviction rate during the spike" views a dashboard needs, with
/// strictly bounded memory (ring_capacity samples per series).
///
/// The sampling tick takes the registry mutex only long enough to copy
/// scalar values (recorders never touch that mutex), so an active
/// sampler perturbs the hot path by nothing but cache traffic —
/// bench/bench_obs_overhead.cc measures the whole always-on layer,
/// sampler included, at under 5%.
class MetricsSampler {
 public:
  struct Options {
    double period_ms = 1000.0;
    /// Samples retained per series; the ring drops its oldest sample
    /// (default: 5 minutes of history at the default period).
    size_t ring_capacity = 300;
  };

  struct Sample {
    double t_ms = 0.0;   // milliseconds since sampler construction
    double value = 0.0;  // instrument value at t_ms
    /// Per-second rate of change since the previous retained sample;
    /// 0 for a series' first sample. For gauges this is still the
    /// derivative — callers that want the level read `value`.
    double rate_per_sec = 0.0;
  };

  struct Series {
    MetricsRegistry::InstrumentKind kind;
    std::vector<Sample> samples;  // oldest first, ≤ ring_capacity
  };

  MetricsSampler(MetricsRegistry* registry, Options options);
  explicit MetricsSampler(MetricsRegistry* registry);
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Starts/stops the background sampling thread. Both idempotent;
  /// the destructor stops implicitly.
  void Start();
  void Stop();
  bool running() const;

  /// Takes one sample synchronously on the calling thread — the unit
  /// the background thread loops, exposed for deterministic tests and
  /// for callers (fielddb_cli top) that drive the cadence themselves.
  /// `now_ms_override` >= 0 substitutes the sample timestamp, letting
  /// tests pin exact rate math.
  void SampleOnce(double now_ms_override = -1.0);

  uint64_t ticks() const;

  /// Copies out every series (name -> kind + retained samples).
  std::map<std::string, Series> Snapshot() const;

  /// The newest sample of each series, for live "top"-style display.
  struct LatestRate {
    std::string name;
    MetricsRegistry::InstrumentKind kind;
    double value;
    double rate_per_sec;
  };
  std::vector<LatestRate> Latest() const;

  /// {"schema":"fielddb-sampler-v1","period_ms":...,"series":{name:
  /// {"kind":"counter","samples":[{"t_ms":..,"value":..,"rate_per_sec":
  /// ..},...]}}}
  std::string ToJson() const;

  /// Crash-safe dump: writes to "<path>.tmp", fsyncs, then atomically
  /// renames over `path` — a crash mid-write never leaves a torn file
  /// at the destination.
  Status WriteJson(const std::string& path) const;

 private:
  struct SeriesState {
    MetricsRegistry::InstrumentKind kind;
    std::vector<Sample> ring;  // logical ring, oldest at `start`
    size_t start = 0;
    bool has_prev = false;
    double prev_t_ms = 0.0;
    double prev_value = 0.0;
  };

  void ThreadLoop();
  double NowMs() const;

  MetricsRegistry* const registry_;
  const Options options_;
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::map<std::string, SeriesState> series_;
  uint64_t ticks_ = 0;

  mutable std::mutex thread_mu_;  // guards thread_/stop_ transitions
  std::condition_variable stop_cv_;
  std::thread thread_;
  bool stop_ = false;
  bool running_ = false;
};

}  // namespace fielddb

#endif  // FIELDDB_OBS_SAMPLER_H_

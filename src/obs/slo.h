#ifndef FIELDDB_OBS_SLO_H_
#define FIELDDB_OBS_SLO_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace fielddb {

/// One latency objective: "target_fraction of `query_class` queries
/// finish within target_ms". The allowed violation fraction
/// (1 - target_fraction) is the class's error budget.
struct SloObjective {
  std::string query_class;
  /// Classification bound: a query whose value-interval width is at
  /// most this fraction of the field's value range belongs to the
  /// first class whose bound admits it (objectives are checked in
  /// order; use infinity for the catch-all last class).
  double max_width_frac = 0.0;
  double target_ms = 100.0;
  double target_fraction = 0.99;
};

/// Per-query-class SLO tracking for QueryExecutor: every completed
/// query is classified (by selectivity width) and recorded against its
/// class's latency objective. The tracker derives the three numbers an
/// operator actually pages on:
///
///   compliance             fraction of queries within the objective,
///                          over the tracker's lifetime;
///   error budget remaining 1 - (violation fraction / allowed
///                          fraction), clamped to [-inf, 1]: 1.0 means
///                          no violations, 0.0 means the budget is
///                          exactly spent, negative means the SLO is
///                          blown;
///   burn rate              violation fraction over the window since
///                          the previous Snapshot, divided by the
///                          allowed fraction: 1.0 burns the budget
///                          exactly at the sustainable pace, >1 burns
///                          faster (14.4 = the classic "1h of a 30-day
///                          budget per hour" alert threshold).
///
/// Latency distributions ride on the existing HDR histograms: each
/// class registers "slo.<class>.latency_ms" in the default registry,
/// so percentiles come from the same ~3%-accurate buckets as every
/// other latency metric and show up in stats/Prometheus for free.
///
/// Thread safety: Record is lock-free (relaxed atomic counters + the
/// histogram's atomic buckets); Snapshot takes a mutex only to advance
/// the burn-rate window.
class SloTracker {
 public:
  explicit SloTracker(std::vector<SloObjective> objectives);

  /// The default three-class ladder used by QueryExecutor when the
  /// caller supplies no objectives: "point" (width ≤ 0.1% of the value
  /// range, 10ms @ 99%), "narrow" (≤ 2%, 50ms @ 99%), "wide"
  /// (catch-all, 250ms @ 95%).
  static std::vector<SloObjective> DefaultQueryClasses();

  /// Index of the first class whose max_width_frac admits
  /// `width_frac`; the last class catches everything else.
  int ClassForWidthFraction(double width_frac) const;
  int num_classes() const { return static_cast<int>(classes_.size()); }
  const SloObjective& objective(int class_index) const {
    return classes_[class_index]->objective;
  }

  /// Records one completed query. Lock-free; safe from any thread.
  void Record(int class_index, double latency_ms);

  struct ClassSnapshot {
    std::string query_class;
    double target_ms = 0.0;
    double target_fraction = 0.0;
    uint64_t total = 0;
    uint64_t violations = 0;
    double compliance = 1.0;
    double error_budget_remaining = 1.0;
    double burn_rate = 0.0;
    double p50_ms = 0.0;
    double p90_ms = 0.0;
    double p99_ms = 0.0;
    double max_ms = 0.0;
  };

  /// Current state of every class. Advances the burn-rate window:
  /// burn_rate covers the queries recorded since the previous
  /// Snapshot call (0 when none).
  std::vector<ClassSnapshot> Snapshot();

  /// {"schema":"fielddb-slo-v1","classes":[{...ClassSnapshot...}]}
  std::string ToJson();

 private:
  struct ClassState {
    explicit ClassState(SloObjective obj) : objective(std::move(obj)) {}
    const SloObjective objective;
    std::atomic<uint64_t> total{0};
    std::atomic<uint64_t> violations{0};
    Histogram* latency_ms = nullptr;
    // Burn-rate window anchor (guarded by window_mu_).
    uint64_t window_total = 0;
    uint64_t window_violations = 0;
  };

  std::vector<std::unique_ptr<ClassState>> classes_;
  std::mutex window_mu_;
};

}  // namespace fielddb

#endif  // FIELDDB_OBS_SLO_H_

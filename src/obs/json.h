#ifndef FIELDDB_OBS_JSON_H_
#define FIELDDB_OBS_JSON_H_

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace fielddb {

/// Minimal JSON emission helpers shared by the observability exporters
/// (metrics snapshot, query traces, EXPLAIN output, bench telemetry).
/// Emission only — nothing in the library parses JSON.

inline void JsonAppendString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\t': out->append("\\t"); break;
      case '\r': out->append("\\r"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// Numbers render with %.10g; non-finite values (JSON has no NaN/Inf)
/// render as null so consumers fail loudly instead of mis-parsing.
inline void JsonAppendDouble(std::string* out, double v) {
  if (!std::isfinite(v)) {
    out->append("null");
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out->append(buf);
}

}  // namespace fielddb

#endif  // FIELDDB_OBS_JSON_H_

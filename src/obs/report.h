#ifndef FIELDDB_OBS_REPORT_H_
#define FIELDDB_OBS_REPORT_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/stats.h"
#include "index/value_index.h"

namespace fielddb {

/// Machine-readable benchmark telemetry. Every figure bench (and
/// `fielddb_cli bench`) funnels its results through a BenchReport: the
/// human tables printed to stdout and the `BENCH_<id>.json` file are two
/// renderings of the same struct, so they cannot drift apart. The JSON
/// schema is documented in DESIGN.md and validated by
/// tools/check_bench_json.py (run by the bench_smoke CTest).

/// One point of one series: a workload at a query-interval fraction.
struct BenchPoint {
  double qinterval = 0.0;
  WorkloadStats stats;
};

/// One method's sweep across the Qinterval axis.
struct BenchSeries {
  std::string method;
  IndexBuildInfo build;
  std::vector<BenchPoint> points;
};

struct BenchReport {
  /// Short stable id ("fig8a", "smoke"); names the output file
  /// BENCH_<bench_id>.json. Empty = don't write a file.
  std::string bench_id;
  std::string title;
  uint64_t field_cells = 0;
  double value_min = 0.0;
  double value_max = 0.0;
  uint32_t num_queries = 0;
  uint64_t workload_seed = 0;
  /// Measured cost of leaving the metrics registry enabled, as a percent
  /// of avg query wall time (same workload run with recording off, then
  /// on). Negative values are timing noise around zero; NaN = not
  /// measured (rendered as JSON null).
  double metrics_overhead_pct = std::numeric_limits<double>::quiet_NaN();
  DiskModel disk;
  std::vector<BenchSeries> series;

  std::string ToJson() const;
  /// Writes ToJson() to `path` (truncating).
  Status WriteJson(const std::string& path) const;
};

/// Prints the report the way the figure benches always have: build
/// lines, then one table per quantity (wall ms, avg pages, simulated
/// disk ms) with a Qinterval row per point, then the
/// I-Hilbert-vs-LinearScan speedup summary when both series are present.
void PrintBenchReport(const BenchReport& report);

}  // namespace fielddb

#endif  // FIELDDB_OBS_REPORT_H_

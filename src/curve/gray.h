#ifndef FIELDDB_CURVE_GRAY_H_
#define FIELDDB_CURVE_GRAY_H_

#include <cstdint>

#include "curve/curves.h"

namespace fielddb {

/// Binary-reflected Gray code of v.
inline uint64_t BinaryToGray(uint64_t v) { return v ^ (v >> 1); }

/// Inverse of BinaryToGray.
uint64_t GrayToBinary(uint64_t g);

/// The Gray-code curve of Faloutsos [6]: interleave the coordinate bits
/// (as Z-order does) and interpret the result as a Gray code; the curve
/// index is its binary rank. Consecutive indexes differ in one interleaved
/// bit, i.e. by one step in exactly one dimension at some scale.
class GrayCodeCurve final : public SpaceFillingCurve {
 public:
  explicit GrayCodeCurve(int order) : SpaceFillingCurve(order) {}

  CurveType type() const override { return CurveType::kGrayCode; }
  uint64_t Encode(uint32_t x, uint32_t y) const override;
  void Decode(uint64_t index, uint32_t* x, uint32_t* y) const override;
};

}  // namespace fielddb

#endif  // FIELDDB_CURVE_GRAY_H_

#include "curve/zorder.h"

namespace fielddb {

namespace {

// Spreads the low 32 bits of v so bit i lands at position 2*i.
uint64_t Spread(uint32_t v) {
  uint64_t x = v;
  x = (x | (x << 16)) & 0x0000FFFF0000FFFFULL;
  x = (x | (x << 8)) & 0x00FF00FF00FF00FFULL;
  x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0FULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

// Inverse of Spread: collects every other bit starting at bit 0.
uint32_t Compact(uint64_t x) {
  x &= 0x5555555555555555ULL;
  x = (x | (x >> 1)) & 0x3333333333333333ULL;
  x = (x | (x >> 2)) & 0x0F0F0F0F0F0F0F0FULL;
  x = (x | (x >> 4)) & 0x00FF00FF00FF00FFULL;
  x = (x | (x >> 8)) & 0x0000FFFF0000FFFFULL;
  x = (x | (x >> 16)) & 0x00000000FFFFFFFFULL;
  return static_cast<uint32_t>(x);
}

}  // namespace

uint64_t MortonEncode2D(uint32_t x, uint32_t y) {
  return Spread(x) | (Spread(y) << 1);
}

void MortonDecode2D(uint64_t index, uint32_t* x, uint32_t* y) {
  *x = Compact(index);
  *y = Compact(index >> 1);
}

}  // namespace fielddb

#include "curve/curves.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "curve/gray.h"
#include "curve/hilbert.h"
#include "curve/zorder.h"

namespace fielddb {

namespace {

/// Plain row-major scan: index = y * side + x. The degenerate
/// linearization the ablation bench uses as a floor — it jumps across the
/// whole grid at every row boundary, so it has the worst clustering.
class RowMajorCurve final : public SpaceFillingCurve {
 public:
  explicit RowMajorCurve(int order) : SpaceFillingCurve(order) {}

  CurveType type() const override { return CurveType::kRowMajor; }
  uint64_t Encode(uint32_t x, uint32_t y) const override {
    return static_cast<uint64_t>(y) * side() + x;
  }
  void Decode(uint64_t index, uint32_t* x, uint32_t* y) const override {
    *x = static_cast<uint32_t>(index % side());
    *y = static_cast<uint32_t>(index / side());
  }
};

}  // namespace

const char* CurveTypeName(CurveType type) {
  switch (type) {
    case CurveType::kHilbert:
      return "hilbert";
    case CurveType::kZOrder:
      return "z-order";
    case CurveType::kGrayCode:
      return "gray-code";
    case CurveType::kRowMajor:
      return "row-major";
  }
  return "unknown";
}

uint64_t SpaceFillingCurve::EncodeUnit(double ux, double uy) const {
  const double n = static_cast<double>(side());
  const auto quantize = [&](double u) -> uint32_t {
    const double scaled = std::floor(u * n);
    const double clamped = std::clamp(scaled, 0.0, n - 1.0);
    return static_cast<uint32_t>(clamped);
  };
  return Encode(quantize(ux), quantize(uy));
}

std::unique_ptr<SpaceFillingCurve> MakeCurve(CurveType type, int order) {
  assert(order >= 1 && order <= 31);
  switch (type) {
    case CurveType::kHilbert:
      return std::make_unique<HilbertCurve>(order);
    case CurveType::kZOrder:
      return std::make_unique<ZOrderCurve>(order);
    case CurveType::kGrayCode:
      return std::make_unique<GrayCodeCurve>(order);
    case CurveType::kRowMajor:
      return std::make_unique<RowMajorCurve>(order);
  }
  return nullptr;
}

}  // namespace fielddb

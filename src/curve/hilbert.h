#ifndef FIELDDB_CURVE_HILBERT_H_
#define FIELDDB_CURVE_HILBERT_H_

#include <cstdint>
#include <vector>

#include "curve/curves.h"

namespace fielddb {

/// Hilbert index of (x, y) on the 2^order x 2^order grid. Classic
/// quadrant-rotation formulation; successive indexes are always
/// 4-neighbors in the grid (no "jumps"), the property the subfield
/// builder relies on (Section 3.1.2).
uint64_t HilbertEncode2D(int order, uint32_t x, uint32_t y);

/// Inverse of HilbertEncode2D.
void HilbertDecode2D(int order, uint64_t index, uint32_t* x, uint32_t* y);

/// d-dimensional Hilbert index via Skilling's transpose algorithm
/// ("Programming the Hilbert curve", AIP 2004) — the generalization the
/// paper points at ([2]) for 3-D volume fields. `coords.size()` is the
/// dimensionality; each coordinate must be < 2^order and
/// order * dims <= 63.
uint64_t HilbertEncodeND(int order, const std::vector<uint32_t>& coords);

/// Inverse of HilbertEncodeND; `coords->size()` selects dimensionality.
void HilbertDecodeND(int order, uint64_t index, std::vector<uint32_t>* coords);

/// 2-D Hilbert curve as a SpaceFillingCurve.
class HilbertCurve final : public SpaceFillingCurve {
 public:
  explicit HilbertCurve(int order) : SpaceFillingCurve(order) {}

  CurveType type() const override { return CurveType::kHilbert; }
  uint64_t Encode(uint32_t x, uint32_t y) const override {
    return HilbertEncode2D(order(), x, y);
  }
  void Decode(uint64_t index, uint32_t* x, uint32_t* y) const override {
    HilbertDecode2D(order(), index, x, y);
  }
};

}  // namespace fielddb

#endif  // FIELDDB_CURVE_HILBERT_H_

#include "curve/gray.h"

#include "curve/zorder.h"

namespace fielddb {

uint64_t GrayToBinary(uint64_t g) {
  g ^= g >> 32;
  g ^= g >> 16;
  g ^= g >> 8;
  g ^= g >> 4;
  g ^= g >> 2;
  g ^= g >> 1;
  return g;
}

uint64_t GrayCodeCurve::Encode(uint32_t x, uint32_t y) const {
  return GrayToBinary(MortonEncode2D(x, y));
}

void GrayCodeCurve::Decode(uint64_t index, uint32_t* x, uint32_t* y) const {
  MortonDecode2D(BinaryToGray(index), x, y);
}

}  // namespace fielddb

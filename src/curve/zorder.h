#ifndef FIELDDB_CURVE_ZORDER_H_
#define FIELDDB_CURVE_ZORDER_H_

#include <cstdint>

#include "curve/curves.h"

namespace fielddb {

/// Interleaves the low 31 bits of x (even positions) and y (odd positions):
/// the Morton / Z-order / Peano key the paper lists as an alternative
/// linearization (Section 3.1.2).
uint64_t MortonEncode2D(uint32_t x, uint32_t y);

/// Inverse of MortonEncode2D.
void MortonDecode2D(uint64_t index, uint32_t* x, uint32_t* y);

/// Z-order (bit-interleaving) curve.
class ZOrderCurve final : public SpaceFillingCurve {
 public:
  explicit ZOrderCurve(int order) : SpaceFillingCurve(order) {}

  CurveType type() const override { return CurveType::kZOrder; }
  uint64_t Encode(uint32_t x, uint32_t y) const override {
    return MortonEncode2D(x, y);
  }
  void Decode(uint64_t index, uint32_t* x, uint32_t* y) const override {
    MortonDecode2D(index, x, y);
  }
};

}  // namespace fielddb

#endif  // FIELDDB_CURVE_ZORDER_H_

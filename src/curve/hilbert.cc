#include "curve/hilbert.h"

#include <cassert>

namespace fielddb {

namespace {

// Rotates/flips a quadrant-local coordinate pair for step size `n`.
void Rot(uint32_t n, uint32_t* x, uint32_t* y, uint32_t rx, uint32_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      *x = n - 1 - *x;
      *y = n - 1 - *y;
    }
    const uint32_t t = *x;
    *x = *y;
    *y = t;
  }
}

}  // namespace

uint64_t HilbertEncode2D(int order, uint32_t x, uint32_t y) {
  assert(order >= 1 && order <= 31);
  uint64_t d = 0;
  for (uint32_t s = uint32_t{1} << (order - 1); s > 0; s >>= 1) {
    const uint32_t rx = (x & s) > 0 ? 1 : 0;
    const uint32_t ry = (y & s) > 0 ? 1 : 0;
    d += static_cast<uint64_t>(s) * s * ((3 * rx) ^ ry);
    Rot(s, &x, &y, rx, ry);
  }
  return d;
}

void HilbertDecode2D(int order, uint64_t index, uint32_t* x, uint32_t* y) {
  assert(order >= 1 && order <= 31);
  uint32_t rx = 0, ry = 0;
  uint64_t t = index;
  *x = 0;
  *y = 0;
  for (uint32_t s = 1; s < (uint32_t{1} << order); s <<= 1) {
    rx = 1 & static_cast<uint32_t>(t / 2);
    ry = 1 & static_cast<uint32_t>(t ^ rx);
    Rot(s, x, y, rx, ry);
    *x += s * rx;
    *y += s * ry;
    t /= 4;
  }
}

uint64_t HilbertEncodeND(int order, const std::vector<uint32_t>& coords) {
  const int dims = static_cast<int>(coords.size());
  assert(dims >= 1 && order >= 1 && order * dims <= 63);
  // Skilling's algorithm: convert axes into the "transpose" Gray-code
  // representation in place, then collect bits.
  std::vector<uint32_t> x = coords;
  const uint32_t m = uint32_t{1} << (order - 1);

  // Inverse undo excess work.
  for (uint32_t q = m; q > 1; q >>= 1) {
    const uint32_t p = q - 1;
    for (int i = 0; i < dims; ++i) {
      if (x[i] & q) {
        x[0] ^= p;  // invert
      } else {
        const uint32_t t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < dims; ++i) x[i] ^= x[i - 1];
  uint32_t t = 0;
  for (uint32_t q = m; q > 1; q >>= 1) {
    if (x[dims - 1] & q) t ^= q - 1;
  }
  for (int i = 0; i < dims; ++i) x[i] ^= t;

  // Interleave: bit b of axis i contributes to output bit
  // (b * dims + (dims - 1 - i)).
  uint64_t index = 0;
  for (int b = 0; b < order; ++b) {
    for (int i = 0; i < dims; ++i) {
      const uint64_t bit = (x[i] >> b) & 1;
      index |= bit << (b * dims + (dims - 1 - i));
    }
  }
  return index;
}

void HilbertDecodeND(int order, uint64_t index,
                     std::vector<uint32_t>* coords) {
  const int dims = static_cast<int>(coords->size());
  assert(dims >= 1 && order >= 1 && order * dims <= 63);
  std::vector<uint32_t>& x = *coords;
  for (int i = 0; i < dims; ++i) x[i] = 0;
  for (int b = 0; b < order; ++b) {
    for (int i = 0; i < dims; ++i) {
      const uint32_t bit =
          static_cast<uint32_t>(index >> (b * dims + (dims - 1 - i))) & 1;
      x[i] |= bit << b;
    }
  }

  const uint32_t n = uint32_t{2} << (order - 1);
  // Gray decode by halving.
  uint32_t t = x[dims - 1] >> 1;
  for (int i = dims - 1; i > 0; --i) x[i] ^= x[i - 1];
  x[0] ^= t;
  // Undo excess work.
  for (uint32_t q = 2; q != n; q <<= 1) {
    const uint32_t p = q - 1;
    for (int i = dims - 1; i >= 0; --i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        const uint32_t s = (x[0] ^ x[i]) & p;
        x[0] ^= s;
        x[i] ^= s;
      }
    }
  }
}

}  // namespace fielddb

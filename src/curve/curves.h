#ifndef FIELDDB_CURVE_CURVES_H_
#define FIELDDB_CURVE_CURVES_H_

#include <cstdint>
#include <memory>
#include <string>

namespace fielddb {

/// Linearization orders for 2-D cell grids. The paper adopts Hilbert
/// (Section 3.1.2, citing [7, 13] for its superior clustering); the others
/// exist as ablation baselines.
enum class CurveType {
  kHilbert,
  kZOrder,
  kGrayCode,
  kRowMajor,
};

const char* CurveTypeName(CurveType type);

/// A bijection between 2-D grid coordinates and positions along a linear
/// traversal of the grid. `order` is the number of bits per dimension; the
/// curve covers the 2^order x 2^order grid and produces indexes in
/// [0, 2^(2*order)).
class SpaceFillingCurve {
 public:
  explicit SpaceFillingCurve(int order) : order_(order) {}
  virtual ~SpaceFillingCurve() = default;

  int order() const { return order_; }
  /// Side length of the covered grid (2^order).
  uint32_t side() const { return uint32_t{1} << order_; }
  /// Number of grid points (2^(2*order)).
  uint64_t num_points() const { return uint64_t{1} << (2 * order_); }

  virtual CurveType type() const = 0;

  /// Maps grid coordinates (x, y), each < side(), to the curve index.
  virtual uint64_t Encode(uint32_t x, uint32_t y) const = 0;

  /// Inverse of Encode.
  virtual void Decode(uint64_t index, uint32_t* x, uint32_t* y) const = 0;

  /// Curve index of an arbitrary point in [0,1)^2, quantized onto the grid.
  /// Coordinates outside [0,1) are clamped.
  uint64_t EncodeUnit(double ux, double uy) const;

 private:
  int order_;
};

/// Factory. `order` must be in [1, 31].
std::unique_ptr<SpaceFillingCurve> MakeCurve(CurveType type, int order);

}  // namespace fielddb

#endif  // FIELDDB_CURVE_CURVES_H_

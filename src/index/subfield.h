#ifndef FIELDDB_INDEX_SUBFIELD_H_
#define FIELDDB_INDEX_SUBFIELD_H_

#include <cstdint>
#include <vector>

#include "common/interval.h"

namespace fielddb {

/// A subfield: a run [start, end) of consecutive positions in the
/// linearized (curve-ordered) cell store, together with the 1-D MBR of all
/// values inside those cells. This is what I-Hilbert indexes instead of
/// individual cells (paper Section 3).
struct Subfield {
  uint64_t start = 0;          // first slot (inclusive)
  uint64_t end = 0;            // one past the last slot
  ValueInterval interval;      // hull of the member cells' intervals
  double sum_interval_sizes = 0.0;  // SI: sum of member interval sizes

  uint64_t NumCells() const { return end - start; }
};

/// Parameters of the cost function C = P / SI with P = L + q̄ (paper
/// Section 3.1, after Kamel & Faloutsos [14]).
struct SubfieldCostConfig {
  /// q̄: the assumed average query-interval length as a fraction of the
  /// normalized value space. The paper fixes 0.5.
  double avg_query_fraction = 0.5;
  /// When true, interval lengths are normalized by the field's value
  /// range, matching the paper's `P = L + 0.5` on a [0,1] value space.
  /// When false, raw interval sizes are used with no q̄ term — the
  /// arithmetic of the paper's own worked example (Fig. 5: cost
  /// 21/(11+10+11+13) ≈ 0.466 before inserting c5, 31/58 ≈ 0.534 after).
  bool normalize = true;
};

/// Incrementally grows one subfield while streaming cells in linearized
/// order, applying the paper's insertion rule: append a cell only when the
/// subfield's cost does not increase (C_after < C_before); otherwise the
/// caller seals the subfield and starts a new one.
class SubfieldCostModel {
 public:
  /// `value_range` is the hull of all cell intervals in the field; used
  /// for normalization (ignored when `config.normalize` is false).
  SubfieldCostModel(const ValueInterval& value_range,
                    const SubfieldCostConfig& config);

  /// Cost C = P / SI of a (hypothetical) subfield.
  double Cost(const ValueInterval& interval,
              double sum_interval_sizes) const;

  /// The paper's insertion test: true when appending a cell with interval
  /// `cell` to `current` strictly decreases the subfield's cost.
  bool ShouldAppend(const Subfield& current,
                    const ValueInterval& cell) const;

 private:
  SubfieldCostConfig config_;
  double range_size_;  // PaperSize of the value range (>= 1)
};

/// Streaming subfield partitioner: cells arrive one at a time in
/// linearized order (the external-sort merge feeds it without ever
/// materializing all intervals) and Finish() seals the last subfield and
/// records the partition-shape telemetry. BuildSubfields is a thin
/// wrapper over this, so streamed and vector builds produce identical
/// partitions by construction.
class SubfieldStreamBuilder {
 public:
  SubfieldStreamBuilder(const ValueInterval& value_range,
                        const SubfieldCostConfig& config);

  /// Appends the next cell's value interval (slot = number of cells
  /// added so far), growing the open subfield or sealing it per the
  /// paper's insertion rule.
  void Add(const ValueInterval& cell);

  /// Seals the open subfield, records telemetry, and returns the
  /// partition. The builder is consumed.
  std::vector<Subfield> Finish();

 private:
  SubfieldCostModel model_;
  std::vector<Subfield> subfields_;
  Subfield current_;
  uint64_t num_cells_ = 0;
};

/// Builds the full subfield partition of a linearized cell sequence:
/// `cell_intervals[pos]` is the value interval of the cell at slot `pos`.
/// Every cell lands in exactly one subfield and subfields are contiguous
/// and ordered (start_0 = 0, start_{i+1} = end_i, end_last = n).
std::vector<Subfield> BuildSubfields(
    const std::vector<ValueInterval>& cell_intervals,
    const ValueInterval& value_range, const SubfieldCostConfig& config);

}  // namespace fielddb

#endif  // FIELDDB_INDEX_SUBFIELD_H_

#include "index/subfield_maintenance.h"

#include <algorithm>
#include <cassert>

#include "rtree/box.h"

namespace fielddb {

size_t SubfieldContaining(const std::vector<Subfield>& subfields,
                          uint64_t pos) {
  // First subfield whose end exceeds pos; the partition is contiguous,
  // so that subfield's start is <= pos.
  const auto it = std::upper_bound(
      subfields.begin(), subfields.end(), pos,
      [](uint64_t p, const Subfield& sf) { return p < sf.end; });
  assert(it != subfields.end() && it->start <= pos && pos < it->end);
  return static_cast<size_t>(it - subfields.begin());
}

Status RefreshSubfieldAfterUpdate(const CellStore& store,
                                  RStarTree<1>* tree,
                                  std::vector<Subfield>* subfields,
                                  uint64_t pos) {
  const size_t si = SubfieldContaining(*subfields, pos);
  Subfield& sf = (*subfields)[si];

  ValueInterval hull = ValueInterval::Empty();
  double sum_sizes = 0.0;
  FIELDDB_RETURN_IF_ERROR(
      store.Scan(sf.start, sf.end, [&](uint64_t, const CellRecord& cell) {
        const ValueInterval iv = cell.Interval();
        hull.Extend(iv);
        sum_sizes += iv.PaperSize();
        return true;
      }));

  if (hull != sf.interval) {
    FIELDDB_RETURN_IF_ERROR(
        tree->Delete(BoxFromInterval(sf.interval), sf.start, sf.end));
    FIELDDB_RETURN_IF_ERROR(
        tree->Insert(BoxFromInterval(hull), sf.start, sf.end));
    sf.interval = hull;
  }
  sf.sum_interval_sizes = sum_sizes;
  return Status::OK();
}

}  // namespace fielddb

#include "index/subfield.h"

#include <cassert>

#include "obs/metrics.h"

namespace fielddb {

SubfieldCostModel::SubfieldCostModel(const ValueInterval& value_range,
                                     const SubfieldCostConfig& config)
    : config_(config) {
  range_size_ = value_range.IsEmpty() ? 1.0 : value_range.PaperSize();
  if (range_size_ <= 0.0) range_size_ = 1.0;
}

double SubfieldCostModel::Cost(const ValueInterval& interval,
                               double sum_interval_sizes) const {
  assert(sum_interval_sizes > 0.0);
  // With normalization, C = (L/R + q̄) / (SI/R) = (L + q̄·R) / SI: the
  // q̄·R term is the fixed access probability every subfield pays, which
  // is what rewards grouping cells (it gets amortized over a larger SI).
  const double fixed =
      config_.normalize ? config_.avg_query_fraction * range_size_ : 0.0;
  return (interval.PaperSize() + fixed) / sum_interval_sizes;
}

bool SubfieldCostModel::ShouldAppend(const Subfield& current,
                                     const ValueInterval& cell) const {
  const double cost_before =
      Cost(current.interval, current.sum_interval_sizes);
  const ValueInterval merged = ValueInterval::Hull(current.interval, cell);
  const double cost_after =
      Cost(merged, current.sum_interval_sizes + cell.PaperSize());
  // Paper Section 3.1: "This insertion can be executed only if Ca > Cb";
  // on Ca <= Cb a new subfield starts.
  return cost_before > cost_after;
}

std::vector<Subfield> BuildSubfields(
    const std::vector<ValueInterval>& cell_intervals,
    const ValueInterval& value_range, const SubfieldCostConfig& config) {
  std::vector<Subfield> subfields;
  if (cell_intervals.empty()) return subfields;

  const SubfieldCostModel model(value_range, config);
  Subfield current;
  current.start = 0;
  current.end = 1;
  current.interval = cell_intervals[0];
  current.sum_interval_sizes = cell_intervals[0].PaperSize();

  for (uint64_t pos = 1; pos < cell_intervals.size(); ++pos) {
    const ValueInterval& cell = cell_intervals[pos];
    if (model.ShouldAppend(current, cell)) {
      current.end = pos + 1;
      current.interval.Extend(cell);
      current.sum_interval_sizes += cell.PaperSize();
    } else {
      subfields.push_back(current);
      current.start = pos;
      current.end = pos + 1;
      current.interval = cell;
      current.sum_interval_sizes = cell.PaperSize();
    }
  }
  subfields.push_back(current);

  // Partition-shape telemetry: the subfield count and size distribution
  // are what the paper's cost model trades off (few large subfields =>
  // cheap tree, many false positives), so expose them per build.
  MetricsRegistry& reg = MetricsRegistry::Default();
  reg.GetCounter("subfield.builds")->Increment();
  reg.GetCounter("subfield.subfields_built")->Increment(subfields.size());
  reg.GetGauge("subfield.last_partition_size")
      ->Set(static_cast<double>(subfields.size()));
  Histogram* sizes = reg.GetHistogram("subfield.cells_per_subfield");
  for (const Subfield& sf : subfields) {
    sizes->Record(static_cast<double>(sf.NumCells()));
  }
  return subfields;
}

}  // namespace fielddb

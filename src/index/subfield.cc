#include "index/subfield.h"

#include <cassert>

#include "obs/metrics.h"

namespace fielddb {

SubfieldCostModel::SubfieldCostModel(const ValueInterval& value_range,
                                     const SubfieldCostConfig& config)
    : config_(config) {
  range_size_ = value_range.IsEmpty() ? 1.0 : value_range.PaperSize();
  if (range_size_ <= 0.0) range_size_ = 1.0;
}

double SubfieldCostModel::Cost(const ValueInterval& interval,
                               double sum_interval_sizes) const {
  assert(sum_interval_sizes > 0.0);
  // With normalization, C = (L/R + q̄) / (SI/R) = (L + q̄·R) / SI: the
  // q̄·R term is the fixed access probability every subfield pays, which
  // is what rewards grouping cells (it gets amortized over a larger SI).
  const double fixed =
      config_.normalize ? config_.avg_query_fraction * range_size_ : 0.0;
  return (interval.PaperSize() + fixed) / sum_interval_sizes;
}

bool SubfieldCostModel::ShouldAppend(const Subfield& current,
                                     const ValueInterval& cell) const {
  const double cost_before =
      Cost(current.interval, current.sum_interval_sizes);
  const ValueInterval merged = ValueInterval::Hull(current.interval, cell);
  const double cost_after =
      Cost(merged, current.sum_interval_sizes + cell.PaperSize());
  // Paper Section 3.1: "This insertion can be executed only if Ca > Cb";
  // on Ca <= Cb a new subfield starts.
  return cost_before > cost_after;
}

SubfieldStreamBuilder::SubfieldStreamBuilder(
    const ValueInterval& value_range, const SubfieldCostConfig& config)
    : model_(value_range, config) {}

void SubfieldStreamBuilder::Add(const ValueInterval& cell) {
  const uint64_t pos = num_cells_++;
  if (pos == 0) {
    current_.start = 0;
    current_.end = 1;
    current_.interval = cell;
    current_.sum_interval_sizes = cell.PaperSize();
    return;
  }
  if (model_.ShouldAppend(current_, cell)) {
    current_.end = pos + 1;
    current_.interval.Extend(cell);
    current_.sum_interval_sizes += cell.PaperSize();
  } else {
    subfields_.push_back(current_);
    current_.start = pos;
    current_.end = pos + 1;
    current_.interval = cell;
    current_.sum_interval_sizes = cell.PaperSize();
  }
}

std::vector<Subfield> SubfieldStreamBuilder::Finish() {
  if (num_cells_ == 0) return std::move(subfields_);
  subfields_.push_back(current_);

  // Partition-shape telemetry: the subfield count and size distribution
  // are what the paper's cost model trades off (few large subfields =>
  // cheap tree, many false positives), so expose them per build.
  MetricsRegistry& reg = MetricsRegistry::Default();
  reg.GetCounter("subfield.builds")->Increment();
  reg.GetCounter("subfield.subfields_built")->Increment(subfields_.size());
  reg.GetGauge("subfield.last_partition_size")
      ->Set(static_cast<double>(subfields_.size()));
  Histogram* sizes = reg.GetHistogram("subfield.cells_per_subfield");
  for (const Subfield& sf : subfields_) {
    sizes->Record(static_cast<double>(sf.NumCells()));
  }
  return std::move(subfields_);
}

std::vector<Subfield> BuildSubfields(
    const std::vector<ValueInterval>& cell_intervals,
    const ValueInterval& value_range, const SubfieldCostConfig& config) {
  SubfieldStreamBuilder builder(value_range, config);
  for (const ValueInterval& cell : cell_intervals) builder.Add(cell);
  return builder.Finish();
}

}  // namespace fielddb

#include "index/zone_sidecar.h"

#include <algorithm>

namespace fielddb {

void IntersectRanges(const std::vector<PosRange>& a,
                     const std::vector<PosRange>& b,
                     std::vector<PosRange>* out) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const uint64_t begin = std::max(a[i].begin, b[j].begin);
    const uint64_t end = std::min(a[i].end, b[j].end);
    if (begin < end) out->push_back(PosRange{begin, end});
    // Advance whichever run ends first; the other may still overlap the
    // next run on this side.
    if (a[i].end < b[j].end) {
      ++i;
    } else {
      ++j;
    }
  }
}

void BoxZoneMap::FilterRanges(const ValueInterval& u, const ValueInterval& v,
                              std::vector<PosRange>* out) const {
  std::vector<PosRange> u_runs;
  std::vector<PosRange> v_runs;
  simd::FilterIntervalRanges(u_min_.data(), u_max_.data(), size(),
                             /*base=*/0, u.min, u.max, &u_runs);
  simd::FilterIntervalRanges(v_min_.data(), v_max_.data(), size(),
                             /*base=*/0, v.min, v.max, &v_runs);
  IntersectRanges(u_runs, v_runs, out);
}

}  // namespace fielddb

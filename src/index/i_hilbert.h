#ifndef FIELDDB_INDEX_I_HILBERT_H_
#define FIELDDB_INDEX_I_HILBERT_H_

#include <memory>
#include <vector>

#include "curve/curves.h"
#include "field/field.h"
#include "index/subfield.h"
#include "index/value_index.h"
#include "rtree/rstar_tree.h"
#include "storage/buffer_pool.h"

namespace fielddb {

/// The paper's contribution, 'I-Hilbert' (Section 3.1):
///  1. linearize cells by the Hilbert value of their centers;
///  2. store them physically in that order (CellStore);
///  3. greedily group consecutive cells into subfields with the cost
///     function C = P/SI;
///  4. index only the subfield intervals in a 1-D R*-tree whose leaf
///     entries carry [start, end) pointers into the clustered store
///     (Fig. 6's leaf layout).
/// A value query searches the small tree, then reads each qualifying
/// subfield's contiguous page range.
struct IHilbertOptions {
  /// Linearization order; kHilbert is the paper's choice, the others
  /// exist for the clustering ablation.
  CurveType curve = CurveType::kHilbert;
  /// Bits per dimension of the curve grid cells' centers are quantized
  /// onto. 16 gives a 65536^2 grid — far below a center-spacing that
  /// would alias for every workload in this repository.
  int curve_order = 16;
  SubfieldCostConfig cost;
  /// Pack the subfield intervals bottom-up instead of R*-inserting.
  bool bulk_load = true;
  RStarOptions rstar;
  /// When > 0, the (hilbert_key, cell) linearization sort runs as a
  /// bounded-memory external merge sort: the sorter's in-RAM buffer is
  /// capped at this many bytes, overflow spills sorted runs to temp
  /// files, and the k-way merge feeds the store appender and the greedy
  /// subfield costing streamwise. The resulting index is byte-identical
  /// to the in-RAM build (same (key, id) tie-break, same page layout).
  /// 0 (the default) keeps the all-in-RAM std::sort path.
  size_t build_memory_budget_bytes = 0;
};

class IHilbertIndex final : public ValueIndex {
 public:
  using Options = IHilbertOptions;

  static StatusOr<std::unique_ptr<IHilbertIndex>> Build(
      BufferPool* pool, const Field& field, const Options& options = {});

  /// Re-wraps persisted components (for FieldDatabase::Open).
  static std::unique_ptr<IHilbertIndex> Attach(
      CellStore store, RStarTree<1> tree, std::vector<Subfield> subfields,
      const IndexBuildInfo& info) {
    return std::unique_ptr<IHilbertIndex>(
        new IHilbertIndex(std::move(store), std::move(tree),
                          std::move(subfields), info));
  }

  IndexMethod method() const override { return IndexMethod::kIHilbert; }
  Status FilterCandidateRanges(const ValueInterval& query,
                               std::vector<PosRange>* ranges) const override;
  const CellStore& cell_store() const override { return store_; }
  const IndexBuildInfo& build_info() const override { return info_; }
  Status UpdateCellValues(CellId id,
                          const std::vector<double>& values) override;

  const std::vector<Subfield>& subfields() const { return subfields_; }
  const RStarTree<1>& tree() const { return tree_; }

  /// Visits the subfields whose interval intersects the query — the raw
  /// filtering step, exposed for tests and the subfield-map example.
  Status FilterSubfields(const ValueInterval& query,
                         std::vector<uint32_t>* subfield_ids) const;

 private:
  IHilbertIndex(CellStore store, RStarTree<1> tree,
                std::vector<Subfield> subfields, IndexBuildInfo info)
      : store_(std::move(store)), tree_(std::move(tree)),
        subfields_(std::move(subfields)), info_(info) {}

  CellStore store_;
  RStarTree<1> tree_;
  std::vector<Subfield> subfields_;
  IndexBuildInfo info_;
};

/// Computes the linearization order of a field's cells under `curve`:
/// result[pos] = cell id stored at slot pos. Cell centers are normalized
/// to the field domain and quantized onto the curve grid; ties (cells
/// sharing a quantized center) break by cell id, keeping the order
/// deterministic.
std::vector<CellId> LinearizeCells(const Field& field,
                                   const SpaceFillingCurve& curve);

}  // namespace fielddb

#endif  // FIELDDB_INDEX_I_HILBERT_H_

#include "index/i_hilbert.h"

#include <algorithm>
#include <chrono>

#include "core/ext_sort.h"
#include "index/subfield_maintenance.h"
#include "index/update_util.h"

namespace fielddb {

std::vector<CellId> LinearizeCells(const Field& field,
                                   const SpaceFillingCurve& curve) {
  const CellId n = field.NumCells();
  const Rect2 domain = field.Domain();
  const double w = std::max(domain.Width(), kGeomEpsilon);
  const double h = std::max(domain.Height(), kGeomEpsilon);

  std::vector<std::pair<uint64_t, CellId>> keyed(n);
  for (CellId id = 0; id < n; ++id) {
    const Point2 c = field.GetCell(id).Centroid();
    const double ux = (c.x - domain.lo.x) / w;
    const double uy = (c.y - domain.lo.y) / h;
    keyed[id] = {curve.EncodeUnit(ux, uy), id};
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<CellId> order(n);
  for (CellId pos = 0; pos < n; ++pos) order[pos] = keyed[pos].second;
  return order;
}

StatusOr<std::unique_ptr<IHilbertIndex>> IHilbertIndex::Build(
    BufferPool* pool, const Field& field, const Options& options) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::unique_ptr<SpaceFillingCurve> curve =
      MakeCurve(options.curve, options.curve_order);
  if (curve == nullptr) {
    return Status::InvalidArgument("unknown curve type");
  }

  const ValueInterval range = field.ValueRange();
  StatusOr<CellStore> store = Status::Internal("store not built");
  std::vector<Subfield> subfields;
  uint64_t ext_spill_runs = 0;
  uint64_t ext_peak_buffered_bytes = 0;

  if (options.build_memory_budget_bytes > 0) {
    // Bounded-memory build: the linearization sort spills runs of
    // (hilbert_key, cell_id) to temp files and the k-way merge streams
    // straight into the store appender and the greedy subfield costing
    // — the keyed working set never exceeds the budget. The merge's
    // (key, insertion-seq) tie-break equals the in-RAM sort's (key, id)
    // tie-break because ids are added in order, so the index built here
    // is byte-identical to the std::sort path's.
    const CellId n = field.NumCells();
    const Rect2 domain = field.Domain();
    const double w = std::max(domain.Width(), kGeomEpsilon);
    const double h = std::max(domain.Height(), kGeomEpsilon);
    ExternalKeyRecordSorter<CellId> sorter(options.build_memory_budget_bytes);
    for (CellId id = 0; id < n; ++id) {
      const Point2 c = field.GetCell(id).Centroid();
      const double ux = (c.x - domain.lo.x) / w;
      const double uy = (c.y - domain.lo.y) / h;
      FIELDDB_RETURN_IF_ERROR(sorter.Add(curve->EncodeUnit(ux, uy), id));
    }
    CellStore::Appender appender(pool, n);
    SubfieldStreamBuilder costing(range, options.cost);
    FIELDDB_RETURN_IF_ERROR(
        sorter.Merge([&](uint64_t, const CellId& id) -> Status {
          const CellRecord record = field.GetCell(id);
          FIELDDB_RETURN_IF_ERROR(appender.Append(record));
          costing.Add(record.Interval());
          return Status::OK();
        }));
    store = appender.Finish();
    if (!store.ok()) return store.status();
    subfields = costing.Finish();
    ext_spill_runs = sorter.spill_runs();
    ext_peak_buffered_bytes = sorter.peak_buffered_bytes();
  } else {
    const std::vector<CellId> order = LinearizeCells(field, *curve);
    store = CellStore::Build(pool, field, order);
    if (!store.ok()) return store.status();

    // Intervals in storage order feed the greedy grouping.
    std::vector<ValueInterval> intervals(order.size());
    for (uint64_t pos = 0; pos < order.size(); ++pos) {
      intervals[pos] = field.GetCell(order[pos]).Interval();
    }
    subfields = BuildSubfields(intervals, range, options.cost);
  }

  StatusOr<RStarTree<1>> tree = [&]() -> StatusOr<RStarTree<1>> {
    if (options.bulk_load) {
      // Subfields are already in Hilbert order, which is exactly the
      // packing order Kamel & Faloutsos [14] prescribe.
      std::vector<RTreeEntry<1>> entries(subfields.size());
      for (size_t i = 0; i < subfields.size(); ++i) {
        entries[i].box = BoxFromInterval(subfields[i].interval);
        entries[i].a = subfields[i].start;
        entries[i].b = subfields[i].end;
      }
      return RStarTree<1>::BulkLoad(pool, entries, options.rstar);
    }
    StatusOr<RStarTree<1>> t = RStarTree<1>::Create(pool, options.rstar);
    if (!t.ok()) return t.status();
    for (const Subfield& sf : subfields) {
      FIELDDB_RETURN_IF_ERROR(
          t->Insert(BoxFromInterval(sf.interval), sf.start, sf.end));
    }
    return t;
  }();
  if (!tree.ok()) return tree.status();

  IndexBuildInfo info;
  info.num_cells = store->size();
  info.num_index_entries = subfields.size();
  info.num_subfields = subfields.size();
  info.tree_height = tree->height();
  info.tree_nodes = tree->num_nodes();
  info.store_pages = store->num_pages();
  info.ext_spill_runs = ext_spill_runs;
  info.ext_peak_buffered_bytes = ext_peak_buffered_bytes;
  info.build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return std::unique_ptr<IHilbertIndex>(
      new IHilbertIndex(std::move(store).value(), std::move(tree).value(),
                        std::move(subfields), info));
}

Status IHilbertIndex::UpdateCellValues(CellId id,
                                       const std::vector<double>& values) {
  if (id >= store_.size()) {
    return Status::OutOfRange("no such cell");
  }
  const uint64_t pos = store_.PositionOf(id);
  ValueInterval old_iv, new_iv;
  FIELDDB_RETURN_IF_ERROR(
      ApplyValueUpdate(&store_, pos, values, &old_iv, &new_iv));
  if (new_iv != old_iv) {
    FIELDDB_RETURN_IF_ERROR(
        RefreshSubfieldAfterUpdate(store_, &tree_, &subfields_, pos));
  }
  return Status::OK();
}

Status IHilbertIndex::FilterCandidateRanges(
    const ValueInterval& query, std::vector<PosRange>* ranges) const {
  // The filter step is naturally range-shaped here: each qualifying
  // subfield IS a [start, end) run of store slots. Collect, sort, and
  // merge overlaps/adjacencies — O(subfields touched), independent of
  // how many cells the runs cover.
  std::vector<PosRange> raw;
  FIELDDB_RETURN_IF_ERROR(
      tree_.Search(BoxFromInterval(query), [&](const RTreeEntry<1>& e) {
        raw.push_back(PosRange{e.a, e.b});
        return true;
      }));
  std::sort(raw.begin(), raw.end(), [](const PosRange& x, const PosRange& y) {
    return x.begin < y.begin || (x.begin == y.begin && x.end < y.end);
  });
  for (const PosRange& r : raw) {
    if (r.end <= r.begin) continue;
    if (!ranges->empty() && r.begin <= ranges->back().end) {
      ranges->back().end = std::max(ranges->back().end, r.end);
    } else {
      ranges->push_back(r);
    }
  }
  return Status::OK();
}

Status IHilbertIndex::FilterSubfields(
    const ValueInterval& query, std::vector<uint32_t>* subfield_ids) const {
  // Subfields are contiguous and ordered, so the id is recoverable from
  // the start position by binary search.
  return tree_.Search(BoxFromInterval(query), [&](const RTreeEntry<1>& e) {
    const auto it = std::lower_bound(
        subfields_.begin(), subfields_.end(), e.a,
        [](const Subfield& sf, uint64_t start) { return sf.start < start; });
    if (it != subfields_.end() && it->start == e.a) {
      subfield_ids->push_back(
          static_cast<uint32_t>(it - subfields_.begin()));
    }
    return true;
  });
}

}  // namespace fielddb

#ifndef FIELDDB_INDEX_ZONE_SIDECAR_H_
#define FIELDDB_INDEX_ZONE_SIDECAR_H_

#include <cstdint>
#include <vector>

#include "common/interval.h"
#include "common/simd/interval_filter.h"

namespace fielddb {

/// SoA zone-map sidecars for the extension field stores — the same
/// structure the grid's value index keeps per cell, factored out so the
/// temporal, vector and volume databases get range-native
/// FilterCandidateRanges parity (DESIGN.md §16). One slot per store
/// position, min/max planes stored as separate contiguous arrays so the
/// SIMD interval kernels stream them directly.
///
/// The sidecars are in-RAM (rebuilt on Open by scanning the store) and
/// maintained on update, so a planner probe over them is zero-I/O.

/// Scalar values: one closed interval per slot (temporal/volume).
class ScalarZoneMap {
 public:
  void Reserve(uint64_t n) {
    mins_.reserve(n);
    maxs_.reserve(n);
  }
  void Append(const ValueInterval& iv) {
    mins_.push_back(iv.min);
    maxs_.push_back(iv.max);
  }
  void Set(uint64_t pos, const ValueInterval& iv) {
    mins_[pos] = iv.min;
    maxs_[pos] = iv.max;
  }
  ValueInterval At(uint64_t pos) const {
    return ValueInterval{mins_[pos], maxs_[pos]};
  }
  uint64_t size() const { return mins_.size(); }

  /// Appends the maximal runs of slots intersecting `query` (SIMD
  /// kernel; bit-identical across instruction sets).
  void FilterRanges(const ValueInterval& query,
                    std::vector<PosRange>* out) const {
    simd::FilterIntervalRanges(mins_.data(), maxs_.data(), size(),
                               /*base=*/0, query.min, query.max, out);
  }

 private:
  std::vector<double> mins_;
  std::vector<double> maxs_;
};

/// 2-D boxes: one (u, v) interval pair per slot (vector fields, where a
/// band query constrains both components). Filtering intersects the
/// per-component run lists, so each component still streams through the
/// scalar SIMD kernel.
class BoxZoneMap {
 public:
  void Reserve(uint64_t n) {
    u_min_.reserve(n);
    u_max_.reserve(n);
    v_min_.reserve(n);
    v_max_.reserve(n);
  }
  void Append(const ValueInterval& u, const ValueInterval& v) {
    u_min_.push_back(u.min);
    u_max_.push_back(u.max);
    v_min_.push_back(v.min);
    v_max_.push_back(v.max);
  }
  void Set(uint64_t pos, const ValueInterval& u, const ValueInterval& v) {
    u_min_[pos] = u.min;
    u_max_[pos] = u.max;
    v_min_[pos] = v.min;
    v_max_[pos] = v.max;
  }
  ValueInterval UAt(uint64_t pos) const {
    return ValueInterval{u_min_[pos], u_max_[pos]};
  }
  ValueInterval VAt(uint64_t pos) const {
    return ValueInterval{v_min_[pos], v_max_[pos]};
  }
  uint64_t size() const { return u_min_.size(); }

  /// Appends the maximal runs of slots whose box intersects `u` × `v`.
  void FilterRanges(const ValueInterval& u, const ValueInterval& v,
                    std::vector<PosRange>* out) const;

 private:
  std::vector<double> u_min_;
  std::vector<double> u_max_;
  std::vector<double> v_min_;
  std::vector<double> v_max_;
};

/// Intersects two sorted, disjoint run lists (the standard two-pointer
/// merge). Exposed for tests.
void IntersectRanges(const std::vector<PosRange>& a,
                     const std::vector<PosRange>& b,
                     std::vector<PosRange>* out);

}  // namespace fielddb

#endif  // FIELDDB_INDEX_ZONE_SIDECAR_H_

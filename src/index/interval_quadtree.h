#ifndef FIELDDB_INDEX_INTERVAL_QUADTREE_H_
#define FIELDDB_INDEX_INTERVAL_QUADTREE_H_

#include <memory>
#include <vector>

#include "field/field.h"
#include "index/subfield.h"
#include "index/value_index.h"
#include "rtree/rstar_tree.h"
#include "storage/buffer_pool.h"

namespace fielddb {

/// The authors' earlier Interval Quadtree (Kang et al., CIKM'99 [15]),
/// built here as the fixed-threshold baseline the paper argues against
/// (Section 3.1.1): the field space is divided quadtree-style until each
/// quadrant's value-interval size drops below a pre-set threshold; the
/// final quadrants are the subfields. The paper's critique — "there is no
/// justifiable way to decide the optimal threshold" — is what the
/// threshold-sweep ablation bench demonstrates.
///
/// Cells are assigned to quadrants by centroid, so the structure also
/// covers TINs (if less naturally than grids, which is the paper's other
/// critique of quadratic division).
struct IntervalQuadtreeOptions {
  /// Maximum allowed subfield interval length as a fraction of the
  /// field's value-range length (the pre-determined fixed threshold of
  /// the CIKM'99 scheme, here made range-relative).
  double threshold_fraction = 0.1;
  /// Division stops at this depth regardless of the threshold (a
  /// 2^max_depth x 2^max_depth finest grid).
  int max_depth = 16;
  bool bulk_load = true;
  RStarOptions rstar;
};

class IntervalQuadtreeIndex final : public ValueIndex {
 public:
  using Options = IntervalQuadtreeOptions;

  static StatusOr<std::unique_ptr<IntervalQuadtreeIndex>> Build(
      BufferPool* pool, const Field& field, const Options& options = {});

  /// Re-wraps persisted components (for FieldDatabase::Open).
  static std::unique_ptr<IntervalQuadtreeIndex> Attach(
      CellStore store, RStarTree<1> tree, std::vector<Subfield> subfields,
      const IndexBuildInfo& info) {
    return std::unique_ptr<IntervalQuadtreeIndex>(
        new IntervalQuadtreeIndex(std::move(store), std::move(tree),
                                  std::move(subfields), info));
  }

  IndexMethod method() const override {
    return IndexMethod::kIntervalQuadtree;
  }
  Status FilterCandidateRanges(const ValueInterval& query,
                               std::vector<PosRange>* ranges) const override;
  const CellStore& cell_store() const override { return store_; }
  const IndexBuildInfo& build_info() const override { return info_; }
  Status UpdateCellValues(CellId id,
                          const std::vector<double>& values) override;

  const std::vector<Subfield>& subfields() const { return subfields_; }
  const RStarTree<1>& tree() const { return tree_; }

 private:
  IntervalQuadtreeIndex(CellStore store, RStarTree<1> tree,
                        std::vector<Subfield> subfields, IndexBuildInfo info)
      : store_(std::move(store)), tree_(std::move(tree)),
        subfields_(std::move(subfields)), info_(info) {}

  CellStore store_;
  RStarTree<1> tree_;
  std::vector<Subfield> subfields_;
  IndexBuildInfo info_;
};

}  // namespace fielddb

#endif  // FIELDDB_INDEX_INTERVAL_QUADTREE_H_

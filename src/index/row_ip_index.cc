#include "index/row_ip_index.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "index/update_util.h"

namespace fielddb {

StatusOr<std::unique_ptr<RowIpIndex>> RowIpIndex::Build(
    BufferPool* pool, const Field& field) {
  const auto t0 = std::chrono::steady_clock::now();
  const CellId n = field.NumCells();
  if (n == 0) {
    return Status::InvalidArgument("empty field");
  }

  // Infer the row structure from cell geometry: native order must be
  // row-major with constant per-row lower-y.
  std::vector<std::pair<uint64_t, uint64_t>> row_ranges;  // cell id spans
  double current_y = field.GetCell(0).Bounds().lo.y;
  uint64_t row_start = 0;
  for (CellId id = 1; id < n; ++id) {
    const double y = field.GetCell(id).Bounds().lo.y;
    if (std::abs(y - current_y) > kGeomEpsilon) {
      if (y < current_y) {
        return Status::InvalidArgument(
            "cells are not row-major; RowIpIndex needs a grid field");
      }
      row_ranges.emplace_back(row_start, id);
      row_start = id;
      current_y = y;
    }
  }
  row_ranges.emplace_back(row_start, n);
  if (row_ranges.size() < 2) {
    return Status::InvalidArgument("field has a single row");
  }

  // Cells stored in native (row-major) order: position == cell id.
  StatusOr<CellStore> store = CellStore::Build(pool, field, {});
  if (!store.ok()) return store.status();

  // Per-row directories, concatenated into one record store.
  std::vector<DirEntry> directory;
  directory.reserve(n);
  std::vector<Row> rows;
  rows.reserve(row_ranges.size());
  for (const auto& [start, end] : row_ranges) {
    Row row;
    row.dir_start = directory.size();
    for (uint64_t id = start; id < end; ++id) {
      const ValueInterval iv = field.GetCell(static_cast<CellId>(id))
                                   .Interval();
      directory.push_back(DirEntry{iv.min, iv.max, id});
    }
    std::sort(directory.begin() + row.dir_start, directory.end(),
              [](const DirEntry& a, const DirEntry& b) {
                return a.min < b.min;
              });
    row.dir_end = directory.size();
    rows.push_back(row);
  }
  StatusOr<RecordStore<DirEntry>> dir_store =
      RecordStore<DirEntry>::Build(pool, directory);
  if (!dir_store.ok()) return dir_store.status();

  IndexBuildInfo info;
  info.num_cells = n;
  info.num_index_entries = directory.size();
  info.store_pages = store->num_pages() + dir_store->num_pages();
  info.build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return std::unique_ptr<RowIpIndex>(
      new RowIpIndex(std::move(store).value(),
                     std::move(dir_store).value(), std::move(rows), info));
}

Status RowIpIndex::FilterCandidateRanges(
    const ValueInterval& query, std::vector<PosRange>* ranges) const {
  std::vector<uint64_t> positions;
  for (const Row& row : rows_) {
    // Scan this row's directory in min order; stop once min > query.max.
    // (The real IP-index binary-searches to the first anchor; our paged
    // scan touches the same directory pages a search would, since the
    // entries with min <= query.max form exactly the scanned prefix.)
    FIELDDB_RETURN_IF_ERROR(directory_.Scan(
        row.dir_start, row.dir_end,
        [&](uint64_t, const DirEntry& entry) {
          if (entry.min > query.max) return false;
          if (entry.max >= query.min) {
            positions.push_back(entry.position);
          }
          return true;
        }));
  }
  // Ascending merged runs; within a row candidates are often contiguous,
  // so the run list stays near the access-region count of the paper.
  std::sort(positions.begin(), positions.end());
  for (const uint64_t pos : positions) AppendPosition(ranges, pos);
  return Status::OK();
}

Status RowIpIndex::UpdateCellValues(CellId id,
                                    const std::vector<double>& values) {
  if (id >= store_.size()) {
    return Status::OutOfRange("no such cell");
  }
  const uint64_t pos = store_.PositionOf(id);
  ValueInterval old_iv, new_iv;
  FIELDDB_RETURN_IF_ERROR(
      ApplyValueUpdate(&store_, pos, values, &old_iv, &new_iv));
  if (new_iv == old_iv) return Status::OK();

  // Find the row's directory entry for this position and re-sort the
  // row (rows are short; the real IP-index does an analogous local fix).
  for (const Row& row : rows_) {
    bool found = false;
    uint64_t slot = 0;
    DirEntry entry;
    FIELDDB_RETURN_IF_ERROR(directory_.Scan(
        row.dir_start, row.dir_end, [&](uint64_t s, const DirEntry& e) {
          if (e.position == pos) {
            found = true;
            slot = s;
            entry = e;
            return false;
          }
          return true;
        }));
    if (!found) continue;
    entry.min = new_iv.min;
    entry.max = new_iv.max;
    FIELDDB_RETURN_IF_ERROR(directory_.Put(slot, entry));
    // Restore the row's min-order by bubbling the changed entry.
    std::vector<DirEntry> row_entries;
    FIELDDB_RETURN_IF_ERROR(directory_.Scan(
        row.dir_start, row.dir_end, [&](uint64_t, const DirEntry& e) {
          row_entries.push_back(e);
          return true;
        }));
    std::sort(row_entries.begin(), row_entries.end(),
              [](const DirEntry& a, const DirEntry& b) {
                return a.min < b.min;
              });
    for (size_t i = 0; i < row_entries.size(); ++i) {
      FIELDDB_RETURN_IF_ERROR(
          directory_.Put(row.dir_start + i, row_entries[i]));
    }
    return Status::OK();
  }
  return Status::Internal("directory entry not found");
}

}  // namespace fielddb

#ifndef FIELDDB_INDEX_LINEAR_SCAN_H_
#define FIELDDB_INDEX_LINEAR_SCAN_H_

#include <memory>

#include "field/field.h"
#include "index/value_index.h"
#include "storage/buffer_pool.h"

namespace fielddb {

/// The paper's 'LinearScan' baseline: no index at all — the filtering
/// step reads every page of the cell store and tests each cell's interval
/// against the query.
class LinearScanIndex final : public ValueIndex {
 public:
  /// Serializes `field` into `pool` in native cell order and returns the
  /// scan "index" over it.
  static StatusOr<std::unique_ptr<LinearScanIndex>> Build(BufferPool* pool,
                                                          const Field& field);

  /// Re-wraps a persisted store (for FieldDatabase::Open).
  static std::unique_ptr<LinearScanIndex> Attach(CellStore store,
                                                 const IndexBuildInfo& info) {
    return std::unique_ptr<LinearScanIndex>(
        new LinearScanIndex(std::move(store), info));
  }

  IndexMethod method() const override { return IndexMethod::kLinearScan; }
  Status FilterCandidateRanges(const ValueInterval& query,
                               std::vector<PosRange>* ranges) const override;
  const CellStore& cell_store() const override { return store_; }
  const IndexBuildInfo& build_info() const override { return info_; }
  Status UpdateCellValues(CellId id,
                          const std::vector<double>& values) override;

 private:
  LinearScanIndex(CellStore store, IndexBuildInfo info)
      : store_(std::move(store)), info_(info) {}

  CellStore store_;
  IndexBuildInfo info_;
};

}  // namespace fielddb

#endif  // FIELDDB_INDEX_LINEAR_SCAN_H_

#ifndef FIELDDB_INDEX_INTERVAL_TREE_H_
#define FIELDDB_INDEX_INTERVAL_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/interval.h"
#include "common/status.h"

namespace fielddb {

/// The classic centered interval tree (Edelsbrunner [5]) over cell value
/// intervals — the structure the isosurface/isoline literature the paper
/// discusses in §2.3 uses ([4], [24]). Built here as a *main-memory*
/// baseline: stabbing and intersection queries are O(log n + k), but the
/// whole structure lives in RAM, which is exactly the paper's objection
/// ("the Interval tree data structure is a main-memory based indexing
/// method thus it is not suitable for a large field database").
/// MemoryBytes() quantifies that objection.
class IntervalTree {
 public:
  struct Item {
    ValueInterval interval;
    uint64_t payload = 0;
  };

  /// Builds a static tree over `items` (O(n log n)).
  static IntervalTree Build(std::vector<Item> items);

  /// Appends the payloads of all intervals containing `w` (stabbing
  /// query), in ascending payload order.
  void Stab(double w, std::vector<uint64_t>* out) const;

  /// Appends the payloads of all intervals intersecting `query`, in
  /// ascending payload order.
  void Query(const ValueInterval& query, std::vector<uint64_t>* out) const;

  size_t size() const { return size_; }

  /// Approximate resident bytes of the structure — the cost of being
  /// main-memory-only.
  size_t MemoryBytes() const;

 private:
  struct Node {
    double center = 0.0;
    // Intervals containing `center`, sorted two ways for the classic
    // stabbing scan.
    std::vector<Item> by_min;   // ascending min
    std::vector<Item> by_max;   // descending max
    std::unique_ptr<Node> left;   // intervals entirely below center
    std::unique_ptr<Node> right;  // intervals entirely above center
  };

  static std::unique_ptr<Node> BuildNode(std::vector<Item> items);
  static void StabNode(const Node* node, double w,
                       std::vector<uint64_t>* out);
  static void QueryNode(const Node* node, const ValueInterval& q,
                        std::vector<uint64_t>* out);
  static size_t NodeBytes(const Node* node);

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace fielddb

#endif  // FIELDDB_INDEX_INTERVAL_TREE_H_

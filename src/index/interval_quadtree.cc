#include "index/interval_quadtree.h"

#include <algorithm>
#include <chrono>

#include "index/subfield_maintenance.h"
#include "index/update_util.h"

namespace fielddb {

namespace {

struct QuadWork {
  Rect2 rect;
  std::vector<CellId> cells;
  int depth;
};

// Recursively divides `work` until the interval-size condition holds,
// appending final quadrants' cells to `order` and recording one subfield
// per quadrant.
void Divide(const Field& field, const std::vector<ValueInterval>& intervals,
            const std::vector<Point2>& centroids, QuadWork work,
            double threshold, int max_depth, std::vector<CellId>* order,
            std::vector<Subfield>* subfields) {
  ValueInterval hull = ValueInterval::Empty();
  for (const CellId id : work.cells) hull.Extend(intervals[id]);

  const bool small_enough = hull.Length() <= threshold;
  if (small_enough || work.cells.size() <= 1 || work.depth >= max_depth) {
    if (work.cells.empty()) return;
    Subfield sf;
    sf.start = order->size();
    double si = 0.0;
    for (const CellId id : work.cells) {
      order->push_back(id);
      si += intervals[id].PaperSize();
    }
    sf.end = order->size();
    sf.interval = hull;
    sf.sum_interval_sizes = si;
    subfields->push_back(sf);
    return;
  }

  const Point2 mid = work.rect.Center();
  std::array<QuadWork, 4> quads;
  for (int q = 0; q < 4; ++q) {
    const bool east = (q & 1) != 0;
    const bool north = (q & 2) != 0;
    quads[q].rect = Rect2{{east ? mid.x : work.rect.lo.x,
                           north ? mid.y : work.rect.lo.y},
                          {east ? work.rect.hi.x : mid.x,
                           north ? work.rect.hi.y : mid.y}};
    quads[q].depth = work.depth + 1;
  }
  for (const CellId id : work.cells) {
    const Point2 c = centroids[id];
    const int q = (c.x >= mid.x ? 1 : 0) | (c.y >= mid.y ? 2 : 0);
    quads[q].cells.push_back(id);
  }
  work.cells.clear();
  work.cells.shrink_to_fit();
  for (QuadWork& quad : quads) {
    Divide(field, intervals, centroids, std::move(quad), threshold,
           max_depth, order, subfields);
  }
}

}  // namespace

StatusOr<std::unique_ptr<IntervalQuadtreeIndex>> IntervalQuadtreeIndex::Build(
    BufferPool* pool, const Field& field, const Options& options) {
  const auto t0 = std::chrono::steady_clock::now();
  if (options.threshold_fraction <= 0.0) {
    return Status::InvalidArgument("threshold fraction must be positive");
  }

  const CellId n = field.NumCells();
  std::vector<ValueInterval> intervals(n);
  std::vector<Point2> centroids(n);
  ValueInterval range = ValueInterval::Empty();
  for (CellId id = 0; id < n; ++id) {
    const CellRecord cell = field.GetCell(id);
    intervals[id] = cell.Interval();
    centroids[id] = cell.Centroid();
    range.Extend(intervals[id]);
  }
  // Fractional threshold -> an absolute interval-length bound. (Length,
  // not the paper's size = length + 1: the +1 exists to keep the cost
  // function's denominator positive and would swamp a fractional
  // threshold on normalized value ranges.)
  const double threshold = options.threshold_fraction * range.Length();

  QuadWork root;
  root.rect = field.Domain();
  root.depth = 0;
  root.cells.resize(n);
  for (CellId id = 0; id < n; ++id) root.cells[id] = id;

  std::vector<CellId> order;
  order.reserve(n);
  std::vector<Subfield> subfields;
  Divide(field, intervals, centroids, std::move(root), threshold,
         options.max_depth, &order, &subfields);

  StatusOr<CellStore> store = CellStore::Build(pool, field, order);
  if (!store.ok()) return store.status();

  StatusOr<RStarTree<1>> tree = [&]() -> StatusOr<RStarTree<1>> {
    if (options.bulk_load) {
      std::vector<RTreeEntry<1>> entries(subfields.size());
      for (size_t i = 0; i < subfields.size(); ++i) {
        entries[i].box = BoxFromInterval(subfields[i].interval);
        entries[i].a = subfields[i].start;
        entries[i].b = subfields[i].end;
      }
      return RStarTree<1>::BulkLoad(pool, entries, options.rstar);
    }
    StatusOr<RStarTree<1>> t = RStarTree<1>::Create(pool, options.rstar);
    if (!t.ok()) return t.status();
    for (const Subfield& sf : subfields) {
      FIELDDB_RETURN_IF_ERROR(
          t->Insert(BoxFromInterval(sf.interval), sf.start, sf.end));
    }
    return t;
  }();
  if (!tree.ok()) return tree.status();

  IndexBuildInfo info;
  info.num_cells = n;
  info.num_index_entries = subfields.size();
  info.num_subfields = subfields.size();
  info.tree_height = tree->height();
  info.tree_nodes = tree->num_nodes();
  info.store_pages = store->num_pages();
  info.build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return std::unique_ptr<IntervalQuadtreeIndex>(new IntervalQuadtreeIndex(
      std::move(store).value(), std::move(tree).value(),
      std::move(subfields), info));
}

Status IntervalQuadtreeIndex::UpdateCellValues(
    CellId id, const std::vector<double>& values) {
  if (id >= store_.size()) {
    return Status::OutOfRange("no such cell");
  }
  const uint64_t pos = store_.PositionOf(id);
  ValueInterval old_iv, new_iv;
  FIELDDB_RETURN_IF_ERROR(
      ApplyValueUpdate(&store_, pos, values, &old_iv, &new_iv));
  if (new_iv != old_iv) {
    FIELDDB_RETURN_IF_ERROR(
        RefreshSubfieldAfterUpdate(store_, &tree_, &subfields_, pos));
  }
  return Status::OK();
}

Status IntervalQuadtreeIndex::FilterCandidateRanges(
    const ValueInterval& query, std::vector<PosRange>* ranges) const {
  // Like I-Hilbert: qualifying subfields are [start, end) store runs;
  // merge them instead of expanding per position.
  std::vector<PosRange> raw;
  FIELDDB_RETURN_IF_ERROR(
      tree_.Search(BoxFromInterval(query), [&](const RTreeEntry<1>& e) {
        raw.push_back(PosRange{e.a, e.b});
        return true;
      }));
  std::sort(raw.begin(), raw.end(), [](const PosRange& x, const PosRange& y) {
    return x.begin < y.begin || (x.begin == y.begin && x.end < y.end);
  });
  for (const PosRange& r : raw) {
    if (r.end <= r.begin) continue;
    if (!ranges->empty() && r.begin <= ranges->back().end) {
      ranges->back().end = std::max(ranges->back().end, r.end);
    } else {
      ranges->push_back(r);
    }
  }
  return Status::OK();
}

}  // namespace fielddb

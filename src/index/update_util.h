#ifndef FIELDDB_INDEX_UPDATE_UTIL_H_
#define FIELDDB_INDEX_UPDATE_UTIL_H_

#include <vector>

#include "common/interval.h"
#include "common/status.h"
#include "index/cell_store.h"

namespace fielddb {

/// Rewrites the sample values of the record at store position `pos`
/// (geometry untouched) and reports the value interval before and after.
/// Shared by every ValueIndex::UpdateCellValues implementation.
/// CellStore::UpdateValues does the actual work in a single page fetch
/// and keeps the store's zone map in sync with the rewritten record.
inline Status ApplyValueUpdate(CellStore* store, uint64_t pos,
                               const std::vector<double>& values,
                               ValueInterval* old_iv,
                               ValueInterval* new_iv) {
  return store->UpdateValues(pos, values, old_iv, new_iv);
}

}  // namespace fielddb

#endif  // FIELDDB_INDEX_UPDATE_UTIL_H_

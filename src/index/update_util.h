#ifndef FIELDDB_INDEX_UPDATE_UTIL_H_
#define FIELDDB_INDEX_UPDATE_UTIL_H_

#include <vector>

#include "common/interval.h"
#include "common/status.h"
#include "index/cell_store.h"

namespace fielddb {

/// Rewrites the sample values of the record at store position `pos`
/// (geometry untouched) and reports the value interval before and after.
/// Shared by every ValueIndex::UpdateCellValues implementation.
inline Status ApplyValueUpdate(CellStore* store, uint64_t pos,
                               const std::vector<double>& values,
                               ValueInterval* old_iv,
                               ValueInterval* new_iv) {
  CellRecord record;
  FIELDDB_RETURN_IF_ERROR(store->Get(pos, &record));
  if (values.size() != record.num_vertices) {
    return Status::InvalidArgument(
        "expected " + std::to_string(record.num_vertices) +
        " values, got " + std::to_string(values.size()));
  }
  *old_iv = record.Interval();
  for (uint32_t i = 0; i < record.num_vertices; ++i) {
    record.w[i] = values[i];
  }
  *new_iv = record.Interval();
  return store->Put(pos, record);
}

}  // namespace fielddb

#endif  // FIELDDB_INDEX_UPDATE_UTIL_H_

#ifndef FIELDDB_INDEX_ROW_IP_INDEX_H_
#define FIELDDB_INDEX_ROW_IP_INDEX_H_

#include <memory>
#include <vector>

#include "field/field.h"
#include "index/value_index.h"
#include "storage/buffer_pool.h"
#include "storage/record_store.h"

namespace fielddb {

/// The related-work baseline of Section 2.3: Lin & Risch's IP-index
/// applied row by row to a DEM ([18, 19] — each grid row treated as a
/// 1-D "time sequence" with its own value index). The paper's critique:
/// "this approach could not handle the continuity of terrain by
/// considering only the continuity of one dimension (the axis X)."
///
/// Emulation: cells are stored row-major; per row, a paged directory of
/// (min, max, position) entries sorted by interval min. A value query
/// probes *every row's* directory (binary search on min, forward scan
/// while min <= query.max) — 1-D continuity within rows is exploited,
/// but nothing groups across rows, so the number of access regions
/// scales with the row count. Grid-shaped fields only (row structure is
/// inferred from cell geometry).
class RowIpIndex final : public ValueIndex {
 public:
  static StatusOr<std::unique_ptr<RowIpIndex>> Build(BufferPool* pool,
                                                     const Field& field);

  IndexMethod method() const override { return IndexMethod::kRowIp; }
  Status FilterCandidateRanges(const ValueInterval& query,
                               std::vector<PosRange>* ranges) const override;
  const CellStore& cell_store() const override { return store_; }
  const IndexBuildInfo& build_info() const override { return info_; }
  Status UpdateCellValues(CellId id,
                          const std::vector<double>& values) override;

  uint32_t num_rows() const {
    return static_cast<uint32_t>(rows_.size());
  }

 private:
  /// One directory entry: a cell's interval + its store position.
  struct DirEntry {
    double min = 0.0;
    double max = 0.0;
    uint64_t position = 0;
  };

  struct Row {
    uint64_t dir_start = 0;  // first slot in the shared directory store
    uint64_t dir_end = 0;
  };

  RowIpIndex(CellStore store, RecordStore<DirEntry> directory,
             std::vector<Row> rows, IndexBuildInfo info)
      : store_(std::move(store)), directory_(std::move(directory)),
        rows_(std::move(rows)), info_(info) {}

  CellStore store_;
  RecordStore<DirEntry> directory_;
  std::vector<Row> rows_;
  IndexBuildInfo info_;
};

}  // namespace fielddb

#endif  // FIELDDB_INDEX_ROW_IP_INDEX_H_

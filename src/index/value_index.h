#ifndef FIELDDB_INDEX_VALUE_INDEX_H_
#define FIELDDB_INDEX_VALUE_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/interval.h"
#include "common/status.h"
#include "index/cell_store.h"

namespace fielddb {

/// Identifies the paper's query-processing methods (Section 3 / 4).
enum class IndexMethod {
  kLinearScan,       // 'LinearScan': exhaustive scan, no index
  kIAll,             // 'I-All': one 1-D R*-tree entry per cell
  kIHilbert,         // 'I-Hilbert': subfields over Hilbert-ordered cells
  kIntervalQuadtree, // Interval Quadtree [15]: fixed-threshold baseline
  kRowIp,            // per-row IP-index [18, 19]: 1-D-continuity baseline
};

const char* IndexMethodName(IndexMethod method);

/// Build-time facts reported by an index, for EXPERIMENTS.md and benches.
struct IndexBuildInfo {
  uint64_t num_cells = 0;
  uint64_t num_index_entries = 0;  // intervals inserted in the R*-tree
  uint64_t num_subfields = 0;      // == num_index_entries for subfield
                                   // methods, 0 for LinearScan
  uint32_t tree_height = 0;
  uint64_t tree_nodes = 0;
  uint64_t store_pages = 0;
  double build_seconds = 0.0;
  /// External-sort build telemetry (0 when the build ran fully in RAM):
  /// spill runs written to temp files, and the high-water mark of the
  /// sorter's in-memory buffer — the number the memory budget bounds.
  uint64_t ext_spill_runs = 0;
  uint64_t ext_peak_buffered_bytes = 0;
};

/// The filtering step of a field value query (paper Section 3.2, Step 1):
/// given a query interval, produce the candidate cell-store positions —
/// every position whose cell *may* contain answer regions. Implementations
/// guarantee no false negatives; subfield methods may return false
/// positives (cells inside a matching subfield whose own interval misses
/// the query), which the estimation step filters out.
class ValueIndex {
 public:
  virtual ~ValueIndex() = default;

  virtual IndexMethod method() const = 0;
  std::string name() const { return IndexMethodName(method()); }

  /// Appends the candidate set as maximal ascending disjoint runs of
  /// store positions — the primary filter interface since the planner
  /// refactor. This is what the query engine's FilterOp consumes
  /// (CellStore::ScanRangesFiltered walks runs directly); a
  /// 1%-selectivity query then costs a handful of run structs instead of
  /// one uint64_t per candidate.
  virtual Status FilterCandidateRanges(const ValueInterval& query,
                                       std::vector<PosRange>* ranges) const = 0;

  /// The clustered store holding this index's cells.
  virtual const CellStore& cell_store() const = 0;

  virtual const IndexBuildInfo& build_info() const = 0;

  /// Replaces the sample values of field cell `id` (e.g. a sensor
  /// re-measurement; geometry is immutable). `values.size()` must match
  /// the cell's vertex count. Implementations keep their filtering
  /// guarantee (no false negatives) by maintaining the affected interval
  /// entries; subfield methods refresh the touched subfield's interval
  /// but do not re-optimize the partition (rebuild for that).
  virtual Status UpdateCellValues(CellId id,
                                  const std::vector<double>& values) = 0;
};

}  // namespace fielddb

#endif  // FIELDDB_INDEX_VALUE_INDEX_H_

#ifndef FIELDDB_INDEX_CELL_STORE_H_
#define FIELDDB_INDEX_CELL_STORE_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "field/cell.h"
#include "field/field.h"
#include "storage/buffer_pool.h"

namespace fielddb {

/// Cells serialized into fixed-slot pages in a caller-chosen order — the
/// physical clustering the paper requires: I-Hilbert stores cells in
/// Hilbert-value order so that a subfield's cells occupy a contiguous page
/// range addressable by (start, end) pointers (Fig. 6's leaf layout).
///
/// Positions are 0-based slots in storage order; `FieldCellId(pos)` maps a
/// slot back to the field's cell id (it is written inside each record).
class CellStore {
 public:
  /// Serializes `field`'s cells into `pool`'s file, visiting them in the
  /// order given by `order` (order[pos] = field cell id stored at slot
  /// pos). `order` must be a permutation of [0, field.NumCells()).
  /// Pass an empty `order` for the identity (native field order).
  static StatusOr<CellStore> Build(BufferPool* pool, const Field& field,
                                   const std::vector<CellId>& order);

  /// Re-attaches to a store persisted in `pool`'s file (pages
  /// [first_page, first_page + ceil(num_cells / per_page))). Scans the
  /// records once to rebuild the cell-id -> position map.
  static StatusOr<CellStore> Attach(BufferPool* pool, PageId first_page,
                                    uint64_t num_cells);

  /// First page of the store within the pool's file (for persistence).
  PageId first_page() const { return first_page_; }

  CellStore(CellStore&&) = default;
  CellStore& operator=(CellStore&&) = default;
  CellStore(const CellStore&) = delete;
  CellStore& operator=(const CellStore&) = delete;

  /// Number of stored cells.
  uint64_t size() const { return num_cells_; }

  /// Cells per page for this pool's page size.
  uint32_t cells_per_page() const { return cells_per_page_; }

  /// Number of pages occupied by the store.
  uint64_t num_pages() const;

  /// Reads the record at slot `pos`.
  Status Get(uint64_t pos, CellRecord* out) const;

  /// Overwrites the record at slot `pos`. The record must keep the slot's
  /// cell id and vertex count (stores hold fixed cell geometry; only
  /// sample values change — e.g. a sensor re-measurement).
  Status Put(uint64_t pos, const CellRecord& record);

  /// Visits slots [begin, end) in storage order, touching each page once.
  /// The visitor may return false to stop early.
  Status Scan(uint64_t begin, uint64_t end,
              const std::function<bool(uint64_t pos, const CellRecord&)>&
                  visit) const;

  /// Slot position of a field cell id (inverse of the build order).
  uint64_t PositionOf(CellId field_cell_id) const {
    return position_of_[field_cell_id];
  }

 private:
  CellStore(BufferPool* pool, PageId first_page, uint64_t num_cells,
            uint32_t cells_per_page, std::vector<uint64_t> position_of)
      : pool_(pool), first_page_(first_page), num_cells_(num_cells),
        cells_per_page_(cells_per_page),
        position_of_(std::move(position_of)) {}

  BufferPool* pool_;
  PageId first_page_;
  uint64_t num_cells_;
  uint32_t cells_per_page_;
  std::vector<uint64_t> position_of_;
};

}  // namespace fielddb

#endif  // FIELDDB_INDEX_CELL_STORE_H_

#ifndef FIELDDB_INDEX_CELL_STORE_H_
#define FIELDDB_INDEX_CELL_STORE_H_

#include <algorithm>
#include <functional>
#include <vector>

#include "common/simd/interval_filter.h"
#include "common/status.h"
#include "field/cell.h"
#include "field/field.h"
#include "storage/buffer_pool.h"

namespace fielddb {

/// Cells serialized into fixed-slot pages in a caller-chosen order — the
/// physical clustering the paper requires: I-Hilbert stores cells in
/// Hilbert-value order so that a subfield's cells occupy a contiguous page
/// range addressable by (start, end) pointers (Fig. 6's leaf layout).
///
/// Positions are 0-based slots in storage order; `FieldCellId(pos)` maps a
/// slot back to the field's cell id (it is written inside each record).
///
/// Alongside the pages the store keeps an in-memory SoA *zone map*: one
/// min[] and one max[] double per slot, in storage order, always equal to
/// the slot's record interval. The filter step runs its SIMD
/// interval-intersection kernel over these contiguous arrays and never
/// deserializes a record for a non-matching slot. The zone map is derived
/// state — Build fills it from the field, Attach rebuilds it from the
/// records it already scans, Put/UpdateValues maintain it — so nothing
/// about the page format or persistence changes. Concurrency contract is
/// the pages': any number of readers, writers externally excluded
/// (DESIGN.md §11).
class CellStore {
 public:
  /// Serializes `field`'s cells into `pool`'s file, visiting them in the
  /// order given by `order` (order[pos] = field cell id stored at slot
  /// pos). `order` must be a permutation of [0, field.NumCells()).
  /// Pass an empty `order` for the identity (native field order).
  static StatusOr<CellStore> Build(BufferPool* pool, const Field& field,
                                   const std::vector<CellId>& order);

  /// Streaming counterpart of Build for callers that produce records one
  /// slot at a time instead of holding a full order vector — the
  /// external-sort build feeds each merged record straight in. Append()
  /// exactly `num_cells` records in storage order, then Finish(). The
  /// page layout is byte-identical to Build's: Build itself is a loop
  /// over this class. Defined after the class (it holds a CellStore).
  class Appender;

  /// Re-attaches to a store persisted in `pool`'s file (pages
  /// [first_page, first_page + ceil(num_cells / per_page))). Scans the
  /// records once to rebuild the cell-id -> position map and the zone
  /// map.
  static StatusOr<CellStore> Attach(BufferPool* pool, PageId first_page,
                                    uint64_t num_cells);

  /// First page of the store within the pool's file (for persistence).
  PageId first_page() const { return first_page_; }

  CellStore(CellStore&&) = default;
  CellStore& operator=(CellStore&&) = default;
  CellStore(const CellStore&) = delete;
  CellStore& operator=(const CellStore&) = delete;

  /// Number of stored cells.
  uint64_t size() const { return num_cells_; }

  /// Cells per page for this pool's page size.
  uint32_t cells_per_page() const { return cells_per_page_; }

  /// Number of pages occupied by the store.
  uint64_t num_pages() const;

  /// Reads the record at slot `pos`.
  Status Get(uint64_t pos, CellRecord* out) const;

  /// Overwrites the record at slot `pos`. The record must keep the slot's
  /// cell id and vertex count (stores hold fixed cell geometry; only
  /// sample values change — e.g. a sensor re-measurement).
  Status Put(uint64_t pos, const CellRecord& record);

  /// Rewrites only the sample values of the record at slot `pos` and
  /// reports the value interval before and after — the update fast path
  /// shared by every index method (one page fetch instead of the
  /// Get + Put pair's three). `values.size()` must match the record's
  /// vertex count.
  Status UpdateValues(uint64_t pos, const std::vector<double>& values,
                      ValueInterval* old_iv, ValueInterval* new_iv);

  /// Visits slots [begin, end) in storage order, touching each page once.
  /// The visitor may return false to stop early.
  Status Scan(uint64_t begin, uint64_t end,
              const std::function<bool(uint64_t pos, const CellRecord&)>&
                  visit) const;

  /// Scan with a statically-bound visitor — `visit(uint64_t pos, const
  /// CellRecord&) -> bool` — so hot loops (estimation, benches) pay no
  /// std::function indirection per record.
  template <typename Visitor>
  Status ScanWith(uint64_t begin, uint64_t end, Visitor&& visit) const {
    if (begin > end || end > num_cells_) {
      return Status::OutOfRange("scan range out of bounds");
    }
    CellRecord record;
    uint64_t pos = begin;
    while (pos < end) {
      const PageId page = first_page_ + pos / cells_per_page_;
      PinnedPage pin;
      FIELDDB_RETURN_IF_ERROR(pool_->Fetch(page, &pin));
      const uint64_t page_end = std::min<uint64_t>(
          end, (pos / cells_per_page_ + 1) * cells_per_page_);
      for (; pos < page_end; ++pos) {
        const uint32_t slot = static_cast<uint32_t>(pos % cells_per_page_);
        pin.page().Read(slot * sizeof(CellRecord), &record,
                        sizeof(CellRecord));
        if (!visit(pos, record)) return Status::OK();
      }
    }
    return Status::OK();
  }

  /// Visits every slot of each run in `ranges` (ascending, disjoint),
  /// reading ahead the pool's readahead window (BufferPool::
  /// readahead_pages, FieldDatabaseOptions::readahead_pages) at a time
  /// so a run's pages are fetched in one vectored batch instead of one
  /// blocking read per page. I/O totals equal Scan-ing each run
  /// (readahead reads count as the physical reads Fetch would have
  /// issued).
  template <typename Visitor>
  Status ScanRanges(const PosRange* ranges, size_t num_ranges,
                    Visitor&& visit) const {
    CellRecord record;
    const uint64_t readahead = std::max<size_t>(pool_->readahead_pages(), 1);
    PageId prefetched_to = 0;
    for (size_t r = 0; r < num_ranges; ++r) {
      uint64_t pos = ranges[r].begin;
      const uint64_t end = ranges[r].end;
      if (pos > end || end > num_cells_) {
        return Status::OutOfRange("scan range out of bounds");
      }
      while (pos < end) {
        const uint64_t page_index = pos / cells_per_page_;
        const PageId page = first_page_ + page_index;
        if (page >= prefetched_to) {
          const uint64_t last_page = first_page_ + (end - 1) / cells_per_page_;
          const size_t window = static_cast<size_t>(
              std::min<uint64_t>(readahead, last_page - page + 1));
          FIELDDB_RETURN_IF_ERROR(pool_->PrefetchRange(page, window));
          prefetched_to = page + window;
        }
        PinnedPage pin;
        FIELDDB_RETURN_IF_ERROR(pool_->Fetch(page, &pin));
        const uint64_t page_end =
            std::min<uint64_t>(end, (page_index + 1) * cells_per_page_);
        for (; pos < page_end; ++pos) {
          const uint32_t slot = static_cast<uint32_t>(pos % cells_per_page_);
          pin.page().Read(slot * sizeof(CellRecord), &record,
                          sizeof(CellRecord));
          if (!visit(pos, record)) return Status::OK();
        }
      }
    }
    return Status::OK();
  }

  /// ScanRanges with the zone-map filter fused in: every page of every
  /// run is still fetched (so I/O totals — and the paper's page-access
  /// semantics — are those of the unfiltered scan), but only slots whose
  /// zone interval intersects `query` are deserialized and visited.
  /// Non-matching slots are counted into `*skipped` (when non-null)
  /// without their records ever being touched. The zone test is exact
  /// (the zone entry IS the record's interval), so for visited cells
  /// `cell.Interval().Intersects(query)` always holds.
  template <typename Visitor>
  Status ScanRangesFiltered(const PosRange* ranges, size_t num_ranges,
                            const ValueInterval& query, uint64_t* skipped,
                            Visitor&& visit) const {
    CellRecord record;
    std::vector<PosRange> matches;
    const uint64_t readahead = std::max<size_t>(pool_->readahead_pages(), 1);
    PageId prefetched_to = 0;
    for (size_t r = 0; r < num_ranges; ++r) {
      const uint64_t begin = ranges[r].begin;
      const uint64_t end = ranges[r].end;
      if (begin > end || end > num_cells_) {
        return Status::OutOfRange("scan range out of bounds");
      }
      if (begin == end) continue;
      matches.clear();
      simd::FilterIntervalRanges(zone_min_.data() + begin,
                                 zone_max_.data() + begin, end - begin, begin,
                                 query.min, query.max, &matches);
      if (skipped != nullptr) {
        *skipped += (end - begin) - TotalRangeLength(matches);
      }
      size_t m = 0;
      const uint64_t last_page_index = (end - 1) / cells_per_page_;
      for (uint64_t page_index = begin / cells_per_page_;
           page_index <= last_page_index; ++page_index) {
        const PageId page = first_page_ + page_index;
        if (page >= prefetched_to) {
          const size_t window = static_cast<size_t>(std::min<uint64_t>(
              readahead, last_page_index - page_index + 1));
          FIELDDB_RETURN_IF_ERROR(pool_->PrefetchRange(page, window));
          prefetched_to = page + window;
        }
        PinnedPage pin;
        FIELDDB_RETURN_IF_ERROR(pool_->Fetch(page, &pin));
        const uint64_t page_begin = page_index * cells_per_page_;
        const uint64_t page_end = page_begin + cells_per_page_;
        while (m < matches.size() && matches[m].begin < page_end) {
          const uint64_t lo = std::max(matches[m].begin, page_begin);
          const uint64_t hi = std::min(matches[m].end, page_end);
          for (uint64_t pos = lo; pos < hi; ++pos) {
            const uint32_t slot =
                static_cast<uint32_t>(pos % cells_per_page_);
            pin.page().Read(slot * sizeof(CellRecord), &record,
                            sizeof(CellRecord));
            if (!visit(pos, record)) return Status::OK();
          }
          if (matches[m].end <= page_end) {
            ++m;
          } else {
            break;  // run continues on the next page
          }
        }
      }
    }
    return Status::OK();
  }

  /// Runs the dispatched SIMD kernel over the whole zone map, appending
  /// the runs of slots whose interval intersects `query`. Pure in-memory
  /// work: no page I/O, no record deserialization.
  void FilterZoneMap(const ValueInterval& query,
                     std::vector<PosRange>* out) const {
    simd::FilterIntervalRanges(zone_min_.data(), zone_max_.data(), num_cells_,
                               0, query.min, query.max, out);
  }

  /// Strided zone-map sample, the planner's sublinear selectivity probe
  /// for stores too large for an exact FilterZoneMap sweep: tests every
  /// `stride`-th slot (stride 0 behaves as 1) against `query`.
  struct ZoneProbe {
    uint64_t sampled = 0;     // slots tested
    uint64_t matched = 0;     // tested slots intersecting the query
    uint64_t run_starts = 0;  // matches whose previous sample missed —
                              // an estimate of the candidate run count
  };
  ZoneProbe ProbeZoneMap(const ValueInterval& query, uint64_t stride) const;

  /// The SoA zone map: per-slot record-interval bounds in storage order.
  const std::vector<double>& zone_min() const { return zone_min_; }
  const std::vector<double>& zone_max() const { return zone_max_; }

  /// The zone entry of slot `pos` as an interval (equals the record's
  /// Interval() at all times).
  ValueInterval ZoneIntervalOf(uint64_t pos) const {
    return ValueInterval{zone_min_[pos], zone_max_[pos]};
  }

  /// Slot position of a field cell id (inverse of the build order).
  uint64_t PositionOf(CellId field_cell_id) const {
    return position_of_[field_cell_id];
  }

 private:
  CellStore(BufferPool* pool, PageId first_page, uint64_t num_cells,
            uint32_t cells_per_page, std::vector<uint64_t> position_of)
      : pool_(pool), first_page_(first_page), num_cells_(num_cells),
        cells_per_page_(cells_per_page),
        position_of_(std::move(position_of)),
        zone_min_(num_cells), zone_max_(num_cells) {}

  BufferPool* pool_;
  PageId first_page_;
  uint64_t num_cells_;
  uint32_t cells_per_page_;
  std::vector<uint64_t> position_of_;
  std::vector<double> zone_min_;
  std::vector<double> zone_max_;
};

class CellStore::Appender {
 public:
  Appender(BufferPool* pool, uint64_t num_cells);
  /// Writes `record` at the next slot; allocates a page per
  /// cells_per_page() records. Validates the same permutation invariant
  /// Build does (each cell id stored exactly once).
  Status Append(const CellRecord& record);
  /// Slots appended so far.
  uint64_t size() const { return pos_; }
  StatusOr<CellStore> Finish();

 private:
  CellStore store_;
  PinnedPage pin_;
  uint64_t pos_ = 0;
};

}  // namespace fielddb

#endif  // FIELDDB_INDEX_CELL_STORE_H_

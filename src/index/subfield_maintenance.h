#ifndef FIELDDB_INDEX_SUBFIELD_MAINTENANCE_H_
#define FIELDDB_INDEX_SUBFIELD_MAINTENANCE_H_

#include <vector>

#include "common/status.h"
#include "index/cell_store.h"
#include "index/subfield.h"
#include "rtree/rstar_tree.h"

namespace fielddb {

/// Index of the subfield whose [start, end) range contains store
/// position `pos`. Subfields must be the contiguous ordered partition
/// the builders produce.
size_t SubfieldContaining(const std::vector<Subfield>& subfields,
                          uint64_t pos);

/// After the cell at store position `pos` changed values, refreshes the
/// containing subfield: recomputes its interval hull and SI from its
/// members and, if the hull moved, replaces its entry in the 1-D
/// R*-tree. Shared by I-Hilbert and the Interval Quadtree.
Status RefreshSubfieldAfterUpdate(const CellStore& store,
                                  RStarTree<1>* tree,
                                  std::vector<Subfield>* subfields,
                                  uint64_t pos);

}  // namespace fielddb

#endif  // FIELDDB_INDEX_SUBFIELD_MAINTENANCE_H_

#include "index/interval_tree.h"

#include <algorithm>

namespace fielddb {

IntervalTree IntervalTree::Build(std::vector<Item> items) {
  IntervalTree tree;
  tree.size_ = items.size();
  if (!items.empty()) tree.root_ = BuildNode(std::move(items));
  return tree;
}

std::unique_ptr<IntervalTree::Node> IntervalTree::BuildNode(
    std::vector<Item> items) {
  if (items.empty()) return nullptr;
  auto node = std::make_unique<Node>();

  // Center on the median interval midpoint for balance.
  std::vector<double> mids(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    mids[i] = items[i].interval.Center();
  }
  std::nth_element(mids.begin(), mids.begin() + mids.size() / 2,
                   mids.end());
  node->center = mids[mids.size() / 2];

  std::vector<Item> left, right;
  for (Item& item : items) {
    if (item.interval.max < node->center) {
      left.push_back(std::move(item));
    } else if (item.interval.min > node->center) {
      right.push_back(std::move(item));
    } else {
      node->by_min.push_back(item);
      node->by_max.push_back(std::move(item));
    }
  }
  std::sort(node->by_min.begin(), node->by_min.end(),
            [](const Item& a, const Item& b) {
              return a.interval.min < b.interval.min;
            });
  std::sort(node->by_max.begin(), node->by_max.end(),
            [](const Item& a, const Item& b) {
              return a.interval.max > b.interval.max;
            });
  node->left = BuildNode(std::move(left));
  node->right = BuildNode(std::move(right));
  return node;
}

void IntervalTree::StabNode(const Node* node, double w,
                            std::vector<uint64_t>* out) {
  while (node != nullptr) {
    if (w < node->center) {
      // Only intervals whose min <= w can contain w.
      for (const Item& item : node->by_min) {
        if (item.interval.min > w) break;
        out->push_back(item.payload);
      }
      node = node->left.get();
    } else if (w > node->center) {
      for (const Item& item : node->by_max) {
        if (item.interval.max < w) break;
        out->push_back(item.payload);
      }
      node = node->right.get();
    } else {
      // Exactly the center: every stored interval contains it.
      for (const Item& item : node->by_min) {
        out->push_back(item.payload);
      }
      return;
    }
  }
}

void IntervalTree::QueryNode(const Node* node, const ValueInterval& q,
                             std::vector<uint64_t>* out) {
  if (node == nullptr) return;
  if (q.max < node->center) {
    // The query lies below the center: stored intervals intersect iff
    // min <= q.max.
    for (const Item& item : node->by_min) {
      if (item.interval.min > q.max) break;
      out->push_back(item.payload);
    }
    QueryNode(node->left.get(), q, out);
  } else if (q.min > node->center) {
    for (const Item& item : node->by_max) {
      if (item.interval.max < q.min) break;
      out->push_back(item.payload);
    }
    QueryNode(node->right.get(), q, out);
  } else {
    // The query straddles the center: all stored intervals intersect,
    // and both subtrees may contribute.
    for (const Item& item : node->by_min) {
      out->push_back(item.payload);
    }
    QueryNode(node->left.get(), q, out);
    QueryNode(node->right.get(), q, out);
  }
}

void IntervalTree::Stab(double w, std::vector<uint64_t>* out) const {
  const size_t before = out->size();
  StabNode(root_.get(), w, out);
  std::sort(out->begin() + before, out->end());
}

void IntervalTree::Query(const ValueInterval& query,
                         std::vector<uint64_t>* out) const {
  if (query.IsEmpty()) return;
  const size_t before = out->size();
  QueryNode(root_.get(), query, out);
  std::sort(out->begin() + before, out->end());
}

size_t IntervalTree::NodeBytes(const Node* node) {
  if (node == nullptr) return 0;
  return sizeof(Node) +
         (node->by_min.capacity() + node->by_max.capacity()) *
             sizeof(Item) +
         NodeBytes(node->left.get()) + NodeBytes(node->right.get());
}

size_t IntervalTree::MemoryBytes() const { return NodeBytes(root_.get()); }

}  // namespace fielddb

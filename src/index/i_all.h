#ifndef FIELDDB_INDEX_I_ALL_H_
#define FIELDDB_INDEX_I_ALL_H_

#include <memory>

#include "field/field.h"
#include "index/value_index.h"
#include "rtree/rstar_tree.h"
#include "storage/buffer_pool.h"

namespace fielddb {

/// The paper's 'I-All' straw man (Section 3): every individual cell's
/// value interval goes into the 1-D R*-tree. Simple, but the tree holds
/// as many heavily-overlapping intervals as there are cells — tall, large
/// and slow; on smooth / high-selectivity workloads it loses even to
/// LinearScan (the effect Fig. 11.a shows).
struct IAllOptions {
  /// When true, intervals are packed bottom-up (Kamel–Faloutsos [14])
  /// instead of inserted one by one; identical query semantics, much
  /// faster builds on the million-cell workloads.
  bool bulk_load = true;
  RStarOptions rstar;
};

class IAllIndex final : public ValueIndex {
 public:
  using Options = IAllOptions;

  static StatusOr<std::unique_ptr<IAllIndex>> Build(
      BufferPool* pool, const Field& field, const Options& options = {});

  /// Re-wraps a persisted store + tree (for FieldDatabase::Open).
  static std::unique_ptr<IAllIndex> Attach(CellStore store,
                                           RStarTree<1> tree,
                                           const IndexBuildInfo& info) {
    return std::unique_ptr<IAllIndex>(
        new IAllIndex(std::move(store), std::move(tree), info));
  }

  IndexMethod method() const override { return IndexMethod::kIAll; }
  Status FilterCandidateRanges(const ValueInterval& query,
                               std::vector<PosRange>* ranges) const override;
  const CellStore& cell_store() const override { return store_; }
  const IndexBuildInfo& build_info() const override { return info_; }
  Status UpdateCellValues(CellId id,
                          const std::vector<double>& values) override;

  const RStarTree<1>& tree() const { return tree_; }

 private:
  IAllIndex(CellStore store, RStarTree<1> tree, IndexBuildInfo info)
      : store_(std::move(store)), tree_(std::move(tree)), info_(info) {}

  CellStore store_;
  RStarTree<1> tree_;
  IndexBuildInfo info_;
};

}  // namespace fielddb

#endif  // FIELDDB_INDEX_I_ALL_H_

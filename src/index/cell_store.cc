#include "index/cell_store.h"

#include <cstring>

namespace fielddb {

StatusOr<CellStore> CellStore::Build(BufferPool* pool, const Field& field,
                                     const std::vector<CellId>& order) {
  const uint64_t n = field.NumCells();
  if (!order.empty() && order.size() != n) {
    return Status::InvalidArgument("order size does not match cell count");
  }
  const uint32_t per_page =
      pool->file()->page_size() / static_cast<uint32_t>(sizeof(CellRecord));
  if (per_page == 0) {
    return Status::InvalidArgument("page too small for a cell record");
  }

  std::vector<uint64_t> position_of(n, ~uint64_t{0});
  PageId first_page = kInvalidPageId;
  PinnedPage pin;
  for (uint64_t pos = 0; pos < n; ++pos) {
    const uint32_t slot = static_cast<uint32_t>(pos % per_page);
    if (slot == 0) {
      StatusOr<PageId> id = pool->Allocate(&pin);
      if (!id.ok()) return id.status();
      if (first_page == kInvalidPageId) first_page = *id;
    }
    const CellId cell_id = order.empty() ? static_cast<CellId>(pos)
                                         : order[pos];
    if (cell_id >= n || position_of[cell_id] != ~uint64_t{0}) {
      return Status::InvalidArgument("order is not a permutation");
    }
    position_of[cell_id] = pos;
    const CellRecord record = field.GetCell(cell_id);
    pin.MutablePage().Write(slot * sizeof(CellRecord), &record,
                            sizeof(CellRecord));
  }
  pin.Release();
  if (n == 0) {
    // Allocate one (empty) page so first_page_ is always valid.
    StatusOr<PageId> id = pool->Allocate(&pin);
    if (!id.ok()) return id.status();
    first_page = *id;
  }
  return CellStore(pool, first_page, n, per_page, std::move(position_of));
}

StatusOr<CellStore> CellStore::Attach(BufferPool* pool, PageId first_page,
                                      uint64_t num_cells) {
  const uint32_t per_page =
      pool->file()->page_size() / static_cast<uint32_t>(sizeof(CellRecord));
  if (per_page == 0) {
    return Status::InvalidArgument("page too small for a cell record");
  }
  CellStore store(pool, first_page, num_cells, per_page,
                  std::vector<uint64_t>(num_cells, ~uint64_t{0}));
  FIELDDB_RETURN_IF_ERROR(store.Scan(
      0, num_cells, [&](uint64_t pos, const CellRecord& cell) {
        if (cell.id < num_cells) store.position_of_[cell.id] = pos;
        return true;
      }));
  for (const uint64_t pos : store.position_of_) {
    if (pos == ~uint64_t{0}) {
      return Status::Corruption("cell store is missing cell ids");
    }
  }
  return store;
}

uint64_t CellStore::num_pages() const {
  if (num_cells_ == 0) return 1;
  return (num_cells_ + cells_per_page_ - 1) / cells_per_page_;
}

Status CellStore::Get(uint64_t pos, CellRecord* out) const {
  if (pos >= num_cells_) {
    return Status::OutOfRange("cell position out of range");
  }
  const PageId page = first_page_ + pos / cells_per_page_;
  const uint32_t slot = static_cast<uint32_t>(pos % cells_per_page_);
  PinnedPage pin;
  FIELDDB_RETURN_IF_ERROR(pool_->Fetch(page, &pin));
  pin.page().Read(slot * sizeof(CellRecord), out, sizeof(CellRecord));
  return Status::OK();
}

Status CellStore::Put(uint64_t pos, const CellRecord& record) {
  if (pos >= num_cells_) {
    return Status::OutOfRange("cell position out of range");
  }
  CellRecord current;
  FIELDDB_RETURN_IF_ERROR(Get(pos, &current));
  if (record.id != current.id ||
      record.num_vertices != current.num_vertices) {
    return Status::InvalidArgument(
        "Put must preserve the slot's cell id and vertex count");
  }
  const PageId page = first_page_ + pos / cells_per_page_;
  const uint32_t slot = static_cast<uint32_t>(pos % cells_per_page_);
  PinnedPage pin;
  FIELDDB_RETURN_IF_ERROR(pool_->Fetch(page, &pin));
  pin.MutablePage().Write(slot * sizeof(CellRecord), &record,
                          sizeof(CellRecord));
  return Status::OK();
}

Status CellStore::Scan(
    uint64_t begin, uint64_t end,
    const std::function<bool(uint64_t, const CellRecord&)>& visit) const {
  if (begin > end || end > num_cells_) {
    return Status::OutOfRange("scan range out of bounds");
  }
  CellRecord record;
  uint64_t pos = begin;
  while (pos < end) {
    const PageId page = first_page_ + pos / cells_per_page_;
    PinnedPage pin;
    FIELDDB_RETURN_IF_ERROR(pool_->Fetch(page, &pin));
    const uint64_t page_end =
        std::min<uint64_t>(end, (pos / cells_per_page_ + 1) * cells_per_page_);
    for (; pos < page_end; ++pos) {
      const uint32_t slot = static_cast<uint32_t>(pos % cells_per_page_);
      pin.page().Read(slot * sizeof(CellRecord), &record,
                      sizeof(CellRecord));
      if (!visit(pos, record)) return Status::OK();
    }
  }
  return Status::OK();
}

}  // namespace fielddb

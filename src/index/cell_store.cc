#include "index/cell_store.h"

#include <cstring>

namespace fielddb {

CellStore::Appender::Appender(BufferPool* pool, uint64_t num_cells)
    : store_(pool, kInvalidPageId, num_cells,
             pool->file()->page_size() /
                 static_cast<uint32_t>(sizeof(CellRecord)),
             std::vector<uint64_t>(num_cells, ~uint64_t{0})) {}

Status CellStore::Appender::Append(const CellRecord& record) {
  if (store_.cells_per_page_ == 0) {
    return Status::InvalidArgument("page too small for a cell record");
  }
  if (pos_ >= store_.num_cells_) {
    return Status::OutOfRange("appended past the declared cell count");
  }
  const uint32_t slot =
      static_cast<uint32_t>(pos_ % store_.cells_per_page_);
  if (slot == 0) {
    StatusOr<PageId> id = store_.pool_->Allocate(&pin_);
    if (!id.ok()) return id.status();
    if (store_.first_page_ == kInvalidPageId) store_.first_page_ = *id;
  }
  if (record.id >= store_.num_cells_ ||
      store_.position_of_[record.id] != ~uint64_t{0}) {
    return Status::InvalidArgument("order is not a permutation");
  }
  store_.position_of_[record.id] = pos_;
  const ValueInterval iv = record.Interval();
  store_.zone_min_[pos_] = iv.min;
  store_.zone_max_[pos_] = iv.max;
  pin_.MutablePage().Write(slot * sizeof(CellRecord), &record,
                           sizeof(CellRecord));
  ++pos_;
  return Status::OK();
}

StatusOr<CellStore> CellStore::Appender::Finish() {
  if (store_.cells_per_page_ == 0) {
    return Status::InvalidArgument("page too small for a cell record");
  }
  if (pos_ != store_.num_cells_) {
    return Status::InvalidArgument("appended fewer cells than declared");
  }
  pin_.Release();
  if (store_.num_cells_ == 0) {
    // Allocate one (empty) page so first_page_ is always valid.
    StatusOr<PageId> id = store_.pool_->Allocate(&pin_);
    if (!id.ok()) return id.status();
    store_.first_page_ = *id;
    pin_.Release();
  }
  return std::move(store_);
}

StatusOr<CellStore> CellStore::Build(BufferPool* pool, const Field& field,
                                     const std::vector<CellId>& order) {
  const uint64_t n = field.NumCells();
  if (!order.empty() && order.size() != n) {
    return Status::InvalidArgument("order size does not match cell count");
  }
  Appender appender(pool, n);
  for (uint64_t pos = 0; pos < n; ++pos) {
    const CellId cell_id = order.empty() ? static_cast<CellId>(pos)
                                         : order[pos];
    if (cell_id >= n) {
      return Status::InvalidArgument("order is not a permutation");
    }
    FIELDDB_RETURN_IF_ERROR(appender.Append(field.GetCell(cell_id)));
  }
  return appender.Finish();
}

StatusOr<CellStore> CellStore::Attach(BufferPool* pool, PageId first_page,
                                      uint64_t num_cells) {
  const uint32_t per_page =
      pool->file()->page_size() / static_cast<uint32_t>(sizeof(CellRecord));
  if (per_page == 0) {
    return Status::InvalidArgument("page too small for a cell record");
  }
  CellStore store(pool, first_page, num_cells, per_page,
                  std::vector<uint64_t>(num_cells, ~uint64_t{0}));
  // One pass rebuilds both derived structures: the cell-id -> position
  // map and the zone map.
  FIELDDB_RETURN_IF_ERROR(store.ScanWith(
      0, num_cells, [&](uint64_t pos, const CellRecord& cell) {
        if (cell.id < num_cells) store.position_of_[cell.id] = pos;
        const ValueInterval iv = cell.Interval();
        store.zone_min_[pos] = iv.min;
        store.zone_max_[pos] = iv.max;
        return true;
      }));
  for (const uint64_t pos : store.position_of_) {
    if (pos == ~uint64_t{0}) {
      return Status::Corruption("cell store is missing cell ids");
    }
  }
  return store;
}

uint64_t CellStore::num_pages() const {
  if (num_cells_ == 0) return 1;
  return (num_cells_ + cells_per_page_ - 1) / cells_per_page_;
}

Status CellStore::Get(uint64_t pos, CellRecord* out) const {
  if (pos >= num_cells_) {
    return Status::OutOfRange("cell position out of range");
  }
  const PageId page = first_page_ + pos / cells_per_page_;
  const uint32_t slot = static_cast<uint32_t>(pos % cells_per_page_);
  PinnedPage pin;
  FIELDDB_RETURN_IF_ERROR(pool_->Fetch(page, &pin));
  pin.page().Read(slot * sizeof(CellRecord), out, sizeof(CellRecord));
  return Status::OK();
}

Status CellStore::Put(uint64_t pos, const CellRecord& record) {
  if (pos >= num_cells_) {
    return Status::OutOfRange("cell position out of range");
  }
  CellRecord current;
  FIELDDB_RETURN_IF_ERROR(Get(pos, &current));
  if (record.id != current.id ||
      record.num_vertices != current.num_vertices) {
    return Status::InvalidArgument(
        "Put must preserve the slot's cell id and vertex count");
  }
  const PageId page = first_page_ + pos / cells_per_page_;
  const uint32_t slot = static_cast<uint32_t>(pos % cells_per_page_);
  PinnedPage pin;
  FIELDDB_RETURN_IF_ERROR(pool_->Fetch(page, &pin));
  pin.MutablePage().Write(slot * sizeof(CellRecord), &record,
                          sizeof(CellRecord));
  const ValueInterval iv = record.Interval();
  zone_min_[pos] = iv.min;
  zone_max_[pos] = iv.max;
  return Status::OK();
}

Status CellStore::UpdateValues(uint64_t pos,
                               const std::vector<double>& values,
                               ValueInterval* old_iv, ValueInterval* new_iv) {
  if (pos >= num_cells_) {
    return Status::OutOfRange("cell position out of range");
  }
  const PageId page = first_page_ + pos / cells_per_page_;
  const uint32_t slot = static_cast<uint32_t>(pos % cells_per_page_);
  PinnedPage pin;
  FIELDDB_RETURN_IF_ERROR(pool_->Fetch(page, &pin));
  CellRecord record;
  pin.page().Read(slot * sizeof(CellRecord), &record, sizeof(CellRecord));
  if (values.size() != record.num_vertices) {
    return Status::InvalidArgument(
        "expected " + std::to_string(record.num_vertices) + " values, got " +
        std::to_string(values.size()));
  }
  *old_iv = record.Interval();
  for (uint32_t i = 0; i < record.num_vertices; ++i) {
    record.w[i] = values[i];
  }
  *new_iv = record.Interval();
  pin.MutablePage().Write(slot * sizeof(CellRecord), &record,
                          sizeof(CellRecord));
  zone_min_[pos] = new_iv->min;
  zone_max_[pos] = new_iv->max;
  return Status::OK();
}

Status CellStore::Scan(
    uint64_t begin, uint64_t end,
    const std::function<bool(uint64_t, const CellRecord&)>& visit) const {
  return ScanWith(begin, end, visit);
}

CellStore::ZoneProbe CellStore::ProbeZoneMap(const ValueInterval& query,
                                             uint64_t stride) const {
  ZoneProbe probe;
  if (stride == 0) stride = 1;
  bool prev_matched = false;
  for (uint64_t pos = 0; pos < num_cells_; pos += stride) {
    ++probe.sampled;
    // Same predicate as the SIMD kernels: NaN zones never match.
    const bool match =
        zone_min_[pos] <= query.max && zone_max_[pos] >= query.min;
    if (match) {
      ++probe.matched;
      if (!prev_matched) ++probe.run_starts;
    }
    prev_matched = match;
  }
  return probe;
}

}  // namespace fielddb

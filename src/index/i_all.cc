#include "index/i_all.h"

#include <algorithm>
#include <chrono>

#include "index/update_util.h"

namespace fielddb {

StatusOr<std::unique_ptr<IAllIndex>> IAllIndex::Build(
    BufferPool* pool, const Field& field, const Options& options) {
  const auto t0 = std::chrono::steady_clock::now();
  StatusOr<CellStore> store = CellStore::Build(pool, field, {});
  if (!store.ok()) return store.status();

  const uint64_t n = store->size();
  StatusOr<RStarTree<1>> tree = [&]() -> StatusOr<RStarTree<1>> {
    if (options.bulk_load) {
      // Sort entries by interval midpoint so packed leaves cover tight
      // value ranges.
      std::vector<RTreeEntry<1>> entries(n);
      for (uint64_t pos = 0; pos < n; ++pos) {
        const ValueInterval iv = field.GetCell(static_cast<CellId>(pos))
                                     .Interval();
        entries[pos].box = BoxFromInterval(iv);
        entries[pos].a = pos;
      }
      std::sort(entries.begin(), entries.end(),
                [](const RTreeEntry<1>& x, const RTreeEntry<1>& y) {
                  const double mx = x.box.lo[0] + x.box.hi[0];
                  const double my = y.box.lo[0] + y.box.hi[0];
                  return mx < my || (mx == my && x.a < y.a);
                });
      return RStarTree<1>::BulkLoad(pool, entries, options.rstar);
    }
    StatusOr<RStarTree<1>> t = RStarTree<1>::Create(pool, options.rstar);
    if (!t.ok()) return t.status();
    for (uint64_t pos = 0; pos < n; ++pos) {
      const ValueInterval iv = field.GetCell(static_cast<CellId>(pos))
                                   .Interval();
      FIELDDB_RETURN_IF_ERROR(t->Insert(BoxFromInterval(iv), pos));
    }
    return t;
  }();
  if (!tree.ok()) return tree.status();

  IndexBuildInfo info;
  info.num_cells = n;
  info.num_index_entries = tree->size();
  info.tree_height = tree->height();
  info.tree_nodes = tree->num_nodes();
  info.store_pages = store->num_pages();
  info.build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return std::unique_ptr<IAllIndex>(new IAllIndex(
      std::move(store).value(), std::move(tree).value(), info));
}

Status IAllIndex::UpdateCellValues(CellId id,
                                   const std::vector<double>& values) {
  if (id >= store_.size()) {
    return Status::OutOfRange("no such cell");
  }
  const uint64_t pos = store_.PositionOf(id);
  ValueInterval old_iv, new_iv;
  FIELDDB_RETURN_IF_ERROR(
      ApplyValueUpdate(&store_, pos, values, &old_iv, &new_iv));
  if (new_iv != old_iv) {
    FIELDDB_RETURN_IF_ERROR(tree_.Delete(BoxFromInterval(old_iv), pos));
    FIELDDB_RETURN_IF_ERROR(tree_.Insert(BoxFromInterval(new_iv), pos));
  }
  return Status::OK();
}

Status IAllIndex::FilterCandidateRanges(
    const ValueInterval& query, std::vector<PosRange>* ranges) const {
  // One tree entry per cell, so the search yields individual positions;
  // sort them ascending (sequential store fetches) and merge contiguous
  // neighbors into runs.
  std::vector<uint64_t> positions;
  FIELDDB_RETURN_IF_ERROR(
      tree_.Search(BoxFromInterval(query), [&](const RTreeEntry<1>& e) {
        positions.push_back(e.a);
        return true;
      }));
  std::sort(positions.begin(), positions.end());
  for (const uint64_t pos : positions) AppendPosition(ranges, pos);
  return Status::OK();
}

}  // namespace fielddb

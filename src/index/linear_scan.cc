#include "index/linear_scan.h"

#include <chrono>

#include "index/update_util.h"

namespace fielddb {

const char* IndexMethodName(IndexMethod method) {
  switch (method) {
    case IndexMethod::kLinearScan:
      return "LinearScan";
    case IndexMethod::kIAll:
      return "I-All";
    case IndexMethod::kIHilbert:
      return "I-Hilbert";
    case IndexMethod::kIntervalQuadtree:
      return "I-Quadtree";
    case IndexMethod::kRowIp:
      return "Row-IP";
  }
  return "unknown";
}

StatusOr<std::unique_ptr<LinearScanIndex>> LinearScanIndex::Build(
    BufferPool* pool, const Field& field) {
  const auto t0 = std::chrono::steady_clock::now();
  StatusOr<CellStore> store = CellStore::Build(pool, field, {});
  if (!store.ok()) return store.status();
  IndexBuildInfo info;
  info.num_cells = store->size();
  info.store_pages = store->num_pages();
  info.build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return std::unique_ptr<LinearScanIndex>(
      new LinearScanIndex(std::move(store).value(), info));
}

Status LinearScanIndex::UpdateCellValues(CellId id,
                                         const std::vector<double>& values) {
  if (id >= store_.size()) {
    return Status::OutOfRange("no such cell");
  }
  ValueInterval old_iv, new_iv;
  // No index structure to maintain: the scan sees the new values.
  return ApplyValueUpdate(&store_, store_.PositionOf(id), values, &old_iv,
                          &new_iv);
}

Status LinearScanIndex::FilterCandidateRanges(
    const ValueInterval& query, std::vector<PosRange>* ranges) const {
  // The scan baseline's filter step is the zone-map sweep itself: one
  // SIMD pass over the SoA interval arrays, no page I/O, no record
  // deserialization. (Production LinearScan *queries* still read every
  // store page — FieldDatabase fuses filter+estimate into a single page
  // pass, as the paper's cost model requires; see RunFuseOp.)
  store_.FilterZoneMap(query, ranges);
  return Status::OK();
}

}  // namespace fielddb

#include "core/stats.h"

#include <cstdio>

namespace fielddb {

std::string WorkloadStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "queries=%u avg_ms=%.4f avg_candidates=%.1f "
                "avg_answer_cells=%.1f avg_logical_reads=%.1f "
                "avg_physical_reads=%.1f",
                num_queries, avg_wall_ms, avg_candidates, avg_answer_cells,
                avg_logical_reads, avg_physical_reads);
  return buf;
}

}  // namespace fielddb

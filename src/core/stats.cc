#include "core/stats.h"

#include <cmath>
#include <cstdio>

namespace fielddb {

double PercentileOfSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  const size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

void FinalizeWorkloadStats(const QueryStats& total,
                           std::vector<double>* wall_ms,
                           WorkloadStats* out) {
  out->num_queries = static_cast<uint32_t>(wall_ms->size());
  if (wall_ms->empty()) return;
  const double n = static_cast<double>(wall_ms->size());
  out->avg_wall_ms = total.wall_seconds * 1000.0 / n;
  std::sort(wall_ms->begin(), wall_ms->end());
  out->p50_wall_ms = PercentileOfSorted(*wall_ms, 50);
  out->p90_wall_ms = PercentileOfSorted(*wall_ms, 90);
  out->p99_wall_ms = PercentileOfSorted(*wall_ms, 99);
  out->max_wall_ms = wall_ms->back();
  out->avg_candidates = static_cast<double>(total.candidate_cells) / n;
  out->avg_answer_cells = static_cast<double>(total.answer_cells) / n;
  out->avg_logical_reads = static_cast<double>(total.io.logical_reads) / n;
  out->avg_physical_reads =
      static_cast<double>(total.io.physical_reads) / n;
  out->avg_sequential_reads =
      static_cast<double>(total.io.sequential_reads) / n;
  out->avg_random_reads = static_cast<double>(total.io.random_reads()) / n;
  out->avg_index_fallbacks =
      static_cast<double>(total.index_fallbacks) / n;
  out->avg_read_retries = static_cast<double>(total.io.read_retries) / n;
  out->avg_failed_reads = static_cast<double>(total.io.failed_reads) / n;
}

std::string WorkloadStats::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "queries=%u avg_ms=%.4f p50_ms=%.4f p99_ms=%.4f max_ms=%.4f "
      "avg_candidates=%.1f avg_answer_cells=%.1f avg_logical_reads=%.1f "
      "avg_physical_reads=%.1f avg_index_fallbacks=%.3f "
      "avg_read_retries=%.3f avg_failed_reads=%.3f",
      num_queries, avg_wall_ms, p50_wall_ms, p99_wall_ms, max_wall_ms,
      avg_candidates, avg_answer_cells, avg_logical_reads,
      avg_physical_reads, avg_index_fallbacks, avg_read_retries,
      avg_failed_reads);
  return buf;
}

}  // namespace fielddb

#include "core/stats.h"

#include <cmath>
#include <cstdio>

namespace fielddb {

double PercentileOfSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  const size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

std::string WorkloadStats::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "queries=%u avg_ms=%.4f p50_ms=%.4f p99_ms=%.4f max_ms=%.4f "
      "avg_candidates=%.1f avg_answer_cells=%.1f avg_logical_reads=%.1f "
      "avg_physical_reads=%.1f avg_index_fallbacks=%.3f "
      "avg_read_retries=%.3f avg_failed_reads=%.3f",
      num_queries, avg_wall_ms, p50_wall_ms, p99_wall_ms, max_wall_ms,
      avg_candidates, avg_answer_cells, avg_logical_reads,
      avg_physical_reads, avg_index_fallbacks, avg_read_retries,
      avg_failed_reads);
  return buf;
}

}  // namespace fielddb

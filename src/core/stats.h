#ifndef FIELDDB_CORE_STATS_H_
#define FIELDDB_CORE_STATS_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "plan/cost_model.h"  // DiskModel's home since the planner refactor
#include "storage/io_stats.h"

namespace fielddb {

class QueryTrace;

/// Per-query measurements — everything needed to reproduce the paper's
/// curves and to diagnose them (the figures plot wall time; page counts
/// explain the shapes).
struct QueryStats {
  double wall_seconds = 0.0;
  /// Candidates returned by the filtering step (includes subfield false
  /// positives).
  uint64_t candidate_cells = 0;
  /// Candidates that actually contributed answer regions.
  uint64_t answer_cells = 0;
  uint64_t region_pieces = 0;
  /// 1 when the filtering step hit a corrupt index page and the query
  /// was answered by a full store scan instead (degraded mode).
  uint64_t index_fallbacks = 0;
  IoStats io;  // page traffic attributable to this query
  /// Per-phase spans (obs/trace.h) when the query ran traced (EXPLAIN
  /// or TracedValueQueryStats); null on the plain query path.
  std::shared_ptr<QueryTrace> trace;

  void Accumulate(const QueryStats& q) {
    wall_seconds += q.wall_seconds;
    candidate_cells += q.candidate_cells;
    answer_cells += q.answer_cells;
    region_pieces += q.region_pieces;
    index_fallbacks += q.index_fallbacks;
    io += q.io;  // IoStats::operator+= keeps every counter in the rollup
  }
};

/// Nearest-rank percentile of an ascending-sorted sample vector;
/// `p` in [0, 100]. 0 for an empty vector.
double PercentileOfSorted(const std::vector<double>& sorted, double p);

/// Averages (plus wall-time distribution) over a query workload — one
/// point on a paper figure, or one `BENCH_*.json` point.
struct WorkloadStats {
  uint32_t num_queries = 0;
  double avg_wall_ms = 0.0;
  /// Wall-time distribution across the workload's queries (exact
  /// nearest-rank percentiles, not bucketized).
  double p50_wall_ms = 0.0;
  double p90_wall_ms = 0.0;
  double p99_wall_ms = 0.0;
  double max_wall_ms = 0.0;
  double avg_candidates = 0.0;
  double avg_answer_cells = 0.0;
  double avg_logical_reads = 0.0;
  double avg_physical_reads = 0.0;
  double avg_sequential_reads = 0.0;
  double avg_random_reads = 0.0;
  /// Robustness signals, averaged per query: degraded-mode full scans,
  /// transient read faults absorbed by retry, and reads that failed for
  /// good. All 0 on a healthy run — nonzero values mean the wall-time
  /// averages describe a degraded system and must not be compared
  /// against healthy baselines.
  double avg_index_fallbacks = 0.0;
  double avg_read_retries = 0.0;
  double avg_failed_reads = 0.0;

  /// Average per-query I/O time under `model` — wall time plus this is
  /// what the figures' disk-bound shapes reflect.
  double AvgDiskMs(const DiskModel& model = {}) const {
    return model.EstimateMs(
        static_cast<uint64_t>(avg_sequential_reads * num_queries),
        static_cast<uint64_t>(avg_random_reads * num_queries)) /
           std::max(1u, num_queries);
  }

  std::string ToString() const;
};

/// Fills every aggregate field of `out` — the averages and the
/// wall-time percentiles — from accumulated per-query totals and the
/// raw wall-time samples (milliseconds; sorted in place). Sets
/// num_queries from the sample count; a no-op on an empty workload.
/// The one place the workload-aggregation arithmetic lives: every
/// RunWorkload (grid, temporal, vector, volume) finishes through it.
void FinalizeWorkloadStats(const QueryStats& total,
                           std::vector<double>* wall_ms,
                           WorkloadStats* out);

}  // namespace fielddb

#endif  // FIELDDB_CORE_STATS_H_

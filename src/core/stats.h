#ifndef FIELDDB_CORE_STATS_H_
#define FIELDDB_CORE_STATS_H_

#include <algorithm>
#include <cstdint>
#include <string>

#include "storage/io_stats.h"

namespace fielddb {

/// Per-query measurements — everything needed to reproduce the paper's
/// curves and to diagnose them (the figures plot wall time; page counts
/// explain the shapes).
struct QueryStats {
  double wall_seconds = 0.0;
  /// Candidates returned by the filtering step (includes subfield false
  /// positives).
  uint64_t candidate_cells = 0;
  /// Candidates that actually contributed answer regions.
  uint64_t answer_cells = 0;
  uint64_t region_pieces = 0;
  /// 1 when the filtering step hit a corrupt index page and the query
  /// was answered by a full store scan instead (degraded mode).
  uint64_t index_fallbacks = 0;
  IoStats io;  // page traffic attributable to this query

  void Accumulate(const QueryStats& q) {
    wall_seconds += q.wall_seconds;
    candidate_cells += q.candidate_cells;
    answer_cells += q.answer_cells;
    region_pieces += q.region_pieces;
    index_fallbacks += q.index_fallbacks;
    io.logical_reads += q.io.logical_reads;
    io.physical_reads += q.io.physical_reads;
    io.sequential_reads += q.io.sequential_reads;
    io.writes += q.io.writes;
    io.evictions += q.io.evictions;
    io.read_retries += q.io.read_retries;
    io.failed_reads += q.io.failed_reads;
    io.failed_writes += q.io.failed_writes;
  }
};

/// Parameters of the simulated spinning disk used to translate page
/// counts into the I/O time a 2002 testbed would have paid (the paper's
/// experiments ran against real disks; our pages live in RAM). Defaults:
/// ~9 ms average seek + rotational delay for a random page, ~0.16 ms to
/// transfer a 4 KB page at ~25 MB/s.
struct DiskModel {
  double seek_ms = 9.0;
  double transfer_ms_per_page = 0.16;

  /// Estimated I/O milliseconds for a read pattern.
  double EstimateMs(uint64_t sequential_reads, uint64_t random_reads) const {
    return random_reads * (seek_ms + transfer_ms_per_page) +
           sequential_reads * transfer_ms_per_page;
  }
};

/// Averages over a query workload (one point on a paper figure).
struct WorkloadStats {
  uint32_t num_queries = 0;
  double avg_wall_ms = 0.0;
  double avg_candidates = 0.0;
  double avg_answer_cells = 0.0;
  double avg_logical_reads = 0.0;
  double avg_physical_reads = 0.0;
  double avg_sequential_reads = 0.0;
  double avg_random_reads = 0.0;

  /// Average per-query I/O time under `model` — wall time plus this is
  /// what the figures' disk-bound shapes reflect.
  double AvgDiskMs(const DiskModel& model = {}) const {
    return model.EstimateMs(
        static_cast<uint64_t>(avg_sequential_reads * num_queries),
        static_cast<uint64_t>(avg_random_reads * num_queries)) /
           std::max(1u, num_queries);
  }

  std::string ToString() const;
};

}  // namespace fielddb

#endif  // FIELDDB_CORE_STATS_H_

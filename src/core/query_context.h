#ifndef FIELDDB_CORE_QUERY_CONTEXT_H_
#define FIELDDB_CORE_QUERY_CONTEXT_H_

#include <cstdint>
#include <vector>

#include "common/simd/interval_filter.h"
#include "storage/io_stats.h"

namespace fielddb {

/// Per-query mutable state. The FieldDatabase itself is immutable while
/// queries run (every query entry point is const); everything a query
/// needs to scribble on lives here, so N threads each running queries
/// with their own context never share mutable memory.
///
/// A context is reused across queries to amortize the candidate-list
/// allocation, but serves one query at a time: give each thread its own
/// (QueryExecutor does exactly that for its workers).
struct QueryContext {
  /// The query's exact I/O delta, filled by installing `io` as the
  /// calling thread's ScopedIoSink for the query's duration.
  IoStats io;
  /// Candidate-position scratch for the filter step (capacity persists
  /// across queries).
  std::vector<uint64_t> positions;
  /// Candidate-run scratch — the range form the query engine consumes
  /// (see ValueIndex::FilterCandidateRanges).
  std::vector<PosRange> ranges;
};

}  // namespace fielddb

#endif  // FIELDDB_CORE_QUERY_CONTEXT_H_

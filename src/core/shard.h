#ifndef FIELDDB_CORE_SHARD_H_
#define FIELDDB_CORE_SHARD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/field_database.h"
#include "core/query_executor.h"
#include "field/field.h"

namespace fielddb {

class Counter;
class Histogram;

/// A read-through view presenting a subset of a base field's cells under
/// LOCAL ids 0..k-1 (CellStore requires the build order to be a
/// permutation of [0, NumCells())). `global_ids[local]` is the base
/// field's id for local cell `local`. Domain() reports the base field's
/// FULL domain, not the subset's bounding box: the Hilbert linearization
/// normalizes centroids over Domain(), and only the global domain makes
/// a shard's internal sort order agree with the unsharded build's — the
/// concatenation-equals-monolith property the router's deterministic
/// gather relies on.
class FieldSlice final : public Field {
 public:
  /// `base` must outlive the slice (shard builds consume the slice
  /// before Build returns, so the base field only needs to live through
  /// ShardRouter::Build).
  FieldSlice(const Field* base, std::vector<CellId> global_ids)
      : base_(base), domain_(base->Domain()),
        global_ids_(std::move(global_ids)) {}

  CellId NumCells() const override {
    return static_cast<CellId>(global_ids_.size());
  }
  CellRecord GetCell(CellId id) const override {
    CellRecord r = base_->GetCell(global_ids_[id]);
    r.id = id;  // re-key to the local id space
    return r;
  }
  Rect2 Domain() const override { return domain_; }

  const std::vector<CellId>& global_ids() const { return global_ids_; }

 private:
  const Field* base_;
  Rect2 domain_;
  std::vector<CellId> global_ids_;
};

/// Immutable identity of one shard: its position in the router's
/// Hilbert-range partition and the local->global cell id map the router
/// persists in its catalog (the global ids are otherwise unrecoverable
/// after a reopen — the shard stores only know local ids).
struct ShardDescriptor {
  uint32_t id = 0;
  /// Hilbert keys of the shard's first and last cell in global
  /// linearization order (inclusive). Ranges of consecutive shards are
  /// contiguous and non-decreasing; a key shared by two shards means
  /// the tie broke on cell id at the boundary.
  uint64_t key_begin = 0;
  uint64_t key_end = 0;
  /// Global cell ids in local-id order — local id i is the i-th cell of
  /// this shard in global Hilbert order, so within-shard store order
  /// matches the unsharded linearization restricted to this subset.
  std::vector<CellId> local_to_global;

  uint64_t num_cells() const { return local_to_global.size(); }
};

/// One shard of a sharded field database: a fully self-contained
/// FieldDatabase (own BufferPool, value index, zone-map sidecar,
/// planner, WAL) over a contiguous Hilbert range of the global field,
/// plus the QueryExecutor lane the router scatters onto. The lane is
/// the shard's serialization point for scattered work; the database
/// itself keeps FieldDatabase's threading contract (const queries from
/// any thread, mutations externally excluded).
class Shard {
 public:
  Shard(ShardDescriptor descriptor, std::unique_ptr<FieldDatabase> db,
        size_t lane_threads, size_t lane_queue_capacity);

  const ShardDescriptor& descriptor() const { return descriptor_; }
  FieldDatabase& db() const { return *db_; }
  QueryExecutor& lane() const { return *lane_; }

  /// Zero-I/O pruning decision: false only when this shard provably
  /// contributes nothing to `query` — the query misses the shard's
  /// value hull, or the shard planner's selectivity probe was EXACT and
  /// predicted zero candidates. A sampled probe (stores above
  /// QueryPlanner::kExactProbeCells) can undercount, so it never skips.
  /// Increments this shard's skip counter when it says no.
  bool MayContain(const ValueInterval& query) const;

  /// Records one scattered sub-query against this shard's metrics
  /// (shard.s<k>.queries counter + shard.s<k>.wall_ms histogram).
  void RecordQuery(double wall_ms) const;

  /// Drains the lane, then closes the database (surfacing write-back
  /// errors). The shard is unusable afterwards.
  Status Close();

 private:
  ShardDescriptor descriptor_;
  /// Declared before the lane so the lane (which holds a raw pointer to
  /// the database) drains and joins first at destruction.
  std::unique_ptr<FieldDatabase> db_;
  std::unique_ptr<QueryExecutor> lane_;
  Counter* queries_;    // shard.s<k>.queries
  Counter* skips_;      // shard.s<k>.skipped
  Histogram* wall_ms_;  // shard.s<k>.wall_ms
};

/// Global Hilbert linearization keys for partitioning: (key, id) pairs
/// sorted exactly like IHilbertIndex's LinearizeCells (same curve-grid
/// normalization over field.Domain(), same (key, id) tie-break), so
/// splitting the sorted sequence into contiguous runs yields shards
/// whose concatenation reproduces the global linearization.
std::vector<std::pair<uint64_t, CellId>> HilbertPartitionKeys(
    const Field& field);

}  // namespace fielddb

#endif  // FIELDDB_CORE_SHARD_H_

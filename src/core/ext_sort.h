#ifndef FIELDDB_CORE_EXT_SORT_H_
#define FIELDDB_CORE_EXT_SORT_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace fielddb {

/// Bounded-memory external merge sort of (hilbert_key, record) pairs —
/// the build-side engine that lets every field type bulk-load within a
/// fixed budget instead of materializing the whole keyed field in RAM
/// (DESIGN.md §16). Records are Added in arbitrary order with their
/// space-filling-curve key; Merge() emits them in ascending key order.
///
/// When the buffered entries exceed `memory_budget_bytes`, the buffer is
/// sorted and spilled as one run to an anonymous temp file
/// (std::tmpfile: unlinked on creation, reclaimed by the OS even on a
/// crash). Merge() then k-way merges the runs with the final in-RAM
/// leftover, holding one entry per run — k stays small (runs are
/// budget-sized), so a linear min-scan beats a heap on both simplicity
/// and branch predictability.
///
/// Determinism: ties on the key are broken by insertion sequence, so a
/// budgeted build emits records in exactly the order an unlimited
/// `std::sort` over (key, insertion order) would — external and in-RAM
/// builds produce byte-identical stores (proved by ext_sort_test and
/// the build differentials in the extension tests).
///
/// A budget of 0 means unlimited: everything stays in RAM and Merge is
/// one sort, the fast path for fields that fit.
template <typename Record>
class ExternalKeyRecordSorter {
 public:
  static_assert(std::is_trivially_copyable_v<Record>,
                "records are raw run-file bytes");

  struct Entry {
    uint64_t key = 0;
    uint64_t seq = 0;  // insertion order: the stable tie-break
    Record record;
  };

  explicit ExternalKeyRecordSorter(size_t memory_budget_bytes)
      : budget_(memory_budget_bytes) {}

  ExternalKeyRecordSorter(const ExternalKeyRecordSorter&) = delete;
  ExternalKeyRecordSorter& operator=(const ExternalKeyRecordSorter&) =
      delete;

  /// Buffers one keyed record, spilling a sorted run first when the
  /// buffer is at the budget.
  Status Add(uint64_t key, const Record& record) {
    if (budget_ > 0 && !buffer_.empty() &&
        (buffer_.size() + 1) * sizeof(Entry) > budget_) {
      FIELDDB_RETURN_IF_ERROR(SpillRun());
    }
    Entry e;
    e.key = key;
    e.seq = next_seq_++;
    e.record = record;
    buffer_.push_back(e);
    peak_buffered_bytes_ =
        std::max(peak_buffered_bytes_, buffer_.size() * sizeof(Entry));
    return Status::OK();
  }

  /// Emits every added record in ascending (key, insertion order). The
  /// sorter is consumed: records stream out of the run files and the
  /// leftover buffer without ever being whole in RAM again. `emit`
  /// returns a Status so downstream appenders can fail the build.
  template <typename Emit>  // Status(uint64_t key, const Record&)
  Status Merge(Emit emit) {
    SortBuffer();
    if (runs_.empty()) {
      // Fast path: nothing ever spilled.
      for (const Entry& e : buffer_) {
        FIELDDB_RETURN_IF_ERROR(emit(e.key, e.record));
      }
      buffer_.clear();
      return Status::OK();
    }

    // One cursor per spilled run plus one over the in-RAM leftover.
    struct Cursor {
      std::FILE* file = nullptr;  // nullptr: the in-RAM leftover
      uint64_t remaining = 0;
      uint64_t buffer_pos = 0;
      Entry head;
    };
    std::vector<Cursor> cursors;
    cursors.reserve(runs_.size() + 1);
    for (Run& run : runs_) {
      Cursor c;
      c.file = run.file.get();
      c.remaining = run.num_entries;
      std::rewind(c.file);
      FIELDDB_RETURN_IF_ERROR(Advance(&c));
      cursors.push_back(c);
    }
    if (!buffer_.empty()) {
      Cursor c;
      c.remaining = buffer_.size();
      FIELDDB_RETURN_IF_ERROR(Advance(&c));
      cursors.push_back(c);
    }

    while (!cursors.empty()) {
      size_t min = 0;
      for (size_t i = 1; i < cursors.size(); ++i) {
        const Entry& a = cursors[i].head;
        const Entry& b = cursors[min].head;
        if (a.key < b.key || (a.key == b.key && a.seq < b.seq)) min = i;
      }
      Cursor& c = cursors[min];
      FIELDDB_RETURN_IF_ERROR(emit(c.head.key, c.head.record));
      if (c.remaining > 0) {
        FIELDDB_RETURN_IF_ERROR(Advance(&c));
      } else {
        cursors.erase(cursors.begin() + min);
      }
    }
    buffer_.clear();
    runs_.clear();
    return Status::OK();
  }

  /// --- Build telemetry (bench_ext_build reports these) ---

  uint64_t spill_runs() const { return spill_runs_; }
  uint64_t spilled_records() const { return spilled_records_; }
  /// High-water mark of the in-RAM buffer; never exceeds the budget (+1
  /// entry of slack) when one is set.
  size_t peak_buffered_bytes() const { return peak_buffered_bytes_; }
  size_t memory_budget_bytes() const { return budget_; }

 private:
  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };
  struct Run {
    std::unique_ptr<std::FILE, FileCloser> file;
    uint64_t num_entries = 0;
  };

  void SortBuffer() {
    std::sort(buffer_.begin(), buffer_.end(),
              [](const Entry& a, const Entry& b) {
                return a.key < b.key || (a.key == b.key && a.seq < b.seq);
              });
  }

  Status SpillRun() {
    SortBuffer();
    Run run;
    run.file.reset(std::tmpfile());
    if (run.file == nullptr) {
      return Status::IOError("cannot create external-sort run file");
    }
    const size_t written = std::fwrite(buffer_.data(), sizeof(Entry),
                                       buffer_.size(), run.file.get());
    if (written != buffer_.size()) {
      return Status::IOError("short write spilling external-sort run");
    }
    run.num_entries = buffer_.size();
    ++spill_runs_;
    spilled_records_ += buffer_.size();
    runs_.push_back(std::move(run));
    buffer_.clear();
    return Status::OK();
  }

  /// Loads the cursor's next entry (run file or leftover buffer) into
  /// `head`. Precondition: remaining > 0. Templated because Cursor is
  /// local to Merge.
  template <typename Cursor>
  Status Advance(Cursor* c) {
    if (c->file != nullptr) {
      if (std::fread(&c->head, sizeof(Entry), 1, c->file) != 1) {
        return Status::IOError("short read from external-sort run");
      }
    } else {
      c->head = buffer_[c->buffer_pos++];
    }
    --c->remaining;
    return Status::OK();
  }

  size_t budget_;
  std::vector<Entry> buffer_;
  std::vector<Run> runs_;
  uint64_t next_seq_ = 0;
  uint64_t spill_runs_ = 0;
  uint64_t spilled_records_ = 0;
  size_t peak_buffered_bytes_ = 0;
};

}  // namespace fielddb

#endif  // FIELDDB_CORE_EXT_SORT_H_
